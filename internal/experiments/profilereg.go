package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"gallery/internal/api"
	"gallery/internal/benchfmt"
	"gallery/internal/blobstore"
	"gallery/internal/client"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/dal"
	"gallery/internal/forecast"
	"gallery/internal/incident"
	"gallery/internal/obs"
	"gallery/internal/obs/profile"
	"gallery/internal/relstore"
	"gallery/internal/rules"
	"gallery/internal/serve"
	"gallery/internal/server"
	"gallery/internal/uuid"
)

// ProfileRegResult is E25: the continuous-profiling pipeline end to end.
// A healthy workload is profiled into a checked-in-style baseline
// (PROFILE_<process>.json round-tripped through disk), then a CPU hog is
// injected and the live profiler must catch it without human help. The
// claims under test:
//
//  1. Detection — within a handful of windows the delta detector names
//     the injected function (profileregHogEncode) as regressed against
//     the baseline.
//  2. Closed loop — the regression reaches the rules engine as a
//     profile.regression event, a standing rule fires the capture
//     action, and exactly one incident bundle is persisted carrying the
//     profiler ring's pre-trigger history.
//  3. Fleet view — the gateway's summaries ship over real HTTP to
//     galleryd's ingest endpoint and the merged GET /v1/debug/profile
//     view covers both processes.
//  4. Cost — the predict hot path measures the same allocs/op with the
//     profiler armed as without it, and the profiler's own sampling
//     dilation, scaled by the default 10s-per-60s duty cycle, stays
//     small (reported, not gated: it is a timing).
type ProfileRegResult struct {
	BaselineFuncs  int // functions in the round-tripped baseline
	HealthyWindows int
	DetectWindows  int // hog windows until the detector flagged

	HogFunction string  // detector's named function
	HogShare    float64 // its live CPU self-share
	HogFactor   float64 // share / baseline allowance

	CaptureTriggers int64 // capture-action fires (first persists, rest debounce)
	Bundles         int64 // bundles persisted (want exactly 1)
	BundleProfiles  int   // profiler summaries embedded in the bundle

	FleetProcesses int // processes in the merged /v1/debug/profile view

	AllocOps            int
	OffAllocs, OnAllocs float64
	OffP50, OnP50       time.Duration
	OverheadPct         float64 // sampling dilation x default duty cycle
}

// ProfilerExtraAllocs is the hot-path claim: allocations per predict
// request added by arming the continuous profiler.
func (r *ProfileRegResult) ProfilerExtraAllocs() float64 { return r.OnAllocs - r.OffAllocs }

// Format renders E25 as paper-style rows.
func (r *ProfileRegResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "continuous profiling (window summaries, baseline %d funcs from %d healthy windows):\n",
		r.BaselineFuncs, r.HealthyWindows)
	fmt.Fprintf(&b, "  detection: hog named %q after %d window(s), self-share %.0f%% = %.0fx its allowance\n",
		r.HogFunction, r.DetectWindows, r.HogShare*100, r.HogFactor)
	fmt.Fprintf(&b, "  closed loop: %d capture trigger(s) -> %d bundle(s) persisted, %d profile summaries embedded\n",
		r.CaptureTriggers, r.Bundles, r.BundleProfiles)
	fmt.Fprintf(&b, "  fleet: merged /v1/debug/profile covers %d processes (gateway shipped over HTTP)\n",
		r.FleetProcesses)
	fmt.Fprintf(&b, "  predict hot path (%d ops): profiler off p50=%v allocs/op=%.1f; armed p50=%v allocs/op=%.1f (extra %+.1f)\n",
		r.AllocOps, r.OffP50.Round(time.Microsecond), r.OffAllocs,
		r.OnP50.Round(time.Microsecond), r.OnAllocs, r.ProfilerExtraAllocs())
	fmt.Fprintf(&b, "  self-overhead: %.2f%% at the default %v/%v duty cycle (claim: < 2%%)\n",
		r.OverheadPct, profile.DefaultWindow, profile.DefaultInterval)
	return b.String()
}

// BenchMetrics emits BENCH_profilereg.json. The detection and
// closed-loop outcomes are binary and gate exactly; timing rows are
// informational.
func (r *ProfileRegResult) BenchMetrics() []benchfmt.Metric {
	named := 0.0
	if strings.Contains(r.HogFunction, "profileregHogEncode") {
		named = 1
	}
	history := 0.0
	if r.BundleProfiles > 0 {
		history = 1
	}
	// Rounded so the healthy value snaps to benchfmt's zero-baseline
	// path: any run measuring >=1 alloc/op of profiler cost fails.
	extra := math.Round(r.ProfilerExtraAllocs())
	if extra <= 0 {
		extra = 0 // jitter below zero still means "free"; normalize -0
	}
	return []benchfmt.Metric{
		{Name: "detector_named_hog", Value: named, Better: benchfmt.HigherIsBetter, Tol: 0.01},
		{Name: "bundles_persisted", Unit: "bundles", Value: float64(r.Bundles), Better: benchfmt.LowerIsBetter, Tol: 0.01},
		{Name: "bundle_has_profile_history", Value: history, Better: benchfmt.HigherIsBetter, Tol: 0.01},
		{Name: "fleet_processes", Unit: "processes", Value: float64(r.FleetProcesses), Better: benchfmt.HigherIsBetter, Tol: 0.01},
		{Name: "predict_profiler_extra_allocs_per_op", Unit: "allocs/op", Value: extra, Better: benchfmt.LowerIsBetter, Tol: 0.5},
		{Name: "detect_windows", Unit: "windows", Value: float64(r.DetectWindows), Better: benchfmt.Info},
		{Name: "hog_self_share", Value: r.HogShare, Better: benchfmt.Info},
		{Name: "profiler_overhead_pct", Unit: "%", Value: r.OverheadPct, Better: benchfmt.Info},
		{Name: "predict_profiler_on_allocs_per_op", Unit: "allocs/op", Value: r.OnAllocs, Better: benchfmt.Info},
	}
}

// profileregWindow keeps E25's CPU windows short: at the default 100 Hz
// a 300ms window holds ~30 samples, plenty to dominate with a pure-CPU
// hog while keeping the whole experiment under a few seconds.
const profileregWindow = 300 * time.Millisecond

// profileregHogEncode is the injected hot path: a deliberately
// quadratic "encoder" the healthy baseline has never seen. Kept out of
// inlining so CPU samples land on this frame by name.
//
//go:noinline
func profileregHogEncode(buf []float64) float64 {
	acc := 0.0
	for i := range buf {
		for j := range buf {
			acc += math.Sqrt(math.Abs(buf[i] - buf[j]))
		}
	}
	return acc
}

// profileregSteady is the healthy workload whose shape the baseline
// records.
//
//go:noinline
func profileregSteady(buf []float64) float64 {
	acc := 1.0
	for _, v := range buf {
		acc = math.Mod(acc*1.000000119+v, 1e9)
	}
	return acc
}

// profileregSink defeats dead-code elimination of the burn loops.
var profileregSink float64

// profileregBurn runs f in a hot loop on one goroutine until the
// returned stop function is called.
func profileregBurn(f func() float64) (stop func()) {
	quit := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		acc := 0.0
		for {
			select {
			case <-quit:
				profileregSink = acc
				return
			default:
			}
			acc += f()
		}
	}()
	return func() { close(quit); wg.Wait() }
}

// ProfileRegression runs E25 with n measured ops per predict-cost arm.
func ProfileRegression(n int) (*ProfileRegResult, error) {
	dir, err := os.MkdirTemp("", "gallery-e25-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	clk := clock.NewMock(epoch)
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk, UUIDs: uuid.NewSeeded(81),
	})
	if err != nil {
		return nil, err
	}
	m, err := reg.RegisterModel(core.ModelSpec{
		BaseVersionID: "e25_forecaster", Project: "profilereg", Name: "forecaster",
	})
	if err != nil {
		return nil, err
	}
	blob, err := forecast.Encode(&forecast.Heuristic{K: 2})
	if err != nil {
		return nil, err
	}
	in, err := reg.UploadInstance(core.InstanceSpec{ModelID: m.ID, Name: "forecaster", City: "sf"}, blob)
	if err != nil {
		return nil, err
	}
	if err := reg.PromoteInstance(in.ID); err != nil {
		return nil, err
	}

	gw := serve.New(regSource{reg}, serve.Options{RefreshInterval: -1, Obs: obs.NewRegistry()})
	defer gw.Close()

	payload, err := json.Marshal(api.PredictRequest{History: []float64{10, 12}})
	if err != nil {
		return nil, err
	}
	predict := func(h *serve.Handler) error {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict/"+m.ID.String(), strings.NewReader(string(payload)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return fmt.Errorf("profilereg: predict status %d", rec.Code)
		}
		return nil
	}

	res := &ProfileRegResult{AllocOps: n}

	// --- cost arm, profiler off ---
	hOff := serve.NewHandler(gw)
	if res.OffP50, res.OffAllocs, err = measureHTTP(n, func() error { return predict(hOff) }); err != nil {
		return nil, err
	}

	// --- galleryd's side of the fleet: its profiler exports in-process ---
	fleet := profile.NewFleet(0)
	pRegistry := profile.New(profile.Config{
		Process: "galleryd", Window: profileregWindow, Interval: time.Hour,
		Obs: obs.NewRegistry(), Exporter: fleet,
	})
	pRegistry.CaptureCycle()

	// --- phase A: healthy workload -> baseline, round-tripped via disk ---
	pHealthy := profile.New(profile.Config{
		Process: "galleryserve", Window: profileregWindow, Interval: time.Hour,
		Obs: obs.NewRegistry(), Kinds: []string{},
	})
	steadyBuf := make([]float64, 4096)
	for i := range steadyBuf {
		steadyBuf[i] = float64(i % 97)
	}
	stopSteady := profileregBurn(func() float64 { return profileregSteady(steadyBuf) })
	res.HealthyWindows = 2
	for i := 0; i < res.HealthyWindows; i++ {
		pHealthy.CaptureCycle()
	}
	stopSteady()
	healthy := profile.Merge(pHealthy.Ring().Recent(profile.KindCPU, 0), profile.DefaultTopN)
	if healthy.Samples == 0 {
		return nil, fmt.Errorf("profilereg: healthy windows collected no CPU samples")
	}
	if err := profile.WriteBaseline(dir, profile.BaselineOf("galleryserve", healthy)); err != nil {
		return nil, err
	}
	base, err := profile.LoadBaseline(filepath.Join(dir, profile.BaselineFileName("galleryserve")))
	if err != nil {
		return nil, err
	}
	res.BaselineFuncs = len(base.Shares)

	// --- the closed loop: detector -> rules engine -> capture action ---
	o := obs.NewRegistry()
	repo := rules.NewRepo(clk)
	engine := rules.NewEngine(reg, repo, clk)
	detector := profile.NewDetector(profile.DetectorConfig{Baseline: base, Obs: o, Sink: engine})
	pLive := profile.New(profile.Config{
		Process: "galleryserve", Window: profileregWindow, Interval: time.Hour,
		Obs: obs.NewRegistry(), Detector: detector,
	})
	rec, err := incident.Open(dal.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), dal.Options{Obs: o}), incident.Config{
		Obs: o, Clock: clk, UUIDs: uuid.NewSeeded(82), Profiles: pLive.Ring(),
	})
	if err != nil {
		return nil, err
	}
	engine.RegisterAction("capture", incident.CaptureAction(rec))
	rule := &rules.Rule{
		UUID: "e25-profile-capture", Team: "platform", Kind: rules.KindAction,
		When:    `profile.event == "regression" && profile.factor > 3.0`,
		Actions: []rules.ActionRef{{Action: "capture"}},
	}
	if _, err := repo.Commit("platform", "profile regression capture", []*rules.Rule{rule}, nil); err != nil {
		return nil, err
	}

	// --- phase B: inject the hog; the detector must name it ---
	hogBuf := make([]float64, 256)
	for i := range hogBuf {
		hogBuf[i] = float64(i%31) * 1.7
	}
	stopHog := profileregBurn(func() float64 { return profileregHogEncode(hogBuf) })
	for w := 1; w <= 6; w++ {
		pLive.CaptureCycle()
		if regs := detector.Last(); len(regs) > 0 {
			for _, r := range regs {
				if strings.Contains(r.Function, "profileregHogEncode") {
					res.DetectWindows = w
					res.HogFunction = r.Function
					res.HogShare = r.Share
					res.HogFactor = r.Factor
				}
			}
			if res.DetectWindows > 0 {
				break
			}
		}
	}
	stopHog()
	if res.DetectWindows == 0 {
		return nil, fmt.Errorf("profilereg: detector never named the hog in 6 windows (last: %+v)", detector.Last())
	}

	cCaptures := o.Counter("incident_captures_total")
	cSuppressed := o.Counter("incident_suppressed_total")
	res.Bundles = cCaptures.Value()
	res.CaptureTriggers = res.Bundles + cSuppressed.Value()
	if res.Bundles != 1 {
		return nil, fmt.Errorf("profilereg: %d bundles persisted across %d capture triggers, want exactly 1 (debounce)",
			res.Bundles, res.CaptureTriggers)
	}
	incs, err := rec.List("")
	if err != nil {
		return nil, err
	}
	if len(incs) != 1 {
		return nil, fmt.Errorf("profilereg: List = %d incidents, want 1", len(incs))
	}
	_, bundle, err := rec.Get(context.Background(), incs[0].ID)
	if err != nil {
		return nil, err
	}
	res.BundleProfiles = len(bundle.Registry.Profiles)
	hasCPU := false
	for _, s := range bundle.Registry.Profiles {
		if s.Kind == profile.KindCPU {
			hasCPU = true
		}
	}
	if res.BundleProfiles == 0 || !hasCPU {
		return nil, fmt.Errorf("profilereg: bundle profile history missing CPU windows: %+v", bundle.Registry.Profiles)
	}

	// --- fleet aggregation: the gateway ships over real HTTP ---
	srv := server.NewWith(reg, nil, nil, server.Options{Obs: obs.NewRegistry(), Profiles: fleet})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	shipper := profile.NewHTTPExporter(ts.URL+"/v1/debug/profile", "", nil)
	shipper.Export("galleryserve", pLive.Ring().History(0))
	shipper.Flush()
	shipper.Close()
	if d := shipper.Dropped() + shipper.Failed(); d != 0 {
		return nil, fmt.Errorf("profilereg: %d profile shipments dropped/failed", d)
	}
	view, err := client.NewWith(ts.URL, client.Options{}).DebugProfile(0, 0)
	if err != nil {
		return nil, err
	}
	res.FleetProcesses = len(view.Processes)
	if res.FleetProcesses != 2 {
		return nil, fmt.Errorf("profilereg: fleet view has %d processes, want galleryd + galleryserve", res.FleetProcesses)
	}

	// --- self-overhead: sampling dilation x default duty cycle ---
	// Throughput of a fixed CPU-bound loop with and without an in-flight
	// CPU window, alternated per round; the minimum dilation across
	// rounds filters scheduler noise (the true cost is the SIGPROF
	// handler, a few percent of a fully sampled core at 100 Hz).
	work := func(d time.Duration) int {
		iters := 0
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			profileregSink = profileregSteady(steadyBuf)
			iters++
		}
		return iters
	}
	pOverhead := profile.New(profile.Config{
		Process: "galleryserve", Window: 150 * time.Millisecond, Interval: time.Hour,
		Obs: obs.NewRegistry(), Kinds: []string{},
	})
	dilation := math.MaxFloat64
	for round := 0; round < 3; round++ {
		offIters := work(80 * time.Millisecond)
		windowDone := make(chan struct{})
		go func() { pOverhead.CaptureCycle(); close(windowDone) }()
		time.Sleep(30 * time.Millisecond) // inside the window
		onIters := work(80 * time.Millisecond)
		<-windowDone
		if offIters > 0 && onIters > 0 {
			if d := (float64(offIters)/float64(onIters) - 1) * 100; d < dilation {
				dilation = d
			}
		}
	}
	if dilation < math.MaxFloat64 {
		res.OverheadPct = dilation * float64(profile.DefaultWindow) / float64(profile.DefaultInterval)
	}
	if res.OverheadPct < 0 {
		res.OverheadPct = 0
	}

	// --- cost arm, profiler armed (capture loop live, between cycles) ---
	hOn := serve.NewHandler(gw, serve.WithProfiler(pLive))
	wBefore := pLive.Ring().History(0)
	pLive.Start()
	defer pLive.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for len(pLive.Ring().History(0)) <= len(wBefore) {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("profilereg: armed profiler never completed its first cycle")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if res.OnP50, res.OnAllocs, err = measureHTTP(n, func() error { return predict(hOn) }); err != nil {
		return nil, err
	}
	return res, nil
}
