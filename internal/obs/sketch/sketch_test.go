package sketch

import (
	"encoding/json"
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestObserveMoments(t *testing.T) {
	s := New(Config{})
	vals := []float64{1, 2, 3, 4, 100, -5, 0.00001, 0}
	var sum, sumSq float64
	for _, v := range vals {
		s.Observe(v)
		sum += v
		sumSq += v * v
	}
	snap := s.Snapshot()
	if snap.Count != int64(len(vals)) {
		t.Fatalf("count = %d, want %d", snap.Count, len(vals))
	}
	if math.Abs(snap.Sum-sum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", snap.Sum, sum)
	}
	if snap.Min != -5 || snap.Max != 100 {
		t.Fatalf("min/max = %g/%g, want -5/100", snap.Min, snap.Max)
	}
	wantMean := sum / float64(len(vals))
	if math.Abs(snap.Mean()-wantMean) > 1e-9 {
		t.Fatalf("mean = %g, want %g", snap.Mean(), wantMean)
	}
	wantVar := sumSq/float64(len(vals)) - wantMean*wantMean
	if math.Abs(snap.Variance()-wantVar) > 1e-6 {
		t.Fatalf("variance = %g, want %g", snap.Variance(), wantVar)
	}
}

func TestIndexLayout(t *testing.T) {
	s := New(Config{Lo: 1, Hi: 1000, Buckets: 3}) // gamma = 10
	n := s.cfg.Buckets
	cases := []struct {
		v    float64
		want int
	}{
		{0, n + 1},          // center
		{0.5, n + 1},        // below Lo
		{-0.5, n + 1},       // below Lo, negative
		{math.NaN(), n + 1}, // NaN guarded into center
		{1, n + 2},          // first positive bucket
		{5, n + 2},          // still [1,10)
		{10, n + 3},         // [10,100)
		{999, n + 4},        // [100,1000)
		{1000, 2*n + 2},     // positive overflow
		{1e18, 2*n + 2},     // way overflow
		{-1, n},             // first negative bucket
		{-10, n - 1},        // [-100,-10)
		{-999, n - 2},       // (-1000,-100]
		{-1000, 0},          // negative overflow
		{math.Inf(1), 2*n + 2},
		{math.Inf(-1), 0},
	}
	for _, c := range cases {
		if got := s.index(c.v); got != c.want {
			t.Errorf("index(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := New(Config{})
	for i := 0; i < 100; i++ {
		s.Observe(float64(i))
	}
	snap := s.Snapshot()
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Count != snap.Count || back.Sum != snap.Sum || len(back.Counts) != len(snap.Counts) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, snap)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	bad := Snapshot{Lo: 1e-4, Hi: 1e9, Buckets: 128, Count: 10, Counts: []int64{1, 2}}
	if err := bad.Validate(); err == nil {
		t.Fatal("want error for counts length mismatch")
	}
	if _, err := bad.Merge(bad); err == nil {
		t.Fatal("want merge error for malformed snapshot")
	}
	if _, err := PSI(bad, bad); err == nil {
		t.Fatal("want PSI error for malformed snapshot")
	}
}

// sketchOf builds a snapshot of n samples drawn by gen.
func sketchOf(n int, gen func(i int) float64) Snapshot {
	s := New(Config{})
	for i := 0; i < n; i++ {
		s.Observe(gen(i))
	}
	return s.Snapshot()
}

func TestMergeAssociativityAndCommutativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := sketchOf(500, func(int) float64 { return rng.NormFloat64()*10 + 100 })
	b := sketchOf(300, func(int) float64 { return rng.NormFloat64()*5 - 40 })
	c := sketchOf(700, func(int) float64 { return rng.ExpFloat64() * 1000 })

	merge := func(x, y Snapshot) Snapshot {
		t.Helper()
		out, err := x.Merge(y)
		if err != nil {
			t.Fatalf("merge: %v", err)
		}
		return out
	}
	abc1 := merge(merge(a, b), c) // (a⊕b)⊕c
	abc2 := merge(a, merge(b, c)) // a⊕(b⊕c)
	ba := merge(b, a)
	ab := merge(a, b)

	eq := func(name string, x, y Snapshot) {
		t.Helper()
		if x.Count != y.Count || math.Abs(x.Sum-y.Sum) > 1e-6 ||
			math.Abs(x.SumSq-y.SumSq) > 1e-3 || x.Min != y.Min || x.Max != y.Max {
			t.Fatalf("%s: scalar mismatch:\n%+v\n%+v", name, x, y)
		}
		for i := range x.Counts {
			if x.Counts[i] != y.Counts[i] {
				t.Fatalf("%s: bucket %d: %d vs %d", name, i, x.Counts[i], y.Counts[i])
			}
		}
	}
	eq("associativity", abc1, abc2)
	eq("commutativity", ab, ba)

	if abc1.Count != a.Count+b.Count+c.Count {
		t.Fatalf("merged count = %d, want %d", abc1.Count, a.Count+b.Count+c.Count)
	}
	// Merging an empty snapshot is the identity.
	empty := New(Config{}).Snapshot()
	eq("identity", merge(a, empty), a)
	eq("identity-left", merge(empty, a), a)
}

func TestMergeGeometryMismatch(t *testing.T) {
	a := New(Config{Lo: 1, Hi: 100, Buckets: 8}).Snapshot()
	b := New(Config{Lo: 1, Hi: 100, Buckets: 16}).Snapshot()
	if _, err := a.Merge(b); err == nil {
		t.Fatal("want geometry mismatch error")
	}
	if _, err := PSI(a, b); err == nil {
		t.Fatal("want geometry mismatch error from PSI")
	}
}

func TestPSIDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ref := sketchOf(5000, func(int) float64 { return rng.NormFloat64()*20 + 200 })
	same := sketchOf(5000, func(int) float64 { return rng.NormFloat64()*20 + 200 })
	shifted := sketchOf(5000, func(int) float64 { return rng.NormFloat64()*20 + 320 }) // 1.6x mean

	stable, err := PSI(ref, same)
	if err != nil {
		t.Fatalf("PSI: %v", err)
	}
	moved, err := PSI(ref, shifted)
	if err != nil {
		t.Fatalf("PSI: %v", err)
	}
	if stable > 0.1 {
		t.Fatalf("PSI of identical distributions = %g, want < 0.1", stable)
	}
	if moved < 0.25 {
		t.Fatalf("PSI of 1.6x shifted distribution = %g, want >= 0.25", moved)
	}
	if moved <= stable {
		t.Fatalf("shifted PSI %g should exceed stable PSI %g", moved, stable)
	}

	klStable, err := KL(ref, same)
	if err != nil {
		t.Fatalf("KL: %v", err)
	}
	klMoved, err := KL(ref, shifted)
	if err != nil {
		t.Fatalf("KL: %v", err)
	}
	if klMoved <= klStable {
		t.Fatalf("shifted KL %g should exceed stable KL %g", klMoved, klStable)
	}
}

func TestDivergenceNeedsBothSides(t *testing.T) {
	full := sketchOf(100, func(i int) float64 { return float64(i) })
	empty := New(Config{}).Snapshot()
	if _, err := PSI(full, empty); err == nil {
		t.Fatal("want error for empty live side")
	}
	if _, err := PSI(empty, full); err == nil {
		t.Fatal("want error for empty reference side")
	}
}

func TestQuantile(t *testing.T) {
	s := New(Config{Lo: 1e-6, Hi: 1e3, Buckets: 128})
	for i := 1; i <= 1000; i++ {
		s.Observe(float64(i) / 100) // uniform 0.01..10
	}
	snap := s.Snapshot()
	p50 := snap.Quantile(0.5)
	p95 := snap.Quantile(0.95)
	// Bucket resolution is gamma ≈ 1.18, so allow ~20% slack.
	if p50 < 4 || p50 > 6.5 {
		t.Fatalf("p50 = %g, want ≈5", p50)
	}
	if p95 < 8.5 || p95 > 10.5 {
		t.Fatalf("p95 = %g, want ≈9.5", p95)
	}
	if got := snap.Quantile(1); got != snap.Max {
		t.Fatalf("p100 = %g, want max %g", got, snap.Max)
	}
	if (Snapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty snapshot quantile should be 0")
	}
}

func TestConcurrentObserve(t *testing.T) {
	s := New(Config{})
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				s.Observe(rng.Float64() * 1000)
			}
		}(int64(g))
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", snap.Count, goroutines*per)
	}
	var bucketTotal int64
	for _, c := range snap.Counts {
		bucketTotal += c
	}
	if bucketTotal != snap.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, snap.Count)
	}
}

func BenchmarkObserve(b *testing.B) {
	s := New(Config{})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 100.0
		for pb.Next() {
			s.Observe(v)
			v += 0.5
			if v > 1000 {
				v = 100
			}
		}
	})
}
