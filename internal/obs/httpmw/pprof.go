package httpmw

import (
	"net/http"
	"net/http/pprof"
)

// RegisterPprof mounts net/http/pprof under /v1/debug/pprof/ on mux.
// Registration is opt-in (daemon flag): the endpoints expose goroutine
// stacks and heap contents, and CPU/trace capture pauses are operator
// actions, not something to leave open by default.
//
// pprof.Index resolves profile names from the path after /debug/pprof/,
// so the index route strips the /v1 prefix before delegating.
func RegisterPprof(mux *http.ServeMux) {
	mux.Handle("GET /v1/debug/pprof/", http.StripPrefix("/v1", http.HandlerFunc(pprof.Index)))
	mux.HandleFunc("GET /v1/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /v1/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /v1/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("POST /v1/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /v1/debug/pprof/trace", pprof.Trace)
}
