package experiments

import (
	"fmt"
	"strings"
	"time"

	"gallery/internal/core"
	"gallery/internal/forecast"
	"gallery/internal/sim"
	"gallery/internal/uuid"
)

// Experiment E10 — paper §4.3: "The Gallery system has saved the
// simulation platform an estimated 8GB memory and one hour CPU time per
// simulation." The same marketplace simulation runs twice: training its
// model variants in-run (pre-Gallery) and fetching pre-trained instances
// from Gallery (post-Gallery). The simulated resource ledger's cost
// constants are calibrated to the paper's workload scale (20 variants,
// ~15k training points each); the reproduced *shape* is that Gallery
// eliminates in-run training CPU entirely and collapses model memory to
// the resident instances, while the simulated world behaves the same.

// SimSavingsResult compares the two runs.
type SimSavingsResult struct {
	InSim  sim.Report
	Served sim.Report
}

// CPUSavedSeconds is the per-simulation training CPU eliminated.
func (r *SimSavingsResult) CPUSavedSeconds() float64 {
	return r.InSim.Resources.TrainCPUSeconds - r.Served.Resources.TrainCPUSeconds
}

// MemorySavedBytes is the per-simulation model memory eliminated.
func (r *SimSavingsResult) MemorySavedBytes() int64 {
	return r.InSim.Resources.ModelMemoryBytes - r.Served.Resources.ModelMemoryBytes
}

const (
	simVariants    = 20
	simTrainPoints = 24 * 625
)

// SimulationSavings runs the comparison.
func SimulationSavings() (*SimSavingsResult, error) {
	env := mustEnv(10)
	ids, err := publishSimModels(env)
	if err != nil {
		return nil, err
	}
	base := sim.Config{
		ModelVariants:  simVariants,
		TrainingPoints: simTrainPoints,
		Drivers:        60,
		DurationHours:  8,
		BaseDemand:     400,
		Seed:           2019,
	}
	inSim := base
	inSim.Mode = sim.ModeInSimTraining
	repIn, err := sim.Run(inSim)
	if err != nil {
		return nil, err
	}
	served := base
	served.Mode = sim.ModeGalleryServed
	served.Registry = env.Reg
	served.ModelInstanceIDs = ids
	repServed, err := sim.Run(served)
	if err != nil {
		return nil, err
	}
	return &SimSavingsResult{InSim: repIn, Served: repServed}, nil
}

// publishSimModels trains the variant fleet offline and stores it in
// Gallery, the decoupling the paper's simulation team adopted.
func publishSimModels(env *Env) ([]uuid.UUID, error) {
	m, err := env.Reg.RegisterModel(core.ModelSpec{
		BaseVersionID: "sim_demand", Project: "marketplace-simulation",
		Name: "demand_forecaster", Owner: "simulation-team",
	})
	if err != nil {
		return nil, err
	}
	series := forecast.Generate(forecast.CityConfig{
		Name: "simworld", Base: 400, DailyAmp: 120, NoiseStd: 20, Seed: 99,
	}, time.Unix(0, 0).UTC(), time.Hour, simTrainPoints)

	variants := []func(i int) forecast.Model{
		func(i int) forecast.Model { return &forecast.Heuristic{K: 3 + i} },
		func(i int) forecast.Model { return &forecast.EWMA{Alpha: 0.1 + 0.05*float64(i)} },
		func(i int) forecast.Model { return &forecast.SeasonalNaive{Period: 24} },
		func(i int) forecast.Model { return &forecast.LinearAR{Lags: 6 + i} },
	}
	ids := make([]uuid.UUID, 0, simVariants)
	for i := 0; i < simVariants; i++ {
		fm := variants[i%len(variants)](i / len(variants))
		if err := fm.Train(series); err != nil {
			return nil, err
		}
		blob, err := forecast.Encode(fm)
		if err != nil {
			return nil, err
		}
		env.Clock.Advance(time.Minute)
		in, err := env.Reg.UploadInstance(core.InstanceSpec{
			ModelID: m.ID, Name: fm.Name(), Framework: "gallery-forecast",
		}, blob)
		if err != nil {
			return nil, err
		}
		ids = append(ids, in.ID)
	}
	return ids, nil
}

// Format renders the comparison like the simulation example.
func (r *SimSavingsResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-7s %-10s %-10s %-12s %s\n",
		"mode", "trips", "mean-wait", "util", "train-CPU", "model-memory")
	rows := []struct {
		name string
		rep  sim.Report
	}{{"in-sim training", r.InSim}, {"gallery-served", r.Served}}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-18s %-7d %-10.1f %-10.2f %-12.1f %.2f GiB\n",
			row.name, row.rep.CompletedTrips, row.rep.MeanWaitSec,
			row.rep.DriverUtilization, row.rep.Resources.TrainCPUSeconds,
			float64(row.rep.Resources.ModelMemoryBytes)/(1<<30))
	}
	fmt.Fprintf(&b, "savings per simulation: %.2f GiB memory, %.2f CPU-hours (paper: ~8GB, ~1 CPU-hour)\n",
		float64(r.MemorySavedBytes())/(1<<30), r.CPUSavedSeconds()/3600)
	return b.String()
}
