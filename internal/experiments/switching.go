package experiments

import (
	"fmt"
	"strings"
	"time"

	"gallery/internal/core"
	"gallery/internal/forecast"
	"gallery/internal/rules"
	"gallery/internal/uuid"
)

// Experiment E8 — paper §4.2: dynamic model switching for events
// "improves the accuracy of the served predictions by more than 10% MAPE
// compared to a static served model." Gallery stores event-hour and
// regular-hour production MAPE separately for models with and without
// holiday/event features; the serving system asks the rule engine for the
// appropriate champion for the duration of each event.

// SwitchingCityResult is one city's outcome.
type SwitchingCityResult struct {
	City         string
	StaticMAPE   float64
	SwitchedMAPE float64
}

// Improvement is the relative MAPE improvement of switching.
func (r SwitchingCityResult) Improvement() float64 {
	return 100 * (r.StaticMAPE - r.SwitchedMAPE) / r.StaticMAPE
}

// SwitchingResult is the sweep outcome.
type SwitchingResult struct {
	Cities []SwitchingCityResult
}

// OverallImprovement aggregates across cities.
func (r *SwitchingResult) OverallImprovement() float64 {
	var s, w float64
	for _, c := range r.Cities {
		s += c.StaticMAPE
		w += c.SwitchedMAPE
	}
	return 100 * (s - w) / s
}

const (
	swTrainDays = 42
	swTestDays  = 21
	swHorizon   = 3 // hours ahead the marketplace needs forecasts
)

// DynamicSwitching runs the experiment over nCities synthetic cities.
func DynamicSwitching(nCities int, seed int64) (*SwitchingResult, error) {
	env := mustEnv(seed)
	eventRule := &rules.Rule{
		UUID: "switch-event", Team: "forecasting", Kind: rules.KindSelection,
		When:           `has(metrics, "mape_event")`,
		ModelSelection: "a.metrics.mape_event < b.metrics.mape_event",
	}
	regularRule := &rules.Rule{
		UUID: "switch-regular", Team: "forecasting", Kind: rules.KindSelection,
		When:           `has(metrics, "mape_regular")`,
		ModelSelection: "a.metrics.mape_regular < b.metrics.mape_regular",
	}
	if _, err := env.Repo.Commit("forecasting", "switch rules",
		[]*rules.Rule{eventRule, regularRule}, nil); err != nil {
		return nil, err
	}

	cities := forecast.DefaultCities(nCities, seed)
	for i := range cities {
		for w := 0; w < (swTrainDays+swTestDays)/7; w++ {
			evStart := epoch.Add(time.Duration(w)*7*24*time.Hour + 5*24*time.Hour)
			cities[i].Events = append(cities[i].Events, forecast.Event{
				Start: evStart, End: evStart.Add(48 * time.Hour), Multiplier: 2.0,
			})
		}
	}

	res := &SwitchingResult{}
	for _, city := range cities {
		cr, err := switchingCity(env, city)
		if err != nil {
			return nil, err
		}
		res.Cities = append(res.Cities, cr)
	}
	return res, nil
}

func switchingCity(env *Env, city forecast.CityConfig) (SwitchingCityResult, error) {
	res := SwitchingCityResult{City: city.Name}
	data := forecast.Generate(city, epoch, time.Hour, (swTrainDays+swTestDays)*24)
	trainN := swTrainDays * 24
	values := data.Values()
	eventFlags := make([]bool, len(data))
	for i, p := range data {
		eventFlags[i] = p.Event
	}

	m, err := env.Reg.RegisterModel(core.ModelSpec{
		BaseVersionID: "switch_" + city.Name, Project: "marketplace-forecasting",
		Name: "demand_forecaster", Domain: "UberX",
	})
	if err != nil {
		return res, err
	}

	type cand struct {
		model forecast.Model
		inst  *core.Instance
	}
	var candidates []cand
	for _, fm := range []forecast.Model{
		&forecast.LinearAR{Lags: 24, Horizon: swHorizon},
		&forecast.LinearAR{Lags: 24, Horizon: swHorizon, UseEventFeature: true},
	} {
		if err := fm.Train(data[:trainN]); err != nil {
			return res, err
		}
		blob, err := forecast.Encode(fm)
		if err != nil {
			return res, err
		}
		env.Clock.Advance(time.Minute)
		in, err := env.Reg.UploadInstance(core.InstanceSpec{
			ModelID: m.ID, Name: fm.Name(), City: city.Name, Framework: "gallery-forecast",
		}, blob)
		if err != nil {
			return res, err
		}
		candidates = append(candidates, cand{model: fm, inst: in})
	}
	byID := make(map[uuid.UUID]forecast.Model, len(candidates))
	for _, c := range candidates {
		byID[c.inst.ID] = c.model
	}

	forecastAt := func(mdl forecast.Model, i int) float64 {
		cut := i - swHorizon + 1
		return mdl.Forecast(forecast.Context{
			History: values[:cut], HistoryEvents: eventFlags[:cut],
			Time: data[i].T, Event: data[i].Event,
		})
	}

	report := func(from, to int) error {
		for _, c := range candidates {
			var pe, ae, pr, ar []float64
			for i := from; i < to; i++ {
				p := forecastAt(c.model, i)
				if data[i].Event {
					pe, ae = append(pe, p), append(ae, values[i])
				} else {
					pr, ar = append(pr, p), append(ar, values[i])
				}
			}
			env.Clock.Advance(time.Minute)
			if len(ae) > 0 {
				met, err := forecast.Evaluate(pe, ae)
				if err != nil {
					return err
				}
				if _, err := env.Reg.InsertMetric(c.inst.ID, "mape_event", core.ScopeProduction, met.MAPE); err != nil {
					return err
				}
			}
			if len(ar) > 0 {
				met, err := forecast.Evaluate(pr, ar)
				if err != nil {
					return err
				}
				if _, err := env.Reg.InsertMetric(c.inst.ID, "mape_regular", core.ScopeProduction, met.MAPE); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := report(trainN-7*24, trainN); err != nil {
		return res, err
	}

	serve := func(pick func(i int) (forecast.Model, error)) (float64, error) {
		var preds, actuals []float64
		for day := 0; day < swTestDays; day++ {
			from := trainN + day*24
			for i := from; i < from+24; i++ {
				mdl, err := pick(i)
				if err != nil {
					return 0, err
				}
				preds = append(preds, forecastAt(mdl, i))
				actuals = append(actuals, values[i])
			}
			if err := report(from, from+24); err != nil {
				return 0, err
			}
		}
		met, err := forecast.Evaluate(preds, actuals)
		if err != nil {
			return 0, err
		}
		return met.MAPE, nil
	}

	// Static baseline: the model without event features, fixed.
	static := candidates[0].model
	res.StaticMAPE, err = serve(func(int) (forecast.Model, error) { return static, nil })
	if err != nil {
		return res, err
	}

	champion := func(ruleID string) (forecast.Model, error) {
		in, err := env.Engine.SelectModel(ruleID, core.InstanceFilter{City: city.Name})
		if err != nil {
			return nil, err
		}
		return byID[in.ID], nil
	}
	res.SwitchedMAPE, err = serve(func(i int) (forecast.Model, error) {
		if data[i].Event {
			return champion("switch-event")
		}
		return champion("switch-regular")
	})
	return res, err
}

// Format renders the switching table.
func (r *SwitchingResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-14s %-14s %s\n", "city", "static MAPE", "switched MAPE", "improvement")
	for _, c := range r.Cities {
		fmt.Fprintf(&b, "%-16s %-14.2f %-14.2f %.1f%%\n", c.City, c.StaticMAPE, c.SwitchedMAPE, c.Improvement())
	}
	fmt.Fprintf(&b, "overall improvement: %.1f%% (paper §4.2 reports >10%%)\n", r.OverallImprovement())
	return b.String()
}
