package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"gallery/internal/benchfmt"
	"gallery/internal/relstore"
)

// Experiment E21 — relstore query-planner hot paths. The paper's model
// search ran over cross-DC MySQL at million-instance scale (§3.5, §4);
// our substitute must keep the same query shapes index-driven. This
// experiment measures the planner's load-bearing paths directly against
// a registry-shaped table: "newest instances after T" (an index-driven
// range scan whose column is also the ORDER BY column), a greater-than
// scan that must seek past a huge equal-value run, and the full-scan +
// sort reference. Every arm cross-checks its rows against a forced full
// scan, so a planner bug fails the experiment rather than skewing it.

// RelQueryCase is one measured query shape.
type RelQueryCase struct {
	Name    string
	Iters   int
	NsPerOp float64
	P50     time.Duration
	P99     time.Duration
	Scanned int  // rows/postings the store examined (relstore Explain)
	Matched int  // rows matching before offset/limit
	Rows    int  // rows returned
	Ordered bool // order streamed from an index, no post-scan sort
}

// RelQueryResult is the experiment outcome.
type RelQueryResult struct {
	TableRows int
	DupRun    int // size of the duplicate mape run the OpGt seek must skip
	Cases     []RelQueryCase
}

// relQuerySchema is the registry-shaped benchmark table.
func relQuerySchema() relstore.Schema {
	return relstore.Schema{
		Table: "instances",
		Columns: []relstore.Column{
			{Name: "id", Kind: relstore.KindString},
			{Name: "city", Kind: relstore.KindString, Nullable: true},
			{Name: "created", Kind: relstore.KindTime},
			{Name: "mape", Kind: relstore.KindFloat},
		},
		Key:     "id",
		Indexes: []string{"city", "created", "mape"},
	}
}

// RelQuery builds an n-row table and measures each planner path iters
// times.
func RelQuery(n, iters int) (*RelQueryResult, error) {
	s := relstore.NewMemory()
	if err := s.CreateTable(relQuerySchema()); err != nil {
		return nil, err
	}
	cities := []string{
		"sf", "nyc", "la", "chicago", "london", "paris", "tokyo", "sydney",
		"berlin", "madrid", "rome", "dublin", "oslo", "lima", "cairo", "delhi",
	}
	dupRun := 0
	for i := 0; i < n; i++ {
		// Half the rows share one exact mape value: the worst case for a
		// greater-than index scan, which must not crawl the equal run.
		mape := 0.5
		if i%2 == 1 {
			mape = 0.5 + float64(i%997)/2000 + 0.001
		} else {
			dupRun++
		}
		row := relstore.Row{
			"id":      relstore.String(fmt.Sprintf("i%06d", i)),
			"city":    relstore.String(cities[i%len(cities)]),
			"created": relstore.Time(epoch.Add(time.Duration(i) * time.Second)),
			"mape":    relstore.Float(mape),
		}
		if err := s.Insert("instances", row); err != nil {
			return nil, err
		}
	}

	res := &RelQueryResult{TableRows: n, DupRun: dupRun}
	cutoff := epoch.Add(time.Duration(n-200) * time.Second)
	queries := []struct {
		name string
		q    relstore.Query
	}{
		// ORDER BY shares the index column that drives the scan. The
		// planner must stream the index (desc) and stop at the limit,
		// not sort every match.
		{"newest_after_cutoff_desc", relstore.Query{
			Table:   "instances",
			Where:   []relstore.Constraint{{Field: "created", Op: relstore.OpGt, Value: relstore.Time(cutoff)}},
			OrderBy: "created", Desc: true, Limit: 50,
		}},
		// Same shape ascending, with paging.
		{"after_cutoff_asc_paged", relstore.Query{
			Table:   "instances",
			Where:   []relstore.Constraint{{Field: "created", Op: relstore.OpGe, Value: relstore.Time(cutoff)}},
			OrderBy: "created", Limit: 50, Offset: 25,
		}},
		// Greater-than over a column where half the table shares the
		// boundary value: the scan must seek past the equal run.
		{"gt_over_dup_run", relstore.Query{
			Table: "instances",
			Where: []relstore.Constraint{{Field: "mape", Op: relstore.OpGt, Value: relstore.Float(0.5)}},
			Limit: 25,
		}},
		// Constraint index and ORDER BY on different columns: the sort
		// is genuinely required; this is the reference cost.
		{"eq_city_sorted", relstore.Query{
			Table:   "instances",
			Where:   []relstore.Constraint{{Field: "city", Op: relstore.OpEq, Value: relstore.String("sf")}},
			OrderBy: "created", Desc: true, Limit: 20,
		}},
		// Full scan + sort: what every query costs without the planner.
		{"forcescan_sort_reference", relstore.Query{
			Table:   "instances",
			OrderBy: "created", Desc: true, Limit: 50, ForceScan: true,
		}},
	}

	for _, qc := range queries {
		rows, ex, err := s.SelectExplain(qc.q)
		if err != nil {
			return nil, fmt.Errorf("relquery %s: %w", qc.name, err)
		}
		// Cross-check against a forced full scan: with an ORDER BY the row
		// ids must match in order; without one the result order is
		// unspecified, so check membership and count against the full
		// (unlimited) match set instead. A planner bug fails the
		// experiment rather than skewing it.
		forced := qc.q
		forced.ForceScan = true
		if qc.q.OrderBy != "" {
			frows, _, err := s.SelectExplain(forced)
			if err != nil {
				return nil, err
			}
			if len(rows) != len(frows) {
				return nil, fmt.Errorf("relquery %s: planner returned %d rows, full scan %d", qc.name, len(rows), len(frows))
			}
			for i := range rows {
				if rows[i]["id"].Str != frows[i]["id"].Str {
					return nil, fmt.Errorf("relquery %s: row %d differs from full scan (%s vs %s)",
						qc.name, i, rows[i]["id"].Str, frows[i]["id"].Str)
				}
			}
		} else {
			forced.Limit, forced.Offset = 0, 0
			frows, _, err := s.SelectExplain(forced)
			if err != nil {
				return nil, err
			}
			want := len(frows)
			if qc.q.Limit > 0 && qc.q.Limit < want {
				want = qc.q.Limit
			}
			if len(rows) != want {
				return nil, fmt.Errorf("relquery %s: planner returned %d rows, want %d", qc.name, len(rows), want)
			}
			ids := make(map[string]bool, len(frows))
			for _, r := range frows {
				ids[r["id"].Str] = true
			}
			for _, r := range rows {
				if !ids[r["id"].Str] {
					return nil, fmt.Errorf("relquery %s: row %s not in full-scan match set", qc.name, r["id"].Str)
				}
			}
		}

		lats := make([]time.Duration, iters)
		start := time.Now()
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			if _, err := s.Select(qc.q); err != nil {
				return nil, err
			}
			lats[i] = time.Since(t0)
		}
		total := time.Since(start)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		res.Cases = append(res.Cases, RelQueryCase{
			Name:    qc.name,
			Iters:   iters,
			NsPerOp: float64(total.Nanoseconds()) / float64(iters),
			P50:     lats[len(lats)/2],
			P99:     lats[len(lats)*99/100],
			Scanned: ex.Scanned,
			Matched: ex.Matched,
			Rows:    len(rows),
			Ordered: ex.Ordered,
		})
	}
	return res, nil
}

// Case returns the named case, or nil.
func (r *RelQueryResult) Case(name string) *RelQueryCase {
	for i := range r.Cases {
		if r.Cases[i].Name == name {
			return &r.Cases[i]
		}
	}
	return nil
}

// Format renders the planner table as paper-style rows.
func (r *RelQueryResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "relstore query planner over %d rows (dup run %d):\n", r.TableRows, r.DupRun)
	fmt.Fprintf(&b, "  %-28s %12s %10s %10s %9s %9s %6s %8s\n",
		"query", "ns/op", "p50", "p99", "scanned", "matched", "rows", "ordered")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "  %-28s %12.0f %10v %10v %9d %9d %6d %8v\n",
			c.Name, c.NsPerOp, c.P50.Round(time.Microsecond), c.P99.Round(time.Microsecond),
			c.Scanned, c.Matched, c.Rows, c.Ordered)
	}
	if stream, ref := r.Case("newest_after_cutoff_desc"), r.Case("forcescan_sort_reference"); stream != nil && ref != nil && stream.NsPerOp > 0 {
		fmt.Fprintf(&b, "  streamed vs full-scan+sort: %.1fx faster\n", ref.NsPerOp/stream.NsPerOp)
	}
	return b.String()
}

// BenchMetrics emits the experiment's BENCH_relquery.json metrics.
// Scanned counts and planner verdicts are deterministic and gate; ns/op
// and quantiles are hardware-bound trajectory info.
func (r *RelQueryResult) BenchMetrics() []benchfmt.Metric {
	var ms []benchfmt.Metric
	for _, c := range r.Cases {
		ms = append(ms,
			benchfmt.Metric{Name: c.Name + "_ns_per_op", Unit: "ns/op", Value: c.NsPerOp, Better: benchfmt.Info},
			benchfmt.Metric{Name: c.Name + "_p99_seconds", Unit: "s", Value: c.P99.Seconds(), Better: benchfmt.Info},
			benchfmt.Metric{Name: c.Name + "_rows_scanned", Unit: "rows", Value: float64(c.Scanned), Better: benchfmt.LowerIsBetter, Tol: 0.01},
			benchfmt.Metric{Name: c.Name + "_rows_returned", Unit: "rows", Value: float64(c.Rows), Better: benchfmt.Info},
		)
		ordered := 0.0
		if c.Ordered {
			ordered = 1
		}
		// Gate the planner verdict on the paths that must stream.
		switch c.Name {
		case "newest_after_cutoff_desc", "after_cutoff_asc_paged":
			ms = append(ms, benchfmt.Metric{Name: c.Name + "_ordered", Value: ordered, Better: benchfmt.HigherIsBetter, Tol: 0.01})
		}
	}
	if stream, ref := r.Case("newest_after_cutoff_desc"), r.Case("forcescan_sort_reference"); stream != nil && ref != nil && stream.NsPerOp > 0 {
		ms = append(ms, benchfmt.Metric{
			Name: "streamed_vs_fullsort_speedup", Unit: "x",
			Value: ref.NsPerOp / stream.NsPerOp, Better: benchfmt.Info,
		})
	}
	return ms
}
