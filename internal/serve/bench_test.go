package serve

import (
	"context"
	"testing"
	"time"

	"gallery/internal/api"
	"gallery/internal/forecast"
	"gallery/internal/obs"
)

// nopSink discards health observations; it exists to turn recording on
// without measuring a network.
type nopSink struct{}

func (nopSink) ReportHealthObservations(context.Context, api.HealthObservationsRequest) error {
	return nil
}

// benchGateway serves one trained LinearAR with a month-long history
// window — the regime where per-call buffer reuse matters.
func benchGateway(b *testing.B, maxBatch int, health bool) (*Gateway, string, forecast.Context) {
	b.Helper()
	series := forecast.Generate(forecast.CityConfig{
		Name: "sf", Base: 100, GrowthPerWeek: 3, DailyAmp: 20, WeeklyAmp: 10, NoiseStd: 2, Seed: 7,
	}, time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC), time.Hour, 24*56)
	m := &forecast.LinearAR{Lags: 48}
	if err := m.Train(series); err != nil {
		b.Fatal(err)
	}
	src := newFakeSource()
	src.promote(b, "m1", 0, m)
	opts := Options{
		RefreshInterval: -1,
		MaxBatch:        maxBatch,
		BatchWorkers:    1,
		Obs:             obs.NewRegistry(),
	}
	if health {
		opts.HealthSink = nopSink{}
		opts.HealthInterval = -1 // record on the hot path, no flush loop
	}
	g := New(src, opts)
	b.Cleanup(g.Close)
	fctx := forecast.Context{
		History: series.Values()[len(series)-24*28:],
		Time:    series[len(series)-1].T.Add(time.Hour),
	}
	if _, err := g.Predict("m1", fctx); err != nil {
		b.Fatal(err)
	}
	return g, "m1", fctx
}

func benchPredict(b *testing.B, maxBatch int, health bool) {
	g, id, fctx := benchGateway(b, maxBatch, health)
	b.ReportAllocs()
	// Several client goroutines per core: batches only form when requests
	// actually overlap, which is the serving regime being measured.
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := g.Predict(id, fctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServingGateway is the batching on/off ablation under
// concurrent load (run with -cpu to vary client parallelism), plus the
// health-recording on/off arms: recording must cost a few atomics, not
// allocations.
func BenchmarkServingGateway(b *testing.B) {
	b.Run("unbatched", func(b *testing.B) { benchPredict(b, 0, false) })
	b.Run("batch=32", func(b *testing.B) { benchPredict(b, 32, false) })
	b.Run("unbatched/health", func(b *testing.B) { benchPredict(b, 0, true) })
	b.Run("batch=32/health", func(b *testing.B) { benchPredict(b, 32, true) })
}

// TestPredictAllocsWithHealthRecording pins the acceptance bound: health
// recording off adds zero allocations to the predict path, and recording
// on adds at most two per op.
func TestPredictAllocsWithHealthRecording(t *testing.T) {
	measure := func(health bool) float64 {
		src := newFakeSource()
		src.promote(t, "m1", 0, &forecast.Heuristic{K: 1})
		opts := Options{RefreshInterval: -1, Obs: obs.NewRegistry()}
		if health {
			opts.HealthSink = nopSink{}
			opts.HealthInterval = -1
		}
		g := New(src, opts)
		t.Cleanup(g.Close)
		fctx := forecast.Context{History: []float64{10, 20, 30}}
		if _, err := g.Predict("m1", fctx); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(200, func() {
			if _, err := g.Predict("m1", fctx); err != nil {
				t.Fatal(err)
			}
		})
	}
	off := measure(false)
	on := measure(true)
	if on-off > 2 {
		t.Fatalf("health recording adds %.1f allocs/op (off=%.1f on=%.1f), want ≤2", on-off, off, on)
	}
}
