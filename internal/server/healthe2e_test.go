package server

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"gallery/internal/api"
	"gallery/internal/blobstore"
	"gallery/internal/client"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/forecast"
	"gallery/internal/health"
	"gallery/internal/obs"
	"gallery/internal/relstore"
	"gallery/internal/rules"
	"gallery/internal/serve"
	"gallery/internal/uuid"
)

// TestContinuousHealthEndToEnd drives the whole model-health pipeline over
// real HTTP, with no manual metric ingestion anywhere: a serving gateway
// records distribution sketches of what the model predicts, flushes them
// to galleryd through the client, the monitor detects the live
// distribution drifting off its reference via PSI, flips the model to
// degraded, and the resulting health.drift event fires a retrain rule in
// the engine.
func TestContinuousHealthEndToEnd(t *testing.T) {
	clk := clock.NewMock(t0)
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk,
		UUIDs: uuid.NewSeeded(21),
	})
	if err != nil {
		t.Fatal(err)
	}
	repo := rules.NewRepo(clk)
	eng := rules.NewEngine(reg, repo, clk)
	mon := health.New(reg, health.Config{
		ReferenceWindows: 2,
		LiveWindows:      2,
		Interval:         -1, // the test drives Evaluate
		Obs:              obs.NewRegistry(),
		Events:           eng,
	})
	srv := NewWith(reg, repo, eng, Options{Obs: obs.NewRegistry(), Health: mon})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	c := client.New(ts.URL, ts.Client())

	// The standing policy: when a model's live distribution drifts hard,
	// retrain it.
	if _, err := repo.Commit("oncall", "retrain on drift", []*rules.Rule{{
		UUID:        "5dfc0f60-0000-4000-8000-0000000000e2",
		Team:        "forecasting",
		Name:        "retrain-on-drift",
		Kind:        rules.KindAction,
		When:        `health.event == "drift" && health.psi > 0.25`,
		Environment: "production",
		Actions:     []rules.ActionRef{{Action: "retrain"}},
	}}, nil); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var fired []*rules.ActionContext
	eng.RegisterAction("retrain", func(ac *rules.ActionContext) error {
		mu.Lock()
		defer mu.Unlock()
		fired = append(fired, ac)
		return nil
	})

	// A model whose prediction is the last history value, promoted to
	// production through the API.
	m, err := c.RegisterModel(api.RegisterModelRequest{
		BaseVersionID: "bv-demand", Project: "forecasting", Name: "demand", Domain: "UberX",
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := forecast.Encode(&forecast.Heuristic{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	in, err := c.UploadInstance(api.UploadInstanceRequest{ModelID: m.ID, Name: "demand", City: "sf", Blob: blob})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PromoteInstance(in.ID); err != nil {
		t.Fatal(err)
	}

	// The gateway loads models from galleryd and flushes health windows
	// back into it, both through the same HTTP client.
	gw := serve.New(c, serve.Options{
		Name:            "gw-e2e",
		RefreshInterval: -1,
		HealthSink:      c,
		HealthInterval:  -1, // flushed explicitly per window
		Obs:             obs.NewRegistry(),
	})
	t.Cleanup(gw.Close)

	serveWindow := func(mean float64, seed int64) {
		t.Helper()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			// Heuristic{K:1} predicts the last history value, so traffic
			// with a shifted tail shifts the model's output distribution.
			hist := []float64{mean, mean, mean + 20*rng.NormFloat64()}
			if _, err := gw.Predict(m.ID, forecast.Context{History: hist}); err != nil {
				t.Fatal(err)
			}
		}
		if err := gw.FlushHealth(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	// Four windows of reference-shaped traffic: two become the reference,
	// two fill the live ring. Verdict: healthy.
	for s := int64(0); s < 4; s++ {
		serveWindow(200, 100+s)
	}
	mon.Evaluate(context.Background())
	mh, err := c.ModelHealth(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mh.Status != "healthy" {
		t.Fatalf("baseline status = %s (%v) psi=%g", mh.Status, mh.Reasons, mh.PSI)
	}
	if mh.InstanceID != in.ID {
		t.Fatalf("health tracks instance %s, want %s", mh.InstanceID, in.ID)
	}

	// The world changes: live traffic shifts 1.6x. The sketches flushed by
	// the gateway carry the evidence; nothing else is ingested.
	for s := int64(0); s < 2; s++ {
		serveWindow(320, 200+s)
	}
	mon.Evaluate(context.Background())
	eng.Flush()

	mh, err = c.ModelHealth(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mh.Status != "degraded" || mh.PSI < 0.25 {
		t.Fatalf("post-shift status = %s psi=%g (%v), want degraded", mh.Status, mh.PSI, mh.Reasons)
	}
	list, err := c.ListModelHealth()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ModelID != m.ID {
		t.Fatalf("health list = %+v", list)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 1 {
		t.Fatalf("retrain fired %d times, want 1", len(fired))
	}
	if fired[0].Instance == nil || fired[0].Instance.ID.String() != in.ID {
		t.Fatalf("retrain action context = %+v", fired[0].Instance)
	}
}

// TestModelHealthNotFound pins the 404 path of the health read endpoints.
func TestModelHealthNotFound(t *testing.T) {
	clk := clock.NewMock(t0)
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk, UUIDs: uuid.NewSeeded(22),
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := health.New(reg, health.Config{Interval: -1, Obs: obs.NewRegistry()})
	srv := NewWith(reg, nil, nil, Options{Obs: obs.NewRegistry(), Health: mon})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	c := client.New(ts.URL, ts.Client())

	if _, err := c.ModelHealth(uuid.NewSeeded(5).New().String()); err == nil {
		t.Fatal("untracked model did not 404")
	}
	list, err := c.ListModelHealth()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("empty monitor lists %+v", list)
	}
}
