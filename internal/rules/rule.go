// Package rules implements Gallery's orchestration rule engine (paper
// §3.7): Given/When/Then rules over model metadata and metrics that either
// select a model to serve or trigger callback actions such as deployment,
// alerting, and retraining.
//
// The design mirrors the paper's:
//
//   - two rule templates — model selection rules and action rules
//     (§3.7.1, Listings 1–2);
//   - rule conditions written in an expression language (the paper uses
//     JEXL; here, internal/expr);
//   - rules stored in a versioned repository with validation before a
//     commit can affect production (the paper uses a Git repo; here,
//     a content-hashed commit log — see repo.go);
//   - evaluation is event based: a direct request to the rule trigger, or
//     an update to metadata/metrics referenced by a registered rule
//     (§3.7.2, Fig. 8), flowing through a job queue; and
//   - framework-agnostic callback actions registered by applications,
//     plus a default set (alerting, logging).
package rules

import (
	"encoding/json"
	"errors"
	"fmt"

	"gallery/internal/expr"
)

// Kind distinguishes the two rule templates.
type Kind string

// Rule kinds.
const (
	KindSelection Kind = "selection"
	KindAction    Kind = "action"
)

// ActionRef names a registered callback with its parameters.
type ActionRef struct {
	Action string         `json:"action"`
	Params map[string]any `json:"params,omitempty"`
}

// Rule is one Given/When/Then rule. Given and When are boolean expressions
// over a candidate instance's environment (model_name, model_domain, city,
// metrics.*, ...). For selection rules, ModelSelection is a comparator
// expression over two candidate environments bound to a and b, true when a
// is preferred — e.g. "a.created > b.created" for freshest-first.
type Rule struct {
	UUID string `json:"uuid"`
	Team string `json:"team"`
	Name string `json:"name"`
	Kind Kind   `json:"kind"`

	Given       string `json:"given,omitempty"`
	When        string `json:"when,omitempty"`
	Environment string `json:"environment,omitempty"`

	ModelSelection string      `json:"model_selection,omitempty"`
	Actions        []ActionRef `json:"callback_actions,omitempty"`
}

// ErrInvalidRule reports a rule that fails validation.
var ErrInvalidRule = errors.New("rules: invalid rule")

// Validate checks structural and syntactic correctness: this is the test
// gate the paper runs before a rule checked into the repo can impact
// production.
func (r *Rule) Validate() error {
	if r.UUID == "" {
		return fmt.Errorf("%w: missing uuid", ErrInvalidRule)
	}
	if r.Team == "" {
		return fmt.Errorf("%w %s: missing team", ErrInvalidRule, r.UUID)
	}
	switch r.Kind {
	case KindSelection:
		if r.ModelSelection == "" {
			return fmt.Errorf("%w %s: selection rule needs model_selection", ErrInvalidRule, r.UUID)
		}
		if len(r.Actions) != 0 {
			return fmt.Errorf("%w %s: selection rule cannot have callback_actions", ErrInvalidRule, r.UUID)
		}
		if _, err := expr.Parse(r.ModelSelection); err != nil {
			return fmt.Errorf("%w %s: model_selection: %v", ErrInvalidRule, r.UUID, err)
		}
	case KindAction:
		if len(r.Actions) == 0 {
			return fmt.Errorf("%w %s: action rule needs callback_actions", ErrInvalidRule, r.UUID)
		}
		if r.ModelSelection != "" {
			return fmt.Errorf("%w %s: action rule cannot have model_selection", ErrInvalidRule, r.UUID)
		}
		for i, a := range r.Actions {
			if a.Action == "" {
				return fmt.Errorf("%w %s: callback_actions[%d] has no action name", ErrInvalidRule, r.UUID, i)
			}
		}
	default:
		return fmt.Errorf("%w %s: unknown kind %q", ErrInvalidRule, r.UUID, r.Kind)
	}
	for field, src := range map[string]string{"given": r.Given, "when": r.When} {
		if src == "" {
			continue
		}
		if _, err := expr.Parse(src); err != nil {
			return fmt.Errorf("%w %s: %s: %v", ErrInvalidRule, r.UUID, field, err)
		}
	}
	return nil
}

// Condition returns the conjunction of Given and When as parsed nodes.
// Either may be empty (treated as true).
func (r *Rule) Condition() (given, when expr.Node, err error) {
	if r.Given != "" {
		given, err = expr.Parse(r.Given)
		if err != nil {
			return nil, nil, err
		}
	}
	if r.When != "" {
		when, err = expr.Parse(r.When)
		if err != nil {
			return nil, nil, err
		}
	}
	return given, when, nil
}

// WatchedIdents lists the top-level identifiers the rule's conditions
// reference; the engine uses this to decide which update events should
// re-evaluate the rule (paper §3.7.2: "updating any metadata or metrics
// specific in a registered rule").
func (r *Rule) WatchedIdents() []string {
	set := make(map[string]bool)
	for _, src := range []string{r.Given, r.When} {
		if src == "" {
			continue
		}
		n, err := expr.Parse(src)
		if err != nil {
			continue // Validate catches this; don't watch anything
		}
		for _, id := range expr.Idents(n) {
			set[id] = true
		}
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	return out
}

// MarshalJSON/UnmarshalJSON use the plain struct encoding; Canonical
// produces the stable byte form used for commit hashing.
func (r *Rule) Canonical() ([]byte, error) {
	return json.Marshal(r)
}

// ParseRule decodes and validates a rule from JSON.
func ParseRule(data []byte) (*Rule, error) {
	var r Rule
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidRule, err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
