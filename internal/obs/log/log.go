// Package obslog is Gallery's unified structured-logging pillar: a
// leveled, trace-correlated slog.Handler over a bounded in-memory ring.
// Every log line a process emits — the HTTP access log, ad-hoc subsystem
// errors — flows through one pipeline that stamps the active trace ID, so
// log lines, audit events, and traces all join on the same key. The ring
// is served at GET /v1/debug/logs with level/since filters.
//
// When a level is disabled the handler's only cost is the Enabled check:
// slog builds no record and the handler allocates nothing.
package obslog

import (
	"context"
	"log/slog"
	"strings"
	"sync"
	"time"

	"gallery/internal/obs/trace"
)

// Entry is one captured log line.
type Entry struct {
	Seq     uint64            `json:"seq"`
	Time    time.Time         `json:"time"`
	Level   string            `json:"level"`
	Msg     string            `json:"msg"`
	TraceID string            `json:"trace_id,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// DefaultCapacity bounds the ring when NewRing is given 0.
const DefaultCapacity = 1024

// Ring is a bounded, concurrency-safe buffer of the newest log entries.
// Sequence numbers are monotonic for the life of the process, so a reader
// polling with "after seq" never re-reads or misses a retained line.
type Ring struct {
	mu    sync.Mutex
	buf   []Entry // ring storage, len == cap once full
	size  int     // capacity
	next  uint64  // seq assigned to the next entry
	count int     // entries stored so far, saturating at size
}

// NewRing returns a ring retaining up to capacity entries.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Ring{buf: make([]Entry, capacity), size: capacity}
}

func (r *Ring) append(e Entry) {
	r.mu.Lock()
	e.Seq = r.next
	r.buf[int(r.next)%r.size] = e
	r.next++
	if r.count < r.size {
		r.count++
	}
	r.mu.Unlock()
}

// Filter selects entries from a snapshot read.
type Filter struct {
	// MinLevel drops entries below this level.
	MinLevel slog.Level
	// Since drops entries logged before this instant (zero = no bound).
	Since time.Time
	// AfterSeq drops entries with Seq <= AfterSeq; pass the NextSeq of a
	// previous read to poll for new lines only.
	AfterSeq uint64
	// HasAfterSeq distinguishes "AfterSeq 0" from "no seq bound".
	HasAfterSeq bool
	// Limit keeps the newest N matches (0 = all retained).
	Limit int
}

// Entries returns retained entries matching f, oldest first, plus the
// sequence number a follow-up poll should pass as AfterSeq.
func (r *Ring) Entries(f Filter) (entries []Entry, nextSeq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	start := int(r.next) - r.count
	for i := start; i < int(r.next); i++ {
		e := r.buf[i%r.size]
		if parseLevelName(e.Level) < f.MinLevel {
			continue
		}
		if !f.Since.IsZero() && e.Time.Before(f.Since) {
			continue
		}
		if f.HasAfterSeq && e.Seq <= f.AfterSeq {
			continue
		}
		entries = append(entries, e)
	}
	if f.Limit > 0 && len(entries) > f.Limit {
		entries = entries[len(entries)-f.Limit:]
	}
	if r.next == 0 {
		return entries, 0
	}
	return entries, r.next - 1
}

// Len reports how many entries are currently retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// ParseLevel converts a level name ("debug", "info", "warn", "error") to
// a slog.Level, defaulting to info for unknown names.
func ParseLevel(s string) slog.Level {
	return parseLevelName(s)
}

func parseLevelName(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// Handler is a slog.Handler that captures records into a Ring and
// optionally tees them to a downstream handler (e.g. a JSON handler on
// stderr). The trace ID is taken from the record's context — or from an
// explicit "trace_id" attribute for call sites that pass no context.
type Handler struct {
	ring   *Ring
	level  slog.Leveler
	next   slog.Handler
	attrs  []slog.Attr
	prefix string // flattened group path, "a.b."
}

// NewHandler builds a Handler over ring. level nil means LevelInfo; next
// nil disables the tee.
func NewHandler(ring *Ring, level slog.Leveler, next slog.Handler) *Handler {
	if ring == nil {
		ring = NewRing(0)
	}
	if level == nil {
		level = slog.LevelInfo
	}
	return &Handler{ring: ring, level: level, next: next}
}

// Ring exposes the handler's buffer for the /v1/debug/logs endpoint.
func (h *Handler) Ring() *Ring { return h.ring }

// Enabled implements slog.Handler; it allocates nothing, so disabled
// levels cost exactly this comparison.
func (h *Handler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= h.level.Level()
}

// Handle implements slog.Handler.
func (h *Handler) Handle(ctx context.Context, r slog.Record) error {
	e := Entry{Time: r.Time, Level: levelName(r.Level), Msg: r.Message}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	n := len(h.attrs) + r.NumAttrs()
	if n > 0 {
		e.Attrs = make(map[string]string, n)
	}
	for _, a := range h.attrs {
		addAttr(&e, "", a)
	}
	r.Attrs(func(a slog.Attr) bool {
		addAttr(&e, h.prefix, a)
		return true
	})
	if e.TraceID == "" {
		e.TraceID = trace.FromContext(ctx).TraceIDString()
	}
	h.ring.append(e)
	if h.next != nil && h.next.Enabled(ctx, r.Level) {
		return h.next.Handle(ctx, r)
	}
	return nil
}

// WithAttrs implements slog.Handler.
func (h *Handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	if len(attrs) == 0 {
		return h
	}
	c := *h
	c.attrs = make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	c.attrs = append(c.attrs, h.attrs...)
	for _, a := range attrs {
		a.Key = h.prefix + a.Key
		c.attrs = append(c.attrs, a)
	}
	if h.next != nil {
		c.next = h.next.WithAttrs(attrs)
	}
	return &c
}

// WithGroup implements slog.Handler; groups flatten into dotted keys.
func (h *Handler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	c := *h
	c.prefix = h.prefix + name + "."
	if h.next != nil {
		c.next = h.next.WithGroup(name)
	}
	return &c
}

func addAttr(e *Entry, prefix string, a slog.Attr) {
	if a.Value.Kind() == slog.KindGroup {
		for _, g := range a.Value.Group() {
			addAttr(e, prefix+a.Key+".", g)
		}
		return
	}
	key := prefix + a.Key
	val := a.Value.Resolve().String()
	if key == "trace_id" && e.TraceID == "" {
		e.TraceID = val
	}
	e.Attrs[key] = val
}

func levelName(l slog.Level) string {
	switch {
	case l >= slog.LevelError:
		return "error"
	case l >= slog.LevelWarn:
		return "warn"
	case l >= slog.LevelInfo:
		return "info"
	default:
		return "debug"
	}
}
