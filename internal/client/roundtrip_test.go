package client_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"gallery/internal/api"
	"gallery/internal/blobstore"
	"gallery/internal/client"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/relstore"
	"gallery/internal/rules"
	"gallery/internal/server"
	"gallery/internal/uuid"
)

// TestClientCoversEveryCall drives every client method once against a real
// in-process service, exercising the full wire surface.
func TestClientCoversEveryCall(t *testing.T) {
	clk := clock.NewMock(time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC))
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk, UUIDs: uuid.NewSeeded(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	repo := rules.NewRepo(clk)
	engine := rules.NewEngine(reg, repo, clk)
	ts := httptest.NewServer(server.New(reg, repo, engine))
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())

	// Models.
	b, err := c.RegisterModel(api.RegisterModelRequest{BaseVersionID: "B", InitialMajor: 2, Project: "p"})
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.RegisterModel(api.RegisterModelRequest{
		BaseVersionID: "A", InitialMajor: 4, Project: "p", Name: "linear_regression",
		Domain: "UberX", Upstreams: []string{b.ID},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetModel(a.ID); err != nil {
		t.Fatal(err)
	}
	if ms, err := c.ModelsByBase("A"); err != nil || len(ms) != 1 {
		t.Fatalf("ModelsByBase: %v %v", ms, err)
	}
	a2, err := c.EvolveModel(a.ID, "v2")
	if err != nil {
		t.Fatal(err)
	}
	if chain, err := c.Evolution(a2.ID); err != nil || len(chain) != 2 {
		t.Fatalf("Evolution: %v %v", chain, err)
	}

	// Dependencies and versions.
	if ups, err := c.Upstreams(a.ID); err != nil || len(ups) != 1 {
		t.Fatalf("Upstreams: %v %v", ups, err)
	}
	if downs, err := c.Downstreams(b.ID); err != nil || len(downs) != 2 { // a and a2
		t.Fatalf("Downstreams: %v %v", downs, err)
	}
	d, err := c.RegisterModel(api.RegisterModelRequest{BaseVersionID: "D", Project: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddDependency(a.ID, d.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveDependency(a.ID, d.ID); err != nil {
		t.Fatal(err)
	}
	vs, err := c.VersionHistory(a.ID)
	if err != nil || len(vs) < 3 {
		t.Fatalf("VersionHistory: %d %v", len(vs), err)
	}
	if err := c.Promote(vs[len(vs)-1].ID); err != nil {
		t.Fatal(err)
	}
	if pv, err := c.ProductionVersion(a.ID); err != nil || pv.ID != vs[len(vs)-1].ID {
		t.Fatalf("ProductionVersion: %+v %v", pv, err)
	}

	// Instances, blobs, metrics.
	clk.Advance(time.Minute)
	blob := []byte("model bytes")
	in, err := c.UploadInstance(api.UploadInstanceRequest{
		ModelID: a.ID, Name: "Random Forest", City: "sf", Framework: "SparkML", Blob: blob,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := c.GetInstance(in.ID); err != nil || got.City != "sf" {
		t.Fatalf("GetInstance: %+v %v", got, err)
	}
	if got, err := c.FetchBlob(in.ID); err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("FetchBlob: %q %v", got, err)
	}
	if _, err := c.InsertMetric(in.ID, "bias", "validation", 0.05); err != nil {
		t.Fatal(err)
	}
	if err := c.InsertMetrics(in.ID, "training", map[string]float64{"r2": 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := c.InsertMetricsBlob(in.ID, "production", []byte("mape:7.5")); err != nil {
		t.Fatal(err)
	}
	if series, err := c.MetricSeries(in.ID, "bias", "validation"); err != nil || len(series) != 1 {
		t.Fatalf("MetricSeries: %v %v", series, err)
	}

	// Search and lineage.
	found, err := c.Search(api.SearchRequest{Constraints: []api.SearchConstraint{
		{Field: "city", Operator: "equal", Value: "sf"},
	}})
	if err != nil || len(found) != 1 {
		t.Fatalf("Search: %v %v", found, err)
	}
	if lin, err := c.Lineage("A"); err != nil || len(lin) != 1 {
		t.Fatalf("Lineage: %v %v", lin, err)
	}
	if st, err := c.Stats(); err != nil || st.Instances != 1 {
		t.Fatalf("Stats: %+v %v", st, err)
	}

	// Health.
	if _, err := c.CheckDrift(in.ID, api.DriftRequest{Metric: "mape"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CheckSkew(in.ID, api.SkewRequest{Metric: "mape"}); err != nil {
		t.Fatal(err)
	}
	if rep, err := c.CheckFleetHealth(api.FleetHealthRequest{Project: "p", Metric: "mape"}); err != nil || rep.Total != 1 {
		t.Fatalf("CheckFleetHealth: %+v %v", rep, err)
	}

	// Rules.
	ruleJSON := json.RawMessage(`{
		"uuid": "r1", "team": "t", "kind": "selection",
		"when": "has(metrics, 'bias')",
		"model_selection": "a.created_time > b.created_time"
	}`)
	hash, err := c.CommitRules("me", "add", []json.RawMessage{ruleJSON}, nil)
	if err != nil || hash == "" {
		t.Fatalf("CommitRules: %q %v", hash, err)
	}
	if raw, err := c.ListRules(); err != nil || !bytes.Contains(raw, []byte(`"r1"`)) {
		t.Fatalf("ListRules: %s %v", raw, err)
	}
	if champ, err := c.SelectModel("r1", api.SearchRequest{}); err != nil || champ.ID != in.ID {
		t.Fatalf("SelectModel: %+v %v", champ, err)
	}
	if alerts, err := c.Alerts(); err != nil || len(alerts) != 0 {
		t.Fatalf("Alerts: %v %v", alerts, err)
	}

	// Deprecation last.
	if err := c.DeprecateInstance(in.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.DeprecateModel(a.ID); err != nil {
		t.Fatal(err)
	}
	if got, err := c.GetModel(a.ID); err != nil || !got.Deprecated {
		t.Fatalf("deprecation: %+v %v", got, err)
	}
}
