package server

import (
	"net/http"

	"gallery/internal/api"
	"gallery/internal/incident"
	"gallery/internal/obs/trace"
	"gallery/internal/tenant"
)

// Incident flight-recorder endpoints. Reads are reader-class like every
// other GET but namespace-scoped under auth: a tenant sees only bundles
// attributed to its namespace, while default-namespace identities (the
// operators running the instance) see everything. The manual trigger is
// operator-class (see tenant.Classify) and scoped the same way as SLO
// administration: a tenant operator may only capture against their own
// namespace.

func (s *Server) incidentRoutes() {
	s.handle("POST /v1/incidents", s.handleTriggerIncident)
	s.handle("GET /v1/incidents", s.handleListIncidents)
	s.handle("GET /v1/incidents/{id}", s.handleGetIncident)
}

func (s *Server) handleTriggerIncident(w http.ResponseWriter, r *http.Request) {
	var req api.TriggerIncidentRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if s.tenants != nil {
		id, err := s.admin(r, req.Namespace)
		if err != nil {
			writeErr(w, err)
			return
		}
		if req.Namespace == "" && id.Namespace != tenant.DefaultNamespace {
			// Attribute a tenant operator's capture to their namespace so
			// the bundle stays visible to them on the list path.
			req.Namespace = id.Namespace
		}
	}
	inc, err := s.incidents.Trigger(r.Context(), incident.Trigger{
		Kind:      "manual",
		Namespace: req.Namespace,
		ModelID:   req.ModelID,
		Reason:    req.Reason,
		TraceID:   trace.FromContext(r.Context()).TraceIDString(),
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, inc)
}

func (s *Server) handleListIncidents(w http.ResponseWriter, r *http.Request) {
	ns := ""
	if s.tenants != nil {
		if id, ok := s.tenants.ResolveRequest(r); ok && id.Namespace != tenant.DefaultNamespace {
			ns = id.Namespace
		}
	}
	incs, err := s.incidents.List(ns)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.IncidentList{Incidents: incs})
}

func (s *Server) handleGetIncident(w http.ResponseWriter, r *http.Request) {
	inc, bundle, err := s.incidents.Get(r.Context(), r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	if s.tenants != nil {
		if id, ok := s.tenants.ResolveRequest(r); ok &&
			id.Namespace != tenant.DefaultNamespace && inc.Namespace != id.Namespace {
			// Cross-tenant fetches 404 rather than 403: confirming the
			// bundle exists would already leak another tenant's incident.
			writeErr(w, incident.ErrNotFound)
			return
		}
	}
	writeJSON(w, http.StatusOK, api.IncidentDetail{Incident: inc, Bundle: bundle})
}
