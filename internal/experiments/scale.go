package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"gallery/internal/benchfmt"
	"gallery/internal/core"
	"gallery/internal/uuid"
)

// Experiment E7 — the paper's scale claim: "Gallery is managing more than
// 1 million model instances" (§4). The experiment registers tiers of
// instances (sharded by city like Marketplace Forecasting) and measures
// save throughput and the latency of the operations that must stay fast at
// scale: indexed metadata search, point fetch, and lineage traversal.

// ScaleResult is one tier's measurements. Latencies are the median of
// scaleProbeIters repeated probes: single-shot numbers on shared
// hardware tell more about the scheduler than the store.
type ScaleResult struct {
	Instances      int
	SaveThroughput float64 // instances/second
	SearchLatency  time.Duration
	SearchP99      time.Duration
	SearchResults  int
	FetchLatency   time.Duration
	FetchP99       time.Duration
	LineageLatency time.Duration
	LineageP99     time.Duration
	LineageLen     int
}

// scaleProbeIters repeats each latency probe enough for stable medians.
const scaleProbeIters = 32

// probe runs f repeatedly and returns its median and p99 latency.
func probe(iters int, f func() error) (p50, p99 time.Duration, err error) {
	lats := make([]time.Duration, iters)
	for i := range lats {
		t0 := time.Now()
		if err = f(); err != nil {
			return
		}
		lats[i] = time.Since(t0)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[len(lats)/2], lats[len(lats)*99/100], nil
}

// Scale runs the tier sweep. Blobs are small placeholders: the claim under
// test is metadata-layer scalability, blob bytes live off-path in the blob
// store.
func Scale(tiers []int) ([]ScaleResult, error) {
	var out []ScaleResult
	for _, n := range tiers {
		r, err := scaleTier(n)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func scaleTier(n int) (ScaleResult, error) {
	env := mustEnv(int64(7000 + n))
	res := ScaleResult{Instances: n}

	const cities = 400 // "hundreds of cities across the globe" (§1)
	models := make([]*core.Model, cities)
	for c := 0; c < cities; c++ {
		m, err := env.Reg.RegisterModel(core.ModelSpec{
			BaseVersionID: fmt.Sprintf("demand_city%03d", c),
			Project:       "marketplace", Name: "demand_forecaster", Domain: "UberX",
		})
		if err != nil {
			return res, err
		}
		models[c] = m
	}

	blob := []byte("tiny placeholder model blob")
	start := time.Now()
	var probeID uuid.UUID
	for i := 0; i < n; i++ {
		env.Clock.Advance(time.Second)
		in, err := env.Reg.UploadInstance(core.InstanceSpec{
			ModelID: models[i%cities].ID,
			Name:    "linear_regression",
			City:    fmt.Sprintf("city%03d", i%cities),
		}, blob)
		if err != nil {
			return res, err
		}
		if i == n/2 {
			probeID = in.ID
		}
	}
	res.SaveThroughput = float64(n) / time.Since(start).Seconds()

	// Indexed metadata search: all instances of one city.
	var err error
	var found []*core.Instance
	res.SearchLatency, res.SearchP99, err = probe(scaleProbeIters, func() error {
		var err error
		found, err = env.Reg.SearchInstances(core.InstanceFilter{City: "city123", Limit: 100})
		return err
	})
	if err != nil {
		return res, err
	}
	res.SearchResults = len(found)

	// Point fetch (metadata + blob through the cache).
	res.FetchLatency, res.FetchP99, err = probe(scaleProbeIters, func() error {
		_, err := env.Reg.FetchBlob(probeID)
		return err
	})
	if err != nil {
		return res, err
	}

	// Lineage traversal of one base version id.
	var lineage []*core.Instance
	res.LineageLatency, res.LineageP99, err = probe(scaleProbeIters, func() error {
		var err error
		lineage, err = env.Reg.Lineage("demand_city123")
		return err
	})
	if err != nil {
		return res, err
	}
	res.LineageLen = len(lineage)
	return res, nil
}

// BenchMetrics emits BENCH_scale.json metrics for a tier sweep. Result
// counts are deterministic and gate; throughput and latency are
// hardware-bound trajectory info.
func ScaleBenchMetrics(rs []ScaleResult) []benchfmt.Metric {
	var ms []benchfmt.Metric
	for _, r := range rs {
		prefix := fmt.Sprintf("tier%d_", r.Instances)
		ms = append(ms,
			benchfmt.Metric{Name: prefix + "save_throughput", Unit: "ops/s", Value: r.SaveThroughput, Better: benchfmt.Info},
			benchfmt.Metric{Name: prefix + "search_p50_seconds", Unit: "s", Value: r.SearchLatency.Seconds(), Better: benchfmt.Info},
			benchfmt.Metric{Name: prefix + "search_p99_seconds", Unit: "s", Value: r.SearchP99.Seconds(), Better: benchfmt.Info},
			benchfmt.Metric{Name: prefix + "search_results", Unit: "rows", Value: float64(r.SearchResults), Better: benchfmt.HigherIsBetter, Tol: 0.01},
			benchfmt.Metric{Name: prefix + "fetch_p50_seconds", Unit: "s", Value: r.FetchLatency.Seconds(), Better: benchfmt.Info},
			benchfmt.Metric{Name: prefix + "fetch_p99_seconds", Unit: "s", Value: r.FetchP99.Seconds(), Better: benchfmt.Info},
			benchfmt.Metric{Name: prefix + "lineage_p50_seconds", Unit: "s", Value: r.LineageLatency.Seconds(), Better: benchfmt.Info},
			benchfmt.Metric{Name: prefix + "lineage_len", Unit: "rows", Value: float64(r.LineageLen), Better: benchfmt.HigherIsBetter, Tol: 0.01},
		)
	}
	return ms
}

// FormatScale renders the tier table.
func FormatScale(rs []ScaleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-14s %-16s %-14s %-16s\n",
		"instances", "save inst/s", "search (city)", "fetch", "lineage (base)")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-12d %-14.0f %-16s %-14s %-16s\n",
			r.Instances, r.SaveThroughput,
			fmt.Sprintf("%v/%d hits", r.SearchLatency.Round(time.Microsecond), r.SearchResults),
			r.FetchLatency.Round(time.Microsecond),
			fmt.Sprintf("%v/%d inst", r.LineageLatency.Round(time.Microsecond), r.LineageLen))
	}
	b.WriteString("paper claim: Gallery manages >1M model instances under Michelangelo (§4)\n")
	return b.String()
}
