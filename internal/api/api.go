// Package api defines the wire types of the Gallery service.
//
// The paper's Gallery exposes a standard set of Thrift APIs with
// language-specific clients (§4.1); this reproduction exposes the same
// operations as JSON over HTTP. These DTOs are shared by the server
// (internal/server) and the Go client (internal/client), playing the role
// of the Thrift IDL.
package api

import (
	"encoding/json"
	"time"

	obslog "gallery/internal/obs/log"
	"gallery/internal/obs/profile"
	"gallery/internal/obs/sketch"
)

// Model mirrors core.Model on the wire.
type Model struct {
	ID            string    `json:"id"`
	BaseVersionID string    `json:"base_version_id"`
	Project       string    `json:"project,omitempty"`
	Name          string    `json:"name,omitempty"`
	Owner         string    `json:"owner,omitempty"`
	Team          string    `json:"team,omitempty"`
	Domain        string    `json:"domain,omitempty"`
	Description   string    `json:"description,omitempty"`
	Major         int       `json:"major"`
	PrevModel     string    `json:"prev_model,omitempty"`
	NextModel     string    `json:"next_model,omitempty"`
	Created       time.Time `json:"created"`
	Deprecated    bool      `json:"deprecated"`
}

// RegisterModelRequest creates a model.
type RegisterModelRequest struct {
	BaseVersionID string   `json:"base_version_id"`
	Project       string   `json:"project,omitempty"`
	Name          string   `json:"name,omitempty"`
	Owner         string   `json:"owner,omitempty"`
	Team          string   `json:"team,omitempty"`
	Domain        string   `json:"domain,omitempty"`
	Description   string   `json:"description,omitempty"`
	InitialMajor  int      `json:"initial_major,omitempty"`
	Upstreams     []string `json:"upstreams,omitempty"`
}

// EvolveModelRequest registers a model's successor.
type EvolveModelRequest struct {
	Description string `json:"description,omitempty"`
}

// Instance mirrors core.Instance on the wire.
type Instance struct {
	ID            string    `json:"id"`
	ModelID       string    `json:"model_id"`
	BaseVersionID string    `json:"base_version_id"`
	Project       string    `json:"project,omitempty"`
	Name          string    `json:"name,omitempty"`
	City          string    `json:"city,omitempty"`
	Framework     string    `json:"framework,omitempty"`
	TrainingData  string    `json:"training_data,omitempty"`
	CodePointer   string    `json:"code_pointer,omitempty"`
	Seed          int64     `json:"seed,omitempty"`
	Epochs        int64     `json:"epochs,omitempty"`
	Hyperparams   string    `json:"hyperparams,omitempty"`
	Features      string    `json:"features,omitempty"`
	BlobLocation  string    `json:"blob_location,omitempty"`
	Created       time.Time `json:"created"`
	Deprecated    bool      `json:"deprecated"`
}

// UploadInstanceRequest uploads a trained instance. Blob carries the
// serialized model; encoding/json base64s []byte automatically.
type UploadInstanceRequest struct {
	ModelID      string `json:"model_id"`
	Name         string `json:"name,omitempty"`
	City         string `json:"city,omitempty"`
	Framework    string `json:"framework,omitempty"`
	TrainingData string `json:"training_data,omitempty"`
	CodePointer  string `json:"code_pointer,omitempty"`
	Seed         int64  `json:"seed,omitempty"`
	Epochs       int64  `json:"epochs,omitempty"`
	Hyperparams  string `json:"hyperparams,omitempty"`
	Features     string `json:"features,omitempty"`
	Blob         []byte `json:"blob"`
}

// Metric mirrors core.Metric on the wire.
type Metric struct {
	ID         string    `json:"id"`
	InstanceID string    `json:"instance_id"`
	ModelID    string    `json:"model_id"`
	Name       string    `json:"name"`
	Scope      string    `json:"scope"`
	Value      float64   `json:"value"`
	At         time.Time `json:"at"`
}

// InsertMetricRequest records one measurement (paper Listing 4).
type InsertMetricRequest struct {
	Name  string  `json:"metric_name"`
	Scope string  `json:"scope"`
	Value float64 `json:"value"`
}

// InsertMetricsRequest records a whole metrics blob at once.
type InsertMetricsRequest struct {
	Scope  string             `json:"scope"`
	Values map[string]float64 `json:"values"`
}

// SearchConstraint is one field/operator/value predicate, matching the
// shape of paper Listing 5.
type SearchConstraint struct {
	Field    string  `json:"field"`
	Operator string  `json:"operator"`
	Value    string  `json:"value,omitempty"`
	Number   float64 `json:"number,omitempty"`
}

// SearchRequest queries instances. Metadata constraints apply to instance
// fields; metricName/metricValue constraints join against metrics.
type SearchRequest struct {
	Constraints       []SearchConstraint `json:"constraints"`
	IncludeDeprecated bool               `json:"include_deprecated,omitempty"`
	Limit             int                `json:"limit,omitempty"`
}

// VersionRecord mirrors core.VersionRecord on the wire.
type VersionRecord struct {
	ID          string    `json:"id"`
	ModelID     string    `json:"model_id"`
	Major       int       `json:"major"`
	Minor       int       `json:"minor"`
	Version     string    `json:"version"` // "major.minor"
	Cause       string    `json:"cause"`
	InstanceID  string    `json:"instance_id,omitempty"`
	TriggeredBy string    `json:"triggered_by,omitempty"`
	Created     time.Time `json:"created"`
	Production  bool      `json:"production"`
}

// DependencyRequest adds or removes an edge: From depends on To.
type DependencyRequest struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// CommitRulesRequest lands rules in the rule repository.
type CommitRulesRequest struct {
	Author  string            `json:"author"`
	Message string            `json:"message"`
	Upserts []json.RawMessage `json:"upserts,omitempty"`
	Deletes []string          `json:"deletes,omitempty"`
}

// SelectModelRequest triggers a selection rule (paper Fig. 8, Client 1).
type SelectModelRequest struct {
	Filter SearchRequest `json:"filter"`
}

// DriftRequest asks for a drift check.
type DriftRequest struct {
	Metric    string  `json:"metric"`
	Window    int     `json:"window,omitempty"`
	Baseline  int     `json:"baseline,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
}

// DriftReport mirrors core.DriftReport.
type DriftReport struct {
	InstanceID   string  `json:"instance_id"`
	Metric       string  `json:"metric"`
	BaselineMean float64 `json:"baseline_mean"`
	RecentMean   float64 `json:"recent_mean"`
	Degradation  float64 `json:"degradation"`
	Drifted      bool    `json:"drifted"`
	Checked      bool    `json:"checked"`
	Samples      int     `json:"samples"`
}

// SkewRequest asks for a production-skew check.
type SkewRequest struct {
	Metric    string  `json:"metric"`
	Threshold float64 `json:"threshold,omitempty"`
}

// SkewReport mirrors core.SkewReport.
type SkewReport struct {
	InstanceID   string  `json:"instance_id"`
	Metric       string  `json:"metric"`
	OfflineScope string  `json:"offline_scope,omitempty"`
	Offline      float64 `json:"offline"`
	Production   float64 `json:"production"`
	Gap          float64 `json:"gap"`
	Skewed       bool    `json:"skewed"`
	Checked      bool    `json:"checked"`
}

// FleetHealthRequest asks for a project-wide health sweep (§3.6 insights).
type FleetHealthRequest struct {
	Project string       `json:"project"`
	Metric  string       `json:"metric,omitempty"`
	Drift   DriftRequest `json:"drift,omitempty"`
	Skew    SkewRequest  `json:"skew,omitempty"`
	Limit   int          `json:"limit,omitempty"`
}

// InstanceHealth is one instance's row in a fleet health report.
type InstanceHealth struct {
	InstanceID   string      `json:"instance_id"`
	ModelName    string      `json:"model_name,omitempty"`
	City         string      `json:"city,omitempty"`
	Completeness float64     `json:"completeness"`
	HasMetrics   bool        `json:"has_metrics"`
	Drift        DriftReport `json:"drift"`
	Skew         SkewReport  `json:"skew"`
}

// FleetHealth is the sweep summary.
type FleetHealth struct {
	Project        string           `json:"project"`
	Total          int              `json:"total"`
	Drifted        int              `json:"drifted"`
	Skewed         int              `json:"skewed"`
	LowMetadata    int              `json:"low_metadata"`
	MissingMetrics int              `json:"missing_metrics"`
	Instances      []InstanceHealth `json:"instances"`
}

// Alert is one entry of the rule engine's alert log (§4.2: "alerts have
// proven useful ... and gives engineers or ops an opportunity to
// intervene").
type Alert struct {
	Time       time.Time `json:"time"`
	RuleUUID   string    `json:"rule_uuid"`
	InstanceID string    `json:"instance_id,omitempty"`
	Action     string    `json:"action"`
	Message    string    `json:"message,omitempty"`
}

// Error is the uniform error body.
type Error struct {
	Error string `json:"error"`
}

// PredictRequest asks a serving gateway for a one-step-ahead forecast from
// a model's current production instance. The fields mirror
// forecast.Context.
type PredictRequest struct {
	History []float64 `json:"history"`
	Time    time.Time `json:"time,omitempty"`
	Event   bool      `json:"event,omitempty"`
	// PrevEvent is the event flag of the last history point.
	PrevEvent bool `json:"prev_event,omitempty"`
	// HistoryEvents, when present, carries per-point event flags (same
	// length as History).
	HistoryEvents []bool `json:"history_events,omitempty"`
}

// PredictResponse is a gateway's answer: the forecast plus the identity of
// the instance that produced it, so callers can audit exactly which
// promoted artifact served them.
type PredictResponse struct {
	ModelID    string  `json:"model_id"`
	InstanceID string  `json:"instance_id"`
	VersionID  string  `json:"version_id"`
	Version    string  `json:"version"` // "major.minor"
	Learner    string  `json:"learner,omitempty"`
	Value      float64 `json:"value"`
	// Stale reports that the gateway could not confirm this instance is
	// still the production version (galleryd unreachable); the answer
	// comes from the last-known-good model.
	Stale bool `json:"stale,omitempty"`
}

// ServingModel is one loaded model in a gateway's GET /v1/serving status.
type ServingModel struct {
	ModelID    string    `json:"model_id"`
	InstanceID string    `json:"instance_id"`
	VersionID  string    `json:"version_id"`
	Version    string    `json:"version"`
	Learner    string    `json:"learner,omitempty"`
	LoadedAt   time.Time `json:"loaded_at"`
	Swaps      int64     `json:"swaps"`
	Stale      bool      `json:"stale,omitempty"`
}

// HealthObservation is one model's serving-health window as flushed by a
// gateway: request/staleness counts plus distribution sketches of the
// predicted values and request latencies (paper §3.6 made continuous).
type HealthObservation struct {
	ModelID     string          `json:"model_id"`
	InstanceID  string          `json:"instance_id,omitempty"`
	VersionID   string          `json:"version_id,omitempty"`
	Version     string          `json:"version,omitempty"`
	WindowStart time.Time       `json:"window_start"`
	WindowEnd   time.Time       `json:"window_end"`
	Requests    int64           `json:"requests"`
	StaleServes int64           `json:"stale_serves,omitempty"`
	Values      sketch.Snapshot `json:"values"`
	Latency     sketch.Snapshot `json:"latency"`
}

// HealthObservationsRequest is the body of POST /v1/health/observations.
type HealthObservationsRequest struct {
	// Gateway identifies the reporting gateway instance, informational.
	Gateway      string              `json:"gateway,omitempty"`
	Observations []HealthObservation `json:"observations"`
}

// HealthObservationsResponse acknowledges an ingest.
type HealthObservationsResponse struct {
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected,omitempty"`
}

// ModelHealth is one model's continuously-monitored health verdict, as
// served by GET /v1/health/models and /v1/health/models/{id}.
type ModelHealth struct {
	ModelID    string `json:"model_id"`
	InstanceID string `json:"instance_id,omitempty"`
	// Status is "unknown", "healthy", "warning" or "degraded".
	Status  string   `json:"status"`
	Reasons []string `json:"reasons,omitempty"`

	// PSI/KL compare the live predicted-value distribution against the
	// reference captured from the first windows after (re)promotion.
	PSI float64 `json:"psi,omitempty"`
	KL  float64 `json:"kl,omitempty"`

	Windows        int       `json:"windows"`
	ReferenceCount int64     `json:"reference_count,omitempty"`
	LiveCount      int64     `json:"live_count,omitempty"`
	Requests       int64     `json:"requests"`
	StaleServes    int64     `json:"stale_serves,omitempty"`
	RequestRate    float64   `json:"request_rate,omitempty"` // req/s over the last window
	LatencyP95MS   float64   `json:"latency_p95_ms,omitempty"`
	LiveMean       float64   `json:"live_mean,omitempty"`
	ReferenceMean  float64   `json:"reference_mean,omitempty"`
	LastSeen       time.Time `json:"last_seen,omitempty"`

	Drift *DriftReport `json:"drift,omitempty"`
	Skew  *SkewReport  `json:"skew,omitempty"`
}

// AuditEvent is one immutable record of the lifecycle audit trail: who
// did what to which entity, when, with a before→after summary and the
// trace that carried the mutation. Served by GET /v1/audit and
// GET /v1/audit/entity/{id}; ingested from external emitters (serving
// gateways reporting hot swaps) via POST /v1/audit.
type AuditEvent struct {
	ID         string    `json:"id,omitempty"`
	Seq        int64     `json:"seq,omitempty"`
	Time       time.Time `json:"time,omitempty"`
	Actor      string    `json:"actor,omitempty"`
	Action     string    `json:"action"`
	EntityType string    `json:"entity_type"`
	EntityID   string    `json:"entity_id"`
	ModelID    string    `json:"model_id,omitempty"`
	Before     string    `json:"before,omitempty"`
	After      string    `json:"after,omitempty"`
	Detail     string    `json:"detail,omitempty"`
	TraceID    string    `json:"trace_id,omitempty"`
}

// AuditEventsResponse is the body of GET /v1/audit and
// GET /v1/audit/entity/{id}, newest first unless the query says otherwise.
type AuditEventsResponse struct {
	Events []AuditEvent `json:"events"`
}

// RecordAuditRequest is the body of POST /v1/audit: lifecycle events
// witnessed by a process without its own audit store (a serving gateway's
// hot swaps). The server stamps ID, sequence and time on ingest.
type RecordAuditRequest struct {
	Events []AuditEvent `json:"events"`
}

// RecordAuditResponse acknowledges an audit ingest.
type RecordAuditResponse struct {
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected,omitempty"`
}

// DebugLogsResponse is GET /v1/debug/logs: recent structured log lines
// from the process's in-memory ring, oldest first, plus the cursor a
// follower passes back as ?after= to receive only newer lines.
type DebugLogsResponse struct {
	Entries []obslog.Entry `json:"entries"`
	NextSeq uint64         `json:"next_seq"`
}

// Stats summarizes a running Gallery service: registry sizes plus the
// headline observability numbers. The full metric registry (per-route
// histograms, per-table counters) is served at /v1/debug/metrics.
type Stats struct {
	Models    int `json:"models"`
	Instances int `json:"instances"`
	Metrics   int `json:"metrics"`

	Requests         int64   `json:"requests,omitempty"`
	P50LatencyMS     float64 `json:"p50_latency_ms,omitempty"`
	P95LatencyMS     float64 `json:"p95_latency_ms,omitempty"`
	CacheHitRatio    float64 `json:"cache_hit_ratio,omitempty"`
	BlobPuts         int64   `json:"blob_puts,omitempty"`
	BlobGets         int64   `json:"blob_gets,omitempty"`
	RuleEvaluations  int64   `json:"rule_evaluations,omitempty"`
	EngineDispatches int64   `json:"engine_dispatches,omitempty"`
	EngineDrops      int64   `json:"engine_drops,omitempty"`
}

// --- multi-tenant control plane (/v1/tenants) ---

// TenantNamespace is one tenant: its quota configuration and current
// usage. Zero limits mean unlimited.
type TenantNamespace struct {
	Name         string    `json:"name"`
	MaxModels    int64     `json:"max_models,omitempty"`
	MaxBlobBytes int64     `json:"max_blob_bytes,omitempty"`
	RatePerSec   float64   `json:"rate_per_sec,omitempty"`
	Burst        int64     `json:"burst,omitempty"`
	Models       int64     `json:"models"`
	BlobBytes    int64     `json:"blob_bytes"`
	Created      time.Time `json:"created"`
}

// CreateNamespaceRequest is the body of POST /v1/tenants.
type CreateNamespaceRequest struct {
	Name         string  `json:"name"`
	MaxModels    int64   `json:"max_models,omitempty"`
	MaxBlobBytes int64   `json:"max_blob_bytes,omitempty"`
	RatePerSec   float64 `json:"rate_per_sec,omitempty"`
	Burst        int64   `json:"burst,omitempty"`
}

// SetQuotasRequest is the body of POST /v1/tenants/{ns}/quotas. All four
// limits are overwritten together.
type SetQuotasRequest struct {
	MaxModels    int64   `json:"max_models"`
	MaxBlobBytes int64   `json:"max_blob_bytes"`
	RatePerSec   float64 `json:"rate_per_sec"`
	Burst        int64   `json:"burst"`
}

// TenantsResponse is GET /v1/tenants.
type TenantsResponse struct {
	Namespaces []TenantNamespace `json:"namespaces"`
}

// MintTokenRequest is the body of POST /v1/tenants/{ns}/tokens.
type MintTokenRequest struct {
	Name string `json:"name"`
	Role string `json:"role"` // reader | publisher | operator
}

// TenantToken is a credential's metadata; the secret appears only in the
// MintTokenResponse that created it.
type TenantToken struct {
	ID        string    `json:"id"`
	Name      string    `json:"name"`
	Namespace string    `json:"namespace"`
	Role      string    `json:"role"`
	Created   time.Time `json:"created"`
	Revoked   bool      `json:"revoked,omitempty"`
}

// MintTokenResponse returns the newly minted credential. Secret is shown
// exactly once — only its hash is stored.
type MintTokenResponse struct {
	Secret string      `json:"secret"`
	Token  TenantToken `json:"token"`
}

// TenantTokensResponse is GET /v1/tenants/{ns}/tokens.
type TenantTokensResponse struct {
	Tokens []TenantToken `json:"tokens"`
}

// SLO mirrors slo.Objective on the wire. Latency thresholds travel in
// milliseconds (the unit operators think in); internally they are
// seconds to match the latency histograms.
type SLO struct {
	ID                 string    `json:"id"`
	Namespace          string    `json:"namespace"`
	ModelID            string    `json:"model_id,omitempty"`
	Kind               string    `json:"kind"` // availability | latency
	Target             float64   `json:"target"`
	LatencyThresholdMS float64   `json:"latency_threshold_ms,omitempty"`
	Created            time.Time `json:"created"`
}

// CreateSLORequest is the body of POST /v1/slo.
type CreateSLORequest struct {
	Namespace          string  `json:"namespace"`
	ModelID            string  `json:"model_id,omitempty"`
	Kind               string  `json:"kind"`
	Target             float64 `json:"target"`
	LatencyThresholdMS float64 `json:"latency_threshold_ms,omitempty"`
}

// SLOList is GET /v1/slo.
type SLOList struct {
	SLOs []SLO `json:"slos"`
}

// SLOStatus is one objective's current evaluation in GET /v1/slo/status.
type SLOStatus struct {
	SLO             SLO       `json:"slo"`
	Breached        bool      `json:"breached"`
	Severity        string    `json:"severity,omitempty"` // fast | slow
	BurnFast        float64   `json:"burn_fast"`
	BurnSlow        float64   `json:"burn_slow"`
	BudgetRemaining float64   `json:"budget_remaining"`
	NoData          bool      `json:"no_data,omitempty"`
	LastChange      time.Time `json:"last_change,omitempty"`
}

// SLOStatusList is GET /v1/slo/status.
type SLOStatusList struct {
	Statuses []SLOStatus `json:"statuses"`
}

// BuildInfo identifies the binary that produced a snapshot: its service
// name, module version, Go toolchain, and process start time. The same
// values back the gallery_build_info / process_start_time_seconds gauges.
type BuildInfo struct {
	Service   string    `json:"service"`
	Version   string    `json:"version"`
	GoVersion string    `json:"go_version"`
	Start     time.Time `json:"start"`
}

// ProcessSnapshot is one daemon's observability state frozen at a point
// in time: the body of GET /v1/debug/bundle and the per-process half of
// an incident bundle. Metrics and traces ride as raw JSON so the snapshot
// is exactly what the debug endpoints would have served.
type ProcessSnapshot struct {
	Service          string          `json:"service"`
	Captured         time.Time       `json:"captured"`
	Build            BuildInfo       `json:"build"`
	Metrics          json.RawMessage `json:"metrics,omitempty"`      // /v1/debug/metrics JSON
	MetricsProm      string          `json:"metrics_prom,omitempty"` // text exposition 0.0.4
	Traces           json.RawMessage `json:"traces,omitempty"`       // {stats, traces}
	Logs             []obslog.Entry  `json:"logs,omitempty"`
	GoroutineProfile string          `json:"goroutine_profile,omitempty"` // pprof debug=1 text
	HeapProfile      string          `json:"heap_profile,omitempty"`
	// Profiles is the continuous profiler's recent window history
	// (newest first, all kinds interleaved) — pre-trigger evidence of
	// where the process was spending time before the incident.
	Profiles []profile.Summary `json:"profiles,omitempty"`
}

// Incident is one flight-recorder capture's index row.
type Incident struct {
	ID        string    `json:"id"`
	Trigger   string    `json:"trigger"` // manual | slo.burn | health.degraded | rule
	Scope     string    `json:"scope"`   // debounce key: model ID, namespace, or "process"
	Namespace string    `json:"namespace,omitempty"`
	ModelID   string    `json:"model_id,omitempty"`
	Reason    string    `json:"reason,omitempty"`
	TraceID   string    `json:"trace_id,omitempty"`
	Created   time.Time `json:"created"`
	Size      int64     `json:"size,omitempty"` // persisted bundle bytes
	Partial   bool      `json:"partial,omitempty"`
}

// IncidentList is GET /v1/incidents.
type IncidentList struct {
	Incidents []Incident `json:"incidents"`
}

// TriggerIncidentRequest is the body of POST /v1/incidents.
type TriggerIncidentRequest struct {
	Namespace string `json:"namespace,omitempty"`
	ModelID   string `json:"model_id,omitempty"`
	Reason    string `json:"reason,omitempty"`
}

// IncidentBundle is the persisted capture: both daemons' process
// snapshots plus the registry-side verdict state (health, SLO, audit
// tail) implicated by the trigger.
type IncidentBundle struct {
	Incident     Incident         `json:"incident"`
	Registry     ProcessSnapshot  `json:"registry"`
	Gateway      *ProcessSnapshot `json:"gateway,omitempty"`
	GatewayError string           `json:"gateway_error,omitempty"` // set when the pull failed (Partial)
	Health       []ModelHealth    `json:"health,omitempty"`
	SLO          []SLOStatus      `json:"slo,omitempty"`
	Audit        []AuditEvent     `json:"audit,omitempty"`
}

// IncidentDetail is GET /v1/incidents/{id}.
type IncidentDetail struct {
	Incident Incident       `json:"incident"`
	Bundle   IncidentBundle `json:"bundle"`
}
