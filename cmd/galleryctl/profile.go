package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"gallery/internal/client"
	"gallery/internal/obs/profile"
)

// cmdProfile inspects the continuous profiler's merged fleet view
// (GET /v1/debug/profile): `top` renders the hottest functions per
// process and kind, `diff` judges the live CPU picture against a
// checked-in PROFILE_<process>.json baseline, and `baseline`
// regenerates that file from the live view.
func cmdProfile(c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: profile top|diff|baseline ... (see `profile <sub> -h`)")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "top":
		return profileTop(c, rest)
	case "diff":
		return profileDiff(c, rest)
	case "baseline":
		return profileBaseline(c, rest)
	default:
		return fmt.Errorf("unknown profile subcommand %q (want top, diff, or baseline)", sub)
	}
}

func profileTop(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("profile top", flag.ExitOnError)
	merge := fs.Duration("merge", 0, "fold only windows ending within this duration (0 = all retained)")
	topN := fs.Int("n", profile.DefaultTopN, "top-N functions per summary")
	kind := fs.String("kind", "", "show only this profile kind (cpu|heap|goroutine|mutex|block)")
	proc := fs.String("process", "", "show only this process")
	raw := fs.Bool("json", false, "print raw JSON instead of the rendered view")
	fs.Parse(args)

	v, err := c.DebugProfile(*merge, *topN)
	if err != nil {
		return err
	}
	if *raw {
		return dump(v, nil)
	}
	shown := 0
	for _, pv := range v.Processes {
		if *proc != "" && pv.Process != *proc {
			continue
		}
		kinds := make([]string, 0, len(pv.Merged))
		for k := range pv.Merged {
			if *kind != "" && k != *kind {
				continue
			}
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			printProfileSummary(pv.Process, pv.Windows[k], pv.Merged[k])
			shown++
		}
	}
	if shown == 0 {
		fmt.Println("no profile windows retained yet (is the profiler armed? see -profile-interval)")
	}
	return nil
}

// printProfileSummary renders one merged summary as a table:
//
//	galleryd cpu: 4 windows, total 1.2s over 40.0s
//	  SELF      SELF%   CUM       CUM%    FUNCTION
//	  412.0ms   34.3%   501.2ms   41.8%   gallery/internal/forecast.(*Holt).Fit
func printProfileSummary(process string, windows int, s profile.Summary) {
	span := ""
	if s.DurationNS > 0 {
		span = fmt.Sprintf(" over %s", time.Duration(s.DurationNS).Round(100*time.Millisecond))
	}
	fmt.Printf("%s %s: %d window(s), total %s%s\n",
		process, s.Kind, windows, formatProfileValue(s.Unit, s.Total), span)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  SELF\tSELF%\tCUM\tCUM%\tFUNCTION")
	for _, fn := range s.Top {
		fmt.Fprintf(tw, "  %s\t%.1f%%\t%s\t%.1f%%\t%s\n",
			formatProfileValue(s.Unit, fn.Self), fn.SelfShare*100,
			formatProfileValue(s.Unit, fn.Cum), fn.CumShare*100, fn.Name)
	}
	tw.Flush()
}

// formatProfileValue renders a sample value in its unit: CPU and
// contention profiles count nanoseconds, heap counts bytes, goroutine
// profiles count goroutines.
func formatProfileValue(unit string, v int64) string {
	switch unit {
	case "nanoseconds":
		return fmt.Sprintf("%.1fms", float64(v)/1e6)
	case "bytes":
		switch {
		case v >= 1<<20:
			return fmt.Sprintf("%.1fMiB", float64(v)/(1<<20))
		case v >= 1<<10:
			return fmt.Sprintf("%.1fKiB", float64(v)/(1<<10))
		}
		return fmt.Sprintf("%dB", v)
	default:
		return fmt.Sprintf("%d", v)
	}
}

func profileDiff(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("profile diff", flag.ExitOnError)
	basePath := fs.String("baseline", "", "baseline file to judge against (PROFILE_<process>.json; required)")
	merge := fs.Duration("merge", 0, "fold only windows ending within this duration (0 = all retained)")
	factor := fs.Float64("factor", profile.DefaultFactor, "flag a function when live self-share exceeds baseline by this factor")
	minShare := fs.Float64("min-share", profile.DefaultMinShare, "ignore functions below this absolute self-share")
	newShare := fs.Float64("new-share", profile.DefaultNewShare, "assumed baseline share for functions the baseline never saw")
	raw := fs.Bool("json", false, "print regressions as raw JSON")
	fs.Parse(args)

	if *basePath == "" {
		return fmt.Errorf("profile diff: -baseline FILE is required")
	}
	base, err := profile.LoadBaseline(*basePath)
	if err != nil {
		return err
	}
	v, err := c.DebugProfile(*merge, 0)
	if err != nil {
		return err
	}
	live, windows, ok := findMerged(v, base.Process, base.Kind)
	if !ok {
		return fmt.Errorf("profile diff: no %s windows retained for process %q (is its profiler armed?)",
			base.Kind, base.Process)
	}
	regs := profile.CompareBaseline(base, live, *factor, *minShare, *newShare)
	if *raw {
		if err := dump(regs, nil); err != nil {
			return err
		}
	} else if len(regs) == 0 {
		fmt.Printf("%s %s: no regressions against %s (%d window(s) folded)\n",
			base.Process, base.Kind, *basePath, windows)
	} else {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "FACTOR\tSHARE\tBASELINE\tFUNCTION")
		for _, r := range regs {
			fmt.Fprintf(tw, "%.1fx\t%.1f%%\t%.1f%%\t%s\n",
				r.Factor, r.Share*100, r.Baseline*100, r.Function)
		}
		tw.Flush()
	}
	if len(regs) > 0 {
		return fmt.Errorf("profile diff: %d function(s) regressed against %s", len(regs), *basePath)
	}
	return nil
}

func profileBaseline(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("profile baseline", flag.ExitOnError)
	proc := fs.String("process", "galleryd", "process whose merged CPU view becomes the baseline")
	merge := fs.Duration("merge", 0, "fold only windows ending within this duration (0 = all retained)")
	out := fs.String("out", "", "output path (default PROFILE_<process>.json; - prints to stdout)")
	fs.Parse(args)

	v, err := c.DebugProfile(*merge, 0)
	if err != nil {
		return err
	}
	live, windows, ok := findMerged(v, *proc, profile.KindCPU)
	if !ok {
		return fmt.Errorf("profile baseline: no cpu windows retained for process %q (is its profiler armed?)", *proc)
	}
	b := profile.BaselineOf(*proc, live)
	if *out == "-" {
		return dump(b, nil)
	}
	path := *out
	if path == "" {
		path = profile.BaselineFileName(*proc)
	}
	if err := profile.WriteBaselineFile(path, b); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d function(s) from %d window(s))\n", path, len(b.Shares), windows)
	return nil
}

// findMerged pulls one process's merged summary of a kind out of a
// fleet view.
func findMerged(v profile.View, process, kind string) (profile.Summary, int, bool) {
	for _, pv := range v.Processes {
		if pv.Process != process {
			continue
		}
		s, ok := pv.Merged[kind]
		return s, pv.Windows[kind], ok
	}
	return profile.Summary{}, 0, false
}
