package server

import (
	"net/http"
	"time"

	"gallery/internal/obs"
)

// statusRecorder captures the status code and body size a handler writes,
// for metrics and the access log.
type statusRecorder struct {
	http.ResponseWriter
	status      int
	bytes       int64
	wroteHeader bool
}

func (w *statusRecorder) WriteHeader(code int) {
	if !w.wroteHeader {
		w.status = code
		w.wroteHeader = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(p []byte) (int, error) {
	if !w.wroteHeader {
		w.wroteHeader = true // implicit 200
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming handlers keep
// working through the recorder.
func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// statusClass folds a status code into its class label ("2xx", "4xx", ...).
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// ServeHTTP implements http.Handler. Every request flows through the
// observability middleware: per-route request counters by status class,
// latency and body-size histograms, and one structured access-log line.
// The route label is the ServeMux pattern that matched (bounded
// cardinality), never the raw URL.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(rec, r)

	route := r.Pattern
	if route == "" {
		route = "unmatched"
	}
	elapsed := time.Since(start)
	class := statusClass(rec.status)

	s.obs.Counter(obs.Name("http_requests_total", "route", route, "status", class)).Inc()
	s.obs.Histogram(obs.Name("http_request_seconds", "route", route), obs.LatencyBuckets).
		Observe(elapsed.Seconds())
	s.allLatency.Observe(elapsed.Seconds())
	if r.ContentLength > 0 {
		s.obs.Histogram(obs.Name("http_request_bytes", "route", route), obs.SizeBuckets).
			Observe(float64(r.ContentLength))
	}
	s.obs.Histogram(obs.Name("http_response_bytes", "route", route), obs.SizeBuckets).
		Observe(float64(rec.bytes))

	if s.accessLog != nil {
		s.accessLog.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"status", rec.status,
			"bytes", rec.bytes,
			"dur_ms", float64(elapsed.Microseconds())/1000,
			"remote", r.RemoteAddr,
		)
	}
}
