package profile

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestFleetIngestAndSnapshot(t *testing.T) {
	f := NewFleet(8)
	t0 := time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)
	f.Ingest("galleryd", []Summary{mkSummary(KindCPU, t0.Add(time.Minute), 100,
		FuncStat{Name: "d_hot", Self: 100, Cum: 100})})
	f.Export("galleryserve", []Summary{mkSummary(KindCPU, t0.Add(2*time.Minute), 200,
		FuncStat{Name: "gw_hot", Self: 200, Cum: 200})})
	f.Ingest("", []Summary{mkSummary(KindCPU, t0, 1)}) // ignored

	v := f.Snapshot(0, 10, t0.Add(3*time.Minute))
	if len(v.Processes) != 2 {
		t.Fatalf("processes = %+v", v.Processes)
	}
	// Sorted by process name.
	if v.Processes[0].Process != "galleryd" || v.Processes[1].Process != "galleryserve" {
		t.Fatalf("order = %v, %v", v.Processes[0].Process, v.Processes[1].Process)
	}
	if v.Processes[1].Merged[KindCPU].Top[0].Name != "gw_hot" {
		t.Fatalf("gateway merged = %+v", v.Processes[1].Merged)
	}
	if r := f.Ring("galleryd"); r == nil || len(r.Recent(KindCPU, 0)) != 1 {
		t.Fatal("galleryd ring missing")
	}
	if f.Ring("nope") != nil {
		t.Fatal("unknown process returned a ring")
	}
}

func TestFleetProcessBound(t *testing.T) {
	f := NewFleet(2)
	s := []Summary{mkSummary(KindCPU, time.Now(), 1)}
	for i := 0; i < maxFleetProcesses+5; i++ {
		f.Ingest(fmt.Sprintf("proc-%03d", i), s)
	}
	if got := f.Dropped(); got != 5 {
		t.Fatalf("dropped = %d, want 5", got)
	}
	if len(f.Snapshot(0, 5, time.Now()).Processes) != maxFleetProcesses {
		t.Fatal("process bound not enforced")
	}
}

func TestHTTPExporter(t *testing.T) {
	var mu sync.Mutex
	var got []IngestRequest
	var auth []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var ir IngestRequest
		if err := json.NewDecoder(r.Body).Decode(&ir); err != nil {
			t.Errorf("decode: %v", err)
		}
		mu.Lock()
		got = append(got, ir)
		auth = append(auth, r.Header.Get("Authorization"))
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
	}))
	defer srv.Close()

	e := NewHTTPExporter(srv.URL, "sekrit", nil)
	defer e.Close()
	e.Export("galleryserve", []Summary{mkSummary(KindCPU, time.Now(), 42,
		FuncStat{Name: "f", Self: 42, Cum: 42})})
	e.Flush()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Process != "galleryserve" || len(got[0].Summaries) != 1 {
		t.Fatalf("received %+v", got)
	}
	if got[0].Summaries[0].Total != 42 {
		t.Fatalf("summary = %+v", got[0].Summaries[0])
	}
	if auth[0] != "Bearer sekrit" {
		t.Fatalf("auth header = %q", auth[0])
	}
	if e.Dropped() != 0 || e.Failed() != 0 {
		t.Fatalf("dropped=%d failed=%d", e.Dropped(), e.Failed())
	}
}

func TestHTTPExporterFailureCounted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusForbidden)
	}))
	defer srv.Close()
	e := NewHTTPExporter(srv.URL, "", nil)
	defer e.Close()
	e.Export("p", []Summary{mkSummary(KindCPU, time.Now(), 1)})
	e.Flush()
	if e.Failed() != 1 {
		t.Fatalf("failed = %d, want 1", e.Failed())
	}
}

func TestProfilerCycle(t *testing.T) {
	fleet := NewFleet(8)
	p := New(Config{
		Process:  "testproc",
		Window:   50 * time.Millisecond,
		Interval: time.Hour, // loop never ticks; we drive cycles by hand
		TopN:     10,
		Keep:     4,
		Exporter: fleet,
	})
	spinDone := make(chan struct{})
	go func() {
		spinForProfile(time.Now().Add(80 * time.Millisecond))
		close(spinDone)
	}()
	out := p.CaptureCycle()
	<-spinDone
	if len(out) < 1 {
		t.Fatal("cycle produced nothing")
	}
	kinds := make(map[string]bool)
	for _, s := range out {
		kinds[s.Kind] = true
	}
	for _, want := range []string{KindCPU, KindHeap, KindGoroutine, KindMutex, KindBlock} {
		if !kinds[want] {
			t.Fatalf("cycle missing %s summary (got %v)", want, kinds)
		}
	}
	if got := p.Ring().Recent(KindCPU, 0); len(got) != 1 {
		t.Fatalf("ring cpu summaries = %d", len(got))
	}
	if fleet.Ring("testproc") == nil {
		t.Fatal("cycle did not export to fleet")
	}
	// CPU window timestamps cover the window.
	cpu := p.Ring().Recent(KindCPU, 1)[0]
	if cpu.End.Sub(cpu.Start) < 40*time.Millisecond {
		t.Fatalf("cpu window [%v, %v] shorter than configured", cpu.Start, cpu.End)
	}
}

func TestProfilerStartStop(t *testing.T) {
	p := New(Config{Process: "t", Window: 20 * time.Millisecond, Interval: 25 * time.Millisecond,
		Kinds: []string{KindGoroutine}})
	p.Start()
	deadline := time.Now().Add(2 * time.Second)
	for len(p.Ring().Recent(KindCPU, 0)) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	p.Stop() // interrupts any in-flight window and joins the loop
	if len(p.Ring().Recent(KindCPU, 0)) == 0 {
		t.Fatal("started profiler captured nothing")
	}
	// Stop on a never-started profiler must not hang.
	New(Config{Process: "idle"}).Stop()
}
