package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins down the upper-inclusive bucket
// convention: an observation equal to a bound lands in that bound's
// bucket, and anything above the last bound lands in the overflow slot.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{1, 10, 100}
	cases := []struct {
		name   string
		value  float64
		bucket int // index into counts; len(bounds) is overflow
	}{
		{"below first bound", 0.5, 0},
		{"exactly first bound", 1, 0},
		{"just above first bound", 1.0001, 1},
		{"exactly middle bound", 10, 1},
		{"interior", 42, 2},
		{"exactly last bound", 100, 2},
		{"above last bound", 101, 3},
		{"far overflow", 1e9, 3},
		{"zero", 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(bounds)
			h.Observe(tc.value)
			for i := range h.counts {
				want := int64(0)
				if i == tc.bucket {
					want = 1
				}
				if got := h.counts[i].Load(); got != want {
					t.Errorf("Observe(%v): counts[%d] = %d, want %d", tc.value, i, got, want)
				}
			}
		})
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3, 4})
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	if h.Sum() != 8 {
		t.Fatalf("Sum = %v, want 8", h.Sum())
	}
	if h.Max() != 3.5 {
		t.Fatalf("Max = %v, want 3.5", h.Max())
	}
	// Rank 2 of 4 exhausts the second bucket (le=2) exactly, so linear
	// interpolation lands on its upper bound.
	if got := h.Quantile(0.50); got != 2 {
		t.Fatalf("Quantile(0.5) = %v, want 2", got)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram Quantile = %v, want 0", got)
	}
	// Overflow observations are approximated by the max seen.
	h.Observe(50)
	if got := h.Quantile(0.99); got != 50 {
		t.Fatalf("overflow Quantile = %v, want 50 (the max)", got)
	}
}

func TestHistogramUnsortedBoundsPanic(t *testing.T) {
	// Bounds are part of the caller's contract; silently reordering them
	// (the old behaviour) hid bugs, so registration now panics instead.
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram with unsorted bounds must panic")
		}
	}()
	NewHistogram([]float64{10, 1, 5})
}

// TestCounterConcurrent exercises concurrent increments; run with -race.
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	h := NewHistogram(LatencyBuckets)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.003)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("Counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("Gauge = %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("Histogram count = %d, want %d", h.Count(), workers*per)
	}
	if math.Abs(h.Sum()-workers*per*0.003) > 1e-6 {
		t.Fatalf("Histogram sum = %v, want %v", h.Sum(), workers*per*0.003)
	}
}

func TestName(t *testing.T) {
	cases := []struct {
		base   string
		labels []string
		want   string
	}{
		{"dal_blob_puts_total", nil, "dal_blob_puts_total"},
		{"x_total", []string{"op", "put"}, `x_total{op="put"}`},
		{"x_total", []string{"op", "put", "table", "models"}, `x_total{op="put",table="models"}`},
	}
	for _, tc := range cases {
		if got := Name(tc.base, tc.labels...); got != tc.want {
			t.Errorf("Name(%q, %v) = %q, want %q", tc.base, tc.labels, got, tc.want)
		}
	}
}

func TestRegistryHandlesAreStable(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter handle not stable across get-or-create")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Fatal("Gauge handle not stable across get-or-create")
	}
	if r.Histogram("c", LatencyBuckets) != r.Histogram("c", SizeBuckets) {
		t.Fatal("Histogram handle not stable; second bounds must be ignored")
	}
}

func TestRegistryJSONRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("ops_total", "op", "put")).Add(3)
	r.Gauge("cache_bytes").Set(1024)
	r.GaugeFunc("hit_ratio", func() float64 { return 0.75 })
	h := r.Histogram("req_seconds", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9) // overflow

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("rendered JSON does not parse: %v\n%s", err, buf.String())
	}
	if got := snap.Counters[`ops_total{op="put"}`]; got != 3 {
		t.Fatalf("counter round-trip = %d, want 3", got)
	}
	if snap.Gauges["cache_bytes"] != 1024 || snap.Gauges["hit_ratio"] != 0.75 {
		t.Fatalf("gauges round-trip = %v", snap.Gauges)
	}
	hs, ok := snap.Histograms["req_seconds"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Count != 3 || hs.Max != 9 {
		t.Fatalf("histogram summary = %+v", hs)
	}
	want := []Bucket{{Le: "1", Count: 1}, {Le: "2", Count: 1}, {Le: "+Inf", Count: 1}}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", hs.Buckets, want)
	}
	for i := range want {
		if hs.Buckets[i] != want[i] {
			t.Fatalf("bucket[%d] = %+v, want %+v", i, hs.Buckets[i], want[i])
		}
	}
}

func TestSumCounters(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("http_requests_total", "route", "a", "status", "2xx")).Add(2)
	r.Counter(Name("http_requests_total", "route", "b", "status", "5xx")).Add(1)
	r.Counter("other_total").Add(10)
	if got := r.SumCounters("http_requests_total"); got != 3 {
		t.Fatalf("SumCounters = %d, want 3", got)
	}
}
