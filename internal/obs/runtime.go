package obs

import (
	"bytes"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"
)

// processStart anchors the uptime gauges. Package init runs before any
// server accepts traffic, so this is the process start for observability
// purposes.
var processStart = time.Now()

// ProcessStart reports when this process initialized, the value behind
// process_start_time_seconds and the build-info stamp in incident
// bundles.
func ProcessStart() time.Time { return processStart }

// BuildVersion reports the main module's version as recorded by the Go
// linker ("(devel)" for plain `go build`, a tag or pseudo-version for
// module-aware installs).
func BuildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// memStatsCache amortizes runtime.ReadMemStats — a stop-the-world call —
// across the several gauge funcs that read it in one snapshot (and across
// rapid snapshot polls).
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	ttl  time.Duration
	stat runtime.MemStats
}

func (c *memStatsCache) get() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Since(c.at) > c.ttl {
		runtime.ReadMemStats(&c.stat)
		c.at = time.Now()
	}
	return c.stat
}

// procStatPath is the OS view of this process; a var so tests can point
// the cache at a fixture.
var procStatPath = "/proc/self/stat"

// userHZ is the kernel tick unit /proc/self/stat reports CPU time in.
// USER_HZ is 100 on every Linux ABI this repo targets; reading it
// portably would need sysconf(_SC_CLK_TCK), i.e. cgo.
const userHZ = 100

// procStatCache amortizes the /proc/self/stat read and parse behind the
// process CPU/RSS gauges, the same way memStatsCache amortizes
// ReadMemStats: one file read serves all gauges in a snapshot and any
// rapid poll burst.
type procStatCache struct {
	mu  sync.Mutex
	at  time.Time
	ttl time.Duration
	cpu float64 // utime+stime, seconds
	rss float64 // resident set, bytes
}

func (c *procStatCache) get() (cpu, rss float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Since(c.at) > c.ttl {
		if cpu, rss, ok := readProcStat(); ok {
			c.cpu, c.rss = cpu, rss
		}
		c.at = time.Now()
	}
	return c.cpu, c.rss
}

// readProcStat parses CPU seconds (utime+stime) and resident bytes out
// of /proc/self/stat. ok is false off Linux or on any parse surprise —
// the gauges are then simply not registered.
func readProcStat() (cpu, rss float64, ok bool) {
	raw, err := os.ReadFile(procStatPath)
	if err != nil {
		return 0, 0, false
	}
	// The comm field (2) is parenthesized and may itself contain spaces
	// and parens; fields resume after the LAST ')'.
	i := bytes.LastIndexByte(raw, ')')
	if i < 0 || i+2 >= len(raw) {
		return 0, 0, false
	}
	f := strings.Fields(string(raw[i+2:]))
	// f[0] is field 3 (state); utime is field 14 -> f[11], stime field
	// 15 -> f[12], rss (pages) field 24 -> f[21].
	if len(f) < 22 {
		return 0, 0, false
	}
	utime, err1 := strconv.ParseUint(f[11], 10, 64)
	stime, err2 := strconv.ParseUint(f[12], 10, 64)
	pages, err3 := strconv.ParseInt(f[21], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, 0, false
	}
	return float64(utime+stime) / userHZ, float64(pages) * float64(os.Getpagesize()), true
}

// RegisterRuntime registers process-health gauges on r, turning
// GET /v1/debug/metrics into a lightweight profile:
//
//	runtime_goroutines            live goroutine count
//	runtime_heap_alloc_bytes      live heap bytes
//	runtime_heap_sys_bytes        heap bytes held from the OS
//	runtime_gc_runs_total         completed GC cycles
//	runtime_gc_pause_last_seconds most recent GC stop-the-world pause
//	gallery_build_info            constant 1, version labels identify the binary
//	process_start_time_seconds    Unix time the process initialized
//	process_uptime_seconds        seconds since then
//
// Where /proc/self is readable (Linux), two OS-view gauges join them:
//
//	process_cpu_seconds_total     user+system CPU consumed by the process
//	process_resident_memory_bytes resident set size
//
// Values derived from MemStats or /proc share a ~1s cache so snapshot
// polling doesn't itself become a stop-the-world (or syscall) generator.
func RegisterRuntime(r *Registry) {
	cache := &memStatsCache{ttl: time.Second}
	// The Prometheus build-info idiom: a constant-1 gauge whose labels
	// carry the identity, joinable against any other series.
	r.GaugeFunc(Name("gallery_build_info", "version", BuildVersion(), "go_version", runtime.Version()),
		func() float64 { return 1 })
	r.GaugeFunc("process_start_time_seconds", func() float64 {
		return float64(processStart.UnixNano()) / 1e9
	})
	r.GaugeFunc("process_uptime_seconds", func() float64 {
		return time.Since(processStart).Seconds()
	})
	r.GaugeFunc("runtime_goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("runtime_heap_alloc_bytes", func() float64 {
		return float64(cache.get().HeapAlloc)
	})
	r.GaugeFunc("runtime_heap_sys_bytes", func() float64 {
		return float64(cache.get().HeapSys)
	})
	r.GaugeFunc("runtime_gc_runs_total", func() float64 {
		return float64(cache.get().NumGC)
	})
	r.GaugeFunc("runtime_gc_pause_last_seconds", func() float64 {
		m := cache.get()
		if m.NumGC == 0 {
			return 0
		}
		return float64(m.PauseNs[(m.NumGC+255)%256]) / 1e9
	})
	if _, _, ok := readProcStat(); ok {
		proc := &procStatCache{ttl: time.Second}
		r.GaugeFunc("process_cpu_seconds_total", func() float64 {
			cpu, _ := proc.get()
			return cpu
		})
		r.GaugeFunc("process_resident_memory_bytes", func() float64 {
			_, rss := proc.get()
			return rss
		})
	}
}
