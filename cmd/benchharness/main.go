// Command benchharness regenerates every table, figure, and quantitative
// claim from the paper's evaluation (DESIGN.md experiments E1–E15) and
// prints paper-style rows. Run all experiments, or pick some:
//
//	benchharness                          # everything
//	benchharness -exp table1 -exp fig8    # a subset
//	benchharness -exp scale -full         # include the 1M-instance tier
//	benchharness -exp fig8 -metrics       # dump the metric registry after
//
// Experiment names: table1, fig1, fig4, fig5-7, fig8, scale, switching,
// deployment, simulation, drift, skew, consistency, classes, reposition,
// serving, onlinedrift, auditchurn, relquery, multitenant, sloburn,
// incidentcapture, profilereg, tiered.
//
// Perf trajectory: experiments that measure performance also emit
// machine-readable metrics (internal/benchfmt).
//
//	benchharness -exp serving -bench-dir .   # write BENCH_serving.json
//	benchharness -exp serving -baseline .    # compare vs checked-in file
//
// With -baseline, each experiment's metrics are compared against the
// committed BENCH_<exp>.json: gated (machine-independent) metrics beyond
// their tolerance band fail the run, and a trajectory summary is printed
// either way. See DESIGN.md "Perf trajectory" for the policy.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gallery/internal/benchfmt"
	"gallery/internal/experiments"
	"gallery/internal/obs"
)

type expFlag []string

func (f *expFlag) String() string { return strings.Join(*f, ",") }
func (f *expFlag) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// experiment is one runnable evaluation item. run returns the paper-style
// text plus optional benchfmt metrics (nil for purely qualitative
// experiments, which then have no BENCH file).
type experiment struct {
	name  string
	title string
	run   func() (string, []benchfmt.Metric, error)
}

// text adapts a metrics-free experiment.
func text(f func() (string, error)) func() (string, []benchfmt.Metric, error) {
	return func() (string, []benchfmt.Metric, error) {
		out, err := f()
		return out, nil, err
	}
}

func main() {
	var picks expFlag
	flag.Var(&picks, "exp", "experiment to run (repeatable; default all)")
	full := flag.Bool("full", false, "run the expensive full-scale tiers (1M instances)")
	metrics := flag.Bool("metrics", false, "dump the process metric registry snapshot after the experiments")
	benchDir := flag.String("bench-dir", "", "directory to write BENCH_<exp>.json baselines into")
	baseline := flag.String("baseline", "", "directory holding BENCH_<exp>.json baselines to compare against; gated regressions fail the run")
	tol := flag.Float64("tol", 0.25, "default tolerance band for gated metrics without their own (fraction of baseline)")
	flag.Parse()

	scaleTiers := []int{10_000, 100_000}
	if *full {
		scaleTiers = append(scaleTiers, 1_000_000)
	}

	all := []experiment{
		{"table1", "E1 / Table 1 — feature comparison (Gallery row measured by probes)", text(func() (string, error) {
			rows, err := experiments.Table1()
			if err != nil {
				return "", err
			}
			return experiments.FormatTable1(rows), nil
		})},
		{"fig1", "E2 + E11 / Figure 1 — model lifecycle driven end to end (incl. drift-retrain loop)", text(func() (string, error) {
			res, err := experiments.Lifecycle()
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		})},
		{"fig4", "E4 / Figure 4 — base-version-id lineage", text(func() (string, error) {
			res, err := experiments.LineageFigure4()
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		})},
		{"fig5-7", "E5 / Figures 5–7 — dependency graph version propagation", text(func() (string, error) {
			steps, err := experiments.DependencyFigures()
			if err != nil {
				return "", err
			}
			return experiments.FormatDepSteps(steps), nil
		})},
		{"fig8", "E6 / Figure 8 — rule engine workflow (both clients)", text(func() (string, error) {
			res, err := experiments.RuleEngineFigure8()
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		})},
		{"scale", "E7 — metadata-layer scalability toward the paper's 1M instances", func() (string, []benchfmt.Metric, error) {
			rs, err := experiments.Scale(scaleTiers)
			if err != nil {
				return "", nil, err
			}
			return experiments.FormatScale(rs), experiments.ScaleBenchMetrics(rs), nil
		}},
		{"switching", "E8 / §4.2 — dynamic model switching vs static served model", text(func() (string, error) {
			res, err := experiments.DynamicSwitching(3, 11)
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		})},
		{"deployment", "E9 + E14 / §4.2, §4 — deployment and daily management cost", text(func() (string, error) {
			res, err := experiments.DeploymentCost(100)
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		})},
		{"simulation", "E10 / §4.3 — simulation platform resource savings", text(func() (string, error) {
			res, err := experiments.SimulationSavings()
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		})},
		{"drift", "E11 / §3.6 — drift detection triggers retraining (subset of fig1)", text(func() (string, error) {
			res, err := experiments.Lifecycle()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("pre-shift MAPE %.2f%% -> drifted %.2f%% (degradation %.0f%%, detector fired=%v)\n"+
				"rule engine retrain triggered=%v; recovered MAPE %.2f%%\n",
				res.PreShiftMAPE, res.DriftedMAPE, res.Drift.Degradation*100, res.Drift.Drifted,
				res.RetrainTriggered, res.RecoveredMAPE), nil
		})},
		{"skew", "E12 / §3.6 — production skew detection", text(func() (string, error) {
			res, err := experiments.SkewDetection()
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		})},
		{"consistency", "E13 / §3.5 — blob-first write ordering under injected failures", text(func() (string, error) {
			res, err := experiments.WriteOrdering(2000, 7, 11)
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		})},
		{"classes", "E16 (extension) / §4.2 — per-city model-class championship", text(func() (string, error) {
			res, err := experiments.ModelClassChampionship()
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		})},
		{"reposition", "E17 (extension) / §4.2 — forecast-driven driver repositioning", text(func() (string, error) {
			res, err := experiments.DriverRepositioning(3)
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		})},
		{"serving", "E18 (extension) / §2 — prediction serving gateway, micro-batching ablation", func() (string, []benchfmt.Metric, error) {
			res, err := experiments.ServingGateway(8, 5000)
			if err != nil {
				return "", nil, err
			}
			return res.Format(), res.BenchMetrics(), nil
		}},
		{"onlinedrift", "E19 (extension) / §3.6 — continuous health: serving sketches to online drift detection", func() (string, []benchfmt.Metric, error) {
			res, err := experiments.OnlineDrift(4, 4)
			if err != nil {
				return "", nil, err
			}
			if res.DegradedAt == 0 {
				return "", nil, fmt.Errorf("onlinedrift: monitor never flipped to degraded")
			}
			if res.RetrainFired == 0 {
				return "", nil, fmt.Errorf("onlinedrift: retrain rule never fired")
			}
			return res.Format(), res.BenchMetrics(), nil
		}},
		{"auditchurn", "E20 (extension) / §3 — audit trail stays bounded under promotion churn", func() (string, []benchfmt.Metric, error) {
			res, err := experiments.AuditChurn(400, 16)
			if err != nil {
				return "", nil, err
			}
			if !res.Bounded() {
				return "", nil, fmt.Errorf("auditchurn: trail unbounded: peak %d events for keep=%d", res.PeakLen, res.Keep)
			}
			if res.Pruned == 0 {
				return "", nil, fmt.Errorf("auditchurn: retention never pruned anything over %d rounds", res.Rounds)
			}
			return res.Format(), res.BenchMetrics(), nil
		}},
		{"relquery", "E21 (extension) / §3.5 — relstore query planner hot paths", func() (string, []benchfmt.Metric, error) {
			res, err := experiments.RelQuery(20_000, 200)
			if err != nil {
				return "", nil, err
			}
			return res.Format(), res.BenchMetrics(), nil
		}},
		{"multitenant", "E22 (extension) — multi-tenant control plane: auth hot-path cost, noisy-neighbor isolation", func() (string, []benchfmt.Metric, error) {
			res, err := experiments.MultiTenant(2000)
			if err != nil {
				return "", nil, err
			}
			if extra := res.PredictExtraAllocs(); extra > 0.5 {
				return "", nil, fmt.Errorf("multitenant: auth added %.1f allocs/op on the predict path (want 0)", extra)
			}
			if res.QuietOKRatio() != 1 {
				return "", nil, fmt.Errorf("multitenant: quiet tenant lost requests to the noisy tenant (ok ratio %.2f)", res.QuietOKRatio())
			}
			return res.Format(), res.BenchMetrics(), nil
		}},
		{"sloburn", "E23 (extension) — per-tenant SLO engine: burn-rate detection, rule wiring, isolation", func() (string, []benchfmt.Metric, error) {
			res, err := experiments.Sloburn(2000)
			if err != nil {
				return "", nil, err
			}
			if res.QuietBreached || res.QuietBudget < 1 {
				return "", nil, fmt.Errorf("sloburn: quiet tenant's budget damaged by the victim's outage (budget %.3f breached=%v)", res.QuietBudget, res.QuietBreached)
			}
			if extra := res.REDExtraAllocs(); extra > 0.5 {
				return "", nil, fmt.Errorf("sloburn: auth+RED added %.1f allocs/op on the predict path (want 0)", extra)
			}
			return res.Format(), res.BenchMetrics(), nil
		}},
		{"incidentcapture", "E24 (extension) — incident flight recorder: debounced capture, cross-process bundle, WAL durability", func() (string, []benchfmt.Metric, error) {
			res, err := experiments.IncidentCapture(2000)
			if err != nil {
				return "", nil, err
			}
			if res.Captures != 1 {
				return "", nil, fmt.Errorf("incidentcapture: %d bundles persisted for one scope across %d burn events (want exactly 1)", res.Captures, res.BurnEvents)
			}
			if res.BundlePartial {
				return "", nil, fmt.Errorf("incidentcapture: bundle marked partial with a live gateway")
			}
			if !res.RestartOK {
				return "", nil, fmt.Errorf("incidentcapture: bundle did not survive the store reopen")
			}
			if extra := res.RecorderExtraAllocs(); extra > 0.5 {
				return "", nil, fmt.Errorf("incidentcapture: armed recorder added %.1f allocs/op on the predict path (want 0)", extra)
			}
			return res.Format(), res.BenchMetrics(), nil
		}},
		{"profilereg", "E25 (extension) — continuous profiling: baseline detection, rule-driven capture, fleet view", func() (string, []benchfmt.Metric, error) {
			res, err := experiments.ProfileRegression(2000)
			if err != nil {
				return "", nil, err
			}
			if !strings.Contains(res.HogFunction, "profileregHogEncode") {
				return "", nil, fmt.Errorf("profilereg: detector named %q, want the injected hog", res.HogFunction)
			}
			if res.Bundles != 1 {
				return "", nil, fmt.Errorf("profilereg: %d bundles persisted (want exactly 1)", res.Bundles)
			}
			if res.BundleProfiles == 0 {
				return "", nil, fmt.Errorf("profilereg: bundle carried no profiler history")
			}
			if extra := res.ProfilerExtraAllocs(); extra > 0.5 {
				return "", nil, fmt.Errorf("profilereg: armed profiler added %.1f allocs/op on the predict path (want 0)", extra)
			}
			return res.Format(), res.BenchMetrics(), nil
		}},
		{"tiered", "E15 / §6.3 — tiered service offering", text(func() (string, error) {
			rs, err := experiments.TieredOnboarding()
			if err != nil {
				return "", err
			}
			return experiments.FormatTiers(rs), nil
		})},
	}

	selected := map[string]bool{}
	for _, p := range picks {
		selected[p] = true
	}
	known := map[string]bool{}
	for _, e := range all {
		known[e.name] = true
	}
	for p := range selected {
		if !known[p] {
			fmt.Fprintf(os.Stderr, "benchharness: unknown experiment %q\n", p)
			os.Exit(2)
		}
	}

	failed, regressed := 0, 0
	for _, e := range all {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.name, e.title)
		start := time.Now()
		out, ms, err := e.run()
		if err != nil {
			fmt.Printf("FAILED: %v\n\n", err)
			failed++
			continue
		}
		fmt.Print(out)
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
		if len(ms) == 0 {
			continue
		}
		cur := benchfmt.Result{Experiment: e.name, Metrics: ms}
		if *benchDir != "" {
			if err := benchfmt.Write(*benchDir, cur); err != nil {
				fmt.Fprintf(os.Stderr, "benchharness: %v\n", err)
				failed++
				continue
			}
			fmt.Printf("wrote %s\n\n", benchfmt.FileName(e.name))
		}
		if *baseline != "" {
			base, ok, err := benchfmt.LoadBaseline(*baseline, e.name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchharness: %v\n", err)
				failed++
				continue
			}
			if !ok {
				fmt.Printf("no baseline %s; skipping comparison\n\n", benchfmt.FileName(e.name))
				continue
			}
			deltas, bad := benchfmt.Compare(base, cur, *tol)
			fmt.Print(benchfmt.FormatDeltas(e.name, deltas))
			if bad {
				fmt.Printf("REGRESSED vs %s (tolerance %.0f%% default)\n", benchfmt.FileName(e.name), *tol*100)
				regressed++
			}
			fmt.Println()
		}
	}
	if *metrics {
		fmt.Println("=== metrics: process registry snapshot ===")
		if err := obs.Default.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchharness: dump metrics: %v\n", err)
		}
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchharness: %d experiment(s) regressed beyond tolerance\n", regressed)
	}
	if failed > 0 || regressed > 0 {
		os.Exit(1)
	}
}
