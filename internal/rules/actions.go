package rules

import (
	"context"
	"fmt"

	"gallery/internal/core"
)

// DeployAction returns the standard deployment callback: it promotes the
// matched instance's version to production in the registry, which flips
// the model's denormalized production pointer — the write the serving
// gateway's refresh loop watches. Wire it under the name "deploy" (and any
// team-specific aliases) with RegisterAction; the paper's §4.2 dynamic
// switching is exactly a metric-triggered rule firing this callback.
func DeployAction(reg *core.Registry) Action {
	return func(ctx *ActionContext) error {
		if ctx.Instance == nil {
			return fmt.Errorf("rules: deploy action fired without an instance")
		}
		// ctx.Ctx threads the triggering event's trace and actor into the
		// promotion's audit event.
		c := ctx.Ctx
		if c == nil {
			c = context.Background()
		}
		return reg.PromoteInstanceCtx(c, ctx.Instance.ID)
	}
}
