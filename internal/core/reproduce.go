package core

import (
	"bytes"
	"fmt"

	"gallery/internal/uuid"
)

// The paper's §6.2 lesson: "Users need the ability to recreate models or
// replay history in order to understand their production flows and debug
// performance." Gallery stores the full training recipe (training data
// pointer and version, framework, code pointer, seed, hyperparameters,
// features) exactly so an instance can be rebuilt on demand. Gallery stays
// model neutral: the application supplies the Trainer; Gallery supplies
// the recorded recipe and judges the outcome.

// Trainer rebuilds a serialized model from an instance's recorded recipe.
type Trainer func(recipe *Instance) ([]byte, error)

// ReproduceReport is the outcome of a reproduction attempt.
type ReproduceReport struct {
	InstanceID uuid.UUID
	// Exact reports a bit-identical rebuild. The paper notes exactness is
	// not always achievable "due to the randomness introduced in training
	// the models"; a recorded seed is what makes it possible.
	Exact bool
	// OriginalSize and RebuiltSize let callers eyeball near-misses.
	OriginalSize int
	RebuiltSize  int
	// RecipeGaps lists reproducibility metadata the instance is missing —
	// the reason a rebuild may be impossible or inexact.
	RecipeGaps []string
}

// Reproduce rebuilds an instance with the supplied trainer and compares
// the result against the stored blob. The rebuilt bytes are returned so
// callers can deploy or inspect them.
func (g *Registry) Reproduce(id uuid.UUID, train Trainer) (*ReproduceReport, []byte, error) {
	in, err := g.GetInstance(id)
	if err != nil {
		return nil, nil, err
	}
	original, err := g.FetchBlob(id)
	if err != nil {
		return nil, nil, fmt.Errorf("core: reproduce %s: original blob unavailable: %w", id, err)
	}
	comp, err := g.Completeness(id)
	if err != nil {
		return nil, nil, err
	}
	rebuilt, err := train(in)
	if err != nil {
		return nil, nil, fmt.Errorf("core: reproduce %s: trainer failed: %w", id, err)
	}
	rep := &ReproduceReport{
		InstanceID:   id,
		Exact:        bytes.Equal(original, rebuilt),
		OriginalSize: len(original),
		RebuiltSize:  len(rebuilt),
		RecipeGaps:   comp.Missing,
	}
	return rep, rebuilt, nil
}
