// Package btree implements an in-memory B-tree used by the relational
// metadata store for its primary and secondary indexes.
//
// The paper's Gallery leans on MySQL indexes to make model metadata
// searchable at the scale of a million model instances (paper §3.5, §4);
// this tree supplies the same capability to the embedded store: ordered
// iteration, point lookup, and range scans, all O(log n), with stable
// behaviour under millions of keys.
//
// The tree stores Items ordered by their Less method. It is not safe for
// concurrent mutation; the owning store serializes access.
package btree

import "sort"

// Item is an element in the tree. Two items are considered equal when
// neither is Less than the other.
type Item interface {
	Less(than Item) bool
}

// degree controls node fan-out: every non-root node has between degree-1 and
// 2*degree-1 items. 16 keeps nodes within a few cache lines for the small
// index keys the metadata store uses.
const degree = 16

const (
	minItems = degree - 1
	maxItems = 2*degree - 1
)

type node struct {
	items    []Item
	children []*node // empty for leaves
}

// Tree is a B-tree. The zero value is an empty tree ready to use.
type Tree struct {
	root   *node
	length int
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of items in the tree.
func (t *Tree) Len() int { return t.length }

func eq(a, b Item) bool { return !a.Less(b) && !b.Less(a) }

// find locates the index of key within n.items: found reports an exact
// match; otherwise i is the child index to descend into.
func (n *node) find(key Item) (i int, found bool) {
	i = sort.Search(len(n.items), func(i int) bool { return key.Less(n.items[i]) })
	if i > 0 && !n.items[i-1].Less(key) {
		return i - 1, true
	}
	return i, false
}

// Get returns the stored item equal to key, or nil.
func (t *Tree) Get(key Item) Item {
	n := t.root
	for n != nil {
		i, found := n.find(key)
		if found {
			return n.items[i]
		}
		if len(n.children) == 0 {
			return nil
		}
		n = n.children[i]
	}
	return nil
}

// Has reports whether an item equal to key is present.
func (t *Tree) Has(key Item) bool { return t.Get(key) != nil }

// ReplaceOrInsert adds item to the tree. If an equal item is already
// present it is replaced and returned; otherwise nil is returned.
func (t *Tree) ReplaceOrInsert(item Item) Item {
	if t.root == nil {
		t.root = &node{items: []Item{item}}
		t.length = 1
		return nil
	}
	if len(t.root.items) >= maxItems {
		mid, second := t.root.split(maxItems / 2)
		oldRoot := t.root
		t.root = &node{
			items:    []Item{mid},
			children: []*node{oldRoot, second},
		}
	}
	out := t.root.insert(item)
	if out == nil {
		t.length++
	}
	return out
}

// split divides n at item index i, returning the item that moves up and a
// new node holding everything after it.
func (n *node) split(i int) (Item, *node) {
	mid := n.items[i]
	next := &node{}
	next.items = append(next.items, n.items[i+1:]...)
	n.items = n.items[:i]
	if len(n.children) > 0 {
		next.children = append(next.children, n.children[i+1:]...)
		n.children = n.children[:i+1]
	}
	return mid, next
}

// maybeSplitChild splits child i if it is full, returning true if it did.
func (n *node) maybeSplitChild(i int) bool {
	if len(n.children[i].items) < maxItems {
		return false
	}
	mid, second := n.children[i].split(maxItems / 2)
	n.items = append(n.items, nil)
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = mid
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = second
	return true
}

func (n *node) insert(item Item) Item {
	i, found := n.find(item)
	if found {
		out := n.items[i]
		n.items[i] = item
		return out
	}
	if len(n.children) == 0 {
		n.items = append(n.items, nil)
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = item
		return nil
	}
	if n.maybeSplitChild(i) {
		switch {
		case eq(n.items[i], item):
			out := n.items[i]
			n.items[i] = item
			return out
		case n.items[i].Less(item):
			i++
		}
	}
	return n.children[i].insert(item)
}

// Delete removes the item equal to key, returning it, or nil if absent.
func (t *Tree) Delete(key Item) Item {
	if t.root == nil {
		return nil
	}
	out := t.root.remove(key)
	if len(t.root.items) == 0 && len(t.root.children) > 0 {
		t.root = t.root.children[0]
	}
	if out != nil {
		t.length--
	}
	if t.length == 0 {
		t.root = nil
	}
	return out
}

func (n *node) remove(key Item) Item {
	i, found := n.find(key)
	if len(n.children) == 0 {
		if !found {
			return nil
		}
		out := n.items[i]
		n.items = append(n.items[:i], n.items[i+1:]...)
		return out
	}
	if found {
		// Replace with predecessor from child i (grown first so the
		// recursive removal cannot underflow).
		child := n.growChild(i)
		// growChild may have merged/rotated; re-find.
		i, found = n.find(key)
		if !found {
			return n.children[i].remove(key)
		}
		child = n.children[i]
		out := n.items[i]
		n.items[i] = child.removeMax()
		return out
	}
	n.growChild(i)
	i, _ = n.find(key)
	return n.children[i].remove(key)
}

// removeMax deletes and returns the maximum item under n. n is assumed to
// have been grown above minItems by the caller chain.
func (n *node) removeMax() Item {
	if len(n.children) == 0 {
		out := n.items[len(n.items)-1]
		n.items = n.items[:len(n.items)-1]
		return out
	}
	i := len(n.children) - 1
	if len(n.children[i].items) <= minItems {
		n.growChild(i)
		i = len(n.children) - 1
	}
	return n.children[i].removeMax()
}

// growChild ensures child i has more than minItems items by borrowing from a
// sibling or merging. Returns the (possibly different) child that now covers
// key's range.
func (n *node) growChild(i int) *node {
	if len(n.children[i].items) > minItems {
		return n.children[i]
	}
	switch {
	case i > 0 && len(n.children[i-1].items) > minItems:
		// Rotate right: borrow from left sibling.
		child, left := n.children[i], n.children[i-1]
		child.items = append(child.items, nil)
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if len(left.children) > 0 {
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
		}
	case i < len(n.children)-1 && len(n.children[i+1].items) > minItems:
		// Rotate left: borrow from right sibling.
		child, right := n.children[i], n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if len(right.children) > 0 {
			child.children = append(child.children, right.children[0])
			right.children = append(right.children[:0], right.children[1:]...)
		}
	default:
		// Merge with a sibling.
		if i >= len(n.children)-1 {
			i--
		}
		child, right := n.children[i], n.children[i+1]
		child.items = append(child.items, n.items[i])
		child.items = append(child.items, right.items...)
		child.children = append(child.children, right.children...)
		n.items = append(n.items[:i], n.items[i+1:]...)
		n.children = append(n.children[:i+1], n.children[i+2:]...)
		return child
	}
	return n.children[i]
}

// Visitor is called for each item during iteration; returning false stops
// the scan.
type Visitor func(Item) bool

// Ascend visits every item in ascending order.
func (t *Tree) Ascend(v Visitor) {
	if t.root != nil {
		t.root.ascendRange(nil, nil, v)
	}
}

// AscendGreaterOrEqual visits items >= pivot in ascending order.
func (t *Tree) AscendGreaterOrEqual(pivot Item, v Visitor) {
	if t.root != nil {
		t.root.ascendRange(pivot, nil, v)
	}
}

// AscendRange visits items in [greaterOrEqual, lessThan) ascending. A nil
// bound is unbounded on that side.
func (t *Tree) AscendRange(greaterOrEqual, lessThan Item, v Visitor) {
	if t.root != nil {
		t.root.ascendRange(greaterOrEqual, lessThan, v)
	}
}

func (n *node) ascendRange(ge, lt Item, v Visitor) bool {
	start := 0
	if ge != nil {
		// find returns the equal item's index when present, else the first
		// child whose subtree may contain items >= ge.
		start, _ = n.find(ge)
	}
	for i := start; i < len(n.items); i++ {
		if len(n.children) > 0 {
			if !n.children[i].ascendRange(ge, lt, v) {
				return false
			}
		}
		if ge != nil && n.items[i].Less(ge) {
			continue
		}
		if lt != nil && !n.items[i].Less(lt) {
			return true
		}
		if !v(n.items[i]) {
			return false
		}
	}
	if len(n.children) > 0 {
		return n.children[len(n.children)-1].ascendRange(ge, lt, v)
	}
	return true
}

// Descend visits every item in descending order.
func (t *Tree) Descend(v Visitor) {
	if t.root != nil {
		t.root.descend(v)
	}
}

// DescendLessOrEqual visits items <= pivot in descending order. It is
// the mirror of AscendGreaterOrEqual and gives index scans an O(log n)
// seek to the upper bound of a range before walking downward.
func (t *Tree) DescendLessOrEqual(pivot Item, v Visitor) {
	if t.root != nil {
		t.root.descendLessOrEqual(pivot, v)
	}
}

func (n *node) descendLessOrEqual(le Item, v Visitor) bool {
	i, found := n.find(le)
	if found {
		// items[i] == le: everything under child i is smaller, so the
		// bound no longer constrains the recursion.
		if !v(n.items[i]) {
			return false
		}
		if len(n.children) > 0 && !n.children[i].descend(v) {
			return false
		}
		i--
	} else {
		// items[i] is the first item > le; child i may still straddle it.
		if len(n.children) > 0 && !n.children[i].descendLessOrEqual(le, v) {
			return false
		}
		i--
	}
	for ; i >= 0; i-- {
		if !v(n.items[i]) {
			return false
		}
		if len(n.children) > 0 && !n.children[i].descend(v) {
			return false
		}
	}
	return true
}

func (n *node) descend(v Visitor) bool {
	for i := len(n.items) - 1; i >= 0; i-- {
		if len(n.children) > 0 {
			if !n.children[i+1].descend(v) {
				return false
			}
		}
		if !v(n.items[i]) {
			return false
		}
	}
	if len(n.children) > 0 {
		return n.children[0].descend(v)
	}
	return true
}

// Min returns the smallest item, or nil if the tree is empty.
func (t *Tree) Min() Item {
	n := t.root
	if n == nil {
		return nil
	}
	for len(n.children) > 0 {
		n = n.children[0]
	}
	if len(n.items) == 0 {
		return nil
	}
	return n.items[0]
}

// Max returns the largest item, or nil if the tree is empty.
func (t *Tree) Max() Item {
	n := t.root
	if n == nil {
		return nil
	}
	for len(n.children) > 0 {
		n = n.children[len(n.children)-1]
	}
	if len(n.items) == 0 {
		return nil
	}
	return n.items[len(n.items)-1]
}
