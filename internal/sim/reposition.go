package sim

import (
	"math"
	"math/rand"
	"time"

	"gallery/internal/forecast"
)

// Spatial demand and forecast-driven driver repositioning.
//
// The paper motivates Gallery with forecasting that feeds marketplace
// operations ("driver suggestions and pricing", §4.2). This extension
// closes that loop inside the simulator: rider demand shifts between city
// quadrants over the day, per-quadrant forecasters predict where demand
// will be, and idle drivers are repositioned toward predicted hot spots.
// Better models produce measurably better marketplace outcomes (lower
// waits, fewer abandonments) — the operational reason model management
// and per-city champion selection matter.

// quadrant maps a position to one of the 2x2 city quadrants.
func quadrant(x, y, gridKm float64) int {
	q := 0
	if x >= gridKm/2 {
		q++
	}
	if y >= gridKm/2 {
		q += 2
	}
	return q
}

// quadrantWeights returns the fraction of demand originating in each
// quadrant at a given simulation time. With shift=0 demand is uniform;
// larger shifts move mass between quadrant 0 (morning-heavy, the
// "business district") and quadrant 3 (evening-heavy, the "suburbs") on a
// daily cycle.
func quadrantWeights(simSeconds, shift float64) [4]float64 {
	w := [4]float64{0.25, 0.25, 0.25, 0.25}
	if shift <= 0 {
		return w
	}
	hour := math.Mod(simSeconds/3600, 24)
	// +1 at 09:00, -1 at 21:00.
	phase := math.Cos(2 * math.Pi * (hour - 9) / 24)
	delta := shift * 0.25 * phase
	w[0] += delta
	w[3] -= delta
	for i := range w {
		if w[i] < 0.01 {
			w[i] = 0.01
		}
	}
	var sum float64
	for _, v := range w {
		sum += v
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// samplePoint draws a uniform position inside quadrant q.
func samplePoint(rng *rand.Rand, q int, gridKm float64) (x, y float64) {
	half := gridKm / 2
	x = rng.Float64() * half
	y = rng.Float64() * half
	if q&1 != 0 {
		x += half
	}
	if q&2 != 0 {
		y += half
	}
	return x, y
}

// sampleQuadrant draws a quadrant index proportional to weights.
func sampleQuadrant(rng *rand.Rand, w [4]float64) int {
	r := rng.Float64()
	acc := 0.0
	for i, v := range w {
		acc += v
		if r < acc {
			return i
		}
	}
	return 3
}

// QuadrantTrainingSeries generates the expected hourly demand series of
// one quadrant under a configuration — the offline training data an
// application team would derive from trip logs before publishing
// per-quadrant forecasters to Gallery.
func QuadrantTrainingSeries(base, shift float64, q, hours int, seed int64) forecast.Series {
	rng := rand.New(rand.NewSource(seed + int64(q)*101))
	start := time.Unix(0, 0).UTC()
	out := make(forecast.Series, hours)
	for h := 0; h < hours; h++ {
		simSec := float64(h) * 3600
		w := quadrantWeights(simSec, shift)
		mean := base * demandShape(simSec) * w[q]
		v := mean + rng.NormFloat64()*math.Sqrt(mean+1)
		if v < 0 {
			v = 0
		}
		out[h] = forecast.Point{T: start.Add(time.Duration(h) * time.Hour), V: v}
	}
	return out
}
