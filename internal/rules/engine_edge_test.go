package rules

import (
	"testing"
	"time"

	"gallery/internal/core"
	"gallery/internal/uuid"
)

func TestStartIdempotentAndStopWithoutStart(t *testing.T) {
	h := newHarness(t)
	h.eng.Stop() // no-op before Start
	h.eng.Start(2)
	h.eng.Start(2) // second Start must not spawn a second pool or panic
	h.eng.Stop()
	h.eng.Stop() // double Stop is safe
}

func TestDispatchAfterStopRunsInline(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "Random Forest", "UberX")
	in := h.upload(t, m, "sf")
	fired := 0
	h.eng.RegisterAction("forecasting_deployment", func(*ActionContext) error { fired++; return nil })
	h.commit(t, listing2())
	if _, err := h.g.InsertMetric(in.ID, "bias", core.ScopeValidation, 0.0); err != nil {
		t.Fatal(err)
	}
	h.eng.Start(2)
	h.eng.Stop()
	// After Stop, events evaluate inline rather than being lost.
	h.eng.MetricUpdated(in.ID)
	if fired != 1 {
		t.Fatalf("fired = %d after stop", fired)
	}
}

func TestUnknownInstanceEventAlerts(t *testing.T) {
	h := newHarness(t)
	h.commit(t, listing2())
	h.eng.MetricUpdated(uuid.New()) // instance does not exist
	alerts := h.eng.Alerts()
	if len(alerts) != 1 || alerts[0].Action != "engine" {
		t.Fatalf("alerts = %v", alerts)
	}
}

func TestSelectionConsidersLatestProductionOverValidation(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "linear_regression", "UberX")
	in := h.upload(t, m, "sf")
	// Validation says mae 2; later production measurement says 9. The
	// engine's environment merges scopes with production winning, so the
	// candidate must fail the mae < 5 filter.
	if _, err := h.g.InsertMetric(in.ID, "mae", core.ScopeValidation, 2); err != nil {
		t.Fatal(err)
	}
	h.clk.Advance(time.Minute)
	if _, err := h.g.InsertMetric(in.ID, "mae", core.ScopeProduction, 9); err != nil {
		t.Fatal(err)
	}
	h.commit(t, listing1())
	if _, err := h.eng.SelectModel(listing1().UUID, core.InstanceFilter{}); err == nil {
		t.Fatal("stale validation metric won over fresh production metric")
	}
}

func TestSelectionSkipsDeprecatedCandidates(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "linear_regression", "UberX")
	old := h.upload(t, m, "sf")
	fresh := h.upload(t, m, "sf")
	for _, in := range []*core.Instance{old, fresh} {
		if _, err := h.g.InsertMetric(in.ID, "mae", core.ScopeValidation, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.g.DeprecateInstance(fresh.ID); err != nil {
		t.Fatal(err)
	}
	h.commit(t, listing1())
	got, err := h.eng.SelectModel(listing1().UUID, core.InstanceFilter{})
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != old.ID {
		t.Fatal("deprecated instance selected as champion")
	}
}

func TestMultipleActionsPerRule(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "Random Forest", "UberX")
	in := h.upload(t, m, "sf")
	var order []string
	h.eng.RegisterAction("first", func(*ActionContext) error { order = append(order, "first"); return nil })
	h.eng.RegisterAction("second", func(*ActionContext) error { order = append(order, "second"); return nil })
	r := listing2()
	r.Actions = []ActionRef{{Action: "first"}, {Action: "second"}}
	h.commit(t, r)
	if _, err := h.g.InsertMetric(in.ID, "bias", core.ScopeValidation, 0.0); err != nil {
		t.Fatal(err)
	}
	h.eng.MetricUpdated(in.ID)
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v", order)
	}
}

func TestActionParamsReachCallback(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "Random Forest", "UberX")
	in := h.upload(t, m, "sf")
	var got map[string]any
	h.eng.RegisterAction("configure", func(ctx *ActionContext) error {
		got = ctx.Params
		return nil
	})
	r := listing2()
	r.Actions = []ActionRef{{Action: "configure", Params: map[string]any{"endpoint": "http://serve/cfg", "timeout": 3.0}}}
	h.commit(t, r)
	if _, err := h.g.InsertMetric(in.ID, "bias", core.ScopeValidation, 0.0); err != nil {
		t.Fatal(err)
	}
	h.eng.MetricUpdated(in.ID)
	if got == nil || got["endpoint"] != "http://serve/cfg" || got["timeout"] != 3.0 {
		t.Fatalf("params = %v", got)
	}
}

func TestActionContextCarriesMetrics(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "Random Forest", "UberX")
	in := h.upload(t, m, "sf")
	var metrics map[string]float64
	h.eng.RegisterAction("forecasting_deployment", func(ctx *ActionContext) error {
		metrics = ctx.Metrics
		return nil
	})
	h.commit(t, listing2())
	if _, err := h.g.InsertMetric(in.ID, "bias", core.ScopeValidation, 0.04); err != nil {
		t.Fatal(err)
	}
	h.eng.MetricUpdated(in.ID)
	if metrics["bias"] != 0.04 {
		t.Fatalf("metrics = %v", metrics)
	}
}
