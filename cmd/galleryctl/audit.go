package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"

	"gallery/internal/api"
	"gallery/internal/client"
	obslog "gallery/internal/obs/log"
)

// cmdAudit searches the lifecycle audit trail. With -entity it renders
// one entity's timeline (a model's timeline includes events on its
// instances and versions); otherwise it runs a filtered search over the
// whole trail.
func cmdAudit(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	entity := fs.String("entity", "", "render one entity's timeline (model or instance UUID)")
	model := fs.String("model", "", "events whose owning model is this UUID")
	action := fs.String("action", "", "filter by action (e.g. version.promote, rule.fire)")
	actor := fs.String("actor", "", "filter by actor")
	traceID := fs.String("trace", "", "filter by 32-hex trace id")
	since := fs.String("since", "", "events at or after (RFC3339 or a duration like 15m)")
	until := fs.String("until", "", "events before (RFC3339 or a duration like 15m)")
	limit := fs.Int("limit", 50, "max events")
	asc := fs.Bool("asc", false, "oldest first (default newest first)")
	raw := fs.Bool("json", false, "print raw JSON instead of the rendered view")
	var where multiFlag
	fs.Var(&where, "where", "raw predicate field:op:value (repeatable)")
	fs.Parse(args)

	var (
		evs []api.AuditEvent
		err error
	)
	if *entity != "" {
		evs, err = c.EntityTimeline(*entity, *limit)
	} else {
		evs, err = c.AuditEvents(client.AuditQuery{
			Model: *model, Action: *action, Actor: *actor, Trace: *traceID,
			Since: *since, Until: *until, Where: where, Limit: *limit, Asc: *asc,
		})
	}
	if err != nil {
		return err
	}
	if *raw {
		return dump(evs, nil)
	}
	for _, ev := range evs {
		printAuditEvent(ev)
	}
	if len(evs) == 0 {
		fmt.Println("no audit events match")
	}
	return nil
}

// printAuditEvent renders one trail line:
//
//	#12 2026-08-06T10:00:00Z version.promote instance 5b..  rules  v1.0 (..) -> v1.1 (..)  trace=ab..
func printAuditEvent(ev api.AuditEvent) {
	change := ""
	switch {
	case ev.Before != "" && ev.After != "":
		change = fmt.Sprintf("  %s -> %s", ev.Before, ev.After)
	case ev.After != "":
		change = "  -> " + ev.After
	case ev.Before != "":
		change = "  was " + ev.Before
	}
	detail := ""
	if ev.Detail != "" {
		detail = "  (" + ev.Detail + ")"
	}
	tr := ""
	if ev.TraceID != "" {
		tr = "  trace=" + ev.TraceID
	}
	fmt.Printf("#%d %s  %-20s %s %s  by %s%s%s%s\n",
		ev.Seq, ev.Time.UTC().Format(time.RFC3339), ev.Action,
		ev.EntityType, ev.EntityID, ev.Actor, change, detail, tr)
}

// cmdLogs reads the server's structured-log ring; -follow polls the
// sequence cursor so only new lines print.
func cmdLogs(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("logs", flag.ExitOnError)
	level := fs.String("level", "", "min level: debug|info|warn|error")
	since := fs.String("since", "", "lines at or after (RFC3339 or a duration like 5m)")
	limit := fs.Int("limit", 100, "max lines per fetch")
	follow := fs.Bool("follow", false, "keep polling for new lines")
	every := fs.Duration("every", 2*time.Second, "poll period with -follow")
	raw := fs.Bool("json", false, "print raw JSON entries")
	fs.Parse(args)

	q := client.LogsQuery{Level: *level, Since: *since, Limit: *limit}
	for {
		resp, err := c.DebugLogs(q)
		if err != nil {
			return err
		}
		for _, e := range resp.Entries {
			if *raw {
				if err := dump(e, nil); err != nil {
					return err
				}
				continue
			}
			printLogEntry(e)
		}
		if !*follow {
			return nil
		}
		// From here on, only lines newer than what we have seen.
		q.Since = ""
		q.After, q.HasAfter = resp.NextSeq, true
		time.Sleep(*every)
	}
}

func printLogEntry(e obslog.Entry) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %-5s %s", e.Time.UTC().Format(time.RFC3339), strings.ToUpper(e.Level), e.Msg)
	if e.TraceID != "" {
		fmt.Fprintf(&b, " trace=%s", e.TraceID)
	}
	keys := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", k, e.Attrs[k])
	}
	fmt.Println(b.String())
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }
