package profile

import (
	"bytes"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// --- hand-built pprof encoder, just enough for deterministic parser tests ---

func appendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendTag(b []byte, field, wire int) []byte {
	return appendVarint(b, uint64(field<<3|wire))
}

func appendBytesField(b []byte, field int, payload []byte) []byte {
	b = appendTag(b, field, 2)
	b = appendVarint(b, uint64(len(payload)))
	return append(b, payload...)
}

func appendVarintField(b []byte, field int, v uint64) []byte {
	b = appendTag(b, field, 0)
	return appendVarint(b, v)
}

func appendPacked(b []byte, field int, vs ...uint64) []byte {
	var p []byte
	for _, v := range vs {
		p = appendVarint(p, v)
	}
	return appendBytesField(b, field, p)
}

// testProfile encodes:
//
//	strings: 0:"" 1:"samples" 2:"count" 3:"cpu" 4:"nanoseconds" 5:"fA" 6:"fB" 7:"fC"
//	functions: 1=fA 2=fB 3=fC
//	locations: 1=[fA]  2=[fB,fC] (fB inlined into fC)  3=[fC]
//	samples: [1,3]=100  [2,3]=50  [1,1]=25 (recursion)
//
// With the "cpu" column selected: fA self=125 cum=125, fB self=50
// cum=50, fC self=0 cum=150, total=175.
func testProfile(t *testing.T, packed bool) []byte {
	t.Helper()
	var b []byte

	vt := func(typ, unit uint64) []byte {
		var m []byte
		m = appendVarintField(m, 1, typ)
		m = appendVarintField(m, 2, unit)
		return m
	}
	b = appendBytesField(b, 1, vt(1, 2)) // samples/count
	b = appendBytesField(b, 1, vt(3, 4)) // cpu/nanoseconds

	sample := func(locs []uint64, count, v uint64) []byte {
		var m []byte
		if packed {
			m = appendPacked(m, 1, locs...)
			m = appendPacked(m, 2, count, v)
		} else {
			for _, l := range locs {
				m = appendVarintField(m, 1, l)
			}
			m = appendVarintField(m, 2, count)
			m = appendVarintField(m, 2, v)
		}
		return m
	}
	b = appendBytesField(b, 2, sample([]uint64{1, 3}, 1, 100))
	b = appendBytesField(b, 2, sample([]uint64{2, 3}, 1, 50))
	b = appendBytesField(b, 2, sample([]uint64{1, 1}, 1, 25))

	line := func(fid uint64) []byte {
		var m []byte
		m = appendVarintField(m, 1, fid)
		return m
	}
	loc := func(id uint64, fids ...uint64) []byte {
		var m []byte
		m = appendVarintField(m, 1, id)
		for _, fid := range fids {
			m = appendBytesField(m, 4, line(fid))
		}
		return m
	}
	b = appendBytesField(b, 4, loc(1, 1))
	b = appendBytesField(b, 4, loc(2, 2, 3))
	b = appendBytesField(b, 4, loc(3, 3))

	fn := func(id, name uint64) []byte {
		var m []byte
		m = appendVarintField(m, 1, id)
		m = appendVarintField(m, 2, name)
		return m
	}
	b = appendBytesField(b, 5, fn(1, 5))
	b = appendBytesField(b, 5, fn(2, 6))
	b = appendBytesField(b, 5, fn(3, 7))

	// String table last, like the runtime's encoder: name resolution must
	// be deferred.
	for _, s := range []string{"", "samples", "count", "cpu", "nanoseconds", "fA", "fB", "fC"} {
		b = appendBytesField(b, 6, []byte(s))
	}
	return b
}

func statOf(t *testing.T, s Summary, name string) FuncStat {
	t.Helper()
	for _, fn := range s.Top {
		if fn.Name == name {
			return fn
		}
	}
	t.Fatalf("function %q not in summary top %v", name, s.Top)
	return FuncStat{}
}

func TestSummarizeHandEncoded(t *testing.T) {
	for _, packed := range []bool{true, false} {
		s, err := Summarize(testProfile(t, packed), KindCPU, 10)
		if err != nil {
			t.Fatalf("packed=%v: %v", packed, err)
		}
		if s.Total != 175 || s.Samples != 3 {
			t.Fatalf("packed=%v: total=%d samples=%d, want 175/3", packed, s.Total, s.Samples)
		}
		if s.Unit != "nanoseconds" {
			t.Fatalf("unit = %q, want nanoseconds", s.Unit)
		}
		fa, fb, fc := statOf(t, s, "fA"), statOf(t, s, "fB"), statOf(t, s, "fC")
		if fa.Self != 125 || fa.Cum != 125 {
			t.Fatalf("fA self=%d cum=%d, want 125/125 (recursion must not double-count cum)", fa.Self, fa.Cum)
		}
		if fb.Self != 50 || fb.Cum != 50 {
			t.Fatalf("fB self=%d cum=%d, want 50/50 (inline leaf takes self)", fb.Self, fb.Cum)
		}
		if fc.Self != 0 || fc.Cum != 150 {
			t.Fatalf("fC self=%d cum=%d, want 0/150", fc.Self, fc.Cum)
		}
		// Ranked by self: fA, fB, fC.
		if s.Top[0].Name != "fA" || s.Top[1].Name != "fB" || s.Top[2].Name != "fC" {
			t.Fatalf("rank order = %v", s.Top)
		}
		if got := fa.SelfShare; got < 0.71 || got > 0.72 {
			t.Fatalf("fA self share = %v, want 125/175", got)
		}
	}
}

func TestSummarizeTopNBound(t *testing.T) {
	s, err := Summarize(testProfile(t, true), KindCPU, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Top) != 1 || s.Top[0].Name != "fA" {
		t.Fatalf("topN=1 kept %v", s.Top)
	}
	if s.Total != 175 {
		t.Fatalf("truncation must not change Total, got %d", s.Total)
	}
}

func TestSummarizeMalformed(t *testing.T) {
	for _, raw := range [][]byte{
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // varint overflow tag
		{0x12, 0x05, 0x01},             // length past end
		{0x1f, 0x8b, 0x00, 0x00},       // gzip magic, garbage body
		appendTag(nil, 1, 7),           // bad wire type
		appendVarintField(nil, 99, 42), // unknown field only: no sample types
	} {
		if _, err := Summarize(raw, KindCPU, 5); err == nil {
			t.Fatalf("Summarize(%x) succeeded, want error", raw)
		}
	}
}

// spinForProfile burns CPU in a recognizably named frame.
//
//go:noinline
func spinForProfile(until time.Time) float64 {
	x := 1.0001
	for time.Now().Before(until) {
		for i := 0; i < 1000; i++ {
			x *= 1.0000001
		}
	}
	return x
}

func TestSummarizeLiveCPUProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("cpu profile unavailable: %v", err)
	}
	spinForProfile(time.Now().Add(300 * time.Millisecond))
	pprof.StopCPUProfile()

	s, err := Summarize(buf.Bytes(), KindCPU, 25)
	if err != nil {
		t.Fatal(err)
	}
	if s.Samples == 0 {
		t.Fatal("live profile had zero samples despite a 300ms busy loop")
	}
	var found bool
	for _, fn := range s.Top {
		if strings.Contains(fn.Name, "spinForProfile") {
			found = true
			if fn.Self == 0 {
				t.Fatalf("spin function has zero self time: %+v", fn)
			}
		}
	}
	if !found {
		t.Fatalf("spin function absent from top: %v", s.Top)
	}
}

func TestSummarizeLiveSnapshots(t *testing.T) {
	hold := make([][]byte, 0, 8)
	for i := 0; i < 8; i++ {
		hold = append(hold, make([]byte, 1<<20))
	}
	defer func() { _ = hold }()
	for kind, name := range lookupNames {
		lp := pprof.Lookup(name)
		if lp == nil {
			t.Fatalf("no %s profile", name)
		}
		var buf bytes.Buffer
		if err := lp.WriteTo(&buf, 0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s, err := Summarize(buf.Bytes(), kind, 10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Kind != kind {
			t.Fatalf("kind = %q, want %q", s.Kind, kind)
		}
	}
}
