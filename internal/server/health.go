package server

import (
	"fmt"
	"net/http"

	"gallery/internal/api"
	"gallery/internal/core"
)

// Continuous model-health endpoints, mounted when Options.Health is set.
// Serving gateways POST windowed distribution sketches here; operators and
// galleryctl read the monitor's per-model verdicts back out.

func (s *Server) handleHealthObservations(w http.ResponseWriter, r *http.Request) {
	var req api.HealthObservationsRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	resp, err := s.health.Ingest(r.Context(), req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleListModelHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.health.List())
}

func (s *Server) handleGetModelHealth(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	mh, ok := s.health.ModelHealth(id)
	if !ok {
		writeErr(w, fmt.Errorf("%w: no health state for model %s", core.ErrNotFound, id))
		return
	}
	writeJSON(w, http.StatusOK, mh)
}
