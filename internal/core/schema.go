package core

import (
	"fmt"

	"gallery/internal/relstore"
	"gallery/internal/uuid"
)

// Table names in the metadata store.
const (
	TableModels        = "models"
	TableInstances     = "instances"
	TableMetrics       = "metrics"
	TableVersions      = "versions"
	TableDeps          = "deps"
	TableHealthWindows = "health_windows"
)

// Schemas returns the full Gallery metadata schema set. The registry
// declares them at startup; CreateTable is idempotent over recovered
// stores.
func Schemas() []relstore.Schema {
	return []relstore.Schema{
		{
			Table: TableModels,
			Columns: []relstore.Column{
				{Name: "id", Kind: relstore.KindString},
				{Name: "base_version_id", Kind: relstore.KindString},
				{Name: "project", Kind: relstore.KindString, Nullable: true},
				{Name: "name", Kind: relstore.KindString, Nullable: true},
				{Name: "owner", Kind: relstore.KindString, Nullable: true},
				{Name: "team", Kind: relstore.KindString, Nullable: true},
				{Name: "domain", Kind: relstore.KindString, Nullable: true},
				{Name: "description", Kind: relstore.KindString, Nullable: true},
				{Name: "major", Kind: relstore.KindInt},
				{Name: "minor", Kind: relstore.KindInt},
				{Name: "production_version", Kind: relstore.KindString, Nullable: true},
				{Name: "prev_model", Kind: relstore.KindString, Nullable: true},
				{Name: "next_model", Kind: relstore.KindString, Nullable: true},
				{Name: "created", Kind: relstore.KindTime},
				{Name: "deprecated", Kind: relstore.KindBool},
			},
			Key:     "id",
			Indexes: []string{"base_version_id", "project", "name", "domain"},
		},
		{
			Table: TableInstances,
			Columns: []relstore.Column{
				{Name: "id", Kind: relstore.KindString},
				{Name: "model_id", Kind: relstore.KindString},
				{Name: "base_version_id", Kind: relstore.KindString},
				{Name: "project", Kind: relstore.KindString, Nullable: true},
				{Name: "name", Kind: relstore.KindString, Nullable: true},
				{Name: "city", Kind: relstore.KindString, Nullable: true},
				{Name: "framework", Kind: relstore.KindString, Nullable: true},
				{Name: "training_data", Kind: relstore.KindString, Nullable: true},
				{Name: "code_pointer", Kind: relstore.KindString, Nullable: true},
				{Name: "seed", Kind: relstore.KindInt, Nullable: true},
				{Name: "epochs", Kind: relstore.KindInt, Nullable: true},
				{Name: "hyperparams", Kind: relstore.KindString, Nullable: true},
				{Name: "features", Kind: relstore.KindString, Nullable: true},
				{Name: "blob_location", Kind: relstore.KindString, Nullable: true},
				{Name: "created", Kind: relstore.KindTime},
				{Name: "deprecated", Kind: relstore.KindBool},
			},
			Key:     "id",
			Indexes: []string{"model_id", "base_version_id", "project", "name", "city", "created"},
		},
		{
			Table: TableMetrics,
			Columns: []relstore.Column{
				{Name: "id", Kind: relstore.KindString},
				{Name: "instance_id", Kind: relstore.KindString},
				{Name: "model_id", Kind: relstore.KindString},
				{Name: "name", Kind: relstore.KindString},
				{Name: "scope", Kind: relstore.KindString},
				{Name: "value", Kind: relstore.KindFloat},
				{Name: "created", Kind: relstore.KindTime},
			},
			Key:     "id",
			Indexes: []string{"instance_id", "model_id", "name", "created"},
		},
		{
			Table: TableVersions,
			Columns: []relstore.Column{
				{Name: "id", Kind: relstore.KindString},
				{Name: "model_id", Kind: relstore.KindString},
				{Name: "major", Kind: relstore.KindInt},
				{Name: "minor", Kind: relstore.KindInt},
				{Name: "cause", Kind: relstore.KindString},
				{Name: "instance_id", Kind: relstore.KindString, Nullable: true},
				{Name: "triggered_by", Kind: relstore.KindString, Nullable: true},
				{Name: "created", Kind: relstore.KindTime},
				{Name: "production", Kind: relstore.KindBool},
			},
			Key:     "id",
			Indexes: []string{"model_id"},
		},
		{
			Table: TableDeps,
			Columns: []relstore.Column{
				{Name: "id", Kind: relstore.KindString}, // "from|to"
				{Name: "from_model", Kind: relstore.KindString},
				{Name: "to_model", Kind: relstore.KindString},
				{Name: "created", Kind: relstore.KindTime},
			},
			Key:     "id",
			Indexes: []string{"from_model", "to_model"},
		},
		{
			Table: TableHealthWindows,
			Columns: []relstore.Column{
				{Name: "id", Kind: relstore.KindString},
				{Name: "model_id", Kind: relstore.KindString},
				{Name: "instance_id", Kind: relstore.KindString, Nullable: true},
				{Name: "gateway", Kind: relstore.KindString, Nullable: true},
				{Name: "window_start", Kind: relstore.KindTime},
				{Name: "window_end", Kind: relstore.KindTime},
				{Name: "requests", Kind: relstore.KindInt},
				{Name: "stale_serves", Kind: relstore.KindInt},
				{Name: "values_sketch", Kind: relstore.KindString, Nullable: true},
				{Name: "latency_sketch", Kind: relstore.KindString, Nullable: true},
			},
			Key:     "id",
			Indexes: []string{"model_id", "window_end"},
		},
	}
}

// --- row <-> struct conversions ---

func modelToRow(m *Model) relstore.Row {
	return relstore.Row{
		"id":                 relstore.String(m.ID.String()),
		"base_version_id":    relstore.String(m.BaseVersionID),
		"project":            relstore.String(m.Project),
		"name":               relstore.String(m.Name),
		"owner":              relstore.String(m.Owner),
		"team":               relstore.String(m.Team),
		"domain":             relstore.String(m.Domain),
		"description":        relstore.String(m.Description),
		"major":              relstore.Int(int64(m.Major)),
		"minor":              relstore.Int(int64(m.Minor)),
		"production_version": relstore.String(uuidOrEmpty(m.ProductionVersion)),
		"prev_model":         relstore.String(uuidOrEmpty(m.PrevModel)),
		"next_model":         relstore.String(uuidOrEmpty(m.NextModel)),
		"created":            relstore.Time(m.Created),
		"deprecated":         relstore.Bool(m.Deprecated),
	}
}

func rowToModel(r relstore.Row) (*Model, error) {
	id, err := uuid.Parse(r["id"].Str)
	if err != nil {
		return nil, fmt.Errorf("core: model row has bad id: %w", err)
	}
	m := &Model{
		ID:            id,
		BaseVersionID: r["base_version_id"].Str,
		Project:       r["project"].Str,
		Name:          r["name"].Str,
		Owner:         r["owner"].Str,
		Team:          r["team"].Str,
		Domain:        r["domain"].Str,
		Description:   r["description"].Str,
		Major:         int(r["major"].Int),
		Minor:         int(r["minor"].Int),
		Created:       r["created"].Time,
		Deprecated:    r["deprecated"].Bool,
	}
	m.ProductionVersion = parseOrNil(r["production_version"].Str)
	m.PrevModel = parseOrNil(r["prev_model"].Str)
	m.NextModel = parseOrNil(r["next_model"].Str)
	return m, nil
}

func instanceToRow(in *Instance) relstore.Row {
	return relstore.Row{
		"id":              relstore.String(in.ID.String()),
		"model_id":        relstore.String(in.ModelID.String()),
		"base_version_id": relstore.String(in.BaseVersionID),
		"project":         relstore.String(in.Project),
		"name":            relstore.String(in.Name),
		"city":            relstore.String(in.City),
		"framework":       relstore.String(in.Framework),
		"training_data":   relstore.String(in.TrainingData),
		"code_pointer":    relstore.String(in.CodePointer),
		"seed":            relstore.Int(in.Seed),
		"epochs":          relstore.Int(in.Epochs),
		"hyperparams":     relstore.String(in.Hyperparams),
		"features":        relstore.String(in.Features),
		"blob_location":   relstore.String(in.BlobLocation),
		"created":         relstore.Time(in.Created),
		"deprecated":      relstore.Bool(in.Deprecated),
	}
}

func rowToInstance(r relstore.Row) (*Instance, error) {
	id, err := uuid.Parse(r["id"].Str)
	if err != nil {
		return nil, fmt.Errorf("core: instance row has bad id: %w", err)
	}
	modelID, err := uuid.Parse(r["model_id"].Str)
	if err != nil {
		return nil, fmt.Errorf("core: instance row has bad model_id: %w", err)
	}
	return &Instance{
		ID:            id,
		ModelID:       modelID,
		BaseVersionID: r["base_version_id"].Str,
		Project:       r["project"].Str,
		Name:          r["name"].Str,
		City:          r["city"].Str,
		Framework:     r["framework"].Str,
		TrainingData:  r["training_data"].Str,
		CodePointer:   r["code_pointer"].Str,
		Seed:          r["seed"].Int,
		Epochs:        r["epochs"].Int,
		Hyperparams:   r["hyperparams"].Str,
		Features:      r["features"].Str,
		BlobLocation:  r["blob_location"].Str,
		Created:       r["created"].Time,
		Deprecated:    r["deprecated"].Bool,
	}, nil
}

func metricToRow(m *Metric) relstore.Row {
	return relstore.Row{
		"id":          relstore.String(m.ID.String()),
		"instance_id": relstore.String(m.InstanceID.String()),
		"model_id":    relstore.String(m.ModelID.String()),
		"name":        relstore.String(m.Name),
		"scope":       relstore.String(string(m.Scope)),
		"value":       relstore.Float(m.Value),
		"created":     relstore.Time(m.At),
	}
}

func rowToMetric(r relstore.Row) (*Metric, error) {
	id, err := uuid.Parse(r["id"].Str)
	if err != nil {
		return nil, fmt.Errorf("core: metric row has bad id: %w", err)
	}
	instID, err := uuid.Parse(r["instance_id"].Str)
	if err != nil {
		return nil, fmt.Errorf("core: metric row has bad instance_id: %w", err)
	}
	return &Metric{
		ID:         id,
		InstanceID: instID,
		ModelID:    parseOrNil(r["model_id"].Str),
		Name:       r["name"].Str,
		Scope:      Scope(r["scope"].Str),
		Value:      r["value"].Float,
		At:         r["created"].Time,
	}, nil
}

func versionToRow(v *VersionRecord) relstore.Row {
	return relstore.Row{
		"id":           relstore.String(v.ID.String()),
		"model_id":     relstore.String(v.ModelID.String()),
		"major":        relstore.Int(int64(v.Major)),
		"minor":        relstore.Int(int64(v.Minor)),
		"cause":        relstore.String(string(v.Cause)),
		"instance_id":  relstore.String(uuidOrEmpty(v.InstanceID)),
		"triggered_by": relstore.String(uuidOrEmpty(v.TriggeredBy)),
		"created":      relstore.Time(v.Created),
		"production":   relstore.Bool(v.Production),
	}
}

func rowToVersion(r relstore.Row) (*VersionRecord, error) {
	id, err := uuid.Parse(r["id"].Str)
	if err != nil {
		return nil, fmt.Errorf("core: version row has bad id: %w", err)
	}
	modelID, err := uuid.Parse(r["model_id"].Str)
	if err != nil {
		return nil, fmt.Errorf("core: version row has bad model_id: %w", err)
	}
	return &VersionRecord{
		ID:          id,
		ModelID:     modelID,
		Major:       int(r["major"].Int),
		Minor:       int(r["minor"].Int),
		Cause:       VersionCause(r["cause"].Str),
		InstanceID:  parseOrNil(r["instance_id"].Str),
		TriggeredBy: parseOrNil(r["triggered_by"].Str),
		Created:     r["created"].Time,
		Production:  r["production"].Bool,
	}, nil
}

func depToRow(d *Dependency) relstore.Row {
	return relstore.Row{
		"id":         relstore.String(depKey(d.From, d.To)),
		"from_model": relstore.String(d.From.String()),
		"to_model":   relstore.String(d.To.String()),
		"created":    relstore.Time(d.Created),
	}
}

func depKey(from, to uuid.UUID) string { return from.String() + "|" + to.String() }

func uuidOrEmpty(u uuid.UUID) string {
	if u.IsNil() {
		return ""
	}
	return u.String()
}

func parseOrNil(s string) uuid.UUID {
	if s == "" {
		return uuid.Nil
	}
	u, err := uuid.Parse(s)
	if err != nil {
		return uuid.Nil
	}
	return u
}
