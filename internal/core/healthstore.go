package core

import (
	"context"
	"fmt"
	"time"

	"gallery/internal/relstore"
	"gallery/internal/uuid"
)

// This file persists windowed serving-health snapshots (paper §3.6 made
// continuous): the gateway flushes per-model distribution sketches in
// fixed time windows, galleryd stores them through the DAL, and the
// health monitor re-reads them to compare live traffic against a
// reference distribution. Sketches are stored as their JSON wire form —
// they are opaque to the metadata store and only the monitor interprets
// them.

// HealthWindow is one flushed observation window for one model.
type HealthWindow struct {
	ID          uuid.UUID
	ModelID     uuid.UUID
	InstanceID  uuid.UUID // serving instance during the window; may be nil
	Gateway     string    // reporting gateway, informational
	Start, End  time.Time
	Requests    int64
	StaleServes int64
	// ValuesSketch and LatencySketch hold sketch.Snapshot JSON.
	ValuesSketch  string
	LatencySketch string
}

// InsertHealthWindow stores one observation window, assigning its ID.
func (g *Registry) InsertHealthWindow(ctx context.Context, w *HealthWindow) error {
	if w.ModelID.IsNil() {
		return fmt.Errorf("%w: health window needs a model id", ErrBadSpec)
	}
	if w.End.Before(w.Start) {
		return fmt.Errorf("%w: health window ends before it starts", ErrBadSpec)
	}
	w.ID = g.gen.New()
	return g.dal.Meta().InsertCtx(ctx, TableHealthWindows, healthWindowToRow(w))
}

// HealthWindows returns a model's stored observation windows, oldest
// first. Limit > 0 keeps only the most recent windows.
func (g *Registry) HealthWindows(modelID uuid.UUID, limit int) ([]*HealthWindow, error) {
	rows, err := g.dal.Meta().Select(relstore.Query{
		Table: TableHealthWindows,
		Where: []relstore.Constraint{
			{Field: "model_id", Op: relstore.OpEq, Value: relstore.String(modelID.String())},
		},
		OrderBy: "window_end",
	})
	if err != nil {
		return nil, err
	}
	if limit > 0 && len(rows) > limit {
		rows = rows[len(rows)-limit:]
	}
	out := make([]*HealthWindow, 0, len(rows))
	for _, r := range rows {
		w, err := rowToHealthWindow(r)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// HealthWindowModels lists the distinct model IDs that have stored
// health windows — the monitor's recovery scan after a restart.
func (g *Registry) HealthWindowModels() ([]uuid.UUID, error) {
	rows, err := g.dal.Meta().Select(relstore.Query{Table: TableHealthWindows})
	if err != nil {
		return nil, err
	}
	seen := make(map[uuid.UUID]bool)
	var out []uuid.UUID
	for _, r := range rows {
		id, err := uuid.Parse(r["model_id"].Str)
		if err != nil {
			continue // skip unparseable legacy rows rather than fail recovery
		}
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out, nil
}

// PruneHealthWindows deletes a model's oldest windows beyond keep,
// bounding storage per model. It returns how many rows were removed.
func (g *Registry) PruneHealthWindows(ctx context.Context, modelID uuid.UUID, keep int) (int, error) {
	if keep < 0 {
		keep = 0
	}
	rows, err := g.dal.Meta().Select(relstore.Query{
		Table: TableHealthWindows,
		Where: []relstore.Constraint{
			{Field: "model_id", Op: relstore.OpEq, Value: relstore.String(modelID.String())},
		},
		OrderBy: "window_end",
	})
	if err != nil {
		return 0, err
	}
	excess := len(rows) - keep
	if excess <= 0 {
		return 0, nil
	}
	muts := make([]relstore.Mutation, 0, excess)
	for _, r := range rows[:excess] {
		muts = append(muts, relstore.Mutation{
			Kind: relstore.MutDelete, Table: TableHealthWindows, PK: r["id"].Str,
		})
	}
	if err := g.dal.Meta().BatchCtx(ctx, muts); err != nil {
		return 0, err
	}
	return excess, nil
}

func healthWindowToRow(w *HealthWindow) relstore.Row {
	return relstore.Row{
		"id":             relstore.String(w.ID.String()),
		"model_id":       relstore.String(w.ModelID.String()),
		"instance_id":    relstore.String(uuidOrEmpty(w.InstanceID)),
		"gateway":        relstore.String(w.Gateway),
		"window_start":   relstore.Time(w.Start),
		"window_end":     relstore.Time(w.End),
		"requests":       relstore.Int(w.Requests),
		"stale_serves":   relstore.Int(w.StaleServes),
		"values_sketch":  relstore.String(w.ValuesSketch),
		"latency_sketch": relstore.String(w.LatencySketch),
	}
}

func rowToHealthWindow(r relstore.Row) (*HealthWindow, error) {
	id, err := uuid.Parse(r["id"].Str)
	if err != nil {
		return nil, fmt.Errorf("core: health window row has bad id: %w", err)
	}
	modelID, err := uuid.Parse(r["model_id"].Str)
	if err != nil {
		return nil, fmt.Errorf("core: health window row has bad model_id: %w", err)
	}
	return &HealthWindow{
		ID:            id,
		ModelID:       modelID,
		InstanceID:    parseOrNil(r["instance_id"].Str),
		Gateway:       r["gateway"].Str,
		Start:         r["window_start"].Time,
		End:           r["window_end"].Time,
		Requests:      r["requests"].Int,
		StaleServes:   r["stale_serves"].Int,
		ValuesSketch:  r["values_sketch"].Str,
		LatencySketch: r["latency_sketch"].Str,
	}, nil
}
