package rules

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"gallery/internal/blobstore"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/relstore"
	"gallery/internal/uuid"
)

var t0 = time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)

type harness struct {
	g    *core.Registry
	repo *Repo
	eng  *Engine
	clk  *clock.Mock
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	clk := clock.NewMock(t0)
	g, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk,
		UUIDs: uuid.NewSeeded(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	repo := NewRepo(clk)
	return &harness{g: g, repo: repo, eng: NewEngine(g, repo, clk), clk: clk}
}

func (h *harness) model(t *testing.T, name, domain string) *core.Model {
	t.Helper()
	m, err := h.g.RegisterModel(core.ModelSpec{
		BaseVersionID: "bv-" + name,
		Project:       "forecasting",
		Name:          name,
		Domain:        domain,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func (h *harness) upload(t *testing.T, m *core.Model, city string) *core.Instance {
	t.Helper()
	h.clk.Advance(time.Minute)
	in, err := h.g.UploadInstance(core.InstanceSpec{ModelID: m.ID, City: city, Name: m.Name}, []byte("blob"))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func (h *harness) commit(t *testing.T, rules ...*Rule) {
	t.Helper()
	if _, err := h.repo.Commit("tester", "add rules", rules, nil); err != nil {
		t.Fatal(err)
	}
}

// listing1 is the model-selection rule of paper Listing 1, with the
// freshest-first comparator.
func listing1() *Rule {
	return &Rule{
		UUID:           "316b3ab4-2509-4ea7-8025-00ca879dac61",
		Team:           "forecasting",
		Name:           "select-fresh-lr",
		Kind:           KindSelection,
		Given:          `model_name == "linear_regression" && model_domain == "UberX"`,
		When:           `metrics["mae"] < 5`,
		Environment:    "production",
		ModelSelection: "a.created_time > b.created_time",
	}
}

// listing2 is the action rule of paper Listing 2: deploy when bias is in
// [-0.1, 0.1].
func listing2() *Rule {
	return &Rule{
		UUID:        "4365754a-92bb-4421-a1be-00d7d87f77a0",
		Team:        "forecasting",
		Name:        "deploy-on-bias",
		Kind:        KindAction,
		Given:       `model_domain == "UberX" && model_name == "Random Forest"`,
		When:        `metrics.bias <= 0.1 && metrics.bias >= -0.1`,
		Environment: "production",
		Actions:     []ActionRef{{Action: "forecasting_deployment"}},
	}
}

// --- rule validation ---

func TestValidateAcceptsPaperListings(t *testing.T) {
	for _, r := range []*Rule{listing1(), listing2()} {
		if err := r.Validate(); err != nil {
			t.Errorf("Validate(%s): %v", r.Name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []*Rule{
		{},                     // no uuid
		{UUID: "u"},            // no team
		{UUID: "u", Team: "t"}, // no kind
		{UUID: "u", Team: "t", Kind: "bogus"},
		{UUID: "u", Team: "t", Kind: KindSelection},                                      // no comparator
		{UUID: "u", Team: "t", Kind: KindSelection, ModelSelection: "a.created >"},       // bad expr
		{UUID: "u", Team: "t", Kind: KindSelection, ModelSelection: "true", When: "1 +"}, // bad when
		{UUID: "u", Team: "t", Kind: KindAction},                                         // no actions
		{UUID: "u", Team: "t", Kind: KindAction, Actions: []ActionRef{{}}},               // unnamed action
		{UUID: "u", Team: "t", Kind: KindAction, Actions: []ActionRef{{Action: "x"}}, ModelSelection: "true"},
		{UUID: "u", Team: "t", Kind: KindSelection, ModelSelection: "true", Actions: []ActionRef{{Action: "x"}}},
	}
	for i, r := range cases {
		if err := r.Validate(); !errors.Is(err, ErrInvalidRule) {
			t.Errorf("case %d: Validate = %v, want ErrInvalidRule", i, err)
		}
	}
}

func TestParseRuleJSON(t *testing.T) {
	data := []byte(`{
		"team": "forecasting",
		"uuid": "316b3ab4-2509-4ea7-8025-00ca879dac61",
		"name": "select",
		"kind": "selection",
		"given": "model_domain == 'UberX'",
		"when": "metrics['r2'] <= 0.9",
		"environment": "production",
		"model_selection": "a.created_time > b.created_time"
	}`)
	r, err := ParseRule(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != KindSelection || r.Team != "forecasting" {
		t.Fatalf("parsed = %+v", r)
	}
	if _, err := ParseRule([]byte(`{"uuid":`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestWatchedIdents(t *testing.T) {
	r := listing2()
	ids := r.WatchedIdents()
	want := map[string]bool{"model_domain": true, "model_name": true, "metrics": true}
	if len(ids) != len(want) {
		t.Fatalf("WatchedIdents = %v", ids)
	}
	for _, id := range ids {
		if !want[id] {
			t.Fatalf("unexpected watched ident %q", id)
		}
	}
}

// --- repo ---

func TestRepoCommitAndActive(t *testing.T) {
	h := newHarness(t)
	c1, err := h.repo.Commit("alice", "add selection", []*Rule{listing1()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Hash == "" {
		t.Fatal("commit has no hash")
	}
	c2, err := h.repo.Commit("bob", "add action", []*Rule{listing2()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Hash == c1.Hash {
		t.Fatal("distinct commits share a hash")
	}
	if got := h.repo.Active(); len(got) != 2 {
		t.Fatalf("active = %d rules", len(got))
	}
	if got := h.repo.ActiveByTeam("forecasting"); len(got) != 2 {
		t.Fatalf("by team = %d rules", len(got))
	}
	if got := h.repo.ActiveByTeam("other"); len(got) != 0 {
		t.Fatalf("other team = %d rules", len(got))
	}
}

func TestRepoValidationGate(t *testing.T) {
	h := newHarness(t)
	bad := listing1()
	bad.ModelSelection = "a.created >" // syntax error
	if _, err := h.repo.Commit("alice", "bad", []*Rule{bad}, nil); !errors.Is(err, ErrInvalidRule) {
		t.Fatalf("err = %v", err)
	}
	if len(h.repo.Active()) != 0 {
		t.Fatal("invalid rule landed")
	}
	if len(h.repo.History()) != 0 {
		t.Fatal("failed commit recorded")
	}
}

func TestRepoUpdateAndDelete(t *testing.T) {
	h := newHarness(t)
	r := listing1()
	h.commit(t, r)
	upd := listing1()
	upd.When = `metrics["mae"] < 3`
	h.commit(t, upd)
	got, ok := h.repo.Get(r.UUID)
	if !ok || got.When != `metrics["mae"] < 3` {
		t.Fatalf("after update: %+v", got)
	}
	if _, err := h.repo.Commit("alice", "rm", nil, []string{r.UUID}); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.repo.Get(r.UUID); ok {
		t.Fatal("deleted rule still active")
	}
	if _, err := h.repo.Commit("alice", "rm again", nil, []string{r.UUID}); err == nil {
		t.Fatal("deleting unknown rule succeeded")
	}
}

func TestRepoRollback(t *testing.T) {
	h := newHarness(t)
	h.commit(t, listing1())
	c1 := h.repo.History()[0]
	h.commit(t, listing2())
	// Roll back to the one-rule state.
	if _, err := h.repo.Rollback(c1.Hash, "alice"); err != nil {
		t.Fatal(err)
	}
	active := h.repo.Active()
	if len(active) != 1 || active[0].UUID != listing1().UUID {
		t.Fatalf("after rollback: %v", active)
	}
	// History is append-only: 3 commits now.
	if len(h.repo.History()) != 3 {
		t.Fatalf("history = %d commits", len(h.repo.History()))
	}
	if _, err := h.repo.Rollback("deadbeef", "x"); !errors.Is(err, ErrNoCommit) {
		t.Fatalf("rollback to unknown hash = %v", err)
	}
}

// --- selection rules (Fig. 8, Client 1) ---

func TestSelectModelFreshestQualifying(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "linear_regression", "UberX")
	old := h.upload(t, m, "sf")
	mid := h.upload(t, m, "sf")
	fresh := h.upload(t, m, "sf")
	// mae: old good, mid good, fresh bad -> mid should win (freshest good).
	for in, mae := range map[*core.Instance]float64{old: 2.0, mid: 3.0, fresh: 9.0} {
		if _, err := h.g.InsertMetric(in.ID, "mae", core.ScopeValidation, mae); err != nil {
			t.Fatal(err)
		}
	}
	h.commit(t, listing1())
	got, err := h.eng.SelectModel(listing1().UUID, core.InstanceFilter{City: "sf"})
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != mid.ID {
		t.Fatalf("selected %s, want mid %s", got.ID, mid.ID)
	}
}

func TestSelectModelNoCandidate(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "linear_regression", "UberX")
	in := h.upload(t, m, "sf")
	if _, err := h.g.InsertMetric(in.ID, "mae", core.ScopeValidation, 99); err != nil {
		t.Fatal(err)
	}
	h.commit(t, listing1())
	if _, err := h.eng.SelectModel(listing1().UUID, core.InstanceFilter{}); err == nil {
		t.Fatal("selection succeeded with no qualifying candidate")
	}
}

func TestSelectModelSkipsWrongDomain(t *testing.T) {
	h := newHarness(t)
	mx := h.model(t, "linear_regression", "UberX")
	mp := h.model(t, "linear_regression", "UberPool")
	inX := h.upload(t, mx, "sf")
	inP := h.upload(t, mp, "sf") // fresher but wrong domain
	for _, in := range []*core.Instance{inX, inP} {
		if _, err := h.g.InsertMetric(in.ID, "mae", core.ScopeValidation, 1); err != nil {
			t.Fatal(err)
		}
	}
	h.commit(t, listing1())
	got, err := h.eng.SelectModel(listing1().UUID, core.InstanceFilter{})
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != inX.ID {
		t.Fatal("selection crossed the Given domain filter")
	}
}

func TestSelectModelUnknownRule(t *testing.T) {
	h := newHarness(t)
	if _, err := h.eng.SelectModel("nope", core.InstanceFilter{}); err == nil {
		t.Fatal("unknown rule selected")
	}
}

func TestSelectModelRejectsActionRule(t *testing.T) {
	h := newHarness(t)
	h.commit(t, listing2())
	if _, err := h.eng.SelectModel(listing2().UUID, core.InstanceFilter{}); err == nil {
		t.Fatal("action rule used for selection")
	}
}

// --- action rules (Fig. 8, Client 2) ---

// TestRuleEngineFigure8 reproduces the paper's Figure 8 workflow: an
// action rule registered in the repo fires when a metric update satisfies
// its condition, executing the deployment callback. (Experiment E6.)
func TestRuleEngineFigure8(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "Random Forest", "UberX")
	in := h.upload(t, m, "sf")

	var deployed []uuid.UUID
	h.eng.RegisterAction("forecasting_deployment", func(ctx *ActionContext) error {
		deployed = append(deployed, ctx.Instance.ID)
		return nil
	})
	h.commit(t, listing2())

	// Out-of-threshold bias: no deployment.
	if _, err := h.g.InsertMetric(in.ID, "bias", core.ScopeValidation, 0.5); err != nil {
		t.Fatal(err)
	}
	h.eng.MetricUpdated(in.ID)
	if len(deployed) != 0 {
		t.Fatal("deployed despite bias out of range")
	}

	// In-threshold bias reported later: deployment fires.
	h.clk.Advance(time.Minute)
	if _, err := h.g.InsertMetric(in.ID, "bias", core.ScopeValidation, 0.05); err != nil {
		t.Fatal(err)
	}
	h.eng.MetricUpdated(in.ID)
	if len(deployed) != 1 || deployed[0] != in.ID {
		t.Fatalf("deployed = %v", deployed)
	}
	st := h.eng.Stats()
	if st.EventsTriggered != 2 || st.ActionsRun != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestActionRuleAsyncWorkers(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "Random Forest", "UberX")
	count := 0
	done := make(chan struct{}, 64)
	h.eng.RegisterAction("forecasting_deployment", func(ctx *ActionContext) error {
		done <- struct{}{}
		return nil
	})
	h.commit(t, listing2())
	h.eng.Start(4)
	defer h.eng.Stop()

	const n = 16
	for i := 0; i < n; i++ {
		in := h.upload(t, m, fmt.Sprintf("city-%d", i))
		if _, err := h.g.InsertMetric(in.ID, "bias", core.ScopeValidation, 0.01); err != nil {
			t.Fatal(err)
		}
		h.eng.MetricUpdated(in.ID)
	}
	h.eng.Flush()
	close(done)
	for range done {
		count++
	}
	if count != n {
		t.Fatalf("deployments = %d, want %d", count, n)
	}
}

func TestActionErrorsAlert(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "Random Forest", "UberX")
	in := h.upload(t, m, "sf")
	h.eng.RegisterAction("forecasting_deployment", func(ctx *ActionContext) error {
		return errors.New("config push failed")
	})
	h.commit(t, listing2())
	if _, err := h.g.InsertMetric(in.ID, "bias", core.ScopeValidation, 0.0); err != nil {
		t.Fatal(err)
	}
	h.eng.MetricUpdated(in.ID)
	alerts := h.eng.Alerts()
	if len(alerts) != 1 || alerts[0].Action != "forecasting_deployment" {
		t.Fatalf("alerts = %v", alerts)
	}
	if h.eng.Stats().ActionErrors != 1 {
		t.Fatalf("stats = %+v", h.eng.Stats())
	}
}

func TestUnknownActionAlerts(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "Random Forest", "UberX")
	in := h.upload(t, m, "sf")
	h.commit(t, listing2()) // forecasting_deployment never registered
	if _, err := h.g.InsertMetric(in.ID, "bias", core.ScopeValidation, 0.0); err != nil {
		t.Fatal(err)
	}
	h.eng.MetricUpdated(in.ID)
	if len(h.eng.Alerts()) != 1 {
		t.Fatalf("alerts = %v", h.eng.Alerts())
	}
}

func TestBuiltinAlertAction(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "Random Forest", "UberX")
	in := h.upload(t, m, "sf")
	r := listing2()
	r.Actions = []ActionRef{{Action: "alert", Params: map[string]any{"message": "bias back in range"}}}
	h.commit(t, r)
	if _, err := h.g.InsertMetric(in.ID, "bias", core.ScopeValidation, 0.0); err != nil {
		t.Fatal(err)
	}
	h.eng.MetricUpdated(in.ID)
	alerts := h.eng.Alerts()
	if len(alerts) != 1 || alerts[0].Message != "bias back in range" {
		t.Fatalf("alerts = %v", alerts)
	}
}

func TestEnvironmentScoping(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "Random Forest", "UberX")
	in := h.upload(t, m, "sf")
	fired := 0
	h.eng.RegisterAction("forecasting_deployment", func(ctx *ActionContext) error {
		fired++
		return nil
	})
	r := listing2()
	r.Environment = "staging"
	h.commit(t, r)
	if _, err := h.g.InsertMetric(in.ID, "bias", core.ScopeValidation, 0.0); err != nil {
		t.Fatal(err)
	}
	h.eng.MetricUpdated(in.ID) // engine is in production scope
	if fired != 0 {
		t.Fatal("staging rule fired in production engine")
	}
	h.eng.Environment = "staging"
	h.eng.MetricUpdated(in.ID)
	if fired != 1 {
		t.Fatal("staging rule did not fire in staging engine")
	}
}

func TestMetadataUpdateTrigger(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "Random Forest", "UberX")
	in := h.upload(t, m, "sf")
	fired := 0
	h.eng.RegisterAction("noop", func(ctx *ActionContext) error { fired++; return nil })
	r := &Rule{
		UUID: "r-city", Team: "t", Kind: KindAction,
		Given:   `city == "sf"`,
		Actions: []ActionRef{{Action: "noop"}},
	}
	h.commit(t, r)
	h.eng.MetadataUpdated(in.ID, "city")
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	// Updating a field the rule does not watch: no evaluation.
	h.eng.MetadataUpdated(in.ID, "framework")
	if fired != 1 {
		t.Fatalf("fired = %d after unwatched field", fired)
	}
}

// Rules that reference missing metrics are simply "condition not met",
// never a crash (strict evaluator surfaced as non-match).
func TestMissingMetricIsNotMet(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "Random Forest", "UberX")
	in := h.upload(t, m, "sf")
	fired := 0
	h.eng.RegisterAction("forecasting_deployment", func(ctx *ActionContext) error { fired++; return nil })
	h.commit(t, listing2())
	h.eng.MetricUpdated(in.ID) // no bias metric reported at all
	if fired != 0 {
		t.Fatal("rule fired without its metric")
	}
}
