package profile

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"sort"
)

// A minimal reader for the pprof protobuf format (profile.proto), scoped
// to exactly what summarization needs: the string table, the
// function/location tables, the sample-type list, and the samples. The
// runtime's own profiles are the only input, so unknown fields are
// skipped rather than rejected — the parser must keep working as the
// toolchain adds fields.
//
// Field numbers, from profile.proto:
//
//	Profile:   1 sample_type, 2 sample, 4 location, 5 function,
//	           6 string_table, 10 duration_nanos
//	ValueType: 1 type, 2 unit         (string-table indexes)
//	Sample:    1 location_id, 2 value (repeated, possibly packed)
//	Location:  1 id, 4 line
//	Line:      1 function_id
//	Function:  1 id, 2 name           (name is a string-table index)

// errMalformed reports pprof bytes the walker could not decode.
var errMalformed = errors.New("profile: malformed pprof data")

// maxProfileInput bounds decompressed pprof input so a corrupt gzip
// stream cannot balloon memory.
const maxProfileInput = 64 << 20

// protoReader walks a protobuf buffer.
type protoReader struct {
	b   []byte
	pos int
}

func (r *protoReader) done() bool { return r.pos >= len(r.b) }

func (r *protoReader) varint() (uint64, error) {
	var v uint64
	var shift uint
	for shift < 64 {
		if r.pos >= len(r.b) {
			return 0, errMalformed
		}
		b := r.b[r.pos]
		r.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
	return 0, errMalformed
}

// tag reads one field tag, returning (fieldNumber, wireType).
func (r *protoReader) tag() (int, int, error) {
	t, err := r.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(t >> 3), int(t & 7), nil
}

// bytesField reads a length-delimited payload (wire type 2).
func (r *protoReader) bytesField() ([]byte, error) {
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.pos) {
		return nil, errMalformed
	}
	out := r.b[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return out, nil
}

// skip discards one field's payload by wire type.
func (r *protoReader) skip(wire int) error {
	switch wire {
	case 0:
		_, err := r.varint()
		return err
	case 1:
		if len(r.b)-r.pos < 8 {
			return errMalformed
		}
		r.pos += 8
	case 2:
		_, err := r.bytesField()
		return err
	case 5:
		if len(r.b)-r.pos < 4 {
			return errMalformed
		}
		r.pos += 4
	default:
		return errMalformed
	}
	return nil
}

// uint64s appends one repeated-uint64 field occurrence to dst, handling
// both packed (wire 2) and unpacked (wire 0) encodings — the runtime
// packs when a sample has more than two frames, so both appear in
// practice.
func (r *protoReader) uint64s(wire int, dst []uint64) ([]uint64, error) {
	if wire == 0 {
		v, err := r.varint()
		if err != nil {
			return nil, err
		}
		return append(dst, v), nil
	}
	if wire != 2 {
		return nil, errMalformed
	}
	raw, err := r.bytesField()
	if err != nil {
		return nil, err
	}
	sub := protoReader{b: raw}
	for !sub.done() {
		v, err := sub.varint()
		if err != nil {
			return nil, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// rawSample is one decoded Sample message.
type rawSample struct {
	locs   []uint64
	values []int64
}

// rawProfile is the decoded subset of one pprof profile.
type rawProfile struct {
	strings     []string
	sampleTypes [][2]int64 // {type, unit} string-table indexes
	samples     []rawSample
	locFuncs    map[uint64][]uint64 // location id -> function ids, leaf-inline first
	funcNames   map[uint64]int64    // function id -> name string-table index
	durationNS  int64
}

// funcName resolves a function id to its name, or "" when unknown.
func (p *rawProfile) funcName(id uint64) string {
	idx, ok := p.funcNames[id]
	if !ok || idx < 0 || idx >= int64(len(p.strings)) {
		return ""
	}
	return p.strings[idx]
}

// parsePprof decodes raw (gzip-compressed or plain) pprof protobuf bytes.
func parsePprof(data []byte) (*rawProfile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profile: gunzip: %w", err)
		}
		defer zr.Close()
		plain, err := io.ReadAll(io.LimitReader(zr, maxProfileInput))
		if err != nil {
			return nil, fmt.Errorf("profile: gunzip: %w", err)
		}
		data = plain
	}
	p := &rawProfile{
		locFuncs:  make(map[uint64][]uint64),
		funcNames: make(map[uint64]int64),
	}
	r := protoReader{b: data}
	for !r.done() {
		num, wire, err := r.tag()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type
			raw, err := r.bytesField()
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(raw)
			if err != nil {
				return nil, err
			}
			p.sampleTypes = append(p.sampleTypes, vt)
		case 2: // sample
			raw, err := r.bytesField()
			if err != nil {
				return nil, err
			}
			s, err := parseSample(raw)
			if err != nil {
				return nil, err
			}
			p.samples = append(p.samples, s)
		case 4: // location
			raw, err := r.bytesField()
			if err != nil {
				return nil, err
			}
			if err := parseLocation(raw, p.locFuncs); err != nil {
				return nil, err
			}
		case 5: // function
			raw, err := r.bytesField()
			if err != nil {
				return nil, err
			}
			if err := parseFunction(raw, p.funcNames); err != nil {
				return nil, err
			}
		case 6: // string_table
			raw, err := r.bytesField()
			if err != nil {
				return nil, err
			}
			p.strings = append(p.strings, string(raw))
		case 10: // duration_nanos
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			p.durationNS = int64(v)
		default:
			if err := r.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

func parseValueType(raw []byte) ([2]int64, error) {
	var vt [2]int64
	r := protoReader{b: raw}
	for !r.done() {
		num, wire, err := r.tag()
		if err != nil {
			return vt, err
		}
		switch num {
		case 1, 2:
			v, err := r.varint()
			if err != nil {
				return vt, err
			}
			vt[num-1] = int64(v)
		default:
			if err := r.skip(wire); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

func parseSample(raw []byte) (rawSample, error) {
	var s rawSample
	r := protoReader{b: raw}
	for !r.done() {
		num, wire, err := r.tag()
		if err != nil {
			return s, err
		}
		switch num {
		case 1:
			s.locs, err = r.uint64s(wire, s.locs)
		case 2:
			var vals []uint64
			vals, err = r.uint64s(wire, nil)
			for _, v := range vals {
				s.values = append(s.values, int64(v))
			}
		default:
			err = r.skip(wire)
		}
		if err != nil {
			return s, err
		}
	}
	return s, nil
}

func parseLocation(raw []byte, locFuncs map[uint64][]uint64) error {
	var id uint64
	var fns []uint64
	r := protoReader{b: raw}
	for !r.done() {
		num, wire, err := r.tag()
		if err != nil {
			return err
		}
		switch num {
		case 1:
			id, err = r.varint()
		case 4: // line; lines[0] is the innermost inlined frame
			var line []byte
			line, err = r.bytesField()
			if err == nil {
				var fid uint64
				fid, err = parseLineFunc(line)
				if err == nil && fid != 0 {
					fns = append(fns, fid)
				}
			}
		default:
			err = r.skip(wire)
		}
		if err != nil {
			return err
		}
	}
	if id != 0 {
		locFuncs[id] = fns
	}
	return nil
}

func parseLineFunc(raw []byte) (uint64, error) {
	var fid uint64
	r := protoReader{b: raw}
	for !r.done() {
		num, wire, err := r.tag()
		if err != nil {
			return 0, err
		}
		if num == 1 {
			fid, err = r.varint()
		} else {
			err = r.skip(wire)
		}
		if err != nil {
			return 0, err
		}
	}
	return fid, nil
}

func parseFunction(raw []byte, funcNames map[uint64]int64) error {
	var id uint64
	var name int64
	r := protoReader{b: raw}
	for !r.done() {
		num, wire, err := r.tag()
		if err != nil {
			return err
		}
		switch num {
		case 1:
			id, err = r.varint()
		case 2:
			var v uint64
			v, err = r.varint()
			name = int64(v)
		default:
			err = r.skip(wire)
		}
		if err != nil {
			return err
		}
	}
	if id != 0 {
		funcNames[id] = name
	}
	return nil
}

// preferredType names the sample-type each kind summarizes: cumulative
// time for CPU and contention profiles, live bytes for heap, counts for
// goroutines. A profile missing the preferred type falls back to its
// last value column (the runtime's convention for "the" value).
var preferredType = map[string]string{
	KindCPU:       "cpu",
	KindHeap:      "inuse_space",
	KindGoroutine: "goroutine",
	KindMutex:     "delay",
	KindBlock:     "delay",
}

// valueIndex picks which of the profile's value columns a kind folds.
func (p *rawProfile) valueIndex(kind string) (idx int, unit string) {
	idx = len(p.sampleTypes) - 1
	want := preferredType[kind]
	for i, vt := range p.sampleTypes {
		if p.str(vt[0]) == want {
			idx = i
			break
		}
	}
	if idx >= 0 && idx < len(p.sampleTypes) {
		unit = p.str(p.sampleTypes[idx][1])
	}
	return idx, unit
}

func (p *rawProfile) str(i int64) string {
	if i < 0 || i >= int64(len(p.strings)) {
		return ""
	}
	return p.strings[i]
}

// Summarize folds raw pprof bytes (as written by runtime/pprof, gzip or
// plain) into a top-N per-function summary. Self is the value attributed
// to samples whose leaf frame is the function; Cum counts every sample
// the function appears anywhere in (deduplicated per sample, so
// recursion doesn't double-count). The caller stamps Start/End — the
// profile data itself only knows its duration.
func Summarize(data []byte, kind string, topN int) (Summary, error) {
	p, err := parsePprof(data)
	if err != nil {
		return Summary{}, err
	}
	if len(p.sampleTypes) == 0 {
		return Summary{}, fmt.Errorf("profile: %s profile has no sample types", kind)
	}
	vi, unit := p.valueIndex(kind)

	type agg struct{ self, cum int64 }
	byFunc := make(map[string]*agg)
	get := func(name string) *agg {
		a, ok := byFunc[name]
		if !ok {
			a = &agg{}
			byFunc[name] = a
		}
		return a
	}
	var total, samples int64
	seen := make(map[string]bool)
	for _, s := range p.samples {
		if vi >= len(s.values) {
			continue
		}
		v := s.values[vi]
		if v == 0 {
			continue
		}
		total += v
		samples++
		clear(seen)
		attributedSelf := false
		for i, locID := range s.locs {
			for j, fid := range p.locFuncs[locID] {
				name := p.funcName(fid)
				if name == "" {
					continue
				}
				a := get(name)
				if i == 0 && j == 0 {
					a.self += v
					attributedSelf = true
				}
				if !seen[name] {
					seen[name] = true
					a.cum += v
				}
			}
		}
		if !attributedSelf {
			// Unsymbolized leaf: keep the total and self sums consistent.
			a := get("<unknown>")
			a.self += v
			if !seen["<unknown>"] {
				a.cum += v
			}
		}
	}

	top := make([]FuncStat, 0, len(byFunc))
	for name, a := range byFunc {
		top = append(top, FuncStat{Name: name, Self: a.self, Cum: a.cum})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].Self != top[j].Self {
			return top[i].Self > top[j].Self
		}
		if top[i].Cum != top[j].Cum {
			return top[i].Cum > top[j].Cum
		}
		return top[i].Name < top[j].Name
	})
	if topN > 0 && len(top) > topN {
		top = top[:topN]
	}
	if total > 0 {
		for i := range top {
			top[i].SelfShare = float64(top[i].Self) / float64(total)
			top[i].CumShare = float64(top[i].Cum) / float64(total)
		}
	}
	return Summary{
		Kind:       kind,
		Unit:       unit,
		Total:      total,
		Samples:    samples,
		DurationNS: p.durationNS,
		Top:        top,
	}, nil
}
