package trace

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// IngestRequest is the wire form of a cross-process span shipment:
// galleryserve POSTs this to galleryd's /v1/debug/traces so the spans of
// one request, opened in two processes, land in a single buffer.
type IngestRequest struct {
	Spans []SpanData `json:"spans"`
}

// HTTPExporter ships kept traces to a peer's ingest endpoint on a
// background goroutine. Export never blocks the request path: a full
// queue drops the batch (counted). Flush waits for everything queued so
// far to be delivered — tests and shutdown use it; the serving path never
// does.
type HTTPExporter struct {
	url      string
	hc       *http.Client
	ch       chan []SpanData
	quit     chan struct{}
	once     sync.Once
	worker   sync.WaitGroup
	inflight sync.WaitGroup
	dropped  atomic.Uint64
	failed   atomic.Uint64
}

// NewHTTPExporter builds an exporter posting to url (the peer's
// POST /v1/debug/traces). A nil client gets a 5-second-timeout default.
func NewHTTPExporter(url string, hc *http.Client) *HTTPExporter {
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Second}
	}
	e := &HTTPExporter{
		url:  url,
		hc:   hc,
		ch:   make(chan []SpanData, 64),
		quit: make(chan struct{}),
	}
	e.worker.Add(1)
	go e.run()
	return e
}

// Export queues one trace's spans for shipment. Non-blocking; drops when
// the queue is full or the exporter is closed.
func (e *HTTPExporter) Export(spans []SpanData) {
	select {
	case <-e.quit:
		return
	default:
	}
	e.inflight.Add(1)
	select {
	case e.ch <- spans:
	default:
		e.inflight.Done()
		e.dropped.Add(1)
	}
}

// Flush blocks until every batch queued before the call has been posted
// (successfully or not).
func (e *HTTPExporter) Flush() { e.inflight.Wait() }

// Dropped reports batches discarded because the queue was full.
func (e *HTTPExporter) Dropped() uint64 { return e.dropped.Load() }

// Failed reports batches whose POST errored (network or non-2xx).
func (e *HTTPExporter) Failed() uint64 { return e.failed.Load() }

// Close drains the queue and stops the worker. Safe to call twice.
func (e *HTTPExporter) Close() {
	e.once.Do(func() { close(e.quit) })
	e.worker.Wait()
}

func (e *HTTPExporter) run() {
	defer e.worker.Done()
	for {
		select {
		case batch := <-e.ch:
			e.post(batch)
			e.inflight.Done()
		case <-e.quit:
			for {
				select {
				case batch := <-e.ch:
					e.post(batch)
					e.inflight.Done()
				default:
					return
				}
			}
		}
	}
}

func (e *HTTPExporter) post(spans []SpanData) {
	body, err := json.Marshal(IngestRequest{Spans: spans})
	if err != nil {
		e.failed.Add(1)
		return
	}
	resp, err := e.hc.Post(e.url, "application/json", bytes.NewReader(body))
	if err != nil {
		e.failed.Add(1)
		return
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		e.failed.Add(1)
	}
}
