package incident

import (
	"context"
	"errors"
	"fmt"

	"gallery/internal/health"
	"gallery/internal/obs/trace"
	"gallery/internal/rules"
	"gallery/internal/slo"
	"gallery/internal/uuid"
)

// SLOBurn implements slo.BurnSink: every burn transition — namespace- or
// model-scoped — asks for a capture. The per-scope debounce turns a burn
// storm into at most one bundle per interval, so suppression here is the
// expected steady state, not an error.
func (r *Recorder) SLOBurn(ctx context.Context, o slo.Objective, severity string, burnFast, burnSlow, budget float64) {
	_, err := r.Trigger(ctx, Trigger{
		Kind:      "slo.burn",
		Namespace: o.Namespace,
		ModelID:   o.ModelID,
		Reason: fmt.Sprintf("slo %s %s burn severity %s fast %.2f slow %.2f budget %.3f",
			o.ID, o.Kind, severity, burnFast, burnSlow, budget),
	})
	if err != nil && !errors.Is(err, ErrSuppressed) && r.cfg.Logs != nil {
		// Counted in incident_errors_total; nothing else to do from a sink.
		_ = err
	}
}

// HealthTransition implements health.TransitionSink: a model entering
// the degraded state captures its flight data. Other transitions
// (warning, recovery) are visible in the audit trail but don't merit a
// bundle.
func (r *Recorder) HealthTransition(ctx context.Context, modelID uuid.UUID, from, to health.Status, reasons []string) {
	if to != health.StatusDegraded {
		return
	}
	_, err := r.Trigger(ctx, Trigger{
		Kind:    "health.degraded",
		ModelID: modelID.String(),
		Reason:  fmt.Sprintf("health %s -> %s: %s", from, to, joinReasons(reasons)),
	})
	_ = err // suppression and capture failure are both counted
}

// CaptureAction adapts the recorder into a rules-engine action named
// "capture", so a standing rule like
//
//	when: 'slo.event == "burn"'  actions: [capture]
//
// snapshots the implicated model's flight data. Suppression by the
// debounce is success from the rule's point of view — the evidence was
// already captured moments ago — so only real capture failures surface
// as action errors.
func CaptureAction(r *Recorder) func(*rules.ActionContext) error {
	return func(ac *rules.ActionContext) error {
		t := Trigger{Kind: "rule", Reason: "rule " + ac.Rule.UUID}
		if ac.Instance != nil {
			t.ModelID = ac.Instance.ModelID.String()
		}
		t.TraceID = trace.FromContext(ac.Ctx).TraceIDString()
		_, err := r.Trigger(ac.Ctx, t)
		if errors.Is(err, ErrSuppressed) {
			return nil
		}
		return err
	}
}

func joinReasons(reasons []string) string {
	out := ""
	for i, re := range reasons {
		if i > 0 {
			out += "; "
		}
		out += re
	}
	return out
}
