package relstore

import (
	"testing"
	"time"
)

func TestOrderedIndexStreamDesc(t *testing.T) {
	s := newStore(t)
	fill(t, s, 1000)
	rows, ex, err := s.SelectExplain(Query{
		Table:   "instances",
		OrderBy: "created",
		Desc:    true,
		Limit:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Ordered || ex.Index != "created" {
		t.Fatalf("explain = %+v, want ordered index scan on created", ex)
	}
	if ex.Scanned > 20 {
		t.Fatalf("ordered limit-10 scan examined %d rows", ex.Scanned)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	// Newest first: the last inserted row i0999 leads.
	if rows[0]["id"].Str != "i0999" {
		t.Fatalf("rows[0] = %s", rows[0]["id"].Str)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i]["created"].Time.After(rows[i-1]["created"].Time) {
			t.Fatal("descending order violated")
		}
	}
}

func TestOrderedIndexStreamAscWithFilter(t *testing.T) {
	s := newStore(t)
	fill(t, s, 500)
	// Residual filter on an unindexable op so no driver constraint exists,
	// but OrderBy created still streams.
	rows, ex, err := s.SelectExplain(Query{
		Table:   "instances",
		Where:   []Constraint{{Field: "city", Op: OpNe, Value: String("sf")}},
		OrderBy: "created",
		Limit:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Ordered {
		t.Fatalf("explain = %+v", ex)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r["city"].Str == "sf" {
			t.Fatal("filter not applied on ordered path")
		}
	}
	for i := 1; i < len(rows); i++ {
		if rows[i]["created"].Time.Before(rows[i-1]["created"].Time) {
			t.Fatal("ascending order violated")
		}
	}
}

func TestOrderedPathMatchesSortPath(t *testing.T) {
	s := newStore(t)
	fill(t, s, 300)
	ordered, ex, err := s.SelectExplain(Query{
		Table: "instances", OrderBy: "created", Desc: true, Limit: 50, Offset: 7,
	})
	if err != nil || !ex.Ordered {
		t.Fatalf("ordered path: %v %+v", err, ex)
	}
	sorted, ex2, err := s.SelectExplain(Query{
		Table: "instances", OrderBy: "created", Desc: true, Limit: 50, Offset: 7, ForceScan: true,
	})
	if err != nil || ex2.Ordered {
		t.Fatalf("scan path: %v %+v", err, ex2)
	}
	if len(ordered) != len(sorted) {
		t.Fatalf("lengths differ: %d vs %d", len(ordered), len(sorted))
	}
	for i := range ordered {
		if ordered[i]["id"].Str != sorted[i]["id"].Str {
			t.Fatalf("row %d differs: %s vs %s", i, ordered[i]["id"].Str, sorted[i]["id"].Str)
		}
	}
}

func TestOrderedPathSkippedForNullableColumn(t *testing.T) {
	// city is nullable: rows with null city would vanish from an index
	// stream, so the planner must not use it for ordering.
	s := newStore(t)
	fill(t, s, 50)
	nullCity := Row{
		"id":              String("nullcity"),
		"base_version_id": String("b"),
		"created":         Time(t0.Add(time.Hour * 10000)),
	}
	if err := s.Insert("instances", nullCity); err != nil {
		t.Fatal(err)
	}
	rows, ex, err := s.SelectExplain(Query{Table: "instances", OrderBy: "city"})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Ordered {
		t.Fatalf("ordered stream used nullable column: %+v", ex)
	}
	if len(rows) != 51 {
		t.Fatalf("%d rows, want 51 (null-city row must not vanish)", len(rows))
	}
}
