package server

import (
	"net/http"
)

// ServeHTTP implements http.Handler. Every request flows through the
// shared observability middleware (internal/obs/httpmw): per-route request
// counters by status class, latency and body-size histograms with
// slow-trace exemplars, root-span start/end from the incoming traceparent,
// and one structured access-log line. The route label is the ServeMux
// pattern that matched (bounded cardinality), never the raw URL.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.ServeHTTP(w, r)
}
