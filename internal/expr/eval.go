package expr

import (
	"fmt"
	"math"
	"strings"
)

// Func is a host function callable from expressions.
type Func func(args []any) (any, error)

// Env supplies variables and functions to an evaluation. Variable values
// may be string, bool, float64, int/int64 (normalized to float64), nil, or
// map[string]any for nested field access like metrics.bias.
type Env struct {
	Vars  map[string]any
	Funcs map[string]Func
}

// EvalError reports an evaluation failure (unknown variable, type mismatch,
// division by zero, ...). Rules treat any EvalError as "condition not met"
// plus an operator-visible diagnostic, never as a crash.
type EvalError struct {
	Pos int
	Msg string
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("expr: eval error at offset %d: %s", e.Pos, e.Msg)
}

// Eval parses and evaluates src in one step.
func Eval(src string, env *Env) (any, error) {
	n, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return n.eval(env)
}

// EvalBool evaluates src and requires a boolean result, as rule conditions do.
func EvalBool(src string, env *Env) (bool, error) {
	v, err := Eval(src, env)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	if !ok {
		return false, &EvalError{0, fmt.Sprintf("expression yields %T, not bool", v)}
	}
	return b, nil
}

// EvalNode evaluates a pre-parsed expression.
func EvalNode(n Node, env *Env) (any, error) { return n.eval(env) }

// normalize converts host integer values to float64 so the language has a
// single number type, like JEXL's unified arithmetic.
func normalize(v any) any {
	switch x := v.(type) {
	case int:
		return float64(x)
	case int8:
		return float64(x)
	case int16:
		return float64(x)
	case int32:
		return float64(x)
	case int64:
		return float64(x)
	case uint:
		return float64(x)
	case uint64:
		return float64(x)
	case float32:
		return float64(x)
	default:
		return v
	}
}

func (n *litNode) eval(*Env) (any, error) { return n.val, nil }

func (n *listNode) eval(env *Env) (any, error) {
	out := make([]any, len(n.elems))
	for i, e := range n.elems {
		v, err := e.eval(env)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (n *identNode) eval(env *Env) (any, error) {
	if env == nil || env.Vars == nil {
		return nil, &EvalError{n.pos, fmt.Sprintf("unknown variable %q", n.name)}
	}
	v, ok := env.Vars[n.name]
	if !ok {
		return nil, &EvalError{n.pos, fmt.Sprintf("unknown variable %q", n.name)}
	}
	return normalize(v), nil
}

func (n *memberNode) eval(env *Env) (any, error) {
	obj, err := n.obj.eval(env)
	if err != nil {
		return nil, err
	}
	return fieldOf(obj, n.field, n.pos, n.obj.String())
}

func (n *indexNode) eval(env *Env) (any, error) {
	obj, err := n.obj.eval(env)
	if err != nil {
		return nil, err
	}
	key, err := n.key.eval(env)
	if err != nil {
		return nil, err
	}
	ks, ok := key.(string)
	if !ok {
		return nil, &EvalError{n.pos, fmt.Sprintf("index must be a string, got %T", key)}
	}
	return fieldOf(obj, ks, n.pos, n.obj.String())
}

func fieldOf(obj any, field string, pos int, objSrc string) (any, error) {
	m, ok := obj.(map[string]any)
	if !ok {
		return nil, &EvalError{pos, fmt.Sprintf("%s is %T, not an object", objSrc, obj)}
	}
	v, ok := m[field]
	if !ok {
		return nil, &EvalError{pos, fmt.Sprintf("%s has no field %q", objSrc, field)}
	}
	return normalize(v), nil
}

func (n *callNode) eval(env *Env) (any, error) {
	fn := builtins[n.fn]
	if env != nil && env.Funcs != nil {
		if f, ok := env.Funcs[n.fn]; ok {
			fn = f
		}
	}
	if fn == nil {
		return nil, &EvalError{n.pos, fmt.Sprintf("unknown function %q", n.fn)}
	}
	args := make([]any, len(n.args))
	for i, a := range n.args {
		v, err := a.eval(env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	out, err := fn(args)
	if err != nil {
		return nil, &EvalError{n.pos, fmt.Sprintf("%s: %v", n.fn, err)}
	}
	return normalize(out), nil
}

func (n *unaryNode) eval(env *Env) (any, error) {
	v, err := n.x.eval(env)
	if err != nil {
		return nil, err
	}
	switch n.op {
	case tokNot:
		b, ok := v.(bool)
		if !ok {
			return nil, &EvalError{n.pos, fmt.Sprintf("! needs bool, got %T", v)}
		}
		return !b, nil
	case tokMinus:
		f, ok := v.(float64)
		if !ok {
			return nil, &EvalError{n.pos, fmt.Sprintf("unary - needs number, got %T", v)}
		}
		return -f, nil
	default:
		return nil, &EvalError{n.pos, "bad unary operator"}
	}
}

func (n *binaryNode) eval(env *Env) (any, error) {
	// Short-circuit logic first.
	if n.op == tokAnd || n.op == tokOr {
		xv, err := n.x.eval(env)
		if err != nil {
			return nil, err
		}
		xb, ok := xv.(bool)
		if !ok {
			return nil, &EvalError{n.pos, fmt.Sprintf("%s needs bool operands, got %T", opNames[n.op], xv)}
		}
		if n.op == tokAnd && !xb {
			return false, nil
		}
		if n.op == tokOr && xb {
			return true, nil
		}
		yv, err := n.y.eval(env)
		if err != nil {
			return nil, err
		}
		yb, ok := yv.(bool)
		if !ok {
			return nil, &EvalError{n.pos, fmt.Sprintf("%s needs bool operands, got %T", opNames[n.op], yv)}
		}
		return yb, nil
	}

	xv, err := n.x.eval(env)
	if err != nil {
		return nil, err
	}
	yv, err := n.y.eval(env)
	if err != nil {
		return nil, err
	}

	switch n.op {
	case tokEq:
		return looseEqual(xv, yv), nil
	case tokNe:
		return !looseEqual(xv, yv), nil
	case tokIn:
		// Membership: element in list, or key in object.
		switch container := yv.(type) {
		case []any:
			for _, e := range container {
				if looseEqual(xv, e) {
					return true, nil
				}
			}
			return false, nil
		case map[string]any:
			key, ok := xv.(string)
			if !ok {
				return nil, &EvalError{n.pos, fmt.Sprintf("'in' over an object needs a string key, got %T", xv)}
			}
			_, present := container[key]
			return present, nil
		default:
			return nil, &EvalError{n.pos, fmt.Sprintf("'in' needs a list or object on the right, got %T", yv)}
		}
	case tokLt, tokLe, tokGt, tokGe:
		c, err := compare(xv, yv, n.pos)
		if err != nil {
			return nil, err
		}
		switch n.op {
		case tokLt:
			return c < 0, nil
		case tokLe:
			return c <= 0, nil
		case tokGt:
			return c > 0, nil
		default:
			return c >= 0, nil
		}
	case tokPlus:
		// + concatenates strings and adds numbers, as JEXL does.
		if xs, ok := xv.(string); ok {
			if ys, ok := yv.(string); ok {
				return xs + ys, nil
			}
		}
		return arith(n, xv, yv, func(a, b float64) (float64, error) { return a + b, nil })
	case tokMinus:
		return arith(n, xv, yv, func(a, b float64) (float64, error) { return a - b, nil })
	case tokStar:
		return arith(n, xv, yv, func(a, b float64) (float64, error) { return a * b, nil })
	case tokSlash:
		return arith(n, xv, yv, func(a, b float64) (float64, error) {
			if b == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return a / b, nil
		})
	case tokPercent:
		return arith(n, xv, yv, func(a, b float64) (float64, error) {
			if b == 0 {
				return 0, fmt.Errorf("modulo by zero")
			}
			return math.Mod(a, b), nil
		})
	default:
		return nil, &EvalError{n.pos, "bad binary operator"}
	}
}

func arith(n *binaryNode, xv, yv any, f func(a, b float64) (float64, error)) (any, error) {
	xf, xok := xv.(float64)
	yf, yok := yv.(float64)
	if !xok || !yok {
		return nil, &EvalError{n.pos, fmt.Sprintf("%s needs numbers, got %T and %T",
			opNames[n.op], xv, yv)}
	}
	out, err := f(xf, yf)
	if err != nil {
		return nil, &EvalError{n.pos, err.Error()}
	}
	return out, nil
}

// looseEqual compares two evaluated values. Values of different types are
// simply unequal (numbers were already normalized to float64).
func looseEqual(x, y any) bool {
	if x == nil || y == nil {
		return x == nil && y == nil
	}
	switch xv := x.(type) {
	case float64:
		yv, ok := y.(float64)
		return ok && xv == yv
	case string:
		yv, ok := y.(string)
		return ok && xv == yv
	case bool:
		yv, ok := y.(bool)
		return ok && xv == yv
	default:
		return false
	}
}

// compare orders numbers numerically and strings lexicographically.
func compare(x, y any, pos int) (int, error) {
	if xf, ok := x.(float64); ok {
		if yf, ok := y.(float64); ok {
			switch {
			case xf < yf:
				return -1, nil
			case xf > yf:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	if xs, ok := x.(string); ok {
		if ys, ok := y.(string); ok {
			return strings.Compare(xs, ys), nil
		}
	}
	return 0, &EvalError{pos, fmt.Sprintf("cannot order %T against %T", x, y)}
}

// builtins are always available unless shadowed by the environment.
var builtins = map[string]Func{
	"abs": func(args []any) (any, error) {
		f, err := oneNumber(args)
		if err != nil {
			return nil, err
		}
		return math.Abs(f), nil
	},
	"min": func(args []any) (any, error) {
		return foldNumbers(args, math.Min)
	},
	"max": func(args []any) (any, error) {
		return foldNumbers(args, math.Max)
	},
	// has(obj, "field") reports whether a map has a field, letting rules
	// guard against metrics that have not been reported yet.
	"has": func(args []any) (any, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("want 2 arguments, got %d", len(args))
		}
		m, ok := args[0].(map[string]any)
		if !ok {
			return nil, fmt.Errorf("first argument is %T, not an object", args[0])
		}
		k, ok := args[1].(string)
		if !ok {
			return nil, fmt.Errorf("second argument is %T, not a string", args[1])
		}
		_, present := m[k]
		return present, nil
	},
	"floor": func(args []any) (any, error) {
		f, err := oneNumber(args)
		if err != nil {
			return nil, err
		}
		return math.Floor(f), nil
	},
	"ceil": func(args []any) (any, error) {
		f, err := oneNumber(args)
		if err != nil {
			return nil, err
		}
		return math.Ceil(f), nil
	},
	"round": func(args []any) (any, error) {
		f, err := oneNumber(args)
		if err != nil {
			return nil, err
		}
		return math.Round(f), nil
	},
	"contains": func(args []any) (any, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("want 2 arguments, got %d", len(args))
		}
		s, ok1 := args[0].(string)
		sub, ok2 := args[1].(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("contains needs two strings")
		}
		return strings.Contains(s, sub), nil
	},
	"startsWith": func(args []any) (any, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("want 2 arguments, got %d", len(args))
		}
		s, ok1 := args[0].(string)
		pre, ok2 := args[1].(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("startsWith needs two strings")
		}
		return strings.HasPrefix(s, pre), nil
	},
}

func oneNumber(args []any) (float64, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("want 1 argument, got %d", len(args))
	}
	f, ok := normalize(args[0]).(float64)
	if !ok {
		return 0, fmt.Errorf("argument is %T, not a number", args[0])
	}
	return f, nil
}

func foldNumbers(args []any, f func(a, b float64) float64) (any, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("want at least 1 argument")
	}
	acc, ok := normalize(args[0]).(float64)
	if !ok {
		return nil, fmt.Errorf("argument 0 is %T, not a number", args[0])
	}
	for i, a := range args[1:] {
		v, ok := normalize(a).(float64)
		if !ok {
			return nil, fmt.Errorf("argument %d is %T, not a number", i+1, a)
		}
		acc = f(acc, v)
	}
	return acc, nil
}

// Idents returns the free top-level identifiers referenced by an
// expression. The rule engine uses this to register which metadata and
// metric updates should trigger a rule's re-evaluation (paper §3.7.2).
func Idents(n Node) []string {
	set := make(map[string]bool)
	collectIdents(n, set)
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}

func collectIdents(n Node, set map[string]bool) {
	switch x := n.(type) {
	case *identNode:
		set[x.name] = true
	case *memberNode:
		collectIdents(x.obj, set)
	case *indexNode:
		collectIdents(x.obj, set)
		collectIdents(x.key, set)
	case *callNode:
		for _, a := range x.args {
			collectIdents(a, set)
		}
	case *unaryNode:
		collectIdents(x.x, set)
	case *binaryNode:
		collectIdents(x.x, set)
		collectIdents(x.y, set)
	case *listNode:
		for _, e := range x.elems {
			collectIdents(e, set)
		}
	}
}
