package sim

import (
	"math"
	"math/rand"
	"testing"

	"gallery/internal/forecast"
)

func TestQuadrantMapping(t *testing.T) {
	const g = 10.0
	cases := []struct {
		x, y float64
		want int
	}{
		{1, 1, 0}, {6, 1, 1}, {1, 6, 2}, {6, 6, 3},
		{5, 5, 3}, {4.99, 4.99, 0},
	}
	for _, c := range cases {
		if got := quadrant(c.x, c.y, g); got != c.want {
			t.Errorf("quadrant(%v,%v) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestQuadrantWeightsProperties(t *testing.T) {
	for _, shift := range []float64{0, 0.5, 0.9} {
		for h := 0; h < 48; h++ {
			w := quadrantWeights(float64(h)*3600, shift)
			var sum float64
			for _, v := range w {
				if v <= 0 {
					t.Fatalf("shift=%v h=%d: non-positive weight %v", shift, h, v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("shift=%v h=%d: weights sum to %v", shift, h, sum)
			}
		}
	}
	// No shift: uniform.
	w := quadrantWeights(12345, 0)
	for _, v := range w {
		if v != 0.25 {
			t.Fatalf("uniform weights = %v", w)
		}
	}
	// With shift: quadrant 0 heavier at 09:00, quadrant 3 heavier at 21:00.
	morning := quadrantWeights(9*3600, 0.9)
	evening := quadrantWeights(21*3600, 0.9)
	if morning[0] <= morning[3] {
		t.Fatalf("morning weights = %v, want q0 > q3", morning)
	}
	if evening[3] <= evening[0] {
		t.Fatalf("evening weights = %v, want q3 > q0", evening)
	}
}

func TestSamplePointInQuadrant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const g = 10.0
	for q := 0; q < 4; q++ {
		for i := 0; i < 200; i++ {
			x, y := samplePoint(rng, q, g)
			if quadrant(x, y, g) != q {
				t.Fatalf("samplePoint(%d) gave (%v,%v) in quadrant %d", q, x, y, quadrant(x, y, g))
			}
		}
	}
}

func TestSampleQuadrantDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := [4]float64{0.7, 0.1, 0.1, 0.1}
	counts := [4]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[sampleQuadrant(rng, w)]++
	}
	if got := float64(counts[0]) / n; got < 0.65 || got > 0.75 {
		t.Fatalf("quadrant 0 sampled %v, want ~0.7", got)
	}
}

func TestQuadrantTrainingSeriesShape(t *testing.T) {
	s := QuadrantTrainingSeries(150, 0.9, 0, 24*10, 7)
	if len(s) != 24*10 {
		t.Fatalf("len = %d", len(s))
	}
	// Quadrant 0 is morning-heavy: mean demand at 09:00 must exceed 21:00.
	var morning, evening float64
	for i, p := range s {
		if p.V < 0 {
			t.Fatalf("negative demand at %d", i)
		}
		switch i % 24 {
		case 9:
			morning += p.V
		case 21:
			evening += p.V
		}
	}
	if morning <= evening {
		t.Fatalf("quadrant 0 morning %v <= evening %v", morning, evening)
	}
}

func TestRepositioningRequiresModels(t *testing.T) {
	cfg := baseConfig(1)
	cfg.RepositionEverySec = 600
	if _, err := Run(cfg); err == nil {
		t.Fatal("repositioning without quadrant models accepted")
	}
	cfg.RepositionModels = []forecast.Model{&forecast.Heuristic{K: 3}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("repositioning with 1 model accepted")
	}
}

func TestRepositioningReducesPickupDistance(t *testing.T) {
	models := make([]forecast.Model, 4)
	for i := range models {
		m := &forecast.Heuristic{K: 3}
		if err := m.Train(nil); err != nil {
			t.Fatal(err)
		}
		models[i] = m
	}
	base := Config{
		Mode: ModeInSimTraining, ModelVariants: 1, TrainingPoints: 300,
		Drivers: 60, DurationHours: 12, BaseDemand: 150,
		SpatialShift: 0.9, Seed: 42,
	}
	off, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	on := base
	on.RepositionEverySec = 600
	on.RepositionFraction = 0.7
	on.RepositionModels = models
	got, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	if got.Repositions == 0 {
		t.Fatal("no repositions happened")
	}
	if got.MeanPickupKm >= off.MeanPickupKm {
		t.Fatalf("repositioning did not reduce pickup distance: %.2f vs %.2f",
			got.MeanPickupKm, off.MeanPickupKm)
	}
}
