package sim

import (
	"math/rand"
	"testing"
	"time"

	"gallery/internal/blobstore"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/forecast"
	"gallery/internal/relstore"
	"gallery/internal/uuid"
)

func baseConfig(seed int64) Config {
	return Config{
		Mode:           ModeInSimTraining,
		ModelVariants:  4,
		TrainingPoints: 24 * 30,
		Drivers:        40,
		DurationHours:  4,
		BaseDemand:     200,
		Seed:           seed,
	}
}

func TestRunCompletes(t *testing.T) {
	rep, err := Run(baseConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CompletedTrips == 0 {
		t.Fatal("no trips completed")
	}
	if rep.MeanWaitSec < 0 || rep.P95WaitSec < rep.MeanWaitSec {
		t.Fatalf("wait stats inconsistent: mean=%v p95=%v", rep.MeanWaitSec, rep.P95WaitSec)
	}
	if rep.DriverUtilization <= 0 || rep.DriverUtilization > 1 {
		t.Fatalf("utilization = %v", rep.DriverUtilization)
	}
	if rep.SurgeUpdates != 4 { // hours 1–4 inclusive of the horizon edge
		t.Fatalf("surge updates = %d", rep.SurgeUpdates)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(baseConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different reports:\n%+v\n%+v", a, b)
	}
	c, err := Run(baseConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.CompletedTrips == c.CompletedTrips && a.MeanWaitSec == c.MeanWaitSec {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestMoreDriversLessWait(t *testing.T) {
	few := baseConfig(3)
	few.Drivers = 15
	many := baseConfig(3)
	many.Drivers = 120
	repFew, err := Run(few)
	if err != nil {
		t.Fatal(err)
	}
	repMany, err := Run(many)
	if err != nil {
		t.Fatal(err)
	}
	if repMany.MeanWaitSec >= repFew.MeanWaitSec {
		t.Fatalf("more drivers did not reduce waits: %v vs %v", repMany.MeanWaitSec, repFew.MeanWaitSec)
	}
	if repMany.CompletedTrips < repFew.CompletedTrips {
		t.Fatalf("more drivers completed fewer trips: %d vs %d", repMany.CompletedTrips, repFew.CompletedTrips)
	}
}

func TestInSimTrainingChargesResources(t *testing.T) {
	cfg := baseConfig(5)
	cfg.ModelVariants = 8
	cfg.TrainingPoints = 1000
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantCPU := cpuPerPoint * 1000 * 8
	if rep.Resources.TrainCPUSeconds != wantCPU {
		t.Fatalf("train CPU = %v, want %v", rep.Resources.TrainCPUSeconds, wantCPU)
	}
	wantMem := int64(8) * (memPerPoint*1000 + modelResidentBytes)
	if rep.Resources.ModelMemoryBytes != wantMem {
		t.Fatalf("model memory = %v, want %v", rep.Resources.ModelMemoryBytes, wantMem)
	}
	if rep.Resources.GalleryFetches != 0 {
		t.Fatal("in-sim mode fetched from Gallery")
	}
}

// galleryWithModels uploads n pre-trained model variants and returns the
// registry plus their instance ids.
func galleryWithModels(t *testing.T, n int) (*core.Registry, []uuid.UUID) {
	t.Helper()
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clock.NewMock(time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)),
		UUIDs: uuid.NewSeeded(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := reg.RegisterModel(core.ModelSpec{BaseVersionID: "sim_demand", Project: "simulation"})
	if err != nil {
		t.Fatal(err)
	}
	series := forecast.Generate(forecast.CityConfig{
		Name: "simworld", Base: 200, DailyAmp: 60, NoiseStd: 10, Seed: 99,
	}, time.Unix(0, 0).UTC(), time.Hour, 24*30)
	var ids []uuid.UUID
	for i := 0; i < n; i++ {
		fm := variant(i)
		if err := fm.Train(series); err != nil {
			t.Fatal(err)
		}
		blob, err := forecast.Encode(fm)
		if err != nil {
			t.Fatal(err)
		}
		in, err := reg.UploadInstance(core.InstanceSpec{
			ModelID: m.ID, Name: fm.Name(), Framework: "gallery-forecast",
		}, blob)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, in.ID)
	}
	return reg, ids
}

func TestGalleryServedMode(t *testing.T) {
	reg, ids := galleryWithModels(t, 4)
	cfg := baseConfig(5)
	cfg.Mode = ModeGalleryServed
	cfg.Registry = reg
	cfg.ModelInstanceIDs = ids
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resources.TrainCPUSeconds != 0 {
		t.Fatalf("gallery mode spent %v training CPU", rep.Resources.TrainCPUSeconds)
	}
	if rep.Resources.GalleryFetches != 4 {
		t.Fatalf("fetches = %d", rep.Resources.GalleryFetches)
	}
	if rep.Resources.ModelMemoryBytes != 4*modelResidentBytes {
		t.Fatalf("memory = %d", rep.Resources.ModelMemoryBytes)
	}
	if rep.CompletedTrips == 0 {
		t.Fatal("no trips completed in gallery mode")
	}
}

// TestResourceSavingsShape is the unit-level check of Experiment E10: the
// Gallery-served run must save both simulated memory and CPU versus
// in-sim training with the same variants.
func TestResourceSavingsShape(t *testing.T) {
	reg, ids := galleryWithModels(t, 4)

	inSim := baseConfig(9)
	inSim.ModelVariants = 4
	repIn, err := Run(inSim)
	if err != nil {
		t.Fatal(err)
	}
	served := baseConfig(9)
	served.Mode = ModeGalleryServed
	served.Registry = reg
	served.ModelInstanceIDs = ids
	repServed, err := Run(served)
	if err != nil {
		t.Fatal(err)
	}

	if repServed.Resources.ModelMemoryBytes >= repIn.Resources.ModelMemoryBytes {
		t.Fatalf("no memory savings: %d vs %d",
			repServed.Resources.ModelMemoryBytes, repIn.Resources.ModelMemoryBytes)
	}
	if repServed.Resources.TrainCPUSeconds >= repIn.Resources.TrainCPUSeconds {
		t.Fatalf("no CPU savings: %v vs %v",
			repServed.Resources.TrainCPUSeconds, repIn.Resources.TrainCPUSeconds)
	}
	// The simulated world itself must behave comparably: same order of
	// completed trips.
	ratio := float64(repServed.CompletedTrips) / float64(repIn.CompletedTrips)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("modes diverged in world behaviour: %d vs %d trips",
			repServed.CompletedTrips, repIn.CompletedTrips)
	}
}

func TestGalleryModeValidation(t *testing.T) {
	cfg := baseConfig(1)
	cfg.Mode = ModeGalleryServed
	if _, err := Run(cfg); err == nil {
		t.Fatal("gallery mode without registry accepted")
	}
	cfg.Mode = Mode(99)
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		q.push(event{at: rng.Float64() * 1000, kind: evMatch})
	}
	prev := -1.0
	for q.Len() > 0 {
		e := q.pop()
		if e.at < prev {
			t.Fatalf("events out of order: %v after %v", e.at, prev)
		}
		prev = e.at
	}
}

func TestEventQueueStableTies(t *testing.T) {
	var q eventQueue
	for i := 0; i < 10; i++ {
		q.push(event{at: 42, kind: evMatch, driver: i})
	}
	for i := 0; i < 10; i++ {
		e := q.pop()
		if e.driver != i {
			t.Fatalf("tie order violated: got driver %d at pos %d", e.driver, i)
		}
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	if p := percentile(vals, 0.95); p != 5 {
		t.Fatalf("p95 = %v", p)
	}
	if p := percentile(vals, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty percentile = %v", p)
	}
}

func TestClamp(t *testing.T) {
	if clamp(5, 1, 3) != 3 || clamp(-1, 1, 3) != 1 || clamp(2, 1, 3) != 2 {
		t.Fatal("clamp broken")
	}
}
