package profile

import (
	"testing"
	"time"
)

func mkSummary(kind string, end time.Time, total int64, fns ...FuncStat) Summary {
	s := Summary{Kind: kind, Start: end.Add(-time.Second), End: end, Unit: "nanoseconds",
		Total: total, Samples: 1, Top: fns}
	if total > 0 {
		for i := range s.Top {
			s.Top[i].SelfShare = float64(s.Top[i].Self) / float64(total)
			s.Top[i].CumShare = float64(s.Top[i].Cum) / float64(total)
		}
	}
	return s
}

func TestRingBoundAndOrder(t *testing.T) {
	r := NewRing(3)
	t0 := time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		r.Add(mkSummary(KindCPU, t0.Add(time.Duration(i)*time.Minute), int64(i+1)))
	}
	got := r.Recent(KindCPU, 0)
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	// Newest first: totals 5, 4, 3.
	for i, want := range []int64{5, 4, 3} {
		if got[i].Total != want {
			t.Fatalf("recent[%d].Total = %d, want %d", i, got[i].Total, want)
		}
	}
	if got = r.Recent(KindCPU, 1); len(got) != 1 || got[0].Total != 5 {
		t.Fatalf("Recent(1) = %v", got)
	}
	if got = r.Recent(KindHeap, 0); len(got) != 0 {
		t.Fatalf("unknown kind returned %v", got)
	}
}

func TestRingHistoryAcrossKinds(t *testing.T) {
	r := NewRing(8)
	t0 := time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)
	r.Add(mkSummary(KindCPU, t0.Add(1*time.Minute), 1))
	r.Add(mkSummary(KindHeap, t0.Add(2*time.Minute), 2))
	r.Add(mkSummary(KindCPU, t0.Add(3*time.Minute), 3))
	all := r.History(0)
	if len(all) != 3 {
		t.Fatalf("history len %d", len(all))
	}
	if all[0].Total != 3 || all[1].Total != 2 || all[2].Total != 1 {
		t.Fatalf("history not newest-first: %v", all)
	}
	if lim := r.History(2); len(lim) != 2 || lim[0].Total != 3 {
		t.Fatalf("History(2) = %v", lim)
	}
	kinds := r.Kinds()
	if len(kinds) != 2 || kinds[0] != KindCPU || kinds[1] != KindHeap {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestMerge(t *testing.T) {
	t0 := time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)
	a := mkSummary(KindCPU, t0.Add(time.Minute), 100,
		FuncStat{Name: "hot", Self: 60, Cum: 80}, FuncStat{Name: "warm", Self: 20, Cum: 40})
	b := mkSummary(KindCPU, t0.Add(2*time.Minute), 100,
		FuncStat{Name: "hot", Self: 40, Cum: 60}, FuncStat{Name: "cold", Self: 5, Cum: 5})
	m := Merge([]Summary{a, b}, 10)
	if m.Total != 200 || m.Samples != 2 {
		t.Fatalf("total=%d samples=%d", m.Total, m.Samples)
	}
	if !m.Start.Equal(a.Start) || !m.End.Equal(b.End) {
		t.Fatalf("window [%v, %v]", m.Start, m.End)
	}
	hot := m.Top[0]
	if hot.Name != "hot" || hot.Self != 100 || hot.Cum != 140 {
		t.Fatalf("hot = %+v", hot)
	}
	if hot.SelfShare != 0.5 {
		t.Fatalf("hot self share = %v, want 0.5", hot.SelfShare)
	}
	if len(m.Top) != 3 {
		t.Fatalf("merged top = %v", m.Top)
	}
	if got := Merge(nil, 5); got.Total != 0 || len(got.Top) != 0 {
		t.Fatalf("Merge(nil) = %+v", got)
	}
	// topN re-truncation after merge.
	if got := Merge([]Summary{a, b}, 1); len(got.Top) != 1 || got.Top[0].Name != "hot" {
		t.Fatalf("Merge topN=1 = %v", got.Top)
	}
}

func TestRingViewMergeWindow(t *testing.T) {
	r := NewRing(8)
	t0 := time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)
	r.Add(mkSummary(KindCPU, t0.Add(1*time.Minute), 100, FuncStat{Name: "old", Self: 100, Cum: 100}))
	r.Add(mkSummary(KindCPU, t0.Add(50*time.Minute), 100, FuncStat{Name: "new", Self: 100, Cum: 100}))
	now := t0.Add(51 * time.Minute)

	all := r.View("p", 0, 10, now)
	if all.Windows[KindCPU] != 2 || all.Merged[KindCPU].Total != 200 {
		t.Fatalf("unwindowed view = %+v", all)
	}
	recent := r.View("p", 10*time.Minute, 10, now)
	if recent.Windows[KindCPU] != 1 || recent.Merged[KindCPU].Total != 100 {
		t.Fatalf("windowed view = %+v", recent)
	}
	if recent.Merged[KindCPU].Top[0].Name != "new" {
		t.Fatalf("windowed view kept %v", recent.Merged[KindCPU].Top)
	}
}
