package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"sync"

	"gallery/internal/api"
)

// The /v1/predict hot path encodes one small fixed-shape response per
// request. encoding/json costs reflection plus several allocations per
// call; at gateway QPS that is the dominant per-request garbage. This
// encoder appends the response into a pooled buffer instead —
// byte-for-byte identical output (field order, omitempty, HTML escaping,
// float formatting, trailing newline) so clients and tests cannot tell
// the difference, verified against encoding/json in encode_test.go.

var predictBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

// writePredictResponse writes resp as encoding/json would, reusing a
// pooled buffer and setting Content-Length. Responses that the fast
// path cannot represent (non-finite values, which encoding/json rejects)
// fall back to the generic writer.
func writePredictResponse(w http.ResponseWriter, resp api.PredictResponse) {
	if math.IsNaN(resp.Value) || math.IsInf(resp.Value, 0) {
		writeServeJSON(w, http.StatusOK, resp)
		return
	}
	bp := predictBufPool.Get().(*[]byte)
	b := appendPredictResponse((*bp)[:0], resp)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
	*bp = b
	predictBufPool.Put(bp)
}

// appendPredictResponse appends the encoding/json serialization of resp
// (with json.Encoder's trailing newline).
func appendPredictResponse(b []byte, resp api.PredictResponse) []byte {
	b = append(b, `{"model_id":`...)
	b = appendJSONString(b, resp.ModelID)
	b = append(b, `,"instance_id":`...)
	b = appendJSONString(b, resp.InstanceID)
	b = append(b, `,"version_id":`...)
	b = appendJSONString(b, resp.VersionID)
	b = append(b, `,"version":`...)
	b = appendJSONString(b, resp.Version)
	if resp.Learner != "" {
		b = append(b, `,"learner":`...)
		b = appendJSONString(b, resp.Learner)
	}
	b = append(b, `,"value":`...)
	b = appendJSONFloat(b, resp.Value)
	if resp.Stale {
		b = append(b, `,"stale":true`...)
	}
	b = append(b, '}', '\n')
	return b
}

// appendJSONString appends s as a JSON string the way encoding/json
// does, including its HTML-safe escaping of <, > and &. Identifiers on
// this path are plain ASCII, so the slow cases delegate to
// encoding/json rather than duplicating its escape tables.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			enc, err := json.Marshal(s)
			if err != nil { // unreachable: strings always marshal
				return append(b, `""`...)
			}
			return append(b, enc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// appendJSONFloat appends f using encoding/json's float64 format: like
// strconv 'g' but preferring 'f' notation unless the magnitude is
// extreme, and trimming the exponent's leading zero. f must be finite.
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	n := len(b)
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if m := len(b); m >= n+4 && b[m-4] == 'e' && b[m-3] == '-' && b[m-2] == '0' {
			b[m-2] = b[m-1]
			b = b[:m-1]
		}
	}
	return b
}
