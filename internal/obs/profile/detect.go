package profile

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"gallery/internal/obs"
)

// BaselineSchema is bumped when the baseline file format changes
// incompatibly.
const BaselineSchema = 1

// Detector defaults.
const (
	// DefaultFactor: a function regresses when its self-share exceeds
	// baseline * factor.
	DefaultFactor = 2.0
	// DefaultMinShare: functions below this absolute self-share never
	// flag, whatever their baseline — a 0.1% function tripling is noise.
	DefaultMinShare = 0.05
	// DefaultNewShare is the share assumed for functions absent from the
	// baseline, so a brand-new hog (code the baseline never saw) still
	// flags once it clears MinShare and NewShare*Factor.
	DefaultNewShare = 0.01
)

// Baseline is the checked-in per-process profile expectation
// (PROFILE_<process>.json, the benchfmt idiom): the self-share each
// known-hot function is allowed before the detector calls a regression.
// Shares are machine-portable the way allocation counts are — a
// function's fraction of total CPU is a property of the code path, not
// the clock — which is what makes a committed baseline meaningful.
type Baseline struct {
	Schema  int                `json:"schema"`
	Process string             `json:"process"`
	Kind    string             `json:"kind"`
	Shares  map[string]float64 `json:"shares"`
}

// BaselineFileName returns the canonical baseline file name for a
// process.
func BaselineFileName(process string) string { return "PROFILE_" + process + ".json" }

// BaselineOf derives a baseline from a (typically merged) summary.
func BaselineOf(process string, s Summary) Baseline {
	b := Baseline{
		Schema:  BaselineSchema,
		Process: process,
		Kind:    s.Kind,
		Shares:  make(map[string]float64, len(s.Top)),
	}
	for _, fn := range s.Top {
		b.Shares[fn.Name] = fn.SelfShare
	}
	return b
}

// WriteBaseline persists b as dir/PROFILE_<process>.json with stable
// formatting, so regenerated baselines diff cleanly.
func WriteBaseline(dir string, b Baseline) error {
	return WriteBaselineFile(filepath.Join(dir, BaselineFileName(b.Process)), b)
}

// WriteBaselineFile persists b at an explicit path.
func WriteBaselineFile(path string, b Baseline) error {
	b.Schema = BaselineSchema
	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("profile: marshal baseline %s: %w", b.Process, err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("profile: write %s: %w", path, err)
	}
	return nil
}

// LoadBaseline reads one baseline file.
func LoadBaseline(path string) (Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, err
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return Baseline{}, fmt.Errorf("profile: parse %s: %w", path, err)
	}
	if b.Schema != BaselineSchema {
		return Baseline{}, fmt.Errorf("profile: %s has schema %d, want %d (regenerate with `galleryctl profile baseline`)",
			path, b.Schema, BaselineSchema)
	}
	return b, nil
}

// Regression is one function whose live self-share blew past its
// baseline allowance.
type Regression struct {
	Function string  `json:"function"`
	Share    float64 `json:"share"`    // live self-share
	Baseline float64 `json:"baseline"` // allowed share (NewShare when absent)
	Factor   float64 `json:"factor"`   // share / baseline
}

// CompareBaseline checks a summary's top functions against a baseline.
// A function regresses when its self-share clears minShare AND exceeds
// factor times its baseline share (newShare for functions the baseline
// has never seen). Results are ordered worst factor first.
func CompareBaseline(b Baseline, s Summary, factor, minShare, newShare float64) []Regression {
	if factor <= 0 {
		factor = DefaultFactor
	}
	if minShare <= 0 {
		minShare = DefaultMinShare
	}
	if newShare <= 0 {
		newShare = DefaultNewShare
	}
	var regs []Regression
	for _, fn := range s.Top {
		if fn.SelfShare < minShare {
			continue
		}
		base, ok := b.Shares[fn.Name]
		if !ok || base <= 0 {
			base = newShare
		}
		if fn.SelfShare <= base*factor {
			continue
		}
		regs = append(regs, Regression{
			Function: fn.Name,
			Share:    fn.SelfShare,
			Baseline: base,
			Factor:   fn.SelfShare / base,
		})
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Factor > regs[j].Factor })
	return regs
}

// EventSink receives profile.regression events; *rules.Engine satisfies
// it via ProfileEvent.
type EventSink interface {
	ProfileEvent(ctx context.Context, event string, fields map[string]any)
}

// DetectorConfig tunes a Detector.
type DetectorConfig struct {
	// Baseline is the per-process allowance being enforced.
	Baseline Baseline
	// Factor, MinShare, NewShare tune CompareBaseline (0 = defaults).
	Factor   float64
	MinShare float64
	NewShare float64
	// Obs hosts the profile_regression gauge and detector counters; nil
	// uses obs.Default.
	Obs *obs.Registry
	// Sink, when non-nil, receives one "regression" event per offending
	// function per checked window.
	Sink EventSink
}

// Detector judges fresh CPU summaries against a baseline, maintaining
// the profile_regression gauge (count of currently regressed functions)
// and emitting events for the rules engine.
type Detector struct {
	cfg DetectorConfig

	gRegressed *obs.Gauge   // profile_regression
	cChecks    *obs.Counter // profile_detector_checks_total
	cFlagged   *obs.Counter // profile_regressions_total

	mu   sync.Mutex
	last []Regression
}

// NewDetector builds a Detector over a loaded baseline.
func NewDetector(cfg DetectorConfig) *Detector {
	if cfg.Obs == nil {
		cfg.Obs = obs.Default
	}
	if cfg.Baseline.Kind == "" {
		cfg.Baseline.Kind = KindCPU
	}
	return &Detector{
		cfg:        cfg,
		gRegressed: cfg.Obs.Gauge("profile_regression"),
		cChecks:    cfg.Obs.Counter("profile_detector_checks_total"),
		cFlagged:   cfg.Obs.Counter("profile_regressions_total"),
	}
}

// Check judges one summary. Summaries of a kind other than the
// baseline's are ignored. The returned regressions (possibly none) also
// become Last's value and drive the gauge and sink.
func (d *Detector) Check(s Summary) []Regression {
	if s.Kind != d.cfg.Baseline.Kind {
		return nil
	}
	regs := CompareBaseline(d.cfg.Baseline, s, d.cfg.Factor, d.cfg.MinShare, d.cfg.NewShare)
	d.cChecks.Inc()
	d.gRegressed.Set(float64(len(regs)))
	d.mu.Lock()
	d.last = regs
	d.mu.Unlock()
	if len(regs) > 0 {
		d.cFlagged.Add(int64(len(regs)))
		if d.cfg.Sink != nil {
			for _, r := range regs {
				d.cfg.Sink.ProfileEvent(context.Background(), "regression", map[string]any{
					"process":  d.cfg.Baseline.Process,
					"function": r.Function,
					"share":    r.Share,
					"baseline": r.Baseline,
					"factor":   r.Factor,
				})
			}
		}
	}
	return regs
}

// Last returns the most recent check's regressions.
func (d *Detector) Last() []Regression {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Regression, len(d.last))
	copy(out, d.last)
	return out
}
