// Package uuid implements RFC 4122 version-4 UUIDs.
//
// Gallery abandons semantic versioning in favour of Git-style opaque
// identifiers (paper §3.4.1): every model and model instance is identified by
// a UUID, and all semantics live in searchable metadata. This package
// provides the identifier type, a cryptographically random generator for
// production use, and a deterministic seeded generator for tests and
// reproducible experiments.
package uuid

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"sync"
)

// UUID is a 128-bit RFC 4122 identifier.
type UUID [16]byte

// Nil is the zero UUID, used to mean "no identifier".
var Nil UUID

// ErrInvalid reports that a string is not a well-formed UUID.
var ErrInvalid = errors.New("uuid: invalid format")

// String renders the UUID in the canonical 8-4-4-4-12 form.
func (u UUID) String() string {
	var buf [36]byte
	hex.Encode(buf[0:8], u[0:4])
	buf[8] = '-'
	hex.Encode(buf[9:13], u[4:6])
	buf[13] = '-'
	hex.Encode(buf[14:18], u[6:8])
	buf[18] = '-'
	hex.Encode(buf[19:23], u[8:10])
	buf[23] = '-'
	hex.Encode(buf[24:36], u[10:16])
	return string(buf[:])
}

// IsNil reports whether u is the zero UUID.
func (u UUID) IsNil() bool { return u == Nil }

// MarshalText implements encoding.TextMarshaler.
func (u UUID) MarshalText() ([]byte, error) { return []byte(u.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (u *UUID) UnmarshalText(b []byte) error {
	parsed, err := Parse(string(b))
	if err != nil {
		return err
	}
	*u = parsed
	return nil
}

// Parse converts a canonical UUID string back to a UUID.
func Parse(s string) (UUID, error) {
	var u UUID
	if len(s) != 36 || s[8] != '-' || s[13] != '-' || s[18] != '-' || s[23] != '-' {
		return Nil, fmt.Errorf("%w: %q", ErrInvalid, s)
	}
	hexed := s[0:8] + s[9:13] + s[14:18] + s[19:23] + s[24:36]
	if _, err := hex.Decode(u[:], []byte(hexed)); err != nil {
		return Nil, fmt.Errorf("%w: %q", ErrInvalid, s)
	}
	return u, nil
}

// MustParse is Parse that panics on error, for use in tests and constants.
func MustParse(s string) UUID {
	u, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return u
}

// Generator produces UUIDs from an entropy source.
type Generator struct {
	mu  sync.Mutex
	src io.Reader
}

// NewGenerator returns a generator backed by crypto/rand.
func NewGenerator() *Generator { return &Generator{src: rand.Reader} }

// NewSeeded returns a deterministic generator for tests; the sequence of
// UUIDs depends only on seed.
func NewSeeded(seed int64) *Generator {
	return &Generator{src: mrand.New(mrand.NewSource(seed))}
}

// New returns the next version-4 UUID from the generator.
func (g *Generator) New() UUID {
	var u UUID
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, err := io.ReadFull(g.src, u[:]); err != nil {
		// crypto/rand never fails on supported platforms; a failure here
		// means the process cannot make identifiers at all.
		panic("uuid: entropy source failed: " + err.Error())
	}
	u[6] = (u[6] & 0x0f) | 0x40 // version 4
	u[8] = (u[8] & 0x3f) | 0x80 // RFC 4122 variant
	return u
}

var defaultGen = NewGenerator()

// New returns a version-4 UUID from the process-wide crypto/rand generator.
func New() UUID { return defaultGen.New() }
