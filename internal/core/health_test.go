package core

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestCompletenessFullMetadata(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x")) // harness fills all repro fields
	if _, err := h.g.InsertMetric(in.ID, "mape", ScopeValidation, 5); err != nil {
		t.Fatal(err)
	}
	rep, err := h.g.Completeness(in.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Score != 1.0 || len(rep.Missing) != 0 || !rep.HasMetrics {
		t.Fatalf("report = %+v", rep)
	}
}

func TestCompletenessSparseMetadata(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in, err := h.g.UploadInstance(InstanceSpec{ModelID: m.ID, Name: "bare"}, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.g.Completeness(in.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Only blob_location is present.
	if len(rep.Present) != 1 || rep.Present[0] != "blob_location" {
		t.Fatalf("present = %v", rep.Present)
	}
	if rep.Score >= 0.5 || rep.HasMetrics {
		t.Fatalf("report = %+v", rep)
	}
}

// driftSeries reports a production MAPE series: base for n1 points, then
// shifted for n2 points.
func driftSeries(t *testing.T, h *harness, in *Instance, base float64, n1 int, shifted float64, n2 int) {
	t.Helper()
	for i := 0; i < n1; i++ {
		h.clk.Advance(time.Minute)
		if _, err := h.g.InsertMetric(in.ID, "mape", ScopeProduction, base); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n2; i++ {
		h.clk.Advance(time.Minute)
		if _, err := h.g.InsertMetric(in.ID, "mape", ScopeProduction, shifted); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDriftDetected(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))
	driftSeries(t, h, in, 8.0, 30, 14.0, 10) // 75% degradation

	rep, err := h.g.CheckDrift(in.ID, DriftConfig{Metric: "mape"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drifted {
		t.Fatalf("drift not detected: %+v", rep)
	}
	if rep.BaselineMean != 8.0 || rep.RecentMean != 14.0 {
		t.Fatalf("means = %v / %v", rep.BaselineMean, rep.RecentMean)
	}
}

func TestNoDriftOnStableSeries(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))
	driftSeries(t, h, in, 8.0, 30, 8.4, 10) // 5% wiggle

	rep, err := h.g.CheckDrift(in.ID, DriftConfig{Metric: "mape"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drifted {
		t.Fatalf("false positive drift: %+v", rep)
	}
}

func TestDriftImprovementIsNotDrift(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))
	driftSeries(t, h, in, 8.0, 30, 4.0, 10) // error halved: better, not drift

	rep, err := h.g.CheckDrift(in.ID, DriftConfig{Metric: "mape"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drifted {
		t.Fatal("improvement flagged as drift")
	}
}

func TestDriftInsufficientHistory(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))
	driftSeries(t, h, in, 8.0, 5, 0, 0)
	rep, err := h.g.CheckDrift(in.ID, DriftConfig{Metric: "mape"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drifted || rep.Samples != 5 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Checked {
		t.Fatal("5 samples must not count as a verdict")
	}
}

func TestDriftCheckedOnVerdict(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))
	driftSeries(t, h, in, 8.0, 30, 8.1, 10)
	rep, err := h.g.CheckDrift(in.ID, DriftConfig{Metric: "mape"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Checked || rep.Drifted {
		t.Fatalf("report = %+v", rep)
	}
}

func TestDriftBaselineShorterThanRequested(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))
	// Only 4 baseline points available though the config asks for 30: the
	// check must still run over what exists rather than refuse or read out
	// of bounds.
	driftSeries(t, h, in, 8.0, 4, 16.0, 10)
	rep, err := h.g.CheckDrift(in.ID, DriftConfig{Metric: "mape", Window: 10, Baseline: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Checked || !rep.Drifted {
		t.Fatalf("report = %+v", rep)
	}
	if rep.BaselineMean != 8.0 || rep.RecentMean != 16.0 {
		t.Fatalf("means = %v / %v", rep.BaselineMean, rep.RecentMean)
	}
}

func TestDriftNearZeroBaselineMean(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))
	driftSeries(t, h, in, 0.0, 30, 0.5, 10) // baseline mean exactly zero
	rep, err := h.g.CheckDrift(in.ID, DriftConfig{Metric: "mape"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Checked || !rep.Drifted {
		t.Fatalf("report = %+v", rep)
	}
	if math.IsNaN(rep.Degradation) || math.IsInf(rep.Degradation, 0) {
		t.Fatalf("degradation = %v", rep.Degradation)
	}
}

func TestDriftRejectsNegativeThreshold(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))
	_, err := h.g.CheckDrift(in.ID, DriftConfig{Metric: "mape", Threshold: -0.1})
	if !errors.Is(err, ErrBadSpec) {
		t.Fatalf("err = %v, want ErrBadSpec", err)
	}
}

func TestDriftSmallExplicitThreshold(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))
	driftSeries(t, h, in, 8.0, 30, 8.4, 10) // 5% degradation
	// A tiny explicit threshold must be honored, not snapped to 0.25.
	rep, err := h.g.CheckDrift(in.ID, DriftConfig{Metric: "mape", Threshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drifted {
		t.Fatalf("threshold 0.01 ignored: %+v", rep)
	}
}

func TestDriftNeedsMetricName(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))
	if _, err := h.g.CheckDrift(in.ID, DriftConfig{}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("err = %v", err)
	}
}

func TestSkewDetected(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))
	if _, err := h.g.InsertMetric(in.ID, "mape", ScopeValidation, 8.0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.g.InsertMetric(in.ID, "mape", ScopeProduction, 13.0); err != nil {
		t.Fatal(err)
	}
	rep, err := h.g.CheckSkew(in.ID, SkewConfig{Metric: "mape"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Checked || !rep.Skewed {
		t.Fatalf("report = %+v", rep)
	}
	if rep.OfflineScope != ScopeValidation {
		t.Fatalf("offline scope = %s", rep.OfflineScope)
	}
}

func TestNoSkewWhenAligned(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))
	if _, err := h.g.InsertMetric(in.ID, "mape", ScopeValidation, 8.0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.g.InsertMetric(in.ID, "mape", ScopeProduction, 8.5); err != nil {
		t.Fatal(err)
	}
	rep, err := h.g.CheckSkew(in.ID, SkewConfig{Metric: "mape"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Checked || rep.Skewed {
		t.Fatalf("report = %+v", rep)
	}
}

func TestSkewFallsBackToTraining(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))
	if _, err := h.g.InsertMetric(in.ID, "mape", ScopeTraining, 6.0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.g.InsertMetric(in.ID, "mape", ScopeProduction, 6.1); err != nil {
		t.Fatal(err)
	}
	rep, err := h.g.CheckSkew(in.ID, SkewConfig{Metric: "mape"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Checked || rep.OfflineScope != ScopeTraining {
		t.Fatalf("report = %+v", rep)
	}
}

func TestSkewRejectsNegativeThreshold(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))
	_, err := h.g.CheckSkew(in.ID, SkewConfig{Metric: "mape", Threshold: -1})
	if !errors.Is(err, ErrBadSpec) {
		t.Fatalf("err = %v, want ErrBadSpec", err)
	}
}

func TestSkewSmallExplicitThreshold(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))
	if _, err := h.g.InsertMetric(in.ID, "mape", ScopeValidation, 8.0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.g.InsertMetric(in.ID, "mape", ScopeProduction, 8.5); err != nil {
		t.Fatal(err)
	}
	rep, err := h.g.CheckSkew(in.ID, SkewConfig{Metric: "mape", Threshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Checked || !rep.Skewed {
		t.Fatalf("threshold 0.01 ignored: %+v", rep)
	}
}

func TestSkewUncheckedWithoutBothSides(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))
	if _, err := h.g.InsertMetric(in.ID, "mape", ScopeValidation, 8.0); err != nil {
		t.Fatal(err)
	}
	rep, err := h.g.CheckSkew(in.ID, SkewConfig{Metric: "mape"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked || rep.Skewed {
		t.Fatalf("report = %+v", rep)
	}
}
