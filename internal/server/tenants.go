package server

// This file holds the multi-tenant admin endpoints (/v1/tenants) and the
// quota hooks the model/instance mutation paths call. Everything here is
// mounted and enforced only when Options.Tenants is set; without it the
// server runs exactly as before.

import (
	"context"
	"fmt"
	"net/http"

	"gallery/internal/api"
	"gallery/internal/tenant"
	"gallery/internal/uuid"
)

func (s *Server) tenantRoutes() {
	s.handle("POST /v1/tenants", s.handleCreateNamespace)
	s.handle("GET /v1/tenants", s.handleListNamespaces)
	s.handle("POST /v1/tenants/{ns}/quotas", s.handleSetQuotas)
	s.handle("POST /v1/tenants/{ns}/tokens", s.handleMintToken)
	s.handle("GET /v1/tenants/{ns}/tokens", s.handleListTokens)
	s.handle("DELETE /v1/tenants/{ns}/tokens/{id}", s.handleRevokeToken)
}

// admin resolves the caller for a tenant-admin request and enforces its
// scope: operators administer their own namespace; operators of the
// default namespace are instance admins and may administer any. The
// route-level role check (operator) already ran in the middleware.
func (s *Server) admin(r *http.Request, targetNS string) (tenant.Identity, error) {
	id, ok := s.tenants.ResolveRequest(r)
	if !ok {
		// Unreachable when the auth middleware is mounted; defensive.
		return tenant.Identity{}, fmt.Errorf("%w: no identity", tenant.ErrForbidden)
	}
	if id.Namespace != tenant.DefaultNamespace && targetNS != "" && targetNS != id.Namespace {
		return id, fmt.Errorf("%w: operator of %q cannot administer namespace %q", tenant.ErrForbidden, id.Namespace, targetNS)
	}
	return id, nil
}

func (s *Server) handleCreateNamespace(w http.ResponseWriter, r *http.Request) {
	// Creating namespaces is instance administration: default-ns only.
	id, err := s.admin(r, "")
	if err == nil && id.Namespace != tenant.DefaultNamespace {
		err = fmt.Errorf("%w: only %q operators create namespaces", tenant.ErrForbidden, tenant.DefaultNamespace)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	var req api.CreateNamespaceRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	ns := tenant.Namespace{
		Name:         req.Name,
		MaxModels:    req.MaxModels,
		MaxBlobBytes: req.MaxBlobBytes,
		RatePerSec:   req.RatePerSec,
		Burst:        req.Burst,
	}
	if err := s.tenants.CreateNamespace(r.Context(), ns); err != nil {
		writeErr(w, err)
		return
	}
	got, u, err := s.tenants.GetNamespace(req.Name)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, namespaceDTO(got, u))
}

func (s *Server) handleListNamespaces(w http.ResponseWriter, r *http.Request) {
	id, err := s.admin(r, "")
	if err != nil {
		writeErr(w, err)
		return
	}
	var out api.TenantsResponse
	for _, ns := range s.tenants.Namespaces() {
		// Own-namespace operators see only their tenant; instance admins
		// see the fleet.
		if id.Namespace != tenant.DefaultNamespace && ns.Name != id.Namespace {
			continue
		}
		u, _ := s.tenants.GetUsage(ns.Name)
		out.Namespaces = append(out.Namespaces, namespaceDTO(ns, u))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSetQuotas(w http.ResponseWriter, r *http.Request) {
	target := r.PathValue("ns")
	// Quota bounds are imposed on tenants, not chosen by them.
	id, err := s.admin(r, "")
	if err == nil && id.Namespace != tenant.DefaultNamespace {
		err = fmt.Errorf("%w: only %q operators set quotas", tenant.ErrForbidden, tenant.DefaultNamespace)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	var req api.SetQuotasRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if err := s.tenants.SetQuotas(r.Context(), target, req.MaxModels, req.MaxBlobBytes, req.RatePerSec, req.Burst); err != nil {
		writeErr(w, err)
		return
	}
	ns, u, err := s.tenants.GetNamespace(target)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, namespaceDTO(ns, u))
}

func (s *Server) handleMintToken(w http.ResponseWriter, r *http.Request) {
	target := r.PathValue("ns")
	if _, err := s.admin(r, target); err != nil {
		writeErr(w, err)
		return
	}
	var req api.MintTokenRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	role, err := tenant.ParseRole(req.Role)
	if err != nil {
		writeErr(w, err)
		return
	}
	secret, tok, err := s.tenants.MintToken(r.Context(), target, req.Name, role)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, api.MintTokenResponse{Secret: secret, Token: tokenDTO(tok)})
}

func (s *Server) handleListTokens(w http.ResponseWriter, r *http.Request) {
	target := r.PathValue("ns")
	if _, err := s.admin(r, target); err != nil {
		writeErr(w, err)
		return
	}
	var out api.TenantTokensResponse
	for _, tok := range s.tenants.Tokens(target) {
		out.Tokens = append(out.Tokens, tokenDTO(tok))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRevokeToken(w http.ResponseWriter, r *http.Request) {
	target := r.PathValue("ns")
	if _, err := s.admin(r, target); err != nil {
		writeErr(w, err)
		return
	}
	tokID := r.PathValue("id")
	// Scope the lookup to the namespace in the path so an operator cannot
	// revoke across tenants by guessing IDs.
	found := false
	for _, tok := range s.tenants.Tokens(target) {
		if tok.ID == tokID {
			found = true
			break
		}
	}
	if !found {
		writeErr(w, fmt.Errorf("%w: token %q in namespace %q", tenant.ErrNotFound, tokID, target))
		return
	}
	if err := s.tenants.RevokeToken(r.Context(), tokID); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func namespaceDTO(ns tenant.Namespace, u tenant.Usage) api.TenantNamespace {
	return api.TenantNamespace{
		Name:         ns.Name,
		MaxModels:    ns.MaxModels,
		MaxBlobBytes: ns.MaxBlobBytes,
		RatePerSec:   ns.RatePerSec,
		Burst:        ns.Burst,
		Models:       u.Models,
		BlobBytes:    u.BlobBytes,
		Created:      ns.Created,
	}
}

func tokenDTO(t tenant.Token) api.TenantToken {
	return api.TenantToken{
		ID:        t.ID,
		Name:      t.Name,
		Namespace: t.Namespace,
		Role:      t.Role.String(),
		Created:   t.Created,
		Revoked:   t.Revoked,
	}
}

// --- namespace ownership and quota hooks ---

// The middleware's role check is coarse (publisher may mutate); the
// helpers below add the fine-grained half of tenant isolation: a
// mutation must target a model the caller's namespace owns. Ownership
// derives from the model name's `team/` prefix (tenant.Split), and
// identities of the default namespace are exempt — they are instance
// admins and act across tenants, the same exemption the tenant-admin
// endpoints apply. All helpers are no-ops when auth is off.

// noRelease is the nil-tenant release func: quota was never reserved.
func noRelease() {}

// resolveIdentity returns the verified caller. Failure is unreachable
// when the auth middleware is mounted; defensive.
func (s *Server) resolveIdentity(r *http.Request) (tenant.Identity, error) {
	id, ok := s.tenants.ResolveRequest(r)
	if !ok {
		return tenant.Identity{}, fmt.Errorf("%w: no identity", tenant.ErrForbidden)
	}
	return id, nil
}

// authorizeModelWrite enforces namespace ownership of the named model
// for a mutation, returning the owning namespace for quota accounting.
func (s *Server) authorizeModelWrite(r *http.Request, modelName string) (owner string, err error) {
	if s.tenants == nil {
		return "", nil
	}
	id, err := s.resolveIdentity(r)
	if err != nil {
		return "", err
	}
	ns, _ := tenant.Split(modelName)
	if ns != id.Namespace && id.Namespace != tenant.DefaultNamespace {
		return "", fmt.Errorf("%w: model %q is owned by namespace %q, caller is %q",
			tenant.ErrForbidden, modelName, ns, id.Namespace)
	}
	return ns, nil
}

// authorizeModelIDWrite is authorizeModelWrite for ID-addressed routes:
// the model is resolved to find its owning namespace, so a token cannot
// reach another tenant's model just by knowing its UUID.
func (s *Server) authorizeModelIDWrite(r *http.Request, modelID uuid.UUID) (owner string, err error) {
	if s.tenants == nil {
		return "", nil
	}
	m, err := s.reg.GetModel(modelID)
	if err != nil {
		return "", err
	}
	return s.authorizeModelWrite(r, m.Name)
}

// authorizeInstanceWrite resolves an instance to the namespace owning
// its model and enforces ownership for a mutation.
func (s *Server) authorizeInstanceWrite(r *http.Request, instanceID uuid.UUID) (owner string, err error) {
	if s.tenants == nil {
		return "", nil
	}
	in, err := s.reg.GetInstance(instanceID)
	if err != nil {
		return "", err
	}
	return s.authorizeModelIDWrite(r, in.ModelID)
}

// reserveModelQuota validates ownership of a registration's `team/model`
// name and charges the slot to the model's OWNING namespace — not the
// caller's — so ownership and usage accounting never diverge when an
// instance admin registers on a tenant's behalf. Bare (unprefixed) names
// live in the default namespace, so only default-namespace callers may
// create them. The returned release undoes the reservation when the
// registration fails downstream.
func (s *Server) reserveModelQuota(r *http.Request, modelName string) (func(), error) {
	if s.tenants == nil {
		return noRelease, nil
	}
	ns, err := s.authorizeModelWrite(r, modelName)
	if err != nil {
		return nil, err
	}
	if err := s.tenants.ReserveModel(r.Context(), ns); err != nil {
		return nil, err
	}
	return func() { s.tenants.ReleaseModel(context.Background(), ns) }, nil
}

// releaseModelQuota returns a retired model's slot to its owning
// namespace. Called exactly once per active→deprecated transition.
func (s *Server) releaseModelQuota(ctx context.Context, owner string) {
	if s.tenants == nil || owner == "" {
		return
	}
	s.tenants.ReleaseModel(ctx, owner)
}

// reserveBlobQuota charges n blob bytes against the namespace owning the
// written-to model before the blob-first write begins, so concurrent
// uploads cannot jointly overshoot the quota; release returns the bytes
// when the write fails. owner is the namespace the ownership check
// returned ("" with auth off).
func (s *Server) reserveBlobQuota(ctx context.Context, owner string, n int64) (func(), error) {
	if s.tenants == nil {
		return noRelease, nil
	}
	if err := s.tenants.ReserveBlob(ctx, owner, n); err != nil {
		return nil, err
	}
	return func() { s.tenants.ReleaseBlob(context.Background(), owner, n) }, nil
}
