package experiments

import (
	"fmt"
	"strings"
	"time"

	"gallery/internal/core"
	"gallery/internal/rules"
)

// Experiments E9 and E14 — the paper's operational-cost claims:
//
//   - §4.2: "Gallery's model management solution with storage and
//     automation via rule engine has reduced model deployment from two
//     hours of engineering work per model to 0."
//   - §1/§4: before Gallery, "for about 100 models, engineers and data
//     scientists spent 1-2 hours a day manipulating files on HDFS and Git,
//     measuring performance and triggering model retraining."
//
// The experiment runs one daily management cycle over a fleet of models
// two ways. The manual arm executes the scripted pre-Gallery workflow and
// charges human minutes per step (costs from the paper's own accounting:
// ~100 models consuming 60–120 engineer-minutes daily ≈ 1 minute per model
// per day across the four recurring chores). The automated arm registers
// one action rule and counts the human steps that remain.

// Human-minute costs per manual step, calibrated so a 100-model fleet
// lands in the paper's reported 1–2 hours per day.
const (
	minutesLocateFiles  = 0.20 // find the right blob on HDFS / commit in Git
	minutesCopyBlob     = 0.25 // move/rename artifacts between systems
	minutesCheckMetrics = 0.20 // pull evaluation output, compare thresholds
	minutesDeployConfig = 0.25 // edit + ship the serving configuration
)

// DeploymentResult compares the two arms.
type DeploymentResult struct {
	Models int

	ManualSteps       int
	ManualMinutesDay  float64
	ManualHoursPerNew float64 // engineering effort to deploy one new model

	AutomatedHumanSteps int
	AutomatedMinutesDay float64
	EngineActions       int64
	Deployed            int
}

// DeploymentCost runs one daily cycle over a fleet of n models.
func DeploymentCost(n int) (*DeploymentResult, error) {
	res := &DeploymentResult{Models: n}

	// --- Manual arm: the scripted pre-Gallery workflow ---
	// Per model per day: locate artifacts, copy the retrained blob,
	// check its metrics against the threshold, and if it qualifies, edit
	// the serving config.
	for i := 0; i < n; i++ {
		res.ManualSteps += 4
		res.ManualMinutesDay += minutesLocateFiles + minutesCopyBlob + minutesCheckMetrics + minutesDeployConfig
	}
	// The paper separately reports ~2 engineer-hours to deploy one new
	// model end to end without automation (one-off scripting, config
	// review, rollout watching).
	res.ManualHoursPerNew = 2

	// --- Automated arm: Gallery + one action rule ---
	env := mustEnv(9)
	deployed := 0
	env.Engine.RegisterAction("deploy", func(*rules.ActionContext) error {
		deployed++
		return nil
	})
	rule := &rules.Rule{
		UUID: "auto-deploy", Team: "forecasting", Kind: rules.KindAction,
		When:    "metrics.mape < 10",
		Actions: []rules.ActionRef{{Action: "deploy"}},
	}
	if _, err := env.Repo.Commit("forecasting", "auto deploy", []*rules.Rule{rule}, nil); err != nil {
		return nil, err
	}
	res.AutomatedHumanSteps = 1 // the one-time rule commit

	m, err := env.Reg.RegisterModel(core.ModelSpec{
		BaseVersionID: "fleet", Project: "marketplace", Name: "forecaster", Domain: "UberX",
	})
	if err != nil {
		return nil, err
	}
	// The daily cycle: every model retrains and reports metrics; the rule
	// engine does the rest with zero human steps.
	for i := 0; i < n; i++ {
		env.Clock.Advance(time.Minute)
		in, err := env.Reg.UploadInstance(core.InstanceSpec{
			ModelID: m.ID, Name: "forecaster", City: fmt.Sprintf("city%03d", i),
		}, []byte("retrained"))
		if err != nil {
			return nil, err
		}
		mape := 5.0
		if i%10 == 0 {
			mape = 20.0 // every tenth model fails the gate and is not deployed
		}
		if _, err := env.Reg.InsertMetric(in.ID, "mape", core.ScopeProduction, mape); err != nil {
			return nil, err
		}
		env.Engine.MetricUpdated(in.ID)
	}
	res.Deployed = deployed
	res.AutomatedMinutesDay = 0
	res.EngineActions = env.Engine.Stats().ActionsRun
	return res, nil
}

// Format renders the comparison.
func (r *DeploymentResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d models, one daily management cycle\n", r.Models)
	fmt.Fprintf(&b, "%-12s %-14s %-18s %s\n", "arm", "human steps", "human minutes/day", "deploys")
	fmt.Fprintf(&b, "%-12s %-14d %-18.0f %s\n", "manual", r.ManualSteps, r.ManualMinutesDay, "(gated by hand)")
	fmt.Fprintf(&b, "%-12s %-14d %-18.0f %d (by rule engine)\n", "gallery", r.AutomatedHumanSteps, r.AutomatedMinutesDay, r.Deployed)
	fmt.Fprintf(&b, "per new model: %.0fh engineering manually vs 0h with rules (paper §4.2: \"two hours ... to 0\")\n", r.ManualHoursPerNew)
	fmt.Fprintf(&b, "paper §4: ~100 models took 1-2 hours/day manually; measured manual arm: %.1f hours/day\n", r.ManualMinutesDay/60)
	return b.String()
}
