// Package blobstore simulates the distributed object store (S3/HDFS at
// Uber) that Gallery uses for model-instance blobs.
//
// Gallery treats every model instance as an uninterpreted binary blob
// (paper §3.3.2) stored in a large-data service, with only the blob's
// location kept in metadata. This package reproduces the properties that
// matter to Gallery's design:
//
//   - opaque put/get/delete keyed by caller-chosen names, returning
//     location strings that go into metadata;
//   - replication across N independent backends;
//   - end-to-end checksums so corrupt replicas are detected and skipped;
//   - a latency model so experiments can account for blob-store round
//     trips without real network I/O; and
//   - deterministic fault injection, which the DAL consistency experiments
//     (paper §3.5: "we always write model blobs first") rely on.
package blobstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"gallery/internal/obs"
)

// Sentinel errors.
var (
	ErrNotFound = errors.New("blobstore: blob not found")
	ErrCorrupt  = errors.New("blobstore: blob failed checksum verification")
	ErrBadLoc   = errors.New("blobstore: malformed location")
)

// OpKind identifies an operation for fault injection.
type OpKind uint8

// Operations visible to fault hooks.
const (
	OpPut OpKind = iota + 1
	OpGet
	OpDelete
)

// FaultHook, when non-nil, is consulted before every per-replica operation;
// returning an error makes that operation fail. Hooks enable deterministic
// crash and partial-failure experiments.
type FaultHook func(op OpKind, replica int, key string) error

// LatencyModel charges simulated time per operation. The charge is recorded
// in Stats; it is only slept when Sleep is true, so benchmarks can model a
// remote store without wall-clock cost.
type LatencyModel struct {
	Base  time.Duration // per operation
	PerKB time.Duration // per KiB transferred
	Sleep bool
}

// cost computes the simulated charge for an operation without sleeping —
// used both by charge and by trace attribution.
func (m LatencyModel) cost(bytes int) time.Duration {
	return m.Base + time.Duration(bytes/1024)*m.PerKB
}

func (m LatencyModel) charge(bytes int) time.Duration {
	d := m.cost(bytes)
	if m.Sleep && d > 0 {
		time.Sleep(d)
	}
	return d
}

// Options configures a Store.
type Options struct {
	// Replicas is the number of independent backends (default 3).
	Replicas int
	// Latency models per-operation cost.
	Latency LatencyModel
	// Hook injects faults; nil disables injection.
	Hook FaultHook
}

// Stats counts store activity. Latency is the total simulated time charged.
type Stats struct {
	Puts, Gets, Deletes int64
	BytesIn, BytesOut   int64
	CorruptSkips        int64
	Latency             time.Duration
}

// backend stores framed blobs (4-byte CRC32C prefix + payload) by key.
type backend interface {
	put(key string, framed []byte) error
	get(key string) ([]byte, error)
	delete(key string) error
	keys() []string
}

// Store is a replicated blob store. It is safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	replicas []backend
	opts     Options
	stats    Stats
	scheme   string
	mx       storeMetrics
}

// storeMetrics holds the obs handles for one store. Latency histograms
// include time spent on injected failures, so fault-heavy experiments
// show up in the tail.
type storeMetrics struct {
	putSeconds, getSeconds, delSeconds *obs.Histogram
	putErrors, getErrors, delErrors    *obs.Counter
	corruptSkips                       *obs.Counter
}

func newStoreMetrics(reg *obs.Registry) storeMetrics {
	if reg == nil {
		reg = obs.Default
	}
	return storeMetrics{
		putSeconds:   reg.Histogram(obs.Name("blobstore_op_seconds", "op", "put"), obs.LatencyBuckets),
		getSeconds:   reg.Histogram(obs.Name("blobstore_op_seconds", "op", "get"), obs.LatencyBuckets),
		delSeconds:   reg.Histogram(obs.Name("blobstore_op_seconds", "op", "delete"), obs.LatencyBuckets),
		putErrors:    reg.Counter(obs.Name("blobstore_op_errors_total", "op", "put")),
		getErrors:    reg.Counter(obs.Name("blobstore_op_errors_total", "op", "get")),
		delErrors:    reg.Counter(obs.Name("blobstore_op_errors_total", "op", "delete")),
		corruptSkips: reg.Counter("blobstore_corrupt_skips_total"),
	}
}

// Instrument redirects the store's metrics to reg (default obs.Default).
// Call before serving traffic.
func (s *Store) Instrument(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mx = newStoreMetrics(reg)
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// NewMemory returns a Store with in-memory replicas.
func NewMemory(opts Options) *Store {
	opts = normalize(opts)
	reps := make([]backend, opts.Replicas)
	for i := range reps {
		reps[i] = &memBackend{blobs: make(map[string][]byte)}
	}
	return &Store{replicas: reps, opts: opts, scheme: "mem", mx: newStoreMetrics(nil)}
}

// NewDisk returns a Store whose replicas live in subdirectories of dir.
func NewDisk(dir string, opts Options) (*Store, error) {
	opts = normalize(opts)
	reps := make([]backend, opts.Replicas)
	for i := range reps {
		sub := filepath.Join(dir, fmt.Sprintf("r%d", i))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("blobstore: create replica dir: %w", err)
		}
		reps[i] = &diskBackend{dir: sub}
	}
	return &Store{replicas: reps, opts: opts, scheme: "disk", mx: newStoreMetrics(nil)}, nil
}

func normalize(opts Options) Options {
	if opts.Replicas <= 0 {
		opts.Replicas = 3
	}
	return opts
}

// frame prefixes data with its CRC32C so corruption is detectable
// end-to-end regardless of backend.
func frame(data []byte) []byte {
	out := make([]byte, 4+len(data))
	binary.LittleEndian.PutUint32(out[:4], crc32.Checksum(data, crcTable))
	copy(out[4:], data)
	return out
}

// unframe verifies and strips the checksum prefix.
func unframe(framed []byte) ([]byte, error) {
	if len(framed) < 4 {
		return nil, ErrCorrupt
	}
	want := binary.LittleEndian.Uint32(framed[:4])
	data := framed[4:]
	if crc32.Checksum(data, crcTable) != want {
		return nil, ErrCorrupt
	}
	return data, nil
}

// Put stores data under key on every replica and returns its location.
// A failure on any replica fails the put: Gallery prefers a clean failure
// it can retry over a blob it cannot trust to be durable.
func (s *Store) Put(key string, data []byte) (string, error) {
	start := time.Now()
	if key == "" || strings.ContainsAny(key, "/\\") {
		return "", fmt.Errorf("blobstore: invalid key %q", key)
	}
	framed := frame(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.mx.putSeconds.ObserveSince(start)
	for i, r := range s.replicas {
		if s.opts.Hook != nil {
			if err := s.opts.Hook(OpPut, i, key); err != nil {
				s.mx.putErrors.Inc()
				return "", fmt.Errorf("blobstore: put %s replica %d: %w", key, i, err)
			}
		}
		if err := r.put(key, framed); err != nil {
			s.mx.putErrors.Inc()
			return "", fmt.Errorf("blobstore: put %s replica %d: %w", key, i, err)
		}
	}
	s.stats.Puts++
	s.stats.BytesIn += int64(len(data))
	s.stats.Latency += s.opts.Latency.charge(len(data) * len(s.replicas))
	return s.location(key), nil
}

// location renders the stable location string stored in Gallery metadata.
func (s *Store) location(key string) string { return s.scheme + "://gallery/" + key }

// Key extracts the blob key from a location produced by this store.
func (s *Store) Key(location string) (string, error) {
	prefix := s.scheme + "://gallery/"
	if !strings.HasPrefix(location, prefix) || len(location) == len(prefix) {
		return "", fmt.Errorf("%w: %q", ErrBadLoc, location)
	}
	return location[len(prefix):], nil
}

// Get retrieves the blob at location, trying replicas in order and skipping
// any that are missing or corrupt.
func (s *Store) Get(location string) ([]byte, error) {
	start := time.Now()
	key, err := s.Key(location)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.mx.getSeconds.ObserveSince(start)
	var lastErr error = ErrNotFound
	for i, r := range s.replicas {
		if s.opts.Hook != nil {
			if err := s.opts.Hook(OpGet, i, key); err != nil {
				lastErr = err
				continue
			}
		}
		framed, err := r.get(key)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := unframe(framed)
		if err != nil {
			s.stats.CorruptSkips++
			s.mx.corruptSkips.Inc()
			lastErr = err
			continue
		}
		s.stats.Gets++
		s.stats.BytesOut += int64(len(data))
		s.stats.Latency += s.opts.Latency.charge(len(data))
		return data, nil
	}
	s.mx.getErrors.Inc()
	return nil, fmt.Errorf("blobstore: get %s: %w", key, lastErr)
}

// Delete removes the blob from every replica. Missing replicas are ignored
// so deletes are idempotent, but a blob absent everywhere is ErrNotFound.
func (s *Store) Delete(location string) error {
	start := time.Now()
	key, err := s.Key(location)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.mx.delSeconds.ObserveSince(start)
	found := false
	for i, r := range s.replicas {
		if s.opts.Hook != nil {
			if err := s.opts.Hook(OpDelete, i, key); err != nil {
				s.mx.delErrors.Inc()
				return fmt.Errorf("blobstore: delete %s replica %d: %w", key, i, err)
			}
		}
		if err := r.delete(key); err == nil {
			found = true
		}
	}
	if !found {
		s.mx.delErrors.Inc()
		return fmt.Errorf("blobstore: delete %s: %w", key, ErrNotFound)
	}
	s.stats.Deletes++
	s.stats.Latency += s.opts.Latency.charge(0)
	return nil
}

// Keys lists every key present on at least one replica, sorted. The DAL's
// orphan-blob garbage collector uses this to find blobs whose metadata
// write never happened.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := make(map[string]bool)
	for _, r := range s.replicas {
		for _, k := range r.keys() {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Location returns the location string a key would have in this store.
func (s *Store) Location(key string) string { return s.location(key) }

// Stats returns a snapshot of activity counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// CorruptReplica flips a byte of key's payload on one replica, for tests
// exercising checksum-based replica fail-over. It returns ErrNotFound if
// that replica has no such blob.
func (s *Store) CorruptReplica(replica int, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if replica < 0 || replica >= len(s.replicas) {
		return fmt.Errorf("blobstore: no replica %d", replica)
	}
	framed, err := s.replicas[replica].get(key)
	if err != nil {
		return err
	}
	framed[len(framed)-1] ^= 0xFF
	return s.replicas[replica].put(key, framed)
}

// memBackend keeps framed blobs in a map.
type memBackend struct {
	blobs map[string][]byte
}

func (b *memBackend) put(key string, framed []byte) error {
	cp := make([]byte, len(framed))
	copy(cp, framed)
	b.blobs[key] = cp
	return nil
}

func (b *memBackend) get(key string) ([]byte, error) {
	framed, ok := b.blobs[key]
	if !ok {
		return nil, ErrNotFound
	}
	cp := make([]byte, len(framed))
	copy(cp, framed)
	return cp, nil
}

func (b *memBackend) delete(key string) error {
	if _, ok := b.blobs[key]; !ok {
		return ErrNotFound
	}
	delete(b.blobs, key)
	return nil
}

func (b *memBackend) keys() []string {
	out := make([]string, 0, len(b.blobs))
	for k := range b.blobs {
		out = append(out, k)
	}
	return out
}

// diskBackend stores each framed blob as one file.
type diskBackend struct {
	dir string
}

func (b *diskBackend) path(key string) string { return filepath.Join(b.dir, key) }

func (b *diskBackend) put(key string, framed []byte) error {
	// Write-then-rename so a crash never leaves a half-written visible blob.
	tmp := b.path(key) + ".tmp"
	if err := os.WriteFile(tmp, framed, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, b.path(key))
}

func (b *diskBackend) get(key string) ([]byte, error) {
	data, err := os.ReadFile(b.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNotFound
	}
	return data, err
}

func (b *diskBackend) delete(key string) error {
	err := os.Remove(b.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return ErrNotFound
	}
	return err
}

func (b *diskBackend) keys() []string {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && !strings.HasSuffix(e.Name(), ".tmp") {
			out = append(out, e.Name())
		}
	}
	return out
}
