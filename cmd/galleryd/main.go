// Command galleryd runs the Gallery model-management service: a stateless
// JSON/HTTP server over a durable metadata store (write-ahead logged) and
// a replicated blob store, with the orchestration rule engine attached.
//
// Usage:
//
//	galleryd -addr :8440 -data /var/lib/gallery
//	galleryd -addr :8440 -mem            # volatile, for demos
//	galleryd -addr :8440 -mem -access-log  # JSON access log on stderr
//	galleryd -addr :8440 -auth           # multi-tenant: bearer tokens, roles, quotas
//	galleryd -addr :8440 -auth -token-file tokens.json  # with pre-shared credentials
//
// With -auth and no existing tokens, a bootstrap operator token for the
// "default" namespace is minted and its secret printed once at startup.
//
// An SLO evaluator ticks every -slo-interval, judging declared burn-rate
// objectives (POST /v1/slo, `galleryctl slo`) against the per-tenant RED
// metrics; metrics are scrapable at GET /v1/debug/metrics/prom.
//
// On SIGINT/SIGTERM the server drains, dumps the full metric registry
// snapshot (the same JSON served at /v1/debug/metrics) to stderr, and
// exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"gallery/internal/blobstore"
	"gallery/internal/core"
	"gallery/internal/health"
	"gallery/internal/incident"
	"gallery/internal/obs"
	"gallery/internal/obs/httpmw"
	obslog "gallery/internal/obs/log"
	"gallery/internal/obs/profile"
	"gallery/internal/obs/trace"
	"gallery/internal/relstore"
	"gallery/internal/rules"
	"gallery/internal/server"
	"gallery/internal/slo"
	"gallery/internal/tenant"
	"gallery/internal/wal"
)

func main() {
	var (
		addr      = flag.String("addr", ":8440", "listen address")
		dataDir   = flag.String("data", "gallery-data", "data directory for metadata WAL and blob replicas")
		mem       = flag.Bool("mem", false, "run fully in memory (no durability)")
		fsync     = flag.Bool("fsync", false, "fsync the metadata WAL on every write")
		workers   = flag.Int("workers", 4, "rule engine worker goroutines")
		compact   = flag.Int64("compact-mb", 256, "compact the metadata WAL at startup when larger than this many MiB (0 disables)")
		accessLog = flag.Bool("access-log", false, "write a JSON access-log line per request to stderr")
		dumpStats = flag.Bool("dump-metrics", true, "dump the metric registry snapshot to stderr on shutdown")
		traceSpec = flag.String("trace-sample", "errslow:250ms", "trace sampler: never | always | errslow:<dur> | <probability 0..1>")
		traceCap  = flag.Int("trace-buffer", 256, "completed traces kept for /v1/debug/traces")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /v1/debug/pprof/ (profiles can leak memory contents; opt-in)")

		healthEvery   = flag.Duration("health-interval", 30*time.Second, "model-health evaluation period (negative disables the monitor loop)")
		healthRefWins = flag.Int("health-ref-windows", 3, "observation windows that form a model's reference distribution")
		healthKeep    = flag.Int("health-keep-windows", 48, "persisted health windows kept per model")
		healthMetric  = flag.String("health-metric", "mape", "production error metric for the monitor's drift/skew checks")

		sloEvery = flag.Duration("slo-interval", 15*time.Second, "SLO burn-rate evaluation period (negative disables the evaluator)")

		incKeep     = flag.Int("incident-keep", 32, "incident bundles retained before the oldest are pruned (negative disables pruning)")
		incDebounce = flag.Duration("incident-debounce", 5*time.Minute, "minimum interval between captures of the same scope (negative disables)")
		incGateway  = flag.String("incident-gateway", "", "serving gateway base URL pulled into incident bundles via GET /v1/debug/bundle (empty: local snapshot only)")
		incGwToken  = flag.String("incident-gateway-token", "", "bearer token for the incident gateway pull when the gateway runs -auth")

		profEvery    = flag.Duration("profile-interval", profile.DefaultInterval, "continuous-profiler cycle period (negative disables the capture loop)")
		profWindow   = flag.Duration("profile-window", profile.DefaultWindow, "CPU sampling window per profiler cycle")
		profHz       = flag.Int("profile-hz", profile.DefaultHz, "CPU profile sample rate")
		profBaseline = flag.String("profile-baseline", "", "per-process CPU baseline JSON (PROFILE_galleryd.json); regressions against it raise profile.regression rule events")
		profFactor   = flag.Float64("profile-factor", profile.DefaultFactor, "flag a function when its CPU self-share exceeds baseline by this factor")
		mutexFrac    = flag.Int("mutex-profile-fraction", 0, "runtime.SetMutexProfileFraction: sample 1/n mutex contention events (0 disables)")
		blockRate    = flag.Int("block-profile-rate", 0, "runtime.SetBlockProfileRate: sample blocking events >= n ns (0 disables)")

		logLevel  = flag.String("log-level", "info", "min level entering the /v1/debug/logs ring: debug|info|warn|error")
		logBuffer = flag.Int("log-buffer", 1024, "structured log lines kept for /v1/debug/logs")
		auditKeep = flag.Int("audit-keep", 256, "audit events retained per entity (negative disables pruning)")

		authOn    = flag.Bool("auth", false, "enforce the multi-tenant control plane: bearer tokens, roles, quotas, rate limits")
		tokenFile = flag.String("token-file", "", "JSON seed of namespaces and pre-shared tokens applied at boot (see internal/tenant.Seed)")
	)
	flag.Parse()

	sampler, serr := trace.ParseSampler(*traceSpec)
	if serr != nil {
		log.Fatalf("galleryd: %v", serr)
	}
	tracer := trace.New(trace.Options{Service: "galleryd", Sampler: sampler, Capacity: *traceCap})

	var (
		meta  *relstore.Store
		blobs *blobstore.Store
		err   error
	)
	if *mem {
		meta = relstore.NewMemory()
		blobs = blobstore.NewMemory(blobstore.Options{})
	} else {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Fatalf("galleryd: create data dir: %v", err)
		}
		walPath := filepath.Join(*dataDir, "meta.wal")
		meta, err = relstore.Open(walPath, wal.Options{Sync: *fsync})
		if err != nil {
			log.Fatalf("galleryd: open metadata store: %v", err)
		}
		defer meta.Close()
		if *compact > 0 && meta.LogSize() > *compact<<20 {
			before := meta.LogSize()
			if err := meta.Compact(walPath); err != nil {
				log.Fatalf("galleryd: compact metadata WAL: %v", err)
			}
			log.Printf("galleryd: compacted metadata WAL %d -> %d bytes", before, meta.LogSize())
		}
		blobs, err = blobstore.NewDisk(filepath.Join(*dataDir, "blobs"), blobstore.Options{})
		if err != nil {
			log.Fatalf("galleryd: open blob store: %v", err)
		}
	}

	reg, err := core.New(meta, blobs, core.Options{AuditKeep: *auditKeep})
	if err != nil {
		log.Fatalf("galleryd: init registry: %v", err)
	}
	repo := rules.NewRepo(nil)
	engine := rules.NewEngine(reg, repo, nil)
	// "deploy" closes the loop with the serving tier: a rule firing it
	// promotes the triggering instance, and every watching gateway hot-swaps
	// to it on its next refresh.
	engine.RegisterAction("deploy", rules.DeployAction(reg))

	// Lock-contention profiles are opt-in: sampling costs a little on every
	// contended mutex/blocking op, so the default leaves both off and the
	// profiler's mutex/block summaries empty.
	if *mutexFrac > 0 {
		runtime.SetMutexProfileFraction(*mutexFrac)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}

	// Continuous profiling: the local capture loop exports into the fleet
	// store (which gateways also ship into over POST /v1/debug/profile),
	// and a baseline-armed detector turns hot-path regressions into
	// profile.regression rule events.
	fleet := profile.NewFleet(0)
	var detector *profile.Detector
	if *profBaseline != "" {
		base, err := profile.LoadBaseline(*profBaseline)
		if err != nil {
			log.Fatalf("galleryd: load profile baseline: %v", err)
		}
		detector = profile.NewDetector(profile.DetectorConfig{
			Baseline: base,
			Factor:   *profFactor,
			Sink:     engine,
		})
	}
	profiler := profile.New(profile.Config{
		Process:  "galleryd",
		Window:   *profWindow,
		Interval: *profEvery,
		Hz:       *profHz,
		Detector: detector,
		Exporter: fleet,
	})
	if *profEvery > 0 {
		profiler.Start()
		defer profiler.Stop()
	}

	// Structured logs land in a bounded in-memory ring served at
	// GET /v1/debug/logs, trace-correlated; -access-log additionally tees
	// them to stderr as JSON lines. Built before the flight recorder so
	// bundles can tail it.
	logRing := obslog.NewRing(*logBuffer)

	// The incident flight recorder: SLO burns, health degradations, the
	// "capture" rule action, and POST /v1/incidents snapshot the process's
	// observability state into durable bundles, debounced per scope. The
	// health monitor and SLO evaluator are bound after construction — they
	// want the recorder as a sink, the recorder wants their state in
	// bundles.
	recorder, err := incident.Open(reg.DAL(), incident.Config{
		Tracer:       tracer,
		Logs:         logRing,
		Audit:        reg.Audit(),
		Profiles:     profiler.Ring(),
		Gateway:      *incGateway,
		GatewayToken: *incGwToken,
		Keep:         *incKeep,
		Debounce:     *incDebounce,
	})
	if err != nil {
		log.Fatalf("galleryd: open incident recorder: %v", err)
	}
	engine.RegisterAction("capture", incident.CaptureAction(recorder))
	engine.Start(*workers)
	defer engine.Stop()

	// Continuous model health: gateways flush distribution sketches in,
	// the monitor judges them on a ticker, and degradations feed the rule
	// engine as health.* events (and the flight recorder on degradation).
	monitor := health.New(reg, health.Config{
		Metric:           *healthMetric,
		ReferenceWindows: *healthRefWins,
		KeepWindows:      *healthKeep,
		Interval:         *healthEvery,
		Events:           engine,
		Transitions:      recorder,
	})
	if err := monitor.Recover(); err != nil {
		log.Fatalf("galleryd: recover health windows: %v", err)
	}
	monitor.Start()
	defer monitor.Stop()
	recorder.BindHealth(monitor)

	opts := server.Options{
		Tracer: tracer, Pprof: *pprofOn, Health: monitor,
		Logs:      logRing,
		LogLevel:  obslog.ParseLevel(*logLevel),
		Incidents: recorder,
		Profiles:  fleet,
	}
	if *authOn {
		// The control plane shares the metadata store, so namespaces,
		// token hashes, and quota usage replay out of the same WAL the
		// models do.
		tm, err := tenant.Open(meta, tenant.Options{Audit: reg.Audit()})
		if err != nil {
			log.Fatalf("galleryd: open tenant control plane: %v", err)
		}
		if *tokenFile != "" {
			seed, err := tenant.LoadSeed(*tokenFile)
			if err != nil {
				log.Fatalf("galleryd: %v", err)
			}
			if err := tm.ApplySeed(context.Background(), seed); err != nil {
				log.Fatalf("galleryd: apply token file: %v", err)
			}
		}
		if tm.TokenCount() == 0 {
			// First authed boot with no credentials would lock everyone
			// out; mint the bootstrap admin and print the secret exactly
			// once (it is never stored).
			secret, tok, err := tm.MintToken(context.Background(), tenant.DefaultNamespace, "bootstrap-admin", tenant.RoleOperator)
			if err != nil {
				log.Fatalf("galleryd: mint bootstrap token: %v", err)
			}
			fmt.Printf("galleryd: minted bootstrap operator token %s — save this secret, it is shown once:\n%s\n", tok.ID, secret)
		}
		opts.Tenants = tm
	} else if *tokenFile != "" {
		log.Fatalf("galleryd: -token-file requires -auth")
	}
	if *accessLog {
		opts.AccessLog = os.Stderr
	}

	// The SLO evaluator reads the per-tenant RED vectors the HTTP
	// middleware records (NewRED is get-or-create, so these are the same
	// series the server increments) and persists objectives over the
	// shared WAL. Only namespace-scoped objectives are evaluable here:
	// the predict RED vectors that back model scope live in the serving
	// gateway's process, so model-scoped creates are rejected with
	// slo.ErrNoSource rather than accepted and left at no-data (the
	// gateway-embedded evaluator — see experiments.Sloburn — is where
	// model burns fire the rules engine).
	red := httpmw.NewRED(obs.Default)
	sloSvc, err := slo.Open(meta, slo.VecSource{
		Requests: red.Requests, Errors: red.Errors, Latency: red.Latency,
	}, slo.Config{
		Tick:  *sloEvery,
		Obs:   obs.Default,
		Audit: reg.Audit(),
		Burns: recorder,
	})
	if err != nil {
		log.Fatalf("galleryd: open slo store: %v", err)
	}
	if *sloEvery > 0 {
		sloSvc.Start()
		defer sloSvc.Stop()
	}
	opts.SLO = sloSvc
	recorder.BindSLO(sloSvc)

	srv := server.NewWith(reg, repo, engine, opts)
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	models, instances, metrics := reg.Counts()
	fmt.Printf("galleryd: serving on %s (models=%d instances=%d metrics=%d, durable=%v)\n",
		*addr, models, instances, metrics, !*mem)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("galleryd: %v", err)
		}
	case sig := <-sigCh:
		log.Printf("galleryd: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("galleryd: shutdown: %v", err)
		}
		cancel()
		srv.Flush() // drain queued rule-engine events before stopping
	}

	if *dumpStats {
		fmt.Fprintln(os.Stderr, "galleryd: final metrics snapshot:")
		if err := obs.Default.WriteJSON(os.Stderr); err != nil {
			log.Printf("galleryd: dump metrics: %v", err)
		}
	}
}
