// Package profile is Gallery's always-on continuous profiler. Where the
// flag-gated pprof endpoints answer "what is hot right now, if someone is
// looking", this package answers "what was hot over the last hour" with
// bounded memory and negligible steady-state cost: a background loop
// captures a short windowed CPU profile every interval (10s of sampling
// per minute by default) plus point-in-time heap/goroutine/mutex/block
// snapshots, folds each profile into a compact top-N per-function summary
// (parsed straight from the runtime's pprof protobuf — no dependencies),
// and retains a ring of summaries per kind.
//
// The summaries are fleet-aware: a gateway ships its ring to galleryd
// (HTTPExporter, the trace-export pattern) where a Fleet store serves the
// merged per-process view at GET /v1/debug/profile. A Detector compares
// each fresh CPU window against a checked-in per-process baseline
// (PROFILE_<process>.json) and raises profile.regression events into the
// rules engine when a function's self-share blows past its baseline — so
// a hot-path regression pages machinery, not a human rereading BENCH
// files. The incident Recorder embeds the ring in bundles, giving every
// capture pre-trigger history.
package profile

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"gallery/internal/obs"
)

// Profile kinds.
const (
	KindCPU       = "cpu"
	KindHeap      = "heap"
	KindGoroutine = "goroutine"
	KindMutex     = "mutex"
	KindBlock     = "block"
)

// Defaults; Config fields of 0 take these.
const (
	DefaultWindow   = 10 * time.Second
	DefaultInterval = 60 * time.Second
	DefaultHz       = 100
	DefaultTopN     = 20
	DefaultKeep     = 32
)

// defaultKinds are the snapshot profiles captured each cycle alongside
// the CPU window.
var defaultKinds = []string{KindHeap, KindGoroutine, KindMutex, KindBlock}

// FuncStat is one function's aggregate within a summary. Self is the
// value sampled with the function as the leaf frame; Cum counts samples
// the function appears anywhere in. Shares are fractions of the
// summary's Total.
type FuncStat struct {
	Name      string  `json:"name"`
	Self      int64   `json:"self"`
	Cum       int64   `json:"cum"`
	SelfShare float64 `json:"self_share"`
	CumShare  float64 `json:"cum_share"`
}

// Summary is one profile window (or point-in-time snapshot) folded to
// its top-N functions. Unit names what the values count: "nanoseconds"
// for cpu/mutex/block, "bytes" for heap, "count" for goroutines.
type Summary struct {
	Kind       string     `json:"kind"`
	Start      time.Time  `json:"start"`
	End        time.Time  `json:"end"`
	Unit       string     `json:"unit,omitempty"`
	Total      int64      `json:"total"`
	Samples    int64      `json:"samples"`
	DurationNS int64      `json:"duration_ns,omitempty"`
	Top        []FuncStat `json:"top"`
}

// Exporter ships freshly captured summaries toward the fleet view —
// *HTTPExporter over the wire from a gateway, *Fleet in-process on
// galleryd. Implementations must not block: exports happen on the
// capture loop.
type Exporter interface {
	Export(process string, summaries []Summary)
}

// Config tunes a Profiler.
type Config struct {
	// Process names this process in exports and fleet views
	// ("galleryd" | "galleryserve").
	Process string
	// Window is the CPU sampling window per cycle (default 10s).
	Window time.Duration
	// Interval is the cycle period (default 60s). Window is clamped to
	// Interval when an operator configures them inverted.
	Interval time.Duration
	// Hz is the CPU sample rate (default 100). Non-default rates are set
	// before StartCPUProfile, which pins 100 itself; the pre-set rate
	// wins, at the cost of one runtime warning line on stderr per window.
	Hz int
	// TopN bounds functions retained per summary (default 20).
	TopN int
	// Keep bounds summaries retained per kind (default 32 — about half an
	// hour of CPU windows at the default cadence).
	Keep int
	// Kinds are the snapshot profiles captured each cycle (default heap,
	// goroutine, mutex, block).
	Kinds []string
	// Obs receives the profile_* counters; nil uses obs.Default.
	Obs *obs.Registry
	// Detector, when non-nil, checks each fresh CPU summary for
	// regressions against its baseline.
	Detector *Detector
	// Exporter, when non-nil, receives each cycle's summaries.
	Exporter Exporter
}

// Profiler runs the capture loop. All methods are safe for concurrent
// use. Only one CPU profile can run per process — when something else
// (an operator's /v1/debug/pprof/profile pull) holds it, the window is
// skipped and counted, never fought over.
type Profiler struct {
	cfg  Config
	ring *Ring

	cWindows *obs.Counter // profile_windows_total
	cErrors  *obs.Counter // profile_capture_errors_total

	startOnce sync.Once
	stopOnce  sync.Once
	quit      chan struct{}
	done      chan struct{}
}

// New builds a Profiler; Start begins the capture loop.
func New(cfg Config) *Profiler {
	if cfg.Process == "" {
		cfg.Process = "galleryd"
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Window > cfg.Interval {
		cfg.Window = cfg.Interval
	}
	if cfg.Hz <= 0 {
		cfg.Hz = DefaultHz
	}
	if cfg.TopN <= 0 {
		cfg.TopN = DefaultTopN
	}
	if cfg.Keep <= 0 {
		cfg.Keep = DefaultKeep
	}
	if cfg.Kinds == nil {
		cfg.Kinds = defaultKinds
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.Default
	}
	return &Profiler{
		cfg:      cfg,
		ring:     NewRing(cfg.Keep),
		cWindows: cfg.Obs.Counter("profile_windows_total"),
		cErrors:  cfg.Obs.Counter("profile_capture_errors_total"),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Process reports the configured process name.
func (p *Profiler) Process() string { return p.cfg.Process }

// Ring exposes the retained summaries — the debug endpoint's and the
// incident recorder's view of this profiler.
func (p *Profiler) Ring() *Ring { return p.ring }

// Start launches the background capture loop. The first cycle begins
// immediately so a fresh daemon has data within one window.
func (p *Profiler) Start() {
	p.startOnce.Do(func() { go p.loop() })
}

// Stop interrupts an in-flight CPU window and halts the loop. Safe to
// call twice; also safe on a never-started profiler.
func (p *Profiler) Stop() {
	p.stopOnce.Do(func() { close(p.quit) })
	p.startOnce.Do(func() { close(p.done) }) // never started: nothing to wait for
	<-p.done
}

func (p *Profiler) loop() {
	defer close(p.done)
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	p.CaptureCycle()
	for {
		select {
		case <-t.C:
			p.CaptureCycle()
		case <-p.quit:
			return
		}
	}
}

// CaptureCycle runs one full cycle synchronously — a CPU window plus the
// snapshot kinds — adding every summary to the ring, consulting the
// detector, and exporting. Exposed so tests and experiments drive the
// profiler deterministically without the ticker.
func (p *Profiler) CaptureCycle() []Summary {
	var out []Summary
	if s, err := p.captureCPU(); err == nil {
		out = append(out, s)
	} else {
		p.cErrors.Inc()
	}
	out = append(out, p.CaptureSnapshots(time.Now())...)
	for _, s := range out {
		p.ring.Add(s)
	}
	if p.cfg.Detector != nil {
		for _, s := range out {
			if s.Kind == KindCPU {
				p.cfg.Detector.Check(s)
			}
		}
	}
	if p.cfg.Exporter != nil && len(out) > 0 {
		p.cfg.Exporter.Export(p.cfg.Process, out)
	}
	p.cWindows.Inc()
	return out
}

// captureCPU samples CPU for one window and folds the profile.
func (p *Profiler) captureCPU() (Summary, error) {
	var buf bytes.Buffer
	if p.cfg.Hz != DefaultHz {
		runtime.SetCPUProfileRate(p.cfg.Hz)
	}
	start := time.Now()
	if err := pprof.StartCPUProfile(&buf); err != nil {
		return Summary{}, err
	}
	select {
	case <-time.After(p.cfg.Window):
	case <-p.quit:
	}
	pprof.StopCPUProfile()
	end := time.Now()
	s, err := Summarize(buf.Bytes(), KindCPU, p.cfg.TopN)
	if err != nil {
		return Summary{}, err
	}
	s.Start, s.End = start, end
	return s, nil
}

// lookupNames maps summary kinds onto runtime/pprof profile names.
var lookupNames = map[string]string{
	KindHeap:      "heap",
	KindGoroutine: "goroutine",
	KindMutex:     "mutex",
	KindBlock:     "block",
}

// CaptureSnapshots folds the configured point-in-time profiles. Mutex
// and block summaries stay empty until the daemon arms
// runtime.SetMutexProfileFraction / SetBlockProfileRate.
func (p *Profiler) CaptureSnapshots(now time.Time) []Summary {
	var out []Summary
	for _, kind := range p.cfg.Kinds {
		name, ok := lookupNames[kind]
		if !ok {
			continue
		}
		lp := pprof.Lookup(name)
		if lp == nil {
			continue
		}
		var buf bytes.Buffer
		if err := lp.WriteTo(&buf, 0); err != nil {
			p.cErrors.Inc()
			continue
		}
		s, err := Summarize(buf.Bytes(), kind, p.cfg.TopN)
		if err != nil {
			p.cErrors.Inc()
			continue
		}
		s.Start, s.End = now, now
		out = append(out, s)
	}
	return out
}
