package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealAdvances(t *testing.T) {
	c := Real{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

func TestMockFrozen(t *testing.T) {
	start := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	m := NewMock(start)
	if !m.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", m.Now(), start)
	}
	if !m.Now().Equal(m.Now()) {
		t.Fatal("mock clock moved without Advance")
	}
}

func TestMockAdvance(t *testing.T) {
	start := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	m := NewMock(start)
	got := m.Advance(90 * time.Minute)
	want := start.Add(90 * time.Minute)
	if !got.Equal(want) {
		t.Fatalf("Advance returned %v, want %v", got, want)
	}
	if !m.Now().Equal(want) {
		t.Fatalf("Now() = %v, want %v", m.Now(), want)
	}
}

func TestMockSet(t *testing.T) {
	m := NewMock(time.Unix(0, 0))
	target := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	m.Set(target)
	if !m.Now().Equal(target) {
		t.Fatalf("Now() = %v, want %v", m.Now(), target)
	}
}

func TestMockConcurrentAdvance(t *testing.T) {
	m := NewMock(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Advance(time.Second)
		}()
	}
	wg.Wait()
	if got := m.Now(); !got.Equal(time.Unix(100, 0)) {
		t.Fatalf("after 100 concurrent 1s advances Now() = %v, want 100s", got)
	}
}
