package experiments

import (
	"fmt"
	"strings"
	"time"

	"gallery/internal/core"
	"gallery/internal/forecast"
	"gallery/internal/sim"
	"gallery/internal/uuid"
)

// Experiment E17 (extension) — model quality has operational value. The
// paper motivates Gallery with forecasts that feed marketplace operations
// ("driver suggestions and pricing", §4.2); this experiment closes that
// loop: demand shifts between city quadrants over the day, idle drivers
// are repositioned toward forecast hot spots, and the forecaster quality
// determines rider wait times. All models travel through Gallery as
// blobs, exactly like the production flow.

// RepositionArm is one policy's outcome, averaged over seeds.
type RepositionArm struct {
	Name            string
	MeanWaitSec     float64
	MeanPickupKm    float64
	AbandonedRiders float64
	Repositions     float64
}

// RepositionResult holds all arms.
type RepositionResult struct {
	Seeds int
	Arms  []RepositionArm
}

// DriverRepositioning runs three arms over the same worlds: no
// repositioning, repositioning with a lagging heuristic forecaster, and
// repositioning with a calendar-aware linear AR forecaster.
func DriverRepositioning(seeds int) (*RepositionResult, error) {
	if seeds <= 0 {
		seeds = 3
	}
	env := mustEnv(17)

	const (
		baseDemand = 150
		shift      = 0.9
	)
	// Publish per-quadrant forecasters to Gallery: a lagging heuristic
	// and a calendar-aware AR per quadrant, trained offline on quadrant
	// demand history.
	m, err := env.Reg.RegisterModel(core.ModelSpec{
		BaseVersionID: "quadrant_demand", Project: "marketplace-simulation",
		Name: "quadrant_forecaster",
	})
	if err != nil {
		return nil, err
	}
	publish := func(build func(q int) (forecast.Model, error)) ([]uuid.UUID, error) {
		ids := make([]uuid.UUID, 4)
		for q := 0; q < 4; q++ {
			fm, err := build(q)
			if err != nil {
				return nil, err
			}
			blob, err := forecast.Encode(fm)
			if err != nil {
				return nil, err
			}
			env.Clock.Advance(time.Minute)
			in, err := env.Reg.UploadInstance(core.InstanceSpec{
				ModelID: m.ID, Name: fm.Name(), City: fmt.Sprintf("quadrant-%d", q),
				Framework: "gallery-forecast",
			}, blob)
			if err != nil {
				return nil, err
			}
			ids[q] = in.ID
		}
		return ids, nil
	}
	heuristicIDs, err := publish(func(q int) (forecast.Model, error) {
		fm := &forecast.Heuristic{K: 3}
		return fm, fm.Train(nil)
	})
	if err != nil {
		return nil, err
	}
	arIDs, err := publish(func(q int) (forecast.Model, error) {
		// Short lags so the model is usable on the history a single
		// simulated day accumulates; the calendar harmonics carry the
		// anticipation of the daily shift.
		fm := &forecast.LinearAR{Lags: 3}
		train := sim.QuadrantTrainingSeries(baseDemand, shift, q, 24*45, 7)
		return fm, fm.Train(train)
	})
	if err != nil {
		return nil, err
	}

	// fetch decodes the four quadrant models back out of Gallery.
	fetch := func(ids []uuid.UUID) ([]forecast.Model, error) {
		out := make([]forecast.Model, len(ids))
		for i, id := range ids {
			blob, err := env.Reg.FetchBlob(id)
			if err != nil {
				return nil, err
			}
			fm, err := forecast.Decode(blob)
			if err != nil {
				return nil, err
			}
			out[i] = fm
		}
		return out, nil
	}

	arms := []struct {
		name string
		ids  []uuid.UUID // nil = no repositioning
	}{
		{"no repositioning", nil},
		{"heuristic forecaster", heuristicIDs},
		{"linear AR forecaster", arIDs},
	}

	res := &RepositionResult{Seeds: seeds}
	for _, arm := range arms {
		agg := RepositionArm{Name: arm.name}
		for s := 0; s < seeds; s++ {
			cfg := sim.Config{
				Mode:           sim.ModeInSimTraining,
				ModelVariants:  1,
				TrainingPoints: 300,
				Drivers:        60,
				DurationHours:  24,
				BaseDemand:     baseDemand,
				SpatialShift:   shift,
				Seed:           int64(1000 + s),
			}
			if arm.ids != nil {
				models, err := fetch(arm.ids)
				if err != nil {
					return nil, err
				}
				cfg.RepositionEverySec = 600
				cfg.RepositionFraction = 0.7
				cfg.RepositionModels = models
			}
			rep, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			agg.MeanWaitSec += rep.MeanWaitSec
			agg.MeanPickupKm += rep.MeanPickupKm
			agg.AbandonedRiders += float64(rep.AbandonedRiders)
			agg.Repositions += float64(rep.Repositions)
		}
		n := float64(seeds)
		agg.MeanWaitSec /= n
		agg.MeanPickupKm /= n
		agg.AbandonedRiders /= n
		agg.Repositions /= n
		res.Arms = append(res.Arms, agg)
	}
	return res, nil
}

// Format renders the arm comparison.
func (r *RepositionResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d seeds averaged; demand shifts between quadrants over the day\n", r.Seeds)
	fmt.Fprintf(&b, "%-24s %-14s %-14s %-12s %s\n", "policy", "mean wait (s)", "pickup (km)", "abandoned", "repositions")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "%-24s %-14.1f %-14.2f %-12.1f %.0f\n",
			a.Name, a.MeanWaitSec, a.MeanPickupKm, a.AbandonedRiders, a.Repositions)
	}
	b.WriteString("better forecasts -> better driver placement -> lower rider waits (the operational value of model quality)\n")
	return b.String()
}
