package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gallery/internal/api"
	"gallery/internal/blobstore"
	"gallery/internal/client"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/obs"
	"gallery/internal/obs/httpmw"
	"gallery/internal/relstore"
	"gallery/internal/rules"
	"gallery/internal/serve"
	"gallery/internal/slo"
	"gallery/internal/tenant"
	"gallery/internal/uuid"
)

// newSLOHarness is newHarness plus an SLO service (no auth), so the
// /v1/slo routes are registered.
func newSLOHarness(t *testing.T) *harness {
	t.Helper()
	clk := clock.NewMock(t0)
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk,
		UUIDs: uuid.NewSeeded(51),
	})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewRegistry()
	repo := rules.NewRepo(clk)
	eng := rules.NewEngine(reg, repo, clk)
	// Wire both metric scopes, like a single-process embedding: the
	// namespace RED vectors the server middleware records plus the
	// gateway's predict vectors, so model-scoped objectives are
	// creatable here too.
	red := httpmw.NewRED(o)
	pred := serve.NewPredictRED(o)
	sloSvc, err := slo.Open(relstore.NewMemory(), slo.VecSource{
		Requests: red.Requests, Errors: red.Errors, Latency: red.Latency,
		ModelRequests: pred.Requests, ModelErrors: pred.Errors, ModelLatency: pred.Latency,
	}, slo.Config{
		Clock: clk, UUIDs: uuid.NewSeeded(52), Obs: o, Audit: reg.Audit(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWith(reg, repo, eng, Options{Obs: o, SLO: sloSvc})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return &harness{c: client.New(ts.URL, ts.Client()), clk: clk, ts: ts, eng: eng, srv: srv}
}

func TestSLOLifecycleHTTP(t *testing.T) {
	h := newSLOHarness(t)

	avail, err := h.c.CreateSLO(api.CreateSLORequest{
		Namespace: "maps", Kind: "availability", Target: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if avail.ID == "" || avail.Namespace != "maps" || avail.Target != 0.99 {
		t.Fatalf("created SLO = %+v", avail)
	}

	// Latency thresholds travel as milliseconds on the wire and must
	// round-trip exactly.
	lat, err := h.c.CreateSLO(api.CreateSLORequest{
		Namespace: "maps", ModelID: "demand", Kind: "latency",
		Target: 0.95, LatencyThresholdMS: 250,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lat.LatencyThresholdMS != 250 {
		t.Fatalf("latency threshold = %v ms, want 250", lat.LatencyThresholdMS)
	}

	objs, err := h.c.ListSLOs()
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("ListSLOs = %d objectives, want 2", len(objs))
	}

	sts, err := h.c.SLOStatus()
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 {
		t.Fatalf("SLOStatus = %d entries, want 2", len(sts))
	}
	for _, st := range sts {
		if st.Breached {
			t.Fatalf("fresh objective %s reports breached", st.SLO.ID)
		}
	}

	if err := h.c.DeleteSLO(avail.ID); err != nil {
		t.Fatal(err)
	}
	wantStatus(t, h.c.DeleteSLO(avail.ID), http.StatusNotFound)

	// Spec validation surfaces as 400, not 500.
	_, err = h.c.CreateSLO(api.CreateSLORequest{Namespace: "maps", Kind: "availability", Target: 0})
	wantStatus(t, err, http.StatusBadRequest)
	_, err = h.c.CreateSLO(api.CreateSLORequest{Namespace: "maps", Kind: "typo", Target: 0.9})
	wantStatus(t, err, http.StatusBadRequest)
}

// TestMetricsEndpointHeaders pins the content negotiation contract of
// both debug metric endpoints: explicit types, and no-store so proxies
// never serve a stale snapshot to a dashboard.
func TestMetricsEndpointHeaders(t *testing.T) {
	h := newSLOHarness(t)

	resp, err := h.ts.Client().Get(h.ts.URL + "/v1/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("JSON metrics Content-Type = %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("JSON metrics Cache-Control = %q, want no-store", cc)
	}

	resp, err = h.ts.Client().Get(h.ts.URL + "/v1/debug/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != httpmw.PromContentType {
		t.Fatalf("prom Content-Type = %q, want %q", ct, httpmw.PromContentType)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("prom Cache-Control = %q, want no-store", cc)
	}
}

// TestPromExpositionValid scrapes the registry daemon after real
// traffic and validates the payload byte-for-byte against the text
// format rules.
func TestPromExpositionValid(t *testing.T) {
	h := newSLOHarness(t)
	h.registerModel(t, "demand", "maps")
	if _, err := h.c.Stats(); err != nil {
		t.Fatal(err)
	}

	payload, err := h.c.DebugMetricsProm()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(payload); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, payload)
	}
	body := string(payload)
	for _, want := range []string{
		"# TYPE tenant_http_requests_total counter",
		`tenant_http_requests_total{namespace="default"}`,
		"# TYPE http_requests_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestSLOAuth proves objective writes are operator-class while reads
// stay open to readers — same split as every other admin surface.
func TestSLOAuth(t *testing.T) {
	h := newAuthHarness(t)
	reader := h.client(h.mint(t, tenant.DefaultNamespace, "ro", tenant.RoleReader))

	_, err := reader.CreateSLO(api.CreateSLORequest{
		Namespace: "default", Kind: "availability", Target: 0.99,
	})
	wantStatus(t, err, http.StatusForbidden)

	o, err := h.admin.CreateSLO(api.CreateSLORequest{
		Namespace: "default", Kind: "availability", Target: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, reader.DeleteSLO(o.ID), http.StatusForbidden)

	if _, err := reader.ListSLOs(); err != nil {
		t.Fatalf("reader ListSLOs: %v", err)
	}
	if _, err := reader.SLOStatus(); err != nil {
		t.Fatalf("reader SLOStatus: %v", err)
	}
	if err := h.admin.DeleteSLO(o.ID); err != nil {
		t.Fatal(err)
	}
}

// TestSLONamespaceScoping proves objective mutations are namespace-owned
// like every other tenant mutation: an operator declares and deletes
// objectives only in its own namespace, while default-namespace
// operators (instance admins) act across tenants. Without this, an
// operator of one tenant could plant an instantly-breaching objective on
// another tenant's traffic — or delete its objectives to silence alerts.
func TestSLONamespaceScoping(t *testing.T) {
	h := newAuthHarness(t)
	if _, err := h.admin.CreateNamespace(api.CreateNamespaceRequest{Name: "maps"}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.admin.CreateNamespace(api.CreateNamespaceRequest{Name: "fraud"}); err != nil {
		t.Fatal(err)
	}
	mapsOp := h.client(h.mint(t, "maps", "lead", tenant.RoleOperator))

	// Own namespace: allowed.
	own, err := mapsOp.CreateSLO(api.CreateSLORequest{
		Namespace: "maps", Kind: "availability", Target: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Another tenant's namespace: forbidden.
	_, err = mapsOp.CreateSLO(api.CreateSLORequest{
		Namespace: "fraud", Kind: "availability", Target: 0.5,
	})
	wantStatus(t, err, http.StatusForbidden)

	// Deleting another tenant's objective: forbidden, and the objective
	// survives.
	theirs, err := h.admin.CreateSLO(api.CreateSLORequest{
		Namespace: "fraud", Kind: "availability", Target: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, mapsOp.DeleteSLO(theirs.ID), http.StatusForbidden)
	objs, err := h.admin.ListSLOs()
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("objectives after forbidden delete = %d, want 2", len(objs))
	}

	// Own objective deletes fine; the instance admin can cross tenants.
	if err := mapsOp.DeleteSLO(own.ID); err != nil {
		t.Fatal(err)
	}
	if err := h.admin.DeleteSLO(theirs.ID); err != nil {
		t.Fatal(err)
	}

	// The auth harness wires only the namespace-scope RED vectors (like
	// the registry daemon), so a model-scoped objective is rejected at
	// create rather than accepted into a permanent no-data state.
	_, err = h.admin.CreateSLO(api.CreateSLORequest{
		Namespace: "maps", ModelID: "demand", Kind: "availability", Target: 0.99,
	})
	wantStatus(t, err, http.StatusBadRequest)
}
