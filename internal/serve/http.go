package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"gallery/internal/api"
	"gallery/internal/client"
	"gallery/internal/forecast"
	"gallery/internal/incident"
	"gallery/internal/obs"
	"gallery/internal/obs/httpmw"
	obslog "gallery/internal/obs/log"
	"gallery/internal/obs/profile"
	"gallery/internal/obs/trace"
)

// Handler is the gateway's HTTP face. Like internal/server it speaks JSON
// and routes through the shared observability middleware (obs/httpmw), so
// one /v1/debug/metrics scrape covers both tiers with identical metric
// names — per-route counters, latency with slow-trace exemplars, and
// request/response body-size histograms.
type Handler struct {
	gw        *Gateway
	mux       *http.ServeMux
	obs       *obs.Registry
	accessLog *slog.Logger
	tracer    *trace.Tracer
	logs      *obslog.Ring
	auth      httpmw.Authorizer
	pprof     bool
	profiler  *profile.Profiler
	red       PredictRED
	nsOf      func(*http.Request) string
	h         http.Handler
}

// PredictRED bundles the per-tenant, per-model RED vectors the predict
// path records — the signal the SLO evaluator consumes for model-scoped
// objectives. NewPredictRED is idempotent per registry.
type PredictRED struct {
	Requests *obs.CounterVec // serve_predict_requests_total{namespace,model}
	Errors   *obs.CounterVec // serve_predict_errors_total{namespace,model}
	Latency  *obs.HistogramVec
}

// NewPredictRED returns the predict RED vectors registered in reg.
func NewPredictRED(reg *obs.Registry) PredictRED {
	lbl := []string{"namespace", "model"}
	return PredictRED{
		Requests: reg.CounterVec("serve_predict_requests_total", lbl, obs.DefaultVecCardinality),
		Errors:   reg.CounterVec("serve_predict_errors_total", lbl, obs.DefaultVecCardinality),
		Latency:  reg.HistogramVec("serve_predict_seconds", lbl, obs.LatencyBuckets, obs.DefaultVecCardinality),
	}
}

// HandlerOption customizes a Handler.
type HandlerOption func(*Handler)

// WithAccessLog enables one structured log line per request.
func WithAccessLog(l *slog.Logger) HandlerOption {
	return func(h *Handler) { h.accessLog = l }
}

// WithTracer attaches a tracer: requests become (sampled) traces, the
// traceparent header is honored, and GET /v1/debug/traces serves the
// local completed-trace buffer.
func WithTracer(t *trace.Tracer) HandlerOption {
	return func(h *Handler) { h.tracer = t }
}

// WithPprof mounts net/http/pprof under /v1/debug/pprof/. Off by default:
// profiles expose memory contents, so operators opt in per process.
func WithPprof() HandlerOption {
	return func(h *Handler) { h.pprof = true }
}

// WithLogRing serves the process's structured-log ring at
// GET /v1/debug/logs — the same contract galleryd exposes, so one set of
// tooling (galleryctl logs) follows either tier.
func WithLogRing(r *obslog.Ring) HandlerOption {
	return func(h *Handler) { h.logs = r }
}

// WithProfiler serves the continuous profiler's local window ring at
// GET /v1/debug/profile (the single-process view galleryd's fleet
// endpoint merges) and tails its history into GET /v1/debug/bundle.
func WithProfiler(p *profile.Profiler) HandlerOption {
	return func(h *Handler) { h.profiler = p }
}

// WithAuthorizer gates every route (except GET /v1/healthz, which the
// authorizer exempts for load-balancer probes) behind the multi-tenant
// control plane — the same bearer-token → role → rate-limit pipeline
// galleryd enforces, typically backed by a tenant.Manager seeded from a
// token file.
func WithAuthorizer(a httpmw.Authorizer) HandlerOption {
	return func(h *Handler) { h.auth = a }
}

// NewHandler wraps a Gateway in its HTTP API.
func NewHandler(gw *Gateway, opts ...HandlerOption) *Handler {
	h := &Handler{gw: gw, mux: http.NewServeMux(), obs: gw.obs}
	for _, o := range opts {
		o(h)
	}
	if h.tracer == nil {
		h.tracer = gw.tracer
	}
	h.red = NewPredictRED(h.obs)
	// tenant.Manager resolves a request's namespace allocation-free; with
	// auth off (or an authorizer that can't), every request lands in the
	// default namespace so namespace-scoped SLOs still work.
	h.nsOf = func(*http.Request) string { return "" }
	if a, ok := h.auth.(interface{ NamespaceOf(*http.Request) string }); ok {
		h.nsOf = a.NamespaceOf
	}
	h.mux.HandleFunc("POST /v1/predict/{model}", h.handlePredict)
	h.mux.HandleFunc("GET /v1/serving", h.handleServing)
	h.mux.HandleFunc("GET /v1/debug/metrics", h.handleMetrics)
	h.mux.HandleFunc("GET /v1/debug/metrics/prom", h.handleMetricsProm)
	h.mux.HandleFunc("GET /v1/debug/bundle", h.handleBundle)
	h.mux.HandleFunc("GET /v1/healthz", h.handleHealthz)
	if h.tracer != nil {
		h.mux.HandleFunc("GET /v1/debug/traces", h.handleListTraces)
		h.mux.HandleFunc("GET /v1/debug/traces/{id}", h.handleGetTrace)
	}
	if h.logs != nil {
		h.mux.HandleFunc("GET /v1/debug/logs", h.handleLogs)
	}
	if h.profiler != nil {
		h.mux.HandleFunc("GET /v1/debug/profile", h.handleProfile)
	}
	if h.pprof {
		httpmw.RegisterPprof(h.mux)
	}
	h.h = httpmw.Wrap(h.mux, httpmw.Options{
		Obs:       h.obs,
		AccessLog: h.accessLog,
		Tracer:    h.tracer,
		TenantOf:  h.nsOf,
	})
	if h.auth != nil {
		// Outside Wrap for the same route-pattern-attribution reason as
		// galleryd's actor middleware.
		h.h = httpmw.WithAuth(h.h, h.auth)
	}
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.h.ServeHTTP(w, r)
}

func (h *Handler) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	modelID := r.PathValue("model")
	status := h.servePredict(w, r, modelID)

	// Per-tenant/per-model RED over bounded vectors: two counter lookups
	// and one histogram observe against pre-registered handles, no
	// allocation — gated at 0 extra allocs/op by E23 alongside E22's auth
	// gate.
	ns := h.nsOf(r)
	if ns == "" {
		ns = httpmw.DefaultNamespace
	}
	h.red.Requests.With2(ns, modelID).Inc()
	if status >= 500 {
		h.red.Errors.With2(ns, modelID).Inc()
	}
	h.red.Latency.With2(ns, modelID).Observe(time.Since(start).Seconds())
}

// servePredict writes the response and reports the status it chose.
func (h *Handler) servePredict(w http.ResponseWriter, r *http.Request, modelID string) int {
	var req api.PredictRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&req); err != nil {
		writeServeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return http.StatusBadRequest
	}
	if len(req.History) == 0 {
		writeServeErr(w, http.StatusBadRequest, errors.New("history must not be empty"))
		return http.StatusBadRequest
	}
	if req.HistoryEvents != nil && len(req.HistoryEvents) != len(req.History) {
		writeServeErr(w, http.StatusBadRequest,
			fmt.Errorf("history_events length %d does not match history length %d",
				len(req.HistoryEvents), len(req.History)))
		return http.StatusBadRequest
	}
	resp, err := h.gw.PredictCtx(r.Context(), modelID, forecast.Context{
		History:       req.History,
		Time:          req.Time,
		Event:         req.Event,
		PrevEvent:     req.PrevEvent,
		HistoryEvents: req.HistoryEvents,
	})
	if err != nil {
		status := predictStatus(err)
		writeServeErr(w, status, err)
		return status
	}
	writePredictResponse(w, resp)
	return http.StatusOK
}

func (h *Handler) handleServing(w http.ResponseWriter, r *http.Request) {
	writeServeJSON(w, http.StatusOK, h.gw.Status())
}

func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// no-store: dashboards poll this; a cached snapshot is a wrong one.
	w.Header().Set("Cache-Control", "no-store")
	writeServeJSON(w, http.StatusOK, h.obs.Snapshot())
}

func (h *Handler) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", httpmw.PromContentType)
	w.Header().Set("Cache-Control", "no-store")
	_ = h.obs.WriteProm(w)
}

// handleBundle serves this process's full observability snapshot —
// metrics, trace and log tails, profiles, build info — for galleryd's
// incident flight recorder to fold into a cross-process bundle.
func (h *Handler) handleBundle(w http.ResponseWriter, r *http.Request) {
	var hist incident.ProfileHistory
	if h.profiler != nil {
		hist = h.profiler.Ring()
	}
	w.Header().Set("Cache-Control", "no-store")
	writeServeJSON(w, http.StatusOK,
		incident.SnapshotProcess("galleryserve", h.obs, h.tracer, h.logs, hist, 0, 0, 0, time.Now()))
}

// handleProfile serves the local continuous-profiling view: this
// process's ring folded per kind, the single-process shape of the fleet
// view galleryd serves under the same path.
func (h *Handler) handleProfile(w http.ResponseWriter, r *http.Request) {
	merge, topN, err := profile.ParseViewQuery(r.URL.Query())
	if err != nil {
		writeServeErr(w, http.StatusBadRequest, err)
		return
	}
	now := time.Now()
	v := profile.View{Generated: now}
	if merge > 0 {
		v.Merge = merge.String()
	}
	v.Processes = []profile.ProcessView{h.profiler.Ring().View(h.profiler.Process(), merge, topN, now)}
	w.Header().Set("Cache-Control", "no-store")
	writeServeJSON(w, http.StatusOK, v)
}

func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeServeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (h *Handler) handleListTraces(w http.ResponseWriter, r *http.Request) {
	limit := 50
	if s := r.URL.Query().Get("limit"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &limit); err != nil || limit <= 0 {
			writeServeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", s))
			return
		}
	}
	st := h.tracer.Store()
	// no-store, like the metrics endpoints: debug state is live state.
	w.Header().Set("Cache-Control", "no-store")
	writeServeJSON(w, http.StatusOK, map[string]any{
		"stats":  st.Stats(),
		"traces": st.Summaries(limit),
	})
}

func (h *Handler) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	d, ok := h.tracer.Store().Get(r.PathValue("id"))
	if !ok {
		writeServeErr(w, http.StatusNotFound, fmt.Errorf("no trace %s", r.PathValue("id")))
		return
	}
	w.Header().Set("Cache-Control", "no-store")
	writeServeJSON(w, http.StatusOK, d)
}

// handleLogs serves the in-memory structured-log ring with the same query
// parameters as galleryd's /v1/debug/logs: level, since (RFC3339 or a
// relative duration), after (cursor from a prior next_seq), limit.
func (h *Handler) handleLogs(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	f := obslog.Filter{MinLevel: obslog.ParseLevel(qp.Get("level"))}
	if v := qp.Get("since"); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			f.Since = time.Now().Add(-d)
		} else if t, err := time.Parse(time.RFC3339, v); err == nil {
			f.Since = t
		} else {
			writeServeErr(w, http.StatusBadRequest, fmt.Errorf("bad since %q", v))
			return
		}
	}
	if v := qp.Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeServeErr(w, http.StatusBadRequest, fmt.Errorf("bad after cursor %q", v))
			return
		}
		f.AfterSeq = n
		f.HasAfterSeq = true
	}
	if v := qp.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeServeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		f.Limit = n
	}
	entries, next := h.logs.Entries(f)
	w.Header().Set("Cache-Control", "no-store")
	writeServeJSON(w, http.StatusOK, api.DebugLogsResponse{Entries: entries, NextSeq: next})
}

// predictStatus maps a load/predict error onto a status code. Gallery's
// own verdicts pass through (404 for an unknown model, 400 for a model
// with no promoted instance reads as 502 below since it is a gateway
// dependency failure); anything else is the upstream being unreachable.
func predictStatus(err error) int {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		if apiErr.Status == http.StatusNotFound {
			return http.StatusNotFound
		}
		return http.StatusBadGateway
	}
	if errors.Is(err, ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadGateway
}

func writeServeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeServeErr(w http.ResponseWriter, status int, err error) {
	writeServeJSON(w, status, api.Error{Error: err.Error()})
}
