package obs

import (
	"encoding/json"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Registry holds named metrics and renders them to JSON. Handles returned
// by Counter/Gauge/Histogram are stable: callers on hot paths should fetch
// them once and reuse them. Get-or-create calls are cheap enough for
// dynamically labelled metrics (per-table, per-route).
type Registry struct {
	mu          sync.RWMutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	gaugeFuncs  map[string]func() float64
	hists       map[string]*Histogram
	counterVecs map[string]*CounterVec
	histVecs    map[string]*HistogramVec
}

// Default is the process-wide registry. Components default to it so a
// stock galleryd needs no wiring; tests that assert on metric values
// construct their own Registry for isolation.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		gaugeFuncs:  make(map[string]func() float64),
		hists:       make(map[string]*Histogram),
		counterVecs: make(map[string]*CounterVec),
		histVecs:    make(map[string]*HistogramVec),
	}
}

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers (or replaces) a gauge whose value is computed at
// snapshot time — e.g. cache hit ratio or resident bytes. fn runs with
// the registry's lock held and must not call back into the registry.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// RemoveGaugeFunc drops a computed gauge — used when the object backing
// the closure goes away (e.g. a serving slot evicted from a cache), so
// snapshots stop reporting a value nobody maintains.
func (r *Registry) RemoveGaugeFunc(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.gaugeFuncs, name)
}

// RemoveGauge drops a plain gauge — used when the entity it describes is
// deleted (e.g. an SLO objective), so snapshots and scrapes stop showing
// a stale series.
func (r *Registry) RemoveGauge(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.gauges, name)
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds if new. An existing histogram keeps its original
// bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// Bucket is one non-empty histogram bucket in a snapshot. Le is the
// bucket's upper bound ("+Inf" for the overflow bucket).
type Bucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// HistSnapshot summarizes a histogram at a point in time. Exemplars, when
// present, are the trace IDs behind the largest observations — follow
// them into /v1/debug/traces for the span tree that explains the tail.
type HistSnapshot struct {
	Count     int64      `json:"count"`
	Sum       float64    `json:"sum"`
	Max       float64    `json:"max"`
	P50       float64    `json:"p50"`
	P95       float64    `json:"p95"`
	P99       float64    `json:"p99"`
	Buckets   []Bucket   `json:"buckets,omitempty"`
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Snapshot is a point-in-time copy of every metric in a registry. It
// marshals to the JSON served at /v1/debug/metrics (object keys come out
// sorted, so output is deterministic for a fixed state).
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)+len(r.gaugeFuncs)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, fn := range r.gaugeFuncs {
		snap.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		snap.Histograms[name] = histSnapshot(h)
	}
	for _, v := range r.counterVecs {
		v.snapshot(snap.Counters)
	}
	for _, v := range r.histVecs {
		v.each(func(name string, h *Histogram) {
			snap.Histograms[name] = histSnapshot(h)
		})
	}
	return snap
}

func histSnapshot(h *Histogram) HistSnapshot {
	hs := HistSnapshot{
		Count:     h.Count(),
		Sum:       h.Sum(),
		Max:       h.Max(),
		P50:       h.Quantile(0.50),
		P95:       h.Quantile(0.95),
		P99:       h.Quantile(0.99),
		Exemplars: h.Exemplars(),
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		}
		hs.Buckets = append(hs.Buckets, Bucket{Le: le, Count: n})
	}
	return hs
}

// SumCounters returns the sum of every counter whose name starts with
// prefix — e.g. SumCounters("http_requests_total") totals requests across
// all route/status labels.
func (r *Registry) SumCounters(prefix string) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for name, c := range r.counters {
		if strings.HasPrefix(name, prefix) {
			total += c.Value()
		}
	}
	for base, v := range r.counterVecs {
		if strings.HasPrefix(base, prefix) {
			total += v.sum()
		}
	}
	return total
}

// WriteJSON renders an indented JSON snapshot to w.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
