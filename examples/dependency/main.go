// Dependency walks the exact scenario of paper Figures 5–7: the 5-model
// dependency graph, an upstream instance update that fans version bumps
// out to every downstream model without touching production, and a new
// dependency edge that does the same.
//
// Run with: go run ./examples/dependency
package main

import (
	"fmt"
	"log"

	"gallery/internal/blobstore"
	"gallery/internal/core"
	"gallery/internal/relstore"
	"gallery/internal/uuid"
)

func main() {
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	register := func(base string, major int, ups ...uuid.UUID) *core.Model {
		m, err := reg.RegisterModel(core.ModelSpec{
			BaseVersionID: base, Project: "marketplace", InitialMajor: major, Upstreams: ups,
		})
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	// Figure 5: X and Y depend on A; A depends on B and C.
	b := register("model_B", 2)
	c := register("model_C", 3)
	a := register("model_A", 4, b.ID, c.ID)
	x := register("model_X", 7, a.ID)
	y := register("model_Y", 8, a.ID)
	models := []*core.Model{a, b, c, x, y}

	show := func(title string) {
		fmt.Println(title)
		for _, m := range models {
			latest, err := reg.LatestVersion(m.ID)
			if err != nil {
				log.Fatal(err)
			}
			prod, err := reg.ProductionVersion(m.ID)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s latest=%-5s production=%-5s (cause: %s)\n",
				m.BaseVersionID, latest.String(), prod.String(), latest.Cause)
		}
		fmt.Println()
	}
	show("Figure 5 — initial graph:")

	// Figure 6: update Model B's instance (2.0 -> 2.1).
	if _, err := reg.UploadInstance(core.InstanceSpec{
		ModelID: b.ID, Name: "B retrained", Framework: "example",
	}, []byte("new B coefficients")); err != nil {
		log.Fatal(err)
	}
	show("Figure 6 — after retraining B (2.0 -> 2.1):")
	fmt.Println("  note: A, X, Y gained dep_update versions but their production")
	fmt.Println("  versions are unchanged — owners must opt in (paper §3.4.2).")

	// The owner of A chooses to upgrade.
	hist, err := reg.VersionHistory(a.ID)
	if err != nil {
		log.Fatal(err)
	}
	if err := reg.Promote(hist[len(hist)-1].ID); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  A's owner promoted 4.1 to production.")
	fmt.Println()

	// Figure 7: add Model D as a new dependency of A.
	d := register("model_D", 5)
	models = append(models, d)
	if err := reg.AddDependency(a.ID, d.ID); err != nil {
		log.Fatal(err)
	}
	show("Figure 7 — after adding D as a dependency of A:")

	// Impact analysis: the holistic view the paper motivates.
	impact, err := reg.TransitiveDownstreams(b.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blast radius of changing B: %d models (A, X, Y)\n", len(impact))

	// Cycles are rejected.
	if err := reg.AddDependency(b.ID, x.ID); err != nil {
		fmt.Printf("adding B -> X correctly rejected: %v\n", err)
	}
}
