package trace

import (
	"errors"
	"math/rand/v2"
	"strconv"
	"strings"
	"time"
)

// Sampler decides which requests are traced. The decision has two halves:
//
//   - Sample, consulted when a root span would start (head): false means
//     the request runs with a nil span and tracing costs nothing;
//   - Keep, consulted when the local root ends (tail): false means the
//     recorded spans are dropped instead of committed to the ring buffer.
//
// The split is what makes "errors and slow requests only" possible — you
// cannot know a request will be slow before running it, so errslow records
// everything and filters at the end.
type Sampler interface {
	Sample() bool
	Keep(rootDuration time.Duration, hadError bool) bool
	// Spec returns the string form that parses back to this sampler.
	Spec() string
}

// Never records nothing: the zero-overhead default.
func Never() Sampler { return neverSampler{} }

type neverSampler struct{}

func (neverSampler) Sample() bool                  { return false }
func (neverSampler) Keep(time.Duration, bool) bool { return false }
func (neverSampler) Spec() string                  { return "never" }

// Always records and keeps every request.
func Always() Sampler { return alwaysSampler{} }

type alwaysSampler struct{}

func (alwaysSampler) Sample() bool                  { return true }
func (alwaysSampler) Keep(time.Duration, bool) bool { return true }
func (alwaysSampler) Spec() string                  { return "always" }

// Probabilistic records each request independently with probability p and
// keeps everything it records.
func Probabilistic(p float64) Sampler {
	if p <= 0 {
		return Never()
	}
	if p >= 1 {
		return Always()
	}
	return probSampler{p: p}
}

type probSampler struct{ p float64 }

func (s probSampler) Sample() bool                  { return rand.Float64() < s.p }
func (s probSampler) Keep(time.Duration, bool) bool { return true }
func (s probSampler) Spec() string                  { return strconv.FormatFloat(s.p, 'g', -1, 64) }

// ErrSlow records every request but keeps only those that errored or whose
// root span ran at least slow — the production posture: near-zero steady
// cost in the buffer, full span trees for exactly the requests worth
// explaining.
func ErrSlow(slow time.Duration) Sampler { return errSlowSampler{slow: slow} }

type errSlowSampler struct{ slow time.Duration }

func (errSlowSampler) Sample() bool { return true }
func (s errSlowSampler) Keep(d time.Duration, hadError bool) bool {
	return hadError || d >= s.slow
}
func (s errSlowSampler) Spec() string { return "errslow:" + s.slow.String() }

// ErrSamplerSpec reports an unparseable sampler spec string.
var ErrSamplerSpec = errors.New("trace: bad sampler spec")

// ParseSampler turns a flag value into a Sampler:
//
//	"never"          → Never
//	"always"         → Always
//	"0.25"           → Probabilistic(0.25)
//	"errslow:250ms"  → ErrSlow(250ms)
func ParseSampler(spec string) (Sampler, error) {
	switch {
	case spec == "" || spec == "never" || spec == "off":
		return Never(), nil
	case spec == "always":
		return Always(), nil
	case strings.HasPrefix(spec, "errslow:"):
		d, err := time.ParseDuration(strings.TrimPrefix(spec, "errslow:"))
		if err != nil || d < 0 {
			return nil, ErrSamplerSpec
		}
		return ErrSlow(d), nil
	default:
		p, err := strconv.ParseFloat(spec, 64)
		if err != nil || p < 0 || p > 1 {
			return nil, ErrSamplerSpec
		}
		return Probabilistic(p), nil
	}
}
