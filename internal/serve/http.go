package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"gallery/internal/api"
	"gallery/internal/client"
	"gallery/internal/forecast"
	"gallery/internal/obs"
)

// Handler is the gateway's HTTP face. Like internal/server it speaks JSON
// and routes through an observability middleware, but its surface is tiny:
// predictions, serving status, metrics, health.
type Handler struct {
	gw        *Gateway
	mux       *http.ServeMux
	obs       *obs.Registry
	accessLog *slog.Logger
}

// HandlerOption customizes a Handler.
type HandlerOption func(*Handler)

// WithAccessLog enables one structured log line per request.
func WithAccessLog(l *slog.Logger) HandlerOption {
	return func(h *Handler) { h.accessLog = l }
}

// NewHandler wraps a Gateway in its HTTP API.
func NewHandler(gw *Gateway, opts ...HandlerOption) *Handler {
	h := &Handler{gw: gw, mux: http.NewServeMux(), obs: gw.obs}
	for _, o := range opts {
		o(h)
	}
	h.mux.HandleFunc("POST /v1/predict/{model}", h.handlePredict)
	h.mux.HandleFunc("GET /v1/serving", h.handleServing)
	h.mux.HandleFunc("GET /v1/debug/metrics", h.handleMetrics)
	h.mux.HandleFunc("GET /v1/healthz", h.handleHealthz)
	return h
}

// ServeHTTP implements http.Handler with the same per-route metrics the
// core server emits, so one /v1/debug/metrics scrape covers both tiers.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	h.mux.ServeHTTP(rec, r)

	route := r.Pattern
	if route == "" {
		route = "unmatched"
	}
	elapsed := time.Since(start)
	h.obs.Counter(obs.Name("http_requests_total", "route", route, "status", statusClass(rec.status))).Inc()
	h.obs.Histogram(obs.Name("http_request_seconds", "route", route), obs.LatencyBuckets).
		Observe(elapsed.Seconds())
	if h.accessLog != nil {
		h.accessLog.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"status", rec.status,
			"dur_ms", float64(elapsed.Microseconds())/1000,
		)
	}
}

func (h *Handler) handlePredict(w http.ResponseWriter, r *http.Request) {
	modelID := r.PathValue("model")
	var req api.PredictRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&req); err != nil {
		writeServeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.History) == 0 {
		writeServeErr(w, http.StatusBadRequest, errors.New("history must not be empty"))
		return
	}
	if req.HistoryEvents != nil && len(req.HistoryEvents) != len(req.History) {
		writeServeErr(w, http.StatusBadRequest,
			fmt.Errorf("history_events length %d does not match history length %d",
				len(req.HistoryEvents), len(req.History)))
		return
	}
	resp, err := h.gw.Predict(modelID, forecast.Context{
		History:       req.History,
		Time:          req.Time,
		Event:         req.Event,
		PrevEvent:     req.PrevEvent,
		HistoryEvents: req.HistoryEvents,
	})
	if err != nil {
		writeServeErr(w, predictStatus(err), err)
		return
	}
	writeServeJSON(w, http.StatusOK, resp)
}

func (h *Handler) handleServing(w http.ResponseWriter, r *http.Request) {
	writeServeJSON(w, http.StatusOK, h.gw.Status())
}

func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeServeJSON(w, http.StatusOK, h.obs.Snapshot())
}

func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeServeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// predictStatus maps a load/predict error onto a status code. Gallery's
// own verdicts pass through (404 for an unknown model, 400 for a model
// with no promoted instance reads as 502 below since it is a gateway
// dependency failure); anything else is the upstream being unreachable.
func predictStatus(err error) int {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		if apiErr.Status == http.StatusNotFound {
			return http.StatusNotFound
		}
		return http.StatusBadGateway
	}
	if errors.Is(err, ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadGateway
}

func writeServeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeServeErr(w http.ResponseWriter, status int, err error) {
	writeServeJSON(w, status, api.Error{Error: err.Error()})
}

// statusRecorder and statusClass mirror internal/server's middleware; the
// packages stay independent so the gateway binary does not link the whole
// registry server.
type statusRecorder struct {
	http.ResponseWriter
	status      int
	wroteHeader bool
}

func (w *statusRecorder) WriteHeader(code int) {
	if !w.wroteHeader {
		w.status = code
		w.wroteHeader = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(p []byte) (int, error) {
	if !w.wroteHeader {
		w.wroteHeader = true
	}
	return w.ResponseWriter.Write(p)
}

func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}
