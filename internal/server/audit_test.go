package server

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"

	"gallery/internal/api"
	"gallery/internal/blobstore"
	"gallery/internal/client"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/forecast"
	"gallery/internal/health"
	"gallery/internal/obs"
	obslog "gallery/internal/obs/log"
	"gallery/internal/obs/trace"
	"gallery/internal/relstore"
	"gallery/internal/rules"
	"gallery/internal/serve"
	"gallery/internal/uuid"
)

// TestAuditTrailEndToEnd drives a model's whole lifecycle over real HTTP —
// register, two uploads (each auto-promoting its retrained version), a
// gateway hot swap, a metric-triggered rule rollback, a
// health-degradation-driven deprecation — then reconstructs the full story
// from GET /v1/audit/entity/{model}: every state change present, in write
// order, trace IDs resolvable at /v1/debug/traces/{id}, and
// /v1/debug/logs carrying correlated lines.
func TestAuditTrailEndToEnd(t *testing.T) {
	clk := clock.NewMock(t0)
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk,
		UUIDs: uuid.NewSeeded(31),
	})
	if err != nil {
		t.Fatal(err)
	}
	repo := rules.NewRepo(clk)
	eng := rules.NewEngine(reg, repo, clk)
	mon := health.New(reg, health.Config{
		ReferenceWindows: 2,
		LiveWindows:      2,
		Interval:         -1,
		Obs:              obs.NewRegistry(),
		Events:           eng,
	})
	tracer := trace.New(trace.Options{Service: "galleryd", Sampler: trace.Always(), Capacity: 256})
	srv := NewWith(reg, repo, eng, Options{
		Obs:    obs.NewRegistry(),
		Health: mon,
		Tracer: tracer,
		Logs:   obslog.NewRing(256),
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	c := client.NewWith(ts.URL, client.Options{HTTP: ts.Client(), Actor: "e2e-test"})

	// Standing policy: good offline error promotes the new instance;
	// hard drift deprecates whatever is serving.
	if _, err := repo.Commit("oncall", "lifecycle rules", []*rules.Rule{{
		UUID: "5dfc0f60-0000-4000-8000-0000000000a1", Team: "forecasting",
		Name: "auto-deploy", Kind: rules.KindAction,
		When:    "metrics.mape < 10",
		Actions: []rules.ActionRef{{Action: "deploy"}},
	}, {
		UUID: "5dfc0f60-0000-4000-8000-0000000000a2", Team: "forecasting",
		Name: "deprecate-on-drift", Kind: rules.KindAction,
		When:    `health.event == "drift" && health.psi > 0.25`,
		Actions: []rules.ActionRef{{Action: "deprecate"}},
	}}, nil); err != nil {
		t.Fatal(err)
	}
	eng.RegisterAction("deploy", rules.DeployAction(reg))
	eng.RegisterAction("deprecate", func(ac *rules.ActionContext) error {
		return reg.DeprecateInstanceCtx(ac.Ctx, ac.Instance.ID)
	})

	m, err := c.RegisterModel(api.RegisterModelRequest{
		BaseVersionID: "bv-demand", Project: "forecasting", Name: "demand", Domain: "UberX",
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := forecast.Encode(&forecast.Heuristic{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Uploading an instance mints a retrained version born promoted, so
	// each upload is also an audited production-pointer flip.
	inA, err := c.UploadInstance(api.UploadInstanceRequest{ModelID: m.ID, Name: "demand", City: "sf", Blob: blob})
	if err != nil {
		t.Fatal(err)
	}

	// A gateway starts serving it, reporting hot swaps back into the trail.
	gw := serve.New(c, serve.Options{
		Name:            "gw-e2e",
		RefreshInterval: -1,
		HealthSink:      c,
		HealthInterval:  -1,
		AuditSink:       c,
		Obs:             obs.NewRegistry(),
	})
	t.Cleanup(gw.Close)
	if _, err := gw.Predict(m.ID, forecast.Context{History: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}

	// A retrain lands instance B and starts serving it on the next
	// refresh; the gateway's swap event rides POST /v1/audit back into
	// the trail.
	inB, err := c.UploadInstance(api.UploadInstanceRequest{ModelID: m.ID, Name: "demand", City: "sf", Blob: blob})
	if err != nil {
		t.Fatal(err)
	}
	gw.RefreshAll()

	// A's offline metric then trips the deploy rule: a rule-driven
	// rollback to A, the promotion event carrying the rule engine as its
	// actor and the metric request's trace.
	if _, err := c.InsertMetric(inA.ID, "mape", "validation", 4.2); err != nil {
		t.Fatal(err)
	}
	srv.Flush() // rule-driven promotion lands
	gw.RefreshAll()

	// Live traffic then drifts off its reference hard enough that the
	// monitor degrades the model and the drift event deprecates A.
	serveWindow := func(mean float64, seed int64) {
		t.Helper()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			hist := []float64{mean, mean, mean + 20*rng.NormFloat64()}
			if _, err := gw.Predict(m.ID, forecast.Context{History: hist}); err != nil {
				t.Fatal(err)
			}
		}
		if err := gw.FlushHealth(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	for s := int64(0); s < 4; s++ {
		serveWindow(200, 300+s)
	}
	mon.Evaluate(context.Background())
	for s := int64(0); s < 2; s++ {
		serveWindow(320, 400+s)
	}
	mon.Evaluate(context.Background())
	eng.Flush()

	dep, err := c.GetInstance(inA.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !dep.Deprecated {
		t.Fatal("drift rule did not deprecate instance A")
	}
	if b, err := c.GetInstance(inB.ID); err != nil || b.Deprecated {
		t.Fatalf("instance B should survive the drift deprecation (err=%v)", err)
	}

	// --- reconstruct the story from the model's timeline ---
	evs, err := c.EntityTimeline(m.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	var actions []string
	lastSeq := int64(0)
	for _, ev := range evs {
		if ev.Seq <= lastSeq {
			t.Fatalf("timeline out of order: seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		actions = append(actions, ev.Action)
	}
	wantOrder := []string{
		"model.register",
		"instance.upload",   // A
		"version.promote",   // auto-promoted on upload
		"instance.upload",   // B
		"version.promote",   // auto-promoted on upload
		"serve.swap",        // gateway picks up B
		"version.promote",   // rule-driven rollback to A
		"rule.fire",         // auto-deploy
		"serve.swap",        // gateway rolls back to A
		"health.transition", // first evaluation
		"instance.deprecate",
	}
	ai := 0
	for _, want := range wantOrder {
		found := false
		for ; ai < len(actions); ai++ {
			if actions[ai] == want {
				found = true
				ai++
				break
			}
		}
		if !found {
			t.Fatalf("timeline missing %q after earlier events; full order: %v", want, actions)
		}
	}

	byAction := map[string]api.AuditEvent{}
	for _, ev := range evs {
		byAction[ev.Action] = ev
	}
	// The operator-driven mutations carry the e2e-test actor; the
	// rule-driven promotion names the engine; the swap names the gateway.
	if got := byAction["model.register"].Actor; got != "e2e-test" {
		t.Fatalf("register actor = %q", got)
	}
	if got := byAction["rule.fire"].Actor; got != "rules" {
		t.Fatalf("rule.fire actor = %q", got)
	}
	if got := byAction["serve.swap"].Actor; got != "gateway:gw-e2e" {
		t.Fatalf("serve.swap actor = %q", got)
	}
	// The rule-driven promote and the deploy-rule firing share one trace:
	// the metric insert request that triggered them. (The drift firing is
	// ticker-driven and carries no trace, so select by actor / first-fire
	// rather than the last-wins map.)
	var promote, fire api.AuditEvent
	for _, ev := range evs {
		if ev.Action == "version.promote" && ev.Actor == "rules" {
			promote = ev
		}
		if ev.Action == "rule.fire" && fire.Action == "" {
			fire = ev
		}
	}
	if promote.Action == "" {
		t.Fatal("no rules-actor version.promote in timeline")
	}
	if promote.TraceID == "" || promote.TraceID != fire.TraceID {
		t.Fatalf("promote trace %q != rule.fire trace %q", promote.TraceID, fire.TraceID)
	}

	// Every galleryd-side trace ID must resolve at /v1/debug/traces/{id}.
	for _, ev := range evs {
		if ev.TraceID == "" || ev.Action == "serve.swap" {
			continue // the swap's trace lives in the gateway process
		}
		if _, err := c.DebugTrace(ev.TraceID); err != nil {
			t.Fatalf("trace %s of %s does not resolve: %v", ev.TraceID, ev.Action, err)
		}
	}

	// The log ring carries request lines correlated to the same traces.
	logs, err := c.DebugLogs(client.LogsQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if len(logs.Entries) == 0 {
		t.Fatal("debug log ring is empty")
	}
	correlated := false
	for _, e := range logs.Entries {
		if e.TraceID != "" && e.TraceID == promote.TraceID {
			correlated = true
			break
		}
	}
	if !correlated {
		t.Fatalf("no log line carries the promotion trace %s", promote.TraceID)
	}

	// The instance timeline view joins through entity_id alone.
	aEvs, err := c.EntityTimeline(inA.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	var aActions []string
	for _, ev := range aEvs {
		aActions = append(aActions, ev.Action)
	}
	for _, want := range []string{"instance.upload", "version.promote", "serve.swap", "instance.deprecate"} {
		found := false
		for _, got := range aActions {
			if got == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("instance timeline missing %q: %v", want, aActions)
		}
	}
}

// TestAuditSearchAndIngest pins the /v1/audit search parameters and the
// external-emitter ingest path.
func TestAuditSearchAndIngest(t *testing.T) {
	clk := clock.NewMock(t0)
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk, UUIDs: uuid.NewSeeded(32),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWith(reg, nil, nil, Options{Obs: obs.NewRegistry()})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	c := client.NewWith(ts.URL, client.Options{HTTP: ts.Client(), Actor: "searcher"})

	m, err := c.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv-s", Project: "p", Name: "n"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DeprecateModel(m.ID); err != nil {
		t.Fatal(err)
	}

	// External ingest: a gateway-shaped event lands with its own actor.
	if err := c.ReportAuditEvent(context.Background(), api.AuditEvent{
		Actor: "gateway:gw-x", Action: "serve.swap", EntityType: "instance",
		EntityID: "in-1", ModelID: m.ID, Before: "none", After: "v1.0 (in-1)",
	}); err != nil {
		t.Fatal(err)
	}
	// Ingest without the required fields is rejected, not dropped silently.
	if err := c.ReportAuditEvent(context.Background(), api.AuditEvent{EntityType: "instance"}); err == nil {
		t.Fatal("event without action/entity accepted")
	}

	evs, err := c.AuditEvents(client.AuditQuery{Action: "model.deprecate"})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].EntityID != m.ID || evs[0].Actor != "searcher" {
		t.Fatalf("action filter = %+v", evs)
	}
	if evs[0].Before != "active" || evs[0].After != "deprecated" {
		t.Fatalf("deprecate summary = %q -> %q", evs[0].Before, evs[0].After)
	}

	evs, err = c.AuditEvents(client.AuditQuery{Actor: "gateway:gw-x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Action != "serve.swap" {
		t.Fatalf("actor filter = %+v", evs)
	}

	// Raw predicates ride where=field:op:value with the search operators.
	evs, err = c.AuditEvents(client.AuditQuery{Where: []string{"action:prefix:model."}, Asc: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Action != "model.register" || evs[1].Action != "model.deprecate" {
		t.Fatalf("where filter = %+v", evs)
	}

	if _, err := c.AuditEvents(client.AuditQuery{Where: []string{"nonsense"}}); err == nil {
		t.Fatal("malformed where accepted")
	}
	if _, err := c.AuditEvents(client.AuditQuery{Since: "not-a-time"}); err == nil {
		t.Fatal("malformed since accepted")
	}
}
