// Package client is the Go client for the Gallery service — the
// reproduction's equivalent of the paper's language-specific Thrift
// clients (§4.1). Every method maps to one service call.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"gallery/internal/api"
	"gallery/internal/obs/profile"
	"gallery/internal/obs/trace"
)

// Options tunes a Client.
type Options struct {
	// HTTP is the underlying transport; nil uses http.DefaultClient.
	HTTP *http.Client
	// Retries bounds re-attempts after the first try for transient
	// failures: dial errors (the request never left this process, so any
	// method is safe to resend), and — for idempotent GETs only — other
	// connection errors and 5xx responses. 0 disables retry entirely.
	Retries int
	// RetryBase is the first backoff delay (default 50ms); each further
	// attempt doubles it, capped at RetryMax (default 2s). The actual
	// sleep is jittered uniformly over [delay/2, delay] so a fleet of
	// clients recovering together does not thunder in lockstep.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Sleep replaces time.Sleep between attempts; tests inject a recorder.
	Sleep func(time.Duration)
	// Actor, when set, is sent as the X-Gallery-Actor header on every
	// request, naming this caller in the service's lifecycle audit trail.
	// Ignored by servers running with auth enabled, where the verified
	// Token identity wins.
	Actor string
	// Token, when set, is sent as `Authorization: Bearer <Token>` on every
	// request — the credential for servers running the multi-tenant
	// control plane.
	Token string
}

// Client talks to one Gallery service endpoint.
type Client struct {
	base string
	http *http.Client
	opts Options
}

// New returns a client for the service at base (e.g.
// "http://localhost:8440"). httpClient may be nil for the default.
func New(base string, httpClient *http.Client) *Client {
	return NewWith(base, Options{HTTP: httpClient})
}

// NewWith returns a client with explicit Options.
func NewWith(base string, opts Options) *Client {
	if opts.HTTP == nil {
		opts.HTTP = http.DefaultClient
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 50 * time.Millisecond
	}
	if opts.RetryMax <= 0 {
		opts.RetryMax = 2 * time.Second
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	return &Client{base: base, http: opts.HTTP, opts: opts}
}

// APIError carries the service's error body and status code.
type APIError struct {
	Status int
	Msg    string
	// RetryAfter is the server's Retry-After hint on a 429 (zero when the
	// server sent none); the retry loop honors it over its own backoff.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("gallery: %d: %s", e.Status, e.Msg)
}

// do issues one request with bounded retry; out may be nil for statusless
// calls.
func (c *Client) do(method, path string, in, out any) error {
	return c.doCtx(context.Background(), method, path, in, out)
}

// doCtx is do carrying a caller context. When ctx holds an active span,
// every attempt becomes its own child span (annotated with the attempt
// number and the backoff slept before it) and the request carries a W3C
// traceparent header, so a traced server joins the caller's trace across
// the process boundary.
func (c *Client) doCtx(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		payload = b
	}
	var backoff time.Duration
	for attempt := 0; ; attempt++ {
		err := c.once(ctx, method, path, in != nil, payload, out, attempt, backoff)
		if err == nil {
			return nil
		}
		if attempt >= c.opts.Retries || !retryable(method, err) {
			return err
		}
		backoff = c.backoff(attempt)
		// A rate-limited server told us when capacity returns; sleeping
		// less would burn an attempt on a guaranteed 429. Honor the hint
		// (still jittered so a capped fleet does not re-arrive in lockstep,
		// still bounded by RetryMax like every other backoff).
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.RetryAfter > backoff {
			backoff = apiErr.RetryAfter + rand.N(apiErr.RetryAfter/4+1)
			if backoff > c.opts.RetryMax {
				backoff = c.opts.RetryMax
			}
		}
		c.opts.Sleep(backoff)
	}
}

// once issues exactly one HTTP round trip.
func (c *Client) once(ctx context.Context, method, path string, hasBody bool, payload []byte, out any, attempt int, backoff time.Duration) (err error) {
	_, span := trace.Start(ctx, "client.request")
	if span != nil {
		span.Annotate("http.method", method)
		span.Annotate("http.path", path)
		span.AnnotateInt("attempt", int64(attempt))
		if backoff > 0 {
			span.AnnotateDuration("backoff", backoff)
		}
		defer func() { span.EndErr(err) }()
	}
	var body io.Reader
	if hasBody {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.opts.Actor != "" {
		req.Header.Set("X-Gallery-Actor", c.opts.Actor)
	}
	if c.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.opts.Token)
	}
	if span != nil {
		req.Header.Set("traceparent", span.Traceparent())
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if span != nil {
		span.AnnotateInt("http.status", int64(resp.StatusCode))
	}
	if resp.StatusCode >= 400 {
		apiErr := &APIError{Status: resp.StatusCode, Msg: string(data)}
		var e api.Error
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			apiErr.Msg = e.Error
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				apiErr.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return apiErr
	}
	if out != nil {
		if raw, ok := out.(*[]byte); ok {
			*raw = data
			return nil
		}
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("client: decode response: %w", err)
		}
	}
	return nil
}

// retryable decides whether a failed attempt may be resent. Dial errors
// are safe for every method (no bytes reached the server). Anything else —
// a connection dropped mid-flight, a 5xx — is only safe when the request
// is an idempotent GET; a resent POST could double-apply.
func retryable(method string, err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		// 429 was rejected before any handler ran, so resending is safe
		// for every method.
		if apiErr.Status == http.StatusTooManyRequests {
			return true
		}
		return method == http.MethodGet && apiErr.Status >= 500
	}
	var opErr *net.OpError
	if errors.As(err, &opErr) && opErr.Op == "dial" {
		return true
	}
	var urlErr *url.Error
	if errors.As(err, &urlErr) || errors.As(err, &opErr) || errors.Is(err, io.ErrUnexpectedEOF) {
		return method == http.MethodGet
	}
	// Anything else (encode/decode failures, bad requests) is
	// deterministic; retrying cannot help.
	return false
}

// backoff returns the jittered exponential delay before re-attempt n+1.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.RetryBase
	for i := 0; i < attempt && d < c.opts.RetryMax; i++ {
		d *= 2
	}
	if d > c.opts.RetryMax {
		d = c.opts.RetryMax
	}
	half := d / 2
	return half + rand.N(half+1)
}

// RegisterModel creates a model.
func (c *Client) RegisterModel(req api.RegisterModelRequest) (api.Model, error) {
	var m api.Model
	err := c.do("POST", "/v1/models", req, &m)
	return m, err
}

// GetModel fetches a model by id.
func (c *Client) GetModel(id string) (api.Model, error) {
	var m api.Model
	err := c.do("GET", "/v1/models/"+id, nil, &m)
	return m, err
}

// ModelsByBase lists model records under a base version id.
func (c *Client) ModelsByBase(base string) ([]api.Model, error) {
	var ms []api.Model
	err := c.do("GET", "/v1/models?base_version_id="+url.QueryEscape(base), nil, &ms)
	return ms, err
}

// EvolveModel registers a model's successor.
func (c *Client) EvolveModel(id, description string) (api.Model, error) {
	var m api.Model
	err := c.do("POST", "/v1/models/"+id+"/evolve", api.EvolveModelRequest{Description: description}, &m)
	return m, err
}

// Evolution returns a model's prev/next chain.
func (c *Client) Evolution(id string) ([]api.Model, error) {
	var ms []api.Model
	err := c.do("GET", "/v1/models/"+id+"/evolution", nil, &ms)
	return ms, err
}

// DeprecateModel flags a model.
func (c *Client) DeprecateModel(id string) error {
	return c.do("POST", "/v1/models/"+id+"/deprecate", struct{}{}, nil)
}

// VersionHistory returns a model's version records.
func (c *Client) VersionHistory(id string) ([]api.VersionRecord, error) {
	var vs []api.VersionRecord
	err := c.do("GET", "/v1/models/"+id+"/versions", nil, &vs)
	return vs, err
}

// ProductionVersion returns a model's promoted version.
func (c *Client) ProductionVersion(id string) (api.VersionRecord, error) {
	return c.ProductionVersionCtx(context.Background(), id)
}

// ProductionVersionCtx is ProductionVersion with trace propagation.
func (c *Client) ProductionVersionCtx(ctx context.Context, id string) (api.VersionRecord, error) {
	var v api.VersionRecord
	err := c.doCtx(ctx, "GET", "/v1/models/"+id+"/production", nil, &v)
	return v, err
}

// Promote makes a version the production version of its model.
func (c *Client) Promote(versionID string) error {
	return c.do("POST", "/v1/versions/"+versionID+"/promote", struct{}{}, nil)
}

// PromoteInstance promotes the version record an instance realizes — the
// remote form of the rule engine's deploy callback.
func (c *Client) PromoteInstance(instanceID string) error {
	return c.do("POST", "/v1/instances/"+instanceID+"/promote", struct{}{}, nil)
}

// Predict asks a serving gateway (a galleryserve endpoint, not galleryd)
// for a forecast from a model's production instance.
func (c *Client) Predict(modelID string, req api.PredictRequest) (api.PredictResponse, error) {
	return c.PredictCtx(context.Background(), modelID, req)
}

// PredictCtx is Predict with trace propagation.
func (c *Client) PredictCtx(ctx context.Context, modelID string, req api.PredictRequest) (api.PredictResponse, error) {
	var resp api.PredictResponse
	err := c.doCtx(ctx, "POST", "/v1/predict/"+url.PathEscape(modelID), req, &resp)
	return resp, err
}

// ServingStatus lists the models a serving gateway currently holds loaded.
func (c *Client) ServingStatus() ([]api.ServingModel, error) {
	var out []api.ServingModel
	err := c.do("GET", "/v1/serving", nil, &out)
	return out, err
}

// Upstreams lists direct dependencies of a model.
func (c *Client) Upstreams(id string) ([]string, error) {
	var out []string
	err := c.do("GET", "/v1/models/"+id+"/upstreams", nil, &out)
	return out, err
}

// Downstreams lists direct dependents of a model.
func (c *Client) Downstreams(id string) ([]string, error) {
	var out []string
	err := c.do("GET", "/v1/models/"+id+"/downstreams", nil, &out)
	return out, err
}

// AddDependency records that from depends on to.
func (c *Client) AddDependency(from, to string) error {
	return c.do("POST", "/v1/deps", api.DependencyRequest{From: from, To: to}, nil)
}

// RemoveDependency removes the from→to edge.
func (c *Client) RemoveDependency(from, to string) error {
	return c.do("DELETE", "/v1/deps", api.DependencyRequest{From: from, To: to}, nil)
}

// UploadInstance saves a trained model instance with its blob.
func (c *Client) UploadInstance(req api.UploadInstanceRequest) (api.Instance, error) {
	var in api.Instance
	err := c.do("POST", "/v1/instances", req, &in)
	return in, err
}

// GetInstance fetches instance metadata.
func (c *Client) GetInstance(id string) (api.Instance, error) {
	return c.GetInstanceCtx(context.Background(), id)
}

// GetInstanceCtx is GetInstance with trace propagation.
func (c *Client) GetInstanceCtx(ctx context.Context, id string) (api.Instance, error) {
	var in api.Instance
	err := c.doCtx(ctx, "GET", "/v1/instances/"+id, nil, &in)
	return in, err
}

// FetchBlob downloads an instance's serialized model bytes.
func (c *Client) FetchBlob(id string) ([]byte, error) {
	return c.FetchBlobCtx(context.Background(), id)
}

// FetchBlobCtx is FetchBlob with trace propagation.
func (c *Client) FetchBlobCtx(ctx context.Context, id string) ([]byte, error) {
	var raw []byte
	err := c.doCtx(ctx, "GET", "/v1/instances/"+id+"/blob", nil, &raw)
	return raw, err
}

// DeprecateInstance flags an instance.
func (c *Client) DeprecateInstance(id string) error {
	return c.do("POST", "/v1/instances/"+id+"/deprecate", struct{}{}, nil)
}

// InsertMetric records one measurement (paper Listing 4).
func (c *Client) InsertMetric(instanceID, name, scope string, value float64) (api.Metric, error) {
	var m api.Metric
	err := c.do("POST", "/v1/instances/"+instanceID+"/metrics",
		api.InsertMetricRequest{Name: name, Scope: scope, Value: value}, &m)
	return m, err
}

// InsertMetrics records a metrics blob.
func (c *Client) InsertMetrics(instanceID, scope string, values map[string]float64) error {
	return c.do("POST", "/v1/instances/"+instanceID+"/metricset",
		api.InsertMetricsRequest{Scope: scope, Values: values}, nil)
}

// InsertMetricsBlob ships a raw "<metric>:<value>" blob (paper §3.3.3).
func (c *Client) InsertMetricsBlob(instanceID, scope string, blob []byte) error {
	req, err := http.NewRequest("POST",
		c.base+"/v1/instances/"+instanceID+"/metricsblob?scope="+url.QueryEscape(scope),
		bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/plain")
	// This is the one call that bypasses once() (the body is raw text,
	// not JSON), so it must attach the identity headers itself.
	if c.opts.Actor != "" {
		req.Header.Set("X-Gallery-Actor", c.opts.Actor)
	}
	if c.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.opts.Token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		data, _ := io.ReadAll(resp.Body)
		var e api.Error
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return &APIError{Status: resp.StatusCode, Msg: e.Error}
		}
		return &APIError{Status: resp.StatusCode, Msg: string(data)}
	}
	return nil
}

// CheckFleetHealth sweeps a project's instances for drift, skew, and
// metadata completeness.
func (c *Client) CheckFleetHealth(req api.FleetHealthRequest) (api.FleetHealth, error) {
	var rep api.FleetHealth
	err := c.do("POST", "/v1/health/fleet", req, &rep)
	return rep, err
}

// MetricSeries fetches measurements of one metric for an instance.
func (c *Client) MetricSeries(instanceID, name, scope string) ([]api.Metric, error) {
	var ms []api.Metric
	err := c.do("GET", "/v1/instances/"+instanceID+"/metrics?name="+url.QueryEscape(name)+
		"&scope="+url.QueryEscape(scope), nil, &ms)
	return ms, err
}

// Search queries instances (paper Listing 5).
func (c *Client) Search(req api.SearchRequest) ([]api.Instance, error) {
	var ins []api.Instance
	err := c.do("POST", "/v1/search", req, &ins)
	return ins, err
}

// Lineage lists instances under a base version id, oldest first.
func (c *Client) Lineage(base string) ([]api.Instance, error) {
	var ins []api.Instance
	err := c.do("GET", "/v1/lineage/"+url.PathEscape(base), nil, &ins)
	return ins, err
}

// Stats reports store sizes and headline observability numbers.
func (c *Client) Stats() (api.Stats, error) {
	var s api.Stats
	err := c.do("GET", "/v1/stats", nil, &s)
	return s, err
}

// DebugMetrics fetches the server's full metric registry snapshot
// (per-route histograms, storage and rule-engine counters) as raw JSON.
func (c *Client) DebugMetrics() (json.RawMessage, error) {
	var raw json.RawMessage
	err := c.do("GET", "/v1/debug/metrics", nil, &raw)
	return raw, err
}

// DebugMetricsProm fetches the same registry in Prometheus text
// exposition format 0.0.4 — the payload a scraper would see.
func (c *Client) DebugMetricsProm() ([]byte, error) {
	var raw []byte
	err := c.do("GET", "/v1/debug/metrics/prom", nil, &raw)
	return raw, err
}

// CreateSLO registers a burn-rate objective with the daemon's SLO
// evaluator. Latency thresholds are expressed in milliseconds on the
// wire.
func (c *Client) CreateSLO(req api.CreateSLORequest) (api.SLO, error) {
	var out api.SLO
	err := c.do("POST", "/v1/slo", req, &out)
	return out, err
}

// ListSLOs returns every configured objective.
func (c *Client) ListSLOs() ([]api.SLO, error) {
	var out api.SLOList
	err := c.do("GET", "/v1/slo", nil, &out)
	return out.SLOs, err
}

// DeleteSLO removes an objective and its published gauges.
func (c *Client) DeleteSLO(id string) error {
	return c.do("DELETE", "/v1/slo/"+url.PathEscape(id), nil, nil)
}

// SLOStatus returns the live burn-rate evaluation for every objective.
func (c *Client) SLOStatus() ([]api.SLOStatus, error) {
	var out api.SLOStatusList
	err := c.do("GET", "/v1/slo/status", nil, &out)
	return out.Statuses, err
}

// TriggerIncident asks the flight recorder for a manual capture.
// A 429 means the scope's debounce window is still open — the evidence
// was already captured moments ago.
func (c *Client) TriggerIncident(req api.TriggerIncidentRequest) (api.Incident, error) {
	var out api.Incident
	err := c.do("POST", "/v1/incidents", req, &out)
	return out, err
}

// ListIncidents returns persisted incident index rows, newest first
// (namespace-scoped under auth).
func (c *Client) ListIncidents() ([]api.Incident, error) {
	var out api.IncidentList
	err := c.do("GET", "/v1/incidents", nil, &out)
	return out.Incidents, err
}

// GetIncident fetches one incident and its full diagnostic bundle.
func (c *Client) GetIncident(id string) (api.IncidentDetail, error) {
	var out api.IncidentDetail
	err := c.do("GET", "/v1/incidents/"+url.PathEscape(id), nil, &out)
	return out, err
}

// DebugProfile fetches the continuous-profiling view: per-process
// top-N function summaries merged across retained windows. merge > 0
// restricts the fold to windows ending within that duration; topN > 0
// bounds functions per summary.
func (c *Client) DebugProfile(merge time.Duration, topN int) (profile.View, error) {
	path := "/v1/debug/profile"
	q := url.Values{}
	if merge > 0 {
		q.Set("merge", merge.String())
	}
	if topN > 0 {
		q.Set("n", strconv.Itoa(topN))
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out profile.View
	err := c.do("GET", path, nil, &out)
	return out, err
}

// DebugTraces lists the newest sampled traces held in the server's ring
// buffer as raw JSON ({"stats": ..., "traces": [...]}). limit <= 0 uses
// the server default.
func (c *Client) DebugTraces(limit int) (json.RawMessage, error) {
	path := "/v1/debug/traces"
	if limit > 0 {
		path += "?limit=" + strconv.Itoa(limit)
	}
	var raw json.RawMessage
	err := c.do("GET", path, nil, &raw)
	return raw, err
}

// DebugTrace fetches one trace by 32-hex trace id, including its span
// tree, as raw JSON.
func (c *Client) DebugTrace(id string) (json.RawMessage, error) {
	var raw json.RawMessage
	err := c.do("GET", "/v1/debug/traces/"+url.PathEscape(id), nil, &raw)
	return raw, err
}

// CommitRules lands rule changes in the repository.
func (c *Client) CommitRules(author, message string, upserts []json.RawMessage, deletes []string) (string, error) {
	var out map[string]string
	err := c.do("POST", "/v1/rules", api.CommitRulesRequest{
		Author: author, Message: message, Upserts: upserts, Deletes: deletes,
	}, &out)
	return out["hash"], err
}

// ListRules returns the active rule set as raw JSON.
func (c *Client) ListRules() (json.RawMessage, error) {
	var raw []byte
	if err := c.do("GET", "/v1/rules", nil, &raw); err != nil {
		return nil, err
	}
	return json.RawMessage(raw), nil
}

// SelectModel triggers a selection rule and returns the champion.
func (c *Client) SelectModel(ruleID string, filter api.SearchRequest) (api.Instance, error) {
	var in api.Instance
	err := c.do("POST", "/v1/rules/"+ruleID+"/select", api.SelectModelRequest{Filter: filter}, &in)
	return in, err
}

// Alerts returns the rule engine's alert log.
func (c *Client) Alerts() ([]api.Alert, error) {
	var out []api.Alert
	err := c.do("GET", "/v1/alerts", nil, &out)
	return out, err
}

// CheckDrift runs a drift check on an instance.
func (c *Client) CheckDrift(instanceID string, req api.DriftRequest) (api.DriftReport, error) {
	var rep api.DriftReport
	err := c.do("POST", "/v1/instances/"+instanceID+"/drift", req, &rep)
	return rep, err
}

// CheckSkew runs a production-skew check on an instance.
func (c *Client) CheckSkew(instanceID string, req api.SkewRequest) (api.SkewReport, error) {
	var rep api.SkewReport
	err := c.do("POST", "/v1/instances/"+instanceID+"/skew", req, &rep)
	return rep, err
}

// ReportHealthObservations ships a batch of gateway observation windows
// to galleryd's health monitor. *Client satisfies serve.HealthSink, so a
// gateway pointed at galleryd flushes its sketches here.
func (c *Client) ReportHealthObservations(ctx context.Context, req api.HealthObservationsRequest) error {
	var resp api.HealthObservationsResponse
	return c.doCtx(ctx, "POST", "/v1/health/observations", req, &resp)
}

// ListModelHealth reads every tracked model's health verdict.
func (c *Client) ListModelHealth() ([]api.ModelHealth, error) {
	var out []api.ModelHealth
	err := c.do("GET", "/v1/health/models", nil, &out)
	return out, err
}

// ModelHealth reads one model's health verdict.
func (c *Client) ModelHealth(modelID string) (api.ModelHealth, error) {
	var out api.ModelHealth
	err := c.do("GET", "/v1/health/models/"+modelID, nil, &out)
	return out, err
}

// AuditQuery filters an AuditEvents search. All set fields AND together.
// Since/Until accept an RFC3339 instant or a relative duration ("15m"
// means that long ago); Where entries are raw "field:op:value" predicates
// using the operator names of POST /v1/search.
type AuditQuery struct {
	Entity string
	Model  string
	Action string
	Actor  string
	Trace  string
	Since  string
	Until  string
	Where  []string
	Limit  int
	Asc    bool // oldest first; default is newest first
}

// AuditEvents searches the service's lifecycle audit trail (GET /v1/audit).
func (c *Client) AuditEvents(q AuditQuery) ([]api.AuditEvent, error) {
	v := url.Values{}
	set := func(k, val string) {
		if val != "" {
			v.Set(k, val)
		}
	}
	set("entity", q.Entity)
	set("model", q.Model)
	set("action", q.Action)
	set("actor", q.Actor)
	set("trace", q.Trace)
	set("since", q.Since)
	set("until", q.Until)
	for _, w := range q.Where {
		v.Add("where", w)
	}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	if q.Asc {
		v.Set("order", "asc")
	}
	path := "/v1/audit"
	if enc := v.Encode(); enc != "" {
		path += "?" + enc
	}
	var out api.AuditEventsResponse
	err := c.do("GET", path, nil, &out)
	return out.Events, err
}

// EntityTimeline reads one entity's audit lineage — the events naming it
// plus, for a model, events on its instances and versions — in write
// order (GET /v1/audit/entity/{id}). limit <= 0 uses the server default.
func (c *Client) EntityTimeline(id string, limit int) ([]api.AuditEvent, error) {
	path := "/v1/audit/entity/" + url.PathEscape(id)
	if limit > 0 {
		path += "?limit=" + strconv.Itoa(limit)
	}
	var out api.AuditEventsResponse
	err := c.do("GET", path, nil, &out)
	return out.Events, err
}

// ReportAuditEvent ships one externally-witnessed lifecycle event to the
// service's audit trail (POST /v1/audit). *Client satisfies
// serve.AuditSink, so a gateway pointed at galleryd records its hot swaps
// in the same trail as the promotions that caused them.
func (c *Client) ReportAuditEvent(ctx context.Context, ev api.AuditEvent) error {
	var resp api.RecordAuditResponse
	return c.doCtx(ctx, "POST", "/v1/audit", api.RecordAuditRequest{Events: []api.AuditEvent{ev}}, &resp)
}

// LogsQuery filters a DebugLogs read.
type LogsQuery struct {
	Level string // debug | info | warn | error
	Since string // RFC3339 or a relative duration like 5m
	// After is the next_seq cursor of a previous response; HasAfter
	// distinguishes "from seq 0" from "no cursor".
	After    uint64
	HasAfter bool
	Limit    int
}

// DebugLogs reads the process's structured-log ring (GET /v1/debug/logs),
// oldest first. The returned NextSeq goes back in LogsQuery.After to
// receive only newer lines — follow mode.
func (c *Client) DebugLogs(q LogsQuery) (api.DebugLogsResponse, error) {
	v := url.Values{}
	if q.Level != "" {
		v.Set("level", q.Level)
	}
	if q.Since != "" {
		v.Set("since", q.Since)
	}
	if q.HasAfter {
		v.Set("after", strconv.FormatUint(q.After, 10))
	}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	path := "/v1/debug/logs"
	if enc := v.Encode(); enc != "" {
		path += "?" + enc
	}
	var out api.DebugLogsResponse
	err := c.do("GET", path, nil, &out)
	return out, err
}
