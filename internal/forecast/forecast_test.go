package forecast

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var start = time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)

func sampleCity(seed int64) CityConfig {
	return CityConfig{
		Name: "testville", Base: 500, GrowthPerWeek: 10,
		DailyAmp: 120, WeeklyAmp: 40, NoiseStd: 15, Seed: seed,
	}
}

func TestEvaluateKnownValues(t *testing.T) {
	pred := []float64{110, 90, 100}
	actual := []float64{100, 100, 100}
	m, err := Evaluate(pred, actual)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.MAPE-20.0/3) > 1e-9 {
		t.Fatalf("MAPE = %v", m.MAPE)
	}
	if math.Abs(m.MAE-20.0/3) > 1e-9 {
		t.Fatalf("MAE = %v", m.MAE)
	}
	if math.Abs(m.Bias-0) > 1e-9 {
		t.Fatalf("Bias = %v", m.Bias)
	}
	if m.N != 3 {
		t.Fatalf("N = %d", m.N)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Evaluate(nil, nil); err == nil {
		t.Fatal("empty evaluation accepted")
	}
}

func TestEvaluatePerfectPrediction(t *testing.T) {
	actual := []float64{5, 7, 9, 11}
	m, err := Evaluate(actual, actual)
	if err != nil {
		t.Fatal(err)
	}
	if m.MAPE != 0 || m.MAE != 0 || m.RMSE != 0 || m.R2 != 1 {
		t.Fatalf("perfect prediction metrics = %+v", m)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := sampleCity(42)
	a := Generate(cfg, start, time.Hour, 500)
	b := Generate(cfg, start, time.Hour, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
	cfg2 := sampleCity(43)
	c := Generate(cfg2, start, time.Hour, 500)
	same := true
	for i := range a {
		if a[i].V != c[i].V {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical series")
	}
}

func TestGenerateNonNegativeAndSeasonal(t *testing.T) {
	s := Generate(sampleCity(1), start, time.Hour, 24*28)
	for _, p := range s {
		if p.V < 0 {
			t.Fatalf("negative demand %v at %v", p.V, p.T)
		}
	}
}

func TestGenerateEvents(t *testing.T) {
	cfg := sampleCity(2)
	cfg.Events = []Event{{
		Start: start.Add(48 * time.Hour), End: start.Add(72 * time.Hour), Multiplier: 2.0,
	}}
	s := Generate(cfg, start, time.Hour, 24*5)
	inEvent := 0
	for _, p := range s {
		if p.Event {
			inEvent++
			if p.T.Before(cfg.Events[0].Start) || !p.T.Before(cfg.Events[0].End) {
				t.Fatal("event flag outside window")
			}
		}
	}
	if inEvent != 24 {
		t.Fatalf("%d event points, want 24", inEvent)
	}
}

func TestGenerateRegimeShift(t *testing.T) {
	cfg := sampleCity(3)
	cfg.NoiseStd = 0
	cfg.DailyAmp, cfg.WeeklyAmp, cfg.GrowthPerWeek = 0, 0, 0
	cfg.ShiftAt = start.Add(100 * time.Hour)
	cfg.ShiftFactor = 2.0
	s := Generate(cfg, start, time.Hour, 200)
	if s[50].V != 500 || s[150].V != 1000 {
		t.Fatalf("shift: v[50]=%v v[150]=%v", s[50].V, s[150].V)
	}
}

func TestHeuristicMean(t *testing.T) {
	h := &Heuristic{K: 3}
	if err := h.Train(nil); err != nil {
		t.Fatal(err)
	}
	got := h.Forecast(Context{History: []float64{1, 2, 3, 4, 5, 6}})
	if got != 5 {
		t.Fatalf("mean of last 3 = %v, want 5", got)
	}
	// Shorter history than K.
	if got := h.Forecast(Context{History: []float64{10}}); got != 10 {
		t.Fatalf("short history = %v", got)
	}
	if got := h.Forecast(Context{}); got != 0 {
		t.Fatalf("empty history = %v", got)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := &EWMA{Alpha: 0.5}
	hist := make([]float64, 50)
	for i := range hist {
		hist[i] = 42
	}
	if got := e.Forecast(Context{History: hist}); math.Abs(got-42) > 1e-9 {
		t.Fatalf("EWMA on constant series = %v", got)
	}
}

func TestSeasonalNaive(t *testing.T) {
	s := &SeasonalNaive{Period: 24}
	if err := s.Train(nil); err != nil {
		t.Fatal(err)
	}
	hist := make([]float64, 48)
	for i := range hist {
		hist[i] = float64(i)
	}
	if got := s.Forecast(Context{History: hist}); got != 24 {
		t.Fatalf("seasonal naive = %v, want 24", got)
	}
	bad := &SeasonalNaive{}
	if err := bad.Train(nil); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestLinearARLearnsSeasonalSeries(t *testing.T) {
	cfg := sampleCity(7)
	data := Generate(cfg, start, time.Hour, 24*60)
	trainN := 24 * 45

	ar := &LinearAR{Lags: 24}
	arMetrics, err := Backtest(ar, data, trainN)
	if err != nil {
		t.Fatal(err)
	}
	naive := &Heuristic{K: 1} // random walk baseline
	naiveMetrics, err := Backtest(naive, data, trainN)
	if err != nil {
		t.Fatal(err)
	}
	if arMetrics.MAPE >= naiveMetrics.MAPE {
		t.Fatalf("AR MAPE %.2f not better than naive %.2f", arMetrics.MAPE, naiveMetrics.MAPE)
	}
	if arMetrics.R2 < 0.8 {
		t.Fatalf("AR R2 = %.3f on a strongly seasonal series", arMetrics.R2)
	}
}

func TestLinearARNeedsData(t *testing.T) {
	ar := &LinearAR{Lags: 24}
	short := Generate(sampleCity(8), start, time.Hour, 20)
	if err := ar.Train(short); err == nil {
		t.Fatal("training on 20 points with 24 lags succeeded")
	}
}

func TestLinearARUntrainedFallback(t *testing.T) {
	ar := &LinearAR{Lags: 4}
	if got := ar.Forecast(Context{History: []float64{1, 2, 3, 9}}); got != 9 {
		t.Fatalf("untrained fallback = %v, want last value", got)
	}
	if got := ar.Forecast(Context{}); got != 0 {
		t.Fatalf("untrained empty = %v", got)
	}
}

func TestEventFeatureImprovesEventAccuracy(t *testing.T) {
	cfg := sampleCity(9)
	// Weekly recurring events in train and test.
	for w := 0; w < 10; w++ {
		ev := start.Add(time.Duration(w)*7*24*time.Hour + 5*24*time.Hour)
		cfg.Events = append(cfg.Events, Event{Start: ev, End: ev.Add(24 * time.Hour), Multiplier: 1.8})
	}
	data := Generate(cfg, start, time.Hour, 24*70)
	trainN := 24 * 49

	plain := &LinearAR{Lags: 24}
	aware := &LinearAR{Lags: 24, UseEventFeature: true}
	pm, err := Backtest(plain, data, trainN)
	if err != nil {
		t.Fatal(err)
	}
	am, err := Backtest(aware, data, trainN)
	if err != nil {
		t.Fatal(err)
	}
	if am.MAPE >= pm.MAPE {
		t.Fatalf("event-aware MAPE %.2f not better than plain %.2f on eventful series", am.MAPE, pm.MAPE)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	data := Generate(sampleCity(10), start, time.Hour, 24*40)
	models := []Model{
		&Heuristic{K: 5},
		&EWMA{Alpha: 0.4},
		&SeasonalNaive{Period: 24},
		&LinearAR{Lags: 12},
	}
	ctx := Context{History: data.Values()[:24*39], Time: data[24*39].T}
	for _, m := range models {
		if err := m.Train(data[:24*39]); err != nil {
			t.Fatalf("train %s: %v", m.Name(), err)
		}
		want := m.Forecast(ctx)
		blob, err := Encode(m)
		if err != nil {
			t.Fatalf("encode %s: %v", m.Name(), err)
		}
		back, err := Decode(blob)
		if err != nil {
			t.Fatalf("decode %s: %v", m.Name(), err)
		}
		if back.Name() != m.Name() {
			t.Fatalf("decoded name %s != %s", back.Name(), m.Name())
		}
		got := back.Forecast(ctx)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("%s: decoded forecast %v != %v", m.Name(), got, want)
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a model")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestBacktestValidation(t *testing.T) {
	data := Generate(sampleCity(11), start, time.Hour, 100)
	if _, err := Backtest(&Heuristic{K: 5}, data, 0); err == nil {
		t.Fatal("trainN=0 accepted")
	}
	if _, err := Backtest(&Heuristic{K: 5}, data, 100); err == nil {
		t.Fatal("trainN=len accepted")
	}
}

func TestRollingMAPEWindow(t *testing.T) {
	data := Generate(sampleCity(12), start, time.Hour, 200)
	m := &Heuristic{K: 5}
	if err := m.Train(nil); err != nil {
		t.Fatal(err)
	}
	v, err := RollingMAPE(m, data, 100, 150)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Fatalf("MAPE = %v", v)
	}
	if _, err := RollingMAPE(m, data, 150, 100); err == nil {
		t.Fatal("inverted window accepted")
	}
}

func TestDefaultCities(t *testing.T) {
	cities := DefaultCities(15, 1)
	if len(cities) != 15 {
		t.Fatalf("got %d cities", len(cities))
	}
	seen := map[string]bool{}
	for _, c := range cities {
		if c.Base <= 0 || c.NoiseStd <= 0 {
			t.Fatalf("degenerate city %+v", c)
		}
		seen[c.Name] = true
	}
	if len(seen) != 15 {
		t.Fatalf("city names not unique: %d distinct", len(seen))
	}
}

// Property: solveLeastSquares recovers coefficients of an exactly linear
// system.
func TestQuickLeastSquaresRecovery(t *testing.T) {
	f := func(a, b int8) bool {
		slope := float64(a) / 16
		intercept := float64(b) / 16
		var X [][]float64
		var y []float64
		for x := 0.0; x < 20; x++ {
			X = append(X, []float64{1, x})
			y = append(y, intercept+slope*x)
		}
		theta, err := solveLeastSquares(X, y, 0)
		if err != nil {
			return false
		}
		return math.Abs(theta[0]-intercept) < 1e-6 && math.Abs(theta[1]-slope) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Evaluate of a prediction equal to actual scaled by (1+e) has
// MAPE 100|e| for positive actuals.
func TestQuickMAPEScaling(t *testing.T) {
	f := func(e int8) bool {
		scale := 1 + float64(e)/200 // within (0.36, 1.64)
		actual := []float64{10, 20, 30, 40}
		pred := make([]float64, len(actual))
		for i, a := range actual {
			pred[i] = a * scale
		}
		m, err := Evaluate(pred, actual)
		if err != nil {
			return false
		}
		return math.Abs(m.MAPE-100*math.Abs(scale-1)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
