package experiments

import (
	"fmt"
	"strings"
	"time"

	"gallery/internal/benchfmt"
	"gallery/internal/blobstore"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/forecast"
	"gallery/internal/relstore"
	"gallery/internal/uuid"
)

// Experiment E20 — audit trail growth under lifecycle churn (extension of
// the paper's §3 metadata management). Two instances of one model are
// promoted back and forth for many rounds — the worst case for an
// append-only trail, since every flip writes promotion events for both the
// winner and the loser's shared model timeline. With per-entity retention
// (core.Options.AuditKeep) the trail must stay bounded near
// keep × live-entities while the pruned counter absorbs the rest; an
// unbounded trail here is the failure the retention policy exists to
// prevent.

// AuditChurnSample is the trail size observed after one measured round.
type AuditChurnSample struct {
	Round int
	Len   int // events in the audit_events table
}

// AuditChurnResult is the experiment outcome.
type AuditChurnResult struct {
	Rounds   int
	Keep     int // per-entity retention bound
	Recorded int // events ever written (incl. later-pruned ones)
	Pruned   int // events removed by retention
	PeakLen  int
	FinalLen int
	// FlipThroughput is promotion flips per second over the churn loop —
	// each flip writes and prunes audit events, so this tracks the cost
	// of the retention machinery on the promote path.
	FlipThroughput float64
	Samples        []AuditChurnSample
}

// AuditChurn runs rounds of promote/deprecate churn over two instances
// with a small per-entity retention bound and reports trail growth.
func AuditChurn(rounds, keep int) (*AuditChurnResult, error) {
	clk := clock.NewMock(epoch)
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock:     clk,
		UUIDs:     uuid.NewSeeded(20),
		AuditKeep: keep,
	})
	if err != nil {
		return nil, err
	}

	m, err := reg.RegisterModel(core.ModelSpec{
		BaseVersionID: "churn_demand", Project: "marketplace", Name: "churner",
	})
	if err != nil {
		return nil, err
	}
	blob, err := forecast.Encode(&forecast.Heuristic{K: 1})
	if err != nil {
		return nil, err
	}
	a, err := reg.UploadInstance(core.InstanceSpec{ModelID: m.ID, Name: "churner", City: "sf"}, blob)
	if err != nil {
		return nil, err
	}
	b, err := reg.UploadInstance(core.InstanceSpec{ModelID: m.ID, Name: "churner", City: "sf"}, blob)
	if err != nil {
		return nil, err
	}

	res := &AuditChurnResult{Rounds: rounds, Keep: keep}
	res.Recorded = reg.Audit().Len() // register + uploads + auto-promotes
	sampleEvery := rounds / 8
	if sampleEvery == 0 {
		sampleEvery = 1
	}
	start := time.Now()
	for r := 1; r <= rounds; r++ {
		// B is production after its upload (even rounds thereafter), so
		// odd rounds promote A and even rounds promote B — every round is
		// a genuine pointer flip that lands audit events.
		target := a.ID
		if r%2 == 0 {
			target = b.ID
		}
		if err := reg.PromoteInstance(target); err != nil {
			return nil, err
		}
		res.Recorded++
		clk.Advance(time.Second) // distinct timestamps keep the timeline honest
		n := reg.Audit().Len()
		if n > res.PeakLen {
			res.PeakLen = n
		}
		if r%sampleEvery == 0 || r == rounds {
			res.Samples = append(res.Samples, AuditChurnSample{Round: r, Len: n})
		}
	}
	res.FlipThroughput = float64(rounds) / time.Since(start).Seconds()
	res.FinalLen = reg.Audit().Len()
	res.Pruned = res.Recorded - res.FinalLen
	return res, nil
}

// BenchMetrics emits BENCH_auditchurn.json metrics. The trail-size
// numbers are fully deterministic (seeded clock and IDs), so they gate
// with a tight tolerance; flip throughput is trajectory info.
func (r *AuditChurnResult) BenchMetrics() []benchfmt.Metric {
	bounded := 0.0
	if r.Bounded() {
		bounded = 1
	}
	return []benchfmt.Metric{
		{Name: "recorded_events", Unit: "events", Value: float64(r.Recorded), Better: benchfmt.Info},
		{Name: "pruned_events", Unit: "events", Value: float64(r.Pruned), Better: benchfmt.Info},
		{Name: "peak_trail_len", Unit: "events", Value: float64(r.PeakLen), Better: benchfmt.LowerIsBetter, Tol: 0.01},
		{Name: "final_trail_len", Unit: "events", Value: float64(r.FinalLen), Better: benchfmt.LowerIsBetter, Tol: 0.01},
		{Name: "bounded", Value: bounded, Better: benchfmt.HigherIsBetter, Tol: 0.01},
		{Name: "flip_throughput", Unit: "ops/s", Value: r.FlipThroughput, Better: benchfmt.Info},
	}
}

// Bounded reports whether the trail stayed within the retention envelope:
// keep events for each churned instance plus the model's own constant-size
// history.
func (r *AuditChurnResult) Bounded() bool {
	return r.PeakLen <= 2*r.Keep+8
}

// Format renders the growth curve as paper-style rows.
func (r *AuditChurnResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit trail under promotion churn (%d rounds, keep=%d per entity):\n", r.Rounds, r.Keep)
	fmt.Fprintf(&b, "%-8s %12s\n", "round", "trail events")
	for _, s := range r.Samples {
		fmt.Fprintf(&b, "%-8d %12d\n", s.Round, s.Len)
	}
	fmt.Fprintf(&b, "recorded %d, pruned %d, peak %d, final %d (bounded=%v)\n",
		r.Recorded, r.Pruned, r.PeakLen, r.FinalLen, r.Bounded())
	return b.String()
}
