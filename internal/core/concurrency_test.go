package core

import (
	"fmt"
	"sync"
	"testing"

	"gallery/internal/blobstore"
	"gallery/internal/relstore"
	"gallery/internal/uuid"
)

// TestConcurrentRegistryUse hammers the registry from many goroutines
// doing the full mix of operations — uploads, metrics, searches, blob
// fetches, dependency queries — and then audits global invariants.
// Run with -race for the interesting signal.
func TestConcurrentRegistryUse(t *testing.T) {
	g, err := New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), Options{
		UUIDs: uuid.NewSeeded(99),
	})
	if err != nil {
		t.Fatal(err)
	}
	const models = 4
	ms := make([]*Model, models)
	for i := range ms {
		m, err := g.RegisterModel(ModelSpec{
			BaseVersionID: fmt.Sprintf("conc%d", i), Project: "conc", Name: "m",
		})
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}
	// A dependency chain conc1 -> conc0 so uploads propagate under load.
	if err := g.AddDependency(ms[1].ID, ms[0].ID); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m := ms[(w+i)%models]
				in, err := g.UploadInstance(InstanceSpec{
					ModelID: m.ID, City: fmt.Sprintf("c%d", w),
				}, []byte(fmt.Sprintf("blob-%d-%d", w, i)))
				if err != nil {
					t.Errorf("upload: %v", err)
					return
				}
				if _, err := g.InsertMetric(in.ID, "mape", ScopeProduction, float64(i)); err != nil {
					t.Errorf("metric: %v", err)
					return
				}
				if _, err := g.FetchBlob(in.ID); err != nil {
					t.Errorf("fetch: %v", err)
					return
				}
				if _, err := g.SearchInstances(InstanceFilter{City: fmt.Sprintf("c%d", w), Limit: 5}); err != nil {
					t.Errorf("search: %v", err)
					return
				}
				if _, err := g.VersionHistory(m.ID); err != nil {
					t.Errorf("history: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Invariants after the storm.
	_, instances, metrics := g.Counts()
	if instances != workers*perWorker {
		t.Fatalf("instances = %d, want %d", instances, workers*perWorker)
	}
	if metrics != workers*perWorker {
		t.Fatalf("metrics = %d, want %d", metrics, workers*perWorker)
	}
	for _, m := range ms {
		latest, err := g.LatestVersion(m.ID)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := g.VersionHistory(m.ID)
		if err != nil {
			t.Fatal(err)
		}
		// History minors must be exactly 0..latest with no gaps or dups.
		if len(hist) != latest.Minor+1 {
			t.Fatalf("model %s: %d history records for latest minor %d",
				m.BaseVersionID, len(hist), latest.Minor)
		}
		for i, v := range hist {
			if v.Minor != i {
				t.Fatalf("model %s: history[%d].Minor = %d", m.BaseVersionID, i, v.Minor)
			}
		}
		// Exactly one production version.
		prodCount := 0
		for _, v := range hist {
			if v.Production {
				prodCount++
			}
		}
		if prodCount != 1 {
			t.Fatalf("model %s has %d production versions", m.BaseVersionID, prodCount)
		}
	}
	// No orphans: every metadata write committed with its blob.
	orphans, err := g.DAL().Orphans()
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 0 {
		t.Fatalf("orphans after concurrent use: %d", len(orphans))
	}
	dangling, err := g.DAL().Dangling()
	if err != nil {
		t.Fatal(err)
	}
	if len(dangling) != 0 {
		t.Fatalf("dangling metadata after concurrent use: %d", len(dangling))
	}
}
