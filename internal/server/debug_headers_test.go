package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gallery/internal/blobstore"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/obs"
	obslog "gallery/internal/obs/log"
	"gallery/internal/obs/profile"
	"gallery/internal/obs/trace"
	"gallery/internal/relstore"
	"gallery/internal/serve"
	"gallery/internal/uuid"
)

// TestDebugEndpointHeaders pins the header contract shared by every
// debug endpoint on BOTH daemons: an explicit application/json
// Content-Type and Cache-Control: no-store. Debug state is live state —
// a proxy that caches a trace tail or a log tail hands the operator a
// stale picture of an incident.
func TestDebugEndpointHeaders(t *testing.T) {
	clk := clock.NewMock(t0)
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk,
		UUIDs: uuid.NewSeeded(21),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWith(reg, nil, nil, Options{
		Obs:      obs.NewRegistry(),
		Tracer:   trace.New(trace.Options{Service: "galleryd", Sampler: trace.Always()}),
		Logs:     obslog.NewRing(64),
		Profiles: profile.NewFleet(0),
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)

	gw := serve.New(nil, serve.Options{RefreshInterval: -1, Obs: obs.NewRegistry()})
	t.Cleanup(gw.Close)
	gwProf := profile.New(profile.Config{Process: "galleryserve"})
	gwTS := httptest.NewServer(serve.NewHandler(gw,
		serve.WithTracer(trace.New(trace.Options{Service: "galleryserve", Sampler: trace.Always()})),
		serve.WithLogRing(obslog.NewRing(64)),
		serve.WithProfiler(gwProf),
	))
	t.Cleanup(gwTS.Close)

	cases := []struct {
		daemon string
		base   string
		path   string
	}{
		{"galleryd", ts.URL, "/v1/debug/logs"},
		{"galleryd", ts.URL, "/v1/debug/traces"},
		{"galleryd", ts.URL, "/v1/debug/metrics"},
		{"galleryd", ts.URL, "/v1/debug/profile"},
		{"galleryserve", gwTS.URL, "/v1/debug/logs"},
		{"galleryserve", gwTS.URL, "/v1/debug/traces"},
		{"galleryserve", gwTS.URL, "/v1/debug/metrics"},
		{"galleryserve", gwTS.URL, "/v1/debug/bundle"},
		{"galleryserve", gwTS.URL, "/v1/debug/profile"},
	}
	for _, tc := range cases {
		resp, err := http.Get(tc.base + tc.path)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.daemon, tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s %s: status = %d, want 200", tc.daemon, tc.path, resp.StatusCode)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s %s: Content-Type = %q, want application/json", tc.daemon, tc.path, ct)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s %s: Cache-Control = %q, want no-store", tc.daemon, tc.path, cc)
		}
	}
}
