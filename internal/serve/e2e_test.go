package serve_test

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gallery/internal/api"
	"gallery/internal/blobstore"
	"gallery/internal/client"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/forecast"
	"gallery/internal/obs"
	"gallery/internal/relstore"
	"gallery/internal/rules"
	"gallery/internal/serve"
	"gallery/internal/server"
	"gallery/internal/uuid"
)

// TestEndToEndDeployLoop drives the full closed loop of the paper's §4.2
// dynamic-switching story, over real HTTP at both tiers:
//
//	metric write → action rule fires → "deploy" callback promotes the
//	instance in core → the gateway's next refresh hot-swaps → traffic is
//	served by the new instance
//
// with predictions hammering the gateway the whole time and zero failures.
func TestEndToEndDeployLoop(t *testing.T) {
	clk := clock.NewMock(time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC))
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk,
		UUIDs: uuid.NewSeeded(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	repo := rules.NewRepo(clk)
	eng := rules.NewEngine(reg, repo, clk)
	eng.RegisterAction("deploy", rules.DeployAction(reg))
	srv := server.NewWith(reg, repo, eng, server.Options{Obs: obs.NewRegistry()})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	c := client.New(ts.URL, ts.Client())

	// Model with two instances: a baseline Heuristic{K:1} (answers the
	// last observed value) and a challenger Heuristic{K:2} (mean of the
	// last two). Uploads auto-promote the uploader's new version, so after
	// both uploads the baseline is explicitly re-promoted — from here on,
	// only the rule engine's deploy action can move production back to the
	// challenger.
	m, err := c.RegisterModel(api.RegisterModelRequest{
		BaseVersionID: "bv-demand",
		Project:       "marketplace",
		Name:          "demand",
		Domain:        "UberX",
	})
	if err != nil {
		t.Fatal(err)
	}
	blobA, err := forecast.Encode(&forecast.Heuristic{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	instA, err := c.UploadInstance(api.UploadInstanceRequest{ModelID: m.ID, Name: "baseline", City: "sf", Blob: blobA})
	if err != nil {
		t.Fatal(err)
	}
	blobB, err := forecast.Encode(&forecast.Heuristic{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	instB, err := c.UploadInstance(api.UploadInstanceRequest{ModelID: m.ID, Name: "challenger", City: "sf", Blob: blobB})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PromoteInstance(instA.ID); err != nil {
		t.Fatal(err)
	}
	if v, err := c.ProductionVersion(m.ID); err != nil || v.InstanceID != instA.ID {
		t.Fatalf("production = %+v (err %v), want baseline %s", v, err, instA.ID)
	}

	// The gateway serves the baseline.
	gw := serve.New(c, serve.Options{RefreshInterval: -1, MaxBatch: 4, Obs: obs.NewRegistry()})
	t.Cleanup(gw.Close)
	gwTS := httptest.NewServer(serve.NewHandler(gw))
	t.Cleanup(gwTS.Close)
	gc := client.New(gwTS.URL, gwTS.Client())

	hist := []float64{10, 20}
	resp, err := gc.Predict(m.ID, api.PredictRequest{History: hist})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Value != 20 || resp.InstanceID != instA.ID {
		t.Fatalf("baseline prediction = %+v, want value 20 from %s", resp, instA.ID)
	}

	// Keep traffic flowing through the whole promotion.
	var (
		wg     sync.WaitGroup
		stop   atomic.Bool
		failed atomic.Int64
		total  atomic.Int64
	)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, err := gc.Predict(m.ID, api.PredictRequest{History: hist}); err != nil {
					failed.Add(1)
				}
				total.Add(1)
			}
		}()
	}

	// An action rule that deploys any instance of this model whose
	// validation MAPE beats 0.1.
	ruleJSON := json.RawMessage(`{
		"uuid": "8d7e0b9e-3f3c-4a6f-9a46-2f62a37b2f10",
		"team": "forecasting",
		"name": "deploy-on-accuracy",
		"kind": "action",
		"given": "model_name == 'demand' && model_domain == 'UberX'",
		"when": "metrics.mape < 0.1",
		"environment": "production",
		"callback_actions": [
			{"action": "deploy"},
			{"action": "log", "params": {"message": "deployed challenger"}}
		]
	}`)
	if _, err := c.CommitRules("ci", "deploy rule", []json.RawMessage{ruleJSON}, nil); err != nil {
		t.Fatal(err)
	}

	// The challenger's metric write is what fires the rule; nothing else
	// touches the production pointer from here.
	if _, err := c.InsertMetric(instB.ID, "mape", "validation", 0.05); err != nil {
		t.Fatal(err)
	}
	srv.Flush() // drain the engine's async dispatch

	// The rule must have promoted the challenger in core...
	v, err := c.ProductionVersion(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.InstanceID != instB.ID {
		t.Fatalf("production instance = %s, want challenger %s (rule did not deploy)", v.InstanceID, instB.ID)
	}

	// ...and the gateway's next refresh serves it, mid-traffic.
	gw.RefreshAll()
	resp, err = gc.Predict(m.ID, api.PredictRequest{History: hist})
	if err != nil {
		t.Fatal(err)
	}
	if resp.InstanceID != instB.ID || resp.Value != 15 {
		t.Fatalf("post-deploy prediction = %+v, want value 15 from %s", resp, instB.ID)
	}

	stop.Store(true)
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d of %d predictions failed during the deploy loop", failed.Load(), total.Load())
	}
	if total.Load() == 0 {
		t.Fatal("no background predictions ran")
	}

	// The rule's log callback leaves an audit trail of the deployment.
	alerts, err := c.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range alerts {
		if a.Action == "log" && a.InstanceID == instB.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("no deployment log alert for %s in %+v", instB.ID, alerts)
	}
}

// TestGatewayHTTPErrors covers the handler's error mapping.
func TestGatewayHTTPErrors(t *testing.T) {
	clk := clock.NewMock(time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC))
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk, UUIDs: uuid.NewSeeded(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewWith(reg, nil, nil, server.Options{Obs: obs.NewRegistry()})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	c := client.New(ts.URL, ts.Client())

	gw := serve.New(c, serve.Options{RefreshInterval: -1, Obs: obs.NewRegistry()})
	t.Cleanup(gw.Close)
	gwTS := httptest.NewServer(serve.NewHandler(gw))
	t.Cleanup(gwTS.Close)
	gc := client.New(gwTS.URL, gwTS.Client())

	// Unknown model: Gallery's 404 passes through the gateway.
	_, err = gc.Predict("1b4e28ba-2fa1-11d2-883f-0016d3cca427", api.PredictRequest{History: []float64{1}})
	if ae, ok := err.(*client.APIError); !ok || ae.Status != 404 {
		t.Fatalf("unknown model err = %v, want 404", err)
	}

	// Empty history is rejected by the gateway itself.
	_, err = gc.Predict("whatever", api.PredictRequest{})
	if ae, ok := err.(*client.APIError); !ok || ae.Status != 400 {
		t.Fatalf("empty history err = %v, want 400", err)
	}

	// Serving status is empty but well-formed.
	st, err := gc.ServingStatus()
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 0 {
		t.Fatalf("status = %+v, want empty", st)
	}
}
