package tenant

import (
	"net/http"
	"testing"
)

// TestClassifyShapes pins the route classifier's exact shapes, in
// particular the adversarial near-misses that substring matching would
// have misclassified: prefix look-alikes must NOT inherit the class of
// the route they resemble, and anything unrecognized must land on the
// safe default (publisher mutation for writes, reader for reads).
func TestClassifyShapes(t *testing.T) {
	cases := []struct {
		method, path string
		role         Role
		mutation     bool
	}{
		// Reads are reader everywhere except the tenant-admin subtree.
		{http.MethodGet, "/v1/models/abc", RoleReader, false},
		{http.MethodHead, "/v1/stats", RoleReader, false},
		{http.MethodGet, "/v1/tenants", RoleOperator, false},
		{http.MethodGet, "/v1/tenants/maps/tokens", RoleOperator, false},

		// Read-shaped POSTs (query bodies, analysis windows).
		{http.MethodPost, "/v1/predict/maps-eta", RoleReader, false},
		{http.MethodPost, "/v1/search", RoleReader, false},
		{http.MethodPost, "/v1/health/fleet", RoleReader, false},
		{http.MethodPost, "/v1/instances/abc/drift", RoleReader, false},
		{http.MethodPost, "/v1/instances/abc/skew", RoleReader, false},

		// Operator mutations.
		{http.MethodPost, "/v1/tenants", RoleOperator, true},
		{http.MethodPost, "/v1/tenants/maps/quotas", RoleOperator, true},
		{http.MethodDelete, "/v1/tenants/maps/tokens/t1", RoleOperator, true},
		{http.MethodPost, "/v1/rules", RoleOperator, true},
		{http.MethodPost, "/v1/rules/r1/select", RoleOperator, true},

		// Everything else that writes is a publisher mutation.
		{http.MethodPost, "/v1/models", RolePublisher, true},
		{http.MethodPost, "/v1/instances/abc/metricsblob", RolePublisher, true},
		{http.MethodDelete, "/v1/deps", RolePublisher, true},

		// Adversarial near-misses: a prefix look-alike of the tenant-admin
		// subtree is an ordinary route...
		{http.MethodGet, "/v1/tenantsfoo", RoleReader, false},
		{http.MethodPost, "/v1/tenantsfoo", RolePublisher, true},
		// ...a drift/skew-looking suffix outside /v1/instances/{id}/ does
		// not read-downgrade...
		{http.MethodPost, "/v1/foo/drift", RolePublisher, true},
		{http.MethodPost, "/v1/instances/abc/extra/skew", RolePublisher, true},
		{http.MethodPost, "/v1/instances//drift", RolePublisher, true},
		// ...and an unknown future write route defaults to the most
		// restrictive non-operator class rather than reader.
		{http.MethodPost, "/v1/shiny/new", RolePublisher, true},
		{http.MethodPut, "/v1/models/abc", RolePublisher, true},
	}
	for _, c := range cases {
		role, mutation := Classify(c.method, c.path)
		if role != c.role || mutation != c.mutation {
			t.Errorf("Classify(%s %s) = (%v, %v), want (%v, %v)",
				c.method, c.path, role, mutation, c.role, c.mutation)
		}
	}
}
