package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"gallery/internal/core"
	"gallery/internal/forecast"
	"gallery/internal/uuid"
)

// Mode selects where the simulator's forecasting models come from.
type Mode uint8

// Simulation modes (paper §4.3 before/after comparison).
const (
	// ModeInSimTraining trains every model variant inside the run.
	ModeInSimTraining Mode = iota + 1
	// ModeGalleryServed fetches pre-trained instances from Gallery.
	ModeGalleryServed
)

// rider is a trip request agent.
type rider struct {
	x, y      float64
	destX     float64
	destY     float64
	requested float64 // sim seconds
}

// Config parameterizes one simulation run.
type Config struct {
	Mode Mode
	// Registry supplies pre-trained models in ModeGalleryServed; the
	// instance IDs to fetch are listed in ModelInstanceIDs.
	Registry         *core.Registry
	ModelInstanceIDs []uuid.UUID

	// ModelVariants is how many forecasting model variants the run uses
	// (the paper's "wide array of models being simulated"). In
	// ModeInSimTraining each is trained on TrainingPoints observations.
	ModelVariants  int
	TrainingPoints int

	// SpatialShift moves demand mass between city quadrants over the day
	// (0 = spatially uniform demand, as in the basic configuration).
	SpatialShift float64
	// RepositionEverySec, when positive, relocates idle drivers toward
	// predicted-demand quadrants on this cadence, using RepositionModels.
	RepositionEverySec float64
	// RepositionModels holds one forecaster per quadrant (exactly 4),
	// typically fetched from Gallery.
	RepositionModels []forecast.Model
	// RepositionFraction is the probability an idle driver relocates at
	// each repositioning tick (default 0.5).
	RepositionFraction float64

	// World shape.
	Drivers       int
	DurationHours int
	GridKm        float64 // square world side
	SpeedKmh      float64
	BaseDemand    float64 // rider requests per hour
	MatchEverySec float64
	MaxWaitSec    float64
	Seed          int64
}

func (c *Config) defaults() {
	if c.ModelVariants <= 0 {
		c.ModelVariants = 4
	}
	if c.TrainingPoints <= 0 {
		c.TrainingPoints = 24 * 60
	}
	if c.Drivers <= 0 {
		c.Drivers = 50
	}
	if c.DurationHours <= 0 {
		c.DurationHours = 6
	}
	if c.GridKm <= 0 {
		c.GridKm = 10
	}
	if c.SpeedKmh <= 0 {
		c.SpeedKmh = 30
	}
	if c.BaseDemand <= 0 {
		c.BaseDemand = 300
	}
	if c.MatchEverySec <= 0 {
		c.MatchEverySec = 10
	}
	if c.MaxWaitSec <= 0 {
		c.MaxWaitSec = 600
	}
	if c.RepositionFraction <= 0 {
		c.RepositionFraction = 0.5
	}
}

// Resources is the simulated cost ledger that reproduces the paper's
// resource-saving claim (§4.3: "8GB memory and one hour CPU time per
// simulation").
type Resources struct {
	// TrainCPUSeconds is simulated CPU spent training models in-run.
	TrainCPUSeconds float64
	// ModelMemoryBytes is the simulated peak memory held for model
	// training state plus resident models.
	ModelMemoryBytes int64
	// GalleryFetches counts instances fetched from the registry.
	GalleryFetches int
}

// Report summarizes one run.
type Report struct {
	Mode              Mode
	CompletedTrips    int
	AbandonedRiders   int
	MeanWaitSec       float64
	P95WaitSec        float64
	DriverUtilization float64 // fraction of driver-time on trips
	Resources         Resources
	// SurgeUpdates counts model-driven pricing refreshes.
	SurgeUpdates int
	// Repositions counts idle-driver relocations driven by forecasts.
	Repositions int
	// MeanPickupKm is the mean driver-to-rider distance at match time —
	// the direct measure of how well supply was positioned.
	MeanPickupKm float64
}

// simulated cost model: training one point of one variant costs cpuPerPoint
// seconds of CPU and holds memPerPoint bytes of working set; a resident
// trained model costs modelResidentBytes.
const (
	cpuPerPoint        = 0.012   // s/point — 20 variants × 15k points ≈ 1 CPU-hour
	memPerPoint        = 28_000  // bytes/point of training working set
	modelResidentBytes = 4 << 20 // resident size per trained model
)

// Run executes one simulation.
func Run(cfg Config) (Report, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := Report{Mode: cfg.Mode}

	models, err := acquireModels(&cfg, &rep)
	if err != nil {
		return rep, err
	}
	if cfg.RepositionEverySec > 0 && len(cfg.RepositionModels) != 4 {
		return rep, fmt.Errorf("sim: repositioning needs exactly 4 quadrant models, got %d", len(cfg.RepositionModels))
	}

	// World state.
	type driverState struct {
		x, y float64
		busy bool
	}
	drivers := make([]driverState, cfg.Drivers)
	for i := range drivers {
		drivers[i] = driverState{x: rng.Float64() * cfg.GridKm, y: rng.Float64() * cfg.GridKm}
	}
	var waiting []rider
	var q eventQueue
	horizon := float64(cfg.DurationHours) * 3600

	// Demand history for the forecaster, one bucket per model refresh,
	// plus per-quadrant histories for repositioning.
	var demandHistory []float64
	bucketCount := 0.0
	var qHistory [4][]float64
	var qBucket [4]float64
	surge := 1.0

	// Seed periodic events.
	q.push(event{at: 0, kind: evMatch})
	q.push(event{at: 3600, kind: evModelRefresh})
	if cfg.RepositionEverySec > 0 {
		q.push(event{at: cfg.RepositionEverySec, kind: evReposition})
	}
	scheduleArrival := func(now float64) {
		// Poisson arrivals; surge damps conversion.
		rate := cfg.BaseDemand * demandShape(now) / 3600 // per second
		rate /= surge
		if rate <= 0 {
			rate = 1e-6
		}
		dt := rng.ExpFloat64() / rate
		var r rider
		if cfg.SpatialShift > 0 {
			origin := sampleQuadrant(rng, quadrantWeights(now, cfg.SpatialShift))
			r.x, r.y = samplePoint(rng, origin, cfg.GridKm)
		} else {
			r.x, r.y = rng.Float64()*cfg.GridKm, rng.Float64()*cfg.GridKm
		}
		r.destX, r.destY = rng.Float64()*cfg.GridKm, rng.Float64()*cfg.GridKm
		q.push(event{at: now + dt, kind: evRiderRequest, rider: r})
	}
	scheduleArrival(0)

	var totalWait, busySeconds, totalPickupKm float64
	var waits []float64

	for q.Len() > 0 {
		e := q.pop()
		if e.at > horizon {
			break
		}
		now := e.at
		switch e.kind {
		case evRiderRequest:
			r := e.rider
			r.requested = now
			waiting = append(waiting, r)
			bucketCount++
			qBucket[quadrant(r.x, r.y, cfg.GridKm)]++
			scheduleArrival(now)

		case evMatch:
			// Expire riders past their patience.
			kept := waiting[:0]
			for _, r := range waiting {
				if now-r.requested > cfg.MaxWaitSec {
					rep.AbandonedRiders++
					continue
				}
				kept = append(kept, r)
			}
			waiting = kept
			// Greedy nearest-driver matching, FIFO over riders.
			remaining := waiting[:0]
			for _, r := range waiting {
				best, bestD := -1, math.MaxFloat64
				for i, d := range drivers {
					if d.busy {
						continue
					}
					dist := math.Hypot(d.x-r.x, d.y-r.y)
					if dist < bestD {
						best, bestD = i, dist
					}
				}
				if best < 0 {
					remaining = append(remaining, r)
					continue
				}
				drivers[best].busy = true
				totalPickupKm += bestD
				wait := now - r.requested
				totalWait += wait
				waits = append(waits, wait)
				rep.CompletedTrips++
				tripKm := bestD + math.Hypot(r.x-r.destX, r.y-r.destY)
				tripSec := tripKm / cfg.SpeedKmh * 3600
				busySeconds += tripSec
				drivers[best].x, drivers[best].y = r.destX, r.destY
				q.push(event{at: now + tripSec, kind: evTripEnd, driver: best})
			}
			waiting = append([]rider(nil), remaining...)
			q.push(event{at: now + cfg.MatchEverySec, kind: evMatch})

		case evTripEnd:
			drivers[e.driver].busy = false

		case evModelRefresh:
			demandHistory = append(demandHistory, bucketCount)
			bucketCount = 0
			for qi := range qHistory {
				qHistory[qi] = append(qHistory[qi], qBucket[qi])
				qBucket[qi] = 0
			}
			// Ensemble forecast of next-hour demand drives surge.
			var sum float64
			for _, m := range models {
				sum += m.Forecast(forecast.Context{
					History: demandHistory,
					Time:    time.Unix(int64(now), 0).UTC(),
				})
			}
			pred := sum / float64(len(models))
			if base := cfg.BaseDemand; base > 0 && pred > 0 {
				surge = clamp(pred/base, 0.7, 2.5)
			}
			rep.SurgeUpdates++
			q.push(event{at: now + 3600, kind: evModelRefresh})

		case evReposition:
			// Forecast next-hour demand per quadrant and relocate a
			// fraction of idle drivers toward predicted hot spots.
			var w [4]float64
			var sum float64
			for qi := range w {
				pred := cfg.RepositionModels[qi].Forecast(forecast.Context{
					History: qHistory[qi],
					Time:    time.Unix(int64(now), 0).UTC(),
				})
				if pred < 0.01 {
					pred = 0.01
				}
				w[qi] = pred
				sum += pred
			}
			for qi := range w {
				w[qi] /= sum
			}
			for di := range drivers {
				if drivers[di].busy || rng.Float64() > cfg.RepositionFraction {
					continue
				}
				target := sampleQuadrant(rng, w)
				drivers[di].x, drivers[di].y = samplePoint(rng, target, cfg.GridKm)
				rep.Repositions++
			}
			q.push(event{at: now + cfg.RepositionEverySec, kind: evReposition})
		}
	}

	if n := len(waits); n > 0 {
		rep.MeanWaitSec = totalWait / float64(n)
		rep.P95WaitSec = percentile(waits, 0.95)
		rep.MeanPickupKm = totalPickupKm / float64(n)
	}
	rep.DriverUtilization = busySeconds / (float64(cfg.Drivers) * horizon)
	if rep.DriverUtilization > 1 {
		rep.DriverUtilization = 1
	}
	return rep, nil
}

// acquireModels obtains the run's forecasting models per the mode,
// charging the resource ledger.
func acquireModels(cfg *Config, rep *Report) ([]forecast.Model, error) {
	switch cfg.Mode {
	case ModeInSimTraining:
		// Pre-Gallery: train every variant inside the run. The training
		// data must also be generated/held in memory here.
		models := make([]forecast.Model, 0, cfg.ModelVariants)
		series := forecast.Generate(forecast.CityConfig{
			Name: "simworld", Base: cfg.BaseDemand, DailyAmp: cfg.BaseDemand * 0.3,
			NoiseStd: cfg.BaseDemand * 0.05, Seed: cfg.Seed,
		}, time.Unix(0, 0).UTC(), time.Hour, cfg.TrainingPoints)
		for i := 0; i < cfg.ModelVariants; i++ {
			m := variant(i)
			if err := m.Train(series); err != nil {
				return nil, fmt.Errorf("sim: in-sim training variant %d: %w", i, err)
			}
			models = append(models, m)
			rep.Resources.TrainCPUSeconds += cpuPerPoint * float64(cfg.TrainingPoints)
			rep.Resources.ModelMemoryBytes += memPerPoint*int64(cfg.TrainingPoints) + modelResidentBytes
		}
		return models, nil

	case ModeGalleryServed:
		// Post-Gallery: fetch pre-trained blobs; only resident model
		// memory is held, and no training CPU is spent in-run.
		if cfg.Registry == nil || len(cfg.ModelInstanceIDs) == 0 {
			return nil, fmt.Errorf("sim: gallery mode needs a registry and instance ids")
		}
		models := make([]forecast.Model, 0, len(cfg.ModelInstanceIDs))
		for _, id := range cfg.ModelInstanceIDs {
			blob, err := cfg.Registry.FetchBlob(id)
			if err != nil {
				return nil, fmt.Errorf("sim: fetch %s: %w", id, err)
			}
			m, err := forecast.Decode(blob)
			if err != nil {
				return nil, fmt.Errorf("sim: decode %s: %w", id, err)
			}
			models = append(models, m)
			rep.Resources.GalleryFetches++
			rep.Resources.ModelMemoryBytes += modelResidentBytes
		}
		return models, nil

	default:
		return nil, fmt.Errorf("sim: unknown mode %d", cfg.Mode)
	}
}

// variant returns the i-th forecasting model variant.
func variant(i int) forecast.Model {
	switch i % 4 {
	case 0:
		return &forecast.Heuristic{K: 5}
	case 1:
		return &forecast.EWMA{Alpha: 0.3}
	case 2:
		return &forecast.SeasonalNaive{Period: 24}
	default:
		return &forecast.LinearAR{Lags: 12}
	}
}

// demandShape modulates demand over the day (peaks at commute hours).
func demandShape(simSeconds float64) float64 {
	hour := math.Mod(simSeconds/3600, 24)
	return 1 + 0.5*math.Sin(2*math.Pi*(hour-8)/24)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	// Nearest-rank definition: the smallest value with at least p of the
	// mass at or below it.
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
