package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"gallery/internal/blobstore"
	"gallery/internal/client"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/obs"
	"gallery/internal/obs/trace"
	"gallery/internal/relstore"
	"gallery/internal/rules"
	"gallery/internal/uuid"
)

// newTracedHarness is newHarness with an explicit tracer wired in.
func newTracedHarness(t *testing.T, tr *trace.Tracer) *harness {
	t.Helper()
	clk := clock.NewMock(t0)
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk,
		UUIDs: uuid.NewSeeded(11),
	})
	if err != nil {
		t.Fatal(err)
	}
	repo := rules.NewRepo(clk)
	eng := rules.NewEngine(reg, repo, clk)
	srv := NewWith(reg, repo, eng, Options{Obs: obs.NewRegistry(), Tracer: tr})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return &harness{c: client.New(ts.URL, ts.Client()), clk: clk, ts: ts, eng: eng, srv: srv}
}

// collectNodes flattens a span tree into a name-indexed map (last node
// wins per name, which is fine for the single-shot requests tested here).
func collectNodes(roots []*trace.Node) map[string]*trace.Node {
	out := map[string]*trace.Node{}
	var walk func(ns []*trace.Node)
	walk = func(ns []*trace.Node) {
		for _, n := range ns {
			out[n.Span.Name] = n
			walk(n.Children)
		}
	}
	walk(roots)
	return out
}

// TestTraceparentThroughHTTPStack sends a real HTTP request carrying a
// sampled W3C traceparent through the full server stack and checks that
// the handler continues the caller's trace: same trace ID, root span
// parented on the caller's span ID, renamed to the mux route, with the
// storage layers' child spans linked underneath.
func TestTraceparentThroughHTTPStack(t *testing.T) {
	tr := trace.New(trace.Options{Service: "galleryd", Sampler: trace.Always()})
	h := newTracedHarness(t, tr)
	m := h.registerModel(t, "Traced Model", "demand")
	in := h.upload(t, m.ID, "san_francisco", []byte("serialized-model-bytes"))

	const callerTrace = "0af7651916cd43dd8448eb211c80319c"
	const callerSpan = "b7ad6b7169203331"
	req, err := http.NewRequest(http.MethodGet, h.ts.URL+"/v1/instances/"+in.ID+"/blob", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+callerTrace+"-"+callerSpan+"-01")
	resp, err := h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("blob fetch: status %d", resp.StatusCode)
	}

	d, ok := tr.Store().Get(callerTrace)
	if !ok {
		t.Fatalf("no trace recorded under the caller's trace ID %s", callerTrace)
	}
	if len(d.Roots) != 1 {
		t.Fatalf("got %d local roots, want 1", len(d.Roots))
	}
	root := d.Roots[0]
	if root.Span.Name != "GET /v1/instances/{id}/blob" {
		t.Fatalf("root span = %q, want the mux route pattern", root.Span.Name)
	}
	if root.Span.ParentID != callerSpan {
		t.Fatalf("root parent = %q, want the caller's span %s", root.Span.ParentID, callerSpan)
	}
	if root.Span.Service != "galleryd" {
		t.Fatalf("root service = %q", root.Span.Service)
	}

	nodes := collectNodes(d.Roots)
	for _, name := range []string{"core.fetch_blob", "dal.get_blob", "blobstore.get"} {
		if _, ok := nodes[name]; !ok {
			t.Fatalf("span %q missing from trace; have %v", name, spanNames(nodes))
		}
	}
	if nodes["core.fetch_blob"].Span.ParentID != root.Span.SpanID {
		t.Fatal("core.fetch_blob must be a direct child of the HTTP root span")
	}
	if nodes["dal.get_blob"].Span.ParentID != nodes["core.fetch_blob"].Span.SpanID {
		t.Fatal("dal.get_blob must be a child of core.fetch_blob")
	}
	if nodes["blobstore.get"].Span.ParentID != nodes["dal.get_blob"].Span.SpanID {
		t.Fatal("blobstore.get must be a child of dal.get_blob")
	}

	// The debug endpoints serve what the store holds.
	raw, err := h.c.DebugTrace(callerTrace)
	if err != nil {
		t.Fatalf("DebugTrace: %v", err)
	}
	if len(raw) == 0 {
		t.Fatal("DebugTrace returned an empty body")
	}
	list, err := h.c.DebugTraces(5)
	if err != nil {
		t.Fatalf("DebugTraces: %v", err)
	}
	if len(list) == 0 {
		t.Fatal("DebugTraces returned an empty body")
	}
}

func spanNames(nodes map[string]*trace.Node) []string {
	out := make([]string, 0, len(nodes))
	for n := range nodes {
		out = append(out, n)
	}
	return out
}

// TestSamplerHonoredByDefault checks the default server posture: with no
// tracer configured the server runs a Never sampler, so ordinary requests
// leave nothing in the trace buffer (and allocate no spans).
func TestSamplerHonoredByDefault(t *testing.T) {
	h := newHarness(t)
	h.registerModel(t, "Untraced Model", "demand")
	if _, err := h.c.Stats(); err != nil {
		t.Fatal(err)
	}
	st := h.srv.tracer.Store().Stats()
	if st.Completed != 0 || st.Pending != 0 {
		t.Fatalf("default (never) sampler recorded traces: %+v", st)
	}
}

// TestUnsampledTraceparentNotForced: a traceparent with flags 00 must not
// force tracing on a never-sampled server.
func TestUnsampledTraceparentNotForced(t *testing.T) {
	h := newHarness(t)
	req, err := http.NewRequest(http.MethodGet, h.ts.URL+"/v1/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	resp, err := h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st := h.srv.tracer.Store().Stats(); st.Completed != 0 {
		t.Fatalf("unsampled traceparent forced a trace: %+v", st)
	}
}
