package serve

import (
	"testing"
	"time"

	"gallery/internal/forecast"
	"gallery/internal/obs"
)

// benchGateway serves one trained LinearAR with a month-long history
// window — the regime where per-call buffer reuse matters.
func benchGateway(b *testing.B, maxBatch int) (*Gateway, string, forecast.Context) {
	b.Helper()
	series := forecast.Generate(forecast.CityConfig{
		Name: "sf", Base: 100, GrowthPerWeek: 3, DailyAmp: 20, WeeklyAmp: 10, NoiseStd: 2, Seed: 7,
	}, time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC), time.Hour, 24*56)
	m := &forecast.LinearAR{Lags: 48}
	if err := m.Train(series); err != nil {
		b.Fatal(err)
	}
	src := newFakeSource()
	src.promote(b, "m1", 0, m)
	g := New(src, Options{
		RefreshInterval: -1,
		MaxBatch:        maxBatch,
		BatchWorkers:    1,
		Obs:             obs.NewRegistry(),
	})
	b.Cleanup(g.Close)
	fctx := forecast.Context{
		History: series.Values()[len(series)-24*28:],
		Time:    series[len(series)-1].T.Add(time.Hour),
	}
	if _, err := g.Predict("m1", fctx); err != nil {
		b.Fatal(err)
	}
	return g, "m1", fctx
}

func benchPredict(b *testing.B, maxBatch int) {
	g, id, fctx := benchGateway(b, maxBatch)
	b.ReportAllocs()
	// Several client goroutines per core: batches only form when requests
	// actually overlap, which is the serving regime being measured.
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := g.Predict(id, fctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServingGateway is the batching on/off ablation under
// concurrent load (run with -cpu to vary client parallelism).
func BenchmarkServingGateway(b *testing.B) {
	b.Run("unbatched", func(b *testing.B) { benchPredict(b, 0) })
	b.Run("batch=32", func(b *testing.B) { benchPredict(b, 32) })
}
