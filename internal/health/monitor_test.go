package health

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"gallery/internal/api"
	"gallery/internal/blobstore"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/obs"
	"gallery/internal/obs/sketch"
	"gallery/internal/relstore"
	"gallery/internal/uuid"
)

var t0 = time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)

// captureEvents records every health event the monitor emits.
type captureEvents struct {
	mu     sync.Mutex
	events []capturedEvent
}

type capturedEvent struct {
	inst   uuid.UUID
	event  string
	fields map[string]float64
}

func (c *captureEvents) HealthEvent(_ context.Context, inst uuid.UUID, event string, fields map[string]float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, capturedEvent{inst: inst, event: event, fields: fields})
}

func (c *captureEvents) all() []capturedEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]capturedEvent(nil), c.events...)
}

type harness struct {
	g     *core.Registry
	clk   *clock.Mock
	sink  *captureEvents
	mon   *Monitor
	reg   *obs.Registry
	model *core.Model
	inst  *core.Instance
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	clk := clock.NewMock(t0)
	g, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk,
		UUIDs: uuid.NewSeeded(7),
		Obs:   obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.RegisterModel(core.ModelSpec{
		BaseVersionID: "bv-demand", Project: "forecasting", Name: "demand", Domain: "UberX",
	})
	if err != nil {
		t.Fatal(err)
	}
	in, err := g.UploadInstance(core.InstanceSpec{ModelID: m.ID, City: "sf", Name: "demand"}, []byte("blob"))
	if err != nil {
		t.Fatal(err)
	}
	sink := &captureEvents{}
	reg := obs.NewRegistry()
	cfg.Interval = -1 // tests drive Evaluate directly
	cfg.Obs = reg
	cfg.Events = sink
	return &harness{g: g, clk: clk, sink: sink, mon: New(g, cfg), reg: reg, model: m, inst: in}
}

// window builds one observation whose value sketch holds n draws from
// N(mean, std), deterministic per seed.
func (h *harness) window(i int, mean, std float64, n int) api.HealthObservation {
	rng := rand.New(rand.NewSource(int64(1000 + i)))
	s := sketch.New(sketch.Config{})
	lat := sketch.New(sketch.Config{Lo: 1e-6, Hi: 1e3, Buckets: 128})
	for j := 0; j < n; j++ {
		s.Observe(mean + std*rng.NormFloat64())
		lat.Observe(0.001 + 0.0005*rng.Float64())
	}
	start := t0.Add(time.Duration(i) * time.Minute)
	return api.HealthObservation{
		ModelID:     h.model.ID.String(),
		InstanceID:  h.inst.ID.String(),
		WindowStart: start,
		WindowEnd:   start.Add(time.Minute),
		Requests:    int64(n),
		Values:      s.Snapshot(),
		Latency:     lat.Snapshot(),
	}
}

func (h *harness) ingest(t *testing.T, obs ...api.HealthObservation) {
	t.Helper()
	resp, err := h.mon.Ingest(context.Background(), api.HealthObservationsRequest{
		Gateway: "gw-test", Observations: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rejected != 0 || resp.Accepted != len(obs) {
		t.Fatalf("ingest = %+v, want %d accepted", resp, len(obs))
	}
}

func (h *harness) health(t *testing.T) api.ModelHealth {
	t.Helper()
	mh, ok := h.mon.ModelHealth(h.model.ID.String())
	if !ok {
		t.Fatal("model not tracked")
	}
	return mh
}

func hasReason(mh api.ModelHealth, substr string) bool {
	for _, r := range mh.Reasons {
		if strings.Contains(r, substr) {
			return true
		}
	}
	return false
}

func TestMonitorCollectingThenHealthy(t *testing.T) {
	h := newHarness(t, Config{ReferenceWindows: 3, LiveWindows: 3})

	// Two windows: reference not yet complete, no live data → unknown.
	h.ingest(t, h.window(0, 200, 20, 100), h.window(1, 200, 20, 100))
	h.mon.Evaluate(context.Background())
	if mh := h.health(t); mh.Status != string(StatusUnknown) || !hasReason(mh, "collecting") {
		t.Fatalf("after 2 windows: %+v", mh)
	}

	// Reference completes, then same-shape live traffic → healthy.
	h.ingest(t, h.window(2, 200, 20, 100), h.window(3, 200, 20, 100), h.window(4, 200, 20, 100))
	h.mon.Evaluate(context.Background())
	mh := h.health(t)
	if mh.Status != string(StatusHealthy) {
		t.Fatalf("status = %s (%v), want healthy; psi=%g", mh.Status, mh.Reasons, mh.PSI)
	}
	if mh.PSI >= 0.1 {
		t.Fatalf("psi = %g for identical distributions, want < 0.1", mh.PSI)
	}
	if mh.ReferenceCount != 300 || mh.LiveCount != 200 {
		t.Fatalf("counts ref=%d live=%d, want 300/200", mh.ReferenceCount, mh.LiveCount)
	}
	if mh.Windows != 5 || mh.Requests != 500 {
		t.Fatalf("windows=%d requests=%d, want 5/500", mh.Windows, mh.Requests)
	}
	if mh.RequestRate <= 0 || mh.LatencyP95MS <= 0 {
		t.Fatalf("rate=%g p95=%gms, want positive", mh.RequestRate, mh.LatencyP95MS)
	}
	if len(h.sink.all()) != 0 {
		t.Fatalf("events on healthy traffic: %+v", h.sink.all())
	}
}

func TestMonitorShiftDegradesAndEmitsOnce(t *testing.T) {
	h := newHarness(t, Config{ReferenceWindows: 3, LiveWindows: 3})
	for i := 0; i < 4; i++ {
		h.ingest(t, h.window(i, 200, 20, 150))
	}
	h.mon.Evaluate(context.Background())
	if mh := h.health(t); mh.Status != string(StatusHealthy) {
		t.Fatalf("pre-shift status = %s (%v)", mh.Status, mh.Reasons)
	}

	// The model's output distribution shifts 1.6x: degraded, one event.
	for i := 4; i < 7; i++ {
		h.ingest(t, h.window(i, 320, 20, 150))
	}
	h.mon.Evaluate(context.Background())
	mh := h.health(t)
	if mh.Status != string(StatusDegraded) || !hasReason(mh, "distribution shifted") {
		t.Fatalf("post-shift: %+v", mh)
	}
	if mh.PSI < 0.25 {
		t.Fatalf("psi = %g after 1.6x shift, want >= 0.25", mh.PSI)
	}
	ev := h.sink.all()
	if len(ev) != 1 || ev[0].event != "drift" || ev[0].inst != h.inst.ID {
		t.Fatalf("events = %+v, want one drift for instance", ev)
	}
	if ev[0].fields["psi"] < 0.25 {
		t.Fatalf("event psi = %g", ev[0].fields["psi"])
	}
	// Re-evaluating the same degradation does not spam the rules engine.
	h.mon.Evaluate(context.Background())
	h.mon.Evaluate(context.Background())
	if got := len(h.sink.all()); got != 1 {
		t.Fatalf("repeated evaluation emitted %d events, want 1", got)
	}

	// Recovery: live ring refills with reference-shaped traffic → healthy,
	// and the next degradation episode emits again.
	for i := 7; i < 10; i++ {
		h.ingest(t, h.window(i, 200, 20, 150))
	}
	h.mon.Evaluate(context.Background())
	if mh := h.health(t); mh.Status != string(StatusHealthy) {
		t.Fatalf("recovery status = %s (%v) psi=%g", mh.Status, mh.Reasons, mh.PSI)
	}
	for i := 10; i < 13; i++ {
		h.ingest(t, h.window(i, 320, 20, 150))
	}
	h.mon.Evaluate(context.Background())
	if got := len(h.sink.all()); got != 2 {
		t.Fatalf("second episode events = %d, want 2 total", got)
	}

	// Status gauge mirrors the verdict.
	snap := h.reg.Snapshot()
	name := obs.Name("health_model_status", "model", h.model.ID.String())
	if snap.Gauges[name] != 3 {
		t.Fatalf("status gauge = %g, want 3 (degraded)", snap.Gauges[name])
	}
}

func TestMonitorWarningBand(t *testing.T) {
	// With the degraded threshold pushed out of reach, a real shift lands
	// in the warning band deterministically.
	h := newHarness(t, Config{ReferenceWindows: 3, LiveWindows: 3, PSIDegraded: 100})
	for i := 0; i < 3; i++ {
		h.ingest(t, h.window(i, 200, 20, 150))
	}
	for i := 3; i < 6; i++ {
		h.ingest(t, h.window(i, 320, 20, 150))
	}
	h.mon.Evaluate(context.Background())
	mh := h.health(t)
	if mh.Status != string(StatusWarning) || !hasReason(mh, "distribution drifting") {
		t.Fatalf("status = %s (%v) psi=%g, want warning", mh.Status, mh.Reasons, mh.PSI)
	}
	if len(h.sink.all()) != 0 {
		t.Fatalf("warning must not emit events: %+v", h.sink.all())
	}
}

func TestMonitorStaleServeWarning(t *testing.T) {
	h := newHarness(t, Config{ReferenceWindows: 1, LiveWindows: 1})
	w := h.window(0, 200, 20, 100)
	w.StaleServes = 80 // 80% of the window served stale
	h.ingest(t, w)
	h.mon.Evaluate(context.Background())
	mh := h.health(t)
	if mh.Status != string(StatusWarning) || !hasReason(mh, "stale") {
		t.Fatalf("status = %s (%v), want stale warning", mh.Status, mh.Reasons)
	}
	if mh.StaleServes != 80 {
		t.Fatalf("stale total = %d", mh.StaleServes)
	}
}

func TestMonitorReferenceResetOnPromotion(t *testing.T) {
	h := newHarness(t, Config{ReferenceWindows: 2, LiveWindows: 2})
	for i := 0; i < 4; i++ {
		h.ingest(t, h.window(i, 200, 20, 150))
	}
	h.mon.Evaluate(context.Background())
	if mh := h.health(t); mh.Status != string(StatusHealthy) {
		t.Fatalf("pre-promotion: %+v", mh)
	}

	// A new instance starts serving with a different output distribution.
	// Without a reference reset this would read as drift; with one, the
	// new model earns a fresh baseline.
	h.clk.Advance(time.Minute)
	in2, err := h.g.UploadInstance(core.InstanceSpec{ModelID: h.model.ID, City: "sf", Name: "demand"}, []byte("blob2"))
	if err != nil {
		t.Fatal(err)
	}
	prev := h.inst
	h.inst = in2
	h.ingest(t, h.window(10, 500, 30, 150))
	h.mon.Evaluate(context.Background())
	mh := h.health(t)
	if mh.Status != string(StatusUnknown) || !hasReason(mh, "collecting") {
		t.Fatalf("post-promotion: %+v", mh)
	}
	if mh.InstanceID != in2.ID.String() {
		t.Fatalf("instance = %s, want %s (was %s)", mh.InstanceID, in2.ID, prev.ID)
	}
	// The new instance settles at its own distribution → healthy there.
	for i := 11; i < 15; i++ {
		h.ingest(t, h.window(i, 500, 30, 150))
	}
	h.mon.Evaluate(context.Background())
	if mh := h.health(t); mh.Status != string(StatusHealthy) {
		t.Fatalf("new baseline: %+v", mh)
	}
	if len(h.sink.all()) != 0 {
		t.Fatalf("promotion emitted events: %+v", h.sink.all())
	}
}

func TestMonitorMetricDriftEscalates(t *testing.T) {
	h := newHarness(t, Config{
		ReferenceWindows: 1, LiveWindows: 1,
		Drift: core.DriftConfig{Window: 3, Baseline: 3, Threshold: 0.25},
	})
	// Production mape history: three good points, then three 3x worse.
	for _, v := range []float64{0.10, 0.11, 0.09, 0.30, 0.32, 0.31} {
		h.clk.Advance(time.Minute)
		if _, err := h.g.InsertMetric(h.inst.ID, "mape", core.ScopeProduction, v); err != nil {
			t.Fatal(err)
		}
	}
	// Sketches alone look fine — the metric history is what's rotten.
	h.ingest(t, h.window(0, 200, 20, 100), h.window(1, 200, 20, 100))
	h.mon.Evaluate(context.Background())
	mh := h.health(t)
	if mh.Status != string(StatusDegraded) || !hasReason(mh, "mape degraded") {
		t.Fatalf("status = %s (%v), want metric-drift degradation", mh.Status, mh.Reasons)
	}
	if mh.Drift == nil || !mh.Drift.Checked || !mh.Drift.Drifted {
		t.Fatalf("drift report = %+v", mh.Drift)
	}
	ev := h.sink.all()
	if len(ev) != 1 || ev[0].event != "drift" {
		t.Fatalf("events = %+v", ev)
	}
	if ev[0].fields["degradation"] < 0.25 {
		t.Fatalf("event degradation = %g", ev[0].fields["degradation"])
	}
}

func TestMonitorRecoverRebuildsState(t *testing.T) {
	h := newHarness(t, Config{ReferenceWindows: 3, LiveWindows: 3})
	for i := 0; i < 4; i++ {
		h.ingest(t, h.window(i, 200, 20, 150))
	}
	for i := 4; i < 7; i++ {
		h.ingest(t, h.window(i, 320, 20, 150))
	}

	// A fresh monitor over the same registry — as after a galleryd
	// restart — recovers windows from the DAL and reaches the same
	// verdict.
	sink := &captureEvents{}
	m2 := New(h.g, Config{
		ReferenceWindows: 3, LiveWindows: 3, Interval: -1,
		Obs: obs.NewRegistry(), Events: sink,
	})
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	m2.Evaluate(context.Background())
	mh, ok := m2.ModelHealth(h.model.ID.String())
	if !ok {
		t.Fatal("recovered monitor lost the model")
	}
	if mh.Status != string(StatusDegraded) {
		t.Fatalf("recovered status = %s (%v) psi=%g", mh.Status, mh.Reasons, mh.PSI)
	}
	if mh.Windows != 7 || mh.Requests != 7*150 {
		t.Fatalf("recovered windows=%d requests=%d", mh.Windows, mh.Requests)
	}
	if len(sink.all()) != 1 {
		t.Fatalf("recovered monitor events = %+v", sink.all())
	}
}

func TestMonitorIngestRejectsMalformed(t *testing.T) {
	h := newHarness(t, Config{})
	bad1 := h.window(0, 200, 20, 10)
	bad1.ModelID = "not-a-uuid"
	bad2 := h.window(1, 200, 20, 10)
	bad2.Values.Count = 5
	bad2.Values.Counts = []int64{1} // malformed wire sketch
	good := h.window(2, 200, 20, 10)
	resp, err := h.mon.Ingest(context.Background(), api.HealthObservationsRequest{
		Observations: []api.HealthObservation{bad1, bad2, good},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 1 || resp.Rejected != 2 {
		t.Fatalf("resp = %+v, want 1 accepted / 2 rejected", resp)
	}
	ws, err := h.g.HealthWindows(h.model.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 {
		t.Fatalf("persisted %d windows, want 1", len(ws))
	}
}

func TestMonitorKeepWindowsPrunes(t *testing.T) {
	h := newHarness(t, Config{KeepWindows: 4})
	for i := 0; i < 10; i++ {
		h.ingest(t, h.window(i, 200, 20, 20))
	}
	ws, err := h.g.HealthWindows(h.model.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 {
		t.Fatalf("stored %d windows, want 4 (KeepWindows)", len(ws))
	}
}

func TestMonitorListSorted(t *testing.T) {
	h := newHarness(t, Config{ReferenceWindows: 1, LiveWindows: 1})
	h.ingest(t, h.window(0, 200, 20, 60))
	m2, err := h.g.RegisterModel(core.ModelSpec{
		BaseVersionID: "bv-eta", Project: "forecasting", Name: "eta",
	})
	if err != nil {
		t.Fatal(err)
	}
	w := h.window(1, 50, 5, 60)
	w.ModelID = m2.ID.String()
	w.InstanceID = ""
	h.ingest(t, w)
	h.mon.Evaluate(context.Background())
	list := h.mon.List()
	if len(list) != 2 {
		t.Fatalf("list = %+v", list)
	}
	if list[0].ModelID >= list[1].ModelID {
		t.Fatal("list not sorted by model id")
	}
	if _, ok := h.mon.ModelHealth(uuid.NewSeeded(42).New().String()); ok {
		t.Fatal("unknown model reported healthy")
	}
}

func TestMonitorStartStop(t *testing.T) {
	h := newHarness(t, Config{ReferenceWindows: 1, LiveWindows: 1})
	h.mon.cfg.Interval = time.Millisecond
	h.ingest(t, h.window(0, 200, 20, 400), h.window(1, 200, 20, 400))
	h.mon.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if mh, ok := h.mon.ModelHealth(h.model.ID.String()); ok && mh.Status == string(StatusHealthy) {
			break
		}
		if time.Now().After(deadline) {
			mh, ok := h.mon.ModelHealth(h.model.ID.String())
			t.Fatalf("ticker never reached healthy: ok=%v mh=%+v", ok, mh)
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.mon.Stop()
	h.mon.Stop() // idempotent
}
