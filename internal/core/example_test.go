package core_test

import (
	"fmt"
	"log"
	"time"

	"gallery/internal/blobstore"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/relstore"
	"gallery/internal/uuid"
)

// Example walks the paper's §4.1 workflow: register a model, upload a
// trained instance blob-first, record a metric, search by constraints,
// and fetch the blob back for serving.
func Example() {
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clock.NewMock(time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)),
		UUIDs: uuid.NewSeeded(1),
	})
	if err != nil {
		log.Fatal(err)
	}

	m, err := reg.RegisterModel(core.ModelSpec{
		BaseVersionID: "supply_rejection",
		Project:       "example-project",
		Name:          "random_forest",
		Domain:        "UberX",
	})
	if err != nil {
		log.Fatal(err)
	}

	in, err := reg.UploadInstance(core.InstanceSpec{
		ModelID:   m.ID,
		Name:      "Random Forest",
		City:      "New York City",
		Framework: "SparkML",
	}, []byte("serialized model"))
	if err != nil {
		log.Fatal(err)
	}

	if _, err := reg.InsertMetric(in.ID, "bias", core.ScopeValidation, 0.05); err != nil {
		log.Fatal(err)
	}

	found, err := reg.SearchInstances(core.InstanceFilter{
		Project:     "example-project",
		MetricName:  "bias",
		MetricOp:    relstore.OpLt,
		MetricValue: 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}
	blob, err := reg.FetchBlob(found[0].ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d instance(s) in %s; blob %d bytes\n", len(found), found[0].City, len(blob))
	// Output: found 1 instance(s) in New York City; blob 16 bytes
}

// ExampleRegistry_AddDependency shows dependency tracking with automatic
// version propagation (paper Figures 5–7).
func ExampleRegistry_AddDependency() {
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clock.NewMock(time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)),
		UUIDs: uuid.NewSeeded(2),
	})
	if err != nil {
		log.Fatal(err)
	}
	b, _ := reg.RegisterModel(core.ModelSpec{BaseVersionID: "B", InitialMajor: 2})
	a, _ := reg.RegisterModel(core.ModelSpec{BaseVersionID: "A", InitialMajor: 4,
		Upstreams: []uuid.UUID{b.ID}})

	// Retraining B bumps A's version without touching A's production.
	if _, err := reg.UploadInstance(core.InstanceSpec{ModelID: b.ID}, []byte("b2")); err != nil {
		log.Fatal(err)
	}
	latest, _ := reg.LatestVersion(a.ID)
	prod, _ := reg.ProductionVersion(a.ID)
	fmt.Printf("A latest %s (cause %s), production %s\n", latest, latest.Cause, prod)
	// Output: A latest 4.1 (cause dep_update), production 4.0
}
