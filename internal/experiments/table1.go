package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"gallery/internal/core"
	"gallery/internal/relstore"
	"gallery/internal/rules"
)

// Experiment E1 — paper Table 1: the feature comparison of model
// management systems. The rows for other systems are the paper's reported
// values; the Gallery row is *measured*: each capability is exercised
// end-to-end against a live registry + rule engine, and the cell is Y only
// if the probe succeeds.

// Table1Features lists Table 1's columns in order.
var Table1Features = []string{
	"Saving", "Loading", "Metadata", "Searching", "Serving", "Metrics", "Orchestration",
}

// Table1Row is one system's feature vector.
type Table1Row struct {
	System   string
	Features map[string]bool
	// Measured is true for rows proven by probes rather than quoted.
	Measured bool
}

// Table1Reported reproduces the paper's rows for the compared systems.
func Table1Reported() []Table1Row {
	mk := func(system string, vals ...bool) Table1Row {
		f := make(map[string]bool, len(Table1Features))
		for i, name := range Table1Features {
			f[name] = vals[i]
		}
		return Table1Row{System: system, Features: f}
	}
	return []Table1Row{
		mk("ModelDB", true, true, true, false, true, true, false),
		mk("ModelHUB", true, true, true, true, false, true, false),
		mk("Metadata Tracking", false, false, true, true, true, false, true),
		mk("Velox", true, true, true, false, true, true, true),
		mk("Clipper", true, true, false, false, true, true, true),
		mk("MLFlow", true, true, true, true, true, true, false),
		mk("TFX", true, true, true, false, true, true, true),
		mk("Azure ML", true, true, false, false, true, false, true),
		mk("SageMaker", true, true, false, true, false, true, true),
	}
}

// Table1Probe exercises every Table 1 capability against this
// implementation and returns the measured Gallery row.
func Table1Probe() (Table1Row, error) {
	env := mustEnv(1)
	row := Table1Row{System: "Gallery (this repo)", Measured: true, Features: map[string]bool{}}

	m, err := env.Reg.RegisterModel(core.ModelSpec{
		BaseVersionID: "table1_probe", Project: "probe", Name: "linear_regression", Domain: "UberX",
	})
	if err != nil {
		return row, fmt.Errorf("register: %w", err)
	}

	// Saving: store a model blob with metadata.
	blob := []byte("opaque serialized model")
	in, err := env.Reg.UploadInstance(core.InstanceSpec{
		ModelID: m.ID, Name: "probe_instance", City: "sf", Framework: "any",
		TrainingData: "hdfs://probe", CodePointer: "git://probe",
	}, blob)
	row.Features["Saving"] = err == nil
	if err != nil {
		return row, nil
	}

	// Loading: fetch the exact bytes back.
	got, err := env.Reg.FetchBlob(in.ID)
	row.Features["Loading"] = err == nil && bytes.Equal(got, blob)

	// Metadata: stored metadata round-trips.
	meta, err := env.Reg.GetInstance(in.ID)
	row.Features["Metadata"] = err == nil && meta.TrainingData == "hdfs://probe" && meta.CodePointer == "git://probe"

	// Metrics: store and read back performance measurements.
	if _, err := env.Reg.InsertMetric(in.ID, "bias", core.ScopeValidation, 0.04); err == nil {
		vals, err := env.Reg.LatestMetrics(in.ID, core.ScopeValidation)
		row.Features["Metrics"] = err == nil && vals["bias"] == 0.04
	}

	// Searching: constraint query over metadata + metrics finds the
	// instance (paper Listing 5).
	found, err := env.Reg.SearchInstances(core.InstanceFilter{
		Project: "probe", MetricName: "bias", MetricOp: relstore.OpLt, MetricValue: 0.25,
	})
	row.Features["Searching"] = err == nil && len(found) == 1 && found[0].ID == in.ID

	// Serving: a selection rule returns a champion to serve.
	sel := &rules.Rule{
		UUID: "probe-selection", Team: "probe", Kind: rules.KindSelection,
		When:           `has(metrics, "bias")`,
		ModelSelection: "a.created_time > b.created_time",
	}
	if _, err := env.Repo.Commit("probe", "selection", []*rules.Rule{sel}, nil); err == nil {
		champ, err := env.Engine.SelectModel("probe-selection", core.InstanceFilter{})
		row.Features["Serving"] = err == nil && champ.ID == in.ID
	}

	// Orchestration: an action rule fires a deployment callback on a
	// metric update event.
	deployed := false
	env.Engine.RegisterAction("probe_deploy", func(*rules.ActionContext) error {
		deployed = true
		return nil
	})
	act := &rules.Rule{
		UUID: "probe-action", Team: "probe", Kind: rules.KindAction,
		When:    "metrics.bias <= 0.1",
		Actions: []rules.ActionRef{{Action: "probe_deploy"}},
	}
	if _, err := env.Repo.Commit("probe", "action", []*rules.Rule{act}, nil); err == nil {
		env.Engine.MetricUpdated(in.ID)
	}
	row.Features["Orchestration"] = deployed

	return row, nil
}

// Table1 returns the full measured-plus-reported table.
func Table1() ([]Table1Row, error) {
	gallery, err := Table1Probe()
	if err != nil {
		return nil, err
	}
	return append(Table1Reported(), gallery), nil
}

// FormatTable1 renders rows the way the paper prints Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s", "Systems")
	for _, f := range Table1Features {
		fmt.Fprintf(&b, " %-13s", f)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s", r.System)
		for _, f := range Table1Features {
			v := "N"
			if r.Features[f] {
				v = "Y"
			}
			if r.Measured {
				v += "*"
			}
			fmt.Fprintf(&b, " %-13s", v)
		}
		b.WriteString("\n")
	}
	b.WriteString("(*) measured by end-to-end probe in this reproduction; others as reported in the paper\n")
	return b.String()
}
