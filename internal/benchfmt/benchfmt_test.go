package benchfmt

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func metric(name string, value float64, better string, tol float64) Metric {
	return Metric{Name: name, Value: value, Better: better, Tol: tol}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := Result{
		Experiment: "serving",
		Metrics: []Metric{
			{Name: "qps", Unit: "ops/s", Value: 12345.5, Better: Info},
			{Name: "allocs_per_op", Value: 3, Better: LowerIsBetter, Tol: 0.5},
		},
	}
	if err := Write(dir, r); err != nil {
		t.Fatal(err)
	}
	back, err := Load(filepath.Join(dir, FileName("serving")))
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaVersion {
		t.Fatalf("schema = %d", back.Schema)
	}
	if len(back.Metrics) != 2 || back.Metrics[1].Tol != 0.5 || back.Metrics[0].Unit != "ops/s" {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestLoadBaselineMissingIsNotError(t *testing.T) {
	_, ok, err := LoadBaseline(t.TempDir(), "nope")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("missing baseline reported ok")
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	if err := Write(dir, Result{Experiment: "x"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, FileName("x"))
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = r
	// Corrupt the schema number.
	b := []byte(`{"schema": 999, "experiment": "x"}`)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong-schema load err = %v", err)
	}
}

func TestCompareGating(t *testing.T) {
	base := Result{Experiment: "e", Metrics: []Metric{
		metric("lat", 100, LowerIsBetter, 0.2),
		metric("thr", 1000, HigherIsBetter, 0.2),
		metric("ns", 50, Info, 0),
		metric("stable", 7, LowerIsBetter, 0),
	}}

	// Within tolerance: no regression.
	cur := Result{Experiment: "e", Metrics: []Metric{
		metric("lat", 110, LowerIsBetter, 0.2),
		metric("thr", 900, HigherIsBetter, 0.2),
		metric("ns", 5000, Info, 0), // info may move arbitrarily
		metric("stable", 7, LowerIsBetter, 0),
	}}
	deltas, regressed := Compare(base, cur, 0.25)
	if regressed {
		t.Fatalf("within-tolerance rerun regressed: %+v", deltas)
	}

	// Latency blowout regresses.
	cur.Metrics[0].Value = 200
	if _, regressed := Compare(base, cur, 0.25); !regressed {
		t.Fatal("2x latency did not regress")
	}
	cur.Metrics[0].Value = 100

	// Throughput collapse regresses.
	cur.Metrics[1].Value = 500
	if _, regressed := Compare(base, cur, 0.25); !regressed {
		t.Fatal("halved throughput did not regress")
	}
	cur.Metrics[1].Value = 1000

	// Default tolerance applies when the metric carries none.
	cur.Metrics[3].Value = 8 // +14% < default 25%
	if _, regressed := Compare(base, cur, 0.25); regressed {
		t.Fatal("+14% under default tol 25% regressed")
	}
	cur.Metrics[3].Value = 10 // +43%
	if _, regressed := Compare(base, cur, 0.25); !regressed {
		t.Fatal("+43% over default tol 25% passed")
	}
}

func TestCompareGoneGatedMetricRegresses(t *testing.T) {
	base := Result{Experiment: "e", Metrics: []Metric{
		metric("gated", 5, LowerIsBetter, 0.1),
		metric("chatty", 5, Info, 0),
	}}
	cur := Result{Experiment: "e"}
	deltas, regressed := Compare(base, cur, 0.25)
	if !regressed {
		t.Fatal("vanished gated metric did not regress")
	}
	var gone, infoGone string
	for _, d := range deltas {
		switch d.Name {
		case "gated":
			gone = d.Status
		case "chatty":
			infoGone = d.Status
		}
	}
	if gone != StatusRegressed {
		t.Fatalf("gated gone status = %s", gone)
	}
	if infoGone != StatusGone {
		t.Fatalf("info gone status = %s", infoGone)
	}
}

func TestCompareNewMetricIsNotRegression(t *testing.T) {
	base := Result{Experiment: "e"}
	cur := Result{Experiment: "e", Metrics: []Metric{metric("fresh", 1, LowerIsBetter, 0)}}
	deltas, regressed := Compare(base, cur, 0.25)
	if regressed {
		t.Fatal("new metric regressed")
	}
	if len(deltas) != 1 || deltas[0].Status != StatusNew {
		t.Fatalf("deltas = %+v", deltas)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := Result{Experiment: "e", Metrics: []Metric{metric("allocs", 0, LowerIsBetter, 0.5)}}
	cur := Result{Experiment: "e", Metrics: []Metric{metric("allocs", 0.3, LowerIsBetter, 0.5)}}
	if _, regressed := Compare(base, cur, 0.25); regressed {
		t.Fatal("0 -> 0.3 with absolute allowance 0.5 regressed")
	}
	cur.Metrics[0].Value = 2
	if _, regressed := Compare(base, cur, 0.25); !regressed {
		t.Fatal("0 -> 2 allocs/op passed the gate")
	}
}

func TestFormatDeltas(t *testing.T) {
	deltas := []Delta{
		{Name: "lat", Unit: "s", Base: 1, Cur: 1.1, Change: 0.1, Status: StatusOK},
		{Name: "new", Cur: 3, Status: StatusNew},
		{Name: "inf", Base: 0, Cur: 1, Change: math.Inf(1), Status: StatusInfo},
	}
	out := FormatDeltas("exp", deltas)
	for _, want := range []string{"exp:", "lat (s)", "+10.0%", "new", "inf"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
