package forecast

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// GBStumps is a gradient-boosted ensemble of depth-1 regression trees over
// lag and calendar features. It represents the paper's "advanced" model
// class (§4.2: model classes "ranging from simple time series models,
// linear regression models, and now deep learning models"): unlike
// LinearAR's smooth harmonics it captures sharp, threshold-shaped demand
// structure such as commute rush hours.
type GBStumps struct {
	Lags         int
	Rounds       int
	LearningRate float64
	// Horizon, as in LinearAR, is how many steps ahead the model
	// predicts (default 1).
	Horizon int

	// Learned state (exported to survive gob through Gallery).
	Base   float64
	Stumps []Stump
}

// Stump is one depth-1 tree: feature <= Threshold ? Left : Right.
type Stump struct {
	Feature   int
	Threshold float64
	Left      float64
	Right     float64
}

// Name implements Model.
func (m *GBStumps) Name() string {
	return fmt.Sprintf("gb_stumps_l%d_r%d", m.lags(), m.rounds())
}

func (m *GBStumps) lags() int {
	if m.Lags <= 0 {
		return 12
	}
	return m.Lags
}

func (m *GBStumps) rounds() int {
	if m.Rounds <= 0 {
		return 120
	}
	return m.Rounds
}

func (m *GBStumps) rate() float64 {
	if m.LearningRate <= 0 {
		return 0.15
	}
	return m.LearningRate
}

func (m *GBStumps) horizon() int {
	if m.Horizon <= 0 {
		return 1
	}
	return m.Horizon
}

func (m *GBStumps) span() int { return m.horizon() + m.lags() - 1 }

// featureRow builds [lags..., hour, weekday] for predicting index i.
func (m *GBStumps) featureRow(values []float64, t time.Time, i int) []float64 {
	h := m.horizon()
	row := make([]float64, 0, m.lags()+2)
	for l := 0; l < m.lags(); l++ {
		row = append(row, values[i-h-l])
	}
	row = append(row, float64(t.Hour()), float64(t.Weekday()))
	return row
}

// Train fits the ensemble by greedy least-squares boosting.
func (m *GBStumps) Train(data Series) error {
	values := data.Values()
	n := len(values)
	if n <= m.span()+8 {
		return fmt.Errorf("%w: %d points for %s", ErrNeedData, n, m.Name())
	}
	var X [][]float64
	var y []float64
	for i := m.span(); i < n; i++ {
		X = append(X, m.featureRow(values, data[i].T, i))
		y = append(y, values[i])
	}
	rows, p := len(X), len(X[0])

	// Base prediction: mean.
	var sum float64
	for _, v := range y {
		sum += v
	}
	m.Base = sum / float64(rows)

	resid := make([]float64, rows)
	for i := range resid {
		resid[i] = y[i] - m.Base
	}

	// Candidate thresholds per feature: quantiles of the training values.
	const quantiles = 16
	thresholds := make([][]float64, p)
	col := make([]float64, rows)
	for f := 0; f < p; f++ {
		for i := range X {
			col[i] = X[i][f]
		}
		sorted := append([]float64(nil), col...)
		sort.Float64s(sorted)
		var ts []float64
		for q := 1; q < quantiles; q++ {
			ts = append(ts, sorted[q*rows/quantiles])
		}
		thresholds[f] = dedupFloats(ts)
	}

	m.Stumps = m.Stumps[:0]
	lr := m.rate()
	for round := 0; round < m.rounds(); round++ {
		best, ok := bestStump(X, resid, thresholds)
		if !ok {
			break
		}
		m.Stumps = append(m.Stumps, best)
		for i := range X {
			resid[i] -= lr * best.apply(X[i])
		}
	}
	return nil
}

func (s Stump) apply(row []float64) float64 {
	if row[s.Feature] <= s.Threshold {
		return s.Left
	}
	return s.Right
}

// bestStump finds the single split minimizing squared residual error.
func bestStump(X [][]float64, resid []float64, thresholds [][]float64) (Stump, bool) {
	rows := len(X)
	var total float64
	for _, r := range resid {
		total += r
	}
	bestGain := 1e-12
	var best Stump
	found := false
	for f := range thresholds {
		for _, th := range thresholds[f] {
			var leftSum float64
			leftN := 0
			for i := 0; i < rows; i++ {
				if X[i][f] <= th {
					leftSum += resid[i]
					leftN++
				}
			}
			rightN := rows - leftN
			if leftN == 0 || rightN == 0 {
				continue
			}
			rightSum := total - leftSum
			// SSE reduction of predicting each side's mean residual.
			gain := leftSum*leftSum/float64(leftN) + rightSum*rightSum/float64(rightN)
			if gain > bestGain {
				bestGain = gain
				best = Stump{
					Feature:   f,
					Threshold: th,
					Left:      leftSum / float64(leftN),
					Right:     rightSum / float64(rightN),
				}
				found = true
			}
		}
	}
	return best, found
}

// Forecast applies the ensemble; the target sits Horizon steps past the
// end of History.
func (m *GBStumps) Forecast(ctx Context) float64 {
	if len(m.Stumps) == 0 && m.Base == 0 || len(ctx.History) < m.span() {
		if len(ctx.History) == 0 {
			return 0
		}
		return ctx.History[len(ctx.History)-1]
	}
	h := m.horizon()
	values := append(append([]float64(nil), ctx.History...), make([]float64, h)...)
	row := m.featureRow(values, ctx.Time, len(values)-1)
	pred := m.Base
	lr := m.rate()
	for _, s := range m.Stumps {
		pred += lr * s.apply(row)
	}
	if pred < 0 {
		pred = 0
	}
	return pred
}

func dedupFloats(ts []float64) []float64 {
	sort.Float64s(ts)
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || math.Abs(t-out[len(out)-1]) > 1e-12 {
			out = append(out, t)
		}
	}
	return out
}
