package trace

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsSafeAndFree(t *testing.T) {
	ctx, span := Start(context.Background(), "anything")
	if span != nil {
		t.Fatal("Start with no parent span must return nil")
	}
	if ctx != context.Background() {
		t.Fatal("Start with no parent must return the context unchanged")
	}
	// Every method must no-op on nil.
	span.Annotate("k", "v")
	span.AnnotateInt("k", 1)
	span.AnnotateDuration("k", time.Second)
	span.SetError(errors.New("x"))
	span.Fail("x")
	span.Rename("y")
	span.End()
	span.EndErr(errors.New("x"))
	if span.TraceIDString() != "" || span.SpanIDString() != "" || span.Traceparent() != "" {
		t.Fatal("nil span must render empty IDs")
	}

	var nilTracer *Tracer
	if _, s := nilTracer.StartRoot(context.Background(), "r", ""); s != nil {
		t.Fatal("nil tracer must not start spans")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Options{Service: "test", Sampler: Always()})
	_, span := tr.StartRoot(context.Background(), "root", "")
	if span == nil {
		t.Fatal("always sampler must start a root span")
	}
	h := span.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent %q has wrong shape", h)
	}
	tid, sid, sampled, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if !sampled {
		t.Fatal("traceparent must carry the sampled flag")
	}
	if tid.String() != span.TraceIDString() || sid.String() != span.SpanIDString() {
		t.Fatalf("round trip changed IDs: %s/%s vs %s/%s",
			tid, sid, span.TraceIDString(), span.SpanIDString())
	}
	span.End()
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	if _, _, _, err := ParseTraceparent(valid); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	bad := []string{
		"",
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef",    // truncated
		"01-0123456789abcdef0123456789abcdef-0123456789abcdef-01", // unknown version
		"00-0123456789abcdef0123456789abcdeZ-0123456789abcdef-01", // bad hex
		"00-00000000000000000000000000000000-0123456789abcdef-01", // zero trace id
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01", // zero span id
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef-0g", // bad flags
		"00x0123456789abcdef0123456789abcdefx0123456789abcdefx01", // bad separators
		valid + "-extra", // too long
	}
	for _, h := range bad {
		if _, _, _, err := ParseTraceparent(h); !errors.Is(err, ErrTraceparent) {
			t.Errorf("ParseTraceparent(%q) = %v, want ErrTraceparent", h, err)
		}
	}
	// Unsampled flag parses fine but reports sampled=false.
	if _, _, sampled, err := ParseTraceparent(valid[:53] + "00"); err != nil || sampled {
		t.Fatalf("unsampled header: sampled=%v err=%v", sampled, err)
	}
}

func TestParseSampler(t *testing.T) {
	for _, spec := range []string{"", "never", "off", "always", "0.25", "errslow:250ms"} {
		if _, err := ParseSampler(spec); err != nil {
			t.Errorf("ParseSampler(%q): %v", spec, err)
		}
	}
	for _, spec := range []string{"bogus", "-0.5", "1.5", "errslow:nope", "errslow:-1s"} {
		if _, err := ParseSampler(spec); !errors.Is(err, ErrSamplerSpec) {
			t.Errorf("ParseSampler(%q) = %v, want ErrSamplerSpec", spec, err)
		}
	}
	s, _ := ParseSampler("errslow:250ms")
	if s.Spec() != "errslow:250ms" {
		t.Errorf("Spec() = %q, want errslow:250ms", s.Spec())
	}
	if !s.Sample() {
		t.Error("errslow must record every request (head)")
	}
	if s.Keep(10*time.Millisecond, false) {
		t.Error("errslow must drop fast clean traces (tail)")
	}
	if !s.Keep(10*time.Millisecond, true) || !s.Keep(time.Second, false) {
		t.Error("errslow must keep errored and slow traces")
	}
	if n, _ := ParseSampler("never"); n.Sample() {
		t.Error("never must not sample")
	}
}

func TestChildSpansAndParentLinks(t *testing.T) {
	tr := New(Options{Service: "svc", Sampler: Always()})
	ctx, root := tr.StartRoot(context.Background(), "root", "")
	ctx2, child := Start(ctx, "child")
	_, grand := Start(ctx2, "grandchild")
	grand.End()
	child.End()
	root.End()

	d, ok := tr.Store().Get(root.TraceIDString())
	if !ok {
		t.Fatal("trace not in store after root End")
	}
	if d.Summary.Spans != 3 {
		t.Fatalf("got %d spans, want 3", d.Summary.Spans)
	}
	if len(d.Roots) != 1 || d.Roots[0].Span.Name != "root" {
		t.Fatalf("tree roots = %+v, want single root", d.Roots)
	}
	c := d.Roots[0].Children
	if len(c) != 1 || c[0].Span.Name != "child" {
		t.Fatalf("root children = %+v, want [child]", c)
	}
	if len(c[0].Children) != 1 || c[0].Children[0].Span.Name != "grandchild" {
		t.Fatalf("child children = %+v, want [grandchild]", c[0].Children)
	}
	if c[0].Span.ParentID != d.Roots[0].Span.SpanID {
		t.Fatal("child's parent_id must be the root's span_id")
	}
	for _, n := range []float64{d.Roots[0].SelfMs, c[0].SelfMs} {
		if n < 0 {
			t.Fatalf("self time %f must be clamped at zero", n)
		}
	}
}

func TestErrSlowTailFilter(t *testing.T) {
	tr := New(Options{Service: "svc", Sampler: ErrSlow(time.Hour)})

	// Fast, clean → recorded but not kept.
	_, fast := tr.StartRoot(context.Background(), "fast", "")
	if fast == nil {
		t.Fatal("errslow must record at head")
	}
	fast.End()
	if _, ok := tr.Store().Get(fast.TraceIDString()); ok {
		t.Fatal("fast clean trace must be dropped at tail")
	}

	// Root error → kept.
	_, bad := tr.StartRoot(context.Background(), "bad", "")
	bad.EndErr(errors.New("boom"))
	if _, ok := tr.Store().Get(bad.TraceIDString()); !ok {
		t.Fatal("errored trace must be kept")
	}

	// Clean root, failed child (error swallowed by a fallback) → kept:
	// the child's error feeds the tail decision via the pending buffer.
	ctx, root := tr.StartRoot(context.Background(), "root", "")
	_, child := Start(ctx, "child")
	child.EndErr(errors.New("inner"))
	root.End()
	if _, ok := tr.Store().Get(root.TraceIDString()); !ok {
		t.Fatal("trace with a failed child span must be kept")
	}
}

func TestRemoteParentBypassesTailFilter(t *testing.T) {
	up := New(Options{Service: "upstream", Sampler: Always()})
	_, remote := up.StartRoot(context.Background(), "caller", "")

	down := New(Options{Service: "downstream", Sampler: ErrSlow(time.Hour)})
	_, span := down.StartRoot(context.Background(), "handler", remote.Traceparent())
	if span == nil {
		t.Fatal("sampled traceparent must force a span")
	}
	if span.TraceIDString() != remote.TraceIDString() {
		t.Fatal("continued span must keep the caller's trace ID")
	}
	span.End()
	d, ok := down.Store().Get(remote.TraceIDString())
	if !ok {
		t.Fatal("remote-forced trace must bypass the tail filter")
	}
	if d.Roots[0].Span.ParentID != remote.SpanIDString() {
		t.Fatalf("handler parent = %s, want caller span %s",
			d.Roots[0].Span.ParentID, remote.SpanIDString())
	}
	remote.End()

	// An unsampled context (flags 00) must not force tracing: it falls
	// through to the local sampler, so a Never tracer starts nothing.
	unsampled := strings.TrimSuffix(remote.Traceparent(), "01") + "00"
	off := New(Options{Service: "downstream", Sampler: Never()})
	if _, s := off.StartRoot(context.Background(), "handler", unsampled); s != nil {
		t.Fatal("unsampled traceparent must fall through to the local sampler")
	}
}

func TestNeverSamplerStartsNothing(t *testing.T) {
	tr := New(Options{Service: "svc"}) // default sampler: Never
	ctx, span := tr.StartRoot(context.Background(), "root", "")
	if span != nil {
		t.Fatal("never sampler must not start spans")
	}
	if _, c := Start(ctx, "child"); c != nil {
		t.Fatal("child of a nil root must be nil")
	}
	if got := tr.Store().Stats().Completed; got != 0 {
		t.Fatalf("store holds %d traces, want 0", got)
	}
}

// TestRingEvictionConcurrent hammers the store from many goroutines (run
// under -race) and checks the ring stays bounded and accounts for every
// eviction.
func TestRingEvictionConcurrent(t *testing.T) {
	const (
		workers   = 8
		perWorker = 50
		capacity  = 16
	)
	tr := New(Options{Service: "svc", Sampler: Always(), Capacity: capacity})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx, root := tr.StartRoot(context.Background(), "root", "")
				_, child := Start(ctx, "child")
				child.End()
				root.End()
			}
		}()
	}
	wg.Wait()
	st := tr.Store().Stats()
	if st.Completed != capacity {
		t.Fatalf("ring holds %d traces, want capacity %d", st.Completed, capacity)
	}
	if st.Evicted != workers*perWorker-capacity {
		t.Fatalf("evicted = %d, want %d", st.Evicted, workers*perWorker-capacity)
	}
	if st.Pending != 0 {
		t.Fatalf("pending = %d, want 0 after all roots ended", st.Pending)
	}
	// Every summarized trace must be fetchable and complete.
	for _, s := range tr.Store().Summaries(0) {
		d, ok := tr.Store().Get(s.TraceID)
		if !ok || d.Summary.Spans != 2 {
			t.Fatalf("trace %s: ok=%v spans=%d, want 2", s.TraceID, ok, d.Summary.Spans)
		}
	}
}

func TestIngestMergesRemoteSpans(t *testing.T) {
	tr := New(Options{Service: "galleryd", Sampler: Always()})
	_, root := tr.StartRoot(context.Background(), "server", "")
	tid := root.TraceIDString()
	root.End()

	// A peer process ships its half of the trace after ours completed.
	tr.Store().Ingest([]SpanData{{
		TraceID: tid,
		SpanID:  "aaaaaaaaaaaaaaaa",
		Name:    "gateway",
		Service: "galleryserve",
		Start:   time.Now().Add(-time.Millisecond),
	}})
	d, ok := tr.Store().Get(tid)
	if !ok {
		t.Fatal("trace lost after ingest")
	}
	if d.Summary.Spans != 2 {
		t.Fatalf("got %d spans after merge, want 2", d.Summary.Spans)
	}
	if len(d.Summary.Services) != 2 {
		t.Fatalf("services = %v, want both", d.Summary.Services)
	}
}
