package server

import (
	"fmt"
	"net/http"
	"time"

	"gallery/internal/core"
	"gallery/internal/obs/profile"
)

// Continuous-profiling endpoints. The GET is reader-class like the other
// debug surfaces: it serves compact per-process function summaries, not
// raw pprof data, so it leaks no memory contents. The POST is the
// cross-process ingest gateways ship their window summaries into —
// publisher-class, mirroring POST /v1/debug/traces.

func (s *Server) profileRoutes() {
	s.handle("GET /v1/debug/profile", s.handleDebugProfile)
	s.handle("POST /v1/debug/profile", s.handleIngestProfile)
}

// handleDebugProfile serves the fleet view: every process that has
// reported (the local daemon plus any shipping gateways), each folded
// per kind across retained windows. ?merge=1h restricts the fold to
// recent windows; ?n=10 bounds functions per summary.
func (s *Server) handleDebugProfile(w http.ResponseWriter, r *http.Request) {
	merge, topN, err := profile.ParseViewQuery(r.URL.Query())
	if err != nil {
		writeErr(w, fmt.Errorf("%w: %s", core.ErrBadSpec, err))
		return
	}
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, s.profiles.Snapshot(merge, topN, time.Now()))
}

// handleIngestProfile accepts one process's summary shipment. 202 like
// the trace ingest: the shipment is folded into in-memory rings, not
// durably stored.
func (s *Server) handleIngestProfile(w http.ResponseWriter, r *http.Request) {
	var req profile.IngestRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if req.Process == "" {
		writeErr(w, fmt.Errorf("%w: process must not be empty", core.ErrBadSpec))
		return
	}
	if len(req.Summaries) == 0 {
		writeErr(w, fmt.Errorf("%w: summaries must not be empty", core.ErrBadSpec))
		return
	}
	s.profiles.Ingest(req.Process, req.Summaries)
	w.WriteHeader(http.StatusAccepted)
}
