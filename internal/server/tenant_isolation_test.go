package server

// Tests for the fine-grained half of tenant isolation: the middleware's
// role check says "a publisher may mutate", the handlers' ownership check
// says "only your own namespace's models". These cover the ID-addressed
// routes an attacker would use to reach another tenant's artifacts, the
// bare-name registration policy, quota accounting against the owning
// namespace, and the route → classification coverage table.

import (
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"gallery/internal/api"
	"gallery/internal/tenant"
)

// TestAuthCrossNamespaceMutationForbidden proves a publisher token of one
// namespace cannot mutate another tenant's models or instances through
// ID-addressed routes — the role check alone would admit all of these.
func TestAuthCrossNamespaceMutationForbidden(t *testing.T) {
	h := newAuthHarness(t)
	for _, ns := range []string{"maps", "fraud"} {
		if _, err := h.admin.CreateNamespace(api.CreateNamespaceRequest{Name: ns}); err != nil {
			t.Fatal(err)
		}
	}
	mapsPub := h.client(h.mint(t, "maps", "trainer", tenant.RolePublisher))
	intruder := h.client(h.mint(t, "fraud", "intruder", tenant.RolePublisher))

	m, err := mapsPub.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv-1", Name: "maps/eta", Owner: "x", Team: "maps", Domain: "maps"})
	if err != nil {
		t.Fatal(err)
	}
	in, err := mapsPub.UploadInstance(api.UploadInstanceRequest{ModelID: m.ID, Blob: []byte("weights")})
	if err != nil {
		t.Fatal(err)
	}
	vs, err := mapsPub.VersionHistory(m.ID)
	if err != nil || len(vs) == 0 {
		t.Fatalf("version history: %v (%d records)", err, len(vs))
	}

	wantStatus(t, intruder.DeprecateModel(m.ID), http.StatusForbidden)
	_, err = intruder.EvolveModel(m.ID, "hijacked")
	wantStatus(t, err, http.StatusForbidden)
	wantStatus(t, intruder.Promote(vs[len(vs)-1].ID), http.StatusForbidden)
	wantStatus(t, intruder.PromoteInstance(in.ID), http.StatusForbidden)
	wantStatus(t, intruder.DeprecateInstance(in.ID), http.StatusForbidden)
	_, err = intruder.UploadInstance(api.UploadInstanceRequest{ModelID: m.ID, Blob: []byte("trojan")})
	wantStatus(t, err, http.StatusForbidden)
	_, err = intruder.InsertMetric(in.ID, "rmse", "training", 0.1)
	wantStatus(t, err, http.StatusForbidden)
	wantStatus(t, intruder.InsertMetrics(in.ID, "training", map[string]float64{"rmse": 0.1}), http.StatusForbidden)
	wantStatus(t, intruder.InsertMetricsBlob(in.ID, "training", []byte("rmse:0.1")), http.StatusForbidden)

	// Dependencies follow the dependent side: the intruder's own model may
	// depend on maps' model (the normal cross-team case)...
	fm, err := intruder.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv-2", Name: "fraud/scores", Owner: "y", Team: "fraud", Domain: "fraud"})
	if err != nil {
		t.Fatal(err)
	}
	if err := intruder.AddDependency(fm.ID, m.ID); err != nil {
		t.Fatalf("cross-team upstream dependency: %v", err)
	}
	// ...but it cannot edit the dependency list of a model it doesn't own.
	wantStatus(t, intruder.AddDependency(m.ID, fm.ID), http.StatusForbidden)
	wantStatus(t, intruder.RemoveDependency(m.ID, fm.ID), http.StatusForbidden)

	// Reads stay shared across tenants.
	if _, err := intruder.GetModel(m.ID); err != nil {
		t.Fatalf("cross-tenant read: %v", err)
	}

	// The owner and the instance admin are unaffected.
	if _, err := mapsPub.InsertMetric(in.ID, "rmse", "training", 0.1); err != nil {
		t.Fatalf("owner metric insert: %v", err)
	}
	if err := h.admin.DeprecateInstance(in.ID); err != nil {
		t.Fatalf("admin cross-tenant deprecate: %v", err)
	}
}

// TestAuthBareNameRegistrationScoped pins the default-namespace policy:
// bare (unprefixed) model names live in "default", so only
// default-namespace callers may create them, and registrations are always
// charged to the model's OWNING namespace.
func TestAuthBareNameRegistrationScoped(t *testing.T) {
	h := newAuthHarness(t)
	if _, err := h.admin.CreateNamespace(api.CreateNamespaceRequest{Name: "maps"}); err != nil {
		t.Fatal(err)
	}
	mapsPub := h.client(h.mint(t, "maps", "trainer", tenant.RolePublisher))

	// A tenant publisher cannot squat the shared default namespace.
	_, err := mapsPub.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv-1", Name: "eta", Owner: "x", Team: "maps", Domain: "maps"})
	wantStatus(t, err, http.StatusForbidden)

	// A default-namespace publisher can, and the slot lands on default.
	defPub := h.client(h.mint(t, tenant.DefaultNamespace, "core-train", tenant.RolePublisher))
	if _, err := defPub.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv-1", Name: "eta", Owner: "x", Team: "core", Domain: "core"}); err != nil {
		t.Fatal(err)
	}
	if u, _ := h.tm.GetUsage(tenant.DefaultNamespace); u.Models != 1 {
		t.Fatalf("default usage = %d models, want 1", u.Models)
	}
	if u, _ := h.tm.GetUsage("maps"); u.Models != 0 {
		t.Fatalf("maps usage = %d models, want 0", u.Models)
	}

	// An instance admin registering on a tenant's behalf charges the
	// tenant, not the admin's own namespace: ownership == accounting.
	if _, err := h.admin.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv-2", Name: "maps/eta", Owner: "x", Team: "maps", Domain: "maps"}); err != nil {
		t.Fatal(err)
	}
	if u, _ := h.tm.GetUsage("maps"); u.Models != 1 {
		t.Fatalf("maps usage = %d models after admin registration, want 1", u.Models)
	}

	// A prefix must name an existing namespace, even for admins.
	_, err = h.admin.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv-3", Name: "ghost/x", Owner: "x", Team: "g", Domain: "g"})
	wantStatus(t, err, http.StatusNotFound)
}

// TestAuthMetricsBlobQuota closes the quota bypass: bulk metric ingestion
// through /metricsblob is charged against the owning namespace's blob
// byte quota like any other stored bytes.
func TestAuthMetricsBlobQuota(t *testing.T) {
	h := newAuthHarness(t)
	if _, err := h.admin.CreateNamespace(api.CreateNamespaceRequest{Name: "maps", MaxBlobBytes: 1000}); err != nil {
		t.Fatal(err)
	}
	pub := h.client(h.mint(t, "maps", "trainer", tenant.RolePublisher))
	m, err := pub.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv-1", Name: "maps/eta", Owner: "x", Team: "maps", Domain: "maps"})
	if err != nil {
		t.Fatal(err)
	}
	in, err := pub.UploadInstance(api.UploadInstanceRequest{ModelID: m.ID, Blob: make([]byte, 600)})
	if err != nil {
		t.Fatal(err)
	}

	// 600 stored + ~500 of metrics text > 1000: rejected with 413 before
	// any row is written.
	var big strings.Builder
	for i := 0; big.Len() < 500; i++ {
		fmt.Fprintf(&big, "metric_%04d:1\n", i)
	}
	err = pub.InsertMetricsBlob(in.ID, "training", []byte(big.String()))
	wantStatus(t, err, http.StatusRequestEntityTooLarge)

	// A small blob fits and is charged.
	small := []byte("rmse:1.5\n")
	if err := pub.InsertMetricsBlob(in.ID, "training", small); err != nil {
		t.Fatal(err)
	}
	u, err := h.tm.GetUsage("maps")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(600 + len(small))
	if u.BlobBytes != want {
		t.Fatalf("blob usage = %d, want %d", u.BlobBytes, want)
	}

	// A malformed blob fails after reservation; the bytes come back.
	err = pub.InsertMetricsBlob(in.ID, "training", []byte("not a metrics blob"))
	wantStatus(t, err, http.StatusBadRequest)
	if u, _ := h.tm.GetUsage("maps"); u.BlobBytes != want {
		t.Fatalf("blob usage = %d after failed ingest, want %d (reservation leaked)", u.BlobBytes, want)
	}
}

// TestAuthModelQuotaReleasedOnDeprecate proves retiring a model returns
// its slot — a namespace at MaxModels can reclaim capacity — and that
// idempotent re-deprecation does not double-credit.
func TestAuthModelQuotaReleasedOnDeprecate(t *testing.T) {
	h := newAuthHarness(t)
	if _, err := h.admin.CreateNamespace(api.CreateNamespaceRequest{Name: "maps", MaxModels: 1}); err != nil {
		t.Fatal(err)
	}
	pub := h.client(h.mint(t, "maps", "trainer", tenant.RolePublisher))
	eta, err := pub.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv-1", Name: "maps/eta", Owner: "x", Team: "maps", Domain: "maps"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = pub.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv-2", Name: "maps/surge", Owner: "x", Team: "maps", Domain: "maps"})
	wantStatus(t, err, http.StatusForbidden)

	if err := pub.DeprecateModel(eta.ID); err != nil {
		t.Fatal(err)
	}
	if u, _ := h.tm.GetUsage("maps"); u.Models != 0 {
		t.Fatalf("usage = %d models after deprecation, want 0", u.Models)
	}
	if _, err := pub.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv-2", Name: "maps/surge", Owner: "x", Team: "maps", Domain: "maps"}); err != nil {
		t.Fatalf("register into reclaimed slot: %v", err)
	}

	// Deprecation is idempotent; the release is not repeated.
	if err := pub.DeprecateModel(eta.ID); err != nil {
		t.Fatal(err)
	}
	if u, _ := h.tm.GetUsage("maps"); u.Models != 1 {
		t.Fatalf("usage = %d models after re-deprecation, want 1", u.Models)
	}
	_, err = pub.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv-3", Name: "maps/third", Owner: "x", Team: "maps", Domain: "maps"})
	wantStatus(t, err, http.StatusForbidden)
}

// TestRouteClassificationCoverage pins every route galleryd registers to
// an explicit tenant role class. A new route that is not added here fails
// the test, so it cannot silently land in the wrong class — and
// tenant.Classify's safe default (publisher mutation) means an unlisted
// route can at worst be over-protected, never downgraded.
func TestRouteClassificationCoverage(t *testing.T) {
	h := newAuthHarness(t)

	type class struct {
		role     tenant.Role
		mutation bool
	}
	reader := class{tenant.RoleReader, false}
	pub := class{tenant.RolePublisher, true}
	op := class{tenant.RoleOperator, true}
	opRead := class{tenant.RoleOperator, false}

	want := map[string]class{
		"POST /v1/models":                     pub,
		"GET /v1/models/{id}":                 reader,
		"GET /v1/models":                      reader,
		"POST /v1/models/{id}/evolve":         pub,
		"GET /v1/models/{id}/evolution":       reader,
		"POST /v1/models/{id}/deprecate":      pub,
		"GET /v1/models/{id}/versions":        reader,
		"GET /v1/models/{id}/production":      reader,
		"GET /v1/models/{id}/upstreams":       reader,
		"GET /v1/models/{id}/downstreams":     reader,
		"POST /v1/versions/{id}/promote":      pub,
		"POST /v1/deps":                       pub,
		"DELETE /v1/deps":                     pub,
		"POST /v1/instances":                  pub,
		"GET /v1/instances/{id}":              reader,
		"GET /v1/instances/{id}/blob":         reader,
		"POST /v1/instances/{id}/deprecate":   pub,
		"POST /v1/instances/{id}/promote":     pub,
		"POST /v1/instances/{id}/metrics":     pub,
		"POST /v1/instances/{id}/metricset":   pub,
		"GET /v1/instances/{id}/metrics":      reader,
		"POST /v1/instances/{id}/drift":       reader,
		"POST /v1/instances/{id}/skew":        reader,
		"POST /v1/instances/{id}/metricsblob": pub,
		"POST /v1/health/fleet":               reader,
		"POST /v1/health/observations":        pub,
		"GET /v1/health/models":               reader,
		"GET /v1/health/models/{id}":          reader,
		"POST /v1/search":                     reader,
		"GET /v1/lineage/{base}":              reader,
		"GET /v1/stats":                       reader,
		"GET /v1/audit":                       reader,
		"POST /v1/audit":                      pub,
		"GET /v1/audit/entity/{id}":           reader,
		"GET /v1/debug/logs":                  reader,
		"GET /v1/debug/metrics":               reader,
		"GET /v1/debug/metrics/prom":          reader,
		"GET /v1/debug/traces":                reader,
		"GET /v1/debug/traces/{id}":           reader,
		"POST /v1/debug/traces":               pub,
		"POST /v1/rules":                      op,
		"GET /v1/rules":                       reader,
		"POST /v1/rules/{id}/select":          op,
		"GET /v1/alerts":                      reader,
		"POST /v1/tenants":                    op,
		"GET /v1/tenants":                     opRead,
		"POST /v1/tenants/{ns}/quotas":        op,
		"POST /v1/tenants/{ns}/tokens":        op,
		"GET /v1/tenants/{ns}/tokens":         opRead,
		"DELETE /v1/tenants/{ns}/tokens/{id}": op,
		"POST /v1/slo":                        op,
		"GET /v1/slo":                         reader,
		"DELETE /v1/slo/{id}":                 op,
		"GET /v1/slo/status":                  reader,
		"POST /v1/incidents":                  op,
		"GET /v1/incidents":                   reader,
		"GET /v1/incidents/{id}":              reader,
		"GET /v1/debug/profile":               reader,
		"POST /v1/debug/profile":              pub,
	}

	wildcard := regexp.MustCompile(`\{[^}]+\}`)
	seen := 0
	for _, pattern := range h.srv.routePatterns {
		method, path, ok := strings.Cut(pattern, " ")
		if !ok {
			t.Fatalf("route pattern %q has no method", pattern)
		}
		exp, ok := want[pattern]
		if !ok {
			t.Errorf("route %q has no classification expectation — classify it explicitly in tenant.Classify and add it here", pattern)
			continue
		}
		seen++
		concrete := wildcard.ReplaceAllString(path, "11111111-2222-3333-4444-555555555555")
		role, mutation := tenant.Classify(method, concrete)
		if role != exp.role || mutation != exp.mutation {
			t.Errorf("Classify(%s %s) = (%v, %v), want (%v, %v)", method, concrete, role, mutation, exp.role, exp.mutation)
		}
	}
	// The harness mounts tenants but not the optional health monitor, so
	// its route set may be smaller than the table — never empty though.
	if seen == 0 {
		t.Fatal("no route patterns recorded")
	}

	// The serving gateway's routes run the same Authorize; pin them too.
	for pattern, exp := range map[string]class{
		"POST /v1/predict/{model}": reader,
		"GET /v1/serving":          reader,
		"GET /v1/healthz":          reader, // exempted earlier in Authorize; reader if it ever weren't
		"GET /v1/debug/bundle":     reader, // incident snapshot pull
		"GET /v1/debug/profile":    reader, // continuous-profiling summaries
	} {
		method, path, _ := strings.Cut(pattern, " ")
		concrete := wildcard.ReplaceAllString(path, "m1")
		role, mutation := tenant.Classify(method, concrete)
		if role != exp.role || mutation != exp.mutation {
			t.Errorf("Classify(%s %s) = (%v, %v), want (%v, %v)", method, concrete, role, mutation, exp.role, exp.mutation)
		}
	}
}
