package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gallery/internal/clock"
	"gallery/internal/obs"
	"gallery/internal/relstore"
	"gallery/internal/tenant"
	"gallery/internal/uuid"
)

// TestGatewayAuthorizer proves the serving gateway enforces the same
// control plane as the registry daemon: tokens gate predictions, the
// health probe stays open, and revocation bites on the next request.
func TestGatewayAuthorizer(t *testing.T) {
	clk := clock.NewMock(time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC))
	tm, err := tenant.Open(relstore.NewMemory(), tenant.Options{
		Clock: clk, UUIDs: uuid.NewSeeded(41), Obs: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()
	secret, tok, err := tm.MintToken(ctx, tenant.DefaultNamespace, "rt", tenant.RoleReader)
	if err != nil {
		t.Fatal(err)
	}

	gw := New(newFakeSource(), Options{RefreshInterval: -1, Obs: obs.NewRegistry()})
	t.Cleanup(gw.Close)
	ts := httptest.NewServer(NewHandler(gw, WithAuthorizer(tm)))
	t.Cleanup(ts.Close)

	get := func(path, bearer string) int {
		t.Helper()
		req, err := http.NewRequest("GET", ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if bearer != "" {
			req.Header.Set("Authorization", "Bearer "+bearer)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get("/v1/serving", ""); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /v1/serving = %d, want 401", code)
	}
	if code := get("/v1/healthz", ""); code != http.StatusOK {
		t.Fatalf("unauthenticated /v1/healthz = %d, want 200 (probe exemption)", code)
	}
	if code := get("/v1/serving", secret); code != http.StatusOK {
		t.Fatalf("authed /v1/serving = %d, want 200", code)
	}
	// A prediction POST is read-class: the reader token suffices. (404:
	// the fake source has no such model, but the request cleared auth.)
	req, err := http.NewRequest("POST", ts.URL+"/v1/predict/demand", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+secret)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusUnauthorized || resp.StatusCode == http.StatusForbidden {
		t.Fatalf("reader POST /v1/predict = %d, want admitted", resp.StatusCode)
	}

	if err := tm.RevokeToken(ctx, tok.ID); err != nil {
		t.Fatal(err)
	}
	if code := get("/v1/serving", secret); code != http.StatusUnauthorized {
		t.Fatalf("revoked token /v1/serving = %d, want 401", code)
	}
}
