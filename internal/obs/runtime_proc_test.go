package obs

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestReadProcStatFixture pins the /proc/self/stat parse against a
// synthetic line, including the awkward comm field containing spaces
// and a ')' of its own.
func TestReadProcStatFixture(t *testing.T) {
	dir := t.TempDir()
	fixture := filepath.Join(dir, "stat")
	// proc(5) field numbers: utime=14, stime=15, rss=24 (pages).
	line := "1234 (a (weird) comm) S 1 1234 1234 0 -1 4194560 " + // 3..9
		"500 0 0 0 " + // 10..13 minflt cminflt majflt cmajflt
		"250 150 0 0 20 0 8 0 12345 104857600 " + // 14..23 utime stime ... vsize
		"2048 " + // 24 rss pages
		"18446744073709551615\n"
	if err := os.WriteFile(fixture, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	old := procStatPath
	procStatPath = fixture
	defer func() { procStatPath = old }()

	cpu, rss, ok := readProcStat()
	if !ok {
		t.Fatal("fixture did not parse")
	}
	if want := float64(250+150) / userHZ; cpu != want {
		t.Fatalf("cpu = %v, want %v", cpu, want)
	}
	if want := 2048 * float64(os.Getpagesize()); rss != want {
		t.Fatalf("rss = %v, want %v", rss, want)
	}

	// Garbage falls back cleanly rather than erroring the gauges.
	if err := os.WriteFile(fixture, []byte("not a stat line"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := readProcStat(); ok {
		t.Fatal("garbage parsed as valid")
	}
	procStatPath = filepath.Join(dir, "missing")
	if _, _, ok := readProcStat(); ok {
		t.Fatal("missing file parsed as valid")
	}
}

// TestProcessProcGauges exercises the live gauges where /proc exists.
func TestProcessProcGauges(t *testing.T) {
	if _, _, ok := readProcStat(); !ok {
		t.Skip("/proc/self/stat not readable on this platform")
	}
	r := NewRegistry()
	RegisterRuntime(r)
	snap := r.Snapshot()
	cpu, haveCPU := snap.Gauges["process_cpu_seconds_total"]
	rss, haveRSS := snap.Gauges["process_resident_memory_bytes"]
	if !haveCPU || !haveRSS {
		t.Fatalf("proc gauges not registered: %v", snap.Gauges)
	}
	if cpu < 0 {
		t.Fatalf("process_cpu_seconds_total = %v", cpu)
	}
	if rss <= 0 {
		t.Fatalf("process_resident_memory_bytes = %v", rss)
	}
}

// TestProcStatCacheTTL verifies the cache actually amortizes reads: a
// second get inside the TTL serves the cached value even if the backing
// file changes.
func TestProcStatCacheTTL(t *testing.T) {
	dir := t.TempDir()
	fixture := filepath.Join(dir, "stat")
	write := func(utime string) {
		line := "1 (c) S 1 1 1 0 -1 0 0 0 0 0 " + utime + " 0 0 0 20 0 1 0 0 0 100 0\n"
		if err := os.WriteFile(fixture, []byte(line), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("100")
	old := procStatPath
	procStatPath = fixture
	defer func() { procStatPath = old }()

	c := &procStatCache{ttl: time.Hour}
	cpu1, _ := c.get()
	write("900")
	cpu2, _ := c.get()
	if cpu1 != cpu2 {
		t.Fatalf("cache did not hold within TTL: %v then %v", cpu1, cpu2)
	}
	c.at = time.Time{} // expire
	cpu3, _ := c.get()
	if cpu3 != 900.0/userHZ {
		t.Fatalf("expired cache re-read = %v, want 9", cpu3)
	}
}
