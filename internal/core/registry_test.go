package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"gallery/internal/blobstore"
	"gallery/internal/clock"
	"gallery/internal/relstore"
	"gallery/internal/uuid"
)

var t0 = time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)

// harness wires a deterministic registry for tests.
type harness struct {
	g   *Registry
	clk *clock.Mock
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	clk := clock.NewMock(t0)
	g, err := New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), Options{
		Clock: clk,
		UUIDs: uuid.NewSeeded(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &harness{g: g, clk: clk}
}

func (h *harness) model(t *testing.T, base string) *Model {
	t.Helper()
	m, err := h.g.RegisterModel(ModelSpec{
		BaseVersionID: base,
		Project:       "marketplace",
		Name:          "linear_regression",
		Owner:         "forecasting-team",
		Domain:        "UberX",
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func (h *harness) upload(t *testing.T, m *Model, city string, blob []byte) *Instance {
	t.Helper()
	h.clk.Advance(time.Minute)
	in, err := h.g.UploadInstance(InstanceSpec{
		ModelID:      m.ID,
		Name:         "Random Forest",
		City:         city,
		Framework:    "SparkML",
		TrainingData: "hdfs://data/v1",
		CodePointer:  "git://repo@abc123",
		Seed:         42,
		Epochs:       10,
		Hyperparams:  `{"trees":100}`,
		Features:     "hour,dow,weather",
	}, blob)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRegisterAndGetModel(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "supply_rejection")
	got, err := h.g.GetModel(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.BaseVersionID != "supply_rejection" || got.Project != "marketplace" || got.Major != 1 {
		t.Fatalf("model = %+v", got)
	}
	// Registration creates an initial production version 1.0.
	v, err := h.g.ProductionVersion(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "1.0" || v.Cause != CauseRegistered {
		t.Fatalf("initial version = %s cause %s", v, v.Cause)
	}
}

func TestRegisterModelRequiresBase(t *testing.T) {
	h := newHarness(t)
	if _, err := h.g.RegisterModel(ModelSpec{}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterModelUnknownUpstream(t *testing.T) {
	h := newHarness(t)
	_, err := h.g.RegisterModel(ModelSpec{
		BaseVersionID: "x",
		Upstreams:     []uuid.UUID{uuid.New()},
	})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	// Failed registration must leave nothing behind (atomic batch).
	models, _, _ := h.g.Counts()
	if models != 0 {
		t.Fatalf("partial registration left %d models", models)
	}
}

func TestUploadInstanceRoundTrip(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "supply_rejection")
	blob := []byte("serialized SparkML pipeline")
	in := h.upload(t, m, "New York City", blob)

	got, err := h.g.GetInstance(in.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.City != "New York City" || got.Framework != "SparkML" || got.BaseVersionID != "supply_rejection" {
		t.Fatalf("instance = %+v", got)
	}
	data, err := h.g.FetchBlob(in.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, blob) {
		t.Fatalf("blob = %q", data)
	}
}

func TestUploadInstanceUnknownModel(t *testing.T) {
	h := newHarness(t)
	_, err := h.g.UploadInstance(InstanceSpec{ModelID: uuid.New()}, []byte("x"))
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestUploadBumpsVersion(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	h.upload(t, m, "sf", []byte("v1"))
	h.upload(t, m, "sf", []byte("v2"))
	v, err := h.g.LatestVersion(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "1.2" || v.Cause != CauseRetrained {
		t.Fatalf("latest = %s cause %s", v, v.Cause)
	}
	// The owner's own retrain is promoted automatically.
	p, err := h.g.ProductionVersion(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID != v.ID {
		t.Fatalf("production = %s, want latest %s", p, v)
	}
	hist, err := h.g.VersionHistory(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 { // 1.0 registered, 1.1, 1.2
		t.Fatalf("history len = %d", len(hist))
	}
}

// TestLineageFigure4 reproduces paper Figure 4: two base version ids, one
// with four instances, traversed in time order. (Experiment E4.)
func TestLineageFigure4(t *testing.T) {
	h := newHarness(t)
	dc := h.model(t, "demand_conversion")
	sc := h.model(t, "supply_cancellation")

	h.upload(t, dc, "sf", []byte("dc-1"))
	var scInstances []*Instance
	for i := 0; i < 4; i++ {
		scInstances = append(scInstances, h.upload(t, sc, "sf", []byte(fmt.Sprintf("sc-%d", i))))
	}

	lineage, err := h.g.Lineage("supply_cancellation")
	if err != nil {
		t.Fatal(err)
	}
	if len(lineage) != 4 {
		t.Fatalf("supply_cancellation lineage has %d instances, want 4", len(lineage))
	}
	for i, in := range lineage {
		if in.ID != scInstances[i].ID {
			t.Fatalf("lineage[%d] = %s, want %s (time order)", i, in.ID, scInstances[i].ID)
		}
		if in.BaseVersionID != "supply_cancellation" {
			t.Fatalf("lineage[%d] has base %q", i, in.BaseVersionID)
		}
		seen := make(map[uuid.UUID]bool)
		if seen[in.ID] {
			t.Fatal("duplicate UUID in lineage")
		}
		seen[in.ID] = true
	}
	other, err := h.g.Lineage("demand_conversion")
	if err != nil {
		t.Fatal(err)
	}
	if len(other) != 1 {
		t.Fatalf("demand_conversion lineage has %d instances", len(other))
	}
}

func TestEvolutionChain(t *testing.T) {
	h := newHarness(t)
	m1 := h.model(t, "demand")
	m2, err := h.g.EvolveModel(m1.ID, "add weather features")
	if err != nil {
		t.Fatal(err)
	}
	m3, err := h.g.EvolveModel(m2.ID, "switch to neural network")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Major != 2 || m3.Major != 3 {
		t.Fatalf("majors = %d, %d", m2.Major, m3.Major)
	}
	// Evolving an already-evolved record is rejected.
	if _, err := h.g.EvolveModel(m1.ID, "again"); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("double evolve err = %v", err)
	}
	// The chain reads the same from any entry point.
	for _, entry := range []uuid.UUID{m1.ID, m2.ID, m3.ID} {
		chain, err := h.g.Evolution(entry)
		if err != nil {
			t.Fatal(err)
		}
		if len(chain) != 3 || chain[0].ID != m1.ID || chain[2].ID != m3.ID {
			t.Fatalf("chain from %s = %v", entry, chain)
		}
	}
}

func TestEvolveInheritsDependencies(t *testing.T) {
	h := newHarness(t)
	b := h.model(t, "B")
	a, err := h.g.RegisterModel(ModelSpec{BaseVersionID: "A", Upstreams: []uuid.UUID{b.ID}})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := h.g.EvolveModel(a.ID, "v2")
	if err != nil {
		t.Fatal(err)
	}
	ups, err := h.g.Upstreams(a2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 || ups[0] != b.ID {
		t.Fatalf("evolved upstreams = %v", ups)
	}
}

func TestMetricsRoundTrip(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))

	if _, err := h.g.InsertMetric(in.ID, "bias", ScopeValidation, 0.05); err != nil {
		t.Fatal(err)
	}
	h.clk.Advance(time.Minute)
	if _, err := h.g.InsertMetric(in.ID, "bias", ScopeValidation, 0.07); err != nil {
		t.Fatal(err)
	}
	if err := h.g.InsertMetrics(in.ID, ScopeTraining, map[string]float64{"mape": 8.2, "r2": 0.91}); err != nil {
		t.Fatal(err)
	}

	series, err := h.g.MetricSeries(in.ID, "bias", ScopeValidation)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].Value != 0.05 || series[1].Value != 0.07 {
		t.Fatalf("series = %v", series)
	}
	latest, err := h.g.LatestMetrics(in.ID, ScopeValidation)
	if err != nil {
		t.Fatal(err)
	}
	if latest["bias"] != 0.07 {
		t.Fatalf("latest bias = %v", latest["bias"])
	}
	training, _ := h.g.LatestMetrics(in.ID, ScopeTraining)
	if training["mape"] != 8.2 || training["r2"] != 0.91 {
		t.Fatalf("training metrics = %v", training)
	}
}

func TestMetricValidation(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))
	if _, err := h.g.InsertMetric(in.ID, "", ScopeTraining, 1); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("empty name err = %v", err)
	}
	if _, err := h.g.InsertMetric(in.ID, "mape", Scope("bogus"), 1); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("bad scope err = %v", err)
	}
	if _, err := h.g.InsertMetric(uuid.New(), "mape", ScopeTraining, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown instance err = %v", err)
	}
}

func TestSearchInstances(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "demand")
	cities := []string{"sf", "nyc", "sf", "la", "sf"}
	var ins []*Instance
	for i, c := range cities {
		in := h.upload(t, m, c, []byte(fmt.Sprintf("blob-%d", i)))
		ins = append(ins, in)
	}
	// Paper Listing 5: project + name + metric constraint.
	for i, in := range ins {
		if _, err := h.g.InsertMetric(in.ID, "bias", ScopeValidation, float64(i)*0.1); err != nil {
			t.Fatal(err)
		}
	}

	got, err := h.g.SearchInstances(InstanceFilter{City: "sf"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("city=sf matched %d", len(got))
	}
	// Newest first.
	if got[0].ID != ins[4].ID {
		t.Fatalf("results not newest-first")
	}

	got, err = h.g.SearchInstances(InstanceFilter{
		Project:     "marketplace",
		MetricName:  "bias",
		MetricOp:    relstore.OpLt,
		MetricValue: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 { // bias 0.0, 0.1, 0.2
		t.Fatalf("metric search matched %d, want 3", len(got))
	}

	got, err = h.g.SearchInstances(InstanceFilter{City: "sf", Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("limit ignored: %d", len(got))
	}
}

func TestSearchSkipsDeprecated(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "demand")
	in1 := h.upload(t, m, "sf", []byte("a"))
	in2 := h.upload(t, m, "sf", []byte("b"))
	if err := h.g.DeprecateInstance(in1.ID); err != nil {
		t.Fatal(err)
	}
	got, err := h.g.SearchInstances(InstanceFilter{City: "sf"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != in2.ID {
		t.Fatalf("default search returned %d results", len(got))
	}
	got, err = h.g.SearchInstances(InstanceFilter{City: "sf", IncludeDeprecated: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("IncludeDeprecated returned %d results", len(got))
	}
	// Deprecated instances are still directly fetchable (paper §3.7:
	// dependents keep working until they migrate).
	if _, err := h.g.FetchBlob(in1.ID); err != nil {
		t.Fatalf("deprecated instance blob unavailable: %v", err)
	}
}

func TestDeprecateModel(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "old")
	if err := h.g.DeprecateModel(m.ID); err != nil {
		t.Fatal(err)
	}
	got, err := h.g.GetModel(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Deprecated {
		t.Fatal("model not flagged")
	}
}

func TestImmutabilityOfStoredInstance(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))
	// Mutating the returned struct must not affect the stored record.
	in.City = "mutated"
	got, err := h.g.GetInstance(in.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.City != "sf" {
		t.Fatal("stored instance mutated through a returned pointer")
	}
}

func TestModelsByBase(t *testing.T) {
	h := newHarness(t)
	m1 := h.model(t, "demand")
	h.clk.Advance(time.Hour)
	m2, err := h.g.EvolveModel(m1.ID, "v2")
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.g.ModelsByBase("demand")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != m1.ID || got[1].ID != m2.ID {
		t.Fatalf("ModelsByBase = %v", got)
	}
}
