package profile

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gallery/internal/obs"
)

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := BaselineOf("galleryserve", mkSummary(KindCPU, time.Now(), 100,
		FuncStat{Name: "encode", Self: 30, Cum: 60}, FuncStat{Name: "gc", Self: 10, Cum: 10}))
	if err := WriteBaseline(dir, b); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, BaselineFileName("galleryserve"))
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Process != "galleryserve" || got.Kind != KindCPU {
		t.Fatalf("loaded %+v", got)
	}
	if got.Shares["encode"] != 0.3 || got.Shares["gc"] != 0.1 {
		t.Fatalf("shares = %v", got.Shares)
	}

	// Schema mismatch is a hard error, not silent acceptance.
	raw, _ := os.ReadFile(path)
	bad := []byte(`{"schema": 999` + string(raw[len(`{"schema": 1`):]))
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(badPath); err == nil {
		t.Fatal("schema mismatch loaded without error")
	}
}

func TestCompareBaseline(t *testing.T) {
	base := Baseline{Kind: KindCPU, Process: "p", Shares: map[string]float64{
		"known_hot": 0.30,
		"steady":    0.10,
	}}
	s := mkSummary(KindCPU, time.Now(), 1000,
		FuncStat{Name: "known_hot", Self: 400, Cum: 400},     // 0.40 < 0.30*2: fine
		FuncStat{Name: "steady", Self: 250, Cum: 250},        // 0.25 > 0.10*2: regressed
		FuncStat{Name: "brand_new_hog", Self: 200, Cum: 200}, // 0.20 > NewShare*2: regressed
		FuncStat{Name: "tiny", Self: 10, Cum: 10},            // under MinShare: ignored
	)
	regs := CompareBaseline(base, s, 2, 0.05, 0.01)
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v", regs)
	}
	// Worst factor first: brand_new_hog at 0.20/0.01 = 20x beats steady at 2.5x.
	if regs[0].Function != "brand_new_hog" || regs[1].Function != "steady" {
		t.Fatalf("order = %+v", regs)
	}
	if regs[1].Share != 0.25 || regs[1].Baseline != 0.10 {
		t.Fatalf("steady = %+v", regs[1])
	}
}

type sinkCall struct {
	event  string
	fields map[string]any
}

type fakeSink struct{ calls []sinkCall }

func (f *fakeSink) ProfileEvent(_ context.Context, event string, fields map[string]any) {
	f.calls = append(f.calls, sinkCall{event, fields})
}

func TestDetectorCheck(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &fakeSink{}
	d := NewDetector(DetectorConfig{
		Baseline: Baseline{Process: "p", Kind: KindCPU, Shares: map[string]float64{"ok": 0.5}},
		Obs:      reg,
		Sink:     sink,
	})

	// Clean window: gauge 0, no events.
	clean := mkSummary(KindCPU, time.Now(), 100, FuncStat{Name: "ok", Self: 50, Cum: 50})
	if regs := d.Check(clean); len(regs) != 0 {
		t.Fatalf("clean window flagged %v", regs)
	}
	if v := reg.Snapshot().Gauges["profile_regression"]; v != 0 {
		t.Fatalf("gauge after clean = %v", v)
	}

	// Hog window: gauge 1, one event with expr-friendly fields.
	hog := mkSummary(KindCPU, time.Now(), 100,
		FuncStat{Name: "ok", Self: 40, Cum: 40}, FuncStat{Name: "hogEncode", Self: 60, Cum: 60})
	regs := d.Check(hog)
	if len(regs) != 1 || regs[0].Function != "hogEncode" {
		t.Fatalf("hog window = %+v", regs)
	}
	if v := reg.Snapshot().Gauges["profile_regression"]; v != 1 {
		t.Fatalf("gauge after hog = %v", v)
	}
	if len(sink.calls) != 1 || sink.calls[0].event != "regression" {
		t.Fatalf("sink calls = %+v", sink.calls)
	}
	if fn := sink.calls[0].fields["function"]; fn != "hogEncode" {
		t.Fatalf("event function = %v", fn)
	}
	if last := d.Last(); len(last) != 1 || last[0].Function != "hogEncode" {
		t.Fatalf("Last = %+v", last)
	}

	// Wrong-kind summaries are ignored entirely.
	if regs := d.Check(mkSummary(KindHeap, time.Now(), 100, FuncStat{Name: "x", Self: 100, Cum: 100})); regs != nil {
		t.Fatalf("heap summary checked: %v", regs)
	}

	// Recovery: next clean window resets gauge and Last.
	d.Check(clean)
	if v := reg.Snapshot().Gauges["profile_regression"]; v != 0 {
		t.Fatalf("gauge after recovery = %v", v)
	}
	if cnt := reg.Snapshot().Counters["profile_detector_checks_total"]; cnt != 3 {
		t.Fatalf("checks counter = %d", cnt)
	}
}
