package server

import (
	"encoding/json"
	"testing"
	"time"

	"gallery/internal/api"
	"gallery/internal/client"
)

func TestMetricsBlobEndpoint(t *testing.T) {
	h := newHarness(t)
	m := h.registerModel(t, "demand", "UberX")
	in := h.upload(t, m.ID, "sf", []byte("x"))

	if err := h.c.InsertMetricsBlob(in.ID, "validation", []byte("mape:7.5\nbias:0.02")); err != nil {
		t.Fatal(err)
	}
	series, err := h.c.MetricSeries(in.ID, "mape", "validation")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || series[0].Value != 7.5 {
		t.Fatalf("series = %v", series)
	}
	// Malformed blobs are 400s.
	err = h.c.InsertMetricsBlob(in.ID, "validation", []byte("not a blob"))
	if ae, ok := err.(*client.APIError); !ok || ae.Status != 400 {
		t.Fatalf("bad blob err = %v", err)
	}
	// Bad scope is a 400.
	err = h.c.InsertMetricsBlob(in.ID, "bogus", []byte("mape:1"))
	if ae, ok := err.(*client.APIError); !ok || ae.Status != 400 {
		t.Fatalf("bad scope err = %v", err)
	}
}

func TestAlertsEndpoint(t *testing.T) {
	h := newHarness(t)
	m := h.registerModel(t, "Random Forest", "UberX")
	in := h.upload(t, m.ID, "sf", []byte("x"))

	ruleJSON := json.RawMessage(`{
		"uuid": "alert-rule",
		"team": "forecasting",
		"kind": "action",
		"when": "metrics.bias > 0.5",
		"callback_actions": [{"action": "alert", "params": {"message": "bias out of range"}}]
	}`)
	if _, err := h.c.CommitRules("ops", "alerting", []json.RawMessage{ruleJSON}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.c.InsertMetric(in.ID, "bias", "production", 0.9); err != nil {
		t.Fatal(err)
	}
	h.flush()
	alerts, err := h.c.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].Message != "bias out of range" || alerts[0].Action != "alert" {
		t.Fatalf("alerts = %+v", alerts)
	}
}

func TestFleetHealthEndpoint(t *testing.T) {
	h := newHarness(t)
	m := h.registerModel(t, "demand", "UberX")
	healthy := h.upload(t, m.ID, "sf", []byte("a"))
	drifted := h.upload(t, m.ID, "nyc", []byte("b"))

	report := func(id, scope string, v float64) {
		t.Helper()
		h.clk.Advance(time.Minute)
		if _, err := h.c.InsertMetric(id, "mape", scope, v); err != nil {
			t.Fatal(err)
		}
	}
	report(healthy.ID, "validation", 8)
	for i := 0; i < 20; i++ {
		report(healthy.ID, "production", 8.1)
	}
	report(drifted.ID, "validation", 8)
	for i := 0; i < 15; i++ {
		report(drifted.ID, "production", 8)
	}
	for i := 0; i < 10; i++ {
		report(drifted.ID, "production", 18)
	}

	rep, err := h.c.CheckFleetHealth(api.FleetHealthRequest{
		Project: "example-project",
		Metric:  "mape",
		Drift:   api.DriftRequest{Window: 10, Baseline: 15},
		Skew:    api.SkewRequest{Threshold: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 2 {
		t.Fatalf("total = %d", rep.Total)
	}
	if rep.Drifted != 1 {
		t.Fatalf("drifted = %d", rep.Drifted)
	}
	for _, ih := range rep.Instances {
		switch ih.City {
		case "sf":
			if ih.Drift.Drifted {
				t.Error("healthy instance flagged as drifted")
			}
		case "nyc":
			if !ih.Drift.Drifted {
				t.Error("drifted instance not flagged")
			}
		}
		if ih.Completeness <= 0 {
			t.Errorf("completeness = %v", ih.Completeness)
		}
	}
}
