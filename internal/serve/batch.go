package serve

import (
	"context"
	"sync"
	"time"

	"gallery/internal/forecast"
)

// batcher groups concurrent predictions on one model into vectorized
// passes. Each executor pulls one queued request, drains whatever else is
// already waiting (up to MaxBatch, lingering BatchWait at most), loads the
// served-model pointer once, and answers the whole group with a single
// forecast.ForecastAll call — amortizing the pointer load and, for
// learners implementing forecast.BatchForecaster, the per-call feature
// buffers. With BatchWait = 0 batching is adaptive: under light load
// batches have size 1 and add no latency, under heavy load the queue is
// never empty and batches form by themselves (the same dynamics as WAL
// group commit).
type batcher struct {
	e    *entry
	g    *Gateway
	reqs chan *batchReq
	quit chan struct{} // closed on evict; gateway done covers Close
}

type batchReq struct {
	fctx forecast.Context
	// val and srv are written by the executor before done is signaled.
	val float64
	srv *served
	// done carries one completion signal per use (buffered, so the
	// executor never blocks), which lets requests be pooled — a closed
	// channel could not be reused.
	done chan struct{}
}

// reqPool recycles requests (and their completion channels) so the batched
// path does zero allocations per prediction. A request abandoned on
// shutdown is NOT returned to the pool: an executor may still write it.
var reqPool = sync.Pool{
	New: func() any { return &batchReq{done: make(chan struct{}, 1)} },
}

func (r *batchReq) release() {
	r.fctx = forecast.Context{} // drop caller buffers so they can be GC'd
	r.srv = nil
	reqPool.Put(r)
}

// stop ends the executors (used on eviction); in-flight and late requests
// fall back to direct computation in predict.
func (b *batcher) stop() { close(b.quit) }

func newBatcher(e *entry, g *Gateway) *batcher {
	b := &batcher{
		e:    e,
		g:    g,
		reqs: make(chan *batchReq, g.opts.MaxBatch*g.opts.BatchWorkers),
		quit: make(chan struct{}),
	}
	for i := 0; i < g.opts.BatchWorkers; i++ {
		go b.run()
	}
	return b
}

// predict enqueues one request and waits for its batch to execute. If the
// batcher is shutting down (eviction or gateway close) it falls back to a
// direct computation, so no request is ever dropped.
func (b *batcher) predict(fctx forecast.Context) (float64, *served, error) {
	r := reqPool.Get().(*batchReq)
	r.fctx = fctx
	select {
	case b.reqs <- r:
	default:
		// Queue full — compute directly rather than block; backpressure
		// degrades to unbatched, never to unavailable.
		r.release()
		return b.direct(fctx)
	}
	select {
	case <-r.done:
		val, srv := r.val, r.srv
		r.release()
		return val, srv, nil
	case <-b.quit:
	case <-b.g.done:
	}
	// Executors are gone (or going); the request may sit in the queue
	// forever. Answer it directly.
	select {
	case <-r.done: // an executor got to it after all
		val, srv := r.val, r.srv
		r.release()
		return val, srv, nil
	default:
		return b.direct(fctx) // r abandoned: the queue still holds it
	}
}

func (b *batcher) direct(fctx forecast.Context) (float64, *served, error) {
	srv := b.e.cur.Load()
	if srv == nil {
		return 0, nil, ErrClosed
	}
	return srv.learner.Forecast(fctx), srv, nil
}

// run is one executor goroutine.
func (b *batcher) run() {
	maxBatch := b.g.opts.MaxBatch
	wait := b.g.opts.BatchWait
	batch := make([]*batchReq, 0, maxBatch)
	ctxs := make([]forecast.Context, 0, maxBatch)
	outs := make([]float64, maxBatch)
	for {
		var first *batchReq
		select {
		case first = <-b.reqs:
		case <-b.quit:
			return
		case <-b.g.done:
			return
		}
		batch = append(batch[:0], first)
		if wait > 0 {
			timer := time.NewTimer(wait)
		linger:
			for len(batch) < maxBatch {
				select {
				case r := <-b.reqs:
					batch = append(batch, r)
				case <-timer.C:
					break linger
				case <-b.quit:
					break linger
				case <-b.g.done:
					break linger
				}
			}
			timer.Stop()
		} else {
			for len(batch) < maxBatch {
				select {
				case r := <-b.reqs:
					batch = append(batch, r)
				default:
					goto exec
				}
			}
		}
	exec:
		srv := b.e.cur.Load()
		ctxs = ctxs[:0]
		for _, r := range batch {
			ctxs = append(ctxs, r.fctx)
		}
		// A drained batch mixes requests from many traces, so it cannot be
		// a child of any one of them; when tracing is on it gets a trace of
		// its own recording the batch it amortized. Nil tracer or sampled-
		// out → nil span → no cost.
		_, bspan := b.g.tracer.StartLocal(context.Background(), "serve.batch_drain")
		if bspan != nil {
			bspan.Annotate("model", b.e.modelID)
			bspan.AnnotateInt("batch_size", int64(len(batch)))
		}
		forecast.ForecastAll(srv.learner, ctxs, outs[:len(batch)])
		bspan.End()
		b.g.mx.batchSize.Observe(float64(len(batch)))
		for i, r := range batch {
			r.val = outs[i]
			r.srv = srv
			r.done <- struct{}{}
		}
	}
}
