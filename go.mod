module gallery

go 1.22
