package profile

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// IngestRequest is the wire form of a cross-process summary shipment:
// galleryserve POSTs this to galleryd's /v1/debug/profile so one fleet
// view covers both tiers.
type IngestRequest struct {
	Process   string    `json:"process"`
	Summaries []Summary `json:"summaries"`
}

// View is the body of GET /v1/debug/profile: the merged per-process
// profile picture.
type View struct {
	Generated time.Time     `json:"generated"`
	Merge     string        `json:"merge,omitempty"` // window applied, "" = all retained
	Processes []ProcessView `json:"processes"`
}

// ProcessView is one process's slice of a View: how many windows were
// folded per kind and the merged top-N summary of each.
type ProcessView struct {
	Process string             `json:"process"`
	Windows map[string]int     `json:"windows,omitempty"`
	Merged  map[string]Summary `json:"merged,omitempty"`
}

// maxFleetProcesses bounds distinct processes a Fleet retains, so a
// misconfigured (or hostile) shipper cycling process names cannot grow
// memory without bound.
const maxFleetProcesses = 64

// Fleet aggregates summaries across processes on galleryd: the local
// profiler exports into it directly (it satisfies Exporter) and gateway
// shipments land in it through the ingest endpoint.
type Fleet struct {
	mu    sync.Mutex
	keep  int
	rings map[string]*Ring

	dropped atomic.Uint64 // shipments refused at the process bound
}

// NewFleet builds a Fleet keeping up to keep summaries per kind per
// process (0 = DefaultKeep).
func NewFleet(keep int) *Fleet {
	if keep <= 0 {
		keep = DefaultKeep
	}
	return &Fleet{keep: keep, rings: make(map[string]*Ring)}
}

// Export satisfies Exporter: the local profiler's summaries join the
// fleet without a network hop.
func (f *Fleet) Export(process string, summaries []Summary) { f.Ingest(process, summaries) }

// Ingest adds one process's summaries. Shipments for a new process past
// the process bound are dropped (counted).
func (f *Fleet) Ingest(process string, summaries []Summary) {
	if process == "" || len(summaries) == 0 {
		return
	}
	f.mu.Lock()
	r, ok := f.rings[process]
	if !ok {
		if len(f.rings) >= maxFleetProcesses {
			f.mu.Unlock()
			f.dropped.Add(1)
			return
		}
		r = NewRing(f.keep)
		f.rings[process] = r
	}
	f.mu.Unlock()
	for _, s := range summaries {
		r.Add(s)
	}
}

// Dropped reports shipments refused at the process bound.
func (f *Fleet) Dropped() uint64 { return f.dropped.Load() }

// Ring returns one process's ring, or nil when unseen.
func (f *Fleet) Ring(process string) *Ring {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rings[process]
}

// Snapshot folds the fleet into a View. merge > 0 restricts each
// process's fold to summaries ending within the last merge of now.
func (f *Fleet) Snapshot(merge time.Duration, topN int, now time.Time) View {
	f.mu.Lock()
	names := make([]string, 0, len(f.rings))
	rings := make([]*Ring, 0, len(f.rings))
	for name, r := range f.rings {
		names = append(names, name)
		rings = append(rings, r)
	}
	f.mu.Unlock()
	v := View{Generated: now}
	if merge > 0 {
		v.Merge = merge.String()
	}
	order := make([]int, len(names))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return names[order[i]] < names[order[j]] })
	for _, i := range order {
		v.Processes = append(v.Processes, rings[i].View(names[i], merge, topN, now))
	}
	return v
}

// ParseViewQuery interprets the GET /v1/debug/profile query parameters
// shared by both daemons: merge (a duration like "1h" restricting the
// fold to recent windows; 0/absent folds everything retained) and n
// (top-N functions per summary, default DefaultTopN).
func ParseViewQuery(q url.Values) (merge time.Duration, topN int, err error) {
	topN = DefaultTopN
	if v := q.Get("merge"); v != "" {
		merge, err = time.ParseDuration(v)
		if err != nil || merge < 0 {
			return 0, 0, fmt.Errorf("bad merge window %q", v)
		}
	}
	if v := q.Get("n"); v != "" {
		n, convErr := strconv.Atoi(v)
		if convErr != nil || n <= 0 {
			return 0, 0, fmt.Errorf("bad n %q", v)
		}
		topN = n
	}
	return merge, topN, nil
}

// HTTPExporter ships summaries to a peer's ingest endpoint on a
// background goroutine — the trace-export pattern. Export never blocks
// the capture loop: a full queue drops the batch (counted). Flush waits
// for everything queued so far; tests and shutdown use it.
type HTTPExporter struct {
	url      string
	token    string
	hc       *http.Client
	ch       chan IngestRequest
	quit     chan struct{}
	once     sync.Once
	worker   sync.WaitGroup
	inflight sync.WaitGroup
	dropped  atomic.Uint64
	failed   atomic.Uint64
}

// NewHTTPExporter builds an exporter posting to url (the peer's
// POST /v1/debug/profile). token, when non-empty, rides as a bearer
// credential for peers running -auth. A nil client gets a
// 5-second-timeout default.
func NewHTTPExporter(url, token string, hc *http.Client) *HTTPExporter {
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Second}
	}
	e := &HTTPExporter{
		url:   url,
		token: token,
		hc:    hc,
		ch:    make(chan IngestRequest, 16),
		quit:  make(chan struct{}),
	}
	e.worker.Add(1)
	go e.run()
	return e
}

// Export queues one shipment. Non-blocking; drops when the queue is
// full or the exporter is closed.
func (e *HTTPExporter) Export(process string, summaries []Summary) {
	select {
	case <-e.quit:
		return
	default:
	}
	e.inflight.Add(1)
	select {
	case e.ch <- IngestRequest{Process: process, Summaries: summaries}:
	default:
		e.inflight.Done()
		e.dropped.Add(1)
	}
}

// Flush blocks until every shipment queued before the call has been
// posted (successfully or not).
func (e *HTTPExporter) Flush() { e.inflight.Wait() }

// Dropped reports shipments discarded because the queue was full.
func (e *HTTPExporter) Dropped() uint64 { return e.dropped.Load() }

// Failed reports shipments whose POST errored (network or non-2xx).
func (e *HTTPExporter) Failed() uint64 { return e.failed.Load() }

// Close drains the queue and stops the worker. Safe to call twice.
func (e *HTTPExporter) Close() {
	e.once.Do(func() { close(e.quit) })
	e.worker.Wait()
}

func (e *HTTPExporter) run() {
	defer e.worker.Done()
	for {
		select {
		case req := <-e.ch:
			e.post(req)
			e.inflight.Done()
		case <-e.quit:
			for {
				select {
				case req := <-e.ch:
					e.post(req)
					e.inflight.Done()
				default:
					return
				}
			}
		}
	}
}

func (e *HTTPExporter) post(ir IngestRequest) {
	body, err := json.Marshal(ir)
	if err != nil {
		e.failed.Add(1)
		return
	}
	req, err := http.NewRequest(http.MethodPost, e.url, bytes.NewReader(body))
	if err != nil {
		e.failed.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if e.token != "" {
		req.Header.Set("Authorization", "Bearer "+e.token)
	}
	resp, err := e.hc.Do(req)
	if err != nil {
		e.failed.Add(1)
		return
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		e.failed.Add(1)
	}
}
