package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// intItem is a test item ordered by integer value.
type intItem int

func (a intItem) Less(b Item) bool { return a < b.(intItem) }

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Get(intItem(1)) != nil {
		t.Fatal("Get on empty returned item")
	}
	if tr.Delete(intItem(1)) != nil {
		t.Fatal("Delete on empty returned item")
	}
	if tr.Min() != nil || tr.Max() != nil {
		t.Fatal("Min/Max on empty returned item")
	}
	count := 0
	tr.Ascend(func(Item) bool { count++; return true })
	if count != 0 {
		t.Fatal("Ascend on empty visited items")
	}
}

func TestInsertGetDelete(t *testing.T) {
	tr := New()
	const n = 1000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, v := range perm {
		if out := tr.ReplaceOrInsert(intItem(v)); out != nil {
			t.Fatalf("insert %d returned existing %v", v, out)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		if got := tr.Get(intItem(i)); got == nil || int(got.(intItem)) != i {
			t.Fatalf("Get(%d) = %v", i, got)
		}
	}
	if tr.Get(intItem(n)) != nil {
		t.Fatal("Get of absent key returned item")
	}
	// Delete in a different random order.
	perm2 := rand.New(rand.NewSource(2)).Perm(n)
	for k, v := range perm2 {
		if out := tr.Delete(intItem(v)); out == nil {
			t.Fatalf("Delete(%d) (step %d) = nil", v, k)
		}
		if tr.Len() != n-k-1 {
			t.Fatalf("Len after %d deletes = %d", k+1, tr.Len())
		}
	}
}

func TestReplaceReturnsOld(t *testing.T) {
	tr := New()
	tr.ReplaceOrInsert(intItem(5))
	out := tr.ReplaceOrInsert(intItem(5))
	if out == nil || out.(intItem) != 5 {
		t.Fatalf("replace returned %v", out)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len after replace = %d", tr.Len())
	}
}

func TestAscendOrder(t *testing.T) {
	tr := New()
	vals := rand.New(rand.NewSource(3)).Perm(5000)
	for _, v := range vals {
		tr.ReplaceOrInsert(intItem(v))
	}
	prev := -1
	tr.Ascend(func(it Item) bool {
		v := int(it.(intItem))
		if v != prev+1 {
			t.Fatalf("ascend out of order: %d after %d", v, prev)
		}
		prev = v
		return true
	})
	if prev != 4999 {
		t.Fatalf("ascend visited up to %d", prev)
	}
}

func TestDescendOrder(t *testing.T) {
	tr := New()
	for _, v := range rand.New(rand.NewSource(4)).Perm(2000) {
		tr.ReplaceOrInsert(intItem(v))
	}
	prev := 2000
	tr.Descend(func(it Item) bool {
		v := int(it.(intItem))
		if v != prev-1 {
			t.Fatalf("descend out of order: %d after %d", v, prev)
		}
		prev = v
		return true
	})
	if prev != 0 {
		t.Fatalf("descend stopped at %d", prev)
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.ReplaceOrInsert(intItem(i))
	}
	count := 0
	tr.Ascend(func(Item) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("visited %d items, want 10", count)
	}
}

func TestAscendGreaterOrEqual(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i += 2 { // evens only
		tr.ReplaceOrInsert(intItem(i))
	}
	var got []int
	tr.AscendGreaterOrEqual(intItem(50), func(it Item) bool {
		got = append(got, int(it.(intItem)))
		return true
	})
	if len(got) != 25 || got[0] != 50 || got[len(got)-1] != 98 {
		t.Fatalf("AscendGreaterOrEqual(50) = %v", got)
	}
	// Pivot between keys.
	got = got[:0]
	tr.AscendGreaterOrEqual(intItem(51), func(it Item) bool {
		got = append(got, int(it.(intItem)))
		return true
	})
	if len(got) != 24 || got[0] != 52 {
		t.Fatalf("AscendGreaterOrEqual(51) starts at %v", got[0])
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.ReplaceOrInsert(intItem(i))
	}
	var got []int
	tr.AscendRange(intItem(100), intItem(110), func(it Item) bool {
		got = append(got, int(it.(intItem)))
		return true
	})
	want := []int{100, 101, 102, 103, 104, 105, 106, 107, 108, 109}
	if len(got) != len(want) {
		t.Fatalf("AscendRange = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AscendRange = %v, want %v", got, want)
		}
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	for _, v := range []int{42, 7, 99, 3, 56} {
		tr.ReplaceOrInsert(intItem(v))
	}
	if m := tr.Min(); int(m.(intItem)) != 3 {
		t.Fatalf("Min = %v", m)
	}
	if m := tr.Max(); int(m.(intItem)) != 99 {
		t.Fatalf("Max = %v", m)
	}
}

func TestDeleteAbsent(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.ReplaceOrInsert(intItem(i * 2))
	}
	if out := tr.Delete(intItem(31)); out != nil {
		t.Fatalf("Delete(absent) = %v", out)
	}
	if tr.Len() != 100 {
		t.Fatalf("Len changed after deleting absent key: %d", tr.Len())
	}
}

// TestAgainstReferenceMap cross-checks a long random op sequence against a
// plain map + sort, covering insert/delete/get interleavings that stress
// node splits, rotations, and merges.
func TestAgainstReferenceMap(t *testing.T) {
	tr := New()
	ref := make(map[int]bool)
	rng := rand.New(rand.NewSource(5))
	const ops = 20000
	for i := 0; i < ops; i++ {
		k := rng.Intn(2000)
		switch rng.Intn(3) {
		case 0: // insert
			tr.ReplaceOrInsert(intItem(k))
			ref[k] = true
		case 1: // delete
			got := tr.Delete(intItem(k))
			if ref[k] != (got != nil) {
				t.Fatalf("op %d: Delete(%d) presence mismatch", i, k)
			}
			delete(ref, k)
		case 2: // get
			got := tr.Get(intItem(k))
			if ref[k] != (got != nil) {
				t.Fatalf("op %d: Get(%d) presence mismatch", i, k)
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, ref = %d", i, tr.Len(), len(ref))
		}
	}
	// Final full-order check.
	want := make([]int, 0, len(ref))
	for k := range ref {
		want = append(want, k)
	}
	sort.Ints(want)
	var got []int
	tr.Ascend(func(it Item) bool {
		got = append(got, int(it.(intItem)))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("final Ascend: %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("final Ascend[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// Property: for arbitrary insert sets, Ascend yields exactly the sorted
// distinct values.
func TestQuickSortedIteration(t *testing.T) {
	f := func(vals []int16) bool {
		tr := New()
		ref := make(map[int]bool)
		for _, v := range vals {
			tr.ReplaceOrInsert(intItem(int(v)))
			ref[int(v)] = true
		}
		if tr.Len() != len(ref) {
			return false
		}
		var got []int
		tr.Ascend(func(it Item) bool {
			got = append(got, int(it.(intItem)))
			return true
		})
		if !sort.IntsAreSorted(got) || len(got) != len(ref) {
			return false
		}
		for _, v := range got {
			if !ref[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: deleting a random subset leaves exactly the complement.
func TestQuickDeleteComplement(t *testing.T) {
	f := func(vals []int16, dels []int16) bool {
		tr := New()
		ref := make(map[int]bool)
		for _, v := range vals {
			tr.ReplaceOrInsert(intItem(int(v)))
			ref[int(v)] = true
		}
		for _, d := range dels {
			tr.Delete(intItem(int(d)))
			delete(ref, int(d))
		}
		if tr.Len() != len(ref) {
			return false
		}
		ok := true
		tr.Ascend(func(it Item) bool {
			if !ref[int(it.(intItem))] {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	vals := rand.New(rand.NewSource(1)).Perm(b.N)
	tr := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ReplaceOrInsert(intItem(vals[i]))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	const n = 1 << 20
	for _, v := range rand.New(rand.NewSource(1)).Perm(n) {
		tr.ReplaceOrInsert(intItem(v))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(intItem(i & (n - 1)))
	}
}

func TestDescendLessOrEqual(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i += 2 { // evens only
		tr.ReplaceOrInsert(intItem(i))
	}
	var got []int
	tr.DescendLessOrEqual(intItem(50), func(it Item) bool {
		got = append(got, int(it.(intItem)))
		return true
	})
	if len(got) != 26 || got[0] != 50 || got[len(got)-1] != 0 {
		t.Fatalf("DescendLessOrEqual(50) = %v", got)
	}
	// Pivot between keys starts below it.
	got = got[:0]
	tr.DescendLessOrEqual(intItem(51), func(it Item) bool {
		got = append(got, int(it.(intItem)))
		return true
	})
	if len(got) != 26 || got[0] != 50 {
		t.Fatalf("DescendLessOrEqual(51) starts at %v", got[0])
	}
	// Early stop.
	count := 0
	tr.DescendLessOrEqual(intItem(98), func(Item) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
	// Pivot below the minimum visits nothing.
	tr.DescendLessOrEqual(intItem(-1), func(Item) bool {
		t.Fatal("visited item below all keys")
		return false
	})
}

func TestQuickDescendLessOrEqual(t *testing.T) {
	err := quick.Check(func(keys []uint16, pivot uint16) bool {
		tr := New()
		present := map[int]bool{}
		for _, k := range keys {
			tr.ReplaceOrInsert(intItem(int(k)))
			present[int(k)] = true
		}
		var want []int
		for k := range present {
			if k <= int(pivot) {
				want = append(want, k)
			}
		}
		sort.Sort(sort.Reverse(sort.IntSlice(want)))
		var got []int
		tr.DescendLessOrEqual(intItem(int(pivot)), func(it Item) bool {
			got = append(got, int(it.(intItem)))
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
