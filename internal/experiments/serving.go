package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gallery/internal/api"
	"gallery/internal/benchfmt"
	"gallery/internal/core"
	"gallery/internal/forecast"
	"gallery/internal/obs"
	"gallery/internal/serve"
	"gallery/internal/uuid"
)

// regSource adapts a core.Registry to serve.Source, bypassing HTTP so the
// serving ablation measures the gateway itself rather than the sockets.
type regSource struct{ reg *core.Registry }

func (s regSource) ProductionVersion(modelID string) (api.VersionRecord, error) {
	id, err := uuid.Parse(modelID)
	if err != nil {
		return api.VersionRecord{}, err
	}
	v, err := s.reg.ProductionVersion(id)
	if err != nil {
		return api.VersionRecord{}, err
	}
	return api.VersionRecord{
		ID:         v.ID.String(),
		ModelID:    v.ModelID.String(),
		Major:      v.Major,
		Minor:      v.Minor,
		Version:    v.String(),
		InstanceID: v.InstanceID.String(),
	}, nil
}

func (s regSource) FetchBlob(instanceID string) ([]byte, error) {
	id, err := uuid.Parse(instanceID)
	if err != nil {
		return nil, err
	}
	return s.reg.FetchBlob(id)
}

// ServingArm is one row of the batching ablation.
type ServingArm struct {
	Name        string
	MaxBatch    int
	Predictions int
	Elapsed     time.Duration
	QPS         float64
	Failed      int64
	// Single-client measurement round: request latency quantiles and the
	// exact allocation count per prediction.
	P50         time.Duration
	P99         time.Duration
	AllocsPerOp float64
}

// ServingResult is the serving-gateway experiment outcome: the same
// prediction storm answered by the same promoted LinearAR instance with
// micro-batching off and on, plus a hot swap under fire in each arm.
type ServingResult struct {
	Clients   int
	PerClient int
	Arms      []ServingArm
	// SwapServed reports that after the mid-storm promotion, predictions
	// came from the new instance in both arms.
	SwapServed bool
}

// Speedup is batched QPS over unbatched QPS.
func (r *ServingResult) Speedup() float64 {
	if len(r.Arms) < 2 || r.Arms[0].QPS == 0 {
		return 0
	}
	return r.Arms[1].QPS / r.Arms[0].QPS
}

// Format renders the ablation as paper-style rows.
func (r *ServingResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "prediction storm: %d clients x %d predictions, LinearAR production instance, hot swap mid-storm\n",
		r.Clients, r.PerClient)
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "  %-14s %8d predictions in %8.1fms  %10.0f qps  p50=%v p99=%v allocs/op=%.1f failed=%d\n",
			a.Name, a.Predictions, float64(a.Elapsed.Microseconds())/1000, a.QPS,
			a.P50.Round(time.Microsecond), a.P99.Round(time.Microsecond), a.AllocsPerOp, a.Failed)
	}
	fmt.Fprintf(&b, "  batched/unbatched throughput: %.2fx; swap served new instance in both arms: %v\n",
		r.Speedup(), r.SwapServed)
	return b.String()
}

// ServingGateway runs the serving-tier ablation: batching off vs on under
// concurrent load, with a promotion landing mid-storm in each arm. A run
// with failed predictions or a swap that never reaches traffic is an
// experiment failure.
func ServingGateway(clients, perClient int) (*ServingResult, error) {
	env, err := NewEnv(31)
	if err != nil {
		return nil, err
	}
	m, err := env.Reg.RegisterModel(core.ModelSpec{
		BaseVersionID: "serving_bench", Project: "bench", Name: "demand", Domain: "UberX",
	})
	if err != nil {
		return nil, err
	}

	// One trained LinearAR champion and one challenger for the mid-storm
	// swap; the history window is sized so the per-prediction feature work
	// is realistic.
	// Two months of hourly data; predictions carry a month-long history
	// window, the realistic regime where the unbatched path's per-call
	// buffer allocations are what batching amortizes away.
	series := forecast.Generate(forecast.CityConfig{
		Name: "sf", Base: 100, GrowthPerWeek: 3, DailyAmp: 20, WeeklyAmp: 10, NoiseStd: 2, Seed: 31,
	}, epoch, time.Hour, 24*56)
	champion := &forecast.LinearAR{Lags: 48}
	if err := champion.Train(series); err != nil {
		return nil, err
	}
	challenger := &forecast.LinearAR{Lags: 24}
	if err := challenger.Train(series); err != nil {
		return nil, err
	}

	upload := func(mdl forecast.Model, name string) (*core.Instance, error) {
		blob, err := forecast.Encode(mdl)
		if err != nil {
			return nil, err
		}
		env.Clock.Advance(time.Minute)
		return env.Reg.UploadInstance(core.InstanceSpec{ModelID: m.ID, Name: name, City: "sf"}, blob)
	}

	hist := series.Values()[len(series)-24*28:]
	fctx := forecast.Context{History: hist, Time: series[len(series)-1].T.Add(time.Hour)}

	champ, err := upload(champion, "champion")
	if err != nil {
		return nil, err
	}
	chall, err := upload(challenger, "challenger")
	if err != nil {
		return nil, err
	}
	if err := env.Reg.PromoteInstance(champ.ID); err != nil {
		return nil, err
	}

	res := &ServingResult{Clients: clients, PerClient: perClient, SwapServed: true}
	arms := []*ServingArm{
		{Name: "batch=off", MaxBatch: 0, Elapsed: time.Duration(1<<62 - 1)},
		{Name: "batch=32", MaxBatch: 32, Elapsed: time.Duration(1<<62 - 1)},
	}
	gws := make([]*serve.Gateway, len(arms))
	for i, arm := range arms {
		gw := serve.New(regSource{env.Reg}, serve.Options{
			RefreshInterval: -1,
			MaxBatch:        arm.MaxBatch,
			BatchWorkers:    1,
			Obs:             obs.NewRegistry(),
		})
		defer gw.Close()
		// Warm load outside the timed region; both gateways cache the
		// champion before the first promotion lands.
		if _, err := gw.Predict(m.ID.String(), fctx); err != nil {
			return nil, err
		}
		gws[i] = gw
	}

	// storm runs one timed round of the prediction load against one
	// gateway. When swap is non-nil it is invoked from the sidelines once
	// the storm is half done, modeling a promotion landing under fire.
	storm := func(gw *serve.Gateway, name string, swap func() error) (time.Duration, error) {
		var (
			wg      sync.WaitGroup
			failed  atomic.Int64
			swapErr error
			halfAt  = int32(perClient / 2)
			swapCh  = make(chan struct{})
			once    sync.Once
		)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					if c == 0 && int32(i) == halfAt {
						once.Do(func() { close(swapCh) })
					}
					if _, err := gw.Predict(m.ID.String(), fctx); err != nil {
						failed.Add(1)
					}
				}
			}(c)
		}
		if swap != nil {
			<-swapCh
			swapErr = swap()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if swapErr != nil {
			return 0, swapErr
		}
		if n := failed.Load(); n != 0 {
			return 0, fmt.Errorf("experiments: serving arm %s dropped %d predictions", name, n)
		}
		return elapsed, nil
	}

	// Rounds are interleaved across the arms so neither benefits from
	// running after the other warmed the heap and the pools. Round 1 takes
	// the promotion mid-storm (PromoteInstance is idempotent, so each arm
	// can issue it); later rounds are clean, and the fastest round is the
	// arm's throughput — single rounds are ~60ms, well inside GC/scheduler
	// noise.
	for round := 0; round < 3; round++ {
		for i, arm := range arms {
			gw := gws[i]
			var swap func() error
			if round == 0 {
				swap = func() error {
					if err := env.Reg.PromoteInstance(chall.ID); err != nil {
						return err
					}
					gw.RefreshAll()
					return nil
				}
			}
			runtime.GC()
			elapsed, err := storm(gw, arm.Name, swap)
			if err != nil {
				return nil, err
			}
			if elapsed < arm.Elapsed {
				arm.Elapsed = elapsed
			}
		}
	}
	for i, arm := range arms {
		arm.Predictions = clients * perClient
		arm.QPS = float64(arm.Predictions) / arm.Elapsed.Seconds()
		resp, err := gws[i].Predict(m.ID.String(), fctx)
		if err != nil {
			return nil, err
		}
		if resp.InstanceID != chall.ID.String() {
			res.SwapServed = false
		}
		// Single-client measurement round: per-request latency quantiles
		// and allocations per prediction (the machine-independent number
		// the perf baseline gates on).
		if arm.P50, arm.P99, arm.AllocsPerOp, err = measurePredict(gws[i], m.ID.String(), fctx, 1000); err != nil {
			return nil, err
		}
		res.Arms = append(res.Arms, *arm)
	}
	return res, nil
}

// measurePredict issues n sequential predictions against a warmed
// gateway, reporting latency quantiles and the heap allocation count per
// call (via runtime.MemStats.Mallocs, so it counts mallocs exactly
// rather than sampling).
func measurePredict(gw *serve.Gateway, modelID string, fctx forecast.Context, n int) (p50, p99 time.Duration, allocsPerOp float64, err error) {
	for i := 0; i < 50; i++ { // warm pools so steady-state is measured
		if _, err = gw.Predict(modelID, fctx); err != nil {
			return
		}
	}
	lats := make([]time.Duration, n)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := range lats {
		t0 := time.Now()
		if _, err = gw.Predict(modelID, fctx); err != nil {
			return
		}
		lats[i] = time.Since(t0)
	}
	runtime.ReadMemStats(&after)
	allocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(n)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[n/2], lats[n*99/100], allocsPerOp, nil
}

// BenchMetrics emits the experiment's BENCH_serving.json metrics.
// Allocation counts per prediction are machine-independent and gate the
// baseline; throughput and latency are hardware-bound trajectory info.
func (r *ServingResult) BenchMetrics() []benchfmt.Metric {
	var ms []benchfmt.Metric
	for _, a := range r.Arms {
		prefix := strings.ReplaceAll(a.Name, "=", "_")
		ms = append(ms,
			benchfmt.Metric{Name: prefix + "_qps", Unit: "ops/s", Value: a.QPS, Better: benchfmt.Info},
			benchfmt.Metric{Name: prefix + "_p50_seconds", Unit: "s", Value: a.P50.Seconds(), Better: benchfmt.Info},
			benchfmt.Metric{Name: prefix + "_p99_seconds", Unit: "s", Value: a.P99.Seconds(), Better: benchfmt.Info},
			benchfmt.Metric{Name: prefix + "_allocs_per_op", Unit: "allocs/op", Value: a.AllocsPerOp, Better: benchfmt.LowerIsBetter, Tol: 0.5},
		)
	}
	swap := 0.0
	if r.SwapServed {
		swap = 1
	}
	return append(ms,
		benchfmt.Metric{Name: "batched_speedup", Unit: "x", Value: r.Speedup(), Better: benchfmt.Info},
		benchfmt.Metric{Name: "swap_served", Value: swap, Better: benchfmt.HigherIsBetter, Tol: 0.01},
	)
}
