// Command galleryserve runs the Gallery prediction serving gateway: a
// stateless HTTP tier that pulls promoted model instances out of a
// galleryd and answers forecast queries with them, hot-swapping on
// promotion (the paper's §2 realtime prediction service, closed-loop with
// the §4.2 rule engine).
//
// Usage:
//
//	galleryserve -addr :8441 -gallery http://localhost:8440
//	galleryserve -addr :8441 -gallery http://localhost:8440 -batch 32
//	galleryserve -addr :8441 -auth -token-file tokens.json -token gal_...  # multi-tenant
//
// Predictions:
//
//	curl -s localhost:8441/v1/predict/<model-id> \
//	    -d '{"history":[10,12,11,13,12,14]}'
//
// Per-tenant and per-model RED metrics are recorded on every request and
// exposed for scraping in Prometheus text format at
// GET /v1/debug/metrics/prom (JSON snapshot at /v1/debug/metrics).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"gallery/internal/client"
	"gallery/internal/forecast"
	obslog "gallery/internal/obs/log"
	"gallery/internal/obs/profile"
	"gallery/internal/obs/trace"
	"gallery/internal/relstore"
	"gallery/internal/serve"
	"gallery/internal/tenant"
)

func main() {
	var (
		addr      = flag.String("addr", ":8441", "listen address")
		gallery   = flag.String("gallery", "http://localhost:8440", "galleryd base URL")
		refresh   = flag.Duration("refresh", 5*time.Second, "production-pointer poll interval")
		maxModels = flag.Int("max-models", 64, "LRU bound on concurrently loaded models")
		batch     = flag.Int("batch", 0, "micro-batch size (0 disables batching)")
		batchWait = flag.Duration("batch-wait", 0, "max linger for a partially filled batch (0 = adaptive drain-only)")
		preload   = flag.String("preload", "", "comma-separated model IDs to load at startup")
		name      = flag.String("name", "gateway", "gateway name stamped on flushed health observations")
		healthInt = flag.Duration("health-flush", 15*time.Second, "health observation flush period (negative disables health reporting)")
		retries   = flag.Int("retries", 3, "gallery client retry budget per request")
		accessLog = flag.Bool("access-log", false, "write a JSON access-log line per request to stderr")
		traceSpec = flag.String("trace-sample", "errslow:250ms", "trace sampler: never | always | errslow:<dur> | <probability 0..1>")
		traceCap  = flag.Int("trace-buffer", 256, "completed traces kept for /v1/debug/traces")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /v1/debug/pprof/ (profiles can leak memory contents; opt-in)")
		logLevel  = flag.String("log-level", "info", "min level entering the /v1/debug/logs ring: debug|info|warn|error")
		logBuffer = flag.Int("log-buffer", 1024, "structured log lines kept for /v1/debug/logs")

		profEvery    = flag.Duration("profile-interval", profile.DefaultInterval, "continuous-profiler cycle period (negative disables the capture loop)")
		profWindow   = flag.Duration("profile-window", profile.DefaultWindow, "CPU sampling window per profiler cycle")
		profHz       = flag.Int("profile-hz", profile.DefaultHz, "CPU profile sample rate")
		profBaseline = flag.String("profile-baseline", "", "per-process CPU baseline JSON (PROFILE_galleryserve.json); regressions against it are exposed in the profile_regression gauge")
		profFactor   = flag.Float64("profile-factor", profile.DefaultFactor, "flag a function when its CPU self-share exceeds baseline by this factor")
		mutexFrac    = flag.Int("mutex-profile-fraction", 0, "runtime.SetMutexProfileFraction: sample 1/n mutex contention events (0 disables)")
		blockRate    = flag.Int("block-profile-rate", 0, "runtime.SetBlockProfileRate: sample blocking events >= n ns (0 disables)")

		authOn    = flag.Bool("auth", false, "require bearer tokens on this gateway (needs -token-file)")
		tokenFile = flag.String("token-file", "", "JSON seed of namespaces and tokens this gateway accepts (see internal/tenant.Seed)")
		token     = flag.String("token", "", "bearer token this gateway presents to galleryd (when galleryd runs -auth)")
	)
	flag.Parse()

	sampler, err := trace.ParseSampler(*traceSpec)
	if err != nil {
		log.Fatalf("galleryserve: %v", err)
	}
	// Kept traces ship to galleryd's trace buffer, so a predict request
	// reads as ONE trace spanning both processes there.
	exporter := trace.NewHTTPExporter(*gallery+"/v1/debug/traces", nil)
	defer exporter.Close()
	tracer := trace.New(trace.Options{
		Service:  "galleryserve",
		Sampler:  sampler,
		Capacity: *traceCap,
		Exporter: exporter,
	})

	cl := client.NewWith(*gallery, client.Options{Retries: *retries, Actor: "gateway:" + *name, Token: *token})
	gwOpts := serve.Options{
		Name:            *name,
		MaxModels:       *maxModels,
		RefreshInterval: *refresh,
		MaxBatch:        *batch,
		BatchWait:       *batchWait,
		Tracer:          tracer,
		// Hot swaps land on galleryd's lifecycle audit trail next to the
		// promotions that caused them.
		AuditSink: cl,
	}
	if *healthInt > 0 {
		// Per-model prediction sketches stream back to galleryd's health
		// monitor through the same client.
		gwOpts.HealthSink = cl
		gwOpts.HealthInterval = *healthInt
	}
	gw := serve.New(cl, gwOpts)
	defer gw.Close()

	for _, id := range strings.Split(*preload, ",") {
		if id = strings.TrimSpace(id); id == "" {
			continue
		}
		if _, err := gw.Predict(id, warmupContext()); err != nil {
			log.Printf("galleryserve: preload %s: %v", id, err)
		}
	}

	// Lock-contention profiles are opt-in (sampling costs a little on every
	// contended op); the profiler's mutex/block summaries stay empty
	// without them.
	if *mutexFrac > 0 {
		runtime.SetMutexProfileFraction(*mutexFrac)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}

	// Continuous profiling: window summaries ship to galleryd's fleet store
	// (the trace-export pattern) so GET /v1/debug/profile there covers both
	// tiers; the local ring serves the same path here and rides incident
	// bundle pulls.
	profExporter := profile.NewHTTPExporter(*gallery+"/v1/debug/profile", *token, nil)
	defer profExporter.Close()
	var detector *profile.Detector
	if *profBaseline != "" {
		base, err := profile.LoadBaseline(*profBaseline)
		if err != nil {
			log.Fatalf("galleryserve: load profile baseline: %v", err)
		}
		detector = profile.NewDetector(profile.DetectorConfig{Baseline: base, Factor: *profFactor})
	}
	profiler := profile.New(profile.Config{
		Process:  "galleryserve",
		Window:   *profWindow,
		Interval: *profEvery,
		Hz:       *profHz,
		Detector: detector,
		Exporter: profExporter,
	})
	if *profEvery > 0 {
		profiler.Start()
		defer profiler.Stop()
	}

	// Structured logs land in a bounded ring served at GET /v1/debug/logs
	// (trace-correlated); -access-log tees them to stderr as JSON lines.
	ring := obslog.NewRing(*logBuffer)
	var tee *slog.Logger
	if *accessLog {
		tee = jsonLogger()
	}
	logger := slog.New(obslog.NewHandler(ring, obslog.ParseLevel(*logLevel), teeHandler(tee)))
	opts := []serve.HandlerOption{
		serve.WithTracer(tracer),
		serve.WithLogRing(ring),
		serve.WithAccessLog(logger),
		serve.WithProfiler(profiler),
	}
	if *pprofOn {
		opts = append(opts, serve.WithPprof())
	}
	if *authOn {
		// The gateway holds no metadata store, so its control plane lives
		// in memory, rebuilt from the token file on every boot — the same
		// enforcement pipeline galleryd runs, fed by configuration instead
		// of the WAL.
		if *tokenFile == "" {
			log.Fatalf("galleryserve: -auth requires -token-file (a gateway has no durable store to mint from)")
		}
		tm, err := tenant.Open(relstore.NewMemory(), tenant.Options{})
		if err != nil {
			log.Fatalf("galleryserve: open tenant control plane: %v", err)
		}
		seed, err := tenant.LoadSeed(*tokenFile)
		if err != nil {
			log.Fatalf("galleryserve: %v", err)
		}
		if err := tm.ApplySeed(context.Background(), seed); err != nil {
			log.Fatalf("galleryserve: apply token file: %v", err)
		}
		opts = append(opts, serve.WithAuthorizer(tm))
	} else if *tokenFile != "" {
		log.Fatalf("galleryserve: -token-file requires -auth")
	}
	h := serve.NewHandler(gw, opts...)

	httpSrv := &http.Server{Addr: *addr, Handler: h}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("galleryserve: serving on %s (gallery=%s refresh=%v batch=%d)\n",
		*addr, *gallery, *refresh, *batch)

	waitForShutdown(httpSrv, errCh)
}

// warmupContext is a throwaway query used only to force a preload; the
// answer is discarded.
func warmupContext() forecast.Context {
	return forecast.Context{History: []float64{1, 1, 1, 1}}
}

func jsonLogger() *slog.Logger {
	return slog.New(slog.NewJSONHandler(os.Stderr, nil))
}

// teeHandler unwraps an optional logger into the downstream handler slot
// of the ring pipeline (nil when -access-log is off).
func teeHandler(l *slog.Logger) slog.Handler {
	if l == nil {
		return nil
	}
	return l.Handler()
}

func waitForShutdown(httpSrv *http.Server, errCh chan error) {
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("galleryserve: %v", err)
		}
	case sig := <-sigCh:
		log.Printf("galleryserve: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("galleryserve: shutdown: %v", err)
		}
		cancel()
	}
}
