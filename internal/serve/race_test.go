package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gallery/internal/forecast"
)

// TestPredictRacesHotSwap hammers a model with predictions while the
// production pointer flips back and forth, with and without batching. No
// prediction may fail, and every response must be self-consistent: the
// value must match the learner of the version the response claims —
// a torn read (new version, old learner) fails the test. Run with -race.
func TestPredictRacesHotSwap(t *testing.T) {
	for _, batch := range []int{0, 8} {
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			src := newFakeSource()
			// Minor 0 (K=1) serves the last value, minor 1 (K=2) the mean
			// of the last two: history [10, 20] answers 20 or 15.
			src.promote(t, "m1", 0, &forecast.Heuristic{K: 1})
			g := newTestGateway(t, src, Options{MaxBatch: batch, BatchWorkers: 2})

			hist := forecast.Context{History: []float64{10, 20}}
			want := map[string]float64{"1.0": 20, "1.1": 15}

			const workers = 8
			var (
				wg     sync.WaitGroup
				stop   atomic.Bool
				failed atomic.Int64
				torn   atomic.Int64
				total  atomic.Int64
			)
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !stop.Load() {
						resp, err := g.Predict("m1", hist)
						total.Add(1)
						if err != nil {
							failed.Add(1)
							continue
						}
						if resp.Value != want[resp.Version] {
							torn.Add(1)
						}
					}
				}()
			}

			// Flip the production pointer 50 times under fire, letting a
			// few predictions land between consecutive swaps so every swap
			// actually races traffic.
			for swap := 1; swap <= 50; swap++ {
				k := swap%2 + 1 // alternates 2,1,2,1,...
				src.promote(t, "m1", swap%2, &forecast.Heuristic{K: k})
				g.RefreshAll()
				// Sleeping (not spinning) lets the workers run even on a
				// single-CPU machine.
				for before := total.Load(); total.Load() < before+4; {
					time.Sleep(100 * time.Microsecond)
				}
			}
			stop.Store(true)
			wg.Wait()

			if failed.Load() != 0 {
				t.Fatalf("%d of %d predictions failed during swaps", failed.Load(), total.Load())
			}
			if torn.Load() != 0 {
				t.Fatalf("%d of %d predictions saw torn version/learner state", torn.Load(), total.Load())
			}
			if total.Load() == 0 {
				t.Fatal("no predictions ran")
			}
		})
	}
}

// TestEvictionRacesPredictions evicts models out from under live traffic;
// the batcher teardown path must fall back to direct computation, never
// drop a request.
func TestEvictionRacesPredictions(t *testing.T) {
	src := newFakeSource()
	const models = 4
	for i := 0; i < models; i++ {
		src.promote(t, fmt.Sprintf("m%d", i), 0, &forecast.Heuristic{K: 1})
	}
	// MaxModels=2 with 4 hot models forces constant eviction and reload.
	g := newTestGateway(t, src, Options{MaxModels: 2, MaxBatch: 4, BatchWorkers: 2})

	var (
		wg     sync.WaitGroup
		failed atomic.Int64
	)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("m%d", (w+i)%models)
				resp, err := g.Predict(id, forecast.Context{History: []float64{float64(i)}})
				if err != nil || resp.Value != float64(i) {
					failed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d predictions failed under eviction churn", failed.Load())
	}
}
