package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"gallery/internal/api"
	"gallery/internal/benchfmt"
	"gallery/internal/core"
	"gallery/internal/forecast"
	"gallery/internal/health"
	"gallery/internal/obs"
	"gallery/internal/rules"
	"gallery/internal/serve"
)

// Experiment E19 — continuous model health (paper §3.6 made continuous).
// A serving gateway answers live traffic with a promoted model while
// recording distribution sketches of its own predictions. Mid-run the
// demand regime permanently shifts (workload ShiftAt/ShiftFactor); the
// health monitor sees the live prediction distribution walk away from the
// reference it captured after promotion, flips the model to degraded via
// PSI, and the health.drift event fires a retrain rule — no metric is
// ever ingested by hand.

// OnlineDriftWindow is one observation window of the run.
type OnlineDriftWindow struct {
	Index   int // 1-based
	Shifted bool
	PSI     float64
	Status  string
}

// OnlineDriftResult is the experiment outcome.
type OnlineDriftResult struct {
	ShiftFactor  float64
	Windows      []OnlineDriftWindow
	DegradedAt   int // first window index judged degraded (0 = never)
	RetrainFired int
	FinalPSI     float64
	FinalStatus  string
}

// monitorSink feeds gateway flushes straight into an in-process monitor,
// standing in for the HTTP hop of the deployed system.
type monitorSink struct{ mon *health.Monitor }

func (s monitorSink) ReportHealthObservations(ctx context.Context, req api.HealthObservationsRequest) error {
	_, err := s.mon.Ingest(ctx, req)
	return err
}

// OnlineDrift runs the experiment: preWindows windows of steady traffic,
// then postWindows windows after a 1.6x regime shift.
func OnlineDrift(preWindows, postWindows int) (*OnlineDriftResult, error) {
	const (
		windowHours = 72
		trainHours  = 24 * 14
		shiftFactor = 1.6
	)
	env := mustEnv(16)
	totalWindows := preWindows + postWindows
	city := forecast.CityConfig{
		Name: "drift_city", Base: 400, DailyAmp: 120, WeeklyAmp: 40, NoiseStd: 15, Seed: 16,
		ShiftAt:     epoch.Add(time.Duration(trainHours+preWindows*windowHours) * time.Hour),
		ShiftFactor: shiftFactor,
	}
	data := forecast.Generate(city, epoch, time.Hour, trainHours+totalWindows*windowHours)
	values := data.Values()

	m, err := env.Reg.RegisterModel(core.ModelSpec{
		BaseVersionID: "drift_demand", Project: "marketplace", Name: "forecaster",
	})
	if err != nil {
		return nil, err
	}
	fm := &forecast.LinearAR{Lags: 24}
	if err := fm.Train(data[:trainHours]); err != nil {
		return nil, err
	}
	blob, err := forecast.Encode(fm)
	if err != nil {
		return nil, err
	}
	in, err := env.Reg.UploadInstance(core.InstanceSpec{
		ModelID: m.ID, Name: "forecaster", City: city.Name,
	}, blob)
	if err != nil {
		return nil, err
	}
	if err := env.Reg.PromoteInstance(in.ID); err != nil {
		return nil, err
	}

	// The standing rule: hard distribution drift triggers a retrain.
	if _, err := env.Repo.Commit("oncall", "retrain on drift", []*rules.Rule{{
		UUID:        "7a0e16d0-0000-4000-8000-000000000e16",
		Team:        "marketplace",
		Name:        "retrain-on-drift",
		Kind:        rules.KindAction,
		When:        `health.event == "drift" && health.psi > 0.25`,
		Environment: "production",
		Actions:     []rules.ActionRef{{Action: "retrain"}},
	}}, nil); err != nil {
		return nil, err
	}
	res := &OnlineDriftResult{ShiftFactor: shiftFactor}
	env.Engine.RegisterAction("retrain", func(*rules.ActionContext) error {
		res.RetrainFired++
		return nil
	})

	mon := health.New(env.Reg, health.Config{
		ReferenceWindows: 2,
		LiveWindows:      2,
		MinSamples:       100, // a single 72-sample window is too noisy to judge
		Interval:         -1,  // the run drives Evaluate per window
		Obs:              obs.NewRegistry(),
		Events:           env.Engine,
	})
	gw := serve.New(regSource{env.Reg}, serve.Options{
		Name:            "gw-drift",
		RefreshInterval: -1,
		HealthSink:      monitorSink{mon},
		HealthInterval:  -1,
		Obs:             obs.NewRegistry(),
	})
	defer gw.Close()

	ctx := context.Background()
	for w := 0; w < totalWindows; w++ {
		start := trainHours + w*windowHours
		for i := start; i < start+windowHours; i++ {
			// Live traffic: forecast the next hour from everything seen so
			// far. After ShiftAt the history (and so the AR model's
			// output) rides the new regime.
			if _, err := gw.Predict(m.ID.String(), forecast.Context{
				History: values[:i],
				Time:    data[i].T,
			}); err != nil {
				return nil, err
			}
		}
		if err := gw.FlushHealth(ctx); err != nil {
			return nil, err
		}
		mon.Evaluate(ctx)
		env.Engine.Flush()
		mh, ok := mon.ModelHealth(m.ID.String())
		if !ok {
			return nil, fmt.Errorf("onlinedrift: model untracked after window %d", w+1)
		}
		res.Windows = append(res.Windows, OnlineDriftWindow{
			Index:   w + 1,
			Shifted: w >= preWindows,
			PSI:     mh.PSI,
			Status:  mh.Status,
		})
		if res.DegradedAt == 0 && mh.Status == string(health.StatusDegraded) {
			res.DegradedAt = w + 1
		}
		res.FinalPSI = mh.PSI
		res.FinalStatus = mh.Status
	}
	return res, nil
}

// Format renders the window timeline as paper-style rows.
func (r *OnlineDriftResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "online drift detection (regime shift x%.1f):\n", r.ShiftFactor)
	fmt.Fprintf(&b, "%-8s %-8s %8s  %s\n", "window", "regime", "psi", "status")
	for _, w := range r.Windows {
		regime := "steady"
		if w.Shifted {
			regime = "shifted"
		}
		fmt.Fprintf(&b, "%-8d %-8s %8.3f  %s\n", w.Index, regime, w.PSI, w.Status)
	}
	fmt.Fprintf(&b, "degraded at window %d; retrain rule fired %d time(s)\n",
		r.DegradedAt, r.RetrainFired)
	return b.String()
}

// BenchMetrics emits BENCH_onlinedrift.json metrics. The detection
// outcome (which window degraded, whether the retrain rule fired) is
// deterministic given the seeds, so it gates; PSI values ride along as
// trajectory info.
func (r *OnlineDriftResult) BenchMetrics() []benchfmt.Metric {
	fired := 0.0
	if r.RetrainFired > 0 {
		fired = 1
	}
	return []benchfmt.Metric{
		{Name: "windows", Unit: "windows", Value: float64(len(r.Windows)), Better: benchfmt.Info},
		{Name: "degraded_at_window", Unit: "window", Value: float64(r.DegradedAt), Better: benchfmt.LowerIsBetter, Tol: 0.01},
		{Name: "retrain_fired", Value: fired, Better: benchfmt.HigherIsBetter, Tol: 0.01},
		{Name: "final_psi", Value: r.FinalPSI, Better: benchfmt.Info},
	}
}
