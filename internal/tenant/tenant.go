// Package tenant is Gallery's multi-tenant control plane: first-class
// namespaces with per-tenant quotas and rate limits, and bearer-token
// authentication with per-namespace roles. The paper's Gallery served
// every ML team at the company from one shared registry; this package is
// the governance layer that makes such sharing safe — a caller is no
// longer a self-declared X-Gallery-Actor string but a verified token
// bound to a namespace and a role.
//
// Namespaces, tokens, and quota usage live in the same relational store
// (and therefore the same WAL) as the rest of the metadata, so the whole
// control plane survives restarts through ordinary WAL replay: a token
// minted before a crash still authenticates after recovery, and a
// namespace's consumed quota is not forgotten.
//
// Model names adopt a `team/model` convention: the segment before the
// first '/' is the owning namespace; names without a prefix belong to the
// "default" namespace, which always exists and keeps single-tenant
// deployments working unchanged.
package tenant

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gallery/internal/audit"
	"gallery/internal/clock"
	"gallery/internal/obs"
	"gallery/internal/relstore"
	"gallery/internal/uuid"
)

// DefaultNamespace is the back-compat namespace: unprefixed model names
// live here, and it is created automatically with unlimited quotas.
const DefaultNamespace = "default"

// Table names in the metadata store.
const (
	NamespacesTable = "tenant_namespaces"
	TokensTable     = "tenant_tokens"
	UsageTable      = "tenant_usage"
)

// Sentinel errors. The HTTP layer maps them onto status codes:
// ErrForbidden and ErrModelQuota → 403, ErrBlobQuota → 413,
// ErrNotFound → 404, ErrExists → 409, ErrBadSpec → 400.
var (
	ErrNotFound   = errors.New("tenant: not found")
	ErrExists     = errors.New("tenant: already exists")
	ErrBadSpec    = errors.New("tenant: bad spec")
	ErrForbidden  = errors.New("tenant: forbidden")
	ErrModelQuota = errors.New("tenant: model quota exceeded")
	ErrBlobQuota  = errors.New("tenant: blob quota exceeded")
)

// Role orders a token's capabilities within its namespace. Higher roles
// include lower ones.
type Role int

const (
	// RoleReader may read metadata and request predictions.
	RoleReader Role = iota + 1
	// RolePublisher may additionally register models, upload instances,
	// record metrics, and promote/deprecate within its namespace.
	RolePublisher
	// RoleOperator may additionally manage the namespace itself: mint and
	// revoke tokens, set quotas, and commit rules. Operators of the
	// "default" namespace are instance administrators: they may create
	// namespaces and act across all of them.
	RoleOperator
)

// ParseRole reads a role name.
func ParseRole(s string) (Role, error) {
	switch strings.ToLower(s) {
	case "reader":
		return RoleReader, nil
	case "publisher":
		return RolePublisher, nil
	case "operator":
		return RoleOperator, nil
	}
	return 0, fmt.Errorf("%w: unknown role %q (want reader|publisher|operator)", ErrBadSpec, s)
}

func (r Role) String() string {
	switch r {
	case RoleReader:
		return "reader"
	case RolePublisher:
		return "publisher"
	case RoleOperator:
		return "operator"
	}
	return fmt.Sprintf("role(%d)", int(r))
}

// Namespace is one tenant: its identity and its limits. Zero limit fields
// mean unlimited.
type Namespace struct {
	Name         string
	MaxModels    int64   // models the namespace may own
	MaxBlobBytes int64   // total blob bytes the namespace may store
	RatePerSec   float64 // sustained request rate across the namespace's tokens
	Burst        int64   // token-bucket depth (defaults to max(1, RatePerSec) when rate is set)
	Created      time.Time
}

// Token is a minted credential (the secret itself is never stored — only
// its SHA-256).
type Token struct {
	ID        string
	Name      string // human identity, e.g. "alice" or "gateway-sf"
	Namespace string
	Role      Role
	Created   time.Time
	Revoked   bool
}

// Identity is a resolved caller.
type Identity struct {
	TokenID   string
	Name      string
	Namespace string
	Role      Role
	// Actor is the audit-trail form: "<namespace>/<name>".
	Actor string
}

// Usage is a namespace's consumed quota.
type Usage struct {
	Models    int64
	BlobBytes int64
}

// Split derives the owning namespace from a `team/model` name. Names
// without a '/' belong to the default namespace.
func Split(name string) (ns, rest string) {
	if i := strings.IndexByte(name, '/'); i > 0 {
		return name[:i], name[i+1:]
	}
	return DefaultNamespace, name
}

// Options configures a Manager.
type Options struct {
	// Clock drives rate-limiter refill and creation stamps; nil uses the
	// wall clock.
	Clock clock.Clock
	// UUIDs mints token IDs and secrets; nil uses the crypto/rand
	// generator. Experiments inject a seeded one for determinism.
	UUIDs *uuid.Generator
	// Obs receives the tenant_* metrics; nil uses obs.Default.
	Obs *obs.Registry
	// Audit, when set, receives an event for every authorization denial
	// and every control-plane mutation (namespace created, token minted or
	// revoked, quotas changed).
	Audit *audit.Log
}

// nsState is a namespace's in-memory face: limits, usage counters, and
// the token bucket. Usage mutates under Manager.mu; the bucket has its
// own lock so the hot path never takes the manager lock for writing.
type nsState struct {
	Namespace
	usage   Usage
	limiter *bucket
}

// tokenState is shared between the hash index and the secret cache, so a
// revocation flips one flag and every lookup path sees it immediately.
type tokenState struct {
	Token
	id      Identity
	ns      *nsState
	revoked atomic.Bool
}

// Manager is the control plane over one metadata store. It is safe for
// concurrent use; the authentication hot path is a lock-free cache lookup
// plus one per-namespace mutex for the rate limiter.
type Manager struct {
	store *relstore.Store
	clk   clock.Clock
	gen   *uuid.Generator
	aud   *audit.Log
	reg   *obs.Registry

	cUnauthenticated *obs.Counter // tenant_unauthenticated_total
	cForbidden       *obs.Counter // tenant_forbidden_total
	cRateLimited     *obs.Counter // tenant_rate_limited_total
	cQuotaDenied     *obs.Counter // tenant_quota_denied_total
	cActorIgnored    *obs.Counter // tenant_actor_header_ignored_total
	cUsageErrs       *obs.Counter // tenant_usage_persist_errors_total

	mu         sync.RWMutex
	namespaces map[string]*nsState
	byHash     map[string]*tokenState // sha256-hex(secret) → state

	// cache maps raw secrets seen at runtime to their verified state, so
	// steady-state authentication is one sync.Map load and zero
	// allocations. Only secrets that hash-verified enter, bounding it by
	// the token count.
	cache sync.Map
}

// Open declares the tenant tables on store (idempotent over a recovered
// store), loads every namespace, token, and usage row back into memory,
// and guarantees the default namespace exists.
func Open(store *relstore.Store, opts Options) (*Manager, error) {
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	if opts.UUIDs == nil {
		opts.UUIDs = uuid.NewGenerator()
	}
	if opts.Obs == nil {
		opts.Obs = obs.Default
	}
	for _, schema := range []relstore.Schema{namespacesSchema(), tokensSchema(), usageSchema()} {
		if err := store.CreateTable(schema); err != nil {
			return nil, err
		}
	}
	m := &Manager{
		store:            store,
		clk:              opts.Clock,
		gen:              opts.UUIDs,
		aud:              opts.Audit,
		reg:              opts.Obs,
		cUnauthenticated: opts.Obs.Counter("tenant_unauthenticated_total"),
		cForbidden:       opts.Obs.Counter("tenant_forbidden_total"),
		cRateLimited:     opts.Obs.Counter("tenant_rate_limited_total"),
		cQuotaDenied:     opts.Obs.Counter("tenant_quota_denied_total"),
		cActorIgnored:    opts.Obs.Counter("tenant_actor_header_ignored_total"),
		cUsageErrs:       opts.Obs.Counter("tenant_usage_persist_errors_total"),
		namespaces:       make(map[string]*nsState),
		byHash:           make(map[string]*tokenState),
	}
	if err := m.recover(); err != nil {
		return nil, err
	}
	if _, ok := m.namespaces[DefaultNamespace]; !ok {
		if err := m.CreateNamespace(context.Background(), Namespace{Name: DefaultNamespace}); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// recover replays the persisted control plane into memory. WAL replay
// already rebuilt the tables; this walks them.
func (m *Manager) recover() error {
	nsRows, err := m.store.Select(relstore.Query{Table: NamespacesTable})
	if err != nil {
		return err
	}
	for _, r := range nsRows {
		ns := rowToNamespace(r)
		m.namespaces[ns.Name] = newNSState(ns)
	}
	useRows, err := m.store.Select(relstore.Query{Table: UsageTable})
	if err != nil {
		return err
	}
	for _, r := range useRows {
		if st, ok := m.namespaces[r["namespace"].Str]; ok {
			st.usage = Usage{Models: r["models"].Int, BlobBytes: r["blob_bytes"].Int}
		}
	}
	tokRows, err := m.store.Select(relstore.Query{Table: TokensTable})
	if err != nil {
		return err
	}
	for _, r := range tokRows {
		tok, hash := rowToToken(r)
		st, ok := m.namespaces[tok.Namespace]
		if !ok {
			// A token whose namespace row is gone cannot authorize anything.
			continue
		}
		m.indexToken(tok, hash, st)
	}
	return nil
}

// indexToken installs a token into the hash index. Caller holds mu (or is
// still single-threaded during recovery).
func (m *Manager) indexToken(tok Token, hash string, st *nsState) *tokenState {
	ts := &tokenState{Token: tok, ns: st, id: Identity{
		TokenID:   tok.ID,
		Name:      tok.Name,
		Namespace: tok.Namespace,
		Role:      tok.Role,
		Actor:     tok.Namespace + "/" + tok.Name,
	}}
	ts.revoked.Store(tok.Revoked)
	m.byHash[hash] = ts
	return ts
}

func newNSState(ns Namespace) *nsState {
	st := &nsState{Namespace: ns}
	st.limiter = newBucket(ns.RatePerSec, ns.Burst)
	return st
}

// --- namespaces and quotas ---

// CreateNamespace registers a tenant. The name must be a single
// slash-free segment.
func (m *Manager) CreateNamespace(ctx context.Context, ns Namespace) error {
	if ns.Name == "" || strings.ContainsAny(ns.Name, "/ \t\n") {
		return fmt.Errorf("%w: namespace name %q must be one slash-free word", ErrBadSpec, ns.Name)
	}
	if ns.Created.IsZero() {
		ns.Created = m.clk.Now()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.namespaces[ns.Name]; ok {
		return fmt.Errorf("%w: namespace %q", ErrExists, ns.Name)
	}
	if err := m.store.InsertCtx(ctx, NamespacesTable, namespaceToRow(ns)); err != nil {
		return err
	}
	if err := m.store.InsertCtx(ctx, UsageTable, usageToRow(ns.Name, Usage{})); err != nil {
		return err
	}
	m.namespaces[ns.Name] = newNSState(ns)
	m.recordAdmin(ctx, "tenant.ns_create", ns.Name, "", fmt.Sprintf("max_models=%d max_blob_bytes=%d rate=%g burst=%d",
		ns.MaxModels, ns.MaxBlobBytes, ns.RatePerSec, ns.Burst))
	return nil
}

// SetQuotas overwrites a namespace's limits (all four fields).
func (m *Manager) SetQuotas(ctx context.Context, name string, maxModels, maxBlobBytes int64, ratePerSec float64, burst int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.namespaces[name]
	if !ok {
		return fmt.Errorf("%w: namespace %q", ErrNotFound, name)
	}
	before := fmt.Sprintf("max_models=%d max_blob_bytes=%d rate=%g burst=%d",
		st.MaxModels, st.MaxBlobBytes, st.RatePerSec, st.Burst)
	st.MaxModels, st.MaxBlobBytes = maxModels, maxBlobBytes
	st.RatePerSec, st.Burst = ratePerSec, burst
	if err := m.store.UpdateCtx(ctx, NamespacesTable, namespaceToRow(st.Namespace)); err != nil {
		return err
	}
	st.limiter.configure(ratePerSec, burst)
	m.recordAdmin(ctx, "tenant.quotas_set", name, before, fmt.Sprintf("max_models=%d max_blob_bytes=%d rate=%g burst=%d",
		maxModels, maxBlobBytes, ratePerSec, burst))
	return nil
}

// Namespaces lists tenants sorted by name.
func (m *Manager) Namespaces() []Namespace {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Namespace, 0, len(m.namespaces))
	for _, st := range m.namespaces {
		out = append(out, st.Namespace)
	}
	sortNamespaces(out)
	return out
}

// GetNamespace returns one tenant and its usage.
func (m *Manager) GetNamespace(name string) (Namespace, Usage, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	st, ok := m.namespaces[name]
	if !ok {
		return Namespace{}, Usage{}, fmt.Errorf("%w: namespace %q", ErrNotFound, name)
	}
	return st.Namespace, st.usage, nil
}

// GetUsage returns a namespace's consumed quota.
func (m *Manager) GetUsage(name string) (Usage, error) {
	_, u, err := m.GetNamespace(name)
	return u, err
}

// --- tokens ---

// MintToken creates a credential in a namespace and returns the secret —
// shown exactly once; only its hash persists.
func (m *Manager) MintToken(ctx context.Context, namespace, name string, role Role) (secret string, tok Token, err error) {
	if name == "" {
		return "", Token{}, fmt.Errorf("%w: token needs a name", ErrBadSpec)
	}
	if role < RoleReader || role > RoleOperator {
		return "", Token{}, fmt.Errorf("%w: bad role", ErrBadSpec)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.namespaces[namespace]
	if !ok {
		return "", Token{}, fmt.Errorf("%w: namespace %q", ErrNotFound, namespace)
	}
	secret = "gal_" + strings.ReplaceAll(m.gen.New().String()+m.gen.New().String(), "-", "")
	tok = Token{
		ID:        m.gen.New().String(),
		Name:      name,
		Namespace: namespace,
		Role:      role,
		Created:   m.clk.Now(),
	}
	hash := HashSecret(secret)
	if err := m.store.InsertCtx(ctx, TokensTable, tokenToRow(tok, hash)); err != nil {
		return "", Token{}, err
	}
	m.indexToken(tok, hash, st)
	m.recordAdmin(ctx, "tenant.token_mint", namespace, "", fmt.Sprintf("token %s (%s, %s)", tok.ID, name, role))
	return secret, tok, nil
}

// EnsureToken installs a token with a caller-chosen secret if no token
// with that secret exists yet — the bootstrap path for seed files, where
// the operator already holds the secret. Idempotent per secret.
func (m *Manager) EnsureToken(ctx context.Context, secret, namespace, name string, role Role) (Token, error) {
	if secret == "" {
		return Token{}, fmt.Errorf("%w: empty secret", ErrBadSpec)
	}
	if name == "" {
		return Token{}, fmt.Errorf("%w: token needs a name", ErrBadSpec)
	}
	if role < RoleReader || role > RoleOperator {
		return Token{}, fmt.Errorf("%w: bad role", ErrBadSpec)
	}
	hash := HashSecret(secret)
	m.mu.Lock()
	defer m.mu.Unlock()
	if ts, ok := m.byHash[hash]; ok {
		return ts.Token, nil
	}
	st, ok := m.namespaces[namespace]
	if !ok {
		return Token{}, fmt.Errorf("%w: namespace %q", ErrNotFound, namespace)
	}
	tok := Token{
		ID:        m.gen.New().String(),
		Name:      name,
		Namespace: namespace,
		Role:      role,
		Created:   m.clk.Now(),
	}
	if err := m.store.InsertCtx(ctx, TokensTable, tokenToRow(tok, hash)); err != nil {
		return Token{}, err
	}
	m.indexToken(tok, hash, st)
	m.recordAdmin(ctx, "tenant.token_mint", namespace, "", fmt.Sprintf("token %s (%s, %s, seeded)", tok.ID, name, role))
	return tok, nil
}

// RevokeToken invalidates a credential. The revocation takes effect on
// the very next request: the shared state flag flips before the persisted
// row is updated, so even cached lookups reject immediately.
func (m *Manager) RevokeToken(ctx context.Context, tokenID string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for hash, ts := range m.byHash {
		if ts.ID != tokenID {
			continue
		}
		if ts.revoked.Load() {
			return nil // already revoked; idempotent
		}
		ts.revoked.Store(true)
		ts.Revoked = true
		if err := m.store.UpdateCtx(ctx, TokensTable, tokenToRow(ts.Token, hash)); err != nil {
			ts.revoked.Store(false)
			ts.Revoked = false
			return err
		}
		m.recordAdmin(ctx, "tenant.token_revoke", ts.Token.Namespace, "", fmt.Sprintf("token %s (%s)", ts.ID, ts.Name))
		return nil
	}
	return fmt.Errorf("%w: token %q", ErrNotFound, tokenID)
}

// Tokens lists a namespace's tokens (no secrets), sorted by creation.
func (m *Manager) Tokens(namespace string) []Token {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []Token
	for _, ts := range m.byHash {
		if ts.Token.Namespace == namespace {
			out = append(out, ts.Token)
		}
	}
	sortTokens(out)
	return out
}

// TokenCount reports how many unrevoked tokens exist across all
// namespaces — the bootstrap check.
func (m *Manager) TokenCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for _, ts := range m.byHash {
		if !ts.revoked.Load() {
			n++
		}
	}
	return n
}

// Resolve authenticates a raw secret. The steady-state path is one cache
// load and the revocation-flag check; the first sighting of each secret
// pays one SHA-256.
func (m *Manager) Resolve(secret string) (Identity, bool) {
	ts, ok := m.resolveState(secret)
	if !ok {
		return Identity{}, false
	}
	return ts.id, true
}

func (m *Manager) resolveState(secret string) (*tokenState, bool) {
	if secret == "" {
		return nil, false
	}
	if v, ok := m.cache.Load(secret); ok {
		ts := v.(*tokenState)
		if ts.revoked.Load() {
			return nil, false
		}
		return ts, true
	}
	hash := HashSecret(secret)
	m.mu.RLock()
	ts, ok := m.byHash[hash]
	m.mu.RUnlock()
	if !ok {
		return nil, false
	}
	m.cache.Store(strings.Clone(secret), ts)
	if ts.revoked.Load() {
		return nil, false
	}
	return ts, true
}

// HashSecret is the persisted form of a token secret.
func HashSecret(secret string) string {
	sum := sha256.Sum256([]byte(secret))
	return hex.EncodeToString(sum[:])
}

// --- quota accounting ---

// ReserveModel charges one model slot to a namespace, rejecting with
// ErrModelQuota when the namespace is at its bound. Callers release on
// downstream failure so a rejected registration does not leak quota.
func (m *Manager) ReserveModel(ctx context.Context, namespace string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.namespaces[namespace]
	if !ok {
		return fmt.Errorf("%w: namespace %q", ErrNotFound, namespace)
	}
	if st.MaxModels > 0 && st.usage.Models+1 > st.MaxModels {
		m.cQuotaDenied.Inc()
		return fmt.Errorf("%w: namespace %q at %d/%d models", ErrModelQuota, namespace, st.usage.Models, st.MaxModels)
	}
	st.usage.Models++
	m.persistUsageLocked(ctx, st)
	return nil
}

// ReleaseModel returns a model slot (registration failed downstream, or a
// model was deleted).
func (m *Manager) ReleaseModel(ctx context.Context, namespace string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.namespaces[namespace]; ok && st.usage.Models > 0 {
		st.usage.Models--
		m.persistUsageLocked(ctx, st)
	}
}

// ReserveBlob charges n blob bytes to a namespace, rejecting with
// ErrBlobQuota when the write would exceed the bound. The reservation is
// taken before the blob-first write begins and released if it fails, so
// concurrent uploads cannot jointly overshoot the quota.
func (m *Manager) ReserveBlob(ctx context.Context, namespace string, n int64) error {
	if n < 0 {
		return fmt.Errorf("%w: negative blob size", ErrBadSpec)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.namespaces[namespace]
	if !ok {
		return fmt.Errorf("%w: namespace %q", ErrNotFound, namespace)
	}
	if st.MaxBlobBytes > 0 && st.usage.BlobBytes+n > st.MaxBlobBytes {
		m.cQuotaDenied.Inc()
		return fmt.Errorf("%w: namespace %q at %d/%d blob bytes (+%d)", ErrBlobQuota,
			namespace, st.usage.BlobBytes, st.MaxBlobBytes, n)
	}
	st.usage.BlobBytes += n
	m.persistUsageLocked(ctx, st)
	return nil
}

// ReleaseBlob returns n reserved blob bytes after a failed upload.
func (m *Manager) ReleaseBlob(ctx context.Context, namespace string, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.namespaces[namespace]; ok {
		st.usage.BlobBytes -= n
		if st.usage.BlobBytes < 0 {
			st.usage.BlobBytes = 0
		}
		m.persistUsageLocked(ctx, st)
	}
}

// persistUsageLocked writes a namespace's usage row through the WAL.
// Usage is advisory accounting, so a persist failure is counted, not
// fatal: the in-memory counters stay authoritative for this process.
func (m *Manager) persistUsageLocked(ctx context.Context, st *nsState) {
	if err := m.store.UpdateCtx(ctx, UsageTable, usageToRow(st.Name, st.usage)); err != nil {
		m.cUsageErrs.Inc()
	}
}

// --- audit plumbing ---

// recordAdmin writes a control-plane mutation to the audit trail.
func (m *Manager) recordAdmin(ctx context.Context, action, namespace, before, after string) {
	if m.aud == nil {
		return
	}
	_ = m.aud.Record(ctx, audit.Event{
		Action:     action,
		EntityType: audit.EntityNamespace,
		EntityID:   namespace,
		Before:     before,
		After:      after,
	})
}

// --- sorting (insertion sorts: the inputs are tiny) ---

func sortNamespaces(ns []Namespace) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j].Name < ns[j-1].Name; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

func sortTokens(ts []Token) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Created.Before(ts[j-1].Created); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// --- schemas and row conversion ---

func namespacesSchema() relstore.Schema {
	return relstore.Schema{
		Table: NamespacesTable,
		Columns: []relstore.Column{
			{Name: "name", Kind: relstore.KindString},
			{Name: "max_models", Kind: relstore.KindInt},
			{Name: "max_blob_bytes", Kind: relstore.KindInt},
			{Name: "rate_per_sec", Kind: relstore.KindFloat},
			{Name: "burst", Kind: relstore.KindInt},
			{Name: "created", Kind: relstore.KindTime},
		},
		Key: "name",
	}
}

func tokensSchema() relstore.Schema {
	return relstore.Schema{
		Table: TokensTable,
		Columns: []relstore.Column{
			{Name: "id", Kind: relstore.KindString},
			{Name: "hash", Kind: relstore.KindString},
			{Name: "name", Kind: relstore.KindString},
			{Name: "namespace", Kind: relstore.KindString},
			{Name: "role", Kind: relstore.KindString},
			{Name: "created", Kind: relstore.KindTime},
			{Name: "revoked", Kind: relstore.KindBool},
		},
		Key:     "id",
		Indexes: []string{"namespace", "hash"},
	}
}

func usageSchema() relstore.Schema {
	return relstore.Schema{
		Table: UsageTable,
		Columns: []relstore.Column{
			{Name: "namespace", Kind: relstore.KindString},
			{Name: "models", Kind: relstore.KindInt},
			{Name: "blob_bytes", Kind: relstore.KindInt},
		},
		Key: "namespace",
	}
}

func namespaceToRow(ns Namespace) relstore.Row {
	return relstore.Row{
		"name":           relstore.String(ns.Name),
		"max_models":     relstore.Int(ns.MaxModels),
		"max_blob_bytes": relstore.Int(ns.MaxBlobBytes),
		"rate_per_sec":   relstore.Float(ns.RatePerSec),
		"burst":          relstore.Int(ns.Burst),
		"created":        relstore.Time(ns.Created),
	}
}

func rowToNamespace(r relstore.Row) Namespace {
	return Namespace{
		Name:         r["name"].Str,
		MaxModels:    r["max_models"].Int,
		MaxBlobBytes: r["max_blob_bytes"].Int,
		RatePerSec:   r["rate_per_sec"].Float,
		Burst:        r["burst"].Int,
		Created:      r["created"].Time,
	}
}

func tokenToRow(t Token, hash string) relstore.Row {
	return relstore.Row{
		"id":        relstore.String(t.ID),
		"hash":      relstore.String(hash),
		"name":      relstore.String(t.Name),
		"namespace": relstore.String(t.Namespace),
		"role":      relstore.String(t.Role.String()),
		"created":   relstore.Time(t.Created),
		"revoked":   relstore.Bool(t.Revoked),
	}
}

func rowToToken(r relstore.Row) (Token, string) {
	role, err := ParseRole(r["role"].Str)
	if err != nil {
		role = RoleReader // unknown persisted role degrades to least privilege
	}
	return Token{
		ID:        r["id"].Str,
		Name:      r["name"].Str,
		Namespace: r["namespace"].Str,
		Role:      role,
		Created:   r["created"].Time,
		Revoked:   r["revoked"].Bool,
	}, r["hash"].Str
}

func usageToRow(namespace string, u Usage) relstore.Row {
	return relstore.Row{
		"namespace":  relstore.String(namespace),
		"models":     relstore.Int(u.Models),
		"blob_bytes": relstore.Int(u.BlobBytes),
	}
}
