package tenant

import (
	"context"
	"net/http"
	"strings"

	"gallery/internal/audit"
	"gallery/internal/obs/httpmw"
)

// Authorize is the httpmw.Authorizer both daemons mount when auth is on.
// The pipeline per request: bearer token → identity (401 without one) →
// namespace rate limit (429 + Retry-After) → role check against the
// route class (403, audited) → admit. Read-class requests admit with no
// context mutation at all, which is what keeps the authed predict path
// at zero extra allocations.
func (m *Manager) Authorize(r *http.Request) httpmw.Decision {
	// Liveness stays unauthenticated: load balancers probe it with no
	// credentials, and it leaks nothing.
	if r.Method == http.MethodGet && r.URL.Path == "/v1/healthz" {
		return httpmw.Decision{}
	}
	ts, ok := m.resolveState(BearerSecret(r))
	if !ok {
		m.cUnauthenticated.Inc()
		return httpmw.Decision{Status: http.StatusUnauthorized, Reason: "missing or invalid bearer token"}
	}
	if ok, retry := ts.ns.limiter.allow(m.clk.Now()); !ok {
		m.cRateLimited.Inc()
		secs := int((retry + 999_999_999) / 1_000_000_000) // ceil to whole seconds
		if secs < 1 {
			secs = 1
		}
		return httpmw.Decision{
			Status:     http.StatusTooManyRequests,
			Reason:     "namespace " + ts.id.Namespace + " rate limit exceeded",
			RetryAfter: secs,
		}
	}
	need, mutation := Classify(r.Method, r.URL.Path)
	if ts.id.Role < need {
		m.cForbidden.Inc()
		m.recordDenied(r, ts.id)
		return httpmw.Decision{
			Status: http.StatusForbidden,
			Reason: ts.id.Role.String() + " token cannot " + r.Method + " " + r.URL.Path,
		}
	}
	if mutation {
		// A self-declared actor header is meaningless under auth: the
		// verified identity wins, and we count the attempt so operators can
		// find clients still sending it.
		if r.Header.Get("X-Gallery-Actor") != "" {
			m.cActorIgnored.Inc()
		}
		return httpmw.Decision{Actor: ts.id.Actor}
	}
	return httpmw.Decision{}
}

// BearerSecret extracts the token secret from an Authorization header,
// allocation-free ("Bearer <secret>"; empty when absent or malformed).
func BearerSecret(r *http.Request) string {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) > len(prefix) && h[:len(prefix)] == prefix {
		return h[len(prefix):]
	}
	return ""
}

// NamespaceOf resolves a request to its tenant namespace, or "" for
// unauthenticated callers. It is the httpmw TenantOf hook behind the
// per-tenant RED vectors: one sync.Map load, no allocation, safe on the
// predict hot path.
func (m *Manager) NamespaceOf(r *http.Request) string {
	ts, ok := m.resolveState(BearerSecret(r))
	if !ok {
		return ""
	}
	return ts.id.Namespace
}

// ResolveRequest authenticates a request's bearer token for handlers
// that need the caller's identity (quota charging, tenant admin scope).
// It re-reads the secret cache, so it costs one sync.Map load.
func (m *Manager) ResolveRequest(r *http.Request) (Identity, bool) {
	return m.Resolve(BearerSecret(r))
}

// Classify maps a route onto the least role that may call it and whether
// it mutates state (mutations get the verified actor stamped into the
// request context for the audit trail). Exported so each daemon's tests
// can assert every route it registers against this table — a new route
// that nobody classified explicitly lands in the publisher mutation
// class, the safe default: it can only be *downgraded* to reader by an
// explicit case here.
//
// Role matrix:
//
//	reader     all GETs; predict, search, drift/skew analyses, fleet health
//	publisher  model/instance lifecycle: register, evolve, deprecate,
//	           upload, promote, deps, metrics, health ingest, audit/trace
//	           ingest, profile-summary ingest
//	operator   rules (commit/select) and /v1/tenants administration
func Classify(method, path string) (need Role, mutation bool) {
	if method == http.MethodGet || method == http.MethodHead {
		// Token listings expose credential metadata; managing tenants —
		// even reading them — is operator work.
		if isTenantAdminPath(path) {
			return RoleOperator, false
		}
		return RoleReader, false
	}
	switch {
	case strings.HasPrefix(path, "/v1/predict/"),
		path == "/v1/search",
		path == "/v1/health/fleet",
		isInstanceAnalysisPath(path):
		// POST-shaped queries: they compute, they don't mutate.
		return RoleReader, false
	case isTenantAdminPath(path),
		isSLOAdminPath(path),
		path == "/v1/incidents",
		path == "/v1/rules",
		strings.HasPrefix(path, "/v1/rules/"):
		// Triggering an incident capture allocates blobstore space and
		// freezes diagnostic state — operator work, like declaring SLOs.
		return RoleOperator, true
	}
	return RolePublisher, true
}

// isSLOAdminPath matches /v1/slo and its subtree — and nothing else.
// Declaring or deleting objectives changes what pages people, so writes
// are operator work; GET /v1/slo[/status] stays in the reader class via
// the method check above.
func isSLOAdminPath(path string) bool {
	return path == "/v1/slo" || strings.HasPrefix(path, "/v1/slo/")
}

// isTenantAdminPath matches /v1/tenants and its subtree — and nothing
// else: a sibling route like /v1/tenantsfoo must not inherit the
// operator class.
func isTenantAdminPath(path string) bool {
	return path == "/v1/tenants" || strings.HasPrefix(path, "/v1/tenants/")
}

// isInstanceAnalysisPath matches exactly /v1/instances/{id}/drift and
// /v1/instances/{id}/skew. The full shape is required — a future route
// that merely *ends* in "/drift" must not silently drop to the reader
// class.
func isInstanceAnalysisPath(path string) bool {
	rest, ok := strings.CutPrefix(path, "/v1/instances/")
	if !ok {
		return false
	}
	i := strings.IndexByte(rest, '/')
	if i <= 0 {
		return false
	}
	tail := rest[i+1:]
	return tail == "drift" || tail == "skew"
}

// recordDenied emits the authz-denial audit event: who was refused what.
func (m *Manager) recordDenied(r *http.Request, id Identity) {
	if m.aud == nil {
		return
	}
	_ = m.aud.Record(context.Background(), audit.Event{
		Actor:      id.Actor,
		Action:     audit.ActionAuthDenied,
		EntityType: audit.EntityNamespace,
		EntityID:   id.Namespace,
		Detail:     r.Method + " " + r.URL.Path + " (role " + id.Role.String() + ")",
	})
}
