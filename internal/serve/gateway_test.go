package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gallery/internal/api"
	"gallery/internal/forecast"
	"gallery/internal/obs"
)

// fakeSource is an in-memory Gallery: per-model production pointers plus
// instance blobs, with call counts and fault injection.
type fakeSource struct {
	mu       sync.Mutex
	versions map[string]api.VersionRecord
	blobs    map[string][]byte

	versionCalls atomic.Int64
	blobCalls    atomic.Int64
	loadDelay    time.Duration
	fail         atomic.Bool
}

var errSourceDown = errors.New("fake gallery unreachable")

func newFakeSource() *fakeSource {
	return &fakeSource{
		versions: make(map[string]api.VersionRecord),
		blobs:    make(map[string][]byte),
	}
}

// promote installs learner as the production instance of modelID, minting
// version "1.<minor>".
func (s *fakeSource) promote(t testing.TB, modelID string, minor int, learner forecast.Model) api.VersionRecord {
	t.Helper()
	blob, err := forecast.Encode(learner)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	instID := fmt.Sprintf("inst-%s-%d", modelID, minor)
	v := api.VersionRecord{
		ID:         fmt.Sprintf("ver-%s-%d", modelID, minor),
		ModelID:    modelID,
		Major:      1,
		Minor:      minor,
		Version:    fmt.Sprintf("1.%d", minor),
		InstanceID: instID,
		Production: true,
	}
	s.mu.Lock()
	s.versions[modelID] = v
	s.blobs[instID] = blob
	s.mu.Unlock()
	return v
}

func (s *fakeSource) ProductionVersion(modelID string) (api.VersionRecord, error) {
	s.versionCalls.Add(1)
	if s.loadDelay > 0 {
		time.Sleep(s.loadDelay)
	}
	if s.fail.Load() {
		return api.VersionRecord{}, errSourceDown
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.versions[modelID]
	if !ok {
		return api.VersionRecord{}, fmt.Errorf("model %s not found", modelID)
	}
	return v, nil
}

func (s *fakeSource) FetchBlob(instanceID string) ([]byte, error) {
	s.blobCalls.Add(1)
	if s.fail.Load() {
		return nil, errSourceDown
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[instanceID]
	if !ok {
		return nil, fmt.Errorf("instance %s not found", instanceID)
	}
	return b, nil
}

// newTestGateway builds a gateway with the refresh loop disabled (tests
// call RefreshAll themselves) and an isolated metric registry.
func newTestGateway(t *testing.T, src Source, opts Options) *Gateway {
	t.Helper()
	opts.RefreshInterval = -1
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	g := New(src, opts)
	t.Cleanup(g.Close)
	return g
}

func TestPredictLoadsAndServes(t *testing.T) {
	src := newFakeSource()
	v := src.promote(t, "m1", 0, &forecast.Heuristic{K: 2})
	g := newTestGateway(t, src, Options{})

	resp, err := g.Predict("m1", forecast.Context{History: []float64{1, 3}})
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	if resp.Value != 2 { // mean of last 2
		t.Fatalf("value = %v, want 2", resp.Value)
	}
	if resp.VersionID != v.ID || resp.InstanceID != v.InstanceID || resp.Version != "1.0" {
		t.Fatalf("identity = %+v, want version %s instance %s", resp, v.ID, v.InstanceID)
	}
	if resp.Stale {
		t.Fatal("fresh prediction reported stale")
	}

	st := g.Status()
	if len(st) != 1 || st[0].ModelID != "m1" || st[0].Swaps != 0 {
		t.Fatalf("status = %+v", st)
	}
}

func TestUnknownModelFails(t *testing.T) {
	g := newTestGateway(t, newFakeSource(), Options{})
	if _, err := g.Predict("ghost", forecast.Context{History: []float64{1}}); err == nil {
		t.Fatal("predicting an unknown model succeeded")
	}
	if st := g.Status(); len(st) != 0 {
		t.Fatalf("failed load left a slot behind: %+v", st)
	}
}

func TestSingleflightLoad(t *testing.T) {
	src := newFakeSource()
	src.promote(t, "m1", 0, &forecast.Heuristic{K: 1})
	src.loadDelay = 20 * time.Millisecond
	g := newTestGateway(t, src, Options{})

	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = g.Predict("m1", forecast.Context{History: []float64{7}})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	if got := src.blobCalls.Load(); got != 1 {
		t.Fatalf("cold burst fetched the blob %d times, want 1", got)
	}
}

func TestLoadFailureIsRetriedLater(t *testing.T) {
	src := newFakeSource()
	src.promote(t, "m1", 0, &forecast.Heuristic{K: 1})
	src.fail.Store(true)
	g := newTestGateway(t, src, Options{})

	if _, err := g.Predict("m1", forecast.Context{History: []float64{1}}); err == nil {
		t.Fatal("predict with the source down succeeded")
	}
	src.fail.Store(false)
	if _, err := g.Predict("m1", forecast.Context{History: []float64{1}}); err != nil {
		t.Fatalf("predict after recovery: %v", err)
	}
}

func TestLRUEviction(t *testing.T) {
	src := newFakeSource()
	for i := 1; i <= 3; i++ {
		src.promote(t, fmt.Sprintf("m%d", i), 0, &forecast.Heuristic{K: 1})
	}
	g := newTestGateway(t, src, Options{MaxModels: 2})

	for i := 1; i <= 3; i++ {
		if _, err := g.Predict(fmt.Sprintf("m%d", i), forecast.Context{History: []float64{1}}); err != nil {
			t.Fatalf("predict m%d: %v", i, err)
		}
	}
	st := g.Status()
	if len(st) != 2 {
		t.Fatalf("loaded %d models, want 2 after eviction", len(st))
	}
	for _, m := range st {
		if m.ModelID == "m1" {
			t.Fatal("least recently used model m1 survived eviction")
		}
	}

	// Touching m2 before loading a fourth keeps it resident.
	if _, err := g.Predict("m2", forecast.Context{History: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	blobsBefore := src.blobCalls.Load()
	if _, err := g.Predict("m1", forecast.Context{History: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if src.blobCalls.Load() != blobsBefore+1 {
		t.Fatal("evicted model was not reloaded")
	}
	for _, m := range g.Status() {
		if m.ModelID == "m3" {
			t.Fatal("m3 should have been evicted (m2 was more recently used)")
		}
	}
}

func TestHotSwapOnPromotion(t *testing.T) {
	src := newFakeSource()
	src.promote(t, "m1", 0, &forecast.Heuristic{K: 1}) // serves last value
	g := newTestGateway(t, src, Options{})

	hist := forecast.Context{History: []float64{10, 20}}
	resp, err := g.Predict("m1", hist)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Value != 20 || resp.Version != "1.0" {
		t.Fatalf("before swap: %+v", resp)
	}

	src.promote(t, "m1", 1, &forecast.Heuristic{K: 2}) // serves mean of last 2
	g.RefreshAll()

	resp, err = g.Predict("m1", hist)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Value != 15 || resp.Version != "1.1" {
		t.Fatalf("after swap: %+v", resp)
	}
	st := g.Status()
	if len(st) != 1 || st[0].Swaps != 1 {
		t.Fatalf("status after swap: %+v", st)
	}

	// Refresh with an unchanged pointer must not swap again.
	g.RefreshAll()
	if st := g.Status(); st[0].Swaps != 1 {
		t.Fatalf("no-op refresh swapped: %+v", st)
	}
}

func TestStaleDegradation(t *testing.T) {
	src := newFakeSource()
	src.promote(t, "m1", 0, &forecast.Heuristic{K: 1})
	reg := obs.NewRegistry()
	g := newTestGateway(t, src, Options{Obs: reg})

	if _, err := g.Predict("m1", forecast.Context{History: []float64{5}}); err != nil {
		t.Fatal(err)
	}

	src.fail.Store(true)
	g.RefreshAll()
	resp, err := g.Predict("m1", forecast.Context{History: []float64{5}})
	if err != nil {
		t.Fatalf("predict with the source down: %v", err)
	}
	if !resp.Stale || resp.Value != 5 {
		t.Fatalf("degraded response = %+v, want stale last-known-good", resp)
	}
	if st := g.Status(); !st[0].Stale {
		t.Fatalf("status does not report staleness: %+v", st)
	}
	if got := reg.Counter("serve_stale_predictions_total").Value(); got != 1 {
		t.Fatalf("stale counter = %v, want 1", got)
	}

	// Recovery clears the flag.
	src.fail.Store(false)
	g.RefreshAll()
	resp, err = g.Predict("m1", forecast.Context{History: []float64{5}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stale {
		t.Fatal("response still stale after recovery")
	}
}

func TestBatchingCorrectness(t *testing.T) {
	src := newFakeSource()
	src.promote(t, "m1", 0, &forecast.Heuristic{K: 1})
	g := newTestGateway(t, src, Options{MaxBatch: 8, BatchWorkers: 2})

	const n = 64
	var wg sync.WaitGroup
	var bad atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := float64(i)
			resp, err := g.Predict("m1", forecast.Context{History: []float64{want}})
			if err != nil || resp.Value != want {
				bad.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d of %d batched predictions wrong", bad.Load(), n)
	}
}

func TestPredictAfterClose(t *testing.T) {
	src := newFakeSource()
	src.promote(t, "m1", 0, &forecast.Heuristic{K: 1})
	g := New(src, Options{RefreshInterval: -1, Obs: obs.NewRegistry()})
	g.Close()
	if _, err := g.Predict("m1", forecast.Context{History: []float64{1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
