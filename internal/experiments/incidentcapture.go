package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"gallery/internal/api"
	"gallery/internal/benchfmt"
	"gallery/internal/blobstore"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/dal"
	"gallery/internal/forecast"
	"gallery/internal/incident"
	"gallery/internal/obs"
	"gallery/internal/obs/httpmw"
	obslog "gallery/internal/obs/log"
	"gallery/internal/obs/trace"
	"gallery/internal/relstore"
	"gallery/internal/serve"
	"gallery/internal/slo"
	"gallery/internal/tenant"
	"gallery/internal/uuid"
	"gallery/internal/wal"
)

// IncidentCaptureResult is E24: the incident flight recorder end to end.
// A disk-backed registry daemon and an HTTP serving gateway run side by
// side; a blob-store fault turns one tenant's traffic into persistent
// 502s, a fan of availability objectives on that namespace all trip, and
// the burn storm hits the recorder. The claims under test:
//
//  1. Debounce — ≥5 burn events land on one scope but exactly one bundle
//     is persisted; the rest are suppressed and counted.
//  2. Cross-process capture — the bundle carries non-empty metric, trace
//     and log sections from BOTH daemons (the gateway's half pulled over
//     real HTTP via GET /v1/debug/bundle) plus the SLO verdicts.
//  3. Durability — after the daemon "restarts" (stores closed and
//     reopened from the WAL and blob dir), the bundle is still listable
//     and fetchable with its sections intact.
//  4. Cost — the predict hot path measures the same allocs/op with the
//     recorder armed as without it: an idle recorder is free.
type IncidentCaptureResult struct {
	HealthyTicks int
	DetectTicks  int // outage ticks until the 5th burn event

	BurnEvents int   // slo.burn triggers that reached the recorder
	Captures   int64 // bundles persisted (want exactly 1)
	Suppressed int64 // burn triggers eaten by the debounce
	Errors     int64 // failed captures (want 0)

	BundleBytes   int64
	BundlePartial bool

	RestartOK bool // bundle listable + sections intact after reopen

	AllocOps            int
	OffAllocs, OnAllocs float64
	OffP50, OnP50       time.Duration
}

// RecorderExtraAllocs is the hot-path claim: allocations per predict
// request added by arming the flight recorder.
func (r *IncidentCaptureResult) RecorderExtraAllocs() float64 { return r.OnAllocs - r.OffAllocs }

// Format renders E24 as paper-style rows.
func (r *IncidentCaptureResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "incident flight recorder (tick=1s, debounce=5m, 5 objectives on one namespace):\n")
	fmt.Fprintf(&b, "  burn storm: %d slo.burn events within %d outage ticks\n", r.BurnEvents, r.DetectTicks)
	fmt.Fprintf(&b, "  debounce: %d bundle(s) persisted, %d suppressed, %d errors\n",
		r.Captures, r.Suppressed, r.Errors)
	fmt.Fprintf(&b, "  bundle: %d bytes, partial=%v, both daemons' metrics/traces/logs + SLO verdicts present\n",
		r.BundleBytes, r.BundlePartial)
	fmt.Fprintf(&b, "  durability: listable and intact after store reopen = %v\n", r.RestartOK)
	fmt.Fprintf(&b, "  predict hot path (%d ops): recorder off p50=%v allocs/op=%.1f; armed p50=%v allocs/op=%.1f (extra %+.1f)\n",
		r.AllocOps, r.OffP50.Round(time.Microsecond), r.OffAllocs,
		r.OnP50.Round(time.Microsecond), r.OnAllocs, r.RecorderExtraAllocs())
	return b.String()
}

// BenchMetrics emits BENCH_incidentcapture.json. Everything but the
// timing rows is deterministic counter arithmetic over seeded traffic,
// so the debounce and durability outcomes gate exactly.
func (r *IncidentCaptureResult) BenchMetrics() []benchfmt.Metric {
	partial := 0.0
	if r.BundlePartial {
		partial = 1
	}
	restart := 0.0
	if r.RestartOK {
		restart = 1
	}
	// Rounded so the healthy value snaps to benchfmt's zero-baseline
	// path: any run measuring ≥1 alloc/op of recorder cost fails.
	extra := math.Round(r.RecorderExtraAllocs())
	if extra <= 0 {
		extra = 0 // jitter below zero still means "free"; normalize -0
	}
	return []benchfmt.Metric{
		{Name: "burn_events", Unit: "events", Value: float64(r.BurnEvents), Better: benchfmt.HigherIsBetter, Tol: 0.01},
		{Name: "bundles_persisted", Unit: "bundles", Value: float64(r.Captures), Better: benchfmt.LowerIsBetter, Tol: 0.01},
		{Name: "captures_suppressed", Unit: "events", Value: float64(r.Suppressed), Better: benchfmt.HigherIsBetter, Tol: 0.01},
		{Name: "capture_errors", Value: float64(r.Errors), Better: benchfmt.LowerIsBetter, Tol: 0.01},
		{Name: "bundle_partial", Value: partial, Better: benchfmt.LowerIsBetter, Tol: 0.01},
		{Name: "bundle_survives_restart", Value: restart, Better: benchfmt.HigherIsBetter, Tol: 0.01},
		{Name: "predict_recorder_extra_allocs_per_op", Unit: "allocs/op", Value: extra, Better: benchfmt.LowerIsBetter, Tol: 0.5},
		{Name: "bundle_bytes", Unit: "B", Value: float64(r.BundleBytes), Better: benchfmt.Info},
		{Name: "predict_recorder_on_allocs_per_op", Unit: "allocs/op", Value: r.OnAllocs, Better: benchfmt.Info},
	}
}

// IncidentCapture runs E24 with n measured ops per predict-cost arm.
func IncidentCapture(n int) (*IncidentCaptureResult, error) {
	dir, err := os.MkdirTemp("", "gallery-e24-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	clk := clock.NewMock(epoch)
	var faults atomic.Bool
	hook := func(op blobstore.OpKind, replica int, key string) error {
		if faults.Load() && op == blobstore.OpGet {
			return fmt.Errorf("incidentcapture: injected blob fault")
		}
		return nil
	}
	walPath := filepath.Join(dir, "meta.wal")
	blobDir := filepath.Join(dir, "blobs")
	meta, err := relstore.Open(walPath, wal.Options{})
	if err != nil {
		return nil, err
	}
	defer meta.Close()
	blobs, err := blobstore.NewDisk(blobDir, blobstore.Options{Hook: hook})
	if err != nil {
		return nil, err
	}
	reg, err := core.New(meta, blobs, core.Options{Clock: clk, UUIDs: uuid.NewSeeded(71)})
	if err != nil {
		return nil, err
	}

	// Two served models in the victim tenant: the warm one stays resident,
	// the cold one is never loaded before the fault hits, so every predict
	// against it forces a blob fetch that fails — persistent 502s.
	promote := func(name string) (string, error) {
		m, err := reg.RegisterModel(core.ModelSpec{
			BaseVersionID: "e24_" + name, Project: "incidentcapture", Name: name,
		})
		if err != nil {
			return "", err
		}
		blob, err := forecast.Encode(&forecast.Heuristic{K: 2})
		if err != nil {
			return "", err
		}
		in, err := reg.UploadInstance(core.InstanceSpec{ModelID: m.ID, Name: name, City: "sf"}, blob)
		if err != nil {
			return "", err
		}
		if err := reg.PromoteInstance(in.ID); err != nil {
			return "", err
		}
		return m.ID.String(), nil
	}
	warmID, err := promote("victim-warm")
	if err != nil {
		return nil, err
	}
	coldID, err := promote("victim-cold")
	if err != nil {
		return nil, err
	}

	tm, err := tenant.Open(relstore.NewMemory(), tenant.Options{
		Clock: clk, UUIDs: uuid.NewSeeded(72), Obs: obs.NewRegistry(),
	})
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	tokens := map[string]string{}
	for _, ns := range []string{"victim", "bench"} {
		if err := tm.CreateNamespace(ctx, tenant.Namespace{Name: ns}); err != nil {
			return nil, err
		}
		secret, _, err := tm.MintToken(ctx, ns, ns+"-reader", tenant.RoleReader)
		if err != nil {
			return nil, err
		}
		tokens[ns] = secret
	}

	// The gateway process: its own registry, trace ring, and log ring —
	// exactly the state GET /v1/debug/bundle freezes. The observability
	// handler is mounted on a real listener so the recorder's pull is a
	// genuine cross-process HTTP round trip.
	gwObs := obs.NewRegistry()
	gwRing := obslog.NewRing(256)
	gwTracer := trace.New(trace.Options{Service: "galleryserve", Sampler: trace.Always(), Capacity: 128})
	gw := serve.New(regSource{reg}, serve.Options{RefreshInterval: -1, Obs: gwObs})
	defer gw.Close()
	hBench := serve.NewHandler(gw, serve.WithAuthorizer(tm))
	hObs := serve.NewHandler(gw,
		serve.WithAuthorizer(tm),
		serve.WithTracer(gwTracer),
		serve.WithLogRing(gwRing),
		serve.WithAccessLog(slog.New(obslog.NewHandler(gwRing, slog.LevelInfo, nil))),
	)
	gwTS := httptest.NewServer(hObs)
	defer gwTS.Close()

	payload, err := json.Marshal(api.PredictRequest{History: []float64{10, 12}})
	if err != nil {
		return nil, err
	}
	predict := func(h *serve.Handler, modelID, token string) int {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict/"+modelID, bytes.NewReader(payload))
		req.Header.Set("Authorization", "Bearer "+token)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}

	res := &IncidentCaptureResult{AllocOps: n}

	// --- cost arm, recorder off (bench namespace only) ---
	allocOp := func() error {
		if code := predict(hBench, warmID, tokens["bench"]); code != http.StatusOK {
			return fmt.Errorf("incidentcapture: predict status %d", code)
		}
		return nil
	}
	if res.OffP50, res.OffAllocs, err = measureHTTP(n, allocOp); err != nil {
		return nil, err
	}

	// --- the registry daemon's observability state + the recorder ---
	dObs := obs.NewRegistry()
	dRing := obslog.NewRing(256)
	dTracer := trace.New(trace.Options{Service: "galleryd", Sampler: trace.Always(), Capacity: 128})
	dLog := slog.New(obslog.NewHandler(dRing, slog.LevelInfo, nil))
	rec, err := incident.Open(reg.DAL(), incident.Config{
		Obs:          dObs,
		Tracer:       dTracer,
		Logs:         dRing,
		Audit:        reg.Audit(),
		Gateway:      gwTS.URL,
		GatewayToken: tokens["victim"],
		Keep:         8,
		Clock:        clk,
		UUIDs:        uuid.NewSeeded(73),
	})
	if err != nil {
		return nil, err
	}

	// Five availability objectives on the victim namespace: one outage,
	// five independent burn transitions, one debounce scope.
	red := httpmw.NewRED(gwObs)
	pred := serve.NewPredictRED(gwObs)
	svc, err := slo.Open(relstore.NewMemory(), slo.VecSource{
		Requests: red.Requests, Errors: red.Errors, Latency: red.Latency,
		ModelRequests: pred.Requests, ModelErrors: pred.Errors, ModelLatency: pred.Latency,
	}, slo.Config{
		Tick:      time.Second,
		FastShort: 5 * time.Second, FastLong: 60 * time.Second, FastBurn: 2,
		SlowShort: 30 * time.Second, SlowLong: 360 * time.Second, SlowBurn: 1.5,
		MinSamples: 10,
		Clock:      clk,
		UUIDs:      uuid.NewSeeded(74),
		Obs:        gwObs,
		Burns:      rec,
	})
	if err != nil {
		return nil, err
	}
	rec.BindSLO(svc)
	for _, target := range []float64{0.9, 0.95, 0.99, 0.995, 0.999} {
		if _, err := svc.Create(ctx, slo.Objective{
			Namespace: "victim", Kind: slo.KindAvailability, Target: target,
		}); err != nil {
			return nil, err
		}
	}

	cCaptures := dObs.Counter("incident_captures_total")
	cSuppressed := dObs.Counter("incident_suppressed_total")
	cErrors := dObs.Counter("incident_errors_total")

	// tick drives one evaluation interval: victim traffic, then an
	// evaluator pass traced and logged like the real daemon's.
	const reqs = 20
	tick := func(victimModel string, want int) error {
		for i := 0; i < reqs; i++ {
			if code := predict(hObs, victimModel, tokens["victim"]); code != want {
				return fmt.Errorf("incidentcapture: victim predict status %d, want %d", code, want)
			}
		}
		tctx, span := dTracer.StartRoot(ctx, "slo.evaluate", "")
		svc.Evaluate(tctx)
		span.End()
		dLog.Info("slo evaluated", "tick", clk.Now().Unix())
		clk.Advance(time.Second)
		return nil
	}

	// --- phase A: healthy baseline ---
	res.HealthyTicks = 90
	for t := 0; t < res.HealthyTicks; t++ {
		if err := tick(warmID, http.StatusOK); err != nil {
			return nil, err
		}
	}
	if got := cCaptures.Value() + cSuppressed.Value(); got != 0 {
		return nil, fmt.Errorf("incidentcapture: %d burn trigger(s) during the healthy baseline", got)
	}

	// --- phase B: outage → burn storm → one capture ---
	faults.Store(true)
	for t := 1; t <= 40; t++ {
		if err := tick(coldID, http.StatusBadGateway); err != nil {
			return nil, err
		}
		if cCaptures.Value()+cSuppressed.Value() >= 5 {
			res.DetectTicks = t
			break
		}
	}
	faults.Store(false)
	res.Captures = cCaptures.Value()
	res.Suppressed = cSuppressed.Value()
	res.Errors = cErrors.Value()
	res.BurnEvents = int(res.Captures + res.Suppressed)
	if res.DetectTicks == 0 {
		return nil, fmt.Errorf("incidentcapture: only %d burn events in 40 outage ticks, want >= 5", res.BurnEvents)
	}
	if res.Captures != 1 {
		return nil, fmt.Errorf("incidentcapture: %d bundles persisted for one scope, want exactly 1 (debounce)", res.Captures)
	}
	if res.Errors != 0 {
		return nil, fmt.Errorf("incidentcapture: %d capture error(s)", res.Errors)
	}

	// --- the bundle: both daemons' sections, over-the-wire gateway half ---
	incs, err := rec.List("victim")
	if err != nil {
		return nil, err
	}
	if len(incs) != 1 {
		return nil, fmt.Errorf("incidentcapture: List(victim) = %d incidents, want 1", len(incs))
	}
	checkBundle := func(inc api.Incident, b api.IncidentBundle) error {
		if inc.Partial || b.GatewayError != "" {
			return fmt.Errorf("incidentcapture: bundle partial (%q) with a live gateway", b.GatewayError)
		}
		if len(b.Registry.Metrics) == 0 || b.Registry.MetricsProm == "" {
			return fmt.Errorf("incidentcapture: registry metrics section empty")
		}
		if !bytes.Contains(b.Registry.Traces, []byte("slo.evaluate")) {
			return fmt.Errorf("incidentcapture: registry trace tail missing the evaluator span")
		}
		if len(b.Registry.Logs) == 0 {
			return fmt.Errorf("incidentcapture: registry log tail empty")
		}
		if b.Gateway == nil {
			return fmt.Errorf("incidentcapture: gateway snapshot missing")
		}
		if len(b.Gateway.Metrics) == 0 || !strings.Contains(b.Gateway.MetricsProm, "serve_predictions_total") {
			return fmt.Errorf("incidentcapture: gateway metrics section empty")
		}
		if !bytes.Contains(b.Gateway.Traces, []byte("POST /v1/predict")) {
			return fmt.Errorf("incidentcapture: gateway trace tail missing predict spans")
		}
		if len(b.Gateway.Logs) == 0 {
			return fmt.Errorf("incidentcapture: gateway log tail empty")
		}
		if b.Gateway.Build.GoVersion == "" || b.Registry.Build.GoVersion == "" {
			return fmt.Errorf("incidentcapture: build info not stamped")
		}
		if len(b.SLO) == 0 {
			return fmt.Errorf("incidentcapture: SLO verdict section empty")
		}
		return nil
	}
	inc, bundle, err := rec.Get(ctx, incs[0].ID)
	if err != nil {
		return nil, err
	}
	if err := checkBundle(inc, bundle); err != nil {
		return nil, err
	}
	res.BundleBytes = inc.Size
	res.BundlePartial = inc.Partial

	// --- cost arm, recorder armed and steady (one capture behind it) ---
	if res.OnP50, res.OnAllocs, err = measureHTTP(n, allocOp); err != nil {
		return nil, err
	}

	// --- phase C: "restart" — reopen the stores, replay the WAL ---
	if err := meta.Close(); err != nil {
		return nil, err
	}
	meta2, err := relstore.Open(walPath, wal.Options{})
	if err != nil {
		return nil, err
	}
	defer meta2.Close()
	blobs2, err := blobstore.NewDisk(blobDir, blobstore.Options{})
	if err != nil {
		return nil, err
	}
	rec2, err := incident.Open(dal.New(meta2, blobs2, dal.Options{Obs: obs.NewRegistry()}), incident.Config{
		Obs: obs.NewRegistry(), Clock: clk, UUIDs: uuid.NewSeeded(75),
	})
	if err != nil {
		return nil, err
	}
	incs2, err := rec2.List("victim")
	if err != nil {
		return nil, err
	}
	if len(incs2) != 1 || incs2[0].ID != incs[0].ID {
		return nil, fmt.Errorf("incidentcapture: post-restart List(victim) = %+v, want the captured bundle", incs2)
	}
	inc2, bundle2, err := rec2.Get(ctx, incs[0].ID)
	if err != nil {
		return nil, err
	}
	if err := checkBundle(inc2, bundle2); err != nil {
		return nil, fmt.Errorf("post-restart %w", err)
	}
	res.RestartOK = true
	return res, nil
}
