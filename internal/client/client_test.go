package client

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gallery/internal/api"
)

func TestAPIErrorFormatting(t *testing.T) {
	e := &APIError{Status: 404, Msg: "core: not found: model x"}
	if got := e.Error(); !strings.Contains(got, "404") || !strings.Contains(got, "not found") {
		t.Fatalf("Error() = %q", got)
	}
}

func TestErrorBodyDecoding(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		w.Write([]byte(`{"error":"core: dependency cycle"}`))
	}))
	defer ts.Close()
	c := New(ts.URL, ts.Client())
	err := c.AddDependency("a", "b")
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("err = %T %v", err, err)
	}
	if ae.Status != 409 || ae.Msg != "core: dependency cycle" {
		t.Fatalf("APIError = %+v", ae)
	}
}

func TestNonJSONErrorBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gateway exploded", http.StatusBadGateway)
	}))
	defer ts.Close()
	c := New(ts.URL, ts.Client())
	_, err := c.Stats()
	ae, ok := err.(*APIError)
	if !ok || ae.Status != 502 || !strings.Contains(ae.Msg, "gateway exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestConnectionRefused(t *testing.T) {
	c := New("http://127.0.0.1:1", nil) // port 1: nothing listens
	if _, err := c.Stats(); err == nil {
		t.Fatal("request to dead endpoint succeeded")
	}
}

func TestRequestBodiesEncoded(t *testing.T) {
	var gotPath, gotBody string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path
		buf := make([]byte, 4096)
		n, _ := r.Body.Read(buf)
		gotBody = string(buf[:n])
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte(`{"id":"00000000-0000-4000-8000-000000000000","base_version_id":"b","major":1,"created":"2019-06-01T00:00:00Z","deprecated":false}`))
	}))
	defer ts.Close()
	c := New(ts.URL, ts.Client())
	m, err := c.RegisterModel(api.RegisterModelRequest{BaseVersionID: "b", Project: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if gotPath != "/v1/models" {
		t.Fatalf("path = %q", gotPath)
	}
	if !strings.Contains(gotBody, `"base_version_id":"b"`) || !strings.Contains(gotBody, `"project":"p"`) {
		t.Fatalf("body = %q", gotBody)
	}
	if m.BaseVersionID != "b" {
		t.Fatalf("decoded model = %+v", m)
	}
}
