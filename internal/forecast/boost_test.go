package forecast

import (
	"math"
	"testing"
	"time"
)

func rushCity(seed int64) CityConfig {
	return CityConfig{
		Name: "rushville", Base: 500, DailyAmp: 60, WeeklyAmp: 20,
		RushAmp: 300, NoiseStd: 15, Seed: seed,
	}
}

func TestGBStumpsLearns(t *testing.T) {
	data := Generate(sampleCity(31), start, time.Hour, 24*60)
	trainN := 24 * 45
	gb := &GBStumps{Lags: 24}
	met, err := Backtest(gb, data, trainN)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Backtest(&Heuristic{K: 1}, data, trainN)
	if err != nil {
		t.Fatal(err)
	}
	if met.MAPE >= naive.MAPE {
		t.Fatalf("GB MAPE %.2f not better than naive %.2f", met.MAPE, naive.MAPE)
	}
	if met.R2 < 0.7 {
		t.Fatalf("GB R2 = %.3f", met.R2)
	}
}

// TestGBStumpsBeatsLinearOnRushHours: box-shaped commute peaks are
// threshold structure that harmonics cannot represent; the tree ensemble
// must win there at a multi-hour horizon where lag-following cannot
// compensate.
func TestGBStumpsBeatsLinearOnRushHours(t *testing.T) {
	data := Generate(rushCity(32), start, time.Hour, 24*60)
	trainN := 24 * 45
	gb := &GBStumps{Lags: 12, Horizon: 6, Rounds: 200}
	lin := &LinearAR{Lags: 12, Horizon: 6}
	gm, err := Backtest(gb, data, trainN)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := Backtest(lin, data, trainN)
	if err != nil {
		t.Fatal(err)
	}
	if gm.MAPE >= lm.MAPE {
		t.Fatalf("GB MAPE %.2f not better than linear %.2f on rush-hour city", gm.MAPE, lm.MAPE)
	}
}

func TestGBStumpsNeedsData(t *testing.T) {
	gb := &GBStumps{Lags: 24}
	short := Generate(sampleCity(33), start, time.Hour, 20)
	if err := gb.Train(short); err == nil {
		t.Fatal("training on 20 points accepted")
	}
}

func TestGBStumpsUntrainedFallback(t *testing.T) {
	gb := &GBStumps{Lags: 4}
	if got := gb.Forecast(Context{History: []float64{1, 2, 3, 9}}); got != 9 {
		t.Fatalf("untrained fallback = %v", got)
	}
	if got := gb.Forecast(Context{}); got != 0 {
		t.Fatalf("untrained empty = %v", got)
	}
}

func TestGBStumpsEncodeDecode(t *testing.T) {
	data := Generate(rushCity(34), start, time.Hour, 24*40)
	gb := &GBStumps{Lags: 12, Rounds: 50}
	if err := gb.Train(data[:24*39]); err != nil {
		t.Fatal(err)
	}
	ctx := Context{History: data.Values()[:24*39], Time: data[24*39].T}
	want := gb.Forecast(ctx)
	blob, err := Encode(gb)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != gb.Name() {
		t.Fatalf("name = %s", back.Name())
	}
	if got := back.Forecast(ctx); math.Abs(got-want) > 1e-9 {
		t.Fatalf("decoded forecast %v != %v", got, want)
	}
}

func TestGenerateRushHours(t *testing.T) {
	cfg := rushCity(35)
	cfg.NoiseStd, cfg.DailyAmp, cfg.WeeklyAmp = 0, 0, 0
	s := Generate(cfg, start, time.Hour, 24*7)
	for _, p := range s {
		h := p.T.Hour()
		weekend := p.T.Weekday() == time.Saturday || p.T.Weekday() == time.Sunday
		inRush := !weekend && ((h >= 7 && h <= 9) || (h >= 17 && h <= 19))
		want := 500.0
		if inRush {
			want = 800.0
		}
		if p.V != want {
			t.Fatalf("%v (hour %d, %v): demand %v, want %v", p.T, h, p.T.Weekday(), p.V, want)
		}
	}
}

func TestStumpApply(t *testing.T) {
	s := Stump{Feature: 1, Threshold: 5, Left: -1, Right: 2}
	if got := s.apply([]float64{0, 4}); got != -1 {
		t.Fatalf("left = %v", got)
	}
	if got := s.apply([]float64{0, 6}); got != 2 {
		t.Fatalf("right = %v", got)
	}
	if got := s.apply([]float64{0, 5}); got != -1 { // <= goes left
		t.Fatalf("boundary = %v", got)
	}
}
