// Package cache implements the size-bounded LRU byte cache that sits in
// Gallery's model read path.
//
// The paper's DAL serves model-instance blob reads through a cache updated
// on each fetch (§3.5: "The cache is updated with the requested blob and
// then is subsequently returned to the user"). Keys are blob locations;
// values are the blob bytes. Eviction is least-recently-used by total byte
// size, since instances range from a few KB to tens of GB and a count bound
// would be meaningless.
package cache

import (
	"container/list"
	"sync"
)

// Stats reports cache effectiveness.
type Stats struct {
	Hits, Misses, Evictions int64
	Bytes                   int64 // current resident bytes
	Entries                 int
}

type entry struct {
	key  string
	data []byte
}

// Cache is a byte-size-bounded LRU map. It is safe for concurrent use.
// A Cache with MaxBytes <= 0 stores nothing, which implements the
// cache-off arm of the DAL ablation.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recent
	items    map[string]*list.Element
	stats    Stats
}

// New returns a cache bounded to maxBytes of payload.
func New(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns a copy of the cached bytes for key and whether it was present.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.ll.MoveToFront(el)
	data := el.Value.(*entry).data
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, true
}

// Put inserts (or refreshes) key with a copy of data, evicting LRU entries
// to stay within the byte bound. Values larger than the whole cache are not
// stored at all: caching a single 10GB model must not flush everything else.
func (c *Cache) Put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes <= 0 || int64(len(data)) > c.maxBytes {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	if el, ok := c.items[key]; ok {
		old := el.Value.(*entry)
		c.bytes += int64(len(cp)) - int64(len(old.data))
		old.data = cp
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, data: cp})
		c.bytes += int64(len(cp))
	}
	for c.bytes > c.maxBytes {
		c.evictOldest()
	}
}

// Remove drops key if present, e.g. when a deprecated instance's blob is
// garbage-collected.
func (c *Cache) Remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.removeElement(el)
	}
}

func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	c.removeElement(el)
	c.stats.Evictions++
}

func (c *Cache) removeElement(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= int64(len(e.data))
}

// Stats returns a snapshot of counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Bytes = c.bytes
	st.Entries = len(c.items)
	return st
}
