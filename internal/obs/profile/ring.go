package profile

import (
	"sort"
	"sync"
	"time"
)

// Ring retains the most recent summaries per kind, bounded. It is the
// profiler's memory: the debug endpoint reads merged views from it and
// the incident recorder embeds its tail in bundles.
type Ring struct {
	mu     sync.Mutex
	keep   int
	byKind map[string][]Summary
}

// NewRing builds a ring keeping up to keep summaries per kind.
func NewRing(keep int) *Ring {
	if keep <= 0 {
		keep = DefaultKeep
	}
	return &Ring{keep: keep, byKind: make(map[string][]Summary)}
}

// Add appends one summary, evicting the oldest of its kind past the
// bound.
func (r *Ring) Add(s Summary) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ss := append(r.byKind[s.Kind], s)
	if len(ss) > r.keep {
		// Shift in place so the backing array stays bounded.
		n := copy(ss, ss[len(ss)-r.keep:])
		ss = ss[:n]
	}
	r.byKind[s.Kind] = ss
}

// Recent returns up to limit summaries of one kind, newest first.
// limit <= 0 means all retained.
func (r *Ring) Recent(kind string, limit int) []Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	ss := r.byKind[kind]
	if limit <= 0 || limit > len(ss) {
		limit = len(ss)
	}
	out := make([]Summary, 0, limit)
	for i := len(ss) - 1; i >= len(ss)-limit; i-- {
		out = append(out, ss[i])
	}
	return out
}

// Kinds lists the kinds with at least one retained summary, sorted.
func (r *Ring) Kinds() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.byKind))
	for k, ss := range r.byKind {
		if len(ss) > 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// History returns up to limit retained summaries across every kind,
// newest first — the pre-trigger tail an incident bundle embeds.
func (r *Ring) History(limit int) []Summary {
	r.mu.Lock()
	var all []Summary
	for _, ss := range r.byKind {
		all = append(all, ss...)
	}
	r.mu.Unlock()
	sort.SliceStable(all, func(i, j int) bool { return all[i].End.After(all[j].End) })
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all
}

// View folds the ring into one process's merged view. merge > 0
// restricts the fold to summaries ending within the last merge of now;
// 0 merges everything retained.
func (r *Ring) View(process string, merge time.Duration, topN int, now time.Time) ProcessView {
	pv := ProcessView{
		Process: process,
		Windows: make(map[string]int),
		Merged:  make(map[string]Summary),
	}
	cutoff := time.Time{}
	if merge > 0 {
		cutoff = now.Add(-merge)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for kind, ss := range r.byKind {
		in := make([]Summary, 0, len(ss))
		for _, s := range ss {
			if cutoff.IsZero() || !s.End.Before(cutoff) {
				in = append(in, s)
			}
		}
		if len(in) == 0 {
			continue
		}
		pv.Windows[kind] = len(in)
		pv.Merged[kind] = Merge(in, topN)
	}
	return pv
}

// Merge folds same-kind summaries across windows: per-function self and
// cum values sum, totals sum, and the result re-ranks to top-N with
// recomputed shares. Inputs are already top-N truncated, so merged
// shares are conservative — a function's tail contributions outside any
// window's top-N are lost to it but stay in Total. An empty input yields
// a zero Summary.
func Merge(ss []Summary, topN int) Summary {
	if len(ss) == 0 {
		return Summary{}
	}
	if topN <= 0 {
		topN = DefaultTopN
	}
	out := Summary{Kind: ss[0].Kind, Unit: ss[0].Unit, Start: ss[0].Start, End: ss[0].End}
	type agg struct{ self, cum int64 }
	byFunc := make(map[string]*agg)
	for _, s := range ss {
		if s.Start.Before(out.Start) {
			out.Start = s.Start
		}
		if s.End.After(out.End) {
			out.End = s.End
		}
		out.Total += s.Total
		out.Samples += s.Samples
		out.DurationNS += s.DurationNS
		for _, fn := range s.Top {
			a, ok := byFunc[fn.Name]
			if !ok {
				a = &agg{}
				byFunc[fn.Name] = a
			}
			a.self += fn.Self
			a.cum += fn.Cum
		}
	}
	top := make([]FuncStat, 0, len(byFunc))
	for name, a := range byFunc {
		top = append(top, FuncStat{Name: name, Self: a.self, Cum: a.cum})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].Self != top[j].Self {
			return top[i].Self > top[j].Self
		}
		if top[i].Cum != top[j].Cum {
			return top[i].Cum > top[j].Cum
		}
		return top[i].Name < top[j].Name
	})
	if len(top) > topN {
		top = top[:topN]
	}
	if out.Total > 0 {
		for i := range top {
			top[i].SelfShare = float64(top[i].Self) / float64(out.Total)
			top[i].CumShare = float64(top[i].Cum) / float64(out.Total)
		}
	}
	out.Top = top
	return out
}
