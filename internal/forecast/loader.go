package forecast

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
)

// Loader deserializes model blobs produced by Encode. It maps the kind
// string framed into each blob envelope to a factory for the concrete
// learner type, so new learner kinds can be registered by applications
// without touching this package — the serving gateway loads whatever kind
// a production instance happens to contain (model neutrality, §3.3.2,
// meets serving: the registry stores opaque bytes, the loader is the one
// place that knows how to wake them up).
type Loader struct {
	mu        sync.RWMutex
	factories map[string]func() Model
}

// NewLoader returns a loader pre-seeded with every built-in learner kind.
func NewLoader() *Loader {
	l := &Loader{factories: make(map[string]func() Model)}
	l.Register("*forecast.Heuristic", func() Model { return &Heuristic{} })
	l.Register("*forecast.EWMA", func() Model { return &EWMA{} })
	l.Register("*forecast.SeasonalNaive", func() Model { return &SeasonalNaive{} })
	l.Register("*forecast.LinearAR", func() Model { return &LinearAR{} })
	l.Register("*forecast.GBStumps", func() Model { return &GBStumps{} })
	return l
}

// DefaultLoader is the process-wide loader; Decode uses it. Applications
// with custom learners register them here (or build their own Loader).
var DefaultLoader = NewLoader()

// Register installs (or replaces) a factory for a kind string — the value
// Encode frames into the envelope, fmt.Sprintf("%T", m) for the built-ins.
func (l *Loader) Register(kind string, factory func() Model) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.factories[kind] = factory
}

// Kinds lists the registered kind strings, sorted.
func (l *Loader) Kinds() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.factories))
	for k := range l.factories {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Load deserializes a model blob produced by Encode into the registered
// concrete type.
func (l *Loader) Load(blob []byte) (Model, error) {
	var env blobEnvelope
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&env); err != nil {
		return nil, fmt.Errorf("forecast: decode envelope: %w", err)
	}
	l.mu.RLock()
	factory, ok := l.factories[env.Kind]
	l.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("forecast: unknown model kind %q", env.Kind)
	}
	m := factory()
	if err := gob.NewDecoder(bytes.NewReader(env.Data)).Decode(m); err != nil {
		return nil, fmt.Errorf("forecast: decode %s: %w", env.Kind, err)
	}
	return m, nil
}
