package core

import (
	"fmt"
	"math"

	"gallery/internal/uuid"
)

// This file implements Model Performance and Health (paper §3.6): the two
// metric categories Gallery defines — information completeness and
// cross-stage performance — and the two derived insights it highlights,
// model drift and production skew.

// CompletenessReport scores how reproducible an instance is from its
// stored metadata (paper §3.6 category one, §6.2 lessons on
// reproducibility).
type CompletenessReport struct {
	InstanceID uuid.UUID
	// Present lists reproducibility fields that are filled in.
	Present []string
	// Missing lists fields a production model should carry but doesn't.
	Missing []string
	// Score is len(Present) / (len(Present)+len(Missing)).
	Score float64
	// HasMetrics reports whether any performance metric was ever stored,
	// the other half of information completeness.
	HasMetrics bool
}

// Completeness audits an instance's reproducibility metadata.
func (g *Registry) Completeness(instanceID uuid.UUID) (*CompletenessReport, error) {
	in, err := g.GetInstance(instanceID)
	if err != nil {
		return nil, err
	}
	fields := []struct {
		name string
		ok   bool
	}{
		{"training_data", in.TrainingData != ""},
		{"framework", in.Framework != ""},
		{"code_pointer", in.CodePointer != ""},
		{"hyperparams", in.Hyperparams != ""},
		{"features", in.Features != ""},
		{"seed", in.Seed != 0},
		{"blob_location", in.BlobLocation != ""},
	}
	rep := &CompletenessReport{InstanceID: instanceID}
	for _, f := range fields {
		if f.ok {
			rep.Present = append(rep.Present, f.name)
		} else {
			rep.Missing = append(rep.Missing, f.name)
		}
	}
	rep.Score = float64(len(rep.Present)) / float64(len(fields))
	for _, scope := range []Scope{ScopeTraining, ScopeValidation, ScopeProduction} {
		vals, err := g.LatestMetrics(instanceID, scope)
		if err != nil {
			return nil, err
		}
		if len(vals) > 0 {
			rep.HasMetrics = true
			break
		}
	}
	return rep, nil
}

// DriftConfig tunes the drift detector. The detector compares the mean of
// the most recent Window production measurements of an error metric
// against the mean of the Baseline measurements before them; drift is
// declared when the recent mean exceeds the baseline mean by more than
// Threshold (relative).
type DriftConfig struct {
	Metric    string  // error metric to watch, e.g. "mape"
	Window    int     // recent window size (default 10)
	Baseline  int     // baseline window size (default 30)
	Threshold float64 // relative degradation, e.g. 0.25 = 25% worse (default 0.25)
}

func (c *DriftConfig) defaults() {
	if c.Window <= 0 {
		c.Window = 10
	}
	if c.Baseline <= 0 {
		c.Baseline = 30
	}
	if c.Threshold == 0 {
		c.Threshold = 0.25
	}
}

// DriftReport is the outcome of a drift check.
type DriftReport struct {
	InstanceID   uuid.UUID
	Metric       string
	BaselineMean float64
	RecentMean   float64
	// Degradation is (RecentMean - BaselineMean) / |BaselineMean|.
	Degradation float64
	Drifted     bool
	// Checked is false when there was not enough history to judge, so
	// callers can tell "no drift" apart from "no verdict" (mirrors
	// SkewReport.Checked).
	Checked bool
	// Samples is how many production measurements were available.
	Samples int
}

// CheckDrift evaluates the drift insight for one instance (paper §3.6):
// has the production error metric degraded materially versus its own
// history? A positive result is what triggers retraining through the rule
// engine.
func (g *Registry) CheckDrift(instanceID uuid.UUID, cfg DriftConfig) (*DriftReport, error) {
	if cfg.Metric == "" {
		return nil, fmt.Errorf("%w: drift check needs a metric name", ErrBadSpec)
	}
	if cfg.Threshold < 0 {
		return nil, fmt.Errorf("%w: drift threshold must not be negative, got %g",
			ErrBadSpec, cfg.Threshold)
	}
	cfg.defaults()
	series, err := g.MetricSeries(instanceID, cfg.Metric, ScopeProduction)
	if err != nil {
		return nil, err
	}
	rep := &DriftReport{InstanceID: instanceID, Metric: cfg.Metric, Samples: len(series)}
	if len(series) < cfg.Window+2 {
		return rep, nil // not enough history to judge; Checked stays false
	}
	rep.Checked = true
	split := len(series) - cfg.Window
	baseStart := split - cfg.Baseline
	if baseStart < 0 {
		baseStart = 0
	}
	rep.BaselineMean = meanOf(series[baseStart:split])
	rep.RecentMean = meanOf(series[split:])
	denom := math.Abs(rep.BaselineMean)
	if denom < 1e-12 {
		denom = 1e-12
	}
	rep.Degradation = (rep.RecentMean - rep.BaselineMean) / denom
	rep.Drifted = rep.Degradation > cfg.Threshold
	return rep, nil
}

// SkewConfig tunes production-skew detection: the relative gap between an
// instance's offline (validation, falling back to training) metric and its
// live production metric.
type SkewConfig struct {
	Metric    string
	Threshold float64 // relative gap, default 0.2
}

// SkewReport is the outcome of a skew check.
type SkewReport struct {
	InstanceID   uuid.UUID
	Metric       string
	OfflineScope Scope
	Offline      float64
	Production   float64
	// Gap is (Production - Offline) / |Offline|.
	Gap     float64
	Skewed  bool
	Checked bool // false when either side has no measurement
}

// CheckSkew evaluates production skew (paper §3.6): the difference between
// performance at training time and serving time, which flags serving bugs
// and train/serve data discrepancies.
func (g *Registry) CheckSkew(instanceID uuid.UUID, cfg SkewConfig) (*SkewReport, error) {
	if cfg.Metric == "" {
		return nil, fmt.Errorf("%w: skew check needs a metric name", ErrBadSpec)
	}
	if cfg.Threshold < 0 {
		return nil, fmt.Errorf("%w: skew threshold must not be negative, got %g",
			ErrBadSpec, cfg.Threshold)
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.2
	}
	rep := &SkewReport{InstanceID: instanceID, Metric: cfg.Metric}

	offline, scope, ok, err := g.offlineMetric(instanceID, cfg.Metric)
	if err != nil {
		return nil, err
	}
	if !ok {
		return rep, nil
	}
	prod, err := g.LatestMetrics(instanceID, ScopeProduction)
	if err != nil {
		return nil, err
	}
	pv, ok := prod[cfg.Metric]
	if !ok {
		return rep, nil
	}
	rep.Checked = true
	rep.OfflineScope = scope
	rep.Offline = offline
	rep.Production = pv
	denom := math.Abs(offline)
	if denom < 1e-12 {
		denom = 1e-12
	}
	rep.Gap = (pv - offline) / denom
	rep.Skewed = math.Abs(rep.Gap) > cfg.Threshold
	return rep, nil
}

func (g *Registry) offlineMetric(instanceID uuid.UUID, name string) (float64, Scope, bool, error) {
	for _, scope := range []Scope{ScopeValidation, ScopeTraining} {
		vals, err := g.LatestMetrics(instanceID, scope)
		if err != nil {
			return 0, "", false, err
		}
		if v, ok := vals[name]; ok {
			return v, scope, true, nil
		}
	}
	return 0, "", false, nil
}

func meanOf(ms []*Metric) float64 {
	if len(ms) == 0 {
		return 0
	}
	var sum float64
	for _, m := range ms {
		sum += m.Value
	}
	return sum / float64(len(ms))
}
