package dal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gallery/internal/blobstore"
	"gallery/internal/relstore"
)

func schema() relstore.Schema {
	return relstore.Schema{
		Table: "instances",
		Columns: []relstore.Column{
			{Name: "id", Kind: relstore.KindString},
			{Name: "blob_location", Kind: relstore.KindString, Nullable: true},
			{Name: "created", Kind: relstore.KindTime},
		},
		Key:     "id",
		Indexes: []string{"blob_location"},
	}
}

var t0 = time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)

func newDAL(t *testing.T, hook blobstore.FaultHook, cacheBytes int64) *DAL {
	t.Helper()
	meta := relstore.NewMemory()
	if err := meta.CreateTable(schema()); err != nil {
		t.Fatal(err)
	}
	blobs := blobstore.NewMemory(blobstore.Options{Hook: hook})
	return New(meta, blobs, Options{
		CacheBytes: cacheBytes,
		Refs:       []BlobRef{{Table: "instances", LocField: "blob_location"}},
	})
}

func instRow(id string) relstore.Row {
	return relstore.Row{"id": relstore.String(id), "created": relstore.Time(t0)}
}

func TestInsertWithBlobHappyPath(t *testing.T) {
	d := newDAL(t, nil, 1<<20)
	loc, err := d.InsertWithBlob("instances", instRow("i1"), "blob_location", "i1", []byte("model-bytes"))
	if err != nil {
		t.Fatal(err)
	}
	row, err := d.Meta().Get("instances", "i1")
	if err != nil {
		t.Fatal(err)
	}
	if row["blob_location"].Str != loc {
		t.Fatalf("metadata location = %q, want %q", row["blob_location"].Str, loc)
	}
	data, err := d.GetBlob(loc)
	if err != nil || string(data) != "model-bytes" {
		t.Fatalf("GetBlob = %q, %v", data, err)
	}
}

func TestBlobFailureWritesNoMetadata(t *testing.T) {
	boom := errors.New("s3 down")
	d := newDAL(t, func(op blobstore.OpKind, replica int, key string) error {
		if op == blobstore.OpPut {
			return boom
		}
		return nil
	}, 0)
	_, err := d.InsertWithBlob("instances", instRow("i1"), "blob_location", "i1", []byte("x"))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.Meta().Get("instances", "i1"); !errors.Is(err, relstore.ErrNotFound) {
		t.Fatal("metadata written despite blob failure — §3.5 invariant violated")
	}
	dangling, err := d.Dangling()
	if err != nil {
		t.Fatal(err)
	}
	if len(dangling) != 0 {
		t.Fatalf("dangling metadata after blob failure: %v", dangling)
	}
}

func TestMetadataFailureOrphansBlob(t *testing.T) {
	d := newDAL(t, nil, 0)
	// First insert succeeds; second with the same pk fails at metadata,
	// leaving its blob orphaned.
	if _, err := d.InsertWithBlob("instances", instRow("i1"), "blob_location", "i1-blob", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	_, err := d.InsertWithBlob("instances", instRow("i1"), "blob_location", "i1-blob-retry", []byte("v2"))
	if !errors.Is(err, relstore.ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
	orphans, err := d.Orphans()
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 1 {
		t.Fatalf("orphans = %v, want exactly the failed write's blob", orphans)
	}
	// No dangling metadata either way.
	dangling, _ := d.Dangling()
	if len(dangling) != 0 {
		t.Fatalf("dangling = %v", dangling)
	}
	// GC reclaims it; the live blob survives.
	n, err := d.CollectOrphans()
	if err != nil || n != 1 {
		t.Fatalf("CollectOrphans = %d, %v", n, err)
	}
	row, _ := d.Meta().Get("instances", "i1")
	if _, err := d.GetBlob(row["blob_location"].Str); err != nil {
		t.Fatalf("live blob collected: %v", err)
	}
	orphans, _ = d.Orphans()
	if len(orphans) != 0 {
		t.Fatalf("orphans after GC = %v", orphans)
	}
}

func TestMetadataFirstAblationLeavesDangling(t *testing.T) {
	boom := errors.New("blob store down")
	armed := false
	d := newDAL(t, func(op blobstore.OpKind, replica int, key string) error {
		if armed && op == blobstore.OpPut {
			return boom
		}
		return nil
	}, 0)
	armed = true
	_, err := d.InsertMetadataFirst("instances", instRow("i1"), "blob_location", "i1", []byte("x"))
	if !errors.Is(err, ErrDanglingMetadata) {
		t.Fatalf("err = %v, want ErrDanglingMetadata", err)
	}
	dangling, err := d.Dangling()
	if err != nil {
		t.Fatal(err)
	}
	if len(dangling) != 1 {
		t.Fatalf("dangling = %v, want 1 entry (the ablation's failure mode)", dangling)
	}
}

func TestGetBlobCaching(t *testing.T) {
	d := newDAL(t, nil, 1<<20)
	loc, err := d.InsertWithBlob("instances", instRow("i1"), "blob_location", "i1", []byte("bytes"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := d.GetBlob(loc); err != nil {
			t.Fatal(err)
		}
	}
	cs := d.CacheStats()
	if cs.Hits != 4 || cs.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 4 hits / 1 miss", cs)
	}
	if got := d.Blobs().Stats().Gets; got != 1 {
		t.Fatalf("blob store saw %d gets, want 1 (rest served from cache)", got)
	}
}

func TestGetBlobCacheDisabled(t *testing.T) {
	d := newDAL(t, nil, 0)
	loc, err := d.InsertWithBlob("instances", instRow("i1"), "blob_location", "i1", []byte("bytes"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := d.GetBlob(loc); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Blobs().Stats().Gets; got != 5 {
		t.Fatalf("blob store saw %d gets with cache off, want 5", got)
	}
}

func TestDeleteBlobInvalidatesCache(t *testing.T) {
	d := newDAL(t, nil, 1<<20)
	loc, err := d.InsertWithBlob("instances", instRow("i1"), "blob_location", "i1", []byte("bytes"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.GetBlob(loc); err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteBlob(loc); err != nil {
		t.Fatal(err)
	}
	if _, err := d.GetBlob(loc); err == nil {
		t.Fatal("deleted blob still served (stale cache)")
	}
}

// TestCrashConsistencyUnderRandomFaults drives many writes with randomly
// injected metadata failures and asserts the §3.5 invariant throughout:
// never dangling metadata; orphans always collectable. (Experiment E13.)
func TestCrashConsistencyUnderRandomFaults(t *testing.T) {
	d := newDAL(t, nil, 0)
	wrote := 0
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("i%d", i%50) // collisions force metadata failures
		_, err := d.InsertWithBlob("instances", instRow(id), "blob_location",
			fmt.Sprintf("blob-%d", i), []byte("payload"))
		if err == nil {
			wrote++
		}
		if i%20 == 0 {
			dangling, derr := d.Dangling()
			if derr != nil {
				t.Fatal(derr)
			}
			if len(dangling) != 0 {
				t.Fatalf("iteration %d: dangling metadata %v", i, dangling)
			}
		}
	}
	if wrote != 50 {
		t.Fatalf("wrote %d distinct instances, want 50", wrote)
	}
	orphans, err := d.Orphans()
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 150 {
		t.Fatalf("orphans = %d, want 150 failed writes", len(orphans))
	}
	n, err := d.CollectOrphans()
	if err != nil || n != 150 {
		t.Fatalf("CollectOrphans = %d, %v", n, err)
	}
	// Every live row's blob must still fetch.
	rows, err := d.Meta().Select(relstore.Query{Table: "instances"})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if _, err := d.GetBlob(row["blob_location"].Str); err != nil {
			t.Fatalf("live blob unreadable after GC: %v", err)
		}
	}
}

// TestGCDoesNotReapInFlightInsert reproduces the GC race deterministically:
// an orphan collection that runs between the blob write and the metadata
// insert sees an unreferenced blob, but the location is pinned by the
// in-flight writer, so the collector must skip it. Before the pin protocol
// this test lost the blob and left a dangling metadata pointer.
func TestGCDoesNotReapInFlightInsert(t *testing.T) {
	d := newDAL(t, nil, 1<<20)
	var reclaimed int
	var gcErr error
	d.testAfterBlobPut = func() {
		reclaimed, gcErr = d.CollectOrphans()
	}
	loc, err := d.InsertWithBlob("instances", instRow("i1"), "blob_location", "i1", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if gcErr != nil {
		t.Fatalf("CollectOrphans mid-insert: %v", gcErr)
	}
	if reclaimed != 0 {
		t.Fatalf("GC reclaimed %d blobs out from under an in-flight insert", reclaimed)
	}
	data, err := d.GetBlob(loc)
	if err != nil || string(data) != "payload" {
		t.Fatalf("blob unreadable after mid-insert GC: %q, %v", data, err)
	}
	dangling, err := d.Dangling()
	if err != nil {
		t.Fatal(err)
	}
	if len(dangling) != 0 {
		t.Fatalf("Dangling() = %v, want empty", dangling)
	}
	if d.isPinned(loc) {
		t.Fatal("location still pinned after insert completed")
	}
}

// TestGCConcurrentWithInserts hammers inserts against a GC loop; run
// with -race. Every committed row's blob must remain readable and no
// metadata may dangle.
func TestGCConcurrentWithInserts(t *testing.T) {
	d := newDAL(t, nil, 1<<20)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := d.CollectOrphans(); err != nil {
				t.Errorf("CollectOrphans: %v", err)
				return
			}
		}
	}()
	const writers, perWriter = 4, 25
	var iwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		iwg.Add(1)
		go func(w int) {
			defer iwg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("i%d-%d", w, i)
				if _, err := d.InsertWithBlob("instances", instRow(id), "blob_location", id, []byte("v-"+id)); err != nil {
					t.Errorf("InsertWithBlob(%s): %v", id, err)
					return
				}
			}
		}(w)
	}
	iwg.Wait()
	close(stop)
	wg.Wait()

	rows, err := d.Meta().Select(relstore.Query{Table: "instances"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != writers*perWriter {
		t.Fatalf("rows = %d, want %d", len(rows), writers*perWriter)
	}
	for _, row := range rows {
		if _, err := d.GetBlob(row["blob_location"].Str); err != nil {
			t.Fatalf("blob for %s unreadable after concurrent GC: %v", row["id"].Str, err)
		}
	}
	dangling, err := d.Dangling()
	if err != nil {
		t.Fatal(err)
	}
	if len(dangling) != 0 {
		t.Fatalf("Dangling() = %v, want empty", dangling)
	}
}

// TestGetBlobStampedeCoalesced asserts that concurrent cache-miss reads of
// the same location hit the backend exactly once: followers wait on the
// leader's in-flight fetch instead of stampeding the blob store.
func TestGetBlobStampedeCoalesced(t *testing.T) {
	release := make(chan struct{})
	d := newDAL(t, func(op blobstore.OpKind, replica int, key string) error {
		if op == blobstore.OpGet {
			<-release // hold the leader's backend read open
		}
		return nil
	}, 0) // cache disabled: every read takes the singleflight path
	// Seed the blob without tripping the Get hook.
	loc, err := d.InsertWithBlob("instances", instRow("i1"), "blob_location", "i1", []byte("hot-model"))
	if err != nil {
		t.Fatal(err)
	}

	const followers = 8
	results := make(chan error, followers+1)
	read := func() {
		data, err := d.GetBlob(loc)
		if err == nil && string(data) != "hot-model" {
			err = fmt.Errorf("got %q", data)
		}
		results <- err
	}
	go read() // leader; blocks in the backend on <-release
	// Wait for the leader to register its flight so every follower
	// coalesces onto it.
	for {
		d.mu.Lock()
		_, inFlight := d.flights[loc]
		d.mu.Unlock()
		if inFlight {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	for i := 0; i < followers; i++ {
		go read()
	}
	// Followers bump the coalesced counter before waiting, so once it
	// reaches the follower count they are all parked on the flight.
	for d.cCoalesced.Value() < followers {
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	for i := 0; i < followers+1; i++ {
		if err := <-results; err != nil {
			t.Fatalf("GetBlob: %v", err)
		}
	}
	if gets := d.Blobs().Stats().Gets; gets != 1 {
		t.Fatalf("backend Gets = %d, want 1 (stampede not coalesced)", gets)
	}
}
