package experiments

import (
	"fmt"
	"strings"
	"time"

	"gallery/internal/core"
	"gallery/internal/forecast"
	"gallery/internal/rules"
	"gallery/internal/uuid"
)

// Experiment E2 — paper Figure 1: the model lifecycle, driven end to end
// by Gallery: exploration → training → evaluation → deployment →
// monitoring → drift detection → retraining → deprecation. The same run
// also provides Experiment E11's quantitative drift-retrain numbers:
// production MAPE before the distribution shift, during it, and after the
// rule-engine-triggered retrain.

// LifecycleResult records every lifecycle stage and the drift numbers.
type LifecycleResult struct {
	Stages []string

	// Champion selection during exploration.
	ExploredModels int
	ChampionName   string

	// Deployment via action rule.
	DeployedInstance uuid.UUID

	// Drift loop numbers (E11).
	PreShiftMAPE  float64
	DriftedMAPE   float64
	RecoveredMAPE float64
	Drift         *core.DriftReport

	// RetrainTriggered reports the rule-engine retrain callback fired.
	RetrainTriggered bool
	// OldDeprecated reports the superseded instance was flagged.
	OldDeprecated bool
}

const (
	lcTrainDays   = 42
	lcPhaseDays   = 10 // monitoring days per phase
	lcHoursPerDay = 24
)

// Lifecycle runs the full Figure 1 loop on a demand series with an
// injected regime shift.
func Lifecycle() (*LifecycleResult, error) {
	env := mustEnv(2)
	res := &LifecycleResult{}
	stage := func(format string, args ...any) {
		res.Stages = append(res.Stages, fmt.Sprintf(format, args...))
	}

	// The world: demand that permanently doubles partway through the
	// monitoring period (Uber's growth; paper §3.6 Model Drift).
	shiftAt := epoch.Add(time.Duration(lcTrainDays+lcPhaseDays) * 24 * time.Hour)
	city := forecast.CityConfig{
		Name: "lifecycle_city", Base: 600, DailyAmp: 180, WeeklyAmp: 60, NoiseStd: 25,
		ShiftAt: shiftAt, ShiftFactor: 1.6, Seed: 21,
	}
	totalDays := lcTrainDays + 3*lcPhaseDays
	data := forecast.Generate(city, epoch, time.Hour, totalDays*lcHoursPerDay)
	trainN := lcTrainDays * lcHoursPerDay

	// --- Stage 1: model exploration ---
	m, err := env.Reg.RegisterModel(core.ModelSpec{
		BaseVersionID: "lifecycle_demand", Project: "marketplace",
		Name: "demand_forecaster", Domain: "UberX", Owner: "forecasting",
	})
	if err != nil {
		return nil, err
	}
	explored := []forecast.Model{
		&forecast.Heuristic{K: 5},
		&forecast.SeasonalNaive{Period: 24},
		&forecast.LinearAR{Lags: 24},
	}
	type cand struct {
		model forecast.Model
		inst  *core.Instance
	}
	var candidates []cand
	for _, fm := range explored {
		if err := fm.Train(data[:trainN]); err != nil {
			return nil, err
		}
		blob, err := forecast.Encode(fm)
		if err != nil {
			return nil, err
		}
		env.Clock.Advance(time.Minute)
		in, err := env.Reg.UploadInstance(core.InstanceSpec{
			ModelID: m.ID, Name: fm.Name(), City: city.Name, Framework: "gallery-forecast",
			TrainingData: "synthetic://lifecycle/v1", CodePointer: "internal/experiments",
		}, blob)
		if err != nil {
			return nil, err
		}
		valMAPE, err := forecast.RollingMAPE(fm, data, trainN-7*lcHoursPerDay, trainN)
		if err != nil {
			return nil, err
		}
		if err := env.Reg.InsertMetrics(in.ID, core.ScopeValidation, map[string]float64{"mape": valMAPE}); err != nil {
			return nil, err
		}
		candidates = append(candidates, cand{model: fm, inst: in})
	}
	res.ExploredModels = len(candidates)
	stage("exploration: trained and stored %d candidate model classes with validation metrics", len(candidates))

	// --- Stage 2: evaluation + champion selection via rule ---
	selRule := &rules.Rule{
		UUID: "lifecycle-select", Team: "forecasting", Kind: rules.KindSelection,
		When:           `has(metrics, "mape")`,
		ModelSelection: "a.metrics.mape < b.metrics.mape",
	}
	deployRule := &rules.Rule{
		UUID: "lifecycle-deploy", Team: "forecasting", Kind: rules.KindAction,
		When:    "metrics.mape < 10",
		Actions: []rules.ActionRef{{Action: "deploy"}},
	}
	retrainRule := &rules.Rule{
		UUID: "lifecycle-retrain", Team: "forecasting", Kind: rules.KindAction,
		When:    "metrics.drift_degradation > 0.25",
		Actions: []rules.ActionRef{{Action: "retrain"}, {Action: "alert", Params: map[string]any{"message": "model drift detected"}}},
	}
	if _, err := env.Repo.Commit("forecasting", "lifecycle rules",
		[]*rules.Rule{selRule, deployRule, retrainRule}, nil); err != nil {
		return nil, err
	}

	var deployed []uuid.UUID
	env.Engine.RegisterAction("deploy", func(ctx *rules.ActionContext) error {
		deployed = append(deployed, ctx.Instance.ID)
		return nil
	})
	retrainRequested := false
	env.Engine.RegisterAction("retrain", func(ctx *rules.ActionContext) error {
		retrainRequested = true
		return nil
	})

	champ, err := env.Engine.SelectModel("lifecycle-select", core.InstanceFilter{City: city.Name})
	if err != nil {
		return nil, err
	}
	res.ChampionName = champ.Name
	stage("evaluation: selection rule picked champion %q by validation MAPE", champ.Name)

	var champModel forecast.Model
	for _, c := range candidates {
		if c.inst.ID == champ.ID {
			champModel = c.model
		}
	}

	// --- Stage 3: deployment through the action rule ---
	// Re-reporting the champion's validation metric is the event that
	// drives the deploy rule (Fig. 8 Client 2 pattern).
	env.Clock.Advance(time.Minute)
	vals, err := env.Reg.LatestMetrics(champ.ID, core.ScopeValidation)
	if err != nil {
		return nil, err
	}
	if _, err := env.Reg.InsertMetric(champ.ID, "mape", core.ScopeValidation, vals["mape"]); err != nil {
		return nil, err
	}
	env.Engine.MetricUpdated(champ.ID)
	if len(deployed) != 1 || deployed[0] != champ.ID {
		return nil, fmt.Errorf("lifecycle: deployment rule did not fire for the champion")
	}
	res.DeployedInstance = champ.ID
	stage("deployment: action rule deployed %q to production", champ.Name)

	// --- Stage 4: monitoring, phase 1 (stable) ---
	monitorDay := func(mdl forecast.Model, inst uuid.UUID, day int) (float64, error) {
		from := (lcTrainDays + day) * lcHoursPerDay
		mape, err := forecast.RollingMAPE(mdl, data, from, from+lcHoursPerDay)
		if err != nil {
			return 0, err
		}
		env.Clock.Advance(24 * time.Hour)
		_, err = env.Reg.InsertMetric(inst, "mape", core.ScopeProduction, mape)
		return mape, err
	}
	var phase1 float64
	for day := 0; day < lcPhaseDays; day++ {
		mape, err := monitorDay(champModel, champ.ID, day)
		if err != nil {
			return nil, err
		}
		phase1 += mape
	}
	res.PreShiftMAPE = phase1 / lcPhaseDays
	stage("monitoring: %d stable days, mean production MAPE %.2f%%", lcPhaseDays, res.PreShiftMAPE)

	// --- Stage 5: drift (regime shift) ---
	var phase2 float64
	for day := lcPhaseDays; day < 2*lcPhaseDays; day++ {
		mape, err := monitorDay(champModel, champ.ID, day)
		if err != nil {
			return nil, err
		}
		phase2 += mape
	}
	res.DriftedMAPE = phase2 / lcPhaseDays

	drift, err := env.Reg.CheckDrift(champ.ID, core.DriftConfig{Metric: "mape", Window: lcPhaseDays, Baseline: lcPhaseDays})
	if err != nil {
		return nil, err
	}
	res.Drift = drift
	if !drift.Drifted {
		return nil, fmt.Errorf("lifecycle: drift not detected (degradation %.2f)", drift.Degradation)
	}
	stage("drift: production MAPE degraded %.2f%% -> %.2f%% (degradation %.0f%%), detector fired",
		res.PreShiftMAPE, res.DriftedMAPE, drift.Degradation*100)

	// The health check result is itself a metric; reporting it triggers
	// the retrain rule.
	env.Clock.Advance(time.Minute)
	if _, err := env.Reg.InsertMetric(champ.ID, "drift_degradation", core.ScopeProduction, drift.Degradation); err != nil {
		return nil, err
	}
	env.Engine.MetricUpdated(champ.ID)
	res.RetrainTriggered = retrainRequested
	if !retrainRequested {
		return nil, fmt.Errorf("lifecycle: retrain rule did not fire")
	}
	stage("retraining: rule engine triggered the retrain callback and an alert")

	// --- Stage 6: retrain on recent data, deploy, deprecate the old ---
	retrainEnd := (lcTrainDays + 2*lcPhaseDays) * lcHoursPerDay
	fresh := &forecast.LinearAR{Lags: 24}
	if err := fresh.Train(data[retrainEnd-trainN : retrainEnd]); err != nil {
		return nil, err
	}
	blob, err := forecast.Encode(fresh)
	if err != nil {
		return nil, err
	}
	env.Clock.Advance(time.Minute)
	freshIn, err := env.Reg.UploadInstance(core.InstanceSpec{
		ModelID: m.ID, Name: fresh.Name() + "_v2", City: city.Name,
		Framework: "gallery-forecast", TrainingData: "synthetic://lifecycle/v2",
	}, blob)
	if err != nil {
		return nil, err
	}
	if _, err := env.Reg.InsertMetric(freshIn.ID, "mape", core.ScopeValidation, 5); err != nil {
		return nil, err
	}
	env.Engine.MetricUpdated(freshIn.ID)
	if len(deployed) != 2 || deployed[1] != freshIn.ID {
		return nil, fmt.Errorf("lifecycle: retrained instance was not deployed")
	}
	if err := env.Reg.DeprecateInstance(champ.ID); err != nil {
		return nil, err
	}
	res.OldDeprecated = true
	stage("deployment: retrained instance deployed; old instance deprecated (still fetchable)")

	// --- Stage 7: monitoring, phase 3 (recovered) ---
	var phase3 float64
	for day := 2 * lcPhaseDays; day < 3*lcPhaseDays; day++ {
		mape, err := monitorDay(fresh, freshIn.ID, day)
		if err != nil {
			return nil, err
		}
		phase3 += mape
	}
	res.RecoveredMAPE = phase3 / lcPhaseDays
	stage("monitoring: recovered, mean production MAPE %.2f%% (was %.2f%% drifted)",
		res.RecoveredMAPE, res.DriftedMAPE)

	return res, nil
}

// Format renders the lifecycle stages.
func (r *LifecycleResult) Format() string {
	var b strings.Builder
	for i, s := range r.Stages {
		fmt.Fprintf(&b, "%d. %s\n", i+1, s)
	}
	fmt.Fprintf(&b, "drift loop (E11): pre-shift %.2f%%, drifted %.2f%%, recovered %.2f%%\n",
		r.PreShiftMAPE, r.DriftedMAPE, r.RecoveredMAPE)
	return b.String()
}
