// Package benchfmt defines the machine-readable benchmark result format
// persisted as BENCH_<experiment>.json at the repository root and compared
// in CI against reruns.
//
// The paper's registry ran at million-instance scale on shared production
// hardware; this repo instead defends its hot paths with a checked-in perf
// trajectory. Each harness run can emit one Result per experiment
// (ops/sec, p50/p99 latency, allocs/op, rows scanned, ...) and CI reruns
// the smoke experiments, comparing against the committed baseline.
//
// Metrics declare their own gating policy. Machine-independent metrics
// (allocation counts, rows/postings scanned, result sizes, planner
// verdicts) gate the build: a rerun that moves one beyond its tolerance
// band fails. Machine-dependent absolutes (ns/op, qps, latency quantiles)
// are recorded with Better "info": they chart the trajectory in the job
// log but cannot fail a run on different hardware.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SchemaVersion is bumped when the file format changes incompatibly.
const SchemaVersion = 1

// Gating directions for Metric.Better.
const (
	// HigherIsBetter gates on drops (throughput-style metrics).
	HigherIsBetter = "higher"
	// LowerIsBetter gates on rises (latency/alloc/scan-style metrics).
	LowerIsBetter = "lower"
	// Info metrics are recorded for the trajectory but never gate:
	// absolute times and rates measured on whatever hardware ran them.
	Info = "info"
)

// Metric is one measured number.
type Metric struct {
	Name string `json:"name"`
	Unit string `json:"unit,omitempty"`
	// Value is the measurement. All gated metrics must be deterministic
	// given the experiment's seeds, up to their tolerance.
	Value float64 `json:"value"`
	// Better is HigherIsBetter, LowerIsBetter, or Info.
	Better string `json:"better"`
	// Tol is this metric's tolerance band as a fraction of the baseline
	// value (0.25 = a 25% move in the worse direction fails). Zero means
	// "use the comparison's default".
	Tol float64 `json:"tol,omitempty"`
}

// Result is one experiment's emitted metrics.
type Result struct {
	Schema     int      `json:"schema"`
	Experiment string   `json:"experiment"`
	Metrics    []Metric `json:"metrics"`
}

// FileName returns the canonical baseline file name for an experiment.
func FileName(experiment string) string { return "BENCH_" + experiment + ".json" }

// Write persists r as dir/BENCH_<exp>.json with stable formatting, so
// regenerated baselines diff cleanly.
func Write(dir string, r Result) error {
	r.Schema = SchemaVersion
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("benchfmt: marshal %s: %w", r.Experiment, err)
	}
	b = append(b, '\n')
	path := filepath.Join(dir, FileName(r.Experiment))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("benchfmt: write %s: %w", path, err)
	}
	return nil
}

// Load reads one result file.
func Load(path string) (Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Result{}, err
	}
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		return Result{}, fmt.Errorf("benchfmt: parse %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return Result{}, fmt.Errorf("benchfmt: %s has schema %d, want %d (regenerate with -bench-dir)",
			path, r.Schema, SchemaVersion)
	}
	return r, nil
}

// LoadBaseline reads dir's baseline for an experiment; ok=false when no
// baseline file exists (a new experiment, not an error).
func LoadBaseline(dir, experiment string) (Result, bool, error) {
	r, err := Load(filepath.Join(dir, FileName(experiment)))
	if os.IsNotExist(err) {
		return Result{}, false, nil
	}
	if err != nil {
		return Result{}, false, err
	}
	return r, true, nil
}

// Delta statuses.
const (
	StatusOK        = "ok"        // within tolerance
	StatusRegressed = "regressed" // beyond tolerance in the worse direction
	StatusImproved  = "improved"  // beyond tolerance in the better direction
	StatusNew       = "new"       // metric absent from the baseline
	StatusGone      = "gone"      // baseline metric absent from the rerun
	StatusInfo      = "info"      // trajectory-only metric, never gated
)

// Delta is one metric's baseline-vs-rerun comparison.
type Delta struct {
	Name   string
	Unit   string
	Base   float64
	Cur    float64
	Change float64 // fractional change vs baseline; +Inf when base is 0
	Status string
}

// Compare evaluates a rerun against its baseline. defaultTol applies to
// gated metrics that do not carry their own Tol. A gated baseline metric
// missing from the rerun is a regression (coverage silently lost);
// Info metrics never regress.
func Compare(base, cur Result, defaultTol float64) (deltas []Delta, regressed bool) {
	baseByName := make(map[string]Metric, len(base.Metrics))
	for _, m := range base.Metrics {
		baseByName[m.Name] = m
	}
	seen := make(map[string]bool, len(cur.Metrics))
	for _, m := range cur.Metrics {
		seen[m.Name] = true
		d := Delta{Name: m.Name, Unit: m.Unit, Cur: m.Value}
		bm, ok := baseByName[m.Name]
		if !ok {
			d.Status = StatusNew
			deltas = append(deltas, d)
			continue
		}
		d.Base = bm.Value
		d.Change = fractionalChange(bm.Value, m.Value)
		if m.Better == Info || m.Better == "" {
			d.Status = StatusInfo
			deltas = append(deltas, d)
			continue
		}
		tol := m.Tol
		if tol == 0 {
			tol = defaultTol
		}
		d.Status = gate(m.Better, bm.Value, m.Value, tol)
		if d.Status == StatusRegressed {
			regressed = true
		}
		deltas = append(deltas, d)
	}
	for _, bm := range base.Metrics {
		if seen[bm.Name] {
			continue
		}
		d := Delta{Name: bm.Name, Unit: bm.Unit, Base: bm.Value, Status: StatusGone}
		if bm.Better != Info && bm.Better != "" {
			d.Status = StatusRegressed // gated coverage disappeared
			regressed = true
		}
		deltas = append(deltas, d)
	}
	sort.SliceStable(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas, regressed
}

// gate classifies cur against base for a gated metric. When the baseline
// is zero there is no meaningful fraction, so tol acts as an absolute
// allowance instead (a lower-is-better 0 baseline tolerates cur <= tol).
func gate(better string, base, cur float64, tol float64) string {
	if base == 0 {
		worse := cur > tol
		if better == HigherIsBetter {
			worse = cur < -tol
		}
		if worse {
			return StatusRegressed
		}
		return StatusOK
	}
	change := fractionalChange(base, cur)
	switch better {
	case HigherIsBetter:
		if change < -tol {
			return StatusRegressed
		}
		if change > tol {
			return StatusImproved
		}
	case LowerIsBetter:
		if change > tol {
			return StatusRegressed
		}
		if change < -tol {
			return StatusImproved
		}
	}
	return StatusOK
}

func fractionalChange(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return math.Inf(int(math.Copysign(1, cur)))
	}
	return (cur - base) / math.Abs(base)
}

// FormatDeltas renders one experiment's comparison as aligned job-log
// rows — the trajectory summary CI prints.
func FormatDeltas(experiment string, deltas []Delta) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", experiment)
	fmt.Fprintf(&b, "  %-40s %14s %14s %9s  %s\n", "metric", "baseline", "rerun", "change", "status")
	for _, d := range deltas {
		change := "-"
		if d.Status != StatusNew && d.Status != StatusGone {
			if math.IsInf(d.Change, 0) {
				change = "inf"
			} else {
				change = fmt.Sprintf("%+.1f%%", d.Change*100)
			}
		}
		name := d.Name
		if d.Unit != "" {
			name += " (" + d.Unit + ")"
		}
		fmt.Fprintf(&b, "  %-40s %14s %14s %9s  %s\n",
			name, formatValue(d.Base, d.Status == StatusNew), formatValue(d.Cur, d.Status == StatusGone), change, d.Status)
	}
	return b.String()
}

func formatValue(v float64, absent bool) string {
	if absent {
		return "-"
	}
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 0.001:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3e", v)
	}
}
