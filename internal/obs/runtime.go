package obs

import (
	"runtime"
	"sync"
	"time"
)

// memStatsCache amortizes runtime.ReadMemStats — a stop-the-world call —
// across the several gauge funcs that read it in one snapshot (and across
// rapid snapshot polls).
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	ttl  time.Duration
	stat runtime.MemStats
}

func (c *memStatsCache) get() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Since(c.at) > c.ttl {
		runtime.ReadMemStats(&c.stat)
		c.at = time.Now()
	}
	return c.stat
}

// RegisterRuntime registers process-health gauges on r, turning
// GET /v1/debug/metrics into a lightweight profile:
//
//	runtime_goroutines            live goroutine count
//	runtime_heap_alloc_bytes      live heap bytes
//	runtime_heap_sys_bytes        heap bytes held from the OS
//	runtime_gc_runs_total         completed GC cycles
//	runtime_gc_pause_last_seconds most recent GC stop-the-world pause
//
// Values derived from MemStats share a ~1s cache so snapshot polling
// doesn't itself become a stop-the-world generator.
func RegisterRuntime(r *Registry) {
	cache := &memStatsCache{ttl: time.Second}
	r.GaugeFunc("runtime_goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("runtime_heap_alloc_bytes", func() float64 {
		return float64(cache.get().HeapAlloc)
	})
	r.GaugeFunc("runtime_heap_sys_bytes", func() float64 {
		return float64(cache.get().HeapSys)
	})
	r.GaugeFunc("runtime_gc_runs_total", func() float64 {
		return float64(cache.get().NumGC)
	})
	r.GaugeFunc("runtime_gc_pause_last_seconds", func() float64 {
		m := cache.get()
		if m.NumGC == 0 {
			return 0
		}
		return float64(m.PauseNs[(m.NumGC+255)%256]) / 1e9
	})
}
