// Package dal implements Gallery's unified data access layer.
//
// The paper (§3.5) accesses model storage through one DAL that combines a
// relational store for metadata/metrics with a blob store for model
// binaries, plus a cache on the blob read path. Its central consistency
// rule: "we always write model blobs first and only write the model
// metadata after the model blobs are successfully stored." A crash between
// the two writes can only leave an orphaned blob — invisible to the system
// and collectable by GC — never metadata pointing at a missing blob.
//
// This package reproduces that rule, the cached read path, and the orphan
// collector, and (for the write-ordering ablation) also exposes the unsafe
// metadata-first ordering so the experiment in DESIGN.md A3 can count the
// dangling references it produces.
package dal

import (
	"errors"
	"fmt"

	"gallery/internal/blobstore"
	"gallery/internal/cache"
	"gallery/internal/relstore"
)

// ErrDanglingMetadata reports metadata whose blob is missing — the failure
// mode blob-first ordering exists to prevent.
var ErrDanglingMetadata = errors.New("dal: metadata references a missing blob")

// BlobRef declares that rows of Table reference blob locations in LocField.
// The orphan collector uses these declarations to compute reachability.
type BlobRef struct {
	Table    string
	LocField string
}

// Options configures a DAL.
type Options struct {
	// CacheBytes bounds the blob read cache; 0 disables caching
	// (the cache ablation's off arm).
	CacheBytes int64
	// Refs lists every table/field pair that stores blob locations.
	Refs []BlobRef
}

// DAL is the data access layer. It is safe for concurrent use.
type DAL struct {
	meta  *relstore.Store
	blobs *blobstore.Store
	cache *cache.Cache
	refs  []BlobRef
}

// New assembles a DAL over the given stores.
func New(meta *relstore.Store, blobs *blobstore.Store, opts Options) *DAL {
	return &DAL{
		meta:  meta,
		blobs: blobs,
		cache: cache.New(opts.CacheBytes),
		refs:  opts.Refs,
	}
}

// Meta exposes the metadata store for queries.
func (d *DAL) Meta() *relstore.Store { return d.meta }

// Blobs exposes the blob store, mainly for stats in experiments.
func (d *DAL) Blobs() *blobstore.Store { return d.blobs }

// InsertWithBlob writes blob under blobKey, then inserts row with the
// blob's location in locField — the paper's blob-first ordering. If the
// metadata insert fails the blob is left behind as an orphan; it is
// unreachable and a later CollectOrphans reclaims it.
func (d *DAL) InsertWithBlob(table string, row relstore.Row, locField, blobKey string, blob []byte) (string, error) {
	loc, err := d.blobs.Put(blobKey, blob)
	if err != nil {
		return "", fmt.Errorf("dal: blob write failed, nothing recorded: %w", err)
	}
	row = row.Clone()
	row[locField] = relstore.String(loc)
	if err := d.meta.Insert(table, row); err != nil {
		return "", fmt.Errorf("dal: metadata write failed, blob %s orphaned: %w", blobKey, err)
	}
	return loc, nil
}

// InsertMetadataFirst is the deliberately unsafe ordering for the A3
// ablation: metadata goes in before the blob, so a blob-write failure
// leaves metadata pointing at nothing.
func (d *DAL) InsertMetadataFirst(table string, row relstore.Row, locField, blobKey string, blob []byte) (string, error) {
	loc := d.blobs.Location(blobKey)
	row = row.Clone()
	row[locField] = relstore.String(loc)
	if err := d.meta.Insert(table, row); err != nil {
		return "", err
	}
	if _, err := d.blobs.Put(blobKey, blob); err != nil {
		return "", fmt.Errorf("%w: %s: %v", ErrDanglingMetadata, loc, err)
	}
	return loc, nil
}

// GetBlob fetches blob bytes by location through the cache.
func (d *DAL) GetBlob(location string) ([]byte, error) {
	if data, ok := d.cache.Get(location); ok {
		return data, nil
	}
	data, err := d.blobs.Get(location)
	if err != nil {
		return nil, err
	}
	d.cache.Put(location, data)
	return data, nil
}

// DeleteBlob removes a blob and its cache entry.
func (d *DAL) DeleteBlob(location string) error {
	d.cache.Remove(location)
	return d.blobs.Delete(location)
}

// CacheStats reports blob-cache effectiveness.
func (d *DAL) CacheStats() cache.Stats { return d.cache.Stats() }

// referenced returns the set of blob locations reachable from metadata.
func (d *DAL) referenced() (map[string]bool, error) {
	refs := make(map[string]bool)
	for _, r := range d.refs {
		rows, err := d.meta.Select(relstore.Query{Table: r.Table})
		if err != nil {
			return nil, fmt.Errorf("dal: scan %s for blob refs: %w", r.Table, err)
		}
		for _, row := range rows {
			if v, ok := row[r.LocField]; ok && v.Kind == relstore.KindString && v.Str != "" {
				refs[v.Str] = true
			}
		}
	}
	return refs, nil
}

// Orphans lists blob locations present in the blob store but referenced by
// no metadata row.
func (d *DAL) Orphans() ([]string, error) {
	refs, err := d.referenced()
	if err != nil {
		return nil, err
	}
	var orphans []string
	for _, key := range d.blobs.Keys() {
		loc := d.blobs.Location(key)
		if !refs[loc] {
			orphans = append(orphans, loc)
		}
	}
	return orphans, nil
}

// CollectOrphans deletes all orphaned blobs and returns how many it
// reclaimed.
func (d *DAL) CollectOrphans() (int, error) {
	orphans, err := d.Orphans()
	if err != nil {
		return 0, err
	}
	for _, loc := range orphans {
		if err := d.DeleteBlob(loc); err != nil {
			return 0, fmt.Errorf("dal: collect %s: %w", loc, err)
		}
	}
	return len(orphans), nil
}

// Dangling lists metadata rows whose blob location cannot be fetched — the
// corruption class that blob-first ordering prevents. Experiments use it to
// verify the invariant (zero under blob-first) and to quantify the
// metadata-first ablation.
func (d *DAL) Dangling() ([]string, error) {
	var dangling []string
	for _, r := range d.refs {
		rows, err := d.meta.Select(relstore.Query{Table: r.Table})
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			v, ok := row[r.LocField]
			if !ok || v.Kind != relstore.KindString || v.Str == "" {
				continue
			}
			if _, err := d.blobs.Get(v.Str); err != nil {
				dangling = append(dangling, v.Str)
			}
		}
	}
	return dangling, nil
}
