package httpmw

import (
	"net/http"
	"strconv"

	"gallery/internal/audit"
)

// Decision is an Authorizer's verdict on one request. A Status below 400
// (conventionally 0) admits the request; otherwise the middleware writes
// the rejection itself and the handler never runs.
type Decision struct {
	// Status is the HTTP status for a rejection (401, 403, 413, 429), or
	// 0 to admit.
	Status int
	// Reason is the rejection message, serialized as the standard
	// `{"error": ...}` body.
	Reason string
	// RetryAfter, in whole seconds, sets the Retry-After header when > 0
	// (rate-limit rejections).
	RetryAfter int
	// Actor, when non-empty on an admitted request, becomes the audit
	// actor for the handler via audit.WithActor — the verified token
	// identity displacing any client-declared header. Left empty on
	// read-only requests so the admit path allocates nothing.
	Actor string
}

// Authorizer decides whether a request may proceed. Implementations must
// be safe for concurrent use and fast: they run on every request of both
// daemons, before any handler.
type Authorizer interface {
	Authorize(r *http.Request) Decision
}

// WithAuth gates next behind an Authorizer. It layers OUTSIDE Wrap (like
// the server's actor middleware) so that admitted requests keep their
// original *http.Request and Wrap's route-pattern attribution still
// works; rejected requests never reach Wrap's handler chain but are
// written through the ResponseWriter Wrap already instrumented when
// WithAuth is mounted inside it — here we mount outside, so rejections
// are observed by the caller's access layer only. Both daemons mount it
// as the outermost layer.
func WithAuth(next http.Handler, a Authorizer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := a.Authorize(r)
		if d.Status >= 400 {
			if d.RetryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(d.RetryAfter))
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(d.Status)
			// Hand-rolled body: the reason strings are our own (no user
			// input beyond method/path), and this avoids an api import.
			w.Write([]byte(`{"error":` + strconv.Quote(d.Reason) + `}`))
			return
		}
		if d.Actor != "" {
			r = r.WithContext(audit.WithActor(r.Context(), d.Actor))
		}
		next.ServeHTTP(w, r)
	})
}
