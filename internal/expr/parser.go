package expr

import "fmt"

// Node is an AST node that can evaluate itself against an environment.
type Node interface {
	eval(env *Env) (any, error)
	// String renders the node back to source-equivalent form.
	String() string
}

type litNode struct{ val any }

type listNode struct {
	elems []Node
	pos   int
}

func (n *listNode) String() string {
	s := "["
	for i, e := range n.elems {
		if i > 0 {
			s += ", "
		}
		s += e.String()
	}
	return s + "]"
}

func (n *litNode) String() string {
	if s, ok := n.val.(string); ok {
		return fmt.Sprintf("%q", s)
	}
	if n.val == nil {
		return "null"
	}
	return fmt.Sprintf("%v", n.val)
}

type identNode struct {
	name string
	pos  int
}

func (n *identNode) String() string { return n.name }

type memberNode struct {
	obj   Node
	field string
	pos   int
}

func (n *memberNode) String() string { return n.obj.String() + "." + n.field }

type indexNode struct {
	obj Node
	key Node
	pos int
}

func (n *indexNode) String() string { return n.obj.String() + "[" + n.key.String() + "]" }

type callNode struct {
	fn   string
	args []Node
	pos  int
}

func (n *callNode) String() string {
	s := n.fn + "("
	for i, a := range n.args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}

type unaryNode struct {
	op  kind
	x   Node
	pos int
}

func (n *unaryNode) String() string {
	op := "!"
	if n.op == tokMinus {
		op = "-"
	}
	return op + n.x.String()
}

type binaryNode struct {
	op   kind
	x, y Node
	pos  int
}

var opNames = map[kind]string{
	tokEq: "==", tokNe: "!=", tokLt: "<", tokLe: "<=", tokGt: ">", tokGe: ">=",
	tokAnd: "&&", tokOr: "||", tokPlus: "+", tokMinus: "-", tokStar: "*",
	tokSlash: "/", tokPercent: "%", tokIn: "in",
}

func (n *binaryNode) String() string {
	return "(" + n.x.String() + " " + opNames[n.op] + " " + n.y.String() + ")"
}

// binding powers for the Pratt parser, loosest first.
func bindingPower(k kind) int {
	switch k {
	case tokOr:
		return 1
	case tokAnd:
		return 2
	case tokEq, tokNe:
		return 3
	case tokLt, tokLe, tokGt, tokGe, tokIn:
		return 4
	case tokPlus, tokMinus:
		return 5
	case tokStar, tokSlash, tokPercent:
		return 6
	default:
		return 0
	}
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(k kind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return token{}, &SyntaxError{t.pos, fmt.Sprintf("expected %s, found %s", what, t)}
	}
	return t, nil
}

// Parse compiles an expression to an evaluatable AST.
func Parse(src string) (Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, &SyntaxError{t.pos, fmt.Sprintf("unexpected %s after expression", t)}
	}
	return n, nil
}

// MustParse is Parse that panics on error, for rule tables in tests.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

func (p *parser) parseExpr(minBP int) (Node, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peek()
		bp := bindingPower(op.kind)
		if bp == 0 || bp <= minBP {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseExpr(bp)
		if err != nil {
			return nil, err
		}
		lhs = &binaryNode{op: op.kind, x: lhs, y: rhs, pos: op.pos}
	}
}

func (p *parser) parseUnary() (Node, error) {
	switch t := p.peek(); t.kind {
	case tokNot:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryNode{op: tokNot, x: x, pos: t.pos}, nil
	case tokMinus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryNode{op: tokMinus, x: x, pos: t.pos}, nil
	default:
		return p.parsePostfix()
	}
}

// parsePostfix parses a primary expression followed by any chain of member
// accesses and index operations.
func (p *parser) parsePostfix() (Node, error) {
	n, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch t := p.peek(); t.kind {
		case tokDot:
			p.next()
			field, err := p.expect(tokIdent, "field name after '.'")
			if err != nil {
				return nil, err
			}
			n = &memberNode{obj: n, field: field.text, pos: t.pos}
		case tokLBracket:
			p.next()
			key, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket, "']'"); err != nil {
				return nil, err
			}
			n = &indexNode{obj: n, key: key, pos: t.pos}
		default:
			return n, nil
		}
	}
}

func (p *parser) parsePrimary() (Node, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		return &litNode{val: t.num}, nil
	case tokString:
		return &litNode{val: t.text}, nil
	case tokBool:
		return &litNode{val: t.text == "true"}, nil
	case tokNull:
		return &litNode{val: nil}, nil
	case tokIdent:
		// Function call or plain identifier.
		if p.peek().kind == tokLParen {
			p.next()
			var args []Node
			if p.peek().kind != tokRParen {
				for {
					a, err := p.parseExpr(0)
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().kind != tokComma {
						break
					}
					p.next()
				}
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			return &callNode{fn: t.text, args: args, pos: t.pos}, nil
		}
		return &identNode{name: t.text, pos: t.pos}, nil
	case tokLParen:
		n, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return n, nil
	case tokLBracket:
		// List literal, e.g. ["UberX", "UberPool"].
		list := &listNode{pos: t.pos}
		if p.peek().kind != tokRBracket {
			for {
				e, err := p.parseExpr(0)
				if err != nil {
					return nil, err
				}
				list.elems = append(list.elems, e)
				if p.peek().kind != tokComma {
					break
				}
				p.next()
			}
		}
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return nil, err
		}
		return list, nil
	default:
		return nil, &SyntaxError{t.pos, fmt.Sprintf("unexpected %s", t)}
	}
}
