// Package obs is Gallery's dependency-free observability substrate.
//
// The paper runs Gallery as a horizontally scaled stateless microservice
// (§4) whose operators watch storage and rule-engine behaviour in
// production; the model-management plane itself needs first-class
// monitoring. This package provides the three primitives that cover that
// need — atomic Counters, Gauges, and fixed-bucket Histograms with
// p50/p95/p99 summaries — behind a Registry that renders to JSON for
// GET /v1/debug/metrics and the CLI snapshot dumps.
//
// Metric naming scheme: snake_case base names suffixed with a unit
// (_total, _seconds, _bytes) plus optional labels rendered in braces,
// e.g. relstore_ops_total{op="insert",table="instances"}. Use Name to
// build labelled names so the format stays uniform.
//
// Everything here is safe for concurrent use and allocation-light on the
// hot path: a metric handle, once obtained from a Registry, updates with
// a single atomic operation.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the current value.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Default bucket sets. Bounds are upper bounds; observations above the
// last bound land in an implicit overflow bucket.
var (
	// LatencyBuckets spans 100µs to 10s, suitable for request and
	// storage-op latencies in seconds.
	LatencyBuckets = []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
	// SizeBuckets spans 256B to 256MiB, suitable for body and blob sizes.
	SizeBuckets = []float64{
		256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
		1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20,
	}
)

// Histogram is a fixed-bucket histogram of float64 observations. Buckets
// are defined by sorted upper bounds; one extra overflow bucket catches
// observations above the last bound. Observe is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits; valid only when count > 0

	// Slow-trace exemplars: the trace IDs behind the largest observations,
	// so a fat top bucket in /v1/debug/metrics links directly to span
	// trees in /v1/debug/traces. exMin caches the smallest retained
	// exemplar value so the common case (not a new extreme) is one atomic
	// load, no lock.
	exMin     atomic.Uint64 // float64 bits; 0 until slots fill
	exMu      sync.Mutex
	exemplars []Exemplar
}

// exemplarSlots bounds retained exemplars per histogram.
const exemplarSlots = 4

// Exemplar ties one large observation to the trace that produced it.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

// NewHistogram builds a histogram over the given upper bounds, which
// must be strictly ascending. Unsorted or duplicate bounds panic at
// registration time: silently reordering them (the old behaviour) hid
// caller bugs behind buckets that no longer meant what the call site
// said, and a duplicated bound made one bucket permanently empty.
func NewHistogram(bounds []float64) *Histogram {
	validateBounds(bounds)
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	return &Histogram{bounds: cp, counts: make([]atomic.Int64, len(cp)+1)}
}

// validateBounds panics unless bounds are strictly ascending.
func validateBounds(bounds []float64) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			break
		}
	}
	for {
		old := h.max.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveSince records the elapsed wall-clock time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// ObserveExemplar records v and, when traceID is non-empty and v ranks
// among the largest observations seen, retains (v, traceID) as an
// exemplar. An empty traceID (request not traced) degrades to a plain
// Observe — the unsampled hot path pays one extra branch.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	// Fast reject: slots full and v no larger than the smallest retained.
	// exMin is zero until the slots fill, so early exemplars always pass.
	if v <= math.Float64frombits(h.exMin.Load()) {
		return
	}
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if len(h.exemplars) < exemplarSlots {
		h.exemplars = append(h.exemplars, Exemplar{Value: v, TraceID: traceID})
		if len(h.exemplars) == exemplarSlots {
			h.exMin.Store(math.Float64bits(h.minExemplarLocked()))
		}
		return
	}
	minIdx := 0
	for i, ex := range h.exemplars {
		if ex.Value < h.exemplars[minIdx].Value {
			minIdx = i
		}
	}
	if v <= h.exemplars[minIdx].Value {
		return // lost a race with a larger concurrent observation
	}
	h.exemplars[minIdx] = Exemplar{Value: v, TraceID: traceID}
	h.exMin.Store(math.Float64bits(h.minExemplarLocked()))
}

// ObserveSinceExemplar is ObserveSince with exemplar attribution.
func (h *Histogram) ObserveSinceExemplar(start time.Time, traceID string) {
	h.ObserveExemplar(time.Since(start).Seconds(), traceID)
}

func (h *Histogram) minExemplarLocked() float64 {
	min := math.Inf(1)
	for _, ex := range h.exemplars {
		if ex.Value < min {
			min = ex.Value
		}
	}
	return min
}

// Exemplars returns retained exemplars, largest first.
func (h *Histogram) Exemplars() []Exemplar {
	h.exMu.Lock()
	out := make([]Exemplar, len(h.exemplars))
	copy(out, h.exemplars)
	h.exMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Value > out[j].Value })
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// CountAtOrBelow returns how many observations landed in buckets whose
// upper bound is <= bound. This is the histogram-resolution answer to
// "how many requests finished within the threshold": thresholds between
// bucket bounds are effectively rounded down to the nearest bound, so
// SLO latency targets should sit on a bucket boundary for exactness.
func (h *Histogram) CountAtOrBelow(bound float64) int64 {
	var cum int64
	for i, b := range h.bounds {
		if b > bound {
			break
		}
		cum += h.counts[i].Load()
	}
	return cum
}

// Bounds returns the histogram's bucket upper bounds (shared slice; do
// not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCount returns the raw count of bucket i, where i == len(Bounds())
// addresses the overflow bucket.
func (h *Histogram) BucketCount(i int) int64 { return h.counts[i].Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Max returns the largest observation, or 0 with no observations.
func (h *Histogram) Max() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation inside the bucket holding the target rank. Observations
// in the overflow bucket are approximated by the maximum seen.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n < target {
			cum += n
			continue
		}
		if i == len(h.bounds) { // overflow bucket
			return h.Max()
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (target - cum) / n
		return lo + (hi-lo)*frac
	}
	return h.Max()
}

// Name renders a labelled metric name: Name("x_total", "op", "put")
// yields `x_total{op="put"}`. Labels are alternating key, value pairs
// and are rendered in the order given.
func Name(base string, labels ...string) string {
	if len(labels) == 0 {
		return base
	}
	var b strings.Builder
	b.Grow(len(base) + 16*len(labels))
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(labels[i+1])
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}
