package experiments

import (
	"fmt"
	"strings"
	"time"

	"gallery/internal/core"
	"gallery/internal/rules"
	"gallery/internal/uuid"
)

// --- Experiment E4 — paper Figure 4: base-version-id lineage ---

// LineageResult is the reproduced Figure 4: instances grouped under base
// version ids, in training order.
type LineageResult struct {
	Bases map[string][]*core.Instance
}

// LineageFigure4 registers the paper's two base versions, trains one
// instance under demand_conversion and four under supply_cancellation,
// and traverses both lineages.
func LineageFigure4() (*LineageResult, error) {
	env := mustEnv(4)
	res := &LineageResult{Bases: map[string][]*core.Instance{}}
	for _, base := range []string{"demand_conversion", "supply_cancellation"} {
		m, err := env.Reg.RegisterModel(core.ModelSpec{
			BaseVersionID: base, Project: "marketplace", Name: "forecaster",
		})
		if err != nil {
			return nil, err
		}
		n := 1
		if base == "supply_cancellation" {
			n = 4
		}
		for i := 0; i < n; i++ {
			env.Clock.Advance(time.Hour)
			if _, err := env.Reg.UploadInstance(core.InstanceSpec{
				ModelID: m.ID, Name: fmt.Sprintf("iteration-%d", i+1),
			}, []byte(fmt.Sprintf("%s-%d", base, i))); err != nil {
				return nil, err
			}
		}
		lineage, err := env.Reg.Lineage(base)
		if err != nil {
			return nil, err
		}
		res.Bases[base] = lineage
	}
	return res, nil
}

// Format renders the lineage like Figure 4's two columns.
func (r *LineageResult) Format() string {
	var b strings.Builder
	for _, base := range []string{"demand_conversion", "supply_cancellation"} {
		fmt.Fprintf(&b, "base version id %q:\n", base)
		for i, in := range r.Bases[base] {
			fmt.Fprintf(&b, "  %d. %s  (trained %s)\n", i+1, in.ID, in.Created.Format(time.RFC3339))
		}
	}
	return b.String()
}

// --- Experiment E5 — paper Figures 5–7: dependency version propagation ---

// DepSnapshot is one model's state at one step of the walkthrough.
type DepSnapshot struct {
	Model      string
	Latest     string
	Production string
	Cause      core.VersionCause
}

// DepStep is the full graph state after one figure's action.
type DepStep struct {
	Title     string
	Snapshots []DepSnapshot
}

// DependencyFigures replays Figures 5, 6, and 7 exactly and returns the
// version table after each step.
func DependencyFigures() ([]DepStep, error) {
	env := mustEnv(5)
	reg := env.Reg
	register := func(base string, major int, ups ...uuid.UUID) (*core.Model, error) {
		return reg.RegisterModel(core.ModelSpec{
			BaseVersionID: base, Project: "marketplace", InitialMajor: major, Upstreams: ups,
		})
	}
	b, err := register("B", 2)
	if err != nil {
		return nil, err
	}
	c, err := register("C", 3)
	if err != nil {
		return nil, err
	}
	a, err := register("A", 4, b.ID, c.ID)
	if err != nil {
		return nil, err
	}
	x, err := register("X", 7, a.ID)
	if err != nil {
		return nil, err
	}
	y, err := register("Y", 8, a.ID)
	if err != nil {
		return nil, err
	}
	order := []*core.Model{a, b, c, x, y}

	snapshot := func(title string) (DepStep, error) {
		step := DepStep{Title: title}
		for _, m := range order {
			latest, err := reg.LatestVersion(m.ID)
			if err != nil {
				return step, err
			}
			prod, err := reg.ProductionVersion(m.ID)
			if err != nil {
				return step, err
			}
			step.Snapshots = append(step.Snapshots, DepSnapshot{
				Model: m.BaseVersionID, Latest: latest.String(),
				Production: prod.String(), Cause: latest.Cause,
			})
		}
		return step, nil
	}

	var steps []DepStep
	s, err := snapshot("Figure 5: initial graph (X,Y -> A -> B,C)")
	if err != nil {
		return nil, err
	}
	steps = append(steps, s)

	// Figure 6: B's instance updates 2.0 -> 2.1.
	env.Clock.Advance(time.Hour)
	if _, err := reg.UploadInstance(core.InstanceSpec{ModelID: b.ID, Name: "B retrained"}, []byte("b2")); err != nil {
		return nil, err
	}
	s, err = snapshot("Figure 6: after updating B's instance (2.0 -> 2.1)")
	if err != nil {
		return nil, err
	}
	steps = append(steps, s)

	// Figure 7: add D as a dependency of A.
	d, err := register("D", 5)
	if err != nil {
		return nil, err
	}
	order = append(order, d)
	if err := reg.AddDependency(a.ID, d.ID); err != nil {
		return nil, err
	}
	s, err = snapshot("Figure 7: after adding D as a dependency of A")
	if err != nil {
		return nil, err
	}
	steps = append(steps, s)
	return steps, nil
}

// FormatDepSteps renders the walkthrough tables.
func FormatDepSteps(steps []DepStep) string {
	var b strings.Builder
	for _, s := range steps {
		fmt.Fprintf(&b, "%s\n", s.Title)
		fmt.Fprintf(&b, "  %-6s %-8s %-12s %s\n", "model", "latest", "production", "cause of latest")
		for _, snap := range s.Snapshots {
			fmt.Fprintf(&b, "  %-6s %-8s %-12s %s\n", snap.Model, snap.Latest, snap.Production, snap.Cause)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// --- Experiment E6 — paper Figure 8: rule engine workflow ---

// Fig8Result captures both clients of Figure 8: the selection trigger
// (Client 1) and the action trigger on a metric update (Client 2).
type Fig8Result struct {
	// Champion is the instance returned to Client 1.
	Champion uuid.UUID
	// ChampionName is its instance name.
	ChampionName string
	// Deployments lists instances deployed by Client 2's action rule.
	Deployments []uuid.UUID
	// RejectedFirst reports that the first, out-of-threshold metric did
	// not trigger a deployment.
	RejectedFirst bool
	EngineStats   rules.Stats
}

// RuleEngineFigure8 runs the paper's Listing 1 selection rule and Listing
// 2 action rule through the engine's job queue.
func RuleEngineFigure8() (*Fig8Result, error) {
	env := mustEnv(8)
	res := &Fig8Result{}

	m, err := env.Reg.RegisterModel(core.ModelSpec{
		BaseVersionID: "uberx_demand", Project: "forecasting",
		Name: "linear_regression", Domain: "UberX",
	})
	if err != nil {
		return nil, err
	}
	rf, err := env.Reg.RegisterModel(core.ModelSpec{
		BaseVersionID: "uberx_rf", Project: "forecasting",
		Name: "Random Forest", Domain: "UberX",
	})
	if err != nil {
		return nil, err
	}

	// Candidates for selection: three linear_regression instances with
	// varying mae and freshness.
	var candidates []*core.Instance
	for i, mae := range []float64{2.0, 3.5, 9.0} {
		env.Clock.Advance(time.Hour)
		in, err := env.Reg.UploadInstance(core.InstanceSpec{
			ModelID: m.ID, Name: fmt.Sprintf("lr-%d", i),
		}, []byte{byte(i)})
		if err != nil {
			return nil, err
		}
		if _, err := env.Reg.InsertMetric(in.ID, "mae", core.ScopeValidation, mae); err != nil {
			return nil, err
		}
		candidates = append(candidates, in)
	}

	selection := &rules.Rule{
		UUID: "316b3ab4-2509-4ea7-8025-00ca879dac61", Team: "forecasting",
		Name: "listing-1", Kind: rules.KindSelection,
		Given:          `model_name == "linear_regression" && model_domain == "UberX"`,
		When:           `metrics["mae"] < 5`,
		Environment:    "production",
		ModelSelection: "a.created_time > b.created_time",
	}
	action := &rules.Rule{
		UUID: "4365754a-92bb-4421-a1be-00d7d87f77a0", Team: "forecasting",
		Name: "listing-2", Kind: rules.KindAction,
		Given:       `model_domain == "UberX" && model_name == "Random Forest"`,
		When:        "metrics.bias <= 0.1 && metrics.bias >= -0.1",
		Environment: "production",
		Actions:     []rules.ActionRef{{Action: "forecasting_deployment"}},
	}
	if _, err := env.Repo.Commit("forecasting", "listings 1+2", []*rules.Rule{selection, action}, nil); err != nil {
		return nil, err
	}

	env.Engine.RegisterAction("forecasting_deployment", func(ctx *rules.ActionContext) error {
		res.Deployments = append(res.Deployments, ctx.Instance.ID)
		return nil
	})
	env.Engine.Start(2)
	defer env.Engine.Stop()

	// Client 1: direct selection request. The freshest candidate fails the
	// mae threshold, so the middle one must win.
	champ, err := env.Engine.SelectModel(selection.UUID, core.InstanceFilter{})
	if err != nil {
		return nil, err
	}
	res.Champion = champ.ID
	res.ChampionName = champ.Name
	if champ.ID != candidates[1].ID {
		return nil, fmt.Errorf("fig8: champion %s, want the freshest qualifying candidate", champ.Name)
	}

	// Client 2: metric updates trigger the action rule.
	env.Clock.Advance(time.Hour)
	rfIn, err := env.Reg.UploadInstance(core.InstanceSpec{ModelID: rf.ID, Name: "Random Forest"}, []byte("rf"))
	if err != nil {
		return nil, err
	}
	if _, err := env.Reg.InsertMetric(rfIn.ID, "bias", core.ScopeValidation, 0.7); err != nil {
		return nil, err
	}
	env.Engine.MetricUpdated(rfIn.ID)
	env.Engine.Flush()
	res.RejectedFirst = len(res.Deployments) == 0

	env.Clock.Advance(time.Hour)
	if _, err := env.Reg.InsertMetric(rfIn.ID, "bias", core.ScopeValidation, 0.03); err != nil {
		return nil, err
	}
	env.Engine.MetricUpdated(rfIn.ID)
	env.Engine.Flush()

	res.EngineStats = env.Engine.Stats()
	return res, nil
}

// Format renders the Figure 8 outcome.
func (r *Fig8Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Client 1 (selection trigger): champion = %s (%s)\n", r.ChampionName, r.Champion)
	fmt.Fprintf(&b, "Client 2 (metric-update trigger): out-of-threshold metric rejected = %v\n", r.RejectedFirst)
	fmt.Fprintf(&b, "Client 2 deployments after in-threshold metric: %d\n", len(r.Deployments))
	fmt.Fprintf(&b, "engine stats: %+v\n", r.EngineStats)
	return b.String()
}
