package rules

import (
	"context"
	"testing"
)

// profileRule pages when a hot-path regression exceeds 3x baseline.
func profileRule() *Rule {
	return &Rule{
		UUID:        "9f1f6f60-0000-4000-8000-000000000010",
		Team:        "forecasting",
		Name:        "page-on-profile-regression",
		Kind:        KindAction,
		When:        `profile.event == "regression" && profile.factor > 3.0`,
		Environment: "production",
		Actions:     []ActionRef{{Action: "page"}},
	}
}

func TestProfileEventFiresWatchingRule(t *testing.T) {
	h := newHarness(t)
	h.commit(t, profileRule())

	var fired []*ActionContext
	h.eng.RegisterAction("page", func(ac *ActionContext) error {
		fired = append(fired, ac)
		return nil
	})

	// Mild deviation: under the rule's factor threshold.
	h.eng.ProfileEvent(context.Background(), "regression", map[string]any{
		"process": "galleryd", "function": "hogEncode", "share": 0.1, "baseline": 0.05, "factor": 2.0,
	})
	if len(fired) != 0 {
		t.Fatalf("rule fired at factor 2: %+v", fired)
	}
	// Severe regression fires; the action context has no instance — the
	// event is process-scoped.
	h.eng.ProfileEvent(context.Background(), "regression", map[string]any{
		"process": "galleryd", "function": "hogEncode", "share": 0.4, "baseline": 0.05, "factor": 8.0,
	})
	if len(fired) != 1 {
		t.Fatalf("fired %d times, want 1", len(fired))
	}
	if fired[0].Instance != nil {
		t.Fatalf("profile event carried an instance: %+v", fired[0].Instance)
	}
	// No "environment build failed" alert from the nil-instance path.
	if alerts := h.eng.Alerts(); len(alerts) != 0 {
		t.Fatalf("alerts = %+v", alerts)
	}
}

func TestProfileEventIgnoresNonWatchingRules(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "demand", "UberX")
	h.upload(t, m, "sf")
	r := &Rule{
		UUID: "9f1f6f60-0000-4000-8000-000000000011",
		Team: "forecasting", Name: "metric-rule", Kind: KindAction,
		When:    `metrics.mape >= 0`,
		Actions: []ActionRef{{Action: "alert"}},
	}
	h.commit(t, r)
	before := h.eng.Stats().Evaluations
	h.eng.ProfileEvent(context.Background(), "regression", map[string]any{"factor": 99.0})
	if got := h.eng.Stats().Evaluations; got != before {
		t.Fatalf("profile event evaluated a metrics-only rule (%d -> %d)", before, got)
	}
}

// A profile rule that also references instance metrics fails soft (the
// reference evaluates against an empty metrics map), never firing and
// never crashing.
func TestProfileEventMetricsReferenceFailsSoft(t *testing.T) {
	h := newHarness(t)
	r := profileRule()
	r.When = `profile.event == "regression" && metrics.mape < 10`
	h.commit(t, r)
	fired := 0
	h.eng.RegisterAction("page", func(*ActionContext) error { fired++; return nil })
	h.eng.ProfileEvent(context.Background(), "regression", map[string]any{"factor": 99.0})
	if fired != 0 {
		t.Fatal("rule with unresolvable metrics reference fired")
	}
}
