package serve

import (
	"context"
	"sync/atomic"
	"time"

	"gallery/internal/api"
	"gallery/internal/obs/sketch"
)

// This file is the gateway side of the continuous model-health pipeline
// (paper §3.6 made continuous): every prediction is folded into per-model
// distribution sketches — predicted values and request latency — plus
// request/stale counters, all lock-free and allocation-free on the hot
// path. A background loop periodically cuts the window and ships it to a
// HealthSink (galleryd's POST /v1/health/observations), where the health
// monitor compares live windows against each model's reference
// distribution.

// HealthSink receives flushed observation windows. *client.Client
// satisfies it; tests and in-process experiments can hand the monitor's
// ingest directly.
type HealthSink interface {
	ReportHealthObservations(ctx context.Context, req api.HealthObservationsRequest) error
}

// Sketch geometries. Values cover forecast magnitudes (defaults span
// 1e-4..1e9); latencies cover 1µs..1000s in seconds.
var (
	valueSketchCfg   = sketch.Config{}
	latencySketchCfg = sketch.Config{Lo: 1e-6, Hi: 1e3, Buckets: 128}
)

// entryHealth is one model's live observation window. Sketches sit behind
// atomic pointers so a flush swaps in fresh ones and snapshots the old
// window without stopping traffic; an observation racing the cut lands in
// one window or the next, never lost and never torn.
type entryHealth struct {
	values      atomic.Pointer[sketch.Sketch]
	latency     atomic.Pointer[sketch.Sketch]
	requests    atomic.Int64
	staleServes atomic.Int64
	windowStart atomic.Int64 // unix nanos
}

func newEntryHealth(now time.Time) *entryHealth {
	h := &entryHealth{}
	h.values.Store(sketch.New(valueSketchCfg))
	h.latency.Store(sketch.New(latencySketchCfg))
	h.windowStart.Store(now.UnixNano())
	return h
}

// record folds one served prediction into the current window. Hot path:
// atomic adds only, no allocation.
func (h *entryHealth) record(value, latSeconds float64, stale bool) {
	h.requests.Add(1)
	if stale {
		h.staleServes.Add(1)
	}
	h.values.Load().Observe(value)
	h.latency.Load().Observe(latSeconds)
}

// cut closes the current window and opens a fresh one, returning the
// closed window's observation. ok is false when the window saw no
// traffic (the window still advances).
func (h *entryHealth) cut(now time.Time) (api.HealthObservation, bool) {
	start := time.Unix(0, h.windowStart.Swap(now.UnixNano()))
	req := h.requests.Swap(0)
	if req == 0 {
		return api.HealthObservation{}, false
	}
	stale := h.staleServes.Swap(0)
	vals := h.values.Swap(sketch.New(valueSketchCfg))
	lat := h.latency.Swap(sketch.New(latencySketchCfg))
	return api.HealthObservation{
		WindowStart: start,
		WindowEnd:   now,
		Requests:    req,
		StaleServes: stale,
		Values:      vals.Snapshot(),
		Latency:     lat.Snapshot(),
	}, true
}

// reset discards the current window — used after a hot swap so one window
// never mixes two instances' output distributions.
func (h *entryHealth) reset(now time.Time) {
	h.cut(now)
}

// healthLoop flushes observation windows until Close, with a final flush
// on the way out so a clean shutdown keeps its last partial window.
func (g *Gateway) healthLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-g.done:
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = g.FlushHealth(ctx)
			cancel()
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), g.opts.HealthInterval)
			_ = g.FlushHealth(ctx)
			cancel()
		}
	}
}

// FlushHealth cuts every loaded model's observation window and ships the
// non-empty ones to the HealthSink. Exported so tests and experiments can
// flush deterministically instead of waiting out the interval. A sink
// error leaves the cut windows dropped (sketches are statistics, not
// ledgers); the error counter and the monitor's missing-window view make
// the gap visible.
func (g *Gateway) FlushHealth(ctx context.Context) error {
	if g.opts.HealthSink == nil {
		return nil
	}
	g.mu.Lock()
	es := make([]*entry, 0, len(g.entries))
	for _, e := range g.entries {
		es = append(es, e)
	}
	g.mu.Unlock()

	now := time.Now()
	var out []api.HealthObservation
	for _, e := range es {
		if e.health == nil {
			continue
		}
		select {
		case <-e.ready:
		default:
			continue // initial load still in flight
		}
		if e.loadErr != nil {
			continue
		}
		o, ok := e.health.cut(now)
		if !ok {
			continue
		}
		o.ModelID = e.modelID
		if srv := e.cur.Load(); srv != nil {
			o.InstanceID = srv.version.InstanceID
			o.VersionID = srv.version.ID
			o.Version = srv.version.Version
		}
		out = append(out, o)
	}
	if len(out) == 0 {
		return nil
	}
	g.mx.healthFlushes.Inc()
	err := g.opts.HealthSink.ReportHealthObservations(ctx, api.HealthObservationsRequest{
		Gateway:      g.opts.Name,
		Observations: out,
	})
	if err != nil {
		g.mx.healthFlushErrs.Inc()
	}
	return err
}
