package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gallery/internal/api"
	"gallery/internal/blobstore"
	"gallery/internal/client"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/incident"
	"gallery/internal/obs"
	"gallery/internal/obs/httpmw"
	"gallery/internal/obs/profile"
	"gallery/internal/relstore"
	"gallery/internal/rules"
	"gallery/internal/slo"
	"gallery/internal/tenant"
	"gallery/internal/uuid"
)

// authHarness is the multi-tenant variant of the test harness: the same
// registry stack fronted by a tenant.Manager, plus one client per role.
type authHarness struct {
	ts    *httptest.Server
	srv   *Server
	tm    *tenant.Manager
	obs   *obs.Registry
	clk   *clock.Mock
	admin *client.Client // default-ns operator
}

func newAuthHarness(t *testing.T) *authHarness {
	t.Helper()
	clk := clock.NewMock(t0)
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk,
		UUIDs: uuid.NewSeeded(31),
	})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewRegistry()
	tm, err := tenant.Open(relstore.NewMemory(), tenant.Options{
		Clock: clk,
		UUIDs: uuid.NewSeeded(32),
		Obs:   o,
		Audit: reg.Audit(),
	})
	if err != nil {
		t.Fatal(err)
	}
	repo := rules.NewRepo(clk)
	eng := rules.NewEngine(reg, repo, clk)
	// The evaluator needs a namespace-scope source or Create rejects
	// every objective; use the same RED vectors the middleware records.
	red := httpmw.NewRED(o)
	sloSvc, err := slo.Open(relstore.NewMemory(), slo.VecSource{
		Requests: red.Requests, Errors: red.Errors, Latency: red.Latency,
	}, slo.Config{Clock: clk, Obs: o, UUIDs: uuid.NewSeeded(34)})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := incident.Open(reg.DAL(), incident.Config{
		Obs: o, Audit: reg.Audit(), Clock: clk, UUIDs: uuid.NewSeeded(35),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWith(reg, repo, eng, Options{Obs: o, Tenants: tm, SLO: sloSvc, Incidents: rec,
		Profiles: profile.NewFleet(0)})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	h := &authHarness{ts: ts, srv: srv, tm: tm, obs: o, clk: clk}
	adminSecret := h.mint(t, tenant.DefaultNamespace, "root", tenant.RoleOperator)
	h.admin = h.client(adminSecret)
	return h
}

func (h *authHarness) mint(t *testing.T, ns, name string, role tenant.Role) string {
	t.Helper()
	secret, _, err := h.tm.MintToken(t.Context(), ns, name, role)
	if err != nil {
		t.Fatal(err)
	}
	return secret
}

func (h *authHarness) client(secret string) *client.Client {
	return client.NewWith(h.ts.URL, client.Options{
		HTTP: h.ts.Client(), Token: secret, Retries: 0,
	})
}

func wantStatus(t *testing.T, err error, status int) *client.APIError {
	t.Helper()
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want APIError with status %d", err, status)
	}
	if apiErr.Status != status {
		t.Fatalf("status = %d (%s), want %d", apiErr.Status, apiErr.Msg, status)
	}
	return apiErr
}

func TestAuthNoToken(t *testing.T) {
	h := newAuthHarness(t)
	anon := client.New(h.ts.URL, h.ts.Client())
	_, err := anon.Stats()
	wantStatus(t, err, http.StatusUnauthorized)
	if got := h.obs.Counter("tenant_unauthenticated_total").Value(); got == 0 {
		t.Fatal("tenant_unauthenticated_total not incremented")
	}
	// The health probe path stays exempt so load balancers keep working:
	// it passes the auth gate without a token and reaches the router (the
	// registry daemon has no such route, so 404 — anything but 401).
	resp, err := h.ts.Client().Get(h.ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusUnauthorized {
		t.Fatal("healthz rejected with 401 under auth; probe exemption broken")
	}
}

func TestAuthReaderCannotMutate(t *testing.T) {
	h := newAuthHarness(t)
	if _, err := h.admin.CreateNamespace(api.CreateNamespaceRequest{Name: "maps"}); err != nil {
		t.Fatal(err)
	}
	reader := h.client(h.mint(t, "maps", "dash", tenant.RoleReader))

	_, err := reader.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv-1", Name: "maps/eta", Owner: "x", Team: "maps", Domain: "maps"})
	wantStatus(t, err, http.StatusForbidden)
	if got := h.obs.Counter("tenant_forbidden_total").Value(); got != 1 {
		t.Fatalf("tenant_forbidden_total = %d, want 1", got)
	}
	// The denial is on the audit trail with the verified identity.
	h.srv.Flush()
	evs, err := h.admin.AuditEvents(client.AuditQuery{Action: "auth.denied"})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 {
		t.Fatalf("auth.denied events = %d, want 1", len(evs))
	}
	if evs[0].Actor != "maps/dash" || evs[0].EntityID != "maps" {
		t.Fatalf("denial event = %+v", evs[0])
	}
	// Reads still work for the same token.
	if _, err := reader.Stats(); err != nil {
		t.Fatal(err)
	}

	// A publisher can mutate models but not the control plane.
	pub := h.client(h.mint(t, "maps", "trainer", tenant.RolePublisher))
	if _, err := pub.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv-1", Name: "maps/eta", Owner: "x", Team: "maps", Domain: "maps"}); err != nil {
		t.Fatal(err)
	}
	_, err = pub.CreateNamespace(api.CreateNamespaceRequest{Name: "rogue"})
	wantStatus(t, err, http.StatusForbidden)
}

func TestAuthRevokedTokenRejectedNextRequest(t *testing.T) {
	h := newAuthHarness(t)
	secret, tok, err := h.tm.MintToken(t.Context(), tenant.DefaultNamespace, "temp", tenant.RoleReader)
	if err != nil {
		t.Fatal(err)
	}
	c := h.client(secret)
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
	// Revoke through the admin API, then the very next request must fail —
	// no grace period, including for the server's resolution cache.
	if err := h.admin.RevokeToken(tenant.DefaultNamespace, tok.ID); err != nil {
		t.Fatal(err)
	}
	_, err = c.Stats()
	wantStatus(t, err, http.StatusUnauthorized)
}

func TestAuthRateLimit(t *testing.T) {
	h := newAuthHarness(t)
	if _, err := h.admin.CreateNamespace(api.CreateNamespaceRequest{Name: "noisy", RatePerSec: 1, Burst: 3}); err != nil {
		t.Fatal(err)
	}
	c := h.client(h.mint(t, "noisy", "flood", tenant.RoleReader))
	for i := 0; i < 3; i++ {
		if _, err := c.Stats(); err != nil {
			t.Fatalf("request %d within burst: %v", i, err)
		}
	}
	_, err := c.Stats()
	apiErr := wantStatus(t, err, http.StatusTooManyRequests)
	if apiErr.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", apiErr.RetryAfter)
	}
	if got := h.obs.Counter("tenant_rate_limited_total").Value(); got != 1 {
		t.Fatalf("tenant_rate_limited_total = %d, want 1", got)
	}
	// The mock clock advances; the bucket refills and admits again.
	h.clk.Advance(2 * time.Second)
	if _, err := c.Stats(); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	// Other namespaces never queued behind the noisy one.
	if _, err := h.admin.Stats(); err != nil {
		t.Fatalf("quiet tenant: %v", err)
	}
}

func TestAuthModelQuota(t *testing.T) {
	h := newAuthHarness(t)
	if _, err := h.admin.CreateNamespace(api.CreateNamespaceRequest{Name: "maps", MaxModels: 1}); err != nil {
		t.Fatal(err)
	}
	pub := h.client(h.mint(t, "maps", "trainer", tenant.RolePublisher))
	if _, err := pub.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv-1", Name: "maps/eta", Owner: "x", Team: "maps", Domain: "maps"}); err != nil {
		t.Fatal(err)
	}
	_, err := pub.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv-1", Name: "maps/surge", Owner: "x", Team: "maps", Domain: "maps"})
	wantStatus(t, err, http.StatusForbidden)
	if got := h.obs.Counter("tenant_quota_denied_total").Value(); got != 1 {
		t.Fatalf("tenant_quota_denied_total = %d, want 1", got)
	}
	// A publisher cannot register into someone else's namespace either.
	if _, err := h.admin.CreateNamespace(api.CreateNamespaceRequest{Name: "fraud"}); err != nil {
		t.Fatal(err)
	}
	_, err = pub.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv-1", Name: "fraud/scores", Owner: "x", Team: "maps", Domain: "maps"})
	wantStatus(t, err, http.StatusForbidden)
}

func TestAuthBlobQuotaAndRelease(t *testing.T) {
	h := newAuthHarness(t)
	if _, err := h.admin.CreateNamespace(api.CreateNamespaceRequest{Name: "maps", MaxBlobBytes: 1000}); err != nil {
		t.Fatal(err)
	}
	pub := h.client(h.mint(t, "maps", "trainer", tenant.RolePublisher))
	m, err := pub.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv-1", Name: "maps/eta", Owner: "x", Team: "maps", Domain: "maps"})
	if err != nil {
		t.Fatal(err)
	}
	blob := make([]byte, 600)
	if _, err := pub.UploadInstance(api.UploadInstanceRequest{ModelID: m.ID, Blob: blob}); err != nil {
		t.Fatal(err)
	}
	// 600 + 600 > 1000: over quota, distinct 413 status.
	_, err = pub.UploadInstance(api.UploadInstanceRequest{ModelID: m.ID, Blob: blob})
	wantStatus(t, err, http.StatusRequestEntityTooLarge)

	// A failed upload (bad model id) must release its reservation: usage
	// stays at the one stored blob, and the headroom is still usable.
	_, err = pub.UploadInstance(api.UploadInstanceRequest{ModelID: "no-such-model", Blob: make([]byte, 300)})
	wantStatus(t, err, http.StatusBadRequest)
	u, err := h.tm.GetUsage("maps")
	if err != nil {
		t.Fatal(err)
	}
	if u.BlobBytes != 600 {
		t.Fatalf("blob usage = %d after failed upload, want 600 (reservation leaked)", u.BlobBytes)
	}
	if _, err := pub.UploadInstance(api.UploadInstanceRequest{ModelID: m.ID, Blob: make([]byte, 300)}); err != nil {
		t.Fatalf("upload within released headroom: %v", err)
	}
}

// TestAuthActorSpoofIgnored proves a client-declared X-Gallery-Actor header
// cannot forge audit attribution once auth is on: the trail records the
// verified token identity.
func TestAuthActorSpoofIgnored(t *testing.T) {
	h := newAuthHarness(t)
	if _, err := h.admin.CreateNamespace(api.CreateNamespaceRequest{Name: "maps"}); err != nil {
		t.Fatal(err)
	}
	secret := h.mint(t, "maps", "trainer", tenant.RolePublisher)
	spoofer := client.NewWith(h.ts.URL, client.Options{
		HTTP: h.ts.Client(), Token: secret, Actor: "legal@uber",
	})
	m, err := spoofer.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv-1", Name: "maps/eta", Owner: "x", Team: "maps", Domain: "maps"})
	if err != nil {
		t.Fatal(err)
	}
	h.srv.Flush()
	evs, err := h.admin.AuditEvents(client.AuditQuery{Model: m.ID})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("no audit events for registered model")
	}
	for _, ev := range evs {
		if ev.Actor != "maps/trainer" {
			t.Fatalf("audit actor = %q, want verified identity maps/trainer", ev.Actor)
		}
	}
	if got := h.obs.Counter("tenant_actor_header_ignored_total").Value(); got == 0 {
		t.Fatal("tenant_actor_header_ignored_total not incremented")
	}
}

// TestAnonymousActorWithoutAuth covers the auth-off fallback: mutations
// with no X-Gallery-Actor are attributed to "anonymous" and counted.
func TestAnonymousActorWithoutAuth(t *testing.T) {
	clk := clock.NewMock(t0)
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk, UUIDs: uuid.NewSeeded(33),
	})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewRegistry()
	srv := NewWith(reg, nil, nil, Options{Obs: o})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	c := client.New(ts.URL, ts.Client()) // no Actor, no Token
	m, err := c.RegisterModel(api.RegisterModelRequest{BaseVersionID: "bv-1", Name: "eta", Owner: "x", Team: "maps", Domain: "maps"})
	if err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	evs, err := c.AuditEvents(client.AuditQuery{Model: m.ID})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("no audit events for registered model")
	}
	for _, ev := range evs {
		if ev.Actor != "anonymous" {
			t.Fatalf("audit actor = %q, want anonymous", ev.Actor)
		}
	}
	if got := o.Counter("audit_anonymous_actor_total").Value(); got == 0 {
		t.Fatal("audit_anonymous_actor_total not incremented")
	}
}

// TestTenantAdminScoping exercises the /v1/tenants authorization matrix:
// namespace operators manage only their own tokens; instance admins
// (default-ns operators) manage everything.
func TestTenantAdminScoping(t *testing.T) {
	h := newAuthHarness(t)
	if _, err := h.admin.CreateNamespace(api.CreateNamespaceRequest{Name: "maps"}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.admin.CreateNamespace(api.CreateNamespaceRequest{Name: "fraud"}); err != nil {
		t.Fatal(err)
	}
	mapsOp := h.client(h.mint(t, "maps", "lead", tenant.RoleOperator))

	// Namespace operator mints within its own namespace...
	minted, err := mapsOp.MintToken("maps", api.MintTokenRequest{Name: "ci", Role: "reader"})
	if err != nil {
		t.Fatal(err)
	}
	if minted.Token.Namespace != "maps" || minted.Secret == "" {
		t.Fatalf("minted = %+v", minted)
	}
	// ...but not in another tenant's, and cannot create namespaces.
	_, err = mapsOp.MintToken("fraud", api.MintTokenRequest{Name: "spy", Role: "reader"})
	wantStatus(t, err, http.StatusForbidden)
	_, err = mapsOp.CreateNamespace(api.CreateNamespaceRequest{Name: "more"})
	wantStatus(t, err, http.StatusForbidden)

	// Listing is scoped to the caller's namespace for non-admins.
	nss, err := mapsOp.Namespaces()
	if err != nil {
		t.Fatal(err)
	}
	if len(nss) != 1 || nss[0].Name != "maps" {
		t.Fatalf("scoped namespace list = %+v", nss)
	}
	all, err := h.admin.Namespaces()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 { // default, maps, fraud
		t.Fatalf("admin namespace list = %d entries, want 3", len(all))
	}

	// Token listing and revocation stay inside the namespace too: the maps
	// operator cannot revoke a fraud token even by guessed ID.
	fraudSecret, fraudTok, err := h.tm.MintToken(t.Context(), "fraud", "scorer", tenant.RoleReader)
	if err != nil {
		t.Fatal(err)
	}
	err = mapsOp.RevokeToken("maps", fraudTok.ID)
	wantStatus(t, err, http.StatusNotFound)
	if _, ok := h.tm.Resolve(fraudSecret); !ok {
		t.Fatal("fraud token was revoked across namespaces")
	}
}
