package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"gallery/internal/core"
	"gallery/internal/obs/trace"
)

// maxIngestBytes bounds a cross-process span shipment. Traces are small
// (dozens of spans, short attrs); anything near this is abuse.
const maxIngestBytes = 4 << 20

// handleListTraces serves the completed-trace summaries, newest first.
// ?limit=N bounds the list (default 50).
func (s *Server) handleListTraces(w http.ResponseWriter, r *http.Request) {
	limit := 50
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeErr(w, fmt.Errorf("%w: bad limit %q", core.ErrBadSpec, q))
			return
		}
		limit = n
	}
	store := s.tracer.Store()
	// no-store, like the metrics endpoints: debug state is live state.
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, struct {
		Stats  trace.Stats     `json:"stats"`
		Traces []trace.Summary `json:"traces"`
	}{store.Stats(), store.Summaries(limit)})
}

// handleGetTrace renders one trace as a span tree with per-span self-time.
func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	detail, ok := s.tracer.Store().Get(id)
	if !ok {
		writeErr(w, fmt.Errorf("%w: trace %s not in buffer", core.ErrNotFound, id))
		return
	}
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, detail)
}

// handleIngestTraces accepts spans shipped by a tracing peer (the serving
// gateway's exporter), merging them into this process's buffer so one
// request's spans from both processes read as a single trace.
func (s *Server) handleIngestTraces(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxIngestBytes))
	if err != nil {
		writeErr(w, err)
		return
	}
	var req trace.IngestRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, fmt.Errorf("%w: decode spans: %v", core.ErrBadSpec, err))
		return
	}
	s.tracer.Store().Ingest(req.Spans)
	w.WriteHeader(http.StatusNoContent)
}
