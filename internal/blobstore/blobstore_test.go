package blobstore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := NewMemory(Options{})
	data := []byte("serialized random forest")
	loc, err := s.Put("inst-1", data)
	if err != nil {
		t.Fatal(err)
	}
	if loc != "mem://gallery/inst-1" {
		t.Fatalf("location = %q", loc)
	}
	got, err := s.Get(loc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get = %q", got)
	}
}

func TestGetMissing(t *testing.T) {
	s := NewMemory(Options{})
	if _, err := s.Get("mem://gallery/nothing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestBadLocations(t *testing.T) {
	s := NewMemory(Options{})
	for _, loc := range []string{"", "mem://gallery/", "s3://other/x", "inst-1"} {
		if _, err := s.Get(loc); !errors.Is(err, ErrBadLoc) {
			t.Errorf("Get(%q) = %v, want ErrBadLoc", loc, err)
		}
	}
}

func TestInvalidKeys(t *testing.T) {
	s := NewMemory(Options{})
	for _, key := range []string{"", "a/b", "a\\b"} {
		if _, err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) succeeded", key)
		}
	}
}

func TestDelete(t *testing.T) {
	s := NewMemory(Options{})
	loc, err := s.Put("k", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(loc); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(loc); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v", err)
	}
	if err := s.Delete(loc); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v", err)
	}
}

func TestOverwriteSameKey(t *testing.T) {
	// Gallery never overwrites blobs (immutability lives in the DAL/core
	// layers), but the raw store is a plain KV: last write wins.
	s := NewMemory(Options{})
	if _, err := s.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	loc, err := s.Put("k", []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(loc)
	if string(got) != "v2" {
		t.Fatalf("got %q", got)
	}
}

func TestCorruptReplicaFailover(t *testing.T) {
	s := NewMemory(Options{Replicas: 3})
	loc, err := s.Put("k", []byte("precious model bytes"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CorruptReplica(0, "k"); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(loc)
	if err != nil {
		t.Fatalf("Get with one corrupt replica failed: %v", err)
	}
	if string(got) != "precious model bytes" {
		t.Fatalf("got %q", got)
	}
	if s.Stats().CorruptSkips != 1 {
		t.Fatalf("CorruptSkips = %d", s.Stats().CorruptSkips)
	}
}

func TestAllReplicasCorrupt(t *testing.T) {
	s := NewMemory(Options{Replicas: 2})
	loc, err := s.Put("k", []byte("bytes"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := s.CorruptReplica(i, "k"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Get(loc); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get with all replicas corrupt = %v, want ErrCorrupt", err)
	}
}

func TestFaultHookFailsPut(t *testing.T) {
	boom := errors.New("injected")
	fail := true
	s := NewMemory(Options{Hook: func(op OpKind, replica int, key string) error {
		if fail && op == OpPut && replica == 1 {
			return boom
		}
		return nil
	}})
	if _, err := s.Put("k", []byte("x")); !errors.Is(err, boom) {
		t.Fatalf("Put = %v, want injected error", err)
	}
	fail = false
	if _, err := s.Put("k", []byte("x")); err != nil {
		t.Fatalf("Put after clearing fault = %v", err)
	}
}

func TestFaultHookGetFallsThrough(t *testing.T) {
	boom := errors.New("replica down")
	s := NewMemory(Options{Replicas: 3, Hook: func(op OpKind, replica int, key string) error {
		if op == OpGet && replica == 0 {
			return boom
		}
		return nil
	}})
	loc, err := s.Put("k", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(loc); err != nil {
		t.Fatalf("Get with replica 0 down = %v", err)
	}
}

func TestDiskBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDisk(dir, Options{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := s.Put("inst-7", bytes.Repeat([]byte{7}, 10000))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(loc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10000 || got[0] != 7 {
		t.Fatalf("disk round trip corrupted data: len=%d", len(got))
	}

	// A second store over the same directory sees the blob (durability).
	s2, err := NewDisk(dir, Options{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	loc2 := s2.Location("inst-7")
	if _, err := s2.Get(loc2); err != nil {
		t.Fatalf("reopened disk store Get = %v", err)
	}
}

func TestDiskCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDisk(dir, Options{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := s.Put("k", []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CorruptReplica(0, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(loc); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get = %v, want ErrCorrupt", err)
	}
}

func TestKeysListsUnion(t *testing.T) {
	s := NewMemory(Options{Replicas: 2})
	for _, k := range []string{"b", "a", "c"} {
		if _, err := s.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestStatsAndLatencyAccounting(t *testing.T) {
	s := NewMemory(Options{
		Replicas: 2,
		Latency:  LatencyModel{Base: time.Millisecond, PerKB: time.Microsecond},
	})
	loc, err := s.Put("k", make([]byte, 2048))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(loc); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Puts != 1 || st.Gets != 1 || st.BytesIn != 2048 || st.BytesOut != 2048 {
		t.Fatalf("stats = %+v", st)
	}
	// Put: base + 4KiB (2KiB x 2 replicas) transfer; Get: base + 2KiB.
	want := 2*time.Millisecond + 6*time.Microsecond
	if st.Latency != want {
		t.Fatalf("Latency = %v, want %v", st.Latency, want)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewMemory(Options{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				loc, err := s.Put(key, []byte(key))
				if err != nil {
					t.Errorf("put: %v", err)
					return
				}
				got, err := s.Get(loc)
				if err != nil || string(got) != key {
					t.Errorf("get %s: %q %v", key, got, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(s.Keys()); got != 800 {
		t.Fatalf("stored %d blobs, want 800", got)
	}
}

// Property: any payload round-trips bit-exactly through frame/unframe and
// through the store itself.
func TestQuickRoundTrip(t *testing.T) {
	s := NewMemory(Options{})
	i := 0
	f := func(data []byte) bool {
		i++
		loc, err := s.Put(fmt.Sprintf("q%d", i), data)
		if err != nil {
			return false
		}
		got, err := s.Get(loc)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: single-byte corruption anywhere in a framed blob is detected.
func TestQuickCorruptionDetected(t *testing.T) {
	f := func(data []byte, pos uint16) bool {
		framed := frame(data)
		idx := int(pos) % len(framed)
		framed[idx] ^= 0xFF
		_, err := unframe(framed)
		return errors.Is(err, ErrCorrupt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
