package wal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenApplyErrorPropagates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(path, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("record")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("apply failed")
	if _, err := Open(path, Options{}, func([]byte) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Open with failing apply = %v, want wrapped apply error", err)
	}
}

func TestOpenOnDirectoryFails(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, Options{}, nil); err == nil {
		t.Fatal("Open on a directory succeeded")
	}
}

func TestOversizedLengthTreatedAsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := Open(path, Options{}, nil)
	if err := l.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Append a header claiming a multi-GB payload.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<30)
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	count := 0
	l2, err := Open(path, Options{}, func([]byte) error { count++; return nil })
	if err != nil {
		t.Fatalf("recovery from oversized length failed: %v", err)
	}
	defer l2.Close()
	if count != 1 {
		t.Fatalf("replayed %d records, want 1 (oversized header truncated)", count)
	}
	// The torn header must be gone so appends land cleanly.
	if err := l2.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
}

func TestSyncOptionAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(path, Options{Sync: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte("synced")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	count := 0
	l2, err := Open(path, Options{}, func([]byte) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if count != 5 {
		t.Fatalf("replayed %d, want 5", count)
	}
}
