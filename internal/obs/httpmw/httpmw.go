// Package httpmw is the HTTP observability middleware shared by the
// registry server (internal/server) and the serving gateway
// (internal/serve). Both tiers previously reimplemented the status
// recorder and per-route metrics; this package is the single copy, plus
// the tracing entry point: it extracts a W3C-style `traceparent` header,
// starts the process's root span, and stashes it in the request context
// for every layer below to parent onto.
package httpmw

import (
	"log/slog"
	"net/http"
	"time"

	"gallery/internal/obs"
	"gallery/internal/obs/trace"
)

// TraceparentHeader is the propagation header name (W3C Trace Context).
const TraceparentHeader = "traceparent"

// PromContentType is the Content-Type both daemons send on
// /v1/debug/metrics/prom (text exposition format 0.0.4).
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Options configures the middleware.
type Options struct {
	// Obs receives per-route metrics; required.
	Obs *obs.Registry
	// AccessLog, when set, emits one structured line per request.
	AccessLog *slog.Logger
	// Tracer, when set, starts a root span per request (subject to its
	// sampler, or forced by an incoming sampled traceparent).
	Tracer *trace.Tracer
	// AllLatency, when set, additionally observes every request's latency
	// (the server's route-agnostic SLO histogram).
	AllLatency *obs.Histogram
	// TenantOf, when set, resolves a request to its tenant namespace
	// (empty for unauthenticated callers) and turns on per-tenant RED
	// recording: requests, errors (5xx), and latency keyed by namespace
	// in bounded-cardinality vectors. Must be allocation-free — it runs
	// on every request.
	TenantOf func(*http.Request) string
}

// DefaultNamespace labels requests that carry no tenant identity (auth
// off, or the exempt health endpoint) in the per-tenant RED vectors.
const DefaultNamespace = "default"

// RED bundles the per-tenant request/error/duration vectors recorded by
// Wrap. NewRED is idempotent per registry, so the SLO evaluator fetches
// the same handles Wrap writes to.
type RED struct {
	Requests *obs.CounterVec // tenant_http_requests_total{namespace}
	Errors   *obs.CounterVec // tenant_http_errors_total{namespace}
	Latency  *obs.HistogramVec
}

// NewRED returns the per-tenant RED vectors registered in reg.
func NewRED(reg *obs.Registry) RED {
	ns := []string{"namespace"}
	return RED{
		Requests: reg.CounterVec("tenant_http_requests_total", ns, obs.DefaultVecCardinality),
		Errors:   reg.CounterVec("tenant_http_errors_total", ns, obs.DefaultVecCardinality),
		Latency:  reg.HistogramVec("tenant_http_request_seconds", ns, obs.LatencyBuckets, obs.DefaultVecCardinality),
	}
}

// StatusRecorder captures the status code and body size a handler writes,
// for metrics and the access log.
type StatusRecorder struct {
	http.ResponseWriter
	Status      int
	Bytes       int64
	wroteHeader bool
}

// WriteHeader records the first status code written.
func (w *StatusRecorder) WriteHeader(code int) {
	if !w.wroteHeader {
		w.Status = code
		w.wroteHeader = true
	}
	w.ResponseWriter.WriteHeader(code)
}

// Write counts body bytes (and records the implicit 200).
func (w *StatusRecorder) Write(p []byte) (int, error) {
	if !w.wroteHeader {
		w.wroteHeader = true // implicit 200
	}
	n, err := w.ResponseWriter.Write(p)
	w.Bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming handlers keep
// working through the recorder.
func (w *StatusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// StatusClass folds a status code into its class label ("2xx", "4xx", ...).
func StatusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// Wrap returns next behind the observability middleware: per-route request
// counters by status class, latency and body-size histograms (latency
// carries slow-trace exemplars when the request is traced), root span
// start/end, and one structured access-log line. The route label is the
// ServeMux pattern that matched (bounded cardinality), never the raw URL.
func Wrap(next http.Handler, o Options) http.Handler {
	var red RED
	if o.TenantOf != nil {
		red = NewRED(o.Obs) // handles fetched once; per-request path allocates nothing
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx, span := o.Tracer.StartRoot(r.Context(), r.Method+" "+r.URL.Path, r.Header.Get(TraceparentHeader))
		if span != nil {
			r = r.WithContext(ctx)
		}
		rec := &StatusRecorder{ResponseWriter: w, Status: http.StatusOK}
		next.ServeHTTP(rec, r)

		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		elapsed := time.Since(start)
		traceID := span.TraceIDString()

		o.Obs.Counter(obs.Name("http_requests_total", "route", route, "status", StatusClass(rec.Status))).Inc()
		o.Obs.Histogram(obs.Name("http_request_seconds", "route", route), obs.LatencyBuckets).
			ObserveExemplar(elapsed.Seconds(), traceID)
		if o.AllLatency != nil {
			o.AllLatency.ObserveExemplar(elapsed.Seconds(), traceID)
		}
		if r.ContentLength > 0 {
			o.Obs.Histogram(obs.Name("http_request_bytes", "route", route), obs.SizeBuckets).
				Observe(float64(r.ContentLength))
		}
		o.Obs.Histogram(obs.Name("http_response_bytes", "route", route), obs.SizeBuckets).
			Observe(float64(rec.Bytes))

		if o.TenantOf != nil {
			ns := o.TenantOf(r)
			if ns == "" {
				ns = DefaultNamespace
			}
			red.Requests.With(ns).Inc()
			if rec.Status >= 500 {
				red.Errors.With(ns).Inc()
			}
			red.Latency.With(ns).Observe(elapsed.Seconds())
		}

		if span != nil {
			span.Rename(route)
			span.Annotate("http.path", r.URL.Path)
			span.AnnotateInt("http.status", int64(rec.Status))
			span.AnnotateInt("http.response_bytes", rec.Bytes)
			if rec.Status >= 500 {
				span.Fail("http " + StatusClass(rec.Status))
			}
			span.End()
		}

		if o.AccessLog != nil {
			attrs := []any{
				"method", r.Method,
				"path", r.URL.Path,
				"route", route,
				"status", rec.Status,
				"bytes", rec.Bytes,
				"dur_ms", float64(elapsed.Microseconds()) / 1000,
				"remote", r.RemoteAddr,
			}
			if traceID != "" {
				attrs = append(attrs, "trace_id", traceID)
			}
			o.AccessLog.Info("request", attrs...)
		}
	})
}
