package server

// This file holds the multi-tenant admin endpoints (/v1/tenants) and the
// quota hooks the model/instance mutation paths call. Everything here is
// mounted and enforced only when Options.Tenants is set; without it the
// server runs exactly as before.

import (
	"context"
	"fmt"
	"net/http"

	"gallery/internal/api"
	"gallery/internal/tenant"
)

func (s *Server) tenantRoutes() {
	m := s.mux
	m.HandleFunc("POST /v1/tenants", s.handleCreateNamespace)
	m.HandleFunc("GET /v1/tenants", s.handleListNamespaces)
	m.HandleFunc("POST /v1/tenants/{ns}/quotas", s.handleSetQuotas)
	m.HandleFunc("POST /v1/tenants/{ns}/tokens", s.handleMintToken)
	m.HandleFunc("GET /v1/tenants/{ns}/tokens", s.handleListTokens)
	m.HandleFunc("DELETE /v1/tenants/{ns}/tokens/{id}", s.handleRevokeToken)
}

// admin resolves the caller for a tenant-admin request and enforces its
// scope: operators administer their own namespace; operators of the
// default namespace are instance admins and may administer any. The
// route-level role check (operator) already ran in the middleware.
func (s *Server) admin(r *http.Request, targetNS string) (tenant.Identity, error) {
	id, ok := s.tenants.ResolveRequest(r)
	if !ok {
		// Unreachable when the auth middleware is mounted; defensive.
		return tenant.Identity{}, fmt.Errorf("%w: no identity", tenant.ErrForbidden)
	}
	if id.Namespace != tenant.DefaultNamespace && targetNS != "" && targetNS != id.Namespace {
		return id, fmt.Errorf("%w: operator of %q cannot administer namespace %q", tenant.ErrForbidden, id.Namespace, targetNS)
	}
	return id, nil
}

func (s *Server) handleCreateNamespace(w http.ResponseWriter, r *http.Request) {
	// Creating namespaces is instance administration: default-ns only.
	id, err := s.admin(r, "")
	if err == nil && id.Namespace != tenant.DefaultNamespace {
		err = fmt.Errorf("%w: only %q operators create namespaces", tenant.ErrForbidden, tenant.DefaultNamespace)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	var req api.CreateNamespaceRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	ns := tenant.Namespace{
		Name:         req.Name,
		MaxModels:    req.MaxModels,
		MaxBlobBytes: req.MaxBlobBytes,
		RatePerSec:   req.RatePerSec,
		Burst:        req.Burst,
	}
	if err := s.tenants.CreateNamespace(r.Context(), ns); err != nil {
		writeErr(w, err)
		return
	}
	got, u, err := s.tenants.GetNamespace(req.Name)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, namespaceDTO(got, u))
}

func (s *Server) handleListNamespaces(w http.ResponseWriter, r *http.Request) {
	id, err := s.admin(r, "")
	if err != nil {
		writeErr(w, err)
		return
	}
	var out api.TenantsResponse
	for _, ns := range s.tenants.Namespaces() {
		// Own-namespace operators see only their tenant; instance admins
		// see the fleet.
		if id.Namespace != tenant.DefaultNamespace && ns.Name != id.Namespace {
			continue
		}
		u, _ := s.tenants.GetUsage(ns.Name)
		out.Namespaces = append(out.Namespaces, namespaceDTO(ns, u))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSetQuotas(w http.ResponseWriter, r *http.Request) {
	target := r.PathValue("ns")
	// Quota bounds are imposed on tenants, not chosen by them.
	id, err := s.admin(r, "")
	if err == nil && id.Namespace != tenant.DefaultNamespace {
		err = fmt.Errorf("%w: only %q operators set quotas", tenant.ErrForbidden, tenant.DefaultNamespace)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	var req api.SetQuotasRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if err := s.tenants.SetQuotas(r.Context(), target, req.MaxModels, req.MaxBlobBytes, req.RatePerSec, req.Burst); err != nil {
		writeErr(w, err)
		return
	}
	ns, u, err := s.tenants.GetNamespace(target)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, namespaceDTO(ns, u))
}

func (s *Server) handleMintToken(w http.ResponseWriter, r *http.Request) {
	target := r.PathValue("ns")
	if _, err := s.admin(r, target); err != nil {
		writeErr(w, err)
		return
	}
	var req api.MintTokenRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	role, err := tenant.ParseRole(req.Role)
	if err != nil {
		writeErr(w, err)
		return
	}
	secret, tok, err := s.tenants.MintToken(r.Context(), target, req.Name, role)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, api.MintTokenResponse{Secret: secret, Token: tokenDTO(tok)})
}

func (s *Server) handleListTokens(w http.ResponseWriter, r *http.Request) {
	target := r.PathValue("ns")
	if _, err := s.admin(r, target); err != nil {
		writeErr(w, err)
		return
	}
	var out api.TenantTokensResponse
	for _, tok := range s.tenants.Tokens(target) {
		out.Tokens = append(out.Tokens, tokenDTO(tok))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRevokeToken(w http.ResponseWriter, r *http.Request) {
	target := r.PathValue("ns")
	if _, err := s.admin(r, target); err != nil {
		writeErr(w, err)
		return
	}
	tokID := r.PathValue("id")
	// Scope the lookup to the namespace in the path so an operator cannot
	// revoke across tenants by guessing IDs.
	found := false
	for _, tok := range s.tenants.Tokens(target) {
		if tok.ID == tokID {
			found = true
			break
		}
	}
	if !found {
		writeErr(w, fmt.Errorf("%w: token %q in namespace %q", tenant.ErrNotFound, tokID, target))
		return
	}
	if err := s.tenants.RevokeToken(r.Context(), tokID); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func namespaceDTO(ns tenant.Namespace, u tenant.Usage) api.TenantNamespace {
	return api.TenantNamespace{
		Name:         ns.Name,
		MaxModels:    ns.MaxModels,
		MaxBlobBytes: ns.MaxBlobBytes,
		RatePerSec:   ns.RatePerSec,
		Burst:        ns.Burst,
		Models:       u.Models,
		BlobBytes:    u.BlobBytes,
		Created:      ns.Created,
	}
}

func tokenDTO(t tenant.Token) api.TenantToken {
	return api.TenantToken{
		ID:        t.ID,
		Name:      t.Name,
		Namespace: t.Namespace,
		Role:      t.Role.String(),
		Created:   t.Created,
		Revoked:   t.Revoked,
	}
}

// --- quota hooks ---

// noRelease is the nil-tenant release func: quota was never reserved.
func noRelease() {}

// reserveModelQuota charges a registration against the caller's
// namespace and validates `team/model` ownership: a name prefixed with
// another tenant's namespace is forbidden unless the caller is in the
// default (admin) namespace. The returned release undoes the reservation
// when the registration fails downstream.
func (s *Server) reserveModelQuota(r *http.Request, modelName string) (func(), error) {
	if s.tenants == nil {
		return noRelease, nil
	}
	id, ok := s.tenants.ResolveRequest(r)
	if !ok {
		return nil, fmt.Errorf("%w: no identity", tenant.ErrForbidden)
	}
	if ns, _ := tenant.Split(modelName); ns != tenant.DefaultNamespace && ns != id.Namespace && id.Namespace != tenant.DefaultNamespace {
		return nil, fmt.Errorf("%w: model %q is in namespace %q, caller is %q",
			tenant.ErrForbidden, modelName, ns, id.Namespace)
	}
	if err := s.tenants.ReserveModel(r.Context(), id.Namespace); err != nil {
		return nil, err
	}
	owner := id.Namespace
	return func() { s.tenants.ReleaseModel(context.Background(), owner) }, nil
}

// reserveBlobQuota charges an upload's blob bytes against the caller's
// namespace before the blob-first write begins, so concurrent uploads
// cannot jointly overshoot the quota; release returns the bytes when the
// upload fails.
func (s *Server) reserveBlobQuota(r *http.Request, n int64) (func(), error) {
	if s.tenants == nil {
		return noRelease, nil
	}
	id, ok := s.tenants.ResolveRequest(r)
	if !ok {
		return nil, fmt.Errorf("%w: no identity", tenant.ErrForbidden)
	}
	if err := s.tenants.ReserveBlob(r.Context(), id.Namespace, n); err != nil {
		return nil, err
	}
	owner := id.Namespace
	return func() { s.tenants.ReleaseBlob(context.Background(), owner, n) }, nil
}
