// Package forecast implements the Marketplace Forecasting substrate of the
// paper's Case 1 (§4.2): synthetic per-city demand workloads, a family of
// from-scratch forecasting models spanning the classes the paper names
// (simple time-series heuristics through regression models), serialization
// to opaque blobs for Gallery storage, standard evaluation metrics (MAPE,
// MAE, RMSE, bias, R²), and a rolling-origin backtester.
//
// Gallery itself is model neutral; this package is "the application side"
// that trains models, serializes them, and reports metrics.
package forecast

import (
	"fmt"
	"math"
)

// Metrics bundles the evaluation measures used throughout the paper.
type Metrics struct {
	MAPE float64 // mean absolute percentage error, in percent
	MAE  float64 // mean absolute error
	RMSE float64 // root mean squared error
	Bias float64 // mean signed error (prediction - actual), normalized
	R2   float64 // coefficient of determination
	N    int
}

// Evaluate computes Metrics for paired predictions and actuals. Actual
// values with magnitude below eps are skipped for MAPE (division guard)
// but still count toward the other measures.
func Evaluate(pred, actual []float64) (Metrics, error) {
	if len(pred) != len(actual) {
		return Metrics{}, fmt.Errorf("forecast: %d predictions vs %d actuals", len(pred), len(actual))
	}
	if len(pred) == 0 {
		return Metrics{}, fmt.Errorf("forecast: empty evaluation")
	}
	const eps = 1e-9
	var sumAbs, sumSq, sumSigned, sumActual float64
	var sumAPE float64
	apeN := 0
	for i := range pred {
		err := pred[i] - actual[i]
		sumAbs += math.Abs(err)
		sumSq += err * err
		sumSigned += err
		sumActual += actual[i]
		if math.Abs(actual[i]) > eps {
			sumAPE += math.Abs(err / actual[i])
			apeN++
		}
	}
	n := float64(len(pred))
	m := Metrics{
		MAE:  sumAbs / n,
		RMSE: math.Sqrt(sumSq / n),
		N:    len(pred),
	}
	if apeN > 0 {
		m.MAPE = 100 * sumAPE / float64(apeN)
	}
	meanActual := sumActual / n
	if math.Abs(meanActual) > eps {
		m.Bias = (sumSigned / n) / math.Abs(meanActual)
	}
	var ssTot float64
	for _, a := range actual {
		d := a - meanActual
		ssTot += d * d
	}
	if ssTot > eps {
		m.R2 = 1 - sumSq/ssTot
	}
	return m, nil
}

// AsMap renders metrics in the "<metric>:<value>" shape Gallery stores
// (paper §3.3.3).
func (m Metrics) AsMap() map[string]float64 {
	return map[string]float64{
		"mape": m.MAPE,
		"mae":  m.MAE,
		"rmse": m.RMSE,
		"bias": m.Bias,
		"r2":   m.R2,
	}
}
