package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"gallery/internal/api"
	"gallery/internal/blobstore"
	"gallery/internal/client"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/obs"
	"gallery/internal/relstore"
	"gallery/internal/rules"
	"gallery/internal/uuid"
)

var t0 = time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)

type harness struct {
	c   *client.Client
	clk *clock.Mock
	ts  *httptest.Server
	eng *rules.Engine
	srv *Server
}

// flush waits until every engine notification enqueued so far has been
// evaluated, making the async dispatch path deterministic in tests.
func (h *harness) flush() {
	if h.srv != nil {
		h.srv.Flush()
	}
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	clk := clock.NewMock(t0)
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk,
		UUIDs: uuid.NewSeeded(11),
	})
	if err != nil {
		t.Fatal(err)
	}
	repo := rules.NewRepo(clk)
	eng := rules.NewEngine(reg, repo, clk)
	srv := NewWith(reg, repo, eng, Options{Obs: obs.NewRegistry()})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return &harness{c: client.New(ts.URL, ts.Client()), clk: clk, ts: ts, eng: eng, srv: srv}
}

// newStorageOnlyHarness serves a registry without the rule engine —
// the paper's feature tiers 1–3 deployment (§6.3).
func newStorageOnlyHarness(t *testing.T) *harness {
	t.Helper()
	clk := clock.NewMock(t0)
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk, UUIDs: uuid.NewSeeded(12),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWith(reg, nil, nil, Options{Obs: obs.NewRegistry()})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return &harness{c: client.New(ts.URL, ts.Client()), clk: clk, ts: ts, srv: srv}
}

func (h *harness) registerModel(t *testing.T, name, domain string) api.Model {
	t.Helper()
	m, err := h.c.RegisterModel(api.RegisterModelRequest{
		BaseVersionID: "bv-" + name,
		Project:       "example-project",
		Name:          name,
		Domain:        domain,
		Owner:         "tester",
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func (h *harness) upload(t *testing.T, modelID, city string, blob []byte) api.Instance {
	t.Helper()
	h.clk.Advance(time.Minute)
	in, err := h.c.UploadInstance(api.UploadInstanceRequest{
		ModelID:   modelID,
		Name:      "Random Forest",
		City:      city,
		Framework: "SparkML",
		Blob:      blob,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestPaperWorkflowListings3To5 walks the exact user workflow of paper
// §4.1: train → serialize → upload with metadata (Listing 3), save a
// performance metric (Listing 4), then search by constraints (Listing 5).
func TestPaperWorkflowListings3To5(t *testing.T) {
	h := newHarness(t)

	// Listing 3: create model + upload instance with metadata.
	m, err := h.c.RegisterModel(api.RegisterModelRequest{
		BaseVersionID: "supply_rejection",
		Project:       "example-project",
		Name:          "random_forest",
		Domain:        "UberX",
	})
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("serialized SparkML pipeline model")
	in, err := h.c.UploadInstance(api.UploadInstanceRequest{
		ModelID:   m.ID,
		Name:      "Random Forest",
		City:      "New York City",
		Framework: "SparkML",
		Blob:      blob,
	})
	if err != nil {
		t.Fatal(err)
	}
	if in.BlobLocation == "" {
		t.Fatal("upload did not assign a blob location")
	}

	// Listing 4: upload a model instance performance metric.
	if _, err := h.c.InsertMetric(in.ID, "bias", string(core.ScopeValidation), 0.05); err != nil {
		t.Fatal(err)
	}

	// Listing 5: model query with performance criteria.
	results, err := h.c.Search(api.SearchRequest{Constraints: []api.SearchConstraint{
		{Field: "projectName", Operator: "equal", Value: "example-project"},
		{Field: "modelName", Operator: "equal", Value: "Random Forest"},
		{Field: "metricName", Operator: "equal", Value: "bias"},
		{Field: "metricValue", Operator: "smaller_than", Number: 0.25},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].ID != in.ID {
		t.Fatalf("search = %v", results)
	}

	// Fetch the model back for serving.
	got, err := h.c.FetchBlob(in.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("blob round trip: %q", got)
	}
}

func TestModelEndpoints(t *testing.T) {
	h := newHarness(t)
	m := h.registerModel(t, "demand", "UberX")

	got, err := h.c.GetModel(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.BaseVersionID != "bv-demand" {
		t.Fatalf("GetModel = %+v", got)
	}

	m2, err := h.c.EvolveModel(m.ID, "v2")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Major != 2 || m2.PrevModel != m.ID {
		t.Fatalf("evolved = %+v", m2)
	}
	chain, err := h.c.Evolution(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 {
		t.Fatalf("evolution = %d records", len(chain))
	}
	ms, err := h.c.ModelsByBase("bv-demand")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("by base = %d", len(ms))
	}
	if err := h.c.DeprecateModel(m.ID); err != nil {
		t.Fatal(err)
	}
	got, _ = h.c.GetModel(m.ID)
	if !got.Deprecated {
		t.Fatal("deprecation lost")
	}
}

func TestErrorMapping(t *testing.T) {
	h := newHarness(t)
	// 404 for unknown model.
	_, err := h.c.GetModel(uuid.New().String())
	if ae, ok := err.(*client.APIError); !ok || ae.Status != 404 {
		t.Fatalf("unknown model err = %v", err)
	}
	// 400 for malformed id.
	_, err = h.c.GetModel("not-a-uuid")
	if ae, ok := err.(*client.APIError); !ok || ae.Status != 400 {
		t.Fatalf("bad id err = %v", err)
	}
	// 400 for registration without base version id.
	_, err = h.c.RegisterModel(api.RegisterModelRequest{})
	if ae, ok := err.(*client.APIError); !ok || ae.Status != 400 {
		t.Fatalf("bad spec err = %v", err)
	}
	// 409 for cycles.
	a := h.registerModel(t, "a", "d")
	b := h.registerModel(t, "b", "d")
	if err := h.c.AddDependency(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	err = h.c.AddDependency(b.ID, a.ID)
	if ae, ok := err.(*client.APIError); !ok || ae.Status != 409 {
		t.Fatalf("cycle err = %v", err)
	}
}

func TestDependencyAndVersionEndpoints(t *testing.T) {
	h := newHarness(t)
	b := h.registerModel(t, "B", "d")
	a, err := h.c.RegisterModel(api.RegisterModelRequest{
		BaseVersionID: "bv-A", InitialMajor: 4, Upstreams: []string{b.ID},
	})
	if err != nil {
		t.Fatal(err)
	}
	ups, err := h.c.Upstreams(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 || ups[0] != b.ID {
		t.Fatalf("upstreams = %v", ups)
	}
	downs, err := h.c.Downstreams(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(downs) != 1 || downs[0] != a.ID {
		t.Fatalf("downstreams = %v", downs)
	}

	// Retrain B; A gains a non-production dep_update version.
	h.upload(t, b.ID, "sf", []byte("b2"))
	vs, err := h.c.VersionHistory(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	last := vs[len(vs)-1]
	if last.Version != "4.1" || last.Cause != "dep_update" || last.Production {
		t.Fatalf("A last version = %+v", last)
	}
	prod, err := h.c.ProductionVersion(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Version != "4.0" {
		t.Fatalf("A production = %s", prod.Version)
	}
	// Owner promotes.
	if err := h.c.Promote(last.ID); err != nil {
		t.Fatal(err)
	}
	prod, _ = h.c.ProductionVersion(a.ID)
	if prod.Version != "4.1" {
		t.Fatalf("A production after promote = %s", prod.Version)
	}

	if err := h.c.RemoveDependency(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	ups, _ = h.c.Upstreams(a.ID)
	if len(ups) != 0 {
		t.Fatalf("upstreams after removal = %v", ups)
	}
}

func TestMetricEndpointsAndSeries(t *testing.T) {
	h := newHarness(t)
	m := h.registerModel(t, "demand", "UberX")
	in := h.upload(t, m.ID, "sf", []byte("x"))
	if _, err := h.c.InsertMetric(in.ID, "mape", "production", 8.0); err != nil {
		t.Fatal(err)
	}
	h.clk.Advance(time.Minute)
	if _, err := h.c.InsertMetric(in.ID, "mape", "production", 9.0); err != nil {
		t.Fatal(err)
	}
	if err := h.c.InsertMetrics(in.ID, "training", map[string]float64{"r2": 0.9, "mae": 3}); err != nil {
		t.Fatal(err)
	}
	series, err := h.c.MetricSeries(in.ID, "mape", "production")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[1].Value != 9.0 {
		t.Fatalf("series = %v", series)
	}
	// Invalid scope is a 400.
	_, err = h.c.InsertMetric(in.ID, "mape", "bogus", 1)
	if ae, ok := err.(*client.APIError); !ok || ae.Status != 400 {
		t.Fatalf("bad scope err = %v", err)
	}
}

func TestLineageAndStatsEndpoints(t *testing.T) {
	h := newHarness(t)
	m := h.registerModel(t, "supply_cancellation", "UberX")
	for i := 0; i < 4; i++ {
		h.upload(t, m.ID, "sf", []byte{byte(i)})
	}
	lin, err := h.c.Lineage("bv-supply_cancellation")
	if err != nil {
		t.Fatal(err)
	}
	if len(lin) != 4 {
		t.Fatalf("lineage = %d", len(lin))
	}
	for i := 1; i < len(lin); i++ {
		if lin[i].Created.Before(lin[i-1].Created) {
			t.Fatal("lineage out of time order")
		}
	}
	st, err := h.c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Models != 1 || st.Instances != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRuleEndpointsEndToEnd(t *testing.T) {
	h := newHarness(t)
	m := h.registerModel(t, "linear_regression", "UberX")
	old := h.upload(t, m.ID, "sf", []byte("old"))
	fresh := h.upload(t, m.ID, "sf", []byte("fresh"))
	for _, in := range []api.Instance{old, fresh} {
		if _, err := h.c.InsertMetric(in.ID, "mae", "validation", 2.0); err != nil {
			t.Fatal(err)
		}
	}

	ruleJSON := json.RawMessage(`{
		"uuid": "316b3ab4-2509-4ea7-8025-00ca879dac61",
		"team": "forecasting",
		"name": "select-fresh",
		"kind": "selection",
		"given": "model_name == 'linear_regression' && model_domain == 'UberX'",
		"when": "metrics['mae'] < 5",
		"environment": "production",
		"model_selection": "a.created_time > b.created_time"
	}`)
	hash, err := h.c.CommitRules("alice", "add", []json.RawMessage{ruleJSON}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hash == "" {
		t.Fatal("no commit hash")
	}

	got, err := h.c.SelectModel("316b3ab4-2509-4ea7-8025-00ca879dac61", api.SearchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != fresh.ID {
		t.Fatalf("champion = %s, want fresh %s", got.ID, fresh.ID)
	}

	// Invalid rule rejected with 400.
	_, err = h.c.CommitRules("alice", "bad", []json.RawMessage{json.RawMessage(`{"uuid":"x"}`)}, nil)
	if ae, ok := err.(*client.APIError); !ok || ae.Status != 400 {
		t.Fatalf("invalid rule err = %v", err)
	}
}

// TestMetricUpdateTriggersActionRule verifies the server fires the engine
// on metric writes, completing Fig. 8's Client 2 path over HTTP.
func TestMetricUpdateTriggersActionRule(t *testing.T) {
	h := newHarness(t)
	m := h.registerModel(t, "Random Forest", "UberX")
	in := h.upload(t, m.ID, "sf", []byte("x"))

	deployed := make(chan string, 1)
	h.eng.RegisterAction("forecasting_deployment", func(ctx *rules.ActionContext) error {
		deployed <- ctx.Instance.ID.String()
		return nil
	})
	ruleJSON := json.RawMessage(`{
		"uuid": "4365754a-92bb-4421-a1be-00d7d87f77a0",
		"team": "forecasting",
		"name": "deploy-on-bias",
		"kind": "action",
		"given": "model_name == 'Random Forest' && model_domain == 'UberX'",
		"when": "metrics.bias <= 0.1 && metrics.bias >= -0.1",
		"environment": "production",
		"callback_actions": [{"action": "forecasting_deployment"}]
	}`)
	if _, err := h.c.CommitRules("alice", "add", []json.RawMessage{ruleJSON}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.c.InsertMetric(in.ID, "bias", "validation", 0.02); err != nil {
		t.Fatal(err)
	}
	// Metric notifications are dispatched off the request path; wait for
	// the queue to drain before asserting the action fired.
	h.flush()
	select {
	case id := <-deployed:
		if id != in.ID {
			t.Fatalf("deployed %s, want %s", id, in.ID)
		}
	default:
		t.Fatal("metric insert over HTTP did not trigger the action rule")
	}
}

func TestSearchValidation(t *testing.T) {
	h := newHarness(t)
	// Unknown field.
	_, err := h.c.Search(api.SearchRequest{Constraints: []api.SearchConstraint{
		{Field: "bogus", Operator: "equal", Value: "x"},
	}})
	if ae, ok := err.(*client.APIError); !ok || ae.Status != 400 {
		t.Fatalf("unknown field err = %v", err)
	}
	// Non-equality on metadata.
	_, err = h.c.Search(api.SearchRequest{Constraints: []api.SearchConstraint{
		{Field: "city", Operator: "smaller_than", Value: "x"},
	}})
	if ae, ok := err.(*client.APIError); !ok || ae.Status != 400 {
		t.Fatalf("bad op err = %v", err)
	}
	// metricName without metricValue.
	_, err = h.c.Search(api.SearchRequest{Constraints: []api.SearchConstraint{
		{Field: "metricName", Operator: "equal", Value: "bias"},
	}})
	if ae, ok := err.(*client.APIError); !ok || ae.Status != 400 {
		t.Fatalf("dangling metricName err = %v", err)
	}
}

func TestDeprecateInstanceOverHTTP(t *testing.T) {
	h := newHarness(t)
	m := h.registerModel(t, "demand", "UberX")
	in := h.upload(t, m.ID, "sf", []byte("x"))
	if err := h.c.DeprecateInstance(in.ID); err != nil {
		t.Fatal(err)
	}
	results, err := h.c.Search(api.SearchRequest{Constraints: []api.SearchConstraint{
		{Field: "city", Operator: "equal", Value: "sf"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatal("deprecated instance still searchable")
	}
	// Still fetchable directly.
	if _, err := h.c.FetchBlob(in.ID); err != nil {
		t.Fatal(err)
	}
}

func TestDriftAndSkewEndpoints(t *testing.T) {
	h := newHarness(t)
	m := h.registerModel(t, "demand", "UberX")
	in := h.upload(t, m.ID, "sf", []byte("x"))
	for i := 0; i < 30; i++ {
		h.clk.Advance(time.Minute)
		if _, err := h.c.InsertMetric(in.ID, "mape", "production", 8.0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		h.clk.Advance(time.Minute)
		if _, err := h.c.InsertMetric(in.ID, "mape", "production", 15.0); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := h.c.CheckDrift(in.ID, api.DriftRequest{Metric: "mape"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drifted {
		t.Fatalf("drift report = %+v", rep)
	}

	if _, err := h.c.InsertMetric(in.ID, "mape", "validation", 8.0); err != nil {
		t.Fatal(err)
	}
	skew, err := h.c.CheckSkew(in.ID, api.SkewRequest{Metric: "mape"})
	if err != nil {
		t.Fatal(err)
	}
	if !skew.Checked || !skew.Skewed {
		t.Fatalf("skew report = %+v", skew)
	}
}
