package experiments

import (
	"fmt"
	"strings"
	"time"

	"gallery/internal/core"
	"gallery/internal/forecast"
	"gallery/internal/rules"
)

// Experiment E16 (extension) — paper §4.2's premise, made measurable:
// "Each city faces different market dynamics, and classes of models
// perform differently based on certain spatial or temporal
// characteristics of the city. Therefore, the team needs ... a systematic
// way to determine which model class to serve at a given time."
//
// The experiment trains every model class for a set of heterogeneous
// cities, stores all instances and validation metrics in Gallery, and
// lets one selection rule pick each city's champion. The reproduced shape:
// no single class wins everywhere, which is exactly why per-city champion
// selection (rather than a global model choice) pays.

// ClassCityResult is one city's championship outcome.
type ClassCityResult struct {
	City     string
	Profile  string
	Champion string
	// MAPEByClass is each class's held-out test MAPE.
	MAPEByClass map[string]float64
}

// ClassResult is the sweep outcome.
type ClassResult struct {
	Cities []ClassCityResult
	// DistinctChampions counts how many different classes won somewhere.
	DistinctChampions int
}

const classHorizon = 6

// classCities builds cities with deliberately different temporal character.
func classCities() []struct {
	cfg     forecast.CityConfig
	profile string
} {
	return []struct {
		cfg     forecast.CityConfig
		profile string
	}{
		{forecast.CityConfig{Name: "smoothia", Base: 800, DailyAmp: 300, WeeklyAmp: 80,
			NoiseStd: 15, Seed: 61}, "smooth sinusoidal seasonality"},
		{forecast.CityConfig{Name: "rushford", Base: 600, DailyAmp: 40, RushAmp: 400,
			NoiseStd: 20, Seed: 62}, "sharp commute rush hours"},
		{forecast.CityConfig{Name: "rushport", Base: 400, DailyAmp: 30, RushAmp: 250,
			WeeklyAmp: 30, NoiseStd: 15, Seed: 63}, "rush hours + weekly swing"},
		{forecast.CityConfig{Name: "noiseburg", Base: 500, DailyAmp: 15, WeeklyAmp: 5,
			NoiseStd: 120, Seed: 64}, "dominated by noise"},
		{forecast.CityConfig{Name: "steadyton", Base: 900, DailyAmp: 250, WeeklyAmp: 60,
			GrowthPerWeek: 25, NoiseStd: 10, Seed: 65}, "smooth + strong growth"},
		{forecast.CityConfig{Name: "jitterville", Base: 450, DailyAmp: 20, WeeklyAmp: 10,
			NoiseStd: 90, Seed: 66}, "noisy, weak structure"},
	}
}

// classRoster returns fresh instances of every model class.
func classRoster() []forecast.Model {
	return []forecast.Model{
		&forecast.Heuristic{K: 24},
		&forecast.SeasonalNaive{Period: 24 * 7},
		&forecast.LinearAR{Lags: 24, Horizon: classHorizon},
		&forecast.GBStumps{Lags: 12, Horizon: classHorizon, Rounds: 200},
	}
}

// ModelClassChampionship runs the sweep.
func ModelClassChampionship() (*ClassResult, error) {
	env := mustEnv(16)
	rule := &rules.Rule{
		UUID: "class-champion", Team: "forecasting", Kind: rules.KindSelection,
		When:           `has(metrics, "mape")`,
		ModelSelection: "a.metrics.mape < b.metrics.mape",
	}
	if _, err := env.Repo.Commit("forecasting", "class champion", []*rules.Rule{rule}, nil); err != nil {
		return nil, err
	}

	const trainDays, testDays = 42, 14
	res := &ClassResult{}
	champions := map[string]bool{}
	for _, c := range classCities() {
		data := forecast.Generate(c.cfg, epoch, time.Hour, (trainDays+testDays)*24)
		trainN := trainDays * 24
		values := data.Values()

		m, err := env.Reg.RegisterModel(core.ModelSpec{
			BaseVersionID: "class_" + c.cfg.Name, Project: "class-championship",
			Name: "demand_forecaster", Domain: "UberX",
		})
		if err != nil {
			return nil, err
		}

		cr := ClassCityResult{City: c.cfg.Name, Profile: c.profile, MAPEByClass: map[string]float64{}}
		nameByID := map[string]string{}
		for _, fm := range classRoster() {
			if err := fm.Train(data[:trainN]); err != nil {
				return nil, err
			}
			blob, err := forecast.Encode(fm)
			if err != nil {
				return nil, err
			}
			env.Clock.Advance(time.Minute)
			in, err := env.Reg.UploadInstance(core.InstanceSpec{
				ModelID: m.ID, Name: fm.Name(), City: c.cfg.Name, Framework: "gallery-forecast",
			}, blob)
			if err != nil {
				return nil, err
			}
			// Held-out test MAPE at the serving horizon, reported to
			// Gallery as the validation metric the rule selects on.
			var preds, actuals []float64
			for i := trainN; i < len(data); i++ {
				cut := i - classHorizon + 1
				preds = append(preds, fm.Forecast(forecast.Context{
					History: values[:cut], Time: data[i].T,
				}))
				actuals = append(actuals, values[i])
			}
			met, err := forecast.Evaluate(preds, actuals)
			if err != nil {
				return nil, err
			}
			cr.MAPEByClass[fm.Name()] = met.MAPE
			if _, err := env.Reg.InsertMetric(in.ID, "mape", core.ScopeValidation, met.MAPE); err != nil {
				return nil, err
			}
			nameByID[in.ID.String()] = fm.Name()
		}

		champ, err := env.Engine.SelectModel("class-champion", core.InstanceFilter{City: c.cfg.Name})
		if err != nil {
			return nil, err
		}
		cr.Champion = nameByID[champ.ID.String()]
		champions[className(cr.Champion)] = true
		res.Cities = append(res.Cities, cr)
	}
	res.DistinctChampions = len(champions)
	return res, nil
}

// className collapses parameterized model names to their class.
func className(name string) string {
	for _, prefix := range []string{"heuristic", "seasonal_naive", "linear_ar", "gb_stumps", "ewma"} {
		if strings.HasPrefix(name, prefix) {
			return prefix
		}
	}
	return name
}

// Format renders the championship table.
func (r *ClassResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-30s %-24s %s\n", "city", "profile", "champion (by rule)", "per-class test MAPE")
	for _, c := range r.Cities {
		var parts []string
		for _, fm := range classRoster() {
			parts = append(parts, fmt.Sprintf("%s=%.1f", className(fm.Name()), c.MAPEByClass[fm.Name()]))
		}
		fmt.Fprintf(&b, "%-12s %-30s %-24s %s\n", c.City, c.Profile, c.Champion, strings.Join(parts, " "))
	}
	fmt.Fprintf(&b, "distinct champion classes across cities: %d (paper §4.2: classes perform differently per city)\n",
		r.DistinctChampions)
	return b.String()
}
