// Package relstore implements the embedded relational store that holds all
// Gallery metadata and performance metrics.
//
// The paper stores model metadata and metrics in MySQL because they are
// structured and need flexible queries (paper §3.5). This package plays that
// role: typed tables with a string primary key, secondary B-tree indexes,
// constraint-based queries with ordering and limits, atomic multi-row
// batches, and write-ahead-log durability with crash recovery. Reads run
// under a shared lock and return deep copies, so callers always observe a
// consistent snapshot and can never mutate store internals — the property
// that underpins Gallery's model immutability.
package relstore

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates value types storable in a column.
type Kind uint8

// Column kinds.
const (
	KindString Kind = iota + 1
	KindInt
	KindFloat
	KindBool
	KindTime
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindTime:
		return "time"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed cell value. The zero Value is "null": it has
// kind 0 and compares before every non-null value.
type Value struct {
	Kind  Kind
	Str   string
	Int   int64
	Float float64
	Bool  bool
	Time  time.Time
}

// String constructs a string value.
func String(s string) Value { return Value{Kind: KindString, Str: s} }

// Int constructs an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, Int: i} }

// Float constructs a float value.
func Float(f float64) Value { return Value{Kind: KindFloat, Float: f} }

// Bool constructs a boolean value.
func Bool(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// Time constructs a time value.
func Time(t time.Time) Value { return Value{Kind: KindTime, Time: t} }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.Kind == 0 }

// numeric reports whether v is int or float, and its float64 view.
func (v Value) numeric() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.Int), true
	case KindFloat:
		return v.Float, true
	default:
		return 0, false
	}
}

// Compare orders two values: negative if v < w, zero if equal, positive if
// v > w. Int and float compare numerically against each other so metric
// thresholds behave as users expect. Values of genuinely different kinds
// order by kind, which keeps indexes totally ordered even if a column is
// misused.
func Compare(v, w Value) int {
	if vf, ok := v.numeric(); ok {
		if wf, ok := w.numeric(); ok {
			switch {
			case vf < wf:
				return -1
			case vf > wf:
				return 1
			default:
				return 0
			}
		}
	}
	if v.Kind != w.Kind {
		return int(v.Kind) - int(w.Kind)
	}
	switch v.Kind {
	case 0:
		return 0 // both null
	case KindString:
		return strings.Compare(v.Str, w.Str)
	case KindBool:
		switch {
		case v.Bool == w.Bool:
			return 0
		case w.Bool:
			return -1
		default:
			return 1
		}
	case KindTime:
		switch {
		case v.Time.Before(w.Time):
			return -1
		case v.Time.After(w.Time):
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// Equal reports whether two values compare as equal.
func Equal(v, w Value) bool { return Compare(v, w) == 0 }

// GoString renders the value for diagnostics and test failures.
func (v Value) GoString() string {
	switch v.Kind {
	case 0:
		return "null"
	case KindString:
		return strconv.Quote(v.Str)
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.Bool)
	case KindTime:
		return v.Time.Format(time.RFC3339Nano)
	default:
		return "?"
	}
}

// Row is a single table row: a map from column name to value. A row's
// primary key lives in the schema's Key column.
type Row map[string]Value

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	cp := make(Row, len(r))
	for k, v := range r {
		cp[k] = v
	}
	return cp
}

// Column declares one typed column.
type Column struct {
	Name string
	Kind Kind
	// Nullable permits the null value; non-nullable columns reject it.
	Nullable bool
}

// Schema declares a table: its name, columns, string primary-key column,
// and which columns carry secondary indexes.
type Schema struct {
	Table   string
	Columns []Column
	// Key names the primary-key column, which must be a non-nullable
	// string column.
	Key string
	// Indexes lists column names to maintain secondary B-tree indexes on.
	Indexes []string
}

// col returns the declared column with the given name.
func (s *Schema) col(name string) (Column, bool) {
	for _, c := range s.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return Column{}, false
}

// validate checks that the schema is internally consistent.
func (s *Schema) validate() error {
	if s.Table == "" {
		return fmt.Errorf("relstore: schema has empty table name")
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("relstore: table %s has an unnamed column", s.Table)
		}
		if c.Kind < KindString || c.Kind > KindTime {
			return fmt.Errorf("relstore: table %s column %s has invalid kind", s.Table, c.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("relstore: table %s declares column %s twice", s.Table, c.Name)
		}
		seen[c.Name] = true
	}
	kc, ok := s.col(s.Key)
	if !ok {
		return fmt.Errorf("relstore: table %s key column %q not declared", s.Table, s.Key)
	}
	if kc.Kind != KindString || kc.Nullable {
		return fmt.Errorf("relstore: table %s key column %q must be a non-nullable string", s.Table, s.Key)
	}
	for _, idx := range s.Indexes {
		if _, ok := s.col(idx); !ok {
			return fmt.Errorf("relstore: table %s indexes undeclared column %q", s.Table, idx)
		}
	}
	return nil
}

// checkRow validates a row against the schema and returns its primary key.
func (s *Schema) checkRow(r Row) (string, error) {
	for name, v := range r {
		c, ok := s.col(name)
		if !ok {
			return "", fmt.Errorf("relstore: table %s: row has undeclared column %q", s.Table, name)
		}
		if v.IsNull() {
			if !c.Nullable {
				return "", fmt.Errorf("relstore: table %s: column %s is not nullable", s.Table, name)
			}
			continue
		}
		if v.Kind != c.Kind {
			return "", fmt.Errorf("relstore: table %s: column %s is %s, got %s",
				s.Table, name, c.Kind, v.Kind)
		}
	}
	for _, c := range s.Columns {
		if v, ok := r[c.Name]; (!ok || v.IsNull()) && !c.Nullable {
			return "", fmt.Errorf("relstore: table %s: missing non-nullable column %s", s.Table, c.Name)
		}
	}
	pk := r[s.Key]
	if pk.Kind != KindString || pk.Str == "" {
		return "", fmt.Errorf("relstore: table %s: empty primary key %q", s.Table, s.Key)
	}
	return pk.Str, nil
}
