// Command galleryctl is the command-line client for a running galleryd,
// covering the everyday Gallery workflow of paper §4.1: registering
// models, uploading trained instances, recording metrics, searching, and
// managing rules.
//
// Usage:
//
//	galleryctl -server http://localhost:8440 <subcommand> [args]
//
// Subcommands:
//
//	register  -base ID [-project P -name N -domain D -owner O]
//	upload    -model UUID -blob FILE [-name N -city C -framework F]
//	get-model UUID
//	get       UUID
//	blob      [-out FILE] UUID
//	metric    -instance UUID -name N -scope S -value V
//	search    [-project P -name N -city C -metric N -op OP -value V]
//	lineage   BASE_VERSION_ID
//	versions  MODEL_UUID
//	deps      -add|-rm -from UUID -to UUID
//	promote   VERSION_UUID
//	deprecate -model UUID | -instance UUID
//	rules     [-commit FILE... | -list]
//	select    -rule UUID
//	drift     -instance UUID -metric N
//	health    [-project P [-metric N]] | [-model UUID] [-json] [-watch [-every D]]
//	stats
//	metrics   [-prom]
//	slo       create|list|delete|status ... (see `slo -h`)
//	profile   top|diff|baseline ... (see `profile -h`)
//	incident  list|get|trigger ... (see `incident -h`)
//	traces    [-limit N | -id TRACE_ID] [-json]
//	audit     [-entity UUID | -model UUID] [-action A] [-actor A] [-trace ID]
//	          [-since D] [-until D] [-where f:op:v]... [-limit N] [-asc] [-json]
//	logs      [-level L] [-since D] [-limit N] [-follow [-every D]] [-json]
//	predict   -model UUID -history "10,12,11,13" [-gateway URL]
//	tenant    create|list|quotas|mint|tokens|revoke ... (see `tenant -h`)
//
// Against a galleryd running -auth, pass -token (or set GALLERY_TOKEN).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"gallery/internal/api"
	"gallery/internal/client"
)

func main() {
	serverFlag := flag.String("server", "http://localhost:8440", "gallery server URL")
	actorFlag := flag.String("actor", "galleryctl", "actor name recorded in the audit trail for mutations")
	tokenFlag := flag.String("token", os.Getenv("GALLERY_TOKEN"), "bearer token for servers running -auth (default $GALLERY_TOKEN)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fail("usage: galleryctl [-server URL] <subcommand> [args]; see -h")
	}
	c := client.NewWith(*serverFlag, client.Options{Actor: *actorFlag, Token: *tokenFlag})
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "register":
		err = cmdRegister(c, rest)
	case "upload":
		err = cmdUpload(c, rest)
	case "get-model":
		err = one(rest, func(id string) error { return dump(c.GetModel(id)) })
	case "get":
		err = one(rest, func(id string) error { return dump(c.GetInstance(id)) })
	case "blob":
		err = cmdBlob(c, rest)
	case "metric":
		err = cmdMetric(c, rest)
	case "search":
		err = cmdSearch(c, rest)
	case "lineage":
		err = one(rest, func(base string) error { return dump(c.Lineage(base)) })
	case "versions":
		err = one(rest, func(id string) error { return dump(c.VersionHistory(id)) })
	case "deps":
		err = cmdDeps(c, rest)
	case "promote":
		err = one(rest, func(id string) error { return c.Promote(id) })
	case "deprecate":
		err = cmdDeprecate(c, rest)
	case "rules":
		err = cmdRules(c, rest)
	case "select":
		err = cmdSelect(c, rest)
	case "drift":
		err = cmdDrift(c, rest)
	case "health":
		err = cmdHealth(c, rest)
	case "stats":
		err = dump(c.Stats())
	case "metrics":
		err = cmdMetrics(c, rest)
	case "slo":
		err = cmdSLO(c, rest)
	case "profile":
		err = cmdProfile(c, rest)
	case "incident":
		err = cmdIncident(c, rest)
	case "traces":
		err = cmdTraces(c, rest)
	case "audit":
		err = cmdAudit(c, rest)
	case "logs":
		err = cmdLogs(c, rest)
	case "predict":
		err = cmdPredict(c, *serverFlag, rest)
	case "tenant":
		err = cmdTenant(c, rest)
	default:
		fail("galleryctl: unknown subcommand %q", cmd)
	}
	if err != nil {
		fail("galleryctl: %v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// dump prints any (value, error) pair as indented JSON.
func dump[T any](v T, err error) error {
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

func one(args []string, f func(string) error) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one argument")
	}
	return f(args[0])
}

func cmdRegister(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("register", flag.ExitOnError)
	base := fs.String("base", "", "base version id (required)")
	project := fs.String("project", "", "project")
	name := fs.String("name", "", "model name")
	domain := fs.String("domain", "", "model domain")
	owner := fs.String("owner", "", "owner")
	major := fs.Int("major", 0, "initial major version")
	fs.Parse(args)
	return dump(c.RegisterModel(api.RegisterModelRequest{
		BaseVersionID: *base, Project: *project, Name: *name,
		Domain: *domain, Owner: *owner, InitialMajor: *major,
	}))
}

func cmdUpload(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("upload", flag.ExitOnError)
	model := fs.String("model", "", "model UUID (required)")
	blobPath := fs.String("blob", "", "file with serialized model (required)")
	name := fs.String("name", "", "instance name")
	city := fs.String("city", "", "city")
	framework := fs.String("framework", "", "framework")
	training := fs.String("training-data", "", "training data pointer")
	fs.Parse(args)
	blob, err := os.ReadFile(*blobPath)
	if err != nil {
		return err
	}
	return dump(c.UploadInstance(api.UploadInstanceRequest{
		ModelID: *model, Name: *name, City: *city, Framework: *framework,
		TrainingData: *training, Blob: blob,
	}))
}

func cmdBlob(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("blob", flag.ExitOnError)
	out := fs.String("out", "", "output file (default stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("blob needs an instance UUID")
	}
	data, err := c.FetchBlob(fs.Arg(0))
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

func cmdMetric(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("metric", flag.ExitOnError)
	instance := fs.String("instance", "", "instance UUID (required)")
	name := fs.String("name", "", "metric name (required)")
	scope := fs.String("scope", "validation", "scope: training|validation|production")
	value := fs.Float64("value", 0, "metric value")
	fs.Parse(args)
	return dump(c.InsertMetric(*instance, *name, *scope, *value))
}

func cmdSearch(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	project := fs.String("project", "", "project equality filter")
	name := fs.String("name", "", "model name equality filter")
	city := fs.String("city", "", "city equality filter")
	metric := fs.String("metric", "", "metric name")
	op := fs.String("op", "smaller_than", "metric operator")
	value := fs.Float64("value", 0, "metric threshold")
	limit := fs.Int("limit", 0, "max results")
	fs.Parse(args)
	var cs []api.SearchConstraint
	add := func(field, val string) {
		if val != "" {
			cs = append(cs, api.SearchConstraint{Field: field, Operator: "equal", Value: val})
		}
	}
	add("projectName", *project)
	add("modelName", *name)
	add("city", *city)
	if *metric != "" {
		cs = append(cs,
			api.SearchConstraint{Field: "metricName", Operator: "equal", Value: *metric},
			api.SearchConstraint{Field: "metricValue", Operator: *op, Number: *value})
	}
	return dump(c.Search(api.SearchRequest{Constraints: cs, Limit: *limit}))
}

func cmdDeps(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("deps", flag.ExitOnError)
	add := fs.Bool("add", false, "add a dependency")
	rm := fs.Bool("rm", false, "remove a dependency")
	from := fs.String("from", "", "downstream model UUID")
	to := fs.String("to", "", "upstream model UUID")
	fs.Parse(args)
	switch {
	case *add:
		return c.AddDependency(*from, *to)
	case *rm:
		return c.RemoveDependency(*from, *to)
	default:
		return fmt.Errorf("deps needs -add or -rm")
	}
}

func cmdDeprecate(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("deprecate", flag.ExitOnError)
	model := fs.String("model", "", "model UUID")
	instance := fs.String("instance", "", "instance UUID")
	fs.Parse(args)
	switch {
	case *model != "":
		return c.DeprecateModel(*model)
	case *instance != "":
		return c.DeprecateInstance(*instance)
	default:
		return fmt.Errorf("deprecate needs -model or -instance")
	}
}

func cmdRules(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("rules", flag.ExitOnError)
	author := fs.String("author", os.Getenv("USER"), "commit author")
	message := fs.String("message", "galleryctl commit", "commit message")
	fs.Parse(args)
	if fs.NArg() == 0 {
		raw, err := c.ListRules()
		if err != nil {
			return err
		}
		fmt.Println(string(raw))
		return nil
	}
	var upserts []json.RawMessage
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		upserts = append(upserts, json.RawMessage(data))
	}
	hash, err := c.CommitRules(*author, *message, upserts, nil)
	if err != nil {
		return err
	}
	fmt.Println("committed", hash)
	return nil
}

func cmdSelect(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("select", flag.ExitOnError)
	rule := fs.String("rule", "", "selection rule UUID (required)")
	city := fs.String("city", "", "candidate city filter")
	project := fs.String("project", "", "candidate project filter")
	fs.Parse(args)
	var cs []api.SearchConstraint
	if *city != "" {
		cs = append(cs, api.SearchConstraint{Field: "city", Operator: "equal", Value: *city})
	}
	if *project != "" {
		cs = append(cs, api.SearchConstraint{Field: "projectName", Operator: "equal", Value: *project})
	}
	return dump(c.SelectModel(*rule, api.SearchRequest{Constraints: cs}))
}

// cmdHealth has two modes. With -project it runs the on-demand fleet
// sweep (drift/skew checks over stored metrics). Without it, it reads the
// continuous health monitor's live verdicts from /v1/health/models —
// optionally one model, as JSON, or repainted on an interval with -watch.
func cmdHealth(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	project := fs.String("project", "", "fleet mode: project to sweep with on-demand checks")
	metric := fs.String("metric", "mape", "fleet mode: error metric for drift/skew checks")
	limit := fs.Int("limit", 0, "fleet mode: max instances to sweep")
	model := fs.String("model", "", "live mode: show one model's verdict")
	jsonOut := fs.Bool("json", false, "live mode: print raw JSON instead of the table")
	watch := fs.Bool("watch", false, "live mode: repaint every -every until interrupted")
	every := fs.Duration("every", 5*time.Second, "poll period for -watch")
	fs.Parse(args)
	if *project != "" {
		return dump(c.CheckFleetHealth(api.FleetHealthRequest{
			Project: *project, Metric: *metric, Limit: *limit,
		}))
	}
	show := func() error {
		var list []api.ModelHealth
		if *model != "" {
			mh, err := c.ModelHealth(*model)
			if err != nil {
				return err
			}
			list = []api.ModelHealth{mh}
		} else {
			var err error
			if list, err = c.ListModelHealth(); err != nil {
				return err
			}
		}
		if *jsonOut {
			return dump(list, nil)
		}
		printModelHealth(list)
		return nil
	}
	if !*watch {
		return show()
	}
	for {
		fmt.Printf("--- %s ---\n", time.Now().Format(time.RFC3339))
		if err := show(); err != nil {
			return err
		}
		time.Sleep(*every)
	}
}

func printModelHealth(list []api.ModelHealth) {
	if len(list) == 0 {
		fmt.Println("no models under health monitoring")
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "MODEL\tSTATUS\tPSI\tREQS\tSTALE\tP95_MS\tLAST_SEEN\tREASONS")
	for _, mh := range list {
		last := ""
		if !mh.LastSeen.IsZero() {
			last = mh.LastSeen.UTC().Format("2006-01-02T15:04:05Z")
		}
		fmt.Fprintf(w, "%s\t%s\t%.3f\t%d\t%d\t%.1f\t%s\t%s\n",
			mh.ModelID, mh.Status, mh.PSI, mh.Requests, mh.StaleServes,
			mh.LatencyP95MS, last, strings.Join(mh.Reasons, "; "))
	}
	w.Flush()
}

// cmdMetrics dumps the server's full metric registry snapshot — the same
// JSON served at /v1/debug/metrics, for when the stats summary is not
// enough. With -prom it prints the Prometheus text exposition instead,
// exactly as a scraper would see it.
func cmdMetrics(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	prom := fs.Bool("prom", false, "print Prometheus text exposition (0.0.4) instead of JSON")
	fs.Parse(args)
	if *prom {
		payload, err := c.DebugMetricsProm()
		if err != nil {
			return err
		}
		os.Stdout.Write(payload)
		return nil
	}
	raw, err := c.DebugMetrics()
	if err != nil {
		return err
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		fmt.Println(string(raw)) // not JSON? print as-is
		return nil
	}
	return dump(v, nil)
}

// cmdSLO manages burn-rate objectives on the daemon's SLO evaluator.
func cmdSLO(c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: galleryctl slo create|list|delete|status [args]")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "create":
		fs := flag.NewFlagSet("slo create", flag.ExitOnError)
		ns := fs.String("namespace", "default", "tenant namespace the objective covers")
		model := fs.String("model", "", "scope to one served model (empty: whole namespace)")
		kind := fs.String("kind", "availability", "objective kind: availability | latency")
		target := fs.Float64("target", 0.999, "success-ratio target, e.g. 0.999")
		threshold := fs.Float64("threshold-ms", 0, "latency kind: threshold in milliseconds")
		fs.Parse(rest)
		return dump(c.CreateSLO(api.CreateSLORequest{
			Namespace: *ns, ModelID: *model, Kind: *kind,
			Target: *target, LatencyThresholdMS: *threshold,
		}))
	case "list":
		objs, err := c.ListSLOs()
		if err != nil {
			return err
		}
		return dump(objs, nil)
	case "delete":
		if len(rest) != 1 {
			return fmt.Errorf("usage: galleryctl slo delete ID")
		}
		return c.DeleteSLO(rest[0])
	case "status":
		fs := flag.NewFlagSet("slo status", flag.ExitOnError)
		jsonOut := fs.Bool("json", false, "print raw JSON instead of the table")
		watch := fs.Bool("watch", false, "repaint every -every until interrupted")
		every := fs.Duration("every", 5*time.Second, "poll period for -watch")
		fs.Parse(rest)
		show := func() error {
			sts, err := c.SLOStatus()
			if err != nil {
				return err
			}
			if *jsonOut {
				return dump(sts, nil)
			}
			printSLOStatus(sts)
			return nil
		}
		if !*watch {
			return show()
		}
		for {
			fmt.Printf("--- %s ---\n", time.Now().Format(time.RFC3339))
			if err := show(); err != nil {
				return err
			}
			time.Sleep(*every)
		}
	default:
		return fmt.Errorf("unknown slo subcommand %q (want create|list|delete|status)", sub)
	}
}

// cmdIncident drives the flight recorder: list persisted bundles, fetch
// one in full, or trigger a manual capture.
func cmdIncident(c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: galleryctl incident list|get|trigger [args]")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "list":
		fs := flag.NewFlagSet("incident list", flag.ExitOnError)
		jsonOut := fs.Bool("json", false, "print raw JSON instead of the table")
		fs.Parse(rest)
		incs, err := c.ListIncidents()
		if err != nil {
			return err
		}
		if *jsonOut {
			return dump(incs, nil)
		}
		printIncidents(incs)
		return nil
	case "get":
		if len(rest) != 1 {
			return fmt.Errorf("usage: galleryctl incident get ID")
		}
		return dump(c.GetIncident(rest[0]))
	case "trigger":
		fs := flag.NewFlagSet("incident trigger", flag.ExitOnError)
		ns := fs.String("namespace", "", "namespace the capture is attributed to")
		model := fs.String("model", "", "model the capture is about (sets the debounce scope)")
		reason := fs.String("reason", "", "free-form note recorded on the bundle")
		fs.Parse(rest)
		return dump(c.TriggerIncident(api.TriggerIncidentRequest{
			Namespace: *ns, ModelID: *model, Reason: *reason,
		}))
	default:
		return fmt.Errorf("unknown incident subcommand %q (want list|get|trigger)", sub)
	}
}

func printIncidents(incs []api.Incident) {
	if len(incs) == 0 {
		fmt.Println("no incidents captured")
		return
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tTRIGGER\tSCOPE\tCREATED\tSIZE\tPARTIAL\tREASON")
	for _, in := range incs {
		partial := ""
		if in.Partial {
			partial = "partial"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%s\t%s\n",
			in.ID, in.Trigger, in.Scope, in.Created.Format(time.RFC3339), in.Size, partial, in.Reason)
	}
	tw.Flush()
}

func printSLOStatus(sts []api.SLOStatus) {
	if len(sts) == 0 {
		fmt.Println("no SLO objectives configured")
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ID\tSCOPE\tKIND\tTARGET\tBURN_FAST\tBURN_SLOW\tBUDGET\tSTATE")
	for _, st := range sts {
		scope := st.SLO.Namespace
		if st.SLO.ModelID != "" {
			scope += "/" + st.SLO.ModelID
		}
		state := "ok"
		switch {
		case st.NoData:
			state = "no-data"
		case st.Breached:
			state = "BREACHED(" + st.Severity + ")"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%.4f\t%.2f\t%.2f\t%.3f\t%s\n",
			st.SLO.ID, scope, st.SLO.Kind, st.SLO.Target,
			st.BurnFast, st.BurnSlow, st.BudgetRemaining, state)
	}
	w.Flush()
}

// cmdPredict asks a serving gateway for a forecast. By default it targets
// the -server URL (useful when galleryctl points straight at a gateway);
// -gateway overrides, so one invocation can talk metadata to galleryd and
// predictions to galleryserve.
func cmdPredict(c *client.Client, serverURL string, args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	model := fs.String("model", "", "model UUID (required)")
	history := fs.String("history", "", "comma-separated recent observations (required)")
	event := fs.Bool("event", false, "the step being predicted falls in an event window")
	gateway := fs.String("gateway", "", "serving gateway URL (default: the -server URL)")
	fs.Parse(args)
	if *model == "" || *history == "" {
		return fmt.Errorf("predict needs -model and -history")
	}
	var hist []float64
	for _, s := range strings.Split(*history, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad history value %q: %w", s, err)
		}
		hist = append(hist, f)
	}
	gc := c
	if *gateway != "" && *gateway != serverURL {
		gc = client.New(*gateway, nil)
	}
	return dump(gc.Predict(*model, api.PredictRequest{History: hist, Event: *event}))
}

func cmdDrift(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("drift", flag.ExitOnError)
	instance := fs.String("instance", "", "instance UUID (required)")
	metric := fs.String("metric", "mape", "metric to check")
	fs.Parse(args)
	return dump(c.CheckDrift(*instance, api.DriftRequest{Metric: *metric}))
}
