package relstore

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gallery/internal/wal"
)

// modelsSchema is a miniature of Gallery's model-instance table.
func modelsSchema() Schema {
	return Schema{
		Table: "instances",
		Columns: []Column{
			{Name: "id", Kind: KindString},
			{Name: "base_version_id", Kind: KindString},
			{Name: "city", Kind: KindString, Nullable: true},
			{Name: "created", Kind: KindTime},
			{Name: "epoch", Kind: KindInt, Nullable: true},
			{Name: "mape", Kind: KindFloat, Nullable: true},
			{Name: "deprecated", Kind: KindBool, Nullable: true},
		},
		Key:     "id",
		Indexes: []string{"base_version_id", "city", "mape", "created"},
	}
}

func row(id, base, city string, created time.Time, mape float64) Row {
	return Row{
		"id":              String(id),
		"base_version_id": String(base),
		"city":            String(city),
		"created":         Time(created),
		"mape":            Float(mape),
	}
}

func newStore(t *testing.T) *Store {
	t.Helper()
	s := NewMemory()
	if err := s.CreateTable(modelsSchema()); err != nil {
		t.Fatal(err)
	}
	return s
}

var t0 = time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)

func TestInsertGet(t *testing.T) {
	s := newStore(t)
	r := row("i1", "demand_conversion", "sf", t0, 0.12)
	if err := s.Insert("instances", r); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("instances", "i1")
	if err != nil {
		t.Fatal(err)
	}
	if got["city"].Str != "sf" || got["mape"].Float != 0.12 {
		t.Fatalf("Get returned %#v", got)
	}
}

func TestInsertDuplicateFails(t *testing.T) {
	s := newStore(t)
	r := row("i1", "b", "sf", t0, 0.1)
	if err := s.Insert("instances", r); err != nil {
		t.Fatal(err)
	}
	err := s.Insert("instances", r)
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("second insert err = %v, want ErrDuplicate", err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := newStore(t)
	if err := s.Insert("instances", row("i1", "b", "sf", t0, 0.1)); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get("instances", "i1")
	got["city"] = String("mutated")
	again, _ := s.Get("instances", "i1")
	if again["city"].Str != "sf" {
		t.Fatal("mutating a returned row leaked into the store")
	}
}

func TestInsertCopiesCallerRow(t *testing.T) {
	s := newStore(t)
	r := row("i1", "b", "sf", t0, 0.1)
	if err := s.Insert("instances", r); err != nil {
		t.Fatal(err)
	}
	r["city"] = String("mutated-after-insert")
	got, _ := s.Get("instances", "i1")
	if got["city"].Str != "sf" {
		t.Fatal("mutating the caller's row after Insert leaked into the store")
	}
}

func TestSchemaValidation(t *testing.T) {
	s := NewMemory()
	cases := []Schema{
		{},                           // empty name
		{Table: "t", Key: "missing"}, // key not declared
		{Table: "t", Columns: []Column{{Name: "k", Kind: KindInt}}, Key: "k"},                                // non-string key
		{Table: "t", Columns: []Column{{Name: "k", Kind: KindString, Nullable: true}}, Key: "k"},             // nullable key
		{Table: "t", Columns: []Column{{Name: "k", Kind: KindString}, {Name: "k", Kind: KindInt}}, Key: "k"}, // dup column
		{Table: "t", Columns: []Column{{Name: "k", Kind: KindString}}, Key: "k", Indexes: []string{"nope"}},  // bad index
	}
	for i, sc := range cases {
		if err := s.CreateTable(sc); err == nil {
			t.Errorf("case %d: CreateTable accepted invalid schema %+v", i, sc)
		}
	}
}

func TestRowValidation(t *testing.T) {
	s := newStore(t)
	cases := []Row{
		{"id": String("x"), "base_version_id": String("b"), "created": Time(t0), "bogus": Int(1)}, // undeclared column
		{"id": String("x"), "base_version_id": String("b")},                                       // missing non-nullable created
		{"id": String("x"), "base_version_id": Int(3), "created": Time(t0)},                       // wrong kind
		{"id": String(""), "base_version_id": String("b"), "created": Time(t0)},                   // empty pk
		{"id": String("x"), "base_version_id": Value{}, "created": Time(t0)},                      // null in non-nullable
	}
	for i, r := range cases {
		if err := s.Insert("instances", r); err == nil {
			t.Errorf("case %d: Insert accepted invalid row %#v", i, r)
		}
	}
}

func TestCreateTableIdempotent(t *testing.T) {
	s := newStore(t)
	if err := s.CreateTable(modelsSchema()); err != nil {
		t.Fatalf("identical re-create failed: %v", err)
	}
	changed := modelsSchema()
	changed.Indexes = nil
	if err := s.CreateTable(changed); err == nil {
		t.Fatal("re-create with different schema succeeded")
	}
}

func TestUpdate(t *testing.T) {
	s := newStore(t)
	if err := s.Insert("instances", row("i1", "b", "sf", t0, 0.1)); err != nil {
		t.Fatal(err)
	}
	upd := row("i1", "b", "sf", t0, 0.1)
	upd["deprecated"] = Bool(true)
	if err := s.Update("instances", upd); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get("instances", "i1")
	if !got["deprecated"].Bool {
		t.Fatal("update did not stick")
	}
	if err := s.Update("instances", row("absent", "b", "sf", t0, 0.1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update of absent row = %v, want ErrNotFound", err)
	}
}

func TestUpdateMaintainsIndexes(t *testing.T) {
	s := newStore(t)
	if err := s.Insert("instances", row("i1", "b", "sf", t0, 0.5)); err != nil {
		t.Fatal(err)
	}
	upd := row("i1", "b", "nyc", t0, 0.5)
	if err := s.Update("instances", upd); err != nil {
		t.Fatal(err)
	}
	rows, ex, err := s.SelectExplain(Query{
		Table: "instances",
		Where: []Constraint{{Field: "city", Op: OpEq, Value: String("sf")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Index != "city" {
		t.Fatalf("expected index scan on city, got %q", ex.Index)
	}
	if len(rows) != 0 {
		t.Fatalf("stale index entry returned %d rows for sf", len(rows))
	}
	rows, _ = s.Select(Query{
		Table: "instances",
		Where: []Constraint{{Field: "city", Op: OpEq, Value: String("nyc")}},
	})
	if len(rows) != 1 {
		t.Fatalf("new index entry missing: got %d rows for nyc", len(rows))
	}
}

func TestDelete(t *testing.T) {
	s := newStore(t)
	if err := s.Insert("instances", row("i1", "b", "sf", t0, 0.1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("instances", "i1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("instances", "i1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v", err)
	}
	if err := s.Delete("instances", "i1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v", err)
	}
	// Index must not resurrect the row.
	rows, _ := s.Select(Query{
		Table: "instances",
		Where: []Constraint{{Field: "city", Op: OpEq, Value: String("sf")}},
	})
	if len(rows) != 0 {
		t.Fatal("index returned a deleted row")
	}
}

func TestNoTableErrors(t *testing.T) {
	s := NewMemory()
	if err := s.Insert("nope", Row{}); !errors.Is(err, ErrNoTable) {
		t.Fatalf("Insert = %v", err)
	}
	if _, err := s.Get("nope", "x"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("Get = %v", err)
	}
	if _, err := s.Select(Query{Table: "nope"}); !errors.Is(err, ErrNoTable) {
		t.Fatalf("Select = %v", err)
	}
}

func TestBatchAtomicity(t *testing.T) {
	s := newStore(t)
	if err := s.Insert("instances", row("seed", "b", "sf", t0, 0.1)); err != nil {
		t.Fatal(err)
	}
	// Second mutation is invalid (duplicate of seed): nothing must apply.
	err := s.Batch([]Mutation{
		{Kind: MutInsert, Table: "instances", Row: row("new1", "b", "sf", t0, 0.2)},
		{Kind: MutInsert, Table: "instances", Row: row("seed", "b", "sf", t0, 0.3)},
	})
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("batch err = %v", err)
	}
	if _, err := s.Get("instances", "new1"); !errors.Is(err, ErrNotFound) {
		t.Fatal("failed batch partially applied")
	}
	// Valid batch with intra-batch dependency: delete then reinsert same pk.
	err = s.Batch([]Mutation{
		{Kind: MutDelete, Table: "instances", PK: "seed"},
		{Kind: MutInsert, Table: "instances", Row: row("seed", "b2", "nyc", t0, 0.4)},
	})
	if err != nil {
		t.Fatalf("valid batch failed: %v", err)
	}
	got, _ := s.Get("instances", "seed")
	if got["base_version_id"].Str != "b2" {
		t.Fatalf("batch result row = %#v", got)
	}
	n, _ := s.Len("instances")
	if n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestBatchSeesOwnInserts(t *testing.T) {
	s := newStore(t)
	err := s.Batch([]Mutation{
		{Kind: MutInsert, Table: "instances", Row: row("a", "b", "sf", t0, 0.1)},
		{Kind: MutUpdate, Table: "instances", Row: row("a", "b", "la", t0, 0.2)},
	})
	if err != nil {
		t.Fatalf("batch insert-then-update failed: %v", err)
	}
	got, _ := s.Get("instances", "a")
	if got["city"].Str != "la" {
		t.Fatalf("city = %q, want la", got["city"].Str)
	}
}

func TestDurabilityAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.wal")
	s, err := Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(modelsSchema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Insert("instances", row(fmt.Sprintf("i%d", i), "b", "sf", t0.Add(time.Duration(i)*time.Hour), float64(i)/100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Update("instances", row("i3", "b", "updated-city", t0, 0.99)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("instances", "i7"); err != nil {
		t.Fatal(err)
	}
	if err := s.Batch([]Mutation{
		{Kind: MutInsert, Table: "instances", Row: row("batch1", "b", "sf", t0, 0.5)},
		{Kind: MutDelete, Table: "instances", PK: "i9"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	n, err := s2.Len("instances")
	if err != nil {
		t.Fatal(err)
	}
	if n != 19 { // 20 - i7 - i9 + batch1
		t.Fatalf("recovered %d rows, want 19", n)
	}
	got, err := s2.Get("instances", "i3")
	if err != nil {
		t.Fatal(err)
	}
	if got["city"].Str != "updated-city" {
		t.Fatal("update lost across reopen")
	}
	if _, err := s2.Get("instances", "i7"); !errors.Is(err, ErrNotFound) {
		t.Fatal("delete lost across reopen")
	}
	// Recovered indexes must serve queries.
	rows, ex, err := s2.SelectExplain(Query{
		Table: "instances",
		Where: []Constraint{{Field: "city", Op: OpEq, Value: String("updated-city")}},
	})
	if err != nil || len(rows) != 1 {
		t.Fatalf("index query after recovery: rows=%d err=%v", len(rows), err)
	}
	if ex.Index != "city" {
		t.Fatalf("recovered query did not use index: %+v", ex)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := newStore(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("w%d-i%d", w, i)
				if err := s.Insert("instances", row(id, "b", "sf", t0, 0.1)); err != nil {
					t.Errorf("insert %s: %v", id, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := s.Select(Query{
					Table: "instances",
					Where: []Constraint{{Field: "city", Op: OpEq, Value: String("sf")}},
					Limit: 10,
				}); err != nil {
					t.Errorf("select: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	n, _ := s.Len("instances")
	if n != 8*200 {
		t.Fatalf("Len = %d, want %d", n, 8*200)
	}
}
