package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"gallery/internal/api"
	"gallery/internal/forecast"
	"gallery/internal/obs"
)

// captureSink records every flushed health request.
type captureSink struct {
	mu   sync.Mutex
	reqs []api.HealthObservationsRequest
}

func (s *captureSink) ReportHealthObservations(_ context.Context, req api.HealthObservationsRequest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reqs = append(s.reqs, req)
	return nil
}

func (s *captureSink) all() []api.HealthObservationsRequest {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]api.HealthObservationsRequest(nil), s.reqs...)
}

func TestHealthFlushShipsWindow(t *testing.T) {
	src := newFakeSource()
	src.promote(t, "m1", 0, &forecast.Heuristic{K: 1})
	sink := &captureSink{}
	g := newTestGateway(t, src, Options{
		Name: "gw-test", HealthSink: sink, HealthInterval: -1,
	})

	fctx := forecast.Context{History: []float64{10, 20, 30}}
	for i := 0; i < 5; i++ {
		if _, err := g.Predict("m1", fctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.FlushHealth(context.Background()); err != nil {
		t.Fatal(err)
	}
	reqs := sink.all()
	if len(reqs) != 1 {
		t.Fatalf("got %d flushes, want 1", len(reqs))
	}
	if reqs[0].Gateway != "gw-test" || len(reqs[0].Observations) != 1 {
		t.Fatalf("request = %+v", reqs[0])
	}
	o := reqs[0].Observations[0]
	if o.ModelID != "m1" || o.InstanceID != "inst-m1-0" {
		t.Fatalf("observation identity = %+v", o)
	}
	if o.Requests != 5 || o.StaleServes != 0 {
		t.Fatalf("counts = %d/%d, want 5/0", o.Requests, o.StaleServes)
	}
	if o.Values.Count != 5 || o.Latency.Count != 5 {
		t.Fatalf("sketch counts = %d/%d, want 5/5", o.Values.Count, o.Latency.Count)
	}
	// Heuristic{K:1} serves the last history value: every observation is 30.
	if o.Values.Mean() != 30 {
		t.Fatalf("values mean = %g, want 30", o.Values.Mean())
	}
	if o.WindowEnd.Before(o.WindowStart) {
		t.Fatalf("window %v..%v inverted", o.WindowStart, o.WindowEnd)
	}

	// Quiet window: nothing to ship.
	if err := g.FlushHealth(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.all()); got != 1 {
		t.Fatalf("empty window still flushed: %d reports", got)
	}
}

func TestHealthWindowResetOnHotSwap(t *testing.T) {
	src := newFakeSource()
	src.promote(t, "m1", 0, &forecast.Heuristic{K: 1})
	sink := &captureSink{}
	g := newTestGateway(t, src, Options{HealthSink: sink, HealthInterval: -1})

	fctx := forecast.Context{History: []float64{10, 20, 30}}
	for i := 0; i < 3; i++ {
		if _, err := g.Predict("m1", fctx); err != nil {
			t.Fatal(err)
		}
	}
	// Hot swap discards the mixed window...
	src.promote(t, "m1", 1, &forecast.Heuristic{K: 2})
	g.RefreshAll()
	if err := g.FlushHealth(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.all()); got != 0 {
		t.Fatalf("pre-swap window leaked through: %d reports", got)
	}
	// ...and post-swap traffic reports against the new instance.
	if _, err := g.Predict("m1", fctx); err != nil {
		t.Fatal(err)
	}
	if err := g.FlushHealth(context.Background()); err != nil {
		t.Fatal(err)
	}
	reqs := sink.all()
	if len(reqs) != 1 || len(reqs[0].Observations) != 1 {
		t.Fatalf("reports = %+v", reqs)
	}
	o := reqs[0].Observations[0]
	if o.InstanceID != "inst-m1-1" || o.Requests != 1 {
		t.Fatalf("post-swap observation = %+v", o)
	}
}

func TestPerModelStaleCounterAndRefreshAgeGauge(t *testing.T) {
	src := newFakeSource()
	src.promote(t, "m1", 0, &forecast.Heuristic{K: 1})
	reg := obs.NewRegistry()
	g := newTestGateway(t, src, Options{Obs: reg})

	fctx := forecast.Context{History: []float64{10, 20, 30}}
	if _, err := g.Predict("m1", fctx); err != nil {
		t.Fatal(err)
	}
	staleName := obs.Name("serve_stale_serves_total", "model", "m1")
	if got := reg.Counter(staleName).Value(); got != 0 {
		t.Fatalf("stale counter = %d before any degradation", got)
	}
	ageName := obs.Name("serve_refresh_age_seconds", "model", "m1")
	snap := reg.Snapshot()
	age, ok := snap.Gauges[ageName]
	if !ok {
		t.Fatalf("refresh-age gauge missing; gauges = %v", snap.Gauges)
	}
	if age < 0 || age > 60 {
		t.Fatalf("refresh age = %g, want small and non-negative", age)
	}

	// Take galleryd down: refresh fails, serves go stale, the per-model
	// counter moves with them.
	src.fail.Store(true)
	g.RefreshAll()
	for i := 0; i < 3; i++ {
		if _, err := g.Predict("m1", fctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter(staleName).Value(); got != 3 {
		t.Fatalf("per-model stale counter = %d, want 3", got)
	}

	// Recovery refreshes the pointer and resets the age.
	src.fail.Store(false)
	time.Sleep(10 * time.Millisecond)
	g.RefreshAll()
	snap = reg.Snapshot()
	if age2 := snap.Gauges[ageName]; age2 < 0 || age2 > 1 {
		t.Fatalf("refresh age after recovery = %g, want ≈0", age2)
	}
}

func TestRefreshAgeGaugeRemovedOnEviction(t *testing.T) {
	src := newFakeSource()
	src.promote(t, "m1", 0, &forecast.Heuristic{K: 1})
	src.promote(t, "m2", 0, &forecast.Heuristic{K: 1})
	reg := obs.NewRegistry()
	g := newTestGateway(t, src, Options{Obs: reg, MaxModels: 1})

	fctx := forecast.Context{History: []float64{10, 20, 30}}
	if _, err := g.Predict("m1", fctx); err != nil {
		t.Fatal(err)
	}
	// Loading m2 evicts m1 (MaxModels=1).
	if _, err := g.Predict("m2", fctx); err != nil {
		t.Fatal(err)
	}
	name1 := obs.Name("serve_refresh_age_seconds", "model", "m1")
	name2 := obs.Name("serve_refresh_age_seconds", "model", "m2")
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := reg.Snapshot()
		_, has1 := snap.Gauges[name1]
		_, has2 := snap.Gauges[name2]
		if !has1 && has2 {
			break // evicted gauge dropped, resident gauge kept
		}
		if time.Now().After(deadline) {
			t.Fatalf("gauges after eviction = %v", snap.Gauges)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
