// Package clock abstracts time for the Gallery system.
//
// Gallery orders model instances by creation time (paper Fig. 4 sorts
// instances by time) and its drift detector reasons about metric history over
// time. Experiments must be deterministic, so every component takes a Clock
// instead of calling time.Now directly. Production uses Real; tests and the
// benchmark harness use Mock, which only advances when told to.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	Now() time.Time
}

// Real is the wall clock.
type Real struct{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Mock is a manually-advanced clock. The zero value starts at the Unix epoch;
// use NewMock to start elsewhere. Mock is safe for concurrent use.
type Mock struct {
	mu  sync.Mutex
	now time.Time
}

// NewMock returns a Mock frozen at start.
func NewMock(start time.Time) *Mock { return &Mock{now: start} }

// Now returns the mock's current instant.
func (m *Mock) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Advance moves the clock forward by d and returns the new instant.
func (m *Mock) Advance(d time.Duration) time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = m.now.Add(d)
	return m.now
}

// Set jumps the clock to t.
func (m *Mock) Set(t time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = t
}
