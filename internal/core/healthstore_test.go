package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestHealthWindowRoundTripAndPrune(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "b")
	in := h.upload(t, m, "sf", []byte("x"))

	ctx := context.Background()
	start := h.clk.Now()
	for i := 0; i < 5; i++ {
		w := &HealthWindow{
			ModelID:      m.ID,
			InstanceID:   in.ID,
			Gateway:      "gw-1",
			Start:        start.Add(time.Duration(i) * time.Minute),
			End:          start.Add(time.Duration(i+1) * time.Minute),
			Requests:     int64(100 + i),
			StaleServes:  int64(i),
			ValuesSketch: `{"count":1}`,
		}
		if err := h.g.InsertHealthWindow(ctx, w); err != nil {
			t.Fatal(err)
		}
		if w.ID.IsNil() {
			t.Fatal("insert did not assign an id")
		}
	}

	ws, err := h.g.HealthWindows(m.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 5 {
		t.Fatalf("got %d windows, want 5", len(ws))
	}
	for i := 1; i < len(ws); i++ {
		if ws[i].End.Before(ws[i-1].End) {
			t.Fatal("windows not ordered oldest first")
		}
	}
	if ws[0].Requests != 100 || ws[0].Gateway != "gw-1" || ws[0].InstanceID != in.ID {
		t.Fatalf("round trip mismatch: %+v", ws[0])
	}

	recent, err := h.g.HealthWindows(m.ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recent) != 2 || recent[1].Requests != 104 {
		t.Fatalf("limited read = %+v", recent)
	}

	ids, err := h.g.HealthWindowModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != m.ID {
		t.Fatalf("model scan = %v", ids)
	}

	n, err := h.g.PruneHealthWindows(ctx, m.ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("pruned %d, want 3", n)
	}
	ws, err = h.g.HealthWindows(m.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 || ws[0].Requests != 103 {
		t.Fatalf("after prune = %+v", ws)
	}
	// Pruning again under the cap is a no-op.
	if n, err = h.g.PruneHealthWindows(ctx, m.ID, 2); err != nil || n != 0 {
		t.Fatalf("re-prune = %d, %v", n, err)
	}
}

func TestHealthWindowValidation(t *testing.T) {
	h := newHarness(t)
	ctx := context.Background()
	err := h.g.InsertHealthWindow(ctx, &HealthWindow{})
	if !errors.Is(err, ErrBadSpec) {
		t.Fatalf("err = %v, want ErrBadSpec", err)
	}
	m := h.model(t, "b")
	now := h.clk.Now()
	err = h.g.InsertHealthWindow(ctx, &HealthWindow{
		ModelID: m.ID, Start: now, End: now.Add(-time.Minute),
	})
	if !errors.Is(err, ErrBadSpec) {
		t.Fatalf("err = %v, want ErrBadSpec", err)
	}
}
