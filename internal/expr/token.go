// Package expr implements the expression language Gallery rules are written
// in.
//
// The paper implements its Given/When/Then rules with JEXL, the Java
// Expression Language (§3.7.2). This package is a from-scratch equivalent
// covering everything the paper's rules use — comparisons, boolean
// connectives, arithmetic, field access (metrics.bias), map indexing
// (metrics["r2"]), string/number/bool literals, and function calls — as a
// lexer, a Pratt parser, and a strict evaluator over caller-supplied
// environments.
package expr

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// kind enumerates token kinds.
type kind uint8

const (
	tokEOF kind = iota
	tokIdent
	tokNumber
	tokString
	tokBool
	tokNull

	tokEq       // ==
	tokNe       // !=
	tokLt       // <
	tokLe       // <=
	tokGt       // >
	tokGe       // >=
	tokAnd      // &&
	tokOr       // ||
	tokNot      // !
	tokPlus     // +
	tokMinus    // -
	tokStar     // *
	tokSlash    // /
	tokPercent  // %
	tokLParen   // (
	tokRParen   // )
	tokLBracket // [
	tokRBracket // ]
	tokDot      // .
	tokComma    // ,
	tokIn       // in
)

type token struct {
	kind kind
	text string // identifier or decoded string literal
	num  float64
	pos  int // byte offset in source, for error messages
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of expression"
	case tokNumber:
		return fmt.Sprintf("number %v", t.num)
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// SyntaxError reports a lexing or parsing failure with its position.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("expr: syntax error at offset %d: %s", e.Pos, e.Msg)
}

// lex tokenizes src.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	emit := func(k kind, text string, pos int) {
		toks = append(toks, token{kind: k, text: text, pos: pos})
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			emit(tokLParen, "(", i)
			i++
		case c == ')':
			emit(tokRParen, ")", i)
			i++
		case c == '[':
			emit(tokLBracket, "[", i)
			i++
		case c == ']':
			emit(tokRBracket, "]", i)
			i++
		case c == ',':
			emit(tokComma, ",", i)
			i++
		case c == '+':
			emit(tokPlus, "+", i)
			i++
		case c == '*':
			emit(tokStar, "*", i)
			i++
		case c == '/':
			emit(tokSlash, "/", i)
			i++
		case c == '%':
			emit(tokPercent, "%", i)
			i++
		case c == '-':
			emit(tokMinus, "-", i)
			i++
		case c == '=':
			if i+1 < len(src) && src[i+1] == '=' {
				emit(tokEq, "==", i)
				i += 2
			} else {
				return nil, &SyntaxError{i, "single '=' (use '==' for comparison)"}
			}
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				emit(tokNe, "!=", i)
				i += 2
			} else {
				emit(tokNot, "!", i)
				i++
			}
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				emit(tokLe, "<=", i)
				i += 2
			} else {
				emit(tokLt, "<", i)
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				emit(tokGe, ">=", i)
				i += 2
			} else {
				emit(tokGt, ">", i)
				i++
			}
		case c == '&':
			if i+1 < len(src) && src[i+1] == '&' {
				emit(tokAnd, "&&", i)
				i += 2
			} else {
				return nil, &SyntaxError{i, "single '&' (use '&&')"}
			}
		case c == '|':
			if i+1 < len(src) && src[i+1] == '|' {
				emit(tokOr, "||", i)
				i += 2
			} else {
				return nil, &SyntaxError{i, "single '|' (use '||')"}
			}
		case c == '\'' || c == '"':
			s, next, err := lexString(src, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokString, text: s, pos: i})
			i = next
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9') {
				i++
			}
			if i < len(src) && src[i] == '.' {
				i++
				if i >= len(src) || src[i] < '0' || src[i] > '9' {
					return nil, &SyntaxError{start, "malformed number"}
				}
				for i < len(src) && src[i] >= '0' && src[i] <= '9' {
					i++
				}
			}
			var f float64
			if _, err := fmt.Sscanf(src[start:i], "%g", &f); err != nil {
				return nil, &SyntaxError{start, "malformed number"}
			}
			toks = append(toks, token{kind: tokNumber, num: f, pos: start})
		case c == '.':
			// Distinguish member access from a leading-dot float like ".5".
			if i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9' {
				start := i
				i++
				for i < len(src) && src[i] >= '0' && src[i] <= '9' {
					i++
				}
				var f float64
				fmt.Sscanf(src[start:i], "%g", &f)
				toks = append(toks, token{kind: tokNumber, num: f, pos: start})
			} else {
				emit(tokDot, ".", i)
				i++
			}
		default:
			r, size := utf8.DecodeRuneInString(src[i:])
			if size == 0 || (r == utf8.RuneError && size == 1) || !isIdentStart(r) {
				return nil, &SyntaxError{i, fmt.Sprintf("unexpected character %q", c)}
			}
			start := i
			i += size
			for i < len(src) {
				r, size := utf8.DecodeRuneInString(src[i:])
				if (r == utf8.RuneError && size <= 1) || !isIdentPart(r) {
					break
				}
				i += size
			}
			word := src[start:i]
			switch word {
			case "true", "false":
				toks = append(toks, token{kind: tokBool, text: word, pos: start})
			case "null":
				toks = append(toks, token{kind: tokNull, text: word, pos: start})
			case "and":
				emit(tokAnd, "and", start)
			case "or":
				emit(tokOr, "or", start)
			case "not":
				emit(tokNot, "not", start)
			case "in":
				emit(tokIn, "in", start)
			default:
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(src)})
	return toks, nil
}

// lexString decodes a quoted string starting at src[start], handling the
// escapes \\, \', \", \n, \t.
func lexString(src string, start int) (string, int, error) {
	quote := src[start]
	var b strings.Builder
	i := start + 1
	for i < len(src) {
		c := src[i]
		switch c {
		case quote:
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(src) {
				return "", 0, &SyntaxError{i, "dangling escape"}
			}
			switch src[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '\'':
				b.WriteByte('\'')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return "", 0, &SyntaxError{i, fmt.Sprintf("unknown escape \\%c", src[i+1])}
			}
			i += 2
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", 0, &SyntaxError{start, "unterminated string"}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
