package tenant

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBucketBurstThenRefill(t *testing.T) {
	b := newBucket(10, 5) // 10 req/s sustained, burst of 5
	now := t0
	for i := 0; i < 5; i++ {
		if ok, _ := b.allow(now); !ok {
			t.Fatalf("request %d within burst rejected", i)
		}
	}
	ok, retry := b.allow(now)
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	// One token refills in 1/rate = 100ms.
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, 100ms]", retry)
	}
	if ok, _ := b.allow(now.Add(retry)); !ok {
		t.Fatal("request after advertised retryAfter rejected")
	}
	// After a long idle stretch tokens cap at burst, not accumulate.
	now = now.Add(time.Hour)
	admitted := 0
	for i := 0; i < 20; i++ {
		if ok, _ := b.allow(now); ok {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("admitted %d after idle, want burst=5", admitted)
	}
}

func TestBucketDisabled(t *testing.T) {
	b := newBucket(0, 0) // rate 0 = unlimited
	for i := 0; i < 1000; i++ {
		if ok, _ := b.allow(t0); !ok {
			t.Fatal("unlimited bucket rejected a request")
		}
	}
}

func TestBucketReconfigure(t *testing.T) {
	b := newBucket(0, 0)
	b.configure(1, 2)
	now := t0
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := b.allow(now); ok {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("admitted %d after configure, want burst=2", admitted)
	}
	// Burst defaulting: rate>0 with burst 0 gets max(1, rate).
	b2 := newBucket(0, 0)
	b2.configure(4, 0)
	admitted = 0
	for i := 0; i < 10; i++ {
		if ok, _ := b2.allow(now); ok {
			admitted++
		}
	}
	if admitted != 4 {
		t.Fatalf("admitted %d with defaulted burst, want 4", admitted)
	}
}

// TestBucketConcurrent hammers one bucket from many goroutines at a frozen
// instant: admissions must total exactly the burst, never more.
func TestBucketConcurrent(t *testing.T) {
	b := newBucket(100, 50)
	var (
		wg       sync.WaitGroup
		admitted atomic.Int64
	)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if ok, _ := b.allow(t0); ok {
					admitted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != 50 {
		t.Fatalf("admitted %d concurrent requests, want exactly burst=50", got)
	}
}
