// Package wal implements a write-ahead log used by the relational metadata
// store for durability.
//
// The paper's Gallery stores metadata in MySQL, which is durable and
// crash-recoverable; this reproduction's embedded metadata store gets the
// same property from a length- and CRC-framed append-only log. Records are
// opaque byte payloads. On recovery the log is replayed until the first
// corrupt or torn record, and the file is truncated there so appends can
// resume from a clean tail — the standard behaviour of production WALs.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Record framing: 4-byte little-endian payload length, 4-byte CRC32C of the
// payload, then the payload bytes.
const headerSize = 8

// maxRecordSize guards against interpreting a corrupt length field as a
// multi-gigabyte allocation during recovery.
const maxRecordSize = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Log is an append-only record log. It is safe for concurrent use.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	size   int64
	closed bool
	sync   bool // fsync after every append
}

// Options configures a Log.
type Options struct {
	// Sync forces an fsync after every append. Slower, but survives OS
	// crashes rather than just process crashes.
	Sync bool
}

// Open opens (creating if necessary) the log at path, replays all intact
// records through apply, truncates any torn tail, and returns a Log
// positioned for appending. apply may be nil when the caller only appends.
func Open(path string, opts Options, apply func(payload []byte) error) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	valid, err := replay(f, apply)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	return &Log{f: f, w: bufio.NewWriter(f), size: valid, sync: opts.Sync}, nil
}

// replay streams records from the start of f, calling apply for each intact
// record, and returns the offset of the first byte past the last intact
// record. A short header, short payload, oversized length, or CRC mismatch
// ends replay without error: it marks a torn write from a crash.
func replay(f *os.File, apply func([]byte) error) (valid int64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("wal: seek for replay: %w", err)
	}
	r := bufio.NewReader(f)
	var hdr [headerSize]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return valid, nil
			}
			return 0, fmt.Errorf("wal: read header: %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxRecordSize {
			return valid, nil // corrupt length: treat as torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return valid, nil
			}
			return 0, fmt.Errorf("wal: read payload: %w", err)
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return valid, nil // corrupt payload: torn tail
		}
		if apply != nil {
			if err := apply(payload); err != nil {
				return 0, fmt.Errorf("wal: apply record: %w", err)
			}
		}
		valid += headerSize + int64(n)
	}
}

// Append durably adds one record to the log.
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append header: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("wal: append payload: %w", err)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
	}
	l.size += headerSize + int64(len(payload))
	return nil
}

// Size returns the byte size of the log's intact prefix.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close flushes and closes the underlying file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: flush on close: %w", err)
	}
	return l.f.Close()
}
