module gallery

go 1.23
