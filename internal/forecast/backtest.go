package forecast

import "fmt"

// Backtest runs rolling-origin one-step-ahead evaluation: the model is
// trained on data[:trainN], then walked forward over the remainder,
// predicting each point from everything before it. This is the
// "backtesting" validation process the paper describes feeding model
// validation performance (§3.6).
func Backtest(m Model, data Series, trainN int) (Metrics, error) {
	if trainN <= 0 || trainN >= len(data) {
		return Metrics{}, fmt.Errorf("forecast: trainN %d out of range for %d points", trainN, len(data))
	}
	if err := m.Train(data[:trainN]); err != nil {
		return Metrics{}, err
	}
	values := data.Values()
	var preds, actuals []float64
	for i := trainN; i < len(data); i++ {
		p := m.Forecast(Context{
			History:   values[:i],
			Time:      data[i].T,
			Event:     data[i].Event,
			PrevEvent: data[i-1].Event,
		})
		preds = append(preds, p)
		actuals = append(actuals, values[i])
	}
	return Evaluate(preds, actuals)
}

// RollingMAPE evaluates a model over a window of the series without
// retraining, returning the window's MAPE — the production-performance
// signal the rule engine consumes.
func RollingMAPE(m Model, data Series, from, to int) (float64, error) {
	if from < 1 || to > len(data) || from >= to {
		return 0, fmt.Errorf("forecast: bad window [%d, %d) over %d points", from, to, len(data))
	}
	values := data.Values()
	var preds, actuals []float64
	for i := from; i < to; i++ {
		preds = append(preds, m.Forecast(Context{
			History:   values[:i],
			Time:      data[i].T,
			Event:     data[i].Event,
			PrevEvent: data[i-1].Event,
		}))
		actuals = append(actuals, values[i])
	}
	met, err := Evaluate(preds, actuals)
	if err != nil {
		return 0, err
	}
	return met.MAPE, nil
}
