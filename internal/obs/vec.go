package obs

import (
	"sort"
	"sync"
)

// Labeled metric vectors with bounded cardinality.
//
// The registry's plain get-or-create calls key metrics by their fully
// rendered name (base{k="v"}), which costs one string build per lookup —
// fine for per-table or per-route labels resolved once, wrong for
// per-request dimensions like the tenant namespace. A vector instead
// keys its children by the raw label values (a comparable struct, so the
// steady-state lookup allocates nothing) and enforces an explicit
// cardinality cap: once Limit distinct label sets exist, further label
// values collapse into a single overflow series labeled OverflowLabel.
// That bound is the defense the multi-tenant plane needs — a misbehaving
// caller cycling through label values cannot grow the registry without
// limit, it can only inflate one overflow bucket.

// DefaultVecCardinality is the per-vector child cap used by the built-in
// RED vectors: generous for realistic tenant and model counts, small
// enough that a label-explosion attack stays bounded.
const DefaultVecCardinality = 1024

// OverflowLabel is the synthetic label value that absorbs every series
// beyond a vector's cardinality cap.
const OverflowLabel = "_overflow"

// vecKey is a child's label values. Vectors carry one or two labels; the
// second value is "" for one-label vectors. A struct key keeps child
// lookup allocation-free on hot paths.
type vecKey struct{ a, b string }

// vecCore is the label bookkeeping shared by CounterVec and HistogramVec.
type vecCore struct {
	base   string
	labels []string // 1 or 2 label key names
	limit  int
}

func newVecCore(base string, labels []string, limit int) vecCore {
	if len(labels) < 1 || len(labels) > 2 {
		panic("obs: vector must carry one or two labels, got " + base)
	}
	if limit <= 0 {
		limit = DefaultVecCardinality
	}
	return vecCore{base: base, labels: labels, limit: limit}
}

// name renders one child's full metric name.
func (c *vecCore) name(k vecKey) string {
	if len(c.labels) == 1 {
		return Name(c.base, c.labels[0], k.a)
	}
	return Name(c.base, c.labels[0], k.a, c.labels[1], k.b)
}

func (c *vecCore) overflowKey() vecKey {
	k := vecKey{a: OverflowLabel}
	if len(c.labels) == 2 {
		k.b = OverflowLabel
	}
	return k
}

// CounterVec is a family of Counters sharing one base name, keyed by one
// or two label values, with a hard cardinality cap. With/With2 are safe
// for concurrent use and allocation-free once a child exists.
type CounterVec struct {
	vecCore
	mu       sync.RWMutex
	children map[vecKey]*Counter
	overflow *Counter // lazily created when the cap is first hit
}

// NewCounterVec builds an unregistered counter vector. Most callers want
// Registry.CounterVec, which also exposes the children in snapshots.
func NewCounterVec(base string, labels []string, limit int) *CounterVec {
	return &CounterVec{
		vecCore:  newVecCore(base, labels, limit),
		children: make(map[vecKey]*Counter),
	}
}

// With returns the child for a one-label vector.
func (v *CounterVec) With(a string) *Counter {
	if len(v.labels) != 1 {
		panic("obs: With on a " + v.base + " vector with " + v.labels[0] + "," + v.labels[1] + " labels")
	}
	return v.child(vecKey{a: a})
}

// With2 returns the child for a two-label vector.
func (v *CounterVec) With2(a, b string) *Counter {
	if len(v.labels) != 2 {
		panic("obs: With2 on one-label vector " + v.base)
	}
	return v.child(vecKey{a: a, b: b})
}

func (v *CounterVec) child(k vecKey) *Counter {
	v.mu.RLock()
	c, ok := v.children[k]
	of := v.overflow
	n := len(v.children)
	v.mu.RUnlock()
	if ok {
		return c
	}
	if n >= v.limit && of != nil {
		return of
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[k]; ok {
		return c
	}
	if len(v.children) >= v.limit {
		if v.overflow == nil {
			v.overflow = &Counter{}
		}
		return v.overflow
	}
	c = &Counter{}
	v.children[k] = c
	return c
}

// Get reads the current value of a one-label child without creating it.
func (v *CounterVec) Get(a string) int64 { return v.get(vecKey{a: a}) }

// Get2 reads the current value of a two-label child without creating it.
func (v *CounterVec) Get2(a, b string) int64 { return v.get(vecKey{a: a, b: b}) }

func (v *CounterVec) get(k vecKey) int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if c, ok := v.children[k]; ok {
		return c.Value()
	}
	return 0
}

// Len reports how many distinct child series exist (the overflow series
// excluded).
func (v *CounterVec) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.children)
}

// sum totals every child plus the overflow series.
func (v *CounterVec) sum() int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	var total int64
	for _, c := range v.children {
		total += c.Value()
	}
	if v.overflow != nil {
		total += v.overflow.Value()
	}
	return total
}

// snapshot folds every child (and a non-zero overflow series) into out,
// keyed by rendered name.
func (v *CounterVec) snapshot(out map[string]int64) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for k, c := range v.children {
		out[v.name(k)] = c.Value()
	}
	if v.overflow != nil {
		out[v.name(v.overflowKey())] = v.overflow.Value()
	}
}

// HistogramVec is a family of Histograms sharing one base name and bucket
// bounds, keyed by one or two label values, with a hard cardinality cap.
type HistogramVec struct {
	vecCore
	bounds   []float64
	mu       sync.RWMutex
	children map[vecKey]*Histogram
	overflow *Histogram
}

// NewHistogramVec builds an unregistered histogram vector over the given
// strictly ascending bucket bounds (same contract as NewHistogram).
func NewHistogramVec(base string, labels []string, bounds []float64, limit int) *HistogramVec {
	validateBounds(bounds)
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	return &HistogramVec{
		vecCore:  newVecCore(base, labels, limit),
		bounds:   cp,
		children: make(map[vecKey]*Histogram),
	}
}

// With returns the child for a one-label vector.
func (v *HistogramVec) With(a string) *Histogram {
	if len(v.labels) != 1 {
		panic("obs: With on a " + v.base + " vector with " + v.labels[0] + "," + v.labels[1] + " labels")
	}
	return v.child(vecKey{a: a})
}

// With2 returns the child for a two-label vector.
func (v *HistogramVec) With2(a, b string) *Histogram {
	if len(v.labels) != 2 {
		panic("obs: With2 on one-label vector " + v.base)
	}
	return v.child(vecKey{a: a, b: b})
}

func (v *HistogramVec) child(k vecKey) *Histogram {
	v.mu.RLock()
	h, ok := v.children[k]
	of := v.overflow
	n := len(v.children)
	v.mu.RUnlock()
	if ok {
		return h
	}
	if n >= v.limit && of != nil {
		return of
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.children[k]; ok {
		return h
	}
	if len(v.children) >= v.limit {
		if v.overflow == nil {
			v.overflow = NewHistogram(v.bounds)
		}
		return v.overflow
	}
	h = NewHistogram(v.bounds)
	v.children[k] = h
	return h
}

// Peek returns a one-label child if it exists, else nil — readers (the
// SLO evaluator) must not create series for targets that saw no traffic.
func (v *HistogramVec) Peek(a string) *Histogram { return v.peek(vecKey{a: a}) }

// Peek2 is Peek for two-label vectors.
func (v *HistogramVec) Peek2(a, b string) *Histogram { return v.peek(vecKey{a: a, b: b}) }

func (v *HistogramVec) peek(k vecKey) *Histogram {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.children[k]
}

// Len reports how many distinct child series exist (overflow excluded).
func (v *HistogramVec) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.children)
}

// each visits every child (overflow included when present) in sorted
// rendered-name order — the exposition writer's iteration.
func (v *HistogramVec) each(visit func(name string, h *Histogram)) {
	v.mu.RLock()
	type kv struct {
		name string
		h    *Histogram
	}
	all := make([]kv, 0, len(v.children)+1)
	for k, h := range v.children {
		all = append(all, kv{v.name(k), h})
	}
	if v.overflow != nil {
		all = append(all, kv{v.name(v.overflowKey()), v.overflow})
	}
	v.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	for _, e := range all {
		visit(e.name, e.h)
	}
}

// CounterVec returns the counter vector registered under base, creating
// it if new. An existing vector keeps its original labels and limit.
func (r *Registry) CounterVec(base string, labels []string, limit int) *CounterVec {
	r.mu.RLock()
	v, ok := r.counterVecs[base]
	r.mu.RUnlock()
	if ok {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.counterVecs[base]; ok {
		return v
	}
	v = NewCounterVec(base, labels, limit)
	r.counterVecs[base] = v
	return v
}

// HistogramVec returns the histogram vector registered under base,
// creating it with the given bounds if new.
func (r *Registry) HistogramVec(base string, labels []string, bounds []float64, limit int) *HistogramVec {
	r.mu.RLock()
	v, ok := r.histVecs[base]
	r.mu.RUnlock()
	if ok {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.histVecs[base]; ok {
		return v
	}
	v = NewHistogramVec(base, labels, bounds, limit)
	r.histVecs[base] = v
	return v
}
