// Package core implements the Gallery model-management system itself: the
// data model of models, model instances, and performance metrics (paper
// §3.3, Fig. 3), Git-style UUID versioning with base-version-id lineage
// (§3.4.1, Fig. 4), dependency tracking with automatic version propagation
// (§3.4.2, Figs. 5–7), metadata search (§3.5), deprecation (§3.7), and
// model health — drift and production skew (§3.6).
//
// Everything in Gallery is immutable: models, instances, and metrics are
// only ever added, never changed in place. The only mutable state is
// operational — deprecation flags, production pointers — which the paper
// also treats as flags rather than edits.
package core

import (
	"fmt"
	"time"

	"gallery/internal/uuid"
)

// Model is the abstract data transformation (paper §2): the specification
// of a solution to a problem, independent of any trained coefficients.
// A model's BaseVersionID groups all model records and instances that
// solve the same problem; PrevModel/NextModel link the evolution chain.
type Model struct {
	ID            uuid.UUID
	BaseVersionID string // user-declared, e.g. "demand_conversion"
	Project       string
	Name          string // e.g. "linear_regression"
	Owner         string
	Team          string
	Domain        string // e.g. "UberX"
	Description   string

	// Major is the model-level display version; the dependency graph
	// renders a model's state as Major.Minor (paper Figs. 5–7). Minor is
	// the latest version counter, denormalized onto the model row so a
	// version bump is O(1) regardless of history length — the property
	// that keeps uploads fast at the paper's million-instance scale.
	Major int
	Minor int

	// ProductionVersion points at the currently promoted version record.
	ProductionVersion uuid.UUID

	// Evolution pointers (paper §3.3.1).
	PrevModel uuid.UUID
	NextModel uuid.UUID

	Created    time.Time
	Deprecated bool
}

// Version renders the model's current display version as "major.minor".
func (m *Model) Version(minor int) string { return fmt.Sprintf("%d.%d", m.Major, minor) }

// ModelSpec is the caller-supplied part of a new model registration.
type ModelSpec struct {
	BaseVersionID string
	Project       string
	Name          string
	Owner         string
	Team          string
	Domain        string
	Description   string
	// InitialMajor seeds the display version; 1 if zero.
	InitialMajor int
	// Upstreams declares dependencies on existing models at registration
	// (paper §3.4.2: "dependencies ... are established by the user when
	// models are first registered").
	Upstreams []uuid.UUID
}

// Instance is a trained realization of a model (paper §3.3.2): an opaque
// blob plus the metadata needed to reproduce and serve it.
type Instance struct {
	ID            uuid.UUID
	ModelID       uuid.UUID
	BaseVersionID string
	Project       string
	Name          string // e.g. "Random Forest" (paper Listing 3)
	City          string // Gallery shards marketplace models by city

	// Reproducibility metadata (paper §3.3.4, §6.2).
	Framework    string // e.g. "SparkML"
	TrainingData string // dataset pointer + version
	CodePointer  string // training code reference
	Seed         int64
	Epochs       int64
	Hyperparams  string // opaque encoded hyperparameters
	Features     string // opaque encoded feature list

	// BlobLocation is where the serialized model lives; set by Gallery.
	BlobLocation string

	Created    time.Time
	Deprecated bool
}

// InstanceSpec is the caller-supplied part of an instance upload. The blob
// itself travels separately so the registry can enforce blob-first writes.
type InstanceSpec struct {
	ModelID      uuid.UUID
	Name         string
	City         string
	Framework    string
	TrainingData string
	CodePointer  string
	Seed         int64
	Epochs       int64
	Hyperparams  string
	Features     string
}

// Scope classifies a performance metric by lifecycle stage (paper §3.6).
type Scope string

// Metric scopes.
const (
	ScopeTraining   Scope = "training"
	ScopeValidation Scope = "validation"
	ScopeProduction Scope = "production"
)

// ValidScope reports whether s is one of the defined scopes.
func ValidScope(s Scope) bool {
	return s == ScopeTraining || s == ScopeValidation || s == ScopeProduction
}

// Metric is one evaluation measurement of a model instance. The paper
// stores metrics as "<metric>:<value>" blobs; the registry flattens each
// pair into one queryable row, which is what makes rule conditions like
// metrics.bias <= 0.1 searchable.
type Metric struct {
	ID         uuid.UUID
	InstanceID uuid.UUID
	ModelID    uuid.UUID
	Name       string // e.g. "mape", "bias", "r2"
	Scope      Scope
	Value      float64
	At         time.Time
}

// VersionCause explains why a version record exists (paper Figs. 6–7).
type VersionCause string

// Version causes.
const (
	CauseRegistered VersionCause = "registered"         // model created
	CauseRetrained  VersionCause = "retrained"          // new owned instance
	CauseDepUpdate  VersionCause = "dep_update"         // an upstream produced a new version
	CauseDepAdded   VersionCause = "dependency_added"   // a new upstream edge
	CauseDepRemoved VersionCause = "dependency_removed" // an upstream edge removed
)

// VersionRecord is one entry in a model's version history. Dependency
// propagation adds records without touching production (paper §3.4.2:
// "without changing the production versions"); the owner promotes one
// explicitly.
type VersionRecord struct {
	ID         uuid.UUID
	ModelID    uuid.UUID
	Major      int
	Minor      int
	Cause      VersionCause
	InstanceID uuid.UUID // instance realizing this version, if any
	// TriggeredBy is the model whose change caused a dep_update, if any.
	TriggeredBy uuid.UUID
	Created     time.Time
	Production  bool
}

// String renders the display version, e.g. "4.2".
func (v *VersionRecord) String() string { return fmt.Sprintf("%d.%d", v.Major, v.Minor) }

// Dependency is one edge: From depends on (consumes the output of) To.
type Dependency struct {
	From    uuid.UUID // downstream
	To      uuid.UUID // upstream
	Created time.Time
}
