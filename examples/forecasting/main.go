// Forecasting reproduces the Marketplace Forecasting case study (paper
// §4.2) end to end: per-city demand, multiple model classes trained and
// stored per city, rule-engine champion selection from Gallery metrics,
// and dynamic model switching around events — the mechanism the paper
// credits with >10% MAPE improvement over a static served model.
//
// The switching works the way the paper describes: Gallery holds separate
// production performance for event hours and regular hours ("the
// performance of models that include holiday/event features versus those
// that do not"), and the serving system asks the rule engine for the
// appropriate champion when an event begins and ends.
//
// Run with: go run ./examples/forecasting
package main

import (
	"fmt"
	"log"
	"time"

	"gallery/internal/blobstore"
	"gallery/internal/core"
	"gallery/internal/forecast"
	"gallery/internal/relstore"
	"gallery/internal/rules"
	"gallery/internal/uuid"
)

const (
	trainDays   = 42
	testDays    = 21
	hoursPerDay = 24
	// horizon is how many hours ahead the marketplace needs demand
	// forecasts; at multi-hour horizons the event calendar is decisive.
	horizon = 3
)

func main() {
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	repo := rules.NewRepo(nil)
	engine := rules.NewEngine(reg, repo, nil)

	// Two champion-selection rules: lowest recent production MAPE during
	// events, and during regular hours.
	eventRule := &rules.Rule{
		UUID: uuid.New().String(), Team: "forecasting", Name: "serve-event-champion",
		Kind:           rules.KindSelection,
		When:           `has(metrics, "mape_event")`,
		ModelSelection: "a.metrics.mape_event < b.metrics.mape_event",
	}
	regularRule := &rules.Rule{
		UUID: uuid.New().String(), Team: "forecasting", Name: "serve-regular-champion",
		Kind:           rules.KindSelection,
		When:           `has(metrics, "mape_regular")`,
		ModelSelection: "a.metrics.mape_regular < b.metrics.mape_regular",
	}
	if _, err := repo.Commit("forecasting", "champion rules", []*rules.Rule{eventRule, regularRule}, nil); err != nil {
		log.Fatal(err)
	}

	start := time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)
	cities := forecast.DefaultCities(3, 11)
	// Recurring holiday-like demand spikes in every city.
	for i := range cities {
		for w := 0; w < (trainDays+testDays)/7; w++ {
			evStart := start.Add(time.Duration(w)*7*24*time.Hour + 5*24*time.Hour)
			cities[i].Events = append(cities[i].Events, forecast.Event{
				Start: evStart, End: evStart.Add(48 * time.Hour), Multiplier: 2.0,
			})
		}
	}

	var sumStatic, sumSwitched float64
	for _, city := range cities {
		static, switched := runCity(reg, engine, eventRule.UUID, regularRule.UUID, city, start)
		sumStatic += static
		sumSwitched += switched
		fmt.Printf("%-16s static MAPE %.2f%%  switched MAPE %.2f%%  improvement %.1f%%\n",
			city.Name, static, switched, 100*(static-switched)/static)
	}
	n := float64(len(cities))
	fmt.Printf("\noverall: static %.2f%% -> switched %.2f%% (%.1f%% MAPE improvement; paper reports >10%%)\n",
		sumStatic/n, sumSwitched/n, 100*(sumStatic-sumSwitched)/sumStatic)
}

// runCity trains both model classes for one city, registers them in
// Gallery, and serves the test window twice: statically (one fixed model
// without event features, the paper's baseline) and dynamically (the rule
// engine serves the event champion during events and the regular champion
// otherwise). Returns the two MAPEs.
func runCity(reg *core.Registry, engine *rules.Engine, eventRuleID, regularRuleID string, city forecast.CityConfig, start time.Time) (staticMAPE, switchedMAPE float64) {
	data := forecast.Generate(city, start, time.Hour, (trainDays+testDays)*hoursPerDay)
	trainN := trainDays * hoursPerDay
	values := data.Values()
	eventFlags := make([]bool, len(data))
	for i, p := range data {
		eventFlags[i] = p.Event
	}

	m, err := reg.RegisterModel(core.ModelSpec{
		BaseVersionID: "demand_" + city.Name,
		Project:       "marketplace-forecasting",
		Name:          "demand_forecaster",
		Domain:        "UberX",
	})
	if err != nil {
		log.Fatal(err)
	}

	type candidate struct {
		model    forecast.Model
		instance *core.Instance
	}
	var candidates []candidate
	for _, fm := range []forecast.Model{
		&forecast.LinearAR{Lags: 24, Horizon: horizon},
		&forecast.LinearAR{Lags: 24, Horizon: horizon, UseEventFeature: true},
	} {
		if err := fm.Train(data[:trainN]); err != nil {
			log.Fatal(err)
		}
		blob, err := forecast.Encode(fm)
		if err != nil {
			log.Fatal(err)
		}
		in, err := reg.UploadInstance(core.InstanceSpec{
			ModelID: m.ID, Name: fm.Name(), City: city.Name, Framework: "gallery-forecast",
			TrainingData: "synthetic://" + city.Name,
		}, blob)
		if err != nil {
			log.Fatal(err)
		}
		candidates = append(candidates, candidate{model: fm, instance: in})
	}

	byID := make(map[uuid.UUID]forecast.Model, len(candidates))
	for _, c := range candidates {
		byID[c.instance.ID] = c.model
	}

	// forecastAt returns model m's prediction for hour i, made horizon
	// hours earlier (history is truncated accordingly).
	forecastAt := func(mdl forecast.Model, i int) float64 {
		cut := i - horizon + 1
		return mdl.Forecast(forecast.Context{
			History:       values[:cut],
			HistoryEvents: eventFlags[:cut],
			Time:          data[i].T,
			Event:         data[i].Event,
		})
	}

	// reportSplitMetrics measures each candidate over [from, to) split by
	// event/regular hours and stores the MAPEs in Gallery — the
	// production monitoring feed of §3.6.
	reportSplitMetrics := func(from, to int) {
		for _, c := range candidates {
			var pe, ae, pr, ar []float64
			for i := from; i < to; i++ {
				p := forecastAt(c.model, i)
				if data[i].Event {
					pe, ae = append(pe, p), append(ae, values[i])
				} else {
					pr, ar = append(pr, p), append(ar, values[i])
				}
			}
			if len(ae) > 0 {
				if met, err := forecast.Evaluate(pe, ae); err == nil {
					if _, err := reg.InsertMetric(c.instance.ID, "mape_event", core.ScopeProduction, met.MAPE); err != nil {
						log.Fatal(err)
					}
				}
			}
			if len(ar) > 0 {
				if met, err := forecast.Evaluate(pr, ar); err == nil {
					if _, err := reg.InsertMetric(c.instance.ID, "mape_regular", core.ScopeProduction, met.MAPE); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
	}
	// Warm-up: the last training week provides the initial split metrics.
	reportSplitMetrics(trainN-7*hoursPerDay, trainN)

	serve := func(pick func(i int) forecast.Model) float64 {
		var preds, actuals []float64
		for day := 0; day < testDays; day++ {
			from := trainN + day*hoursPerDay
			for i := from; i < from+hoursPerDay; i++ {
				preds = append(preds, forecastAt(pick(i), i))
				actuals = append(actuals, values[i])
			}
			// Nightly monitoring refresh.
			reportSplitMetrics(from, from+hoursPerDay)
		}
		met, err := forecast.Evaluate(preds, actuals)
		if err != nil {
			log.Fatal(err)
		}
		return met.MAPE
	}

	// Static baseline: one fixed model without event features (§4.2).
	staticModel := candidates[0].model
	staticMAPE = serve(func(int) forecast.Model { return staticModel })

	// Dynamic switching: the serving system queries Gallery's rule engine
	// for the appropriate champion for the duration of each event.
	champion := func(ruleID string) forecast.Model {
		in, err := engine.SelectModel(ruleID, core.InstanceFilter{City: city.Name})
		if err != nil {
			log.Fatal(err)
		}
		return byID[in.ID]
	}
	switchedMAPE = serve(func(i int) forecast.Model {
		if data[i].Event {
			return champion(eventRuleID)
		}
		return champion(regularRuleID)
	})
	return staticMAPE, switchedMAPE
}
