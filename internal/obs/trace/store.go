package trace

import (
	"sort"
	"sync"
	"time"
)

// pendingCap bounds the map of traces still being assembled. Orphans can
// accumulate there only when spans arrive for traces whose local root was
// dropped or never existed (late async work after an unkept trace); FIFO
// eviction keeps that leak bounded.
const pendingCap = 1024

// Trace is one completed request: the bag of spans sharing a trace ID.
// Spans from the remote process (ingested after the fact) and from late
// async work (rule evaluation finishing after the response) are appended
// to the same entry, so the tree fills in as stragglers arrive.
type Trace struct {
	spans []SpanData // guarded by the owning Store's mutex
}

// pendingTrace accumulates spans that ended before their local root did.
type pendingTrace struct {
	spans    []SpanData
	hadError bool
}

// Store holds completed traces in a bounded ring buffer (oldest evicted
// first) with a by-ID index, plus the pending set of in-flight traces.
// One Store serves both locally-finished traces and spans ingested from
// the peer process.
type Store struct {
	mu      sync.Mutex
	cap     int
	pending map[string]*pendingTrace
	order   []string // pending insertion order, for FIFO eviction
	ring    []*Trace // completed, oldest first
	byID    map[string]*Trace
	evicted uint64
	dropped uint64 // traces recorded but not kept (tail filter)
}

// NewStore builds a Store retaining at most capacity completed traces.
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = 256
	}
	return &Store{
		cap:     capacity,
		pending: make(map[string]*pendingTrace),
		byID:    make(map[string]*Trace),
	}
}

// add records a completed non-root span. If the trace already completed
// (late async span, or the peer's half arrived first) it joins that entry
// directly; otherwise it waits in pending for the local root.
func (s *Store) add(data SpanData) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.byID[data.TraceID]; ok {
		t.spans = append(t.spans, data)
		return
	}
	p, ok := s.pending[data.TraceID]
	if !ok {
		p = &pendingTrace{}
		s.pending[data.TraceID] = p
		s.order = append(s.order, data.TraceID)
		s.evictPendingLocked()
	}
	p.spans = append(p.spans, data)
	if data.Error != "" {
		p.hadError = true
	}
}

// evictPendingLocked drops the oldest pending traces over the cap. The
// order slice may hold IDs already promoted out of pending; those are
// skipped (and compacted away) for free.
func (s *Store) evictPendingLocked() {
	for len(s.pending) > pendingCap && len(s.order) > 0 {
		id := s.order[0]
		s.order = s.order[1:]
		delete(s.pending, id)
	}
	// Compact the order slice when lazy deletions dominate it.
	if len(s.order) > 4*pendingCap {
		live := s.order[:0]
		for _, id := range s.order {
			if _, ok := s.pending[id]; ok {
				live = append(live, id)
			}
		}
		s.order = live
	}
}

// pendingHadError reports whether any already-ended span of the trace
// recorded an error — the tail sampler's "did anything below fail" input,
// needed because a handler may swallow a child's error before the root
// span sees it.
func (s *Store) pendingHadError(traceID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pending[traceID]
	return ok && p.hadError
}

// complete closes out a trace: the local root span has ended. When keep is
// true the assembled trace enters the ring buffer and the full local span
// set is returned (for the exporter); when false everything recorded for
// the trace is discarded.
func (s *Store) complete(root SpanData, keep bool) []SpanData {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.pending[root.TraceID]
	delete(s.pending, root.TraceID)
	if !keep {
		s.dropped++
		return nil
	}
	var spans []SpanData
	if p != nil {
		spans = append(p.spans, root)
	} else {
		spans = []SpanData{root}
	}
	if t, ok := s.byID[root.TraceID]; ok {
		// The peer's half arrived first (or a prior local root for the
		// same trace ID); merge instead of double-storing.
		t.spans = append(t.spans, spans...)
	} else {
		s.insertLocked(&Trace{spans: spans})
	}
	out := make([]SpanData, len(spans))
	copy(out, spans)
	return out
}

// Ingest merges spans shipped from another process. Traces already
// completed locally gain the remote spans; unknown trace IDs become new
// completed entries (the remote kept a trace that never touched this
// process's handlers).
func (s *Store) Ingest(spans []SpanData) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sp := range spans {
		if sp.TraceID == "" || sp.SpanID == "" {
			continue
		}
		if t, ok := s.byID[sp.TraceID]; ok {
			t.spans = append(t.spans, sp)
			continue
		}
		s.insertLocked(&Trace{spans: []SpanData{sp}})
	}
}

// insertLocked appends a completed trace, evicting the oldest past cap.
func (s *Store) insertLocked(t *Trace) {
	if len(t.spans) == 0 {
		return
	}
	s.ring = append(s.ring, t)
	s.byID[t.spans[0].TraceID] = t
	for len(s.ring) > s.cap {
		old := s.ring[0]
		s.ring = s.ring[1:]
		delete(s.byID, old.spans[0].TraceID)
		s.evicted++
	}
}

// Stats reports buffer occupancy for the debug endpoint.
type Stats struct {
	Completed int    `json:"completed"`
	Pending   int    `json:"pending"`
	Capacity  int    `json:"capacity"`
	Evicted   uint64 `json:"evicted"`
	Dropped   uint64 `json:"dropped"`
}

// Stats snapshots buffer counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Completed: len(s.ring),
		Pending:   len(s.pending),
		Capacity:  s.cap,
		Evicted:   s.evicted,
		Dropped:   s.dropped,
	}
}

// Summary is one line of the trace list: enough to decide which trace to
// fetch in full.
type Summary struct {
	TraceID  string    `json:"trace_id"`
	Root     string    `json:"root"`
	Services []string  `json:"services,omitempty"`
	Start    time.Time `json:"start"`
	Duration float64   `json:"duration_ms"`
	Spans    int       `json:"spans"`
	Errors   int       `json:"errors"`
}

// Summaries lists completed traces, newest first, at most limit (≤0 means
// all).
func (s *Store) Summaries(limit int) []Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.ring)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]Summary, 0, limit)
	for i := n - 1; i >= 0 && len(out) < limit; i-- {
		out = append(out, summarize(s.ring[i].spans))
	}
	return out
}

func summarize(spans []SpanData) Summary {
	sum := Summary{Spans: len(spans)}
	ids := make(map[string]bool, len(spans))
	for _, sp := range spans {
		ids[sp.SpanID] = true
	}
	var (
		start     time.Time
		end       time.Time
		rootStart time.Time
		svcs      []string
	)
	seen := map[string]bool{}
	for _, sp := range spans {
		sum.TraceID = sp.TraceID
		if sp.Error != "" {
			sum.Errors++
		}
		if start.IsZero() || sp.Start.Before(start) {
			start = sp.Start
		}
		e := sp.Start.Add(time.Duration(sp.Duration * float64(time.Millisecond)))
		if e.After(end) {
			end = e
		}
		if sp.Service != "" && !seen[sp.Service] {
			seen[sp.Service] = true
			svcs = append(svcs, sp.Service)
		}
		// Root label: the earliest-started span whose parent isn't in the
		// set (the true root, or the oldest orphan if the root was lost).
		if sp.ParentID == "" || !ids[sp.ParentID] {
			if rootStart.IsZero() || sp.Start.Before(rootStart) {
				rootStart = sp.Start
				sum.Root = sp.Name
			}
		}
	}
	sort.Strings(svcs)
	sum.Services = svcs
	sum.Start = start
	sum.Duration = float64(end.Sub(start).Microseconds()) / 1000
	return sum
}

// Node is one span in the rendered tree. SelfMs is the span's duration
// minus its direct children's (clamped at zero): the time attributable to
// the span's own work rather than anything it called.
type Node struct {
	Span     SpanData `json:"span"`
	SelfMs   float64  `json:"self_ms"`
	Children []*Node  `json:"children,omitempty"`
}

// Detail is the full rendering of one trace: the span tree plus the
// flat summary line.
type Detail struct {
	Summary Summary `json:"summary"`
	Roots   []*Node `json:"roots"`
}

// Get renders one completed trace as a span tree, or ok=false if the ID
// isn't (or is no longer) in the buffer.
func (s *Store) Get(traceID string) (Detail, bool) {
	s.mu.Lock()
	t, ok := s.byID[traceID]
	var spans []SpanData
	if ok {
		spans = make([]SpanData, len(t.spans))
		copy(spans, t.spans)
	}
	s.mu.Unlock()
	if !ok {
		return Detail{}, false
	}
	return Detail{Summary: summarize(spans), Roots: BuildTree(spans)}, true
}

// BuildTree assembles spans into parent/child trees. Spans whose parent
// is absent from the set (the process root, or an orphan whose parent was
// dropped) become roots. Siblings sort by start time.
func BuildTree(spans []SpanData) []*Node {
	nodes := make(map[string]*Node, len(spans))
	for _, sp := range spans {
		nodes[sp.SpanID] = &Node{Span: sp}
	}
	var roots []*Node
	for _, n := range nodes {
		if p, ok := nodes[n.Span.ParentID]; ok && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var finish func(n *Node)
	finish = func(n *Node) {
		sort.Slice(n.Children, func(i, j int) bool {
			return n.Children[i].Span.Start.Before(n.Children[j].Span.Start)
		})
		childMs := 0.0
		for _, c := range n.Children {
			childMs += c.Span.Duration
			finish(c)
		}
		n.SelfMs = n.Span.Duration - childMs
		if n.SelfMs < 0 {
			n.SelfMs = 0
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		return roots[i].Span.Start.Before(roots[j].Span.Start)
	})
	for _, r := range roots {
		finish(r)
	}
	return roots
}
