package relstore

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// fill inserts n rows spread over cities and mape values.
func fill(t *testing.T, s *Store, n int) {
	t.Helper()
	cities := []string{"sf", "nyc", "la", "chicago", "london"}
	for i := 0; i < n; i++ {
		r := row(fmt.Sprintf("i%04d", i), fmt.Sprintf("base%d", i%3), cities[i%len(cities)],
			t0.Add(time.Duration(i)*time.Minute), float64(i%100)/100)
		r["epoch"] = Int(int64(i))
		if err := s.Insert("instances", r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSelectEqUsesIndex(t *testing.T) {
	s := newStore(t)
	fill(t, s, 500)
	rows, ex, err := s.SelectExplain(Query{
		Table: "instances",
		Where: []Constraint{{Field: "city", Op: OpEq, Value: String("sf")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Index != "city" {
		t.Fatalf("Explain.Index = %q, want city", ex.Index)
	}
	if len(rows) != 100 {
		t.Fatalf("got %d rows, want 100", len(rows))
	}
	if ex.Scanned != 100 {
		t.Fatalf("index scan examined %d rows, want exactly 100", ex.Scanned)
	}
	for _, r := range rows {
		if r["city"].Str != "sf" {
			t.Fatalf("wrong city in result: %#v", r["city"])
		}
	}
}

func TestSelectForceScan(t *testing.T) {
	s := newStore(t)
	fill(t, s, 500)
	rows, ex, err := s.SelectExplain(Query{
		Table:     "instances",
		Where:     []Constraint{{Field: "city", Op: OpEq, Value: String("sf")}},
		ForceScan: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Index != "" {
		t.Fatalf("ForceScan still used index %q", ex.Index)
	}
	if ex.Scanned != 500 {
		t.Fatalf("full scan examined %d rows, want 500", ex.Scanned)
	}
	if len(rows) != 100 {
		t.Fatalf("got %d rows, want 100", len(rows))
	}
}

func TestSelectUnindexedField(t *testing.T) {
	s := newStore(t)
	fill(t, s, 100)
	_, ex, err := s.SelectExplain(Query{
		Table: "instances",
		Where: []Constraint{{Field: "epoch", Op: OpEq, Value: Int(5)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Index != "" {
		t.Fatalf("query on unindexed column used index %q", ex.Index)
	}
}

func TestSelectRangeOps(t *testing.T) {
	s := newStore(t)
	fill(t, s, 200)
	for _, tc := range []struct {
		op   Op
		val  float64
		want func(m float64) bool
	}{
		{OpLt, 0.10, func(m float64) bool { return m < 0.10 }},
		{OpLe, 0.10, func(m float64) bool { return m <= 0.10 }},
		{OpGt, 0.90, func(m float64) bool { return m > 0.90 }},
		{OpGe, 0.90, func(m float64) bool { return m >= 0.90 }},
	} {
		rows, ex, err := s.SelectExplain(Query{
			Table: "instances",
			Where: []Constraint{{Field: "mape", Op: tc.op, Value: Float(tc.val)}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if ex.Index != "mape" {
			t.Fatalf("%v: index = %q", tc.op, ex.Index)
		}
		if len(rows) == 0 {
			t.Fatalf("%v: empty result", tc.op)
		}
		for _, r := range rows {
			if !tc.want(r["mape"].Float) {
				t.Fatalf("%v %v returned mape=%v", tc.op, tc.val, r["mape"].Float)
			}
		}
	}
}

func TestSelectPrefixAndContains(t *testing.T) {
	s := newStore(t)
	fill(t, s, 100)
	rows, ex, err := s.SelectExplain(Query{
		Table: "instances",
		Where: []Constraint{{Field: "city", Op: OpPrefix, Value: String("l")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Index != "city" {
		t.Fatalf("prefix query index = %q", ex.Index)
	}
	for _, r := range rows {
		c := r["city"].Str
		if c != "la" && c != "london" {
			t.Fatalf("prefix l returned %q", c)
		}
	}
	if len(rows) != 40 {
		t.Fatalf("prefix l matched %d rows, want 40", len(rows))
	}

	rows, err = s.Select(Query{
		Table: "instances",
		Where: []Constraint{{Field: "city", Op: OpContains, Value: String("ondo")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("contains ondo matched %d rows, want 20 (london)", len(rows))
	}
}

func TestSelectIn(t *testing.T) {
	s := newStore(t)
	fill(t, s, 100)
	rows, err := s.Select(Query{
		Table: "instances",
		Where: []Constraint{{Field: "city", Op: OpIn, Values: []Value{String("sf"), String("la")}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 40 {
		t.Fatalf("in(sf,la) matched %d rows, want 40", len(rows))
	}
}

func TestSelectNe(t *testing.T) {
	s := newStore(t)
	fill(t, s, 100)
	rows, err := s.Select(Query{
		Table: "instances",
		Where: []Constraint{{Field: "city", Op: OpNe, Value: String("sf")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 80 {
		t.Fatalf("ne sf matched %d rows, want 80", len(rows))
	}
}

func TestSelectConjunction(t *testing.T) {
	s := newStore(t)
	fill(t, s, 500)
	rows, ex, err := s.SelectExplain(Query{
		Table: "instances",
		Where: []Constraint{
			{Field: "city", Op: OpEq, Value: String("sf")},
			{Field: "mape", Op: OpLt, Value: Float(0.25)},
			{Field: "base_version_id", Op: OpEq, Value: String("base0")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Equality constraints rank best; either city or base_version_id may drive.
	if ex.Index != "city" && ex.Index != "base_version_id" {
		t.Fatalf("conjunction index = %q", ex.Index)
	}
	for _, r := range rows {
		if r["city"].Str != "sf" || r["mape"].Float >= 0.25 || r["base_version_id"].Str != "base0" {
			t.Fatalf("conjunction returned non-matching row %v", r)
		}
	}
}

func TestSelectOrderByLimitOffset(t *testing.T) {
	s := newStore(t)
	fill(t, s, 50)
	rows, err := s.Select(Query{
		Table:   "instances",
		OrderBy: "created",
		Desc:    true,
		Limit:   5,
		Offset:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Newest is i0049; offset 2 skips i0049, i0048.
	if rows[0]["id"].Str != "i0047" {
		t.Fatalf("rows[0] = %s, want i0047", rows[0]["id"].Str)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i]["created"].Time.After(rows[i-1]["created"].Time) {
			t.Fatal("descending order violated")
		}
	}
}

func TestSelectOffsetPastEnd(t *testing.T) {
	s := newStore(t)
	fill(t, s, 10)
	rows, err := s.Select(Query{Table: "instances", Offset: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("offset past end returned %d rows", len(rows))
	}
}

func TestSelectLimitEarlyTermination(t *testing.T) {
	s := newStore(t)
	fill(t, s, 1000)
	_, ex, err := s.SelectExplain(Query{
		Table: "instances",
		Where: []Constraint{{Field: "city", Op: OpEq, Value: String("sf")}},
		Limit: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Scanned > 10 {
		t.Fatalf("limit 3 with index scanned %d rows; early termination broken", ex.Scanned)
	}
}

func TestSelectNoOrderIsPKOrder(t *testing.T) {
	s := newStore(t)
	fill(t, s, 20)
	rows, err := s.Select(Query{Table: "instances"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1]["id"].Str >= rows[i]["id"].Str {
			t.Fatal("full scan not in primary-key order")
		}
	}
}

func TestValueCompareNumericCoercion(t *testing.T) {
	if Compare(Int(3), Float(3.0)) != 0 {
		t.Fatal("Int(3) != Float(3.0)")
	}
	if Compare(Int(2), Float(2.5)) >= 0 {
		t.Fatal("Int(2) >= Float(2.5)")
	}
	if Compare(Float(10), Int(9)) <= 0 {
		t.Fatal("Float(10) <= Int(9)")
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	// Property: Compare is antisymmetric and transitive over a sample domain.
	vals := []Value{
		{}, String(""), String("a"), String("b"), Int(-1), Int(0), Int(5),
		Float(-0.5), Float(0), Float(5), Bool(false), Bool(true),
		Time(t0), Time(t0.Add(time.Hour)),
	}
	for _, a := range vals {
		for _, b := range vals {
			if got, want := Compare(a, b), -Compare(b, a); got != -want && !(got == 0 && want == 0) {
				// antisymmetry: Compare(a,b) and Compare(b,a) must have opposite signs
				if (got > 0) == (Compare(b, a) > 0) && got != 0 {
					t.Fatalf("antisymmetry violated: %#v vs %#v", a, b)
				}
			}
			for _, c := range vals {
				if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
					t.Fatalf("transitivity violated: %#v <= %#v <= %#v but a > c", a, b, c)
				}
			}
		}
	}
}

func TestParseOpRoundTrip(t *testing.T) {
	for _, op := range []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpPrefix, OpContains, OpIn} {
		back, err := ParseOp(op.String())
		if err != nil {
			t.Fatalf("ParseOp(%s): %v", op, err)
		}
		if back != op {
			t.Fatalf("round trip %v -> %v", op, back)
		}
	}
	if _, err := ParseOp("bogus"); err == nil {
		t.Fatal("ParseOp accepted bogus operator")
	}
}

// Property: for random datasets and random range constraints, an index scan
// and a forced full scan return exactly the same result set.
func TestQuickIndexScanEquivalence(t *testing.T) {
	type spec struct {
		N      uint8
		OpSel  uint8
		Thresh uint8
	}
	f := func(sp spec) bool {
		s := NewMemory()
		if err := s.CreateTable(modelsSchema()); err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(int64(sp.N)*7919 + int64(sp.Thresh)))
		n := int(sp.N)%200 + 1
		for i := 0; i < n; i++ {
			r := row(fmt.Sprintf("r%03d", i), "b", fmt.Sprintf("c%d", rng.Intn(5)),
				t0.Add(time.Duration(i)*time.Second), float64(rng.Intn(1000))/1000)
			if err := s.Insert("instances", r); err != nil {
				return false
			}
		}
		ops := []Op{OpEq, OpLt, OpLe, OpGt, OpGe}
		c := Constraint{Field: "mape", Op: ops[int(sp.OpSel)%len(ops)], Value: Float(float64(sp.Thresh) / 255)}
		q := Query{Table: "instances", Where: []Constraint{c}, OrderBy: "id"}
		idxRows, idxEx, err := s.SelectExplain(q)
		if err != nil {
			return false
		}
		q.ForceScan = true
		scanRows, _, err := s.SelectExplain(q)
		if err != nil {
			return false
		}
		if idxEx.Index != "mape" {
			return false
		}
		if len(idxRows) != len(scanRows) {
			return false
		}
		for i := range idxRows {
			if idxRows[i]["id"].Str != scanRows[i]["id"].Str {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
