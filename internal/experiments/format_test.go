package experiments

import (
	"strings"
	"testing"
)

// TestFormatters exercises every experiment's paper-style rendering; the
// harness depends on these being panic-free and carrying the headline
// numbers.
func TestFormatters(t *testing.T) {
	lineage, err := LineageFigure4()
	if err != nil {
		t.Fatal(err)
	}
	if out := lineage.Format(); !strings.Contains(out, "supply_cancellation") {
		t.Errorf("lineage format:\n%s", out)
	}

	steps, err := DependencyFigures()
	if err != nil {
		t.Fatal(err)
	}
	if out := FormatDepSteps(steps); !strings.Contains(out, "Figure 7") || !strings.Contains(out, "4.2") {
		t.Errorf("dep format:\n%s", out)
	}

	fig8, err := RuleEngineFigure8()
	if err != nil {
		t.Fatal(err)
	}
	if out := fig8.Format(); !strings.Contains(out, "Client 1") {
		t.Errorf("fig8 format:\n%s", out)
	}

	lc, err := Lifecycle()
	if err != nil {
		t.Fatal(err)
	}
	if out := lc.Format(); !strings.Contains(out, "drift loop (E11)") {
		t.Errorf("lifecycle format:\n%s", out)
	}

	rs, err := Scale([]int{500})
	if err != nil {
		t.Fatal(err)
	}
	if out := FormatScale(rs); !strings.Contains(out, "500") {
		t.Errorf("scale format:\n%s", out)
	}

	dep, err := DeploymentCost(10)
	if err != nil {
		t.Fatal(err)
	}
	if out := dep.Format(); !strings.Contains(out, "rule engine") {
		t.Errorf("deployment format:\n%s", out)
	}

	sk, err := SkewDetection()
	if err != nil {
		t.Fatal(err)
	}
	if out := sk.Format(); !strings.Contains(out, "skew detected") {
		t.Errorf("skew format:\n%s", out)
	}

	cons, err := WriteOrdering(200, 7, 11)
	if err != nil {
		t.Fatal(err)
	}
	if out := cons.Format(); !strings.Contains(out, "blob-first") {
		t.Errorf("consistency format:\n%s", out)
	}

	tiers, err := TieredOnboarding()
	if err != nil {
		t.Fatal(err)
	}
	if out := FormatTiers(tiers); !strings.Contains(out, "tier 4") {
		t.Errorf("tiers format:\n%s", out)
	}
}
