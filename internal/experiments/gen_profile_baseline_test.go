package experiments

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"gallery/internal/api"
	"gallery/internal/blobstore"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/forecast"
	"gallery/internal/obs"
	"gallery/internal/obs/profile"
	"gallery/internal/relstore"
	"gallery/internal/serve"
	"gallery/internal/uuid"
)

// TestGenerateProfileBaseline regenerates the repo's example
// PROFILE_galleryserve.json from real predict traffic. Run with
// GEN_PROFILE_BASELINE=dir to write; skipped otherwise.
func TestGenerateProfileBaseline(t *testing.T) {
	dir := os.Getenv("GEN_PROFILE_BASELINE")
	if dir == "" {
		t.Skip("set GEN_PROFILE_BASELINE=<dir> to regenerate the example baseline")
	}
	clk := clock.NewMock(epoch)
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk, UUIDs: uuid.NewSeeded(99),
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := reg.RegisterModel(core.ModelSpec{BaseVersionID: "baseline_gen", Project: "profilereg"})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := forecast.Encode(&forecast.Heuristic{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	in, err := reg.UploadInstance(core.InstanceSpec{ModelID: m.ID, Name: "forecaster", City: "sf"}, blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.PromoteInstance(in.ID); err != nil {
		t.Fatal(err)
	}
	gw := serve.New(regSource{reg}, serve.Options{RefreshInterval: -1, Obs: obs.NewRegistry()})
	defer gw.Close()
	h := serve.NewHandler(gw)
	payload, err := json.Marshal(api.PredictRequest{History: []float64{10, 12, 11, 13, 12, 14, 13, 15}})
	if err != nil {
		t.Fatal(err)
	}
	stop := profileregBurn(func() float64 {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict/"+m.ID.String(), strings.NewReader(string(payload)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return float64(rec.Code)
	})
	p := profile.New(profile.Config{
		Process: "galleryserve", Window: 2 * time.Second, Interval: time.Hour,
		Obs: obs.NewRegistry(), Kinds: []string{},
	})
	for i := 0; i < 3; i++ {
		p.CaptureCycle()
	}
	stop()
	merged := profile.Merge(p.Ring().Recent(profile.KindCPU, 0), profile.DefaultTopN)
	if merged.Samples == 0 {
		t.Fatal("no CPU samples collected")
	}
	if err := profile.WriteBaseline(dir, profile.BaselineOf("galleryserve", merged)); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s with %d functions", profile.BaselineFileName("galleryserve"), len(merged.Top))
}
