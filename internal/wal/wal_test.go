package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openCollecting(t *testing.T, path string) (*Log, [][]byte) {
	t.Helper()
	var got [][]byte
	l, err := Open(path, Options{}, func(p []byte) error {
		cp := make([]byte, len(p))
		copy(cp, p)
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l, got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := openCollecting(t, path)
	records := [][]byte{[]byte("one"), []byte(""), []byte("three-3"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, r := range records {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, got := openCollecting(t, path)
	defer l2.Close()
	if len(got) != len(records) {
		t.Fatalf("replayed %d records, want %d", len(got), len(records))
	}
	for i := range records {
		if !bytes.Equal(got[i], records[i]) {
			t.Errorf("record %d mismatch: %q vs %q", i, got[i], records[i])
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := openCollecting(t, path)
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-write: chop 3 bytes off the file.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, got := openCollecting(t, path)
	if len(got) != 9 {
		t.Fatalf("replayed %d records after torn tail, want 9", len(got))
	}
	// Appends after recovery must land on a clean boundary.
	if err := l2.Append([]byte("post-crash")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, got3 := openCollecting(t, path)
	if len(got3) != 10 || string(got3[9]) != "post-crash" {
		t.Fatalf("after recovery+append got %d records, last %q", len(got3), got3[len(got3)-1])
	}
}

func TestCorruptPayloadStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := openCollecting(t, path)
	if err := l.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("will-be-corrupted")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the second payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, got := openCollecting(t, path)
	defer l2.Close()
	if len(got) != 1 || string(got[0]) != "good" {
		t.Fatalf("replay after corruption returned %d records", len(got))
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := openCollecting(t, path)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

func TestSizeTracksBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := openCollecting(t, path)
	defer l.Close()
	if l.Size() != 0 {
		t.Fatalf("fresh log Size = %d", l.Size())
	}
	if err := l.Append(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if got := l.Size(); got != 108 {
		t.Fatalf("Size after one 100-byte record = %d, want 108", got)
	}
}

// Property: any sequence of payloads survives a close/reopen cycle intact and
// in order.
func TestQuickReplayIdentity(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(payloads [][]byte) bool {
		i++
		path := filepath.Join(dir, fmt.Sprintf("wal-%d", i))
		l, err := Open(path, Options{}, nil)
		if err != nil {
			return false
		}
		for _, p := range payloads {
			if err := l.Append(p); err != nil {
				return false
			}
		}
		if err := l.Close(); err != nil {
			return false
		}
		var got [][]byte
		l2, err := Open(path, Options{}, func(p []byte) error {
			cp := make([]byte, len(p))
			copy(cp, p)
			got = append(got, cp)
			return nil
		})
		if err != nil {
			return false
		}
		defer l2.Close()
		if len(got) != len(payloads) {
			return false
		}
		for j := range got {
			if !bytes.Equal(got[j], payloads[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
