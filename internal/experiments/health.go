package experiments

import (
	"fmt"
	"strings"
	"time"

	"gallery/internal/core"
	"gallery/internal/forecast"
)

// Experiment E12 — paper §3.6 Production Skew: "the difference between
// performance at training time and serving time", caused by serving bugs
// or train/serve data discrepancies. The experiment trains a model,
// records its honest validation MAPE, then serves it through a buggy
// serving path that scales its inputs (a classic feature-pipeline
// mismatch) and records production MAPE. Gallery's skew check must fire on
// the buggy deployment and stay quiet on the healthy one.

// SkewResult holds both arms.
type SkewResult struct {
	Healthy *core.SkewReport
	Buggy   *core.SkewReport
	// ValidationMAPE / HealthyMAPE / BuggyMAPE are the raw numbers.
	ValidationMAPE float64
	HealthyMAPE    float64
	BuggyMAPE      float64
}

// SkewDetection runs the experiment.
func SkewDetection() (*SkewResult, error) {
	env := mustEnv(12)
	city := forecast.CityConfig{
		Name: "skew_city", Base: 500, DailyAmp: 150, WeeklyAmp: 50, NoiseStd: 20, Seed: 12,
	}
	data := forecast.Generate(city, epoch, time.Hour, 60*24)
	trainN := 45 * 24
	values := data.Values()

	m, err := env.Reg.RegisterModel(core.ModelSpec{
		BaseVersionID: "skew_demand", Project: "marketplace", Name: "forecaster",
	})
	if err != nil {
		return nil, err
	}
	fm := &forecast.LinearAR{Lags: 24}
	if err := fm.Train(data[:trainN]); err != nil {
		return nil, err
	}
	blob, err := forecast.Encode(fm)
	if err != nil {
		return nil, err
	}

	res := &SkewResult{}
	serveMAPE := func(timeBug time.Duration) (float64, error) {
		var preds, actuals []float64
		for i := trainN; i < len(data); i++ {
			// The buggy serving path feeds the model a wrong wall-clock
			// time — the classic timezone mismatch between the training
			// pipeline and the serving service.
			preds = append(preds, fm.Forecast(forecast.Context{
				History: values[:i],
				Time:    data[i].T.Add(timeBug),
			}))
			actuals = append(actuals, values[i])
		}
		met, err := forecast.Evaluate(preds, actuals)
		if err != nil {
			return 0, err
		}
		return met.MAPE, nil
	}

	valMAPE, err := forecast.RollingMAPE(fm, data, trainN-7*24, trainN)
	if err != nil {
		return nil, err
	}
	res.ValidationMAPE = valMAPE

	for _, arm := range []struct {
		bug  time.Duration
		out  **core.SkewReport
		mape *float64
	}{
		{0, &res.Healthy, &res.HealthyMAPE},
		{6 * time.Hour, &res.Buggy, &res.BuggyMAPE}, // timezone-offset serving bug
	} {
		env.Clock.Advance(time.Minute)
		in, err := env.Reg.UploadInstance(core.InstanceSpec{
			ModelID: m.ID, Name: fmt.Sprintf("deploy-bug-%v", arm.bug), City: city.Name,
		}, blob)
		if err != nil {
			return nil, err
		}
		if _, err := env.Reg.InsertMetric(in.ID, "mape", core.ScopeValidation, valMAPE); err != nil {
			return nil, err
		}
		prodMAPE, err := serveMAPE(arm.bug)
		if err != nil {
			return nil, err
		}
		*arm.mape = prodMAPE
		env.Clock.Advance(time.Minute)
		if _, err := env.Reg.InsertMetric(in.ID, "mape", core.ScopeProduction, prodMAPE); err != nil {
			return nil, err
		}
		rep, err := env.Reg.CheckSkew(in.ID, core.SkewConfig{Metric: "mape", Threshold: 0.5})
		if err != nil {
			return nil, err
		}
		*arm.out = rep
	}
	return res, nil
}

// Format renders both arms.
func (r *SkewResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "validation MAPE: %.2f%%\n", r.ValidationMAPE)
	fmt.Fprintf(&b, "%-22s %-18s %-10s %s\n", "deployment", "production MAPE", "gap", "skew detected")
	fmt.Fprintf(&b, "%-22s %-18.2f %-10.2f %v\n", "healthy serving path", r.HealthyMAPE, r.Healthy.Gap, r.Healthy.Skewed)
	fmt.Fprintf(&b, "%-22s %-18.2f %-10.2f %v\n", "buggy (tz offset 6h)", r.BuggyMAPE, r.Buggy.Gap, r.Buggy.Skewed)
	return b.String()
}

// Experiment E15 — paper §6.3 Tiered Service Offering: the four feature
// groups are usable independently, so a team can onboard with just blob
// storage and add tiers as it matures.

// TierReport is the outcome of exercising one tier in isolation (plus the
// tiers below it, which it builds on).
type TierReport struct {
	Tier int
	Name string
	OK   bool
	Err  string
}

// TieredOnboarding exercises each tier as a fresh team would.
func TieredOnboarding() ([]TierReport, error) {
	reports := make([]TierReport, 0, 4)
	add := func(tier int, name string, err error) {
		r := TierReport{Tier: tier, Name: name, OK: err == nil}
		if err != nil {
			r.Err = err.Error()
		}
		reports = append(reports, r)
	}

	// Tier 1: model storage and retrieval only.
	add(1, "model storage and retrieval", func() error {
		env := mustEnv(151)
		m, err := env.Reg.RegisterModel(core.ModelSpec{BaseVersionID: "t1"})
		if err != nil {
			return err
		}
		in, err := env.Reg.UploadInstance(core.InstanceSpec{ModelID: m.ID}, []byte("blob"))
		if err != nil {
			return err
		}
		got, err := env.Reg.FetchBlob(in.ID)
		if err != nil {
			return err
		}
		if string(got) != "blob" {
			return fmt.Errorf("blob mismatch")
		}
		return nil
	}())

	// Tier 2: metadata storage and search.
	add(2, "metadata storage and search", func() error {
		env := mustEnv(152)
		m, err := env.Reg.RegisterModel(core.ModelSpec{BaseVersionID: "t2", Project: "p"})
		if err != nil {
			return err
		}
		if _, err := env.Reg.UploadInstance(core.InstanceSpec{ModelID: m.ID, City: "sf"}, []byte("b")); err != nil {
			return err
		}
		found, err := env.Reg.SearchInstances(core.InstanceFilter{City: "sf"})
		if err != nil {
			return err
		}
		if len(found) != 1 {
			return fmt.Errorf("search found %d", len(found))
		}
		return nil
	}())

	// Tier 3: metric storage and search.
	add(3, "metric storage and search", func() error {
		env := mustEnv(153)
		m, err := env.Reg.RegisterModel(core.ModelSpec{BaseVersionID: "t3"})
		if err != nil {
			return err
		}
		in, err := env.Reg.UploadInstance(core.InstanceSpec{ModelID: m.ID}, []byte("b"))
		if err != nil {
			return err
		}
		if _, err := env.Reg.InsertMetric(in.ID, "auc", core.ScopeValidation, 0.91); err != nil {
			return err
		}
		vals, err := env.Reg.LatestMetrics(in.ID, core.ScopeValidation)
		if err != nil {
			return err
		}
		if vals["auc"] != 0.91 {
			return fmt.Errorf("metric round trip failed")
		}
		return nil
	}())

	// Tier 4: rule engine automation.
	add(4, "rule engine automation", func() error {
		res, err := RuleEngineFigure8()
		if err != nil {
			return err
		}
		if len(res.Deployments) != 1 {
			return fmt.Errorf("automation did not deploy")
		}
		return nil
	}())

	return reports, nil
}

// FormatTiers renders the onboarding matrix.
func FormatTiers(rs []TierReport) string {
	var b strings.Builder
	for _, r := range rs {
		status := "ok"
		if !r.OK {
			status = "FAILED: " + r.Err
		}
		fmt.Fprintf(&b, "tier %d (%s): %s\n", r.Tier, r.Name, status)
	}
	b.WriteString("each tier usable with only the tiers below it (paper §6.3)\n")
	return b.String()
}
