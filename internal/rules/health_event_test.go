package rules

import (
	"context"
	"testing"

	"gallery/internal/uuid"
)

// healthRule fires on drift events with strong PSI evidence.
func healthRule() *Rule {
	return &Rule{
		UUID:        "9f1f6f60-0000-4000-8000-000000000001",
		Team:        "forecasting",
		Name:        "retrain-on-drift",
		Kind:        KindAction,
		When:        `health.event == "drift" && health.psi > 0.25`,
		Environment: "production",
		Actions:     []ActionRef{{Action: "retrain"}},
	}
}

func TestHealthEventFiresWatchingRule(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "demand", "UberX")
	in := h.upload(t, m, "sf")
	h.commit(t, healthRule())

	var fired []*ActionContext
	h.eng.RegisterAction("retrain", func(ac *ActionContext) error {
		fired = append(fired, ac)
		return nil
	})

	// Weak evidence: the rule's condition does not hold.
	h.eng.HealthEvent(context.Background(), in.ID, "drift", map[string]float64{"psi": 0.05})
	if len(fired) != 0 {
		t.Fatalf("rule fired on psi=0.05: %+v", fired)
	}
	// A skew event must not satisfy a drift condition.
	h.eng.HealthEvent(context.Background(), in.ID, "skew", map[string]float64{"psi": 0.9})
	if len(fired) != 0 {
		t.Fatal("rule fired on skew event")
	}
	// Strong drift evidence fires the retrain callback.
	h.eng.HealthEvent(context.Background(), in.ID, "drift", map[string]float64{"psi": 0.61, "kl": 1.2})
	if len(fired) != 1 {
		t.Fatalf("fired %d times, want 1", len(fired))
	}
	if fired[0].Instance == nil || fired[0].Instance.ID != in.ID {
		t.Fatalf("action context instance = %+v", fired[0].Instance)
	}
}

func TestHealthEventIgnoresNonWatchingRules(t *testing.T) {
	h := newHarness(t)
	m := h.model(t, "demand", "UberX")
	in := h.upload(t, m, "sf")
	// A metrics-watching rule must not be dispatched by health events,
	// even if its condition would hold.
	r := &Rule{
		UUID: "9f1f6f60-0000-4000-8000-000000000002",
		Team: "forecasting", Name: "metric-rule", Kind: KindAction,
		When:    `metrics.mape >= 0`,
		Actions: []ActionRef{{Action: "alert"}},
	}
	h.commit(t, r)
	before := h.eng.Stats().Evaluations
	h.eng.HealthEvent(context.Background(), in.ID, "drift", map[string]float64{"psi": 1})
	if got := h.eng.Stats().Evaluations; got != before {
		t.Fatalf("health event evaluated a metrics-only rule (%d -> %d)", before, got)
	}
}

func TestHealthEventUnknownInstanceAlerts(t *testing.T) {
	h := newHarness(t)
	h.commit(t, healthRule())
	h.eng.HealthEvent(context.Background(), uuid.NewSeeded(99).New(), "drift", map[string]float64{"psi": 1})
	alerts := h.eng.Alerts()
	if len(alerts) != 1 || alerts[0].Action != "engine" {
		t.Fatalf("alerts = %+v, want one engine alert", alerts)
	}
}
