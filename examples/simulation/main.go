// Simulation reproduces the Marketplace Simulation Platform case study
// (paper §4.3): the same agent-based marketplace simulation run twice,
// once training its forecasting models inside the run (the pre-Gallery
// state) and once fetching pre-trained instances from Gallery (the
// post-Gallery state). The resource ledger shows the savings the paper
// reports — on the order of gigabytes of memory and an hour of CPU time
// per simulation.
//
// Run with: go run ./examples/simulation
package main

import (
	"fmt"
	"log"
	"time"

	"gallery/internal/blobstore"
	"gallery/internal/core"
	"gallery/internal/forecast"
	"gallery/internal/relstore"
	"gallery/internal/sim"
	"gallery/internal/uuid"
)

const (
	modelVariants  = 20
	trainingPoints = 24 * 625 // ~15k observations per variant
)

func main() {
	// Offline processes store reusable model instances into Gallery
	// (paper: "Offline processes can store reusable model instances into
	// Gallery, and the simulation backend service can instantiate such
	// models as they're needed").
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ids := publishModels(reg)

	base := sim.Config{
		ModelVariants:  modelVariants,
		TrainingPoints: trainingPoints,
		Drivers:        60,
		DurationHours:  8,
		BaseDemand:     400,
		Seed:           2019,
	}

	inSim := base
	inSim.Mode = sim.ModeInSimTraining
	repIn, err := sim.Run(inSim)
	if err != nil {
		log.Fatal(err)
	}

	served := base
	served.Mode = sim.ModeGalleryServed
	served.Registry = reg
	served.ModelInstanceIDs = ids
	repServed, err := sim.Run(served)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("mode                 trips  abandoned  mean-wait  util   train-CPU     model-memory")
	for _, r := range []sim.Report{repIn, repServed} {
		name := "in-sim training"
		if r.Mode == sim.ModeGalleryServed {
			name = "gallery-served"
		}
		fmt.Printf("%-20s %5d  %9d  %7.1fs  %4.2f  %9.1fs  %13s\n",
			name, r.CompletedTrips, r.AbandonedRiders, r.MeanWaitSec,
			r.DriverUtilization, r.Resources.TrainCPUSeconds,
			fmtBytes(r.Resources.ModelMemoryBytes))
	}

	cpuSaved := repIn.Resources.TrainCPUSeconds - repServed.Resources.TrainCPUSeconds
	memSaved := repIn.Resources.ModelMemoryBytes - repServed.Resources.ModelMemoryBytes
	fmt.Printf("\nper-simulation savings with Gallery: %s memory, %.0f CPU-seconds (%.2f CPU-hours)\n",
		fmtBytes(memSaved), cpuSaved, cpuSaved/3600)
	fmt.Println("paper reports: ~8GB memory and one hour CPU time per simulation (§4.3)")
}

// publishModels trains every variant offline and uploads it to Gallery.
func publishModels(reg *core.Registry) []uuid.UUID {
	m, err := reg.RegisterModel(core.ModelSpec{
		BaseVersionID: "sim_demand",
		Project:       "marketplace-simulation",
		Name:          "demand_forecaster",
		Owner:         "simulation-team",
	})
	if err != nil {
		log.Fatal(err)
	}
	series := forecast.Generate(forecast.CityConfig{
		Name: "simworld", Base: 400, DailyAmp: 120, NoiseStd: 20, Seed: 99,
	}, time.Unix(0, 0).UTC(), time.Hour, trainingPoints)

	variants := []func(i int) forecast.Model{
		func(i int) forecast.Model { return &forecast.Heuristic{K: 3 + i} },
		func(i int) forecast.Model { return &forecast.EWMA{Alpha: 0.1 + 0.05*float64(i)} },
		func(i int) forecast.Model { return &forecast.SeasonalNaive{Period: 24} },
		func(i int) forecast.Model { return &forecast.LinearAR{Lags: 6 + i} },
	}
	ids := make([]uuid.UUID, 0, modelVariants)
	for i := 0; i < modelVariants; i++ {
		fm := variants[i%len(variants)](i / len(variants))
		if err := fm.Train(series); err != nil {
			log.Fatal(err)
		}
		blob, err := forecast.Encode(fm)
		if err != nil {
			log.Fatal(err)
		}
		in, err := reg.UploadInstance(core.InstanceSpec{
			ModelID: m.ID, Name: fm.Name(), Framework: "gallery-forecast",
			TrainingData: "synthetic://simworld",
		}, blob)
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, in.ID)
	}
	return ids
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
