package forecast

import (
	"math"
	"math/rand"
	"time"
)

// Point is one observation of a demand series.
type Point struct {
	T     time.Time
	V     float64
	Event bool // inside a holiday/event window
}

// Series is a time-ordered sequence of observations.
type Series []Point

// Values extracts the raw values.
func (s Series) Values() []float64 {
	out := make([]float64, len(s))
	for i, p := range s {
		out[i] = p.V
	}
	return out
}

// Event is a demand-disturbing window: a holiday, a concert, a transit
// outage (paper §4.2 motivates both planned and unplanned events).
type Event struct {
	Start time.Time
	End   time.Time
	// Multiplier scales demand during the event (1.8 = +80%).
	Multiplier float64
}

func (e Event) contains(t time.Time) bool {
	return !t.Before(e.Start) && t.Before(e.End)
}

// CityConfig parameterizes one city's synthetic demand. Different cities
// pose different geospatial and growth characteristics (paper §1), which
// is exactly why Gallery shards models per city.
type CityConfig struct {
	Name string
	// Base is the demand level at the start of the series.
	Base float64
	// GrowthPerWeek adds linear growth, modeling Uber's market expansion.
	GrowthPerWeek float64
	// DailyAmp and WeeklyAmp scale sinusoidal seasonality.
	DailyAmp  float64
	WeeklyAmp float64
	// NoiseStd is the standard deviation of Gaussian observation noise.
	NoiseStd float64
	// RushAmp adds sharp box-shaped commute peaks (hours 7-9 and 17-19 on
	// weekdays) — threshold-shaped structure that smooth harmonics cannot
	// represent but tree models can.
	RushAmp float64
	// Events lists demand disturbances.
	Events []Event
	// ShiftAt/ShiftFactor inject a permanent regime change (for drift
	// experiments): from ShiftAt onward, base demand is multiplied.
	ShiftAt     time.Time
	ShiftFactor float64
	Seed        int64
}

// Generate produces n observations at the given step, starting at start.
// The process is deterministic in the config (seeded noise).
func Generate(cfg CityConfig, start time.Time, step time.Duration, n int) Series {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make(Series, n)
	for i := 0; i < n; i++ {
		t := start.Add(time.Duration(i) * step)
		hours := t.Sub(start).Hours()
		base := cfg.Base + cfg.GrowthPerWeek*hours/(24*7)
		if cfg.ShiftFactor != 0 && !cfg.ShiftAt.IsZero() && !t.Before(cfg.ShiftAt) {
			base *= cfg.ShiftFactor
		}
		daily := cfg.DailyAmp * math.Sin(2*math.Pi*float64(t.Hour())/24)
		weekly := cfg.WeeklyAmp * math.Sin(2*math.Pi*float64(t.Weekday())/7)
		rush := 0.0
		if cfg.RushAmp != 0 && t.Weekday() != time.Saturday && t.Weekday() != time.Sunday {
			if h := t.Hour(); (h >= 7 && h <= 9) || (h >= 17 && h <= 19) {
				rush = cfg.RushAmp
			}
		}
		v := base + daily + weekly + rush + rng.NormFloat64()*cfg.NoiseStd
		event := false
		for _, e := range cfg.Events {
			if e.contains(t) {
				v *= e.Multiplier
				event = true
			}
		}
		if v < 0 {
			v = 0
		}
		out[i] = Point{T: t, V: v, Event: event}
	}
	return out
}

// DefaultCities returns a fleet of heterogeneous city configurations used
// by the examples and experiments.
func DefaultCities(n int, seed int64) []CityConfig {
	names := []string{"san_francisco", "new_york", "london", "sao_paulo", "delhi",
		"paris", "sydney", "tokyo", "lagos", "toronto"}
	out := make([]CityConfig, n)
	rng := rand.New(rand.NewSource(seed))
	for i := range out {
		name := names[i%len(names)]
		if i >= len(names) {
			name = names[i%len(names)] + "_b"
		}
		base := 100 + rng.Float64()*900
		out[i] = CityConfig{
			Name:          name,
			Base:          base,
			GrowthPerWeek: base * (0.005 + rng.Float64()*0.02),
			DailyAmp:      base * (0.2 + rng.Float64()*0.3),
			WeeklyAmp:     base * (0.05 + rng.Float64()*0.15),
			NoiseStd:      base * (0.02 + rng.Float64()*0.05),
			Seed:          seed + int64(i)*7919,
		}
	}
	return out
}
