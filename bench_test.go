// Top-level benchmarks: one per experiment in DESIGN.md's index (E1–E15)
// and one per ablation (A1–A5). Run with:
//
//	go test -bench=. -benchmem .
//
// The experiment benches measure the cost of regenerating each paper
// artifact; the ablation benches quantify the design choices the paper
// calls out (§3.4.1 versioning, §3.5 cache and write ordering, §3.7.2
// event triggering, and metadata search indexing).
package gallery_test

import (
	"fmt"
	"testing"
	"time"

	"gallery/internal/blobstore"
	"gallery/internal/clock"
	"gallery/internal/core"
	"gallery/internal/dal"
	"gallery/internal/experiments"
	"gallery/internal/relstore"
	"gallery/internal/rules"
	"gallery/internal/uuid"
)

var benchEpoch = time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)

// newBenchRegistry builds a deterministic in-memory Gallery pre-filled
// with nInstances across nCities.
func newBenchRegistry(b *testing.B, nInstances, nCities int) (*core.Registry, []uuid.UUID) {
	b.Helper()
	clk := clock.NewMock(benchEpoch)
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk, UUIDs: uuid.NewSeeded(1),
	})
	if err != nil {
		b.Fatal(err)
	}
	models := make([]*core.Model, nCities)
	for c := range models {
		m, err := reg.RegisterModel(core.ModelSpec{
			BaseVersionID: fmt.Sprintf("bench_city%03d", c),
			Project:       "bench", Name: "forecaster", Domain: "UberX",
		})
		if err != nil {
			b.Fatal(err)
		}
		models[c] = m
	}
	blob := []byte("bench model blob")
	ids := make([]uuid.UUID, nInstances)
	for i := 0; i < nInstances; i++ {
		clk.Advance(time.Second)
		in, err := reg.UploadInstance(core.InstanceSpec{
			ModelID: models[i%nCities].ID,
			Name:    "forecaster",
			City:    fmt.Sprintf("city%03d", i%nCities),
		}, blob)
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = in.ID
	}
	return reg, ids
}

// --- E1: Table 1 ---

func BenchmarkTable1FeatureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1Probe(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2 + E11: Figure 1 lifecycle including drift-retrain loop ---

func BenchmarkLifecycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Lifecycle()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Drift.Drifted {
			b.Fatal("drift not detected")
		}
	}
}

// --- E4: Figure 4 lineage ---

func BenchmarkLineageFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LineageFigure4(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: Figures 5–7 dependency propagation ---

func BenchmarkDependencyFigures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DependencyFigures(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: Figure 8 rule engine workflow ---

func BenchmarkRuleEngineFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RuleEngineFigure8(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: scale toward 1M instances ---

// BenchmarkMillionInstancesUpload measures instance-save cost on a
// registry pre-filled with 100k instances over 400 city-sharded models.
func BenchmarkMillionInstancesUpload(b *testing.B) {
	reg, _ := newBenchRegistry(b, 100_000, 400)
	m, err := reg.RegisterModel(core.ModelSpec{BaseVersionID: "upload_target", Project: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	blob := []byte("bench model blob")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.UploadInstance(core.InstanceSpec{ModelID: m.ID, City: "city001"}, blob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMillionInstancesSearch measures indexed metadata search at the
// 100k tier (paper Listing 5 shape).
func BenchmarkMillionInstancesSearch(b *testing.B) {
	reg, _ := newBenchRegistry(b, 100_000, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found, err := reg.SearchInstances(core.InstanceFilter{
			City: fmt.Sprintf("city%03d", i%400), Limit: 50,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(found) == 0 {
			b.Fatal("search found nothing")
		}
	}
}

// BenchmarkMillionInstancesFetch measures point blob fetch at the 100k tier.
func BenchmarkMillionInstancesFetch(b *testing.B) {
	reg, ids := newBenchRegistry(b, 100_000, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.FetchBlob(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: dynamic model switching ---

func BenchmarkDynamicSwitching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.DynamicSwitching(3, 11)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OverallImprovement(), "%improvement")
	}
}

// --- E9 + E14: deployment automation ---

func BenchmarkDeploymentAutomation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.DeploymentCost(100)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ManualMinutesDay, "manual-min/day")
	}
}

// --- E10: simulation resource savings ---

func BenchmarkSimulationResourceSavings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.SimulationSavings()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CPUSavedSeconds(), "sim-cpu-s-saved")
		b.ReportMetric(float64(res.MemorySavedBytes())/(1<<30), "GiB-saved")
	}
}

// --- E16 (extension): per-city model-class championship ---

func BenchmarkModelClassChampionship(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ModelClassChampionship()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.DistinctChampions), "champion-classes")
	}
}

// --- E17 (extension): forecast-driven driver repositioning ---

func BenchmarkDriverRepositioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.DriverRepositioning(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Arms[0].MeanWaitSec-res.Arms[2].MeanWaitSec, "wait-s-saved")
	}
}

// --- E12: production skew ---

func BenchmarkSkewDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SkewDetection(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E13: write-ordering consistency ---

func BenchmarkWriteOrderingConsistency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.WriteOrdering(2000, 7, 11)
		if err != nil {
			b.Fatal(err)
		}
		if res.BlobFirst.DanglingMetadata != 0 {
			b.Fatal("invariant violated")
		}
	}
}

// --- Ablation A1: semantic versioning vs UUID+metadata versioning ---
//
// Paper §3.4.1: per-city independent retraining makes semantic versioning
// unmanageable — "cities are no longer aligned against the same versions"
// and the scheme "loses meaning": the same version string ends up naming
// different trained artifacts in different cities. The metric here is
// *ambiguous bindings*: the fraction of assigned identifiers that also
// name a different city's distinct artifact. UUIDs are 0 by construction;
// semver approaches 100% as soon as cities retrain independently. The
// bench also reports assignment cost per op for completeness.

func benchVersioningScheme(b *testing.B, cities int, useUUID bool) {
	gen := uuid.NewSeeded(int64(cities))
	patch := make([]int, cities) // semver arm: per-city independent patch counter
	// binding: identifier -> first city that used it (-1 after a conflict).
	binding := make(map[string]int, b.N)
	ambiguous := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		city := i % cities
		var id string
		if useUUID {
			id = gen.New().String()
		} else {
			// Paper's pre-Gallery rules: retraining bumps the patch,
			// independently per city.
			patch[city]++
			id = fmt.Sprintf("1.0.%d", patch[city])
		}
		if owner, seen := binding[id]; seen {
			if owner != city {
				ambiguous++
				binding[id] = -1
			} else if owner == -1 {
				ambiguous++
			}
		} else {
			binding[id] = city
		}
	}
	b.StopTimer()
	b.ReportMetric(100*float64(ambiguous)/float64(b.N), "%ambiguous-bindings")
}

func BenchmarkVersioningSchemes(b *testing.B) {
	for _, cities := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("semver/cities=%d", cities), func(b *testing.B) {
			benchVersioningScheme(b, cities, false)
		})
		b.Run(fmt.Sprintf("uuid/cities=%d", cities), func(b *testing.B) {
			benchVersioningScheme(b, cities, true)
		})
	}
}

// --- Ablation A2: DAL blob cache on/off ---

func benchBlobRead(b *testing.B, cacheBytes int64) {
	meta := relstore.NewMemory()
	if err := meta.CreateTable(relstore.Schema{
		Table: "instances",
		Columns: []relstore.Column{
			{Name: "id", Kind: relstore.KindString},
			{Name: "blob_location", Kind: relstore.KindString, Nullable: true},
		},
		Key: "id",
	}); err != nil {
		b.Fatal(err)
	}
	blobs := blobstore.NewMemory(blobstore.Options{
		// Model a remote store: the latency is accounted, not slept, and
		// reported as a per-op metric below.
		Latency: blobstore.LatencyModel{Base: 2 * time.Millisecond, PerKB: 10 * time.Microsecond},
	})
	d := dal.New(meta, blobs, dal.Options{CacheBytes: cacheBytes})
	const hotSet = 32
	locs := make([]string, hotSet)
	payload := make([]byte, 64<<10)
	for i := range locs {
		loc, err := d.InsertWithBlob("instances",
			relstore.Row{"id": relstore.String(fmt.Sprintf("i%d", i))},
			"blob_location", fmt.Sprintf("i%d", i), payload)
		if err != nil {
			b.Fatal(err)
		}
		locs[i] = loc
	}
	before := blobs.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.GetBlob(locs[i%hotSet]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	delta := blobs.Stats().Latency - before.Latency
	b.ReportMetric(float64(delta.Microseconds())/float64(b.N), "simulated-us/op")
}

func BenchmarkBlobCacheAblation(b *testing.B) {
	b.Run("cache=on", func(b *testing.B) { benchBlobRead(b, 256<<20) })
	b.Run("cache=off", func(b *testing.B) { benchBlobRead(b, 0) })
}

// --- Ablation A3: blob-first vs metadata-first write ordering ---

func BenchmarkWriteOrderingAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.WriteOrdering(1000, 7, 11)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.BlobFirst.DanglingMetadata), "blobfirst-dangling")
		b.ReportMetric(float64(res.MetadataFirst.DanglingMetadata), "metafirst-dangling")
	}
}

// --- Ablation A4: event-triggered rule evaluation vs periodic polling ---
//
// Paper §3.7.2 triggers rule evaluation on metadata/metric updates. The
// alternative is to poll every rule against every instance on a schedule.
// The metric is condition evaluations performed per metric update — the
// work a Gallery deployment pays at production scale.

func benchRuleTrigger(b *testing.B, polling bool) {
	clk := clock.NewMock(benchEpoch)
	reg, err := core.New(relstore.NewMemory(), blobstore.NewMemory(blobstore.Options{}), core.Options{
		Clock: clk, UUIDs: uuid.NewSeeded(4),
	})
	if err != nil {
		b.Fatal(err)
	}
	repo := rules.NewRepo(clk)
	engine := rules.NewEngine(reg, repo, clk)
	engine.RegisterAction("noop", func(*rules.ActionContext) error { return nil })
	rule := &rules.Rule{
		UUID: "a4", Team: "bench", Kind: rules.KindAction,
		When:    "metrics.mape < 5",
		Actions: []rules.ActionRef{{Action: "noop"}},
	}
	if _, err := repo.Commit("bench", "a4", []*rules.Rule{rule}, nil); err != nil {
		b.Fatal(err)
	}
	m, err := reg.RegisterModel(core.ModelSpec{BaseVersionID: "a4"})
	if err != nil {
		b.Fatal(err)
	}
	const fleet = 200
	ids := make([]uuid.UUID, fleet)
	for i := range ids {
		clk.Advance(time.Second)
		in, err := reg.UploadInstance(core.InstanceSpec{ModelID: m.ID}, []byte("x"))
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = in.ID
		if _, err := reg.InsertMetric(in.ID, "mape", core.ScopeProduction, 7); err != nil {
			b.Fatal(err)
		}
	}
	before := engine.Stats().Evaluations
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ids[i%fleet]
		clk.Advance(time.Second)
		if _, err := reg.InsertMetric(id, "mape", core.ScopeProduction, 4); err != nil {
			b.Fatal(err)
		}
		if polling {
			// A poll sweep evaluates the rule against the whole fleet.
			for _, other := range ids {
				engine.MetricUpdated(other)
			}
		} else {
			engine.MetricUpdated(id)
		}
	}
	b.StopTimer()
	evals := engine.Stats().Evaluations - before
	b.ReportMetric(float64(evals)/float64(b.N), "evals/update")
}

func BenchmarkRuleTriggerAblation(b *testing.B) {
	b.Run("event-triggered", func(b *testing.B) { benchRuleTrigger(b, false) })
	b.Run("polling", func(b *testing.B) { benchRuleTrigger(b, true) })
}

// --- Ablation A5: secondary indexes on/off for metadata search ---

func benchSearch(b *testing.B, forceScan bool) {
	reg, _ := newBenchRegistry(b, 50_000, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found, err := reg.SearchInstances(core.InstanceFilter{
			City:      fmt.Sprintf("city%03d", i%400),
			Limit:     50,
			ForceScan: forceScan,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(found) == 0 {
			b.Fatal("search found nothing")
		}
	}
}

func BenchmarkSearchIndexAblation(b *testing.B) {
	b.Run("indexed", func(b *testing.B) { benchSearch(b, false) })
	b.Run("full-scan", func(b *testing.B) { benchSearch(b, true) })
}

// BenchmarkLatestInstancesGlobal measures the "newest N instances across
// the fleet" query, which the ordered-index streaming path serves without
// a sort (relstore Explain.Ordered).
func BenchmarkLatestInstancesGlobal(b *testing.B) {
	reg, _ := newBenchRegistry(b, 100_000, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found, err := reg.SearchInstances(core.InstanceFilter{Limit: 50})
		if err != nil {
			b.Fatal(err)
		}
		if len(found) != 50 {
			b.Fatalf("found %d", len(found))
		}
	}
}
