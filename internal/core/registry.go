package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gallery/internal/audit"
	"gallery/internal/blobstore"
	"gallery/internal/clock"
	"gallery/internal/dal"
	"gallery/internal/obs"
	"gallery/internal/obs/trace"
	"gallery/internal/relstore"
	"gallery/internal/uuid"
)

// Sentinel errors for callers that branch on failure modes.
var (
	ErrNotFound   = errors.New("core: not found")
	ErrBadSpec    = errors.New("core: invalid specification")
	ErrCycle      = errors.New("core: dependency cycle")
	ErrDeprecated = errors.New("core: target is deprecated")
)

// Options configures a Registry.
type Options struct {
	// Clock defaults to the wall clock.
	Clock clock.Clock
	// UUIDs defaults to the crypto/rand generator; seed one for
	// deterministic experiments.
	UUIDs *uuid.Generator
	// CacheBytes bounds the blob read cache (default 256 MiB).
	CacheBytes int64
	// Obs receives DAL metrics; nil uses obs.Default.
	Obs *obs.Registry
	// AuditKeep bounds the audit events retained per entity (0 uses
	// audit.DefaultKeep; negative disables pruning).
	AuditKeep int
}

// Registry is the Gallery service core: every API the paper's Thrift
// surface exposes is a method here. It is safe for concurrent use;
// multi-row operations (instance upload with version propagation,
// dependency changes) are serialized internally and written as atomic
// batches.
type Registry struct {
	dal   *dal.DAL
	clk   clock.Clock
	gen   *uuid.Generator
	audit *audit.Log

	// mu serializes read-modify-write sequences such as version bumps
	// and dependency propagation, which span multiple store calls.
	mu sync.Mutex
}

// New assembles a Registry over a metadata store and a blob store,
// declaring all Gallery schemas (idempotent over a recovered store).
func New(meta *relstore.Store, blobs *blobstore.Store, opts Options) (*Registry, error) {
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	if opts.UUIDs == nil {
		opts.UUIDs = uuid.NewGenerator()
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = 256 << 20
	}
	for _, s := range Schemas() {
		if err := meta.CreateTable(s); err != nil {
			return nil, err
		}
	}
	d := dal.New(meta, blobs, dal.Options{
		CacheBytes: opts.CacheBytes,
		Refs:       []dal.BlobRef{{Table: TableInstances, LocField: "blob_location"}},
		Obs:        opts.Obs,
	})
	// The lifecycle audit trail lives in the same store, so it shares the
	// metadata WAL's durability and crash recovery.
	aud, err := audit.Open(meta, audit.Options{
		Clock: opts.Clock,
		UUIDs: opts.UUIDs,
		Keep:  opts.AuditKeep,
		Obs:   opts.Obs,
	})
	if err != nil {
		return nil, err
	}
	return &Registry{dal: d, clk: opts.Clock, gen: opts.UUIDs, audit: aud}, nil
}

// DAL exposes the data access layer for experiments that need its stats.
func (g *Registry) DAL() *dal.DAL { return g.dal }

// Audit exposes the lifecycle audit trail; subsystems above the core
// (rule engine, health monitor, HTTP server) record their events here.
func (g *Registry) Audit() *audit.Log { return g.audit }

// audited best-effort records a lifecycle event; storage failures are
// already counted by the audit log and must not fail the mutation that
// succeeded.
func (g *Registry) audited(ctx context.Context, ev audit.Event) {
	if g.audit != nil {
		_ = g.audit.Record(ctx, ev)
	}
}

func (g *Registry) now() time.Time { return g.clk.Now() }

// --- models ---

// RegisterModel creates a new model record with its declared dependencies
// and an initial version record, atomically.
func (g *Registry) RegisterModel(spec ModelSpec) (*Model, error) {
	return g.RegisterModelCtx(context.Background(), spec)
}

// RegisterModelCtx is RegisterModel carrying the caller's context, so the
// audit event inherits its actor and trace lineage.
func (g *Registry) RegisterModelCtx(ctx context.Context, spec ModelSpec) (*Model, error) {
	if spec.BaseVersionID == "" {
		return nil, fmt.Errorf("%w: base version id is required", ErrBadSpec)
	}
	g.mu.Lock()
	defer g.mu.Unlock()

	major := spec.InitialMajor
	if major <= 0 {
		major = 1
	}
	m := &Model{
		ID:            g.gen.New(),
		BaseVersionID: spec.BaseVersionID,
		Project:       spec.Project,
		Name:          spec.Name,
		Owner:         spec.Owner,
		Team:          spec.Team,
		Domain:        spec.Domain,
		Description:   spec.Description,
		Major:         major,
		Created:       g.now(),
	}
	v := &VersionRecord{
		ID:         g.gen.New(),
		ModelID:    m.ID,
		Major:      major,
		Minor:      0,
		Cause:      CauseRegistered,
		Created:    g.now(),
		Production: true,
	}
	m.ProductionVersion = v.ID
	muts := []relstore.Mutation{
		{Kind: relstore.MutInsert, Table: TableModels, Row: modelToRow(m)},
		{Kind: relstore.MutInsert, Table: TableVersions, Row: versionToRow(v)},
	}
	for _, up := range spec.Upstreams {
		if _, err := g.getModelLocked(up); err != nil {
			return nil, fmt.Errorf("%w: upstream %s", err, up)
		}
		d := &Dependency{From: m.ID, To: up, Created: g.now()}
		muts = append(muts, relstore.Mutation{Kind: relstore.MutInsert, Table: TableDeps, Row: depToRow(d)})
	}
	if err := g.dal.Meta().Batch(muts); err != nil {
		return nil, err
	}
	g.audited(ctx, audit.Event{
		Action: audit.ActionModelRegister, EntityType: audit.EntityModel,
		EntityID: m.ID.String(), ModelID: m.ID.String(),
		After:  fmt.Sprintf("v%d.0", major),
		Detail: fmt.Sprintf("project=%s name=%s base=%s", m.Project, m.Name, m.BaseVersionID),
	})
	return m, nil
}

// GetModel fetches a model by id.
func (g *Registry) GetModel(id uuid.UUID) (*Model, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.getModelLocked(id)
}

func (g *Registry) getModelLocked(id uuid.UUID) (*Model, error) {
	row, err := g.dal.Meta().Get(TableModels, id.String())
	if errors.Is(err, relstore.ErrNotFound) {
		return nil, fmt.Errorf("%w: model %s", ErrNotFound, id)
	}
	if err != nil {
		return nil, err
	}
	return rowToModel(row)
}

// ModelsByBase returns every model record registered under a base version
// id, oldest first.
func (g *Registry) ModelsByBase(baseVersionID string) ([]*Model, error) {
	rows, err := g.dal.Meta().Select(relstore.Query{
		Table:   TableModels,
		Where:   []relstore.Constraint{{Field: "base_version_id", Op: relstore.OpEq, Value: relstore.String(baseVersionID)}},
		OrderBy: "created",
	})
	if err != nil {
		return nil, err
	}
	return rowsToModels(rows)
}

// EvolveModel registers the successor of an existing model — a change to
// the underlying transform (new features, new architecture; paper §3.4.1).
// The new record's major version is the predecessor's plus one, and the two
// records are linked through next/previous pointers (§3.3.1).
func (g *Registry) EvolveModel(prevID uuid.UUID, description string) (*Model, error) {
	return g.EvolveModelCtx(context.Background(), prevID, description)
}

// EvolveModelCtx is EvolveModel carrying the caller's context for audit
// and trace lineage.
func (g *Registry) EvolveModelCtx(ctx context.Context, prevID uuid.UUID, description string) (*Model, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	prev, err := g.getModelLocked(prevID)
	if err != nil {
		return nil, err
	}
	if !prev.NextModel.IsNil() {
		return nil, fmt.Errorf("%w: model %s already has a successor %s", ErrBadSpec, prevID, prev.NextModel)
	}
	next := &Model{
		ID:            g.gen.New(),
		BaseVersionID: prev.BaseVersionID,
		Project:       prev.Project,
		Name:          prev.Name,
		Owner:         prev.Owner,
		Team:          prev.Team,
		Domain:        prev.Domain,
		Description:   description,
		Major:         prev.Major + 1,
		PrevModel:     prev.ID,
		Created:       g.now(),
	}
	prev.NextModel = next.ID
	v := &VersionRecord{
		ID:         g.gen.New(),
		ModelID:    next.ID,
		Major:      next.Major,
		Minor:      0,
		Cause:      CauseRegistered,
		Created:    g.now(),
		Production: true,
	}
	next.ProductionVersion = v.ID
	// The evolved model inherits its predecessor's dependencies.
	ups, err := g.upstreamsLocked(prev.ID)
	if err != nil {
		return nil, err
	}
	muts := []relstore.Mutation{
		{Kind: relstore.MutInsert, Table: TableModels, Row: modelToRow(next)},
		{Kind: relstore.MutUpdate, Table: TableModels, Row: modelToRow(prev)},
		{Kind: relstore.MutInsert, Table: TableVersions, Row: versionToRow(v)},
	}
	for _, up := range ups {
		d := &Dependency{From: next.ID, To: up, Created: g.now()}
		muts = append(muts, relstore.Mutation{Kind: relstore.MutInsert, Table: TableDeps, Row: depToRow(d)})
	}
	if err := g.dal.Meta().Batch(muts); err != nil {
		return nil, err
	}
	g.audited(ctx, audit.Event{
		Action: audit.ActionModelEvolve, EntityType: audit.EntityModel,
		EntityID: next.ID.String(), ModelID: next.ID.String(),
		Before: fmt.Sprintf("v%d (%s)", prev.Major, prev.ID),
		After:  fmt.Sprintf("v%d.0", next.Major),
		Detail: description,
	})
	return next, nil
}

// Evolution returns the full prev/next chain containing model id, oldest
// first.
func (g *Registry) Evolution(id uuid.UUID) ([]*Model, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m, err := g.getModelLocked(id)
	if err != nil {
		return nil, err
	}
	// Walk to the head.
	head := m
	for !head.PrevModel.IsNil() {
		prev, err := g.getModelLocked(head.PrevModel)
		if err != nil {
			return nil, err
		}
		head = prev
	}
	var chain []*Model
	for cur := head; ; {
		chain = append(chain, cur)
		if cur.NextModel.IsNil() {
			break
		}
		next, err := g.getModelLocked(cur.NextModel)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return chain, nil
}

// DeprecateModel flags a model as deprecated. It is not deleted: existing
// consumers keep working until they migrate (paper §3.7, Model
// Deprecation).
func (g *Registry) DeprecateModel(id uuid.UUID) error {
	return g.DeprecateModelCtx(context.Background(), id)
}

// DeprecateModelCtx is DeprecateModel carrying the caller's context for
// audit and trace lineage.
func (g *Registry) DeprecateModelCtx(ctx context.Context, id uuid.UUID) error {
	_, err := g.DeprecateModelReport(ctx, id)
	return err
}

// DeprecateModelReport is DeprecateModelCtx reporting whether this call
// performed the active→deprecated transition (false when the model was
// already deprecated — deprecation is idempotent). The transition is
// decided under the registry lock, so exactly one of any set of racing
// calls reports true; the multi-tenant layer relies on that to release
// the owning namespace's model-quota slot exactly once.
func (g *Registry) DeprecateModelReport(ctx context.Context, id uuid.UUID) (retired bool, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m, err := g.getModelLocked(id)
	if err != nil {
		return false, err
	}
	wasDeprecated := m.Deprecated
	m.Deprecated = true
	if err := g.dal.Meta().UpdateCtx(ctx, TableModels, modelToRow(m)); err != nil {
		return false, err
	}
	if !wasDeprecated {
		g.audited(ctx, audit.Event{
			Action: audit.ActionModelDeprecate, EntityType: audit.EntityModel,
			EntityID: id.String(), ModelID: id.String(),
			Before: "active", After: "deprecated",
		})
	}
	return !wasDeprecated, nil
}

// --- instances ---

// UploadInstance saves a trained model instance: the blob is written to
// blob storage first, then the instance row, its version record, and all
// dependency-propagated version bumps land in one atomic metadata batch
// (paper §3.5 write ordering; §3.4.2 propagation). The returned instance
// carries its assigned UUID and blob location.
func (g *Registry) UploadInstance(spec InstanceSpec, blob []byte) (*Instance, error) {
	return g.UploadInstanceCtx(context.Background(), spec, blob)
}

// UploadInstanceCtx is UploadInstance with trace attribution: the span's
// children are the replicated blob put and the atomic metadata batch, so
// a slow upload shows which half cost what.
func (g *Registry) UploadInstanceCtx(ctx context.Context, spec InstanceSpec, blob []byte) (*Instance, error) {
	ctx, span := trace.Start(ctx, "core.upload_instance")
	if span != nil {
		span.AnnotateInt("blob_bytes", int64(len(blob)))
	}
	in, err := g.uploadInstanceCtx(ctx, spec, blob)
	span.EndErr(err)
	return in, err
}

func (g *Registry) uploadInstanceCtx(ctx context.Context, spec InstanceSpec, blob []byte) (*Instance, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m, err := g.getModelLocked(spec.ModelID)
	if err != nil {
		return nil, err
	}

	in := &Instance{
		ID:            g.gen.New(),
		ModelID:       m.ID,
		BaseVersionID: m.BaseVersionID,
		Project:       m.Project,
		Name:          spec.Name,
		City:          spec.City,
		Framework:     spec.Framework,
		TrainingData:  spec.TrainingData,
		CodePointer:   spec.CodePointer,
		Seed:          spec.Seed,
		Epochs:        spec.Epochs,
		Hyperparams:   spec.Hyperparams,
		Features:      spec.Features,
		Created:       g.now(),
	}

	// Blob first: if this fails nothing is recorded. The location is
	// pinned across the blob-write/metadata-insert window so a concurrent
	// orphan collection cannot reap the not-yet-referenced blob (the DAL
	// pin protocol; see internal/dal).
	pinLoc := g.dal.Blobs().Location(in.ID.String())
	g.dal.Pin(pinLoc)
	defer g.dal.Unpin(pinLoc)
	loc, err := g.dal.PutBlobCtx(ctx, in.ID.String(), blob)
	if err != nil {
		return nil, fmt.Errorf("core: blob write for instance %s: %w", in.ID, err)
	}
	in.BlobLocation = loc

	muts := []relstore.Mutation{
		{Kind: relstore.MutInsert, Table: TableInstances, Row: instanceToRow(in)},
	}
	// The owning model gets a retrained version, promoted to production
	// (the owner trained it deliberately); downstreams get non-production
	// dep_update versions.
	beforeProd := "none"
	if !m.ProductionVersion.IsNil() {
		if cur, err := g.versionByIDLocked(m.ProductionVersion); err == nil {
			beforeProd = fmt.Sprintf("v%d.%d (%s)", cur.Major, cur.Minor, cur.ID)
		}
	}
	bumps, err := g.versionBumpsLocked(m.ID, CauseRetrained, in.ID, uuid.Nil)
	if err != nil {
		return nil, err
	}
	muts = append(muts, bumps...)
	if err := g.dal.Meta().BatchCtx(ctx, muts); err != nil {
		// The blob is now an orphan; the DAL garbage collector reclaims
		// it. Audit the half-written state so the blob-first write that
		// never got its metadata is visible post-hoc.
		g.audited(ctx, audit.Event{
			Action: audit.ActionUploadFailed, EntityType: audit.EntityInstance,
			EntityID: in.ID.String(), ModelID: m.ID.String(),
			Before: "blob written", After: "metadata write failed",
			Detail: fmt.Sprintf("blob orphaned at %s (%d bytes): %v", loc, len(blob), err),
		})
		return nil, fmt.Errorf("core: metadata write for instance %s (blob orphaned): %w", in.ID, err)
	}
	g.audited(ctx, audit.Event{
		Action: audit.ActionInstanceUpload, EntityType: audit.EntityInstance,
		EntityID: in.ID.String(), ModelID: m.ID.String(),
		After:  fmt.Sprintf("blob=%s bytes=%d", loc, len(blob)),
		Detail: fmt.Sprintf("name=%s city=%s framework=%s", in.Name, in.City, in.Framework),
	})
	// The upload implicitly flipped the production pointer (the owner's
	// retrained version is born promoted); record that transition too so
	// a timeline reader sees every pointer change, implicit or explicit.
	if m2, err := g.getModelLocked(m.ID); err == nil && !m2.ProductionVersion.IsNil() {
		if v2, err := g.versionByIDLocked(m2.ProductionVersion); err == nil {
			g.audited(ctx, audit.Event{
				Action: audit.ActionPromote, EntityType: audit.EntityInstance,
				EntityID: in.ID.String(), ModelID: m.ID.String(),
				Before: beforeProd,
				After:  fmt.Sprintf("v%d.%d (%s)", v2.Major, v2.Minor, v2.ID),
				Detail: "auto-promoted on upload",
			})
		}
	}
	return in, nil
}

// GetInstance fetches instance metadata by id.
func (g *Registry) GetInstance(id uuid.UUID) (*Instance, error) {
	return g.GetInstanceCtx(context.Background(), id)
}

// GetInstanceCtx is GetInstance with trace attribution down through the
// metadata read.
func (g *Registry) GetInstanceCtx(ctx context.Context, id uuid.UUID) (*Instance, error) {
	row, err := g.dal.Meta().GetCtx(ctx, TableInstances, id.String())
	if errors.Is(err, relstore.ErrNotFound) {
		return nil, fmt.Errorf("%w: instance %s", ErrNotFound, id)
	}
	if err != nil {
		return nil, err
	}
	return rowToInstance(row)
}

// FetchBlob returns the serialized model bytes for an instance, through
// the DAL's read cache.
func (g *Registry) FetchBlob(id uuid.UUID) ([]byte, error) {
	return g.FetchBlobCtx(context.Background(), id)
}

// FetchBlobCtx is FetchBlob with trace attribution: one core-level span
// whose children are the metadata read and the cached blob read.
func (g *Registry) FetchBlobCtx(ctx context.Context, id uuid.UUID) ([]byte, error) {
	ctx, span := trace.Start(ctx, "core.fetch_blob")
	if span != nil {
		span.Annotate("instance", id.String())
	}
	data, err := g.fetchBlobCtx(ctx, id)
	span.EndErr(err)
	return data, err
}

func (g *Registry) fetchBlobCtx(ctx context.Context, id uuid.UUID) ([]byte, error) {
	in, err := g.GetInstanceCtx(ctx, id)
	if err != nil {
		return nil, err
	}
	if in.BlobLocation == "" {
		return nil, fmt.Errorf("%w: instance %s has no blob", ErrNotFound, id)
	}
	return g.dal.GetBlobCtx(ctx, in.BlobLocation)
}

// DeprecateInstance flags an instance; fetching by id still works, but
// default searches skip it.
func (g *Registry) DeprecateInstance(id uuid.UUID) error {
	return g.DeprecateInstanceCtx(context.Background(), id)
}

// DeprecateInstanceCtx is DeprecateInstance carrying the caller's context
// for audit and trace lineage.
func (g *Registry) DeprecateInstanceCtx(ctx context.Context, id uuid.UUID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	row, err := g.dal.Meta().Get(TableInstances, id.String())
	if errors.Is(err, relstore.ErrNotFound) {
		return fmt.Errorf("%w: instance %s", ErrNotFound, id)
	}
	if err != nil {
		return err
	}
	wasDeprecated := row["deprecated"].Bool
	row["deprecated"] = relstore.Bool(true)
	if err := g.dal.Meta().UpdateCtx(ctx, TableInstances, row); err != nil {
		return err
	}
	if !wasDeprecated {
		g.audited(ctx, audit.Event{
			Action: audit.ActionInstanceDeprecate, EntityType: audit.EntityInstance,
			EntityID: id.String(), ModelID: row["model_id"].Str,
			Before: "active", After: "deprecated",
		})
	}
	return nil
}

// Lineage returns every instance trained under a base version id, sorted
// by creation time — the traversal of paper Fig. 4.
func (g *Registry) Lineage(baseVersionID string) ([]*Instance, error) {
	rows, err := g.dal.Meta().Select(relstore.Query{
		Table:   TableInstances,
		Where:   []relstore.Constraint{{Field: "base_version_id", Op: relstore.OpEq, Value: relstore.String(baseVersionID)}},
		OrderBy: "created",
	})
	if err != nil {
		return nil, err
	}
	return rowsToInstances(rows)
}

// --- metrics ---

// InsertMetric records one evaluation measurement for an instance.
func (g *Registry) InsertMetric(instanceID uuid.UUID, name string, scope Scope, value float64) (*Metric, error) {
	return g.InsertMetricCtx(context.Background(), instanceID, name, scope, value)
}

// InsertMetricCtx is InsertMetric with trace attribution down through the
// metadata read and insert.
func (g *Registry) InsertMetricCtx(ctx context.Context, instanceID uuid.UUID, name string, scope Scope, value float64) (*Metric, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: metric name is required", ErrBadSpec)
	}
	if !ValidScope(scope) {
		return nil, fmt.Errorf("%w: unknown scope %q", ErrBadSpec, scope)
	}
	in, err := g.GetInstanceCtx(ctx, instanceID)
	if err != nil {
		return nil, err
	}
	m := &Metric{
		ID:         g.gen.New(),
		InstanceID: instanceID,
		ModelID:    in.ModelID,
		Name:       name,
		Scope:      scope,
		Value:      value,
		At:         g.now(),
	}
	if err := g.dal.Meta().InsertCtx(ctx, TableMetrics, metricToRow(m)); err != nil {
		return nil, err
	}
	return m, nil
}

// InsertMetrics records a whole "<metric>:<value>" blob (paper §3.3.3) as
// individual queryable rows.
func (g *Registry) InsertMetrics(instanceID uuid.UUID, scope Scope, values map[string]float64) error {
	// Deterministic order so failures are reproducible.
	names := make([]string, 0, len(values))
	for n := range values {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := g.InsertMetric(instanceID, n, scope, values[n]); err != nil {
			return err
		}
	}
	return nil
}

// MetricSeries returns an instance's measurements of one metric in one
// scope, oldest first.
func (g *Registry) MetricSeries(instanceID uuid.UUID, name string, scope Scope) ([]*Metric, error) {
	rows, err := g.dal.Meta().Select(relstore.Query{
		Table: TableMetrics,
		Where: []relstore.Constraint{
			{Field: "instance_id", Op: relstore.OpEq, Value: relstore.String(instanceID.String())},
			{Field: "name", Op: relstore.OpEq, Value: relstore.String(name)},
			{Field: "scope", Op: relstore.OpEq, Value: relstore.String(string(scope))},
		},
		OrderBy: "created",
	})
	if err != nil {
		return nil, err
	}
	return rowsToMetrics(rows)
}

// LatestMetrics returns the most recent value of every metric name
// reported for an instance in a scope — the environment a rule condition
// evaluates against.
func (g *Registry) LatestMetrics(instanceID uuid.UUID, scope Scope) (map[string]float64, error) {
	rows, err := g.dal.Meta().Select(relstore.Query{
		Table: TableMetrics,
		Where: []relstore.Constraint{
			{Field: "instance_id", Op: relstore.OpEq, Value: relstore.String(instanceID.String())},
			{Field: "scope", Op: relstore.OpEq, Value: relstore.String(string(scope))},
		},
		OrderBy: "created",
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, r := range rows { // ascending by time: later rows overwrite
		out[r["name"].Str] = r["value"].Float
	}
	return out, nil
}

// --- search ---

// InstanceFilter expresses a model search (paper Listing 5): metadata
// constraints plus an optional metric condition, joined on instance id.
type InstanceFilter struct {
	Project       string
	Name          string
	City          string
	BaseVersionID string
	ModelID       uuid.UUID
	Framework     string
	CreatedAfter  time.Time
	CreatedBefore time.Time

	// Metric condition: instances having any metric row with this name
	// (and scope, if set) whose value satisfies MetricOp MetricValue.
	MetricName  string
	MetricScope Scope
	MetricOp    relstore.Op
	MetricValue float64

	// IncludeDeprecated keeps flagged instances in results; by default
	// they are skipped (paper §3.7).
	IncludeDeprecated bool
	Limit             int
	// ForceScan disables index use (search ablation).
	ForceScan bool
}

// SearchInstances runs a metadata/metric search and returns matching
// instances, newest first.
func (g *Registry) SearchInstances(f InstanceFilter) ([]*Instance, error) {
	var where []relstore.Constraint
	addEq := func(field, val string) {
		if val != "" {
			where = append(where, relstore.Constraint{Field: field, Op: relstore.OpEq, Value: relstore.String(val)})
		}
	}
	addEq("project", f.Project)
	addEq("name", f.Name)
	addEq("city", f.City)
	addEq("base_version_id", f.BaseVersionID)
	addEq("framework", f.Framework)
	if !f.ModelID.IsNil() {
		addEq("model_id", f.ModelID.String())
	}
	if !f.CreatedAfter.IsZero() {
		where = append(where, relstore.Constraint{Field: "created", Op: relstore.OpGt, Value: relstore.Time(f.CreatedAfter)})
	}
	if !f.CreatedBefore.IsZero() {
		where = append(where, relstore.Constraint{Field: "created", Op: relstore.OpLt, Value: relstore.Time(f.CreatedBefore)})
	}
	if !f.IncludeDeprecated {
		where = append(where, relstore.Constraint{Field: "deprecated", Op: relstore.OpEq, Value: relstore.Bool(false)})
	}

	// Resolve the metric condition to an instance-id set first, if present.
	var allowed map[string]bool
	if f.MetricName != "" {
		mwhere := []relstore.Constraint{
			{Field: "name", Op: relstore.OpEq, Value: relstore.String(f.MetricName)},
			{Field: "value", Op: f.MetricOp, Value: relstore.Float(f.MetricValue)},
		}
		if f.MetricScope != "" {
			mwhere = append(mwhere, relstore.Constraint{Field: "scope", Op: relstore.OpEq, Value: relstore.String(string(f.MetricScope))})
		}
		mrows, err := g.dal.Meta().Select(relstore.Query{Table: TableMetrics, Where: mwhere, ForceScan: f.ForceScan})
		if err != nil {
			return nil, err
		}
		allowed = make(map[string]bool, len(mrows))
		for _, r := range mrows {
			allowed[r["instance_id"].Str] = true
		}
	}

	q := relstore.Query{
		Table:     TableInstances,
		Where:     where,
		OrderBy:   "created",
		Desc:      true,
		ForceScan: f.ForceScan,
	}
	// The limit can only be pushed into the store when no metric join
	// filters rows afterwards.
	if allowed == nil {
		q.Limit = f.Limit
	}
	rows, err := g.dal.Meta().Select(q)
	if err != nil {
		return nil, err
	}
	var out []*Instance
	for _, r := range rows {
		if allowed != nil && !allowed[r["id"].Str] {
			continue
		}
		in, err := rowToInstance(r)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out, nil
}

// Counts reports table sizes for scale experiments.
func (g *Registry) Counts() (models, instances, metrics int) {
	models, _ = g.dal.Meta().Len(TableModels)
	instances, _ = g.dal.Meta().Len(TableInstances)
	metrics, _ = g.dal.Meta().Len(TableMetrics)
	return
}

// --- conversion helpers ---

func rowsToModels(rows []relstore.Row) ([]*Model, error) {
	out := make([]*Model, 0, len(rows))
	for _, r := range rows {
		m, err := rowToModel(r)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func rowsToInstances(rows []relstore.Row) ([]*Instance, error) {
	out := make([]*Instance, 0, len(rows))
	for _, r := range rows {
		in, err := rowToInstance(r)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	return out, nil
}

func rowsToMetrics(rows []relstore.Row) ([]*Metric, error) {
	out := make([]*Metric, 0, len(rows))
	for _, r := range rows {
		m, err := rowToMetric(r)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func rowsToVersions(rows []relstore.Row) ([]*VersionRecord, error) {
	out := make([]*VersionRecord, 0, len(rows))
	for _, r := range rows {
		v, err := rowToVersion(r)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
